// Floyd–Warshall–Kleene closure (Sec. 5.5): A* agrees with the iterated
// truncated sums on stable matrices, and solves x = A·x ⊕ b.
#include <gtest/gtest.h>

#include "src/datalogo.h"

namespace datalogo {
namespace {

Matrix<TropS> TropAdjacency(const Graph& g) {
  Matrix<TropS> a(g.num_vertices(), g.num_vertices());
  for (int i = 0; i < g.num_vertices(); ++i) {
    for (int j = 0; j < g.num_vertices(); ++j) a.at(i, j) = TropS::Inf();
  }
  for (const Edge& e : g.edges()) {
    a.at(e.src, e.dst) = std::min(a.at(e.src, e.dst), e.weight);
  }
  return a;
}

TEST(Kleene, ClosureIsAllPairsShortestPaths) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Graph g = RandomGraph(9, 25, seed);
    Matrix<TropS> a = TropAdjacency(g);
    Matrix<TropS> star = KleeneClosurePStable<TropS>(a, /*p=*/0);
    for (int s = 0; s < 9; ++s) {
      std::vector<double> dist = g.ShortestPathsFrom(s);
      for (int v = 0; v < 9; ++v) {
        // Floating-point sums associate differently in the elimination
        // order vs Bellman–Ford; compare up to ulps.
        if (dist[v] == TropS::Inf()) {
          EXPECT_EQ(star.at(s, v), dist[v]) << s << "->" << v;
        } else {
          EXPECT_NEAR(star.at(s, v), dist[v], 1e-9) << s << "->" << v;
        }
      }
    }
  }
}

TEST(Kleene, ClosureMatchesMatrixStabilityLimit) {
  // On a stable matrix, A* equals A^(q) at the stability index q.
  Graph g = CycleGraph(4);
  Matrix<TropS> a = TropAdjacency(g);
  auto q = MatrixStabilityIndex<TropS>(a, 100);
  ASSERT_TRUE(q.has_value());
  Matrix<TropS> star = KleeneClosurePStable<TropS>(a, 0);
  EXPECT_TRUE(star.Equals(MatrixStarTruncated<TropS>(a, *q)));
}

TEST(Kleene, SolvesLinearFixpoint) {
  // x = A·x ⊕ b over Trop+ = single-source shortest paths with b as the
  // source indicator.
  Graph g = RandomGraph(8, 20, /*seed=*/13);
  Matrix<TropS> a = TropAdjacency(g);
  // NOTE: x_i = min_j A_ij + x_j propagates along REVERSED edges, so
  // build from the transpose to model forward reachability.
  Matrix<TropS> at(8, 8);
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) at.at(i, j) = a.at(j, i);
  }
  std::vector<double> b(8, TropS::Inf());
  b[0] = 0.0;  // source
  auto x = SolveLinearFixpoint<TropS>(at, b, 0);
  std::vector<double> dist = g.ShortestPathsFrom(0);
  for (int v = 0; v < 8; ++v) {
    if (dist[v] == TropS::Inf()) {
      EXPECT_EQ(x[v], dist[v]) << v;
    } else {
      EXPECT_NEAR(x[v], dist[v], 1e-9) << v;
    }
  }
}

TEST(Kleene, TropPClosureCollectsTopPaths) {
  // Over Trop+_1 the closure of the 3-cycle yields, for each pair, the two
  // cheapest walk lengths.
  using T = TropPS<1>;
  Matrix<T> a(3, 3);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) a.at(i, j) = T::Zero();
  }
  a.at(0, 1) = T::FromScalar(1.0);
  a.at(1, 2) = T::FromScalar(1.0);
  a.at(2, 0) = T::FromScalar(1.0);
  Matrix<T> star = KleeneClosurePStable<T>(a, /*p=*/1);
  // 0→0: walks of length 0, 3, 6, … → top-2 = {0, 3}.
  EXPECT_TRUE(T::Eq(star.at(0, 0), T::Value{0, 3}));
  // 0→2: walks of length 2, 5, 8, … → {2, 5}.
  EXPECT_TRUE(T::Eq(star.at(0, 2), T::Value{2, 5}));
}

TEST(Kleene, BooleanClosureIsReflexiveTransitiveClosure) {
  Graph g = RandomGraph(10, 18, /*seed=*/3);
  Matrix<BoolS> a(10, 10);
  for (const Edge& e : g.edges()) a.at(e.src, e.dst) = true;
  Matrix<BoolS> star = KleeneClosurePStable<BoolS>(a, 0);
  for (int s = 0; s < 10; ++s) {
    std::vector<bool> reach = g.ReachableFrom(s);
    for (int v = 0; v < 10; ++v) {
      EXPECT_EQ(star.at(s, v), reach[v]) << s << "->" << v;
    }
  }
}

}  // namespace
}  // namespace datalogo
