// Typed law tests: every POPS in the library must satisfy the Def. 2.1 /
// Def. 2.3 axioms on a panel of sample values — commutative monoids,
// distributivity, monotonicity of ⊕/⊗, ⊥ minimality, and (when claimed)
// absorption, idempotence and the natural-order coherence.
#include <gtest/gtest.h>

#include <vector>

#include "src/datalogo.h"

namespace datalogo {
namespace {

/// Sample-value panels per POPS.
template <typename P>
struct SamplePanel;

template <>
struct SamplePanel<BoolS> {
  static std::vector<bool> Values() { return {false, true}; }
};
template <>
struct SamplePanel<NatS> {
  static std::vector<uint64_t> Values() {
    return {0, 1, 2, 7, 100, NatS::kInf};
  }
};
template <>
struct SamplePanel<TropS> {
  static std::vector<double> Values() {
    return {0.0, 1.0, 2.5, 100.0, TropS::Inf()};
  }
};
template <>
struct SamplePanel<TropNatS> {
  static std::vector<uint64_t> Values() { return {0, 1, 5, TropNatS::kInf}; }
};
template <>
struct SamplePanel<MaxPlusS> {
  static std::vector<double> Values() {
    return {MaxPlusS::NegInf(), -2.0, 0.0, 3.5};
  }
};
template <>
struct SamplePanel<ViterbiS> {
  static std::vector<double> Values() { return {0.0, 0.25, 0.5, 1.0}; }
};
template <>
struct SamplePanel<FuzzyS> {
  static std::vector<double> Values() { return {0.0, 0.25, 0.5, 1.0}; }
};
template <>
struct SamplePanel<TropPS<2>> {
  static std::vector<TropPS<2>::Value> Values() {
    using T = TropPS<2>;
    return {T::Zero(), T::One(), T::FromScalar(3.0),
            T::Value{1.0, 2.0, 5.0}, T::Value{3.0, 7.0, 9.0},
            T::Value{3.0, 7.0, T::Inf()}};
  }
};
template <>
struct SamplePanel<Lifted<RealS>> {
  static std::vector<Lifted<RealS>::Value> Values() {
    using L = Lifted<RealS>;
    return {L::Bottom(), L::Zero(), L::One(), L::Lift(-2.5), L::Lift(7.0)};
  }
};
template <>
struct SamplePanel<Lifted<NatS>> {
  static std::vector<Lifted<NatS>::Value> Values() {
    using L = Lifted<NatS>;
    return {L::Bottom(), L::Zero(), L::One(), L::Lift(5)};
  }
};
template <>
struct SamplePanel<Completed<NatS>> {
  static std::vector<Completed<NatS>::Value> Values() {
    using C = Completed<NatS>;
    return {C::Bottom(), C::Top(), C::Zero(), C::One(), C::Lift(9)};
  }
};
template <>
struct SamplePanel<ThreeS> {
  static std::vector<Kleene> Values() {
    return {Kleene::kBot, Kleene::kFalse, Kleene::kTrue};
  }
};
template <>
struct SamplePanel<FourS> {
  static std::vector<Belnap> Values() {
    return {Belnap::kBot, Belnap::kFalse, Belnap::kTrue, Belnap::kTop};
  }
};
template <>
struct SamplePanel<ProductPops<BoolS, TropS>> {
  static std::vector<std::pair<bool, double>> Values() {
    return {{false, TropS::Inf()}, {true, 0.0}, {true, 3.0}, {false, 1.0}};
  }
};
template <>
struct SamplePanel<PosBoolS> {
  static std::vector<PosBoolS::Value> Values() {
    return {PosBoolS::Zero(), PosBoolS::One(), PosBoolS::Var("x"),
            PosBoolS::Var("y"),
            PosBoolS::Times(PosBoolS::Var("x"), PosBoolS::Var("y")),
            PosBoolS::Plus(PosBoolS::Var("x"), PosBoolS::Var("y"))};
  }
};
template <>
struct SamplePanel<ProvPolyS> {
  static std::vector<ProvPolyS::Value> Values() {
    auto a = ProvPolyS::Var("a"), b = ProvPolyS::Var("b");
    return {ProvPolyS::Zero(), ProvPolyS::One(), a, b,
            ProvPolyS::Plus(a, b), ProvPolyS::Times(a, b),
            ProvPolyS::Plus(a, a)};
  }
};

template <typename P>
class PopsLawsTest : public ::testing::Test {};

using AllPops = ::testing::Types<
    BoolS, NatS, TropS, TropNatS, MaxPlusS, ViterbiS, FuzzyS, TropPS<2>,
    Lifted<RealS>, Lifted<NatS>, Completed<NatS>, ThreeS, FourS,
    ProductPops<BoolS, TropS>, PosBoolS, ProvPolyS>;
TYPED_TEST_SUITE(PopsLawsTest, AllPops);

TYPED_TEST(PopsLawsTest, AdditiveCommutativeMonoid) {
  using P = TypeParam;
  auto vs = SamplePanel<P>::Values();
  for (const auto& a : vs) {
    EXPECT_TRUE(P::Eq(P::Plus(a, P::Zero()), a));
    for (const auto& b : vs) {
      EXPECT_TRUE(P::Eq(P::Plus(a, b), P::Plus(b, a)));
      for (const auto& c : vs) {
        EXPECT_TRUE(P::Eq(P::Plus(P::Plus(a, b), c),
                          P::Plus(a, P::Plus(b, c))));
      }
    }
  }
}

TYPED_TEST(PopsLawsTest, MultiplicativeCommutativeMonoid) {
  using P = TypeParam;
  auto vs = SamplePanel<P>::Values();
  for (const auto& a : vs) {
    EXPECT_TRUE(P::Eq(P::Times(a, P::One()), a));
    for (const auto& b : vs) {
      EXPECT_TRUE(P::Eq(P::Times(a, b), P::Times(b, a)));
      for (const auto& c : vs) {
        EXPECT_TRUE(P::Eq(P::Times(P::Times(a, b), c),
                          P::Times(a, P::Times(b, c))));
      }
    }
  }
}

TYPED_TEST(PopsLawsTest, Distributivity) {
  using P = TypeParam;
  auto vs = SamplePanel<P>::Values();
  for (const auto& a : vs) {
    for (const auto& b : vs) {
      for (const auto& c : vs) {
        EXPECT_TRUE(P::Eq(P::Times(a, P::Plus(b, c)),
                          P::Plus(P::Times(a, b), P::Times(a, c))))
            << P::ToString(a) << " " << P::ToString(b) << " "
            << P::ToString(c);
      }
    }
  }
}

TYPED_TEST(PopsLawsTest, PartialOrderAxioms) {
  using P = TypeParam;
  auto vs = SamplePanel<P>::Values();
  for (const auto& a : vs) {
    EXPECT_TRUE(P::Leq(a, a));
    EXPECT_TRUE(P::Leq(P::Bottom(), a));  // ⊥ is the minimum
    for (const auto& b : vs) {
      if (P::Leq(a, b) && P::Leq(b, a)) {
        EXPECT_TRUE(P::Eq(a, b));  // antisymmetry
      }
      for (const auto& c : vs) {
        if (P::Leq(a, b) && P::Leq(b, c)) {
          EXPECT_TRUE(P::Leq(a, c));  // transitivity
        }
      }
    }
  }
}

TYPED_TEST(PopsLawsTest, OperatorsMonotoneUnderOrder) {
  using P = TypeParam;
  auto vs = SamplePanel<P>::Values();
  for (const auto& a : vs) {
    for (const auto& a2 : vs) {
      if (!P::Leq(a, a2)) continue;
      for (const auto& b : vs) {
        for (const auto& b2 : vs) {
          if (!P::Leq(b, b2)) continue;
          EXPECT_TRUE(P::Leq(P::Plus(a, b), P::Plus(a2, b2)));
          EXPECT_TRUE(P::Leq(P::Times(a, b), P::Times(a2, b2)));
        }
      }
    }
  }
}

TYPED_TEST(PopsLawsTest, ClaimedFlagsHold) {
  using P = TypeParam;
  auto vs = SamplePanel<P>::Values();
  for (const auto& a : vs) {
    if constexpr (P::kIsSemiring) {
      EXPECT_TRUE(P::Eq(P::Times(a, P::Zero()), P::Zero()))
          << "absorption fails on " << P::ToString(a);
    }
    if constexpr (P::kIdempotentPlus) {
      EXPECT_TRUE(P::Eq(P::Plus(a, a), a));
    }
    if constexpr (P::kNaturallyOrdered) {
      EXPECT_TRUE(P::Eq(P::Bottom(), P::Zero()));
      // a ⊑ a ⊕ b (the natural order contains the additive preorder).
      for (const auto& b : vs) {
        EXPECT_TRUE(P::Leq(a, P::Plus(a, b)))
            << P::ToString(a) << " vs " << P::ToString(P::Plus(a, b));
      }
    }
    // Strict multiplication: x ⊗ ⊥ = ⊥. The paper assumes strictness
    // "unless otherwise stated"; THREE and FOUR are the stated exceptions
    // (0 ∧ ⊥ = 0 is precisely what distinguishes THREE from the lifted
    // Booleans B⊥, Sec. 2.5.2).
    if constexpr (!std::is_same_v<P, ThreeS> && !std::is_same_v<P, FourS>) {
      EXPECT_TRUE(P::Eq(P::Times(a, P::Bottom()), P::Bottom()))
          << "strictness fails on " << P::ToString(a);
    } else {
      EXPECT_TRUE(P::Eq(P::Times(P::Zero(), P::Bottom()), P::Zero()));
    }
  }
}

/// Dioid difference-operator laws (Lemma 6.3).
template <typename P>
class DioidMinusTest : public ::testing::Test {};

using AllDioids =
    ::testing::Types<BoolS, TropS, TropNatS, MaxPlusS, ViterbiS, FuzzyS,
                     PosBoolS>;
TYPED_TEST_SUITE(DioidMinusTest, AllDioids);

TYPED_TEST(DioidMinusTest, MinusSatisfiesLemma63) {
  using P = TypeParam;
  static_assert(CompleteDistributiveDioid<P>);
  auto vs = SamplePanel<P>::Values();
  for (const auto& a : vs) {
    for (const auto& b : vs) {
      // Eq. (59): a ⊑ b implies a ⊕ (b ⊖ a) = b.
      if (P::Leq(a, b)) {
        EXPECT_TRUE(P::Eq(P::Plus(a, P::Minus(b, a)), b))
            << P::ToString(a) << " " << P::ToString(b);
      }
      // b ⊖ a ⊑ b (the difference never overshoots).
      EXPECT_TRUE(P::Leq(P::Minus(b, a), b));
      for (const auto& c : vs) {
        // Eq. (60): (a ⊕ b) ⊖ (a ⊕ c) = b ⊖ (a ⊕ c).
        EXPECT_TRUE(P::Eq(P::Minus(P::Plus(a, b), P::Plus(a, c)),
                          P::Minus(b, P::Plus(a, c))));
      }
    }
  }
}

}  // namespace
}  // namespace datalogo
