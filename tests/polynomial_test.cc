// Polynomials over POPS: explicit monomials, evaluation, degrees.
#include <gtest/gtest.h>

#include "src/poly/polynomial.h"
#include "src/semiring/lifted.h"
#include "src/semiring/reals.h"
#include "src/semiring/three.h"
#include "src/semiring/tropical.h"

namespace datalogo {
namespace {

TEST(Polynomial, EmptySumEvaluatesToZero) {
  Polynomial<TropS> f;
  EXPECT_EQ(f.Evaluate({1.0, 2.0}), TropS::Inf());
}

TEST(Polynomial, ConstantAndTerm) {
  auto c = Polynomial<TropS>::Constant(5.0);
  EXPECT_EQ(c.Evaluate({}), 5.0);
  auto t = Polynomial<TropS>::Term(2.0, 0);
  EXPECT_EQ(t.Evaluate({3.0}), 5.0);  // 2 ⊗ 3 = 2+3
}

TEST(Polynomial, MonomialPowers) {
  // 1 ⊗ x² over Trop+ = 2x.
  Monomial<TropS> m{TropS::One(), {{0, 2}}, {}};
  EXPECT_EQ(m.Evaluate({3.0}), 6.0);
  EXPECT_EQ(m.Degree(), 2);
}

TEST(Polynomial, ExplicitZeroCoefficientDiffersFromAbsence) {
  // Over R⊥: f(x) = 0·x is NOT the empty polynomial: f(⊥) = ⊥ ≠ 0.
  using L = Lifted<RealS>;
  Polynomial<L> f = Polynomial<L>::Term(L::Zero(), 0);
  EXPECT_TRUE(L::Eq(f.Evaluate({L::Bottom()}), L::Bottom()));
  Polynomial<L> g;  // no monomials
  EXPECT_TRUE(L::Eq(g.Evaluate({L::Bottom()}), L::Zero()));
}

TEST(Polynomial, NormalizeMergesRepeatedVariables) {
  Monomial<TropS> m{TropS::One(), {{1, 1}, {0, 1}, {1, 2}}, {}};
  m.Normalize();
  EXPECT_EQ(m.powers, (std::vector<std::pair<int, int>>{{0, 1}, {1, 3}}));
}

TEST(Polynomial, LinearityAndDegree) {
  Polynomial<TropS> f;
  f.Add(Monomial<TropS>{1.0, {}, {}});
  f.Add(Monomial<TropS>{2.0, {{0, 1}}, {}});
  EXPECT_TRUE(f.IsLinear());
  EXPECT_EQ(f.Degree(), 1);
  f.Add(Monomial<TropS>{3.0, {{0, 1}, {1, 1}}, {}});
  EXPECT_FALSE(f.IsLinear());
  EXPECT_EQ(f.Degree(), 2);
}

TEST(Polynomial, DependsOnSeesNegations) {
  Monomial<ThreeS> m{ThreeS::One(), {}, {2}};
  Polynomial<ThreeS> f;
  f.Add(m);
  EXPECT_TRUE(f.DependsOn(2));
  EXPECT_FALSE(f.DependsOn(0));
  EXPECT_EQ(f.Degree(), 1);  // the Not factor counts toward degree
}

TEST(Polynomial, NegationEvaluatesThroughNot) {
  // f(x) = 1 ∧ not(x) over THREE.
  Monomial<ThreeS> m{ThreeS::One(), {}, {0}};
  EXPECT_EQ(m.Evaluate({Kleene::kFalse}), Kleene::kTrue);
  EXPECT_EQ(m.Evaluate({Kleene::kTrue}), Kleene::kFalse);
  EXPECT_EQ(m.Evaluate({Kleene::kBot}), Kleene::kBot);
}

TEST(Polynomial, ToStringReadable) {
  Polynomial<TropS> f;
  f.Add(Monomial<TropS>{1.5, {{0, 1}, {1, 2}}, {}});
  EXPECT_EQ(f.ToString(), "1.5*x0*x1^2");
}

}  // namespace
}  // namespace datalogo
