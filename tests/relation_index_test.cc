// Tiered RelationIndex (relation.h): the direct (offset-addressed) and
// all-rows tiers must serve exactly the entry lists of the hash tier —
// same row ids, same order — over randomized id distributions, forced
// and auto selection, both scan kernels, tombstoned rows and
// post-Compact rebuilds. Plus the IndexCache refresh ladder: cache hits
// scan nothing, soft mutations refresh incrementally (counted into
// incremental_appends with builds/hits unchanged relative to the
// rebuild-everything behaviour), hard mutations rebuild and re-pick the
// tier.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "src/relation/relation.h"
#include "src/semiring/tropical.h"

namespace datalogo {
namespace {

constexpr IndexKind kAllKinds[] = {IndexKind::kHash, IndexKind::kDirect,
                                   IndexKind::kAuto};
constexpr ScanKernel kAllScans[] = {ScanKernel::kScalar, ScanKernel::kSimd};

/// Probes: every id in [0, max_id], a band beyond it, and extremes —
/// covers present keys, absent in-range keys, and the direct tier's
/// bounds check (including the unsigned-wrap path below base).
std::vector<Tuple> SingleColumnProbes(uint32_t max_id) {
  std::vector<Tuple> probes;
  for (uint32_t v = 0; v <= max_id + 8; ++v) probes.push_back({v});
  probes.push_back({0x7FFFFFFFu});
  probes.push_back({0xFFFFFFFFu});
  return probes;
}

/// Every built index kind × scan kernel must agree with the scalar hash
/// reference on every probe, list order included.
void ExpectTiersEquivalent(const Relation<TropS>& rel,
                           const std::vector<int>& positions,
                           const std::vector<Tuple>& probes) {
  RelationIndex<TropS> ref(rel, positions,
                           {IndexKind::kHash, ScanKernel::kScalar});
  for (IndexKind kind : kAllKinds) {
    for (ScanKernel scan : kAllScans) {
      RelationIndex<TropS> idx(rel, positions, {kind, scan});
      for (const Tuple& key : probes) {
        EXPECT_EQ(ref.Lookup(key), idx.Lookup(key))
            << "kind=" << static_cast<int>(kind)
            << " scan=" << static_cast<int>(scan) << " key0="
            << (key.size() ? key[0] : 0);
      }
    }
  }
}

TEST(RelationIndex, DenseIdsSelectDirectAndAgreeWithHash) {
  std::mt19937 rng(11);
  Relation<TropS> r(2);
  for (uint32_t i = 0; i < 200; ++i) {
    r.Set({i % 64, rng() % 64}, static_cast<double>(rng() % 100));
  }
  RelationIndex<TropS> auto_idx(r, {0}, {IndexKind::kAuto,
                                         ScanKernel::kSimd});
  EXPECT_EQ(auto_idx.repr(), IndexRepr::kDirectArray);
  EXPECT_FALSE(auto_idx.is_hash());
  ExpectTiersEquivalent(r, {0}, SingleColumnProbes(63));
  ExpectTiersEquivalent(r, {1}, SingleColumnProbes(63));
}

TEST(RelationIndex, SparseIdsSelectHashAndAgreeWithForcedDirect) {
  std::mt19937 rng(12);
  Relation<TropS> r(2);
  std::vector<uint32_t> keys;
  for (int i = 0; i < 40; ++i) {
    uint32_t k = rng() % (1u << 19);  // sparse but under kDirectSpanCap
    keys.push_back(k);
    r.Set({k, rng() % 8}, static_cast<double>(i));
  }
  RelationIndex<TropS> auto_idx(r, {0}, {IndexKind::kAuto,
                                         ScanKernel::kSimd});
  EXPECT_EQ(auto_idx.repr(), IndexRepr::kHashMap);
  // Forced direct on a sparse-but-in-cap column: wasteful, still exact.
  RelationIndex<TropS> forced(r, {0}, {IndexKind::kDirect,
                                       ScanKernel::kSimd});
  EXPECT_EQ(forced.repr(), IndexRepr::kDirectArray);
  RelationIndex<TropS> ref(r, {0}, {IndexKind::kHash, ScanKernel::kScalar});
  for (uint32_t k : keys) {
    EXPECT_EQ(ref.Lookup({k}), forced.Lookup({k}));
    EXPECT_EQ(ref.Lookup({k}), auto_idx.Lookup({k}));
    EXPECT_EQ(ref.Lookup({k + 1}), forced.Lookup({k + 1}));
  }
}

TEST(RelationIndex, SpanBeyondCapFallsBackToHashEvenWhenForced) {
  Relation<TropS> r(1);
  r.Set({0}, 1.0);
  r.Set({(1u << 20) + 5}, 2.0);  // span exceeds kDirectSpanCap
  RelationIndex<TropS> forced(r, {0}, {IndexKind::kDirect,
                                       ScanKernel::kSimd});
  EXPECT_EQ(forced.repr(), IndexRepr::kHashMap);
  EXPECT_EQ(forced.Lookup({0}).size(), 1u);
  EXPECT_EQ(forced.Lookup({(1u << 20) + 5}).size(), 1u);
  EXPECT_EQ(forced.Lookup({17}).size(), 0u);
}

TEST(RelationIndex, AutoThresholdStraddle) {
  // 50 dense keys 0..49 plus one outlier K: live = 51, span = K + 1,
  // and the kAuto density rule is span <= 4*live + 256 = 460. K = 459
  // sits exactly on the boundary (direct); K = 460 tips it to hash.
  for (uint32_t outlier : {459u, 460u}) {
    Relation<TropS> r(2);
    for (uint32_t i = 0; i < 50; ++i) r.Set({i, i}, 1.0);
    r.Set({outlier, 7}, 2.0);
    RelationIndex<TropS> idx(r, {0}, {IndexKind::kAuto, ScanKernel::kSimd});
    EXPECT_EQ(idx.repr(), outlier == 459u ? IndexRepr::kDirectArray
                                          : IndexRepr::kHashMap)
        << "outlier=" << outlier;
    ExpectTiersEquivalent(r, {0}, SingleColumnProbes(outlier));
  }
}

TEST(RelationIndex, TombstonedRowsExcludedFromEveryTier) {
  Relation<TropS> r(2);
  for (uint32_t i = 0; i < 32; ++i) r.Set({i % 8, i}, 1.0);
  for (uint32_t i = 0; i < 32; i += 3) {
    r.Set({i % 8, i}, TropS::Inf());  // ⊥ tombstones the row
  }
  ASSERT_GT(r.tombstones(), 0u);
  ExpectTiersEquivalent(r, {0}, SingleColumnProbes(8));
  ExpectTiersEquivalent(r, {}, {Tuple{}});
  // Post-Compact the surviving rows are renumbered; all tiers agree on
  // the new ids too.
  r.Compact();
  ASSERT_EQ(r.tombstones(), 0u);
  ExpectTiersEquivalent(r, {0}, SingleColumnProbes(8));
  ExpectTiersEquivalent(r, {}, {Tuple{}});
}

TEST(RelationIndex, RandomizedMutationEquivalence) {
  for (uint32_t seed = 0; seed < 8; ++seed) {
    std::mt19937 rng(seed);
    Relation<TropS> r(2);
    const uint32_t id_range = seed % 2 ? 48 : 4000;  // dense and sparse
    for (int op = 0; op < 300; ++op) {
      uint32_t a = rng() % id_range, b = rng() % 16;
      switch (rng() % 4) {
        case 0:
          r.Set({a, b}, static_cast<double>(rng() % 50));
          break;
        case 1:
          r.Merge({a, b}, static_cast<double>(rng() % 50));
          break;
        case 2:
          r.Set({a, b}, TropS::Inf());  // tombstone (or no-op if absent)
          break;
        case 3:
          if (rng() % 8 == 0) r.Compact();
          break;
      }
    }
    std::vector<Tuple> probes;
    for (int i = 0; i < 64; ++i) probes.push_back({rng() % (id_range + 8)});
    ExpectTiersEquivalent(r, {0}, probes);
    std::vector<Tuple> pair_probes;
    for (int i = 0; i < 64; ++i) {
      pair_probes.push_back({rng() % (id_range + 8), rng() % 18});
    }
    ExpectTiersEquivalent(r, {0, 1}, pair_probes);  // multi-col: hash tier
  }
}

TEST(RelationIndex, EmptyRelationEveryTier) {
  Relation<TropS> r(2);
  for (IndexKind kind : kAllKinds) {
    for (ScanKernel scan : kAllScans) {
      RelationIndex<TropS> idx(r, {0}, {kind, scan});
      EXPECT_EQ(idx.Lookup({0}).size(), 0u);
      EXPECT_EQ(idx.Lookup({12345}).size(), 0u);
    }
  }
}

// ------------------------------------------------------------ IndexCache

TEST(IndexCache, HitPathScansNothing) {
  Relation<TropS> r(2);
  for (uint32_t i = 0; i < 20; ++i) r.Set({i, i}, 1.0);
  IndexCache<TropS> cache;
  cache.Get(r, {0});
  const uint64_t scans_after_build = cache.scan_rows();
  EXPECT_GT(scans_after_build, 0u);
  for (int i = 0; i < 5; ++i) cache.Get(r, {0});
  EXPECT_EQ(cache.scan_rows(), scans_after_build);
  EXPECT_EQ(cache.builds(), 1u);
  EXPECT_EQ(cache.hits(), 5u);
}

TEST(IndexCache, AppendOnlyMutationRefreshesIncrementally) {
  Relation<TropS> r(2);
  for (uint32_t i = 0; i < 10; ++i) r.Set({i, i}, 1.0);
  IndexCache<TropS> cache;
  cache.set_config({IndexKind::kHash, ScanKernel::kScalar});
  const RelationIndex<TropS>* idx = &cache.Get(r, {0});
  for (uint32_t i = 10; i < 15; ++i) r.Set({i, i}, 1.0);  // soft appends
  const RelationIndex<TropS>* idx2 = &cache.Get(r, {0});
  EXPECT_EQ(idx, idx2);  // refreshed in place, not replaced
  EXPECT_EQ(cache.builds(), 2u);  // refresh still counts as a build
  EXPECT_EQ(cache.incremental_appends(), 5u);
  RelationIndex<TropS> fresh(r, {0});
  for (uint32_t v = 0; v < 20; ++v) {
    EXPECT_EQ(fresh.Lookup({v}), idx2->Lookup({v})) << v;
  }
}

TEST(IndexCache, DirectTierAppendsInRangeWithoutRebuild) {
  // A direct index refreshes in place as long as appended keys stay in
  // its bucket range — build with a span that already covers them.
  Relation<TropS> r(2);
  for (uint32_t i = 0; i < 10; ++i) r.Set({i, i}, 1.0);
  r.Set({19, 0}, 5.0);  // stretch the span to 20 up front
  IndexCache<TropS> cache;
  const RelationIndex<TropS>* idx = &cache.Get(r, {0});
  ASSERT_EQ(idx->repr(), IndexRepr::kDirectArray);
  for (uint32_t i = 10; i < 15; ++i) r.Set({i, i}, 1.0);  // in range
  const RelationIndex<TropS>* idx2 = &cache.Get(r, {0});
  EXPECT_EQ(idx, idx2);
  EXPECT_EQ(idx2->repr(), IndexRepr::kDirectArray);
  EXPECT_EQ(cache.incremental_appends(), 5u);
  RelationIndex<TropS> fresh(r, {0});
  for (uint32_t v = 0; v < 22; ++v) {
    EXPECT_EQ(fresh.Lookup({v}), idx2->Lookup({v})) << v;
  }
}

TEST(IndexCache, ClearRefillRefreshesByReappend) {
  Relation<TropS> r(2);
  for (uint32_t i = 0; i < 10; ++i) r.Set({i, i}, 1.0);
  IndexCache<TropS> cache;
  const RelationIndex<TropS>* idx = &cache.Get(r, {0});
  r.Clear();
  for (uint32_t i = 0; i < 7; ++i) r.Set({i + 2, i}, 3.0);
  const RelationIndex<TropS>* idx2 = &cache.Get(r, {0});
  EXPECT_EQ(idx, idx2);
  EXPECT_EQ(cache.incremental_appends(), 7u);
  RelationIndex<TropS> fresh(r, {0});
  for (uint32_t v = 0; v < 12; ++v) {
    EXPECT_EQ(fresh.Lookup({v}), idx2->Lookup({v})) << v;
  }
  EXPECT_EQ(idx2->Lookup({0}).size(), 0u);  // old key really gone
}

TEST(IndexCache, HardMutationRebuilds) {
  Relation<TropS> r(2);
  for (uint32_t i = 0; i < 10; ++i) r.Set({i, i}, 1.0);
  IndexCache<TropS> cache;
  cache.Get(r, {0});
  r.Set({4, 4}, TropS::Inf());  // tombstone: membership shrank, hard
  const RelationIndex<TropS>& idx = cache.Get(r, {0});
  EXPECT_EQ(cache.builds(), 2u);
  EXPECT_EQ(cache.incremental_appends(), 0u);  // no refresh was possible
  EXPECT_EQ(idx.Lookup({4}).size(), 0u);
  EXPECT_EQ(idx.Lookup({5}).size(), 1u);
}

TEST(IndexCache, RangeEscapingAppendRebuildsAndRepicksTier) {
  Relation<TropS> r(2);
  for (uint32_t i = 0; i < 10; ++i) r.Set({i, i}, 1.0);
  IndexCache<TropS> cache;
  const RelationIndex<TropS>& before = cache.Get(r, {0});
  EXPECT_EQ(before.repr(), IndexRepr::kDirectArray);
  // A soft append whose key escapes the direct tier's bucket range: the
  // in-place refresh must refuse (no partial mutation) and the rebuild
  // re-picks the tier — now hash, the column having gone sparse.
  r.Set({5000, 1}, 2.0);
  const RelationIndex<TropS>& after = cache.Get(r, {0});
  EXPECT_EQ(after.repr(), IndexRepr::kHashMap);
  EXPECT_EQ(after.Lookup({5000}).size(), 1u);
  EXPECT_EQ(after.Lookup({3}).size(), 1u);
  EXPECT_EQ(cache.incremental_appends(), 0u);
}

TEST(IndexCache, BuildAndHitCountersIdenticalAcrossKinds) {
  // The four pinned engine counters derive from builds()/hits(); they
  // must not depend on which tier serves the lookups.
  auto run = [](IndexKind kind) {
    Relation<TropS> r(2);
    IndexCache<TropS> cache;
    cache.set_config({kind, ScanKernel::kSimd});
    for (uint32_t i = 0; i < 10; ++i) r.Set({i, i}, 1.0);
    cache.Get(r, {0});
    cache.Get(r, {0});
    for (uint32_t i = 10; i < 14; ++i) r.Set({i, i}, 1.0);
    cache.Get(r, {0});
    r.Clear();
    for (uint32_t i = 0; i < 6; ++i) r.Set({i, i}, 2.0);
    cache.Get(r, {0});
    r.Set({2, 2}, TropS::Inf());
    cache.Get(r, {0});
    return std::pair<uint64_t, uint64_t>(cache.builds(), cache.hits());
  };
  const auto hash_counts = run(IndexKind::kHash);
  EXPECT_EQ(hash_counts, run(IndexKind::kDirect));
  EXPECT_EQ(hash_counts, run(IndexKind::kAuto));
}

TEST(IndexCache, PinnedEntriesSurviveEviction) {
  Relation<TropS> pinned_rel(1), transient_rel(1);
  pinned_rel.Set({1}, 1.0);
  transient_rel.Set({2}, 2.0);
  IndexCache<TropS> cache;
  cache.Get(pinned_rel, {0}, /*pin=*/true);
  cache.Get(transient_rel, {0});
  cache.MaybeEvict();
  cache.MaybeEvict();  // transient idle for a full epoch: dropped
  cache.Get(pinned_rel, {0});
  cache.Get(transient_rel, {0});
  EXPECT_EQ(cache.builds(), 3u);  // only the transient entry rebuilt
  EXPECT_EQ(cache.hits(), 1u);    // the pinned entry was still there
}

}  // namespace
}  // namespace datalogo
