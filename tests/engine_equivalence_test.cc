// Cross-check for the allocation-free join kernel: Naive and SemiNaive
// must produce the same fixpoints AND the same join-work counters as the
// seed's vector-tuple / recursive-lambda engine. The work goldens below
// were recorded from the seed engine on deterministic (RNG-free) chain
// and grid workloads; the compiled flat join program is required to visit
// exactly the same generator entries in the same multiplicity.
#include <gtest/gtest.h>

#include "src/datalogo.h"
#include "src/semiring/provenance.h"

namespace datalogo {
namespace {

constexpr const char* kLinearTc = R"(
  edb E/2.
  idb T/2.
  T(X,Y) :- E(X,Y) ; T(X,Z) * E(Z,Y).
)";

constexpr const char* kQuadraticTc = R"(
  edb E/2.
  idb T/2.
  T(X,Y) :- E(X,Y) ; T(X,Z) * T(Z,Y).
)";

constexpr const char* kSssp = R"(
  edb E/2.
  idb L/1.
  L(X) :- [X = v0] ; L(Z) * E(Z, X).
)";

Graph ChainGraph(int n) {
  Graph g(n);
  for (int i = 0; i + 1 < n; ++i) g.AddEdge(i, i + 1, 1.0);
  return g;
}

/// Runs both engines (with and without index caching) and checks the
/// fixpoints agree everywhere and the work counters hit the seed goldens.
template <Pops P>
  requires CompleteDistributiveDioid<P> && NaturallyOrderedSemiring<P>
void ExpectSeedBehaviour(const char* text, const Graph& g, auto&& lift,
                         uint64_t golden_naive_work,
                         uint64_t golden_semi_work) {
  Domain dom;
  auto prog = ParseProgram(text, &dom).value();
  std::vector<ConstId> ids = InternVertices(g.num_vertices(), &dom);
  EdbInstance<P> edb(prog);
  LoadEdges<P>(g, ids, lift, &edb.pops(prog.FindPredicate("E")));

  Engine<P> cached(prog, edb, EngineOptions{.cache_indexes = true});
  Engine<P> uncached(prog, edb, EngineOptions{.cache_indexes = false});
  auto naive = cached.Naive(1 << 20);
  auto semi = cached.SemiNaive(1 << 20);
  auto naive_u = uncached.Naive(1 << 20);
  auto semi_u = uncached.SemiNaive(1 << 20);

  ASSERT_TRUE(naive.converged);
  ASSERT_TRUE(semi.converged);
  EXPECT_TRUE(naive.idb.Equals(semi.idb));
  EXPECT_TRUE(naive.idb.Equals(naive_u.idb));
  EXPECT_TRUE(semi.idb.Equals(semi_u.idb));

  EXPECT_EQ(naive.work, golden_naive_work);
  EXPECT_EQ(semi.work, golden_semi_work);
  // Index caching must not change what the join visits, only index reuse.
  EXPECT_EQ(naive_u.work, golden_naive_work);
  EXPECT_EQ(semi_u.work, golden_semi_work);
}

TEST(EngineEquivalence, BooleanLinearTcChain80) {
  ExpectSeedBehaviour<BoolS>(kLinearTc, ChainGraph(80),
                             [](const Edge&) { return true; },
                             /*golden_naive_work=*/338120,
                             /*golden_semi_work=*/6320);
}

TEST(EngineEquivalence, BooleanQuadraticTcChain80) {
  ExpectSeedBehaviour<BoolS>(kQuadraticTc, ChainGraph(80),
                             [](const Edge&) { return true; },
                             /*golden_naive_work=*/244823,
                             /*golden_semi_work=*/95925);
}

TEST(EngineEquivalence, TropicalSsspChain80) {
  ExpectSeedBehaviour<TropS>(kSssp, ChainGraph(80),
                             [](const Edge& e) { return e.weight; },
                             /*golden_naive_work=*/6479,
                             /*golden_semi_work=*/159);
}

TEST(EngineEquivalence, TropicalApspGrid8x8) {
  ExpectSeedBehaviour<TropS>(kLinearTc, GridGraph(8, 8),
                             [](const Edge& e) { return e.weight; },
                             /*golden_naive_work=*/33936,
                             /*golden_semi_work=*/3248);
}

TEST(EngineEquivalence, ProvenancePosBoolChain6) {
  // PosBool[X] provenance on a labeled chain: x_i tags edge (v_i, v_i+1).
  // The fixpoint for T(v0, v5) must be the single clause {x0..x4}, and
  // both engines must do the seed's exact join work.
  Domain dom;
  auto prog = ParseProgram(kLinearTc, &dom).value();
  const int n = 6;
  Graph g = ChainGraph(n);
  std::vector<ConstId> ids = InternVertices(n, &dom);
  EdbInstance<PosBoolS> edb(prog);
  {
    int i = 0;
    for (const Edge& e : g.edges()) {
      edb.pops(prog.FindPredicate("E"))
          .Merge({ids[e.src], ids[e.dst]},
                 PosBoolS::Var("x" + std::to_string(i++)));
    }
  }
  Engine<PosBoolS> engine(prog, edb);
  auto naive = engine.Naive(1 << 20);
  auto semi = engine.SemiNaive(1 << 20);
  ASSERT_TRUE(naive.converged);
  ASSERT_TRUE(semi.converged);
  EXPECT_TRUE(naive.idb.Equals(semi.idb));

  PosBoolS::Clause all;
  for (int i = 0; i < n - 1; ++i) all.insert("x" + std::to_string(i));
  EXPECT_EQ(naive.idb.idb(prog.FindPredicate("T")).Get({ids[0], ids[n - 1]}),
            PosBoolS::Value{all});

  EXPECT_EQ(naive.work, 125u);
  EXPECT_EQ(semi.work, 30u);
}

}  // namespace
}  // namespace datalogo
