// Unit tests for the fork-join ThreadPool underneath the engine's
// parallel ICO step: task completion, reuse across batches, deterministic
// (lowest-index) exception propagation to the submitter, and the
// zero/one-thread degenerate mode that runs inline on the caller.
#include "src/core/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <latch>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace datalogo {
namespace {

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.workers(), 3);
  EXPECT_EQ(pool.concurrency(), 4);
  constexpr std::size_t kTasks = 1000;
  std::vector<std::atomic<int>> runs(kTasks);
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(kTasks, [&](std::size_t i) {
    runs[i].fetch_add(1);
    sum.fetch_add(i);
  });
  for (std::size_t i = 0; i < kTasks; ++i) EXPECT_EQ(runs[i].load(), 1);
  EXPECT_EQ(sum.load(), kTasks * (kTasks - 1) / 2);
}

TEST(ThreadPool, ZeroAndOneThreadRunInlineOnTheCaller) {
  for (int n : {0, 1}) {
    ThreadPool pool(n);
    EXPECT_EQ(pool.workers(), 0);
    EXPECT_EQ(pool.concurrency(), 1);
    const std::thread::id caller = std::this_thread::get_id();
    std::size_t ran = 0;
    std::size_t last = 0;
    pool.ParallelFor(64, [&](std::size_t i) {
      EXPECT_EQ(std::this_thread::get_id(), caller);
      // Inline mode is a plain ordered loop.
      if (ran > 0) EXPECT_EQ(i, last + 1);
      last = i;
      ++ran;
    });
    EXPECT_EQ(ran, 64u);
  }
}

TEST(ThreadPool, ReusableAcrossManyBatches) {
  ThreadPool pool(3);
  for (int batch = 0; batch < 100; ++batch) {
    std::atomic<int> count{0};
    pool.ParallelFor(17, [&](std::size_t) { count.fetch_add(1); });
    ASSERT_EQ(count.load(), 17) << "batch " << batch;
  }
  // Empty batches are a no-op, not a hang.
  pool.ParallelFor(0, [&](std::size_t) { FAIL() << "no tasks expected"; });
}

TEST(ThreadPool, PropagatesLowestIndexExceptionAfterFullBatch) {
  for (int threads : {1, 4}) {
    ThreadPool pool(threads);
    std::atomic<int> ran{0};
    try {
      pool.ParallelFor(100, [&](std::size_t i) {
        if (i == 7) throw std::runtime_error("task 7");
        if (i == 3) throw std::runtime_error("task 3");
        ran.fetch_add(1);
      });
      FAIL() << "expected an exception (threads=" << threads << ")";
    } catch (const std::runtime_error& e) {
      // Both tasks throw; the lowest index wins deterministically.
      EXPECT_STREQ(e.what(), "task 3") << "threads=" << threads;
    }
    // Every non-throwing task was still attempted.
    EXPECT_EQ(ran.load(), 98) << "threads=" << threads;
  }
}

TEST(ThreadPool, UsableAfterAnExceptionalBatch) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(
                   8, [](std::size_t i) {
                     if (i == 2) throw std::logic_error("boom");
                   }),
               std::logic_error);
  std::atomic<int> count{0};
  pool.ParallelFor(32, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPool, ProvidesRealConcurrency) {
  // Four tasks rendezvous at a latch: this can only complete if all four
  // run at the same time, i.e. the pool really provides concurrency 4
  // (3 workers + the submitting thread).
  ThreadPool pool(4);
  std::latch rendezvous(4);
  std::mutex mu;
  std::set<std::thread::id> ids;
  pool.ParallelFor(4, [&](std::size_t) {
    {
      std::lock_guard<std::mutex> lk(mu);
      ids.insert(std::this_thread::get_id());
    }
    rendezvous.arrive_and_wait();
  });
  EXPECT_EQ(ids.size(), 4u);
}

TEST(ThreadPool, SubmitterObservesTaskWritesWithoutAtomics) {
  // The barrier at the end of ParallelFor must publish every task's
  // plain (non-atomic) writes to the submitter — the engine's partial
  // relations depend on it.
  ThreadPool pool(4);
  std::vector<uint64_t> out(512, 0);
  pool.ParallelFor(out.size(), [&](std::size_t i) { out[i] = i * i; });
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

}  // namespace
}  // namespace datalogo
