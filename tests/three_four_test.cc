// THREE and FOUR (Secs. 2.5.2 and 7.3): Kleene tables, knowledge order,
// Not monotonicity, and Fitting's no-⊤-in-lfp property on FOUR.
#include <gtest/gtest.h>

#include "src/datalogo.h"

namespace datalogo {
namespace {

TEST(Three, KleeneTruthTables) {
  const Kleene B = Kleene::kBot, F = Kleene::kFalse, T = Kleene::kTrue;
  // ∨ = max_t with 0 ≤t ⊥ ≤t 1.
  EXPECT_EQ(ThreeS::Plus(F, B), B);
  EXPECT_EQ(ThreeS::Plus(T, B), T);
  EXPECT_EQ(ThreeS::Plus(F, T), T);
  // ∧ = min_t — note 0 ∧ ⊥ = 0 (THREE ≠ B⊥).
  EXPECT_EQ(ThreeS::Times(F, B), F);
  EXPECT_EQ(ThreeS::Times(T, B), B);
  EXPECT_EQ(ThreeS::Times(T, F), F);
}

TEST(Three, KnowledgeOrder) {
  EXPECT_TRUE(ThreeS::Leq(Kleene::kBot, Kleene::kFalse));
  EXPECT_TRUE(ThreeS::Leq(Kleene::kBot, Kleene::kTrue));
  EXPECT_FALSE(ThreeS::Leq(Kleene::kFalse, Kleene::kTrue));
  EXPECT_FALSE(ThreeS::Leq(Kleene::kTrue, Kleene::kFalse));
}

TEST(Three, NotIsMonotoneInKnowledgeOrder) {
  const Kleene all[] = {Kleene::kBot, Kleene::kFalse, Kleene::kTrue};
  for (Kleene a : all) {
    for (Kleene b : all) {
      if (ThreeS::Leq(a, b)) {
        EXPECT_TRUE(ThreeS::Leq(ThreeS::Not(a), ThreeS::Not(b)));
      }
    }
  }
  EXPECT_EQ(ThreeS::Not(Kleene::kBot), Kleene::kBot);
  EXPECT_EQ(ThreeS::Not(ThreeS::Not(Kleene::kFalse)), Kleene::kFalse);
}

TEST(Three, CoreSemiringIsIsomorphicToB) {
  // THREE∨⊥ = {⊥, 1} (Sec. 2.5.2).
  using C = CoreSemiring<ThreeS>;
  EXPECT_EQ(C::Inject(Kleene::kFalse), Kleene::kBot);
  EXPECT_EQ(C::Inject(Kleene::kBot), Kleene::kBot);
  EXPECT_EQ(C::Inject(Kleene::kTrue), Kleene::kTrue);
}

TEST(Four, LatticeStructure) {
  const Belnap B = Belnap::kBot, F = Belnap::kFalse, T = Belnap::kTrue,
               Top = Belnap::kTop;
  // Truth-order lub/glb (Fig. 5): ⊥ ∨t ⊤ = 1, ⊥ ∧t ⊤ = 0.
  EXPECT_EQ(FourS::Plus(B, Top), T);
  EXPECT_EQ(FourS::Times(B, Top), F);
  EXPECT_EQ(FourS::Plus(F, B), B);
  EXPECT_EQ(FourS::Times(T, Top), Top);
  // Knowledge order.
  EXPECT_TRUE(FourS::Leq(B, F));
  EXPECT_TRUE(FourS::Leq(T, Top));
  EXPECT_FALSE(FourS::Leq(F, T));
  // Negation fixes ⊥ and ⊤.
  EXPECT_EQ(FourS::Not(Top), Top);
  EXPECT_EQ(FourS::Not(B), B);
}

TEST(Four, TopNeverAppearsInLeastFixpoint) {
  // Fitting ([21] Prop. 7.1): iterating from ⊥ never manufactures ⊤.
  // Win-move over FOUR on random graphs stays ⊤-free.
  constexpr const char* kWinMove = R"(
    bedb E/2.
    idb W/1.
    W(X) :- { !W(Y) | E(X, Y) }.
  )";
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Domain dom;
    auto prog = ParseProgram(kWinMove, &dom);
    ASSERT_TRUE(prog.ok());
    Graph g = RandomGraph(7, 12, seed);
    std::vector<ConstId> ids = InternVertices(7, &dom);
    EdbInstance<FourS> edb(prog.value());
    LoadEdgesBool(g, ids, &edb.boolean(prog.value().FindPredicate("E")));
    auto grounded = GroundProgram<FourS>(prog.value(), edb);
    auto iter = grounded.NaiveIterate(200);
    ASSERT_TRUE(iter.converged);
    for (const Belnap& v : iter.values) {
      EXPECT_NE(v, Belnap::kTop);
    }
  }
}

TEST(Four, AgreesWithThreeOnWinMove) {
  // With no ⊤ inputs, FOUR's fixpoint projects onto THREE's.
  constexpr const char* kWinMove = R"(
    bedb E/2.
    idb W/1.
    W(X) :- { !W(Y) | E(X, Y) }.
  )";
  Domain dom;
  auto prog = ParseProgram(kWinMove, &dom);
  ASSERT_TRUE(prog.ok());
  Graph g = RandomGraph(8, 16, /*seed=*/33);
  std::vector<ConstId> ids = InternVertices(8, &dom);

  EdbInstance<FourS> edb4(prog.value());
  LoadEdgesBool(g, ids, &edb4.boolean(prog.value().FindPredicate("E")));
  auto g4 = GroundProgram<FourS>(prog.value(), edb4);
  auto r4 = g4.NaiveIterate(200);

  EdbInstance<ThreeS> edb3(prog.value());
  LoadEdgesBool(g, ids, &edb3.boolean(prog.value().FindPredicate("E")));
  auto g3 = GroundProgram<ThreeS>(prog.value(), edb3);
  auto r3 = g3.NaiveIterate(200);

  ASSERT_TRUE(r4.converged && r3.converged);
  ASSERT_EQ(r4.values.size(), r3.values.size());
  auto project = [](Belnap b) {
    switch (b) {
      case Belnap::kBot:
        return Kleene::kBot;
      case Belnap::kFalse:
        return Kleene::kFalse;
      case Belnap::kTrue:
        return Kleene::kTrue;
      default:
        return Kleene::kBot;  // unreachable in a lfp
    }
  };
  for (std::size_t i = 0; i < r4.values.size(); ++i) {
    EXPECT_EQ(project(r4.values[i]), r3.values[i]) << i;
  }
}

}  // namespace
}  // namespace datalogo
