// Tests for EngineOptions::scheduler — the triggered-rule ordered
// scheduler (reliance-graph SCC condensation with per-group local
// fixpoints) against the default global sweep:
//   * single-group programs (every golden recursion) replay the sweep
//     trace bit for bit: fixpoints, steps, `work`, and all four index
//     counters, pinned against the seed work goldens;
//   * multi-group programs reach identical fixpoints with no more join
//     work, across {B, Trop, PosBool} x {naive, semi-naive} x threads
//     {1, 4} (steps and counters legitimately differ there: ordered
//     spends a seed round per group and skips drained rules);
//   * ordered's own counters are thread-count invariant;
//   * triggered sets actually drain: alternating deltas in a mutual
//     recursion produce a nonzero rules_skipped().
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/datalogo.h"
#include "src/semiring/provenance.h"

namespace datalogo {
namespace {

constexpr const char* kLinearTc = R"(
  edb E/2.
  idb T/2.
  T(X,Y) :- E(X,Y) ; T(X,Z) * E(Z,Y).
)";

constexpr const char* kQuadraticTc = R"(
  edb E/2.
  idb T/2.
  T(X,Y) :- E(X,Y) ; T(X,Z) * T(Z,Y).
)";

constexpr const char* kSssp = R"(
  edb E/2.
  idb L/1.
  L(X) :- [X = v0] ; L(Z) * E(Z, X).
)";

// Base group + mutually recursive Odd/Even group + downstream recursive
// closure group — the scheduler's multi-group exercise program (also the
// bench_seminaive scheduler workload and examples/data/parity_paths.dl).
constexpr const char* kParityPaths = R"(
  edb E/2.
  idb Odd/2. idb Even/2. idb T/2.
  Odd(X,Y) :- E(X,Y).
  Odd(X,Y) :- Even(X,Z) * E(Z,Y).
  Even(X,Y) :- Odd(X,Z) * E(Z,Y).
  T(X,Y) :- Even(X,Y) ; Odd(X,Y) ; T(X,Z) * T(Z,Y).
)";

Graph ChainGraph(int n) {
  Graph g(n);
  for (int i = 0; i + 1 < n; ++i) g.AddEdge(i, i + 1, 1.0);
  return g;
}

template <Pops P>
struct SchedRun {
  EvalResult<P> result;
  uint64_t index_builds, index_hits, idb_index_builds, idb_index_hits;
  uint64_t group_iterations, rules_skipped;
  int groups;
};

template <Pops P>
  requires CompleteDistributiveDioid<P> && NaturallyOrderedSemiring<P>
SchedRun<P> RunOnce(const Program& prog, const EdbInstance<P>& edb,
               Scheduler sched, bool semi, int threads) {
  Engine<P> engine(prog, edb,
                   EngineOptions{.num_threads = threads, .scheduler = sched});
  SchedRun<P> out{semi ? engine.SemiNaive(1 << 20) : engine.Naive(1 << 20),
             engine.index_builds(),
             engine.index_hits(),
             engine.idb_index_builds(),
             engine.idb_index_hits(),
             engine.group_iterations(),
             engine.rules_skipped(),
             engine.reliance().num_groups()};
  EXPECT_TRUE(out.result.converged);
  return out;
}

/// Single-group programs: ordered must replay the sweep trace exactly —
/// fixpoint, steps, work (pinned to the seed golden) and index counters,
/// sequentially and at 4 threads.
template <Pops P>
  requires CompleteDistributiveDioid<P> && NaturallyOrderedSemiring<P>
void ExpectBitIdentical(const char* text, const Graph& g, auto&& lift,
                        uint64_t golden_semi_work) {
  Domain dom;
  auto prog = ParseProgram(text, &dom).value();
  std::vector<ConstId> ids = InternVertices(g.num_vertices(), &dom);
  EdbInstance<P> edb(prog);
  LoadEdges<P>(g, ids, lift, &edb.pops(prog.FindPredicate("E")));
  for (bool semi : {false, true}) {
    for (int threads : {1, 4}) {
      SchedRun<P> sweep = RunOnce<P>(prog, edb, Scheduler::kSweep, semi, threads);
      SchedRun<P> ordered =
          RunOnce<P>(prog, edb, Scheduler::kOrdered, semi, threads);
      EXPECT_TRUE(sweep.result.idb.Equals(ordered.result.idb));
      EXPECT_EQ(sweep.result.steps, ordered.result.steps);
      EXPECT_EQ(sweep.result.work, ordered.result.work);
      EXPECT_EQ(sweep.index_builds, ordered.index_builds);
      EXPECT_EQ(sweep.index_hits, ordered.index_hits);
      EXPECT_EQ(sweep.idb_index_builds, ordered.idb_index_builds);
      EXPECT_EQ(sweep.idb_index_hits, ordered.idb_index_hits);
      if (semi) EXPECT_EQ(ordered.result.work, golden_semi_work);
    }
  }
}

TEST(EngineScheduler, BitIdenticalOnBooleanLinearTcChain80) {
  ExpectBitIdentical<BoolS>(kLinearTc, ChainGraph(80),
                            [](const Edge&) { return true; },
                            /*golden_semi_work=*/6320);
}

TEST(EngineScheduler, BitIdenticalOnBooleanQuadraticTcChain80) {
  ExpectBitIdentical<BoolS>(kQuadraticTc, ChainGraph(80),
                            [](const Edge&) { return true; },
                            /*golden_semi_work=*/95925);
}

TEST(EngineScheduler, BitIdenticalOnTropicalSsspChain80) {
  ExpectBitIdentical<TropS>(kSssp, ChainGraph(80),
                            [](const Edge& e) { return e.weight; },
                            /*golden_semi_work=*/159);
}

TEST(EngineScheduler, BitIdenticalOnTropicalApspGrid8x8) {
  ExpectBitIdentical<TropS>(kLinearTc, GridGraph(8, 8),
                            [](const Edge& e) { return e.weight; },
                            /*golden_semi_work=*/3248);
}

/// Multi-group programs: identical fixpoints across semirings, modes and
/// thread counts; ordered never does more join work than the sweep.
template <Pops P>
  requires CompleteDistributiveDioid<P> && NaturallyOrderedSemiring<P>
void ExpectEquivalentFixpoints(const char* text, const Graph& g,
                               auto&& lift) {
  Domain dom;
  auto prog = ParseProgram(text, &dom).value();
  std::vector<ConstId> ids = InternVertices(g.num_vertices(), &dom);
  EdbInstance<P> edb(prog);
  LoadEdges<P>(g, ids, lift, &edb.pops(prog.FindPredicate("E")));
  for (bool semi : {false, true}) {
    for (int threads : {1, 4}) {
      SchedRun<P> sweep = RunOnce<P>(prog, edb, Scheduler::kSweep, semi, threads);
      SchedRun<P> ordered =
          RunOnce<P>(prog, edb, Scheduler::kOrdered, semi, threads);
      EXPECT_TRUE(sweep.result.idb.Equals(ordered.result.idb))
          << "semi=" << semi << " threads=" << threads;
      EXPECT_LE(ordered.result.work, sweep.result.work);
    }
  }
}

TEST(EngineScheduler, ParityPathsMatchOnBoolean) {
  ExpectEquivalentFixpoints<BoolS>(kParityPaths, RandomGraph(40, 120, 7),
                                   [](const Edge&) { return true; });
}

TEST(EngineScheduler, ParityPathsMatchOnTropical) {
  ExpectEquivalentFixpoints<TropS>(kParityPaths, RandomGraph(40, 120, 7),
                                   [](const Edge& e) { return e.weight; });
}

TEST(EngineScheduler, PosBoolProvenanceMatchesAcrossSchedulers) {
  // PosBool[X] provenance on a labeled chain, run through the multi-head
  // base/step split (two groups sharing the head predicate T).
  constexpr const char* kSplitTc = R"(
    edb E/2.
    idb T/2.
    T(X,Y) :- E(X,Y).
    T(X,Y) :- T(X,Z) * E(Z,Y).
  )";
  Domain dom;
  auto prog = ParseProgram(kSplitTc, &dom).value();
  const int n = 6;
  Graph g = ChainGraph(n);
  std::vector<ConstId> ids = InternVertices(n, &dom);
  EdbInstance<PosBoolS> edb(prog);
  {
    int i = 0;
    for (const Edge& e : g.edges()) {
      edb.pops(prog.FindPredicate("E"))
          .Merge({ids[e.src], ids[e.dst]},
                 PosBoolS::Var("x" + std::to_string(i++)));
    }
  }
  for (bool semi : {false, true}) {
    for (int threads : {1, 4}) {
      SchedRun<PosBoolS> sweep =
          RunOnce<PosBoolS>(prog, edb, Scheduler::kSweep, semi, threads);
      SchedRun<PosBoolS> ordered =
          RunOnce<PosBoolS>(prog, edb, Scheduler::kOrdered, semi, threads);
      EXPECT_TRUE(sweep.result.idb.Equals(ordered.result.idb));
      PosBoolS::Clause all;
      for (int i = 0; i < n - 1; ++i) all.insert("x" + std::to_string(i));
      EXPECT_EQ(ordered.result.idb.idb(prog.FindPredicate("T"))
                    .Get({ids[0], ids[n - 1]}),
                PosBoolS::Value{all});
    }
  }
}

TEST(EngineScheduler, OrderedCountersAreThreadCountInvariant) {
  Domain dom;
  auto prog = ParseProgram(kParityPaths, &dom).value();
  Graph g = RandomGraph(40, 120, 7);
  std::vector<ConstId> ids = InternVertices(40, &dom);
  EdbInstance<TropS> edb(prog);
  LoadEdges<TropS>(g, ids, [](const Edge& e) { return e.weight; },
                   &edb.pops(prog.FindPredicate("E")));
  SchedRun<TropS> t1 = RunOnce<TropS>(prog, edb, Scheduler::kOrdered,
                                 /*semi=*/true, /*threads=*/1);
  SchedRun<TropS> t4 = RunOnce<TropS>(prog, edb, Scheduler::kOrdered,
                                 /*semi=*/true, /*threads=*/4);
  EXPECT_TRUE(t1.result.idb.Equals(t4.result.idb));
  EXPECT_EQ(t1.result.steps, t4.result.steps);
  EXPECT_EQ(t1.result.work, t4.result.work);
  EXPECT_EQ(t1.index_builds, t4.index_builds);
  EXPECT_EQ(t1.index_hits, t4.index_hits);
  EXPECT_EQ(t1.idb_index_builds, t4.idb_index_builds);
  EXPECT_EQ(t1.idb_index_hits, t4.idb_index_hits);
  EXPECT_EQ(t1.group_iterations, t4.group_iterations);
  EXPECT_EQ(t1.rules_skipped, t4.rules_skipped);
}

TEST(EngineScheduler, TriggeredSetSkipsDrainedRules) {
  // The Odd/Even deltas drain in alternation (one parity moves per local
  // round), so every round skips one of the two step rules.
  Domain dom;
  auto prog = ParseProgram(kParityPaths, &dom).value();
  Graph g = ChainGraph(16);
  std::vector<ConstId> ids = InternVertices(16, &dom);
  EdbInstance<TropS> edb(prog);
  LoadEdges<TropS>(g, ids, [](const Edge& e) { return e.weight; },
                   &edb.pops(prog.FindPredicate("E")));
  SchedRun<TropS> ordered = RunOnce<TropS>(prog, edb, Scheduler::kOrdered,
                                      /*semi=*/true, /*threads=*/1);
  SchedRun<TropS> sweep = RunOnce<TropS>(prog, edb, Scheduler::kSweep,
                                    /*semi=*/true, /*threads=*/1);
  EXPECT_TRUE(ordered.result.idb.Equals(sweep.result.idb));
  // Groups: {Odd base}, {Odd step, Even step}, {T closure}.
  EXPECT_EQ(ordered.groups, 3);
  EXPECT_GT(ordered.rules_skipped, 0u);
  EXPECT_GT(ordered.group_iterations, 0u);
  EXPECT_LT(ordered.result.work, sweep.result.work);
  // The sweep scheduler never skips and never counts local rounds.
  EXPECT_EQ(sweep.rules_skipped, 0u);
  EXPECT_EQ(sweep.group_iterations, 0u);
}

TEST(EngineScheduler, TriggeredSetDrainsThroughDeltas) {
  // Mutual recursion with an asymmetric step relation: Q's deltas die out
  // long before P's, so the triggered set must shrink (skips accumulate)
  // while the fixpoint still matches the sweep exactly.
  constexpr const char* kAsymmetric = R"(
    edb E/2. edb F/2.
    idb P/2. idb Q/2.
    P(X,Y) :- E(X,Y).
    P(X,Y) :- Q(X,Z) * E(Z,Y).
    Q(X,Y) :- P(X,Z) * F(Z,Y).
  )";
  Domain dom;
  auto prog = ParseProgram(kAsymmetric, &dom).value();
  EdbInstance<TropS> edb(prog);
  std::vector<ConstId> ids = InternVertices(12, &dom);
  auto& e_rel = edb.pops(prog.FindPredicate("E"));
  for (int i = 0; i + 1 < 12; ++i) e_rel.Set({ids[i], ids[i + 1]}, 1.0);
  edb.pops(prog.FindPredicate("F")).Set({ids[3], ids[4]}, 0.5);
  SchedRun<TropS> ordered = RunOnce<TropS>(prog, edb, Scheduler::kOrdered,
                                      /*semi=*/true, /*threads=*/1);
  SchedRun<TropS> sweep = RunOnce<TropS>(prog, edb, Scheduler::kSweep,
                                    /*semi=*/true, /*threads=*/1);
  EXPECT_TRUE(ordered.result.idb.Equals(sweep.result.idb));
  EXPECT_EQ(ordered.groups, 2);
  EXPECT_GT(ordered.rules_skipped, 0u);
  EXPECT_LE(ordered.result.work, sweep.result.work);
}

TEST(EngineScheduler, EdbColumnsAreScannedOncePerSpecAcrossGroups) {
  // E feeds the first group (A's base rule) and the last (C's join);
  // between them an E-free recursive group runs its own local fixpoint.
  // EDB relations never mutate during a run, so every re-read of E after
  // the first build per key-spec must be a pure cache hit that scans no
  // rows: edb_index_scan_rows() has to come out identical across
  // {sweep, ordered} × {naive, semi-naive} even though those four runs
  // hit the cached E indexes a very different number of times.
  constexpr const char* kThreeGroups = R"(
    edb E/2.
    idb A/2. idb B/2. idb C/2.
    A(X,Y) :- E(X,Y).
    B(X,Y) :- A(X,Y) ; B(X,Z) * A(Z,Y).
    C(X,Y) :- B(X,Y) * E(X,Y).
  )";
  Domain dom;
  auto prog = ParseProgram(kThreeGroups, &dom).value();
  Graph g = ChainGraph(24);
  std::vector<ConstId> ids = InternVertices(24, &dom);
  EdbInstance<TropS> edb(prog);
  LoadEdges<TropS>(g, ids, [](const Edge& e) { return e.weight; },
                   &edb.pops(prog.FindPredicate("E")));
  for (IndexKind kind : {IndexKind::kHash, IndexKind::kAuto}) {
    uint64_t expected_scan_rows = 0;
    bool first = true;
    for (Scheduler sched : {Scheduler::kSweep, Scheduler::kOrdered}) {
      for (bool semi : {false, true}) {
        SCOPED_TRACE(std::string(kind == IndexKind::kHash ? "hash" : "auto") +
                     (sched == Scheduler::kOrdered ? "/ordered" : "/sweep") +
                     (semi ? "/semi" : "/naive"));
        Engine<TropS> engine(
            prog, edb,
            EngineOptions{.scheduler = sched,
                          .index_kind = kind,
                          .scan_kernel = ScanKernel::kScalar});
        EvalResult<TropS> r =
            semi ? engine.SemiNaive(1 << 20) : engine.Naive(1 << 20);
        ASSERT_TRUE(r.converged);
        // The sweep re-prepares every rule each global round, so E must
        // be served from cache there. (Ordered may legitimately read E
        // once per group and never hit — the equality below still pins
        // its hit path to zero scan rows.)
        if (sched == Scheduler::kSweep) {
          EXPECT_GT(engine.index_hits(), engine.idb_index_hits());
        }
        if (first) {
          expected_scan_rows = engine.edb_index_scan_rows();
          // Builds scan E at most a few full passes: one per distinct
          // key-spec (plus the auto tier's min/max detection pass).
          EXPECT_GT(expected_scan_rows, 0u);
          EXPECT_LE(expected_scan_rows, 8 * g.edges().size());
          first = false;
        } else {
          EXPECT_EQ(engine.edb_index_scan_rows(), expected_scan_rows);
        }
      }
    }
  }
}

TEST(EngineScheduler, BudgetIsATotalAcrossGroups) {
  // With a max_steps budget too small to finish, ordered must report
  // non-convergence with steps == max_steps, exactly like the sweep.
  Domain dom;
  auto prog = ParseProgram(kParityPaths, &dom).value();
  Graph g = ChainGraph(32);
  std::vector<ConstId> ids = InternVertices(32, &dom);
  EdbInstance<TropS> edb(prog);
  LoadEdges<TropS>(g, ids, [](const Edge& e) { return e.weight; },
                   &edb.pops(prog.FindPredicate("E")));
  for (bool semi : {false, true}) {
    Engine<TropS> engine(prog, edb,
                         EngineOptions{.scheduler = Scheduler::kOrdered});
    EvalResult<TropS> r = semi ? engine.SemiNaive(3) : engine.Naive(3);
    EXPECT_FALSE(r.converged) << "semi=" << semi;
    EXPECT_EQ(r.steps, 3);
  }
}

}  // namespace
}  // namespace datalogo
