// Trop+_p (Example 2.9): bag arithmetic, natural order, and the Eq. (15)
// commutation identities that let expressions be evaluated with one final
// min_p.
#include <gtest/gtest.h>

#include <random>

#include "src/semiring/trop_p.h"
#include "src/semiring/traits.h"

namespace datalogo {
namespace {

using T2 = TropPS<2>;

T2::Value RandomBag(std::mt19937_64& rng) {
  // Dyadic weights (k/4) keep double addition exact, so the law checks
  // are not confounded by re-association rounding.
  T2::Value v;
  for (int i = 0; i < T2::kBagSize; ++i) {
    v[i] = (rng() % 4 == 0) ? T2::Inf() : static_cast<double>(rng() % 40) / 4;
  }
  std::sort(v.begin(), v.end());
  return v;
}

TEST(TropP, Identities) {
  auto a = T2::Value{1, 2, 3};
  EXPECT_TRUE(T2::Eq(T2::Plus(a, T2::Zero()), a));
  EXPECT_TRUE(T2::Eq(T2::Times(a, T2::One()), a));
  EXPECT_TRUE(T2::Eq(T2::Times(a, T2::Zero()), T2::Zero()));
}

TEST(TropP, PlusKeepsSmallestWithMultiplicity) {
  // Bags, not sets: duplicates survive.
  auto a = T2::Value{1, 5, 9};
  EXPECT_TRUE(T2::Eq(T2::Plus(a, a), T2::Value{1, 1, 5}));
}

TEST(TropP, TimesIsMinkowskiMin) {
  auto a = T2::Value{0, 1, T2::Inf()};
  auto b = T2::Value{2, 3, T2::Inf()};
  EXPECT_TRUE(T2::Eq(T2::Times(a, b), T2::Value{2, 3, 3}));
}

TEST(TropP, NaturalOrderSemantics) {
  // a ⪯ b iff ∃c. a ⊕ c = b: adding elements can push the tail of a out
  // of the bag but cannot delete entries below the new maximum.
  auto a = T2::Value{3, 7, 9};
  EXPECT_TRUE(T2::Leq(a, T2::Value{1, 3, 7}));   // c = {1, …}
  EXPECT_TRUE(T2::Leq(a, T2::Value{1, 2, 3}));   // c = {1, 2, …}
  EXPECT_TRUE(T2::Leq(a, T2::Value{1, 2, 2}));   // 3 pushed out entirely
  EXPECT_FALSE(T2::Leq(a, T2::Value{1, 2, 9}));  // 3, 7 missing below 9
  EXPECT_FALSE(T2::Leq(a, T2::Value{1, 4, 7}));  // 3 missing below 7
  EXPECT_TRUE(T2::Leq(a, a));                    // reflexive
  // Coherence with ⊕: a ⪯ a ⊕ b always.
  auto b = T2::Value{1, 2, 9};
  EXPECT_TRUE(T2::Leq(a, T2::Plus(a, b)));
  EXPECT_TRUE(T2::Leq(b, T2::Plus(a, b)));
}

TEST(TropP, RandomizedSemiringLaws) {
  std::mt19937_64 rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    auto a = RandomBag(rng), b = RandomBag(rng), c = RandomBag(rng);
    EXPECT_TRUE(T2::Eq(T2::Plus(a, b), T2::Plus(b, a)));
    EXPECT_TRUE(T2::Eq(T2::Times(a, b), T2::Times(b, a)));
    EXPECT_TRUE(T2::Eq(T2::Plus(T2::Plus(a, b), c),
                       T2::Plus(a, T2::Plus(b, c))));
    EXPECT_TRUE(T2::Eq(T2::Times(T2::Times(a, b), c),
                       T2::Times(a, T2::Times(b, c))));
    EXPECT_TRUE(T2::Eq(T2::Times(a, T2::Plus(b, c)),
                       T2::Plus(T2::Times(a, b), T2::Times(a, c))));
  }
}

TEST(TropP, Eq15CommutationWithTruncation) {
  // min_p(min_p(x) ⊎ min_p(y)) = min_p(x ⊎ y) and the ⊗ analogue — here
  // checked through associativity-with-truncation on random triples: the
  // truncated results never depend on intermediate truncation order.
  std::mt19937_64 rng(9);
  for (int trial = 0; trial < 100; ++trial) {
    auto a = RandomBag(rng), b = RandomBag(rng), c = RandomBag(rng);
    // (a ⊗ b) ⊗ c with early truncation equals min_p over all 27 sums.
    auto lhs = T2::Times(T2::Times(a, b), c);
    std::vector<double> all;
    for (double x : a) {
      for (double y : b) {
        for (double z : c) all.push_back(x + y + z);
      }
    }
    std::sort(all.begin(), all.end());
    T2::Value rhs{all[0], all[1], all[2]};
    EXPECT_TRUE(T2::Eq(lhs, rhs));
  }
}

TEST(TropP, ZeroCaseDegeneratesToTrop) {
  using T0 = TropPS<0>;
  auto a = T0::FromScalar(3.0), b = T0::FromScalar(5.0);
  EXPECT_TRUE(T0::Eq(T0::Plus(a, b), T0::FromScalar(3.0)));
  EXPECT_TRUE(T0::Eq(T0::Times(a, b), T0::FromScalar(8.0)));
  static_assert(T0::kIdempotentPlus);
  static_assert(!TropPS<1>::kIdempotentPlus);
}

TEST(TropP, ToStringRendersBags) {
  EXPECT_EQ(T2::ToString(T2::One()), "{{0,inf,inf}}");
}

}  // namespace
}  // namespace datalogo
