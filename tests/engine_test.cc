// Unit tests for the support-based relational engine (Algorithm 1).
#include <gtest/gtest.h>

#include "src/datalogo.h"

namespace datalogo {
namespace {

constexpr const char* kTc = R"(
  edb E/2.
  idb T/2.
  T(X,Y) :- E(X,Y) ; T(X,Z) * E(Z,Y).
)";

TEST(Engine, TransitiveClosureMatchesBfsOracle) {
  Domain dom;
  auto prog = ParseProgram(kTc, &dom);
  ASSERT_TRUE(prog.ok());
  Graph g = RandomGraph(15, 30, /*seed=*/3);
  std::vector<ConstId> ids = InternVertices(15, &dom);
  EdbInstance<BoolS> edb(prog.value());
  LoadEdges<BoolS>(g, ids, [](const Edge&) { return true; },
                   &edb.pops(prog.value().FindPredicate("E")));
  Engine<BoolS> engine(prog.value(), edb);
  auto result = engine.Naive(1000);
  ASSERT_TRUE(result.converged);
  int t = prog.value().FindPredicate("T");
  for (int s = 0; s < 15; ++s) {
    std::vector<bool> reach = g.ReachableFrom(s);
    for (int v = 0; v < 15; ++v) {
      bool expect = reach[v];
      if (v == s) {
        // T is the irreflexive closure unless s lies on a cycle.
        expect = false;
        for (const Edge& e : g.edges()) {
          if (e.src == s && g.ReachableFrom(e.dst)[s]) expect = true;
        }
      }
      EXPECT_EQ(result.idb.idb(t).Get({ids[s], ids[v]}), expect)
          << s << "->" << v;
    }
  }
}

TEST(Engine, EmptyEdbConvergesImmediately) {
  Domain dom;
  auto prog = ParseProgram(kTc, &dom);
  ASSERT_TRUE(prog.ok());
  EdbInstance<BoolS> edb(prog.value());
  Engine<BoolS> engine(prog.value(), edb);
  auto result = engine.Naive(10);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.steps, 0);
  EXPECT_EQ(result.idb.TotalSupport(), 0u);
}

TEST(Engine, ConstantsInRuleAtoms) {
  // Only paths that start at vertex `a` are derived.
  constexpr const char* kText = R"(
    edb E/2.
    idb R/1.
    R(Y) :- E(a, Y) ; R(Z) * E(Z, Y).
  )";
  Domain dom;
  auto prog = ParseProgram(kText, &dom);
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  EdbInstance<BoolS> edb(prog.value());
  auto& e = edb.pops(prog.value().FindPredicate("E"));
  ConstId a = dom.InternSymbol("a"), b = dom.InternSymbol("b"),
          c = dom.InternSymbol("c"), d = dom.InternSymbol("d");
  e.Set({a, b}, true);
  e.Set({b, c}, true);
  e.Set({d, a}, true);  // unreachable from a
  Engine<BoolS> engine(prog.value(), edb);
  auto result = engine.Naive(100);
  ASSERT_TRUE(result.converged);
  int r = prog.value().FindPredicate("R");
  EXPECT_TRUE(result.idb.idb(r).Get({b}));
  EXPECT_TRUE(result.idb.idb(r).Get({c}));
  EXPECT_FALSE(result.idb.idb(r).Get({d}));
  EXPECT_FALSE(result.idb.idb(r).Get({a}));  // d→a exists but d is not reached
}

TEST(Engine, RepeatedVariableInAtom) {
  // Self-loops: S(X) :- E(X, X).
  constexpr const char* kText = R"(
    edb E/2.
    idb S/1.
    S(X) :- E(X, X).
  )";
  Domain dom;
  auto prog = ParseProgram(kText, &dom);
  ASSERT_TRUE(prog.ok());
  EdbInstance<BoolS> edb(prog.value());
  ConstId a = dom.InternSymbol("a"), b = dom.InternSymbol("b");
  auto& e = edb.pops(prog.value().FindPredicate("E"));
  e.Set({a, a}, true);
  e.Set({a, b}, true);
  Engine<BoolS> engine(prog.value(), edb);
  auto result = engine.Naive(10);
  ASSERT_TRUE(result.converged);
  int s = prog.value().FindPredicate("S");
  EXPECT_TRUE(result.idb.idb(s).Get({a}));
  EXPECT_FALSE(result.idb.idb(s).Get({b}));
}

TEST(Engine, ComparisonConditionsFilter) {
  // Keep only edges with source ≠ target and weight sum over Trop.
  constexpr const char* kText = R"(
    edb E/2.
    idb T/2.
    T(X,Y) :- { E(X,Y) | X != Y }.
  )";
  Domain dom;
  auto prog = ParseProgram(kText, &dom);
  ASSERT_TRUE(prog.ok());
  EdbInstance<TropS> edb(prog.value());
  ConstId a = dom.InternSymbol("a"), b = dom.InternSymbol("b");
  auto& e = edb.pops(prog.value().FindPredicate("E"));
  e.Set({a, a}, 1.0);
  e.Set({a, b}, 2.0);
  Engine<TropS> engine(prog.value(), edb);
  auto result = engine.Naive(10);
  ASSERT_TRUE(result.converged);
  int t = prog.value().FindPredicate("T");
  EXPECT_EQ(result.idb.idb(t).Get({a, a}), TropS::Inf());
  EXPECT_EQ(result.idb.idb(t).Get({a, b}), 2.0);
}

TEST(Engine, IntegerOrderComparisons) {
  constexpr const char* kText = R"(
    edb V/1.
    idb Small/1.
    Small(X) :- { V(X) | X < 3 }.
  )";
  Domain dom;
  auto prog = ParseProgram(kText, &dom);
  ASSERT_TRUE(prog.ok());
  EdbInstance<NatS> edb(prog.value());
  for (int i = 0; i < 6; ++i) {
    edb.pops(prog.value().FindPredicate("V"))
        .Set({dom.InternInt(i)}, uint64_t(i + 100));
  }
  Engine<NatS> engine(prog.value(), edb);
  auto result = engine.Naive(10);
  ASSERT_TRUE(result.converged);
  int small = prog.value().FindPredicate("Small");
  EXPECT_EQ(result.idb.idb(small).support_size(), 3u);
  EXPECT_EQ(result.idb.idb(small).Get({dom.InternInt(2)}), 102u);
  EXPECT_EQ(result.idb.idb(small).Get({dom.InternInt(3)}), 0u);
}

TEST(Engine, NegatedBooleanConditionAtom) {
  // Pairs connected by E but NOT flagged in Blocked.
  constexpr const char* kText = R"(
    edb E/2.
    bedb Blocked/2.
    idb T/2.
    T(X,Y) :- { E(X,Y) | !Blocked(X,Y) }.
  )";
  Domain dom;
  auto prog = ParseProgram(kText, &dom);
  ASSERT_TRUE(prog.ok());
  EdbInstance<BoolS> edb(prog.value());
  ConstId a = dom.InternSymbol("a"), b = dom.InternSymbol("b"),
          c = dom.InternSymbol("c");
  auto& e = edb.pops(prog.value().FindPredicate("E"));
  e.Set({a, b}, true);
  e.Set({a, c}, true);
  edb.boolean(prog.value().FindPredicate("Blocked")).Set({a, c}, true);
  Engine<BoolS> engine(prog.value(), edb);
  auto result = engine.Naive(10);
  ASSERT_TRUE(result.converged);
  int t = prog.value().FindPredicate("T");
  EXPECT_TRUE(result.idb.idb(t).Get({a, b}));
  EXPECT_FALSE(result.idb.idb(t).Get({a, c}));
}

TEST(Engine, MultipleRulesSameHeadAccumulate) {
  constexpr const char* kText = R"(
    edb A/1.
    edb B/1.
    idb U/1.
    U(X) :- A(X).
    U(X) :- B(X).
  )";
  Domain dom;
  auto prog = ParseProgram(kText, &dom);
  ASSERT_TRUE(prog.ok());
  EdbInstance<NatS> edb(prog.value());
  ConstId x = dom.InternSymbol("x");
  edb.pops(prog.value().FindPredicate("A")).Set({x}, 3u);
  edb.pops(prog.value().FindPredicate("B")).Set({x}, 4u);
  Engine<NatS> engine(prog.value(), edb);
  auto result = engine.Naive(10);
  ASSERT_TRUE(result.converged);
  EXPECT_EQ(result.idb.idb(prog.value().FindPredicate("U")).Get({x}), 7u);
}

TEST(Engine, BagSemanticsCountsPaths) {
  // Over N, the transitive-closure program counts distinct derivations
  // (paths); on a diamond a→{b,c}→d there are exactly 2 paths a⇒d.
  Domain dom;
  auto prog = ParseProgram(kTc, &dom);
  ASSERT_TRUE(prog.ok());
  EdbInstance<NatS> edb(prog.value());
  ConstId a = dom.InternSymbol("a"), b = dom.InternSymbol("b"),
          c = dom.InternSymbol("c"), d = dom.InternSymbol("d");
  auto& e = edb.pops(prog.value().FindPredicate("E"));
  e.Set({a, b}, 1u);
  e.Set({a, c}, 1u);
  e.Set({b, d}, 1u);
  e.Set({c, d}, 1u);
  Engine<NatS> engine(prog.value(), edb);
  auto result = engine.Naive(10);
  ASSERT_TRUE(result.converged);
  int t = prog.value().FindPredicate("T");
  EXPECT_EQ(result.idb.idb(t).Get({a, d}), 2u);
  EXPECT_EQ(result.idb.idb(t).Get({a, b}), 1u);
}

}  // namespace
}  // namespace datalogo
