// Parser robustness: mutated and adversarial inputs must produce a clean
// Status (never crash, never loop); valid programs survive mutation of
// whitespace and comments.
#include <gtest/gtest.h>

#include <random>

#include "src/datalog/parser.h"
#include "src/datalog/validate.h"
#include "tests/ci_knob.h"

namespace datalogo {
namespace {

const char* kSeedPrograms[] = {
    "T(X,Y) :- E(X,Y) ; T(X,Z) * E(Z,Y).",
    "edb E/2. idb L/1. L(X) :- [X = a] ; L(Z) * E(Z, X).",
    "bedb E/2. W(X) :- { !W(Y) | E(X, Y) }.",
    "W(I) :- case I = 0 : V(I) ; Succ(J, I) : W(J) * V(I) ; else 1.",
    "T(X) :- { C(Y) | E(X, Y), X != Y, Y >= -3 }.",
};

TEST(ParserFuzz, TruncationsNeverCrash) {
  for (const char* seed : kSeedPrograms) {
    std::string text = seed;
    for (std::size_t cut = 0; cut <= text.size(); ++cut) {
      Domain dom;
      auto r = ParseProgram(text.substr(0, cut), &dom);
      // Must terminate with ok or a parse error — just exercising it.
      if (r.ok()) {
        ValidateProgram(r.value());
      }
    }
  }
}

TEST(ParserFuzz, SingleCharacterMutationsNeverCrash) {
  const char kAlphabet[] = "ABXYZabe01.;:*|!{}[]()<>=,/#%-_ \t\n";
  std::mt19937_64 rng(99);
  for (const char* seed : kSeedPrograms) {
    const std::string base = seed;
    const int trials = CiIterations(300, 60);
    for (int trial = 0; trial < trials; ++trial) {
      std::string text = base;
      std::size_t pos = rng() % text.size();
      text[pos] = kAlphabet[rng() % (sizeof(kAlphabet) - 1)];
      Domain dom;
      auto r = ParseProgram(text, &dom);
      if (r.ok()) {
        ValidateProgram(r.value());
      }
    }
  }
}

TEST(ParserFuzz, RandomTokenSoupNeverCrashes) {
  const char* kTokens[] = {"T",  "(",  ")", ",",  ".",  ":-", ";", "*",
                           "{",  "}",  "[", "]",  "|",  "!",  "=", "!=",
                           "<",  "<=", "X", "Y",  "a",  "42", "-7", "edb",
                           "bedb", "idb", "case", "else", "/", ":"};
  std::mt19937_64 rng(7);
  const int trials = CiIterations(500, 100);
  for (int trial = 0; trial < trials; ++trial) {
    std::string text;
    int len = 1 + static_cast<int>(rng() % 30);
    for (int i = 0; i < len; ++i) {
      text += kTokens[rng() % (sizeof(kTokens) / sizeof(kTokens[0]))];
      text += " ";
    }
    Domain dom;
    auto r = ParseProgram(text, &dom);
    if (r.ok()) {
      ValidateProgram(r.value());
    }
  }
}

TEST(ParserFuzz, WhitespaceAndCommentsAreInert) {
  for (const char* seed : kSeedPrograms) {
    Domain dom1, dom2;
    auto plain = ParseProgram(seed, &dom1);
    std::string noisy;
    for (const char* p = seed; *p; ++p) {
      noisy += *p;
      if (*p == '.') noisy += "\n  // comment\n   % more\n";
    }
    auto parsed = ParseProgram(noisy, &dom2);
    ASSERT_EQ(plain.ok(), parsed.ok()) << seed;
    if (plain.ok()) {
      EXPECT_EQ(plain.value().ToString(), parsed.value().ToString());
    }
  }
}

TEST(ParserFuzz, DeeplyNestedInputTerminates) {
  // Pathological but bounded inputs.
  const int depth = CiIterations(2000, 400);
  std::string many_disjuncts = "T(X) :- E(X,X)";
  for (int i = 0; i < depth; ++i) many_disjuncts += " ; E(X,X)";
  many_disjuncts += ".";
  Domain dom;
  auto r = ParseProgram(many_disjuncts, &dom);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().rules()[0].disjuncts.size(),
            static_cast<std::size_t>(depth) + 1);

  std::string many_factors = "T(X) :- E(X,X)";
  for (int i = 0; i < depth; ++i) many_factors += " * E(X,X)";
  many_factors += ".";
  Domain dom2;
  auto r2 = ParseProgram(many_factors, &dom2);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.value().rules()[0].disjuncts[0].atoms.size(),
            static_cast<std::size_t>(depth) + 1);
}

}  // namespace
}  // namespace datalogo
