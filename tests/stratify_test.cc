// Stratification: SCC condensation of the IDB dependency graph.
#include <gtest/gtest.h>

#include "src/datalog/parser.h"
#include "src/datalog/stratify.h"

namespace datalogo {
namespace {

TEST(Stratify, SingleRecursivePredicateIsOneStratum) {
  Domain dom;
  auto r = ParseProgram("T(X,Y) :- E(X,Y) ; T(X,Z) * E(Z,Y).", &dom);
  ASSERT_TRUE(r.ok());
  Stratification s = StratifyProgram(r.value());
  EXPECT_EQ(s.num_strata, 1);
  EXPECT_EQ(s.strata_rules[0].size(), 1u);
}

TEST(Stratify, ChainOfDependencies) {
  Domain dom;
  auto r = ParseProgram(R"(
    A(X) :- E(X, X).
    B(X) :- A(X).
    C(X) :- B(X) ; C(X) * B(X).
  )",
                        &dom);
  ASSERT_TRUE(r.ok());
  const Program& p = r.value();
  Stratification s = StratifyProgram(p);
  EXPECT_EQ(s.num_strata, 3);
  EXPECT_LT(s.pred_stratum[p.FindPredicate("A")],
            s.pred_stratum[p.FindPredicate("B")]);
  EXPECT_LT(s.pred_stratum[p.FindPredicate("B")],
            s.pred_stratum[p.FindPredicate("C")]);
}

TEST(Stratify, MutualRecursionSharesStratum) {
  Domain dom;
  auto r = ParseProgram(R"(
    Even(X) :- [X = 0] ; { Odd(Y) | S(Y, X) }.
    Odd(X) :- { Even(Y) | S(Y, X) }.
    Top(X) :- Even(X).
  )",
                        &dom);
  ASSERT_TRUE(r.ok());
  const Program& p = r.value();
  Stratification s = StratifyProgram(p);
  EXPECT_EQ(s.pred_stratum[p.FindPredicate("Even")],
            s.pred_stratum[p.FindPredicate("Odd")]);
  EXPECT_GT(s.pred_stratum[p.FindPredicate("Top")],
            s.pred_stratum[p.FindPredicate("Even")]);
}

TEST(Stratify, EdbsHaveNoStratum) {
  Domain dom;
  auto r = ParseProgram("edb E/2. T(X,Y) :- E(X,Y).", &dom);
  ASSERT_TRUE(r.ok());
  const Program& p = r.value();
  Stratification s = StratifyProgram(p);
  EXPECT_EQ(s.pred_stratum[p.FindPredicate("E")], -1);
  EXPECT_EQ(s.pred_stratum[p.FindPredicate("T")], 0);
}

TEST(Stratify, RulesLandInHeadStratum) {
  Domain dom;
  auto r = ParseProgram(R"(
    A(X) :- E(X, X).
    B(X) :- A(X) * A(X).
  )",
                        &dom);
  ASSERT_TRUE(r.ok());
  Stratification s = StratifyProgram(r.value());
  ASSERT_EQ(s.num_strata, 2);
  EXPECT_EQ(s.strata_rules[0], (std::vector<int>{0}));
  EXPECT_EQ(s.strata_rules[1], (std::vector<int>{1}));
}

}  // namespace
}  // namespace datalogo
