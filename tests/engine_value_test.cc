// Vectorized value-plane determinism: with value_kernel = kSimd the
// batched join computes ⊗ products, ground residual masks and head
// emission through the SemiringSimdTraits kernels — and fixpoints,
// `work` and every index counter must stay bit-identical to the scalar
// reference across value kernels × scan kernels × tiers × threads ×
// schedulers. values_batched() is the only counter allowed to move: it
// equals the number of head contributions the scalar path would merge
// (counted BEFORE ⊕-coalescing) under (scan, values) = (simd, simd) on
// an opted-in semiring, and is 0 under either scalar kernel.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/datalogo.h"

namespace datalogo {
namespace {

constexpr const char* kLinearTc = R"(
  edb E/2.
  idb T/2.
  T(X,Y) :- E(X,Y) ; T(X,Z) * E(Z,Y).
)";

constexpr const char* kOutDegree = R"(
  edb E/2.
  idb D/1.
  D(X) :- E(X,Z).
)";

template <Pops P>
struct ValueRun {
  EvalResult<P> eval;
  uint64_t index_builds = 0;
  uint64_t index_hits = 0;
  uint64_t hash_probes = 0;
  uint64_t direct_probes = 0;
  uint64_t join_batched = 0;
  uint64_t values_batched = 0;
};

template <Pops P>
ValueRun<P> RunValue(const Program& prog, const EdbInstance<P>& edb,
                     bool semi, const EngineOptions& opts) {
  Engine<P> engine(prog, edb, opts);
  EvalResult<P> eval = [&] {
    if constexpr (CompleteDistributiveDioid<P>) {
      return semi ? engine.SemiNaive(1 << 20) : engine.Naive(1 << 20);
    } else {
      return engine.Naive(1 << 20);  // no ⊖: semi-naive unavailable
    }
  }();
  ValueRun<P> out{std::move(eval)};
  out.index_builds = engine.index_builds();
  out.index_hits = engine.index_hits();
  out.hash_probes = engine.hash_probes();
  out.direct_probes = engine.direct_probes();
  out.join_batched = engine.join_batched_rows();
  out.values_batched = engine.values_batched();
  EXPECT_TRUE(out.eval.converged);
  // The value plane only exists inside the batched join kernel, and an
  // opted-out semiring or scalar value kernel must never touch it.
  if (opts.scan_kernel != ScanKernel::kSimd ||
      opts.value_kernel != ScanKernel::kSimd || !VectorizedValuePlane<P>) {
    EXPECT_EQ(out.values_batched, 0u);
  }
  return out;
}

template <Pops P>
void ExpectSameFixpointAndTrace(const ValueRun<P>& ref,
                                const ValueRun<P>& got) {
  EXPECT_TRUE(got.eval.idb.Equals(ref.eval.idb));
  EXPECT_EQ(got.eval.steps, ref.eval.steps);
  EXPECT_EQ(got.eval.work, ref.eval.work);
  EXPECT_EQ(got.index_builds, ref.index_builds);
  EXPECT_EQ(got.index_hits, ref.index_hits);
}

template <Pops P, typename Lift>
EdbInstance<P> GridEdb(const Program& prog, Domain& dom, Lift&& lift) {
  Graph g = GridGraph(8, 8);
  std::vector<ConstId> ids = InternVertices(g.num_vertices(), &dom);
  EdbInstance<P> edb(prog);
  LoadEdges<P>(g, ids, lift, &edb.pops(prog.FindPredicate("E")));
  return edb;
}

/// The four (scan, values) kernel combinations; only (simd, simd)
/// activates the value plane.
const std::pair<ScanKernel, ScanKernel> kKernelCross[] = {
    {ScanKernel::kScalar, ScanKernel::kScalar},
    {ScanKernel::kScalar, ScanKernel::kSimd},
    {ScanKernel::kSimd, ScanKernel::kScalar},
    {ScanKernel::kSimd, ScanKernel::kSimd},
};

template <Pops P, typename Lift>
void ExpectValueKernelEquivalentOnGrid(Lift&& lift) {
  Domain dom;
  auto prog = ParseProgram(kLinearTc, &dom).value();
  EdbInstance<P> edb = GridEdb<P>(prog, dom, lift);
  const EngineOptions ref_opts{.scan_kernel = ScanKernel::kScalar,
                               .value_kernel = ScanKernel::kScalar};
  for (bool semi : {false, true}) {
    if (semi && !CompleteDistributiveDioid<P>) continue;  // ℕ, R+: no ⊖
    SCOPED_TRACE(semi ? "semi" : "naive");
    ValueRun<P> ref = RunValue(prog, edb, semi, ref_opts);
    for (const auto& [scan, values] : kKernelCross) {
      SCOPED_TRACE((scan == ScanKernel::kSimd ? "scan=simd" : "scan=scalar"));
      SCOPED_TRACE(
          (values == ScanKernel::kSimd ? "values=simd" : "values=scalar"));
      const EngineOptions opts{.scan_kernel = scan, .value_kernel = values};
      ValueRun<P> got = RunValue(prog, edb, semi, opts);
      ExpectSameFixpointAndTrace(ref, got);
      if (scan == ScanKernel::kSimd && values == ScanKernel::kSimd &&
          VectorizedValuePlane<P>) {
        EXPECT_GT(got.values_batched, 0u);
      }
    }
  }
}

TEST(EngineValuePlane, TropicalApspGridMatchesScalarReference) {
  ExpectValueKernelEquivalentOnGrid<TropS>(
      [](const Edge& e) { return e.weight; });
}

TEST(EngineValuePlane, TropNatHopCountsMatchScalarReference) {
  ExpectValueKernelEquivalentOnGrid<TropNatS>(
      [](const Edge&) { return uint64_t{1}; });
}

TEST(EngineValuePlane, BooleanReachabilityMatchesScalarReference) {
  ExpectValueKernelEquivalentOnGrid<BoolS>([](const Edge&) { return true; });
}

TEST(EngineValuePlane, NatPathCountingMatchesScalarReference) {
  // The grid is a DAG, so ℕ path counting converges; the saturating
  // multiply's hoisted-threshold kernel must reproduce N::Times exactly.
  ExpectValueKernelEquivalentOnGrid<NatS>(
      [](const Edge&) { return uint64_t{1}; });
}

TEST(EngineValuePlane, RealPlusPathWeightsMatchScalarReference) {
  // R+ vectorizes ⊗ but must NOT ⊕-coalesce (kExactPlusFold = false):
  // the fixpoint still has to be bit-identical to the scalar merge
  // sequence.
  ExpectValueKernelEquivalentOnGrid<RealPlusS>(
      [](const Edge&) { return 0.5; });
}

TEST(EngineValuePlane, ValuesBatchedGoldenAcrossThreadsAndSchedulers) {
  // The thread-invariance pin: under (simd, simd), values_batched is a
  // pure function of the join trace — the same golden constant at every
  // tier, thread count and scheduler; 0 the moment either kernel is
  // scalar.
  Domain dom;
  auto prog = ParseProgram(kLinearTc, &dom).value();
  EdbInstance<TropS> edb =
      GridEdb<TropS>(prog, dom, [](const Edge& e) { return e.weight; });

  uint64_t golden_naive = 0;
  uint64_t golden_semi = 0;
  for (IndexKind kind :
       {IndexKind::kHash, IndexKind::kDirect, IndexKind::kAuto}) {
    for (int threads : {1, 4}) {
      for (Scheduler sched : {Scheduler::kSweep, Scheduler::kOrdered}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        const EngineOptions opts{.num_threads = threads,
                                 .scheduler = sched,
                                 .index_kind = kind,
                                 .scan_kernel = ScanKernel::kSimd,
                                 .value_kernel = ScanKernel::kSimd};
        ValueRun<TropS> naive = RunValue(prog, edb, /*semi=*/false, opts);
        ValueRun<TropS> semi = RunValue(prog, edb, /*semi=*/true, opts);
        EXPECT_GT(naive.values_batched, 0u);
        EXPECT_GT(semi.values_batched, 0u);
        if (golden_naive == 0) {
          golden_naive = naive.values_batched;
          golden_semi = semi.values_batched;
        }
        EXPECT_EQ(naive.values_batched, golden_naive);
        EXPECT_EQ(semi.values_batched, golden_semi);
        // Scalar value kernel under the same config: same fixpoint, zero
        // value-plane traffic (asserted inside RunValue).
        EngineOptions scalar_vals = opts;
        scalar_vals.value_kernel = ScanKernel::kScalar;
        ValueRun<TropS> sv = RunValue(prog, edb, /*semi=*/true, scalar_vals);
        ExpectSameFixpointAndTrace(semi, sv);
      }
    }
  }
}

TEST(EngineValuePlane, ValuesBatchedCountsEmittedRowsExactly) {
  // Out-degree support over Trop-ℕ: every E row emits exactly one head
  // contribution (no residual, no zero products), so under semi-naive —
  // which visits the non-recursive rule once — values_batched must equal
  // |E|, counted pre-coalesce. The rule's consecutive same-source rows
  // exercise the ⊕-coalescing fold (adjacent duplicate head keys), which
  // must not change the stored values.
  Domain dom;
  auto prog = ParseProgram(kOutDegree, &dom).value();
  Graph g = GridGraph(8, 8);
  std::vector<ConstId> ids = InternVertices(g.num_vertices(), &dom);
  EdbInstance<TropNatS> edb(prog);
  LoadEdges<TropNatS>(g, ids, [](const Edge&) { return uint64_t{1}; },
                      &edb.pops(prog.FindPredicate("E")));
  const uint64_t edges = edb.pops(prog.FindPredicate("E")).support_size();
  ASSERT_GT(edges, 0u);

  const EngineOptions scalar_opts{.scan_kernel = ScanKernel::kScalar,
                                  .value_kernel = ScanKernel::kScalar};
  const EngineOptions simd_opts{.scan_kernel = ScanKernel::kSimd,
                                .value_kernel = ScanKernel::kSimd};
  ValueRun<TropNatS> ref = RunValue(prog, edb, /*semi=*/true, scalar_opts);
  ValueRun<TropNatS> got = RunValue(prog, edb, /*semi=*/true, simd_opts);
  ExpectSameFixpointAndTrace(ref, got);
  EXPECT_EQ(got.values_batched, edges);
}

TEST(EngineValuePlane, GroundResidualRunsAsBatchedMask) {
  // [Y != v0] over the innermost-bound Y compiles to a VecResidual (the
  // vectored drain filters by a column-vs-scalar mask); [Y != X] is
  // var-var and stays a per-row batched residual — one drain exercises
  // both paths, and every kernel combination must agree with the scalar
  // per-row re-grounding reference.
  constexpr const char* kFiltered = R"(
    edb E/2.
    idb T/2.
    T(X,Y) :- E(X,Y) * [Y != v0] ; T(X,Z) * E(Z,Y) * [Y != v0, Y != X].
  )";
  Domain dom;
  auto prog = ParseProgram(kFiltered, &dom).value();
  EdbInstance<TropS> edb =
      GridEdb<TropS>(prog, dom, [](const Edge& e) { return e.weight; });
  const EngineOptions ref_opts{.scan_kernel = ScanKernel::kScalar,
                               .value_kernel = ScanKernel::kScalar};
  ValueRun<TropS> ref = RunValue(prog, edb, /*semi=*/true, ref_opts);
  for (const auto& [scan, values] : kKernelCross) {
    const EngineOptions opts{.scan_kernel = scan, .value_kernel = values};
    ValueRun<TropS> got = RunValue(prog, edb, /*semi=*/true, opts);
    ExpectSameFixpointAndTrace(ref, got);
  }
}

TEST(EngineValuePlane, AlwaysFalseDisjunctKeepsWorkTraceButSkipsDrain) {
  // A residual decided false at compile time ([v0 = v1]) makes the
  // disjunct dead: it must keep the exact work/probe trace of its join
  // under every kernel combination (the batched drain short-circuits
  // instead of paying per-row checks) while emitting nothing — the
  // fixpoint equals the program without the dead disjunct, the work
  // exceeds it.
  constexpr const char* kDead = R"(
    edb E/2.
    idb T/2.
    T(X,Y) :- E(X,Y) ; T(X,Z) * E(Z,Y) * [v0 = v1].
  )";
  constexpr const char* kLive = R"(
    edb E/2.
    idb T/2.
    T(X,Y) :- E(X,Y).
  )";
  Domain dom;
  auto dead_prog = ParseProgram(kDead, &dom).value();
  EdbInstance<TropS> dead_edb =
      GridEdb<TropS>(dead_prog, dom, [](const Edge& e) { return e.weight; });
  Domain dom2;
  auto live_prog = ParseProgram(kLive, &dom2).value();
  EdbInstance<TropS> live_edb =
      GridEdb<TropS>(live_prog, dom2, [](const Edge& e) { return e.weight; });

  const EngineOptions ref_opts{.scan_kernel = ScanKernel::kScalar,
                               .value_kernel = ScanKernel::kScalar};
  ValueRun<TropS> ref = RunValue(dead_prog, dead_edb, /*semi=*/true, ref_opts);
  ValueRun<TropS> live =
      RunValue(live_prog, live_edb, /*semi=*/true, ref_opts);
  EXPECT_EQ(ref.eval.idb.idb(dead_prog.FindPredicate("T")).support_size(),
            live.eval.idb.idb(live_prog.FindPredicate("T")).support_size());
  EXPECT_GT(ref.eval.work, live.eval.work);
  for (const auto& [scan, values] : kKernelCross) {
    const EngineOptions opts{.scan_kernel = scan, .value_kernel = values};
    ValueRun<TropS> got = RunValue(dead_prog, dead_edb, /*semi=*/true, opts);
    ExpectSameFixpointAndTrace(ref, got);
  }
}

}  // namespace
}  // namespace datalogo
