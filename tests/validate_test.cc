// Program validation: vocabulary discipline and range restriction.
#include <gtest/gtest.h>

#include "src/datalog/parser.h"
#include "src/datalog/validate.h"

namespace datalogo {
namespace {

Status ValidateText(const char* text) {
  Domain dom;
  auto r = ParseProgram(text, &dom);
  if (!r.ok()) return r.status();
  return ValidateProgram(r.value());
}

TEST(Validate, AcceptsPaperPrograms) {
  EXPECT_TRUE(ValidateText(
                  "T(X,Y) :- E(X,Y) ; T(X,Z) * E(Z,Y).")
                  .ok());
  EXPECT_TRUE(ValidateText("L(X) :- [X = a] ; L(Z) * E(Z, X).").ok());
  EXPECT_TRUE(
      ValidateText("bedb E/2. T(X) :- C(X) ; { T(Y) | E(X, Y) }.").ok());
  EXPECT_TRUE(ValidateText("bedb E/2. W(X) :- { !W(Y) | E(X, Y) }.").ok());
}

TEST(Validate, RejectsEdbHead) {
  EXPECT_FALSE(ValidateText("edb E/2. E(X,Y) :- E(Y,X).").ok());
}

TEST(Validate, RejectsBoolEdbHead) {
  EXPECT_FALSE(ValidateText("bedb B/1. B(X) :- C(X).").ok());
}

TEST(Validate, RejectsBoolEdbInProduct) {
  EXPECT_FALSE(ValidateText("bedb B/1. T(X) :- B(X) * C(X).").ok());
}

TEST(Validate, RejectsPopsEdbInCondition) {
  EXPECT_FALSE(ValidateText("edb C/1. T(X) :- { D(X) | C(X) }.").ok());
}

TEST(Validate, RejectsUnboundHeadVariable) {
  // Y appears only in the head.
  EXPECT_FALSE(ValidateText("T(X, Y) :- E(X, X).").ok());
}

TEST(Validate, RejectsUnboundComparisonVariable) {
  // Z is only mentioned in a non-equality comparison: not range-restricted.
  EXPECT_FALSE(ValidateText("T(X) :- { E(X, X) | Z < 3 }.").ok());
}

TEST(Validate, AcceptsEqualityChainBinding) {
  // Y is bound through Y = Z, Z = a.
  EXPECT_TRUE(
      ValidateText("T(Y) :- { E(X, X) | Y = Z, Z = a }.").ok());
}

TEST(Validate, HeadVariableMustBeBoundInEveryDisjunct) {
  // X bound in the first disjunct but not the second.
  EXPECT_FALSE(ValidateText("T(X) :- E(X, X) ; D(Y, Y).").ok());
}

TEST(Validate, BoundByPositiveBoolAtom) {
  EXPECT_TRUE(ValidateText("bedb B/1. T(X) :- { C(Y) | B(X), B(Y) }.").ok());
}

TEST(Validate, NegatedBoolAtomDoesNotBind) {
  EXPECT_FALSE(ValidateText("bedb B/1. T(X) :- { 1 | !B(X) }.").ok());
}

}  // namespace
}  // namespace datalogo
