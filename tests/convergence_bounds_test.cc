// Theorem 1.2 end-to-end: measured convergence steps of full datalog°
// programs (grounded) never exceed the theoretical bounds, across POPS
// and workloads; and the 0-stable N-step bound holds for the engines.
#include <gtest/gtest.h>

#include "src/datalogo.h"

namespace datalogo {
namespace {

constexpr const char* kApsp = R"(
  edb E/2.
  idb T/2.
  T(X,Y) :- E(X,Y) ; T(X,Z) * E(Z,Y).
)";

constexpr const char* kSssp = R"(
  edb E/2.
  idb L/1.
  L(X) :- [X = v0] ; L(Z) * E(Z, X).
)";

template <Pops P, typename F>
void CheckBound(const char* text, const Graph& g, F&& lift, int p,
                bool linear_expected) {
  Domain dom;
  auto prog = ParseProgram(text, &dom);
  ASSERT_TRUE(prog.ok());
  std::vector<ConstId> ids = InternVertices(g.num_vertices(), &dom);
  EdbInstance<P> edb(prog.value());
  LoadEdges<P>(g, ids, lift, &edb.pops(prog.value().FindPredicate("E")));
  auto grounded = GroundProgram<P>(prog.value(), edb);
  ASSERT_EQ(grounded.system().IsLinear(), linear_expected);
  uint64_t bound = grounded.system().ConvergenceBound(p);
  auto iter = grounded.NaiveIterate(1 << 22);
  ASSERT_TRUE(iter.converged);
  EXPECT_LE(static_cast<uint64_t>(iter.steps), bound);
  // 0-stable case: the much stronger N-step bound (Theorem 5.12(2)).
  if (p == 0) {
    EXPECT_LE(iter.steps, grounded.system().num_vars());
  }
}

TEST(ConvergenceBounds, TropApspWithinNSteps) {
  for (uint64_t seed = 0; seed < 4; ++seed) {
    Graph g = RandomGraph(6, 15, seed);
    CheckBound<TropS>(kApsp, g, [](const Edge& e) { return e.weight; }, 0,
                      true);
  }
}

TEST(ConvergenceBounds, TropSsspWithinNSteps) {
  Graph g = CycleGraph(7);
  CheckBound<TropS>(kSssp, g, [](const Edge& e) { return e.weight; }, 0,
                    true);
}

TEST(ConvergenceBounds, TropPSsspWithinLinearBound) {
  using T1 = TropPS<1>;
  Graph g = CycleGraph(4);
  CheckBound<T1>(kSssp, g,
                 [](const Edge& e) { return T1::FromScalar(e.weight); }, 1,
                 true);
  using T2 = TropPS<2>;
  CheckBound<T2>(kSssp, CycleGraph(3),
                 [](const Edge& e) { return T2::FromScalar(e.weight); }, 2,
                 true);
}

TEST(ConvergenceBounds, QuadraticTcWithinGeneralBound) {
  constexpr const char* kQuad = R"(
    edb E/2.
    idb T/2.
    T(X,Y) :- E(X,Y) ; T(X,Z) * T(Z,Y).
  )";
  Graph g = RandomGraph(4, 8, /*seed=*/5);
  CheckBound<TropS>(kQuad, g, [](const Edge& e) { return e.weight; }, 0,
                    false);
}

TEST(ConvergenceBounds, LinearTropPMatrixBoundCorollary521) {
  // Corollary 5.21: a linear program over Trop+_p converges within
  // (p+1)N − 1 matrix-stability steps; the naive algorithm on the
  // grounded system takes at most one more application.
  using T1 = TropPS<1>;
  for (int n : {3, 4, 5}) {
    Graph g = CycleGraph(n);
    Domain dom;
    auto prog = ParseProgram(kSssp, &dom);
    ASSERT_TRUE(prog.ok());
    std::vector<ConstId> ids = InternVertices(n, &dom);
    EdbInstance<T1> edb(prog.value());
    LoadEdges<T1>(g, ids,
                  [](const Edge& e) { return T1::FromScalar(e.weight); },
                  &edb.pops(prog.value().FindPredicate("E")));
    auto grounded = GroundProgram<T1>(prog.value(), edb);
    auto iter = grounded.NaiveIterate(1 << 16);
    ASSERT_TRUE(iter.converged);
    int big_n = grounded.system().num_vars();
    EXPECT_LE(iter.steps, 2 * big_n) << n;  // (p+1)N with p = 1
  }
}

TEST(ConvergenceBounds, StableButNotUniformTropEta) {
  // Over Trop+_{≤η} every program converges (Theorem 5.10 via stability),
  // but the number of steps depends on the VALUES (η vs edge weights),
  // not just the atom count.
  TropEtaS::ScopedEta eta(10.0);
  Graph g = CycleGraph(3);  // cycle length 3 with unit weights
  Domain dom;
  auto prog = ParseProgram(kSssp, &dom);
  ASSERT_TRUE(prog.ok());
  std::vector<ConstId> ids = InternVertices(3, &dom);
  EdbInstance<TropEtaS> edb(prog.value());
  LoadEdges<TropEtaS>(
      g, ids, [](const Edge& e) { return TropEtaS::FromScalar(e.weight); },
      &edb.pops(prog.value().FindPredicate("E")));
  auto grounded = GroundProgram<TropEtaS>(prog.value(), edb);
  auto iter = grounded.NaiveIterate(1000);
  ASSERT_TRUE(iter.converged);
  // Distances to v0: {0, 3, 6, 9} (walks around the cycle ≤ η = 10).
  int v0 = grounded.VarOf(prog.value().FindPredicate("L"), {ids[0]});
  EXPECT_EQ(iter.values[v0], (TropEtaS::Value{0, 3, 6, 9}));
  // More steps than the atom count: value-dependent convergence.
  EXPECT_GT(iter.steps, 3);
}

TEST(ConvergenceBounds, MaxPlusDivergesOnCyclicGraphs) {
  // Longest path over max-plus diverges on a cycle — MaxPlus is a dioid
  // but NOT stable, showing ACC/idempotence alone is not enough.
  Domain dom;
  auto prog = ParseProgram(kApsp, &dom);
  ASSERT_TRUE(prog.ok());
  Graph g = CycleGraph(3);
  std::vector<ConstId> ids = InternVertices(3, &dom);
  EdbInstance<MaxPlusS> edb(prog.value());
  LoadEdges<MaxPlusS>(g, ids, [](const Edge& e) { return e.weight; },
                      &edb.pops(prog.value().FindPredicate("E")));
  Engine<MaxPlusS> engine(prog.value(), edb);
  EXPECT_FALSE(engine.Naive(200).converged);
  // ... but converges on a DAG.
  Graph dag = LayeredDag(3, 2, 0.8, 1);
  Domain dom2;
  auto prog2 = ParseProgram(kApsp, &dom2);
  ASSERT_TRUE(prog2.ok());
  std::vector<ConstId> ids2 = InternVertices(dag.num_vertices(), &dom2);
  EdbInstance<MaxPlusS> edb2(prog2.value());
  LoadEdges<MaxPlusS>(dag, ids2, [](const Edge& e) { return e.weight; },
                      &edb2.pops(prog2.value().FindPredicate("E")));
  Engine<MaxPlusS> engine2(prog2.value(), edb2);
  EXPECT_TRUE(engine2.Naive(200).converged);
}

}  // namespace
}  // namespace datalogo
