// Generic fixpoint machinery (Section 3): iteration, stability indexes of
// composed functions (Lemmas 3.2/3.3, Theorem 3.4 bound shape).
#include <gtest/gtest.h>

#include <utility>

#include "src/datalogo.h"

namespace datalogo {
namespace {

TEST(Fixpoint, IterateCountsStabilityIndex) {
  // f(x) = min(x+1, 5) on {0..5} ordered downward from ⊥ = 0: converges
  // with index 5.
  int x = 0;
  auto stats = IterateToFixpoint(
      x, [](int v) { return std::min(v + 1, 5); },
      [](int a, int b) { return a == b; }, 100);
  EXPECT_TRUE(stats.converged);
  EXPECT_EQ(stats.steps, 5);
  EXPECT_EQ(x, 5);
}

TEST(Fixpoint, DivergenceHitsBudget) {
  long long x = 0;
  auto stats = IterateToFixpoint(
      x, [](long long v) { return v + 1; },
      [](long long a, long long b) { return a == b; }, 50);
  EXPECT_FALSE(stats.converged);
  EXPECT_EQ(stats.steps, 50);
}

TEST(Fixpoint, Lemma32CompositionBound) {
  // h = (f, g) with g independent of the first argument: if g is q-stable
  // and F(x) = f(x, ḡ) is p-stable then h is (p+q)-stable. Realize it on
  // pairs of saturating counters.
  const int p = 4, q = 7;
  using State = std::pair<int, int>;
  auto h = [&](State s) {
    // g: counts to q; f: counts to p but only once g is done.
    int y = std::min(s.second + 1, q);
    int x = s.second == q ? std::min(s.first + 1, p) : s.first;
    return State{x, y};
  };
  State s{0, 0};
  auto stats = IterateToFixpoint(
      s, h, [](State a, State b) { return a == b; }, 100);
  ASSERT_TRUE(stats.converged);
  EXPECT_LE(stats.steps, p + q + 1);
}

TEST(Fixpoint, CloneCompositionBoundFormula) {
  // E_m(a1..am) = a1 + a1a2 + … (Theorem 3.4).
  int s1[] = {2, 3};
  EXPECT_EQ(CloneCompositionBound(s1, 2), 2u + 6u);
  int s2[] = {1, 1, 1};
  EXPECT_EQ(CloneCompositionBound(s2, 3), 3u);
  int s3[] = {3, 2, 1};
  EXPECT_EQ(CloneCompositionBound(s3, 3), 3u + 6u + 6u);
}

TEST(Fixpoint, BoundsMonotoneInPAndN) {
  for (int p = 0; p < 4; ++p) {
    for (int n = 1; n < 8; ++n) {
      EXPECT_LE(LinearConvergenceBound(p, n), GeneralConvergenceBound(p, n));
      EXPECT_LE(GeneralConvergenceBound(p, n),
                GeneralConvergenceBound(p + 1, n));
      EXPECT_LT(GeneralConvergenceBound(p, n),
                GeneralConvergenceBound(p, n + 1));
    }
  }
}

TEST(Fixpoint, ZeroStableLinearBoundIsN) {
  // For p = 0, the linear bound Σ (p+1)^i = N — matching Theorem 5.12(2).
  for (int n = 1; n < 10; ++n) {
    EXPECT_EQ(LinearConvergenceBound(0, n), static_cast<uint64_t>(n));
  }
}

}  // namespace
}  // namespace datalogo
