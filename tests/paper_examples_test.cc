// End-to-end reproduction of the paper's worked examples:
//   * Example 4.1 — SSSP on Fig. 2(a) over B, Trop+, Trop+_1, Trop+_{≤η},
//     including the exact 5-step naive iteration table;
//   * Example 4.2 — bill-of-material on Fig. 2(b): diverges over N,
//     converges in 3 steps over the lifted reals R⊥;
//   * Example 1.1 — APSP over Trop+;
//   * Sec. 4.5 — prefix-sum with case statements (desugared).
#include <gtest/gtest.h>

#include "src/datalogo.h"

namespace datalogo {
namespace {

constexpr const char* kSsspProgram = R"(
  edb E/2.
  idb L/1.
  L(X) :- [X = a] ; L(Z) * E(Z, X).
)";

// Loads Fig. 2(a) into an EDB instance over P, lifting weights via F.
template <Pops P, typename F>
EdbInstance<P> LoadFig2a(const Program& prog, Domain* dom, F&& lift) {
  EdbInstance<P> edb(prog);
  LoadNamedEdges<P>(PaperFig2a(), dom, lift,
                    &edb.pops(prog.FindPredicate("E")));
  return edb;
}

TEST(Example41, SsspOverTropConvergesInFiveStepsWithPaperTable) {
  Domain dom;
  auto prog = ParseProgram(kSsspProgram, &dom);
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  ASSERT_TRUE(ValidateProgram(prog.value()).ok());

  auto edb = LoadFig2a<TropS>(prog.value(), &dom,
                              [](double w) { return w; });
  Engine<TropS> engine(prog.value(), edb);
  auto result = engine.Naive(100);
  ASSERT_TRUE(result.converged);
  // The paper's table runs L(0)..L(5) ("converges after 5 steps"); our
  // `steps` is the stability index, i.e. the first t with L(t) = L(t+1),
  // which the table shows is t = 4.
  EXPECT_EQ(result.steps, 4);

  int l = prog.value().FindPredicate("L");
  const Relation<TropS>& rel = result.idb.idb(l);
  auto at = [&](const char* v) {
    return rel.Get({*dom.FindSymbol(v)});
  };
  EXPECT_EQ(at("a"), 0.0);
  EXPECT_EQ(at("b"), 1.0);
  EXPECT_EQ(at("c"), 4.0);
  EXPECT_EQ(at("d"), 8.0);
}

TEST(Example41, SsspOverBooleansIsReachability) {
  Domain dom;
  auto prog = ParseProgram(kSsspProgram, &dom);
  ASSERT_TRUE(prog.ok());
  auto edb = LoadFig2a<BoolS>(prog.value(), &dom,
                              [](double) { return true; });
  Engine<BoolS> engine(prog.value(), edb);
  auto result = engine.Naive(100);
  ASSERT_TRUE(result.converged);
  int l = prog.value().FindPredicate("L");
  for (const char* v : {"a", "b", "c", "d"}) {
    EXPECT_TRUE(result.idb.idb(l).Get({*dom.FindSymbol(v)})) << v;
  }
}

TEST(Example41, SsspOverTropOneComputesTwoShortestPaths) {
  using T1 = TropPS<1>;
  Domain dom;
  auto prog = ParseProgram(kSsspProgram, &dom);
  ASSERT_TRUE(prog.ok());
  auto edb = LoadFig2a<T1>(prog.value(), &dom,
                           [](double w) { return T1::FromScalar(w); });
  Engine<T1> engine(prog.value(), edb);
  auto result = engine.Naive(100);
  ASSERT_TRUE(result.converged);
  int l = prog.value().FindPredicate("L");
  const Relation<T1>& rel = result.idb.idb(l);
  auto at = [&](const char* v) { return rel.Get({*dom.FindSymbol(v)}); };
  // The paper's Trop+_1 results (Example 4.1).
  EXPECT_TRUE(T1::Eq(at("a"), T1::Value{0, 3}));
  EXPECT_TRUE(T1::Eq(at("b"), T1::Value{1, 4}));
  EXPECT_TRUE(T1::Eq(at("c"), T1::Value{4, 5}));
  EXPECT_TRUE(T1::Eq(at("d"), T1::Value{8, 9}));
}

TEST(Example41, SsspOverTropEtaKeepsNearOptimalLengths) {
  TropEtaS::ScopedEta eta(1.5);
  Domain dom;
  auto prog = ParseProgram(kSsspProgram, &dom);
  ASSERT_TRUE(prog.ok());
  auto edb = LoadFig2a<TropEtaS>(
      prog.value(), &dom,
      [](double w) { return TropEtaS::FromScalar(w); });
  Engine<TropEtaS> engine(prog.value(), edb);
  auto result = engine.Naive(100);
  ASSERT_TRUE(result.converged);
  int l = prog.value().FindPredicate("L");
  auto at = [&](const char* v) {
    return result.idb.idb(l).Get({*dom.FindSymbol(v)});
  };
  // Paths to c have lengths {4, 5, 7, 8, ...}: with η = 1.5 keep {4, 5}.
  EXPECT_EQ(at("c"), (TropEtaS::Value{4, 5}));
  // Paths to a: {0, 3, 6, ...}: keep {0}.
  EXPECT_EQ(at("a"), (TropEtaS::Value{0}));
}

constexpr const char* kBomProgram = R"(
  bedb E/2.
  edb C/1.
  idb T/1.
  T(X) :- C(X) ; { T(Y) | E(X, Y) }.
)";

TEST(Example42, BillOfMaterialOverLiftedRealsConvergesInThreeSteps) {
  using R = Lifted<RealS>;
  Domain dom;
  auto prog = ParseProgram(kBomProgram, &dom);
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  ASSERT_TRUE(ValidateProgram(prog.value()).ok());

  NamedGraph fig = PaperFig2b();
  EdbInstance<R> edb(prog.value());
  LoadNamedEdgesBool(fig, &dom,
                     &edb.boolean(prog.value().FindPredicate("E")));
  for (const auto& [v, c] : fig.vertex_costs) {
    edb.pops(prog.value().FindPredicate("C"))
        .Set({dom.InternSymbol(v)}, R::Lift(c));
  }

  // R⊥ is not a semiring: use the grounded engine.
  auto grounded = GroundProgram<R>(prog.value(), edb);
  auto iter = grounded.NaiveIterate(100);
  ASSERT_TRUE(iter.converged);
  // The paper's table runs T0..T3 with T2 = T3: stability index 2
  // ("converges in 3 steps" counts the last, unchanged application).
  EXPECT_EQ(iter.steps, 2);

  IdbInstance<R> idb = grounded.Decode(iter.values);
  int t = prog.value().FindPredicate("T");
  auto at = [&](const char* v) {
    return idb.idb(t).Get({*dom.FindSymbol(v)});
  };
  EXPECT_TRUE(R::Eq(at("a"), R::Bottom()));
  EXPECT_TRUE(R::Eq(at("b"), R::Bottom()));
  EXPECT_TRUE(R::Eq(at("c"), R::Lift(11.0)));
  EXPECT_TRUE(R::Eq(at("d"), R::Lift(10.0)));
}

TEST(Example42, BillOfMaterialOverNaturalsDiverges) {
  Domain dom;
  auto prog = ParseProgram(kBomProgram, &dom);
  ASSERT_TRUE(prog.ok());
  NamedGraph fig = PaperFig2b();
  EdbInstance<NatS> edb(prog.value());
  LoadNamedEdgesBool(fig, &dom,
                     &edb.boolean(prog.value().FindPredicate("E")));
  for (const auto& [v, c] : fig.vertex_costs) {
    edb.pops(prog.value().FindPredicate("C"))
        .Set({dom.InternSymbol(v)}, static_cast<uint64_t>(c));
  }
  auto grounded = GroundProgram<NatS>(prog.value(), edb);
  auto iter = grounded.NaiveIterate(50);
  EXPECT_FALSE(iter.converged);  // a,b sit on a cycle: values grow forever
  // The same divergence is visible through the support engine.
  Engine<NatS> engine(prog.value(), edb);
  EXPECT_FALSE(engine.Naive(50).converged);
}

constexpr const char* kApspProgram = R"(
  edb E/2.
  idb T/2.
  T(X, Y) :- E(X, Y) ; T(X, Z) * E(Z, Y).
)";

TEST(Example11, ApspOverTropMatchesBellmanFord) {
  Domain dom;
  auto prog = ParseProgram(kApspProgram, &dom);
  ASSERT_TRUE(prog.ok());
  Graph g = RandomGraph(12, 40, /*seed=*/7);
  std::vector<ConstId> ids = InternVertices(12, &dom);
  EdbInstance<TropS> edb(prog.value());
  LoadEdges<TropS>(g, ids, [](const Edge& e) { return e.weight; },
                   &edb.pops(prog.value().FindPredicate("E")));
  Engine<TropS> engine(prog.value(), edb);
  auto result = engine.Naive(1000);
  ASSERT_TRUE(result.converged);
  int t = prog.value().FindPredicate("T");
  for (int s = 0; s < 12; ++s) {
    std::vector<double> dist = g.ShortestPathsFrom(s);
    for (int v = 0; v < 12; ++v) {
      if (v == s) continue;  // T excludes the empty path
      EXPECT_EQ(result.idb.idb(t).Get({ids[s], ids[v]}), dist[v])
          << s << "->" << v;
    }
  }
}

TEST(Sec45, PrefixSumViaCaseStatementDesugaring) {
  // W(i) :- case i=0: V(0); i<n: W(i-1)+V(i) — desugared per Sec. 4.5.
  // Key arithmetic (i-1) is encoded with a Boolean successor EDB.
  constexpr const char* kText = R"(
    edb V/1.
    bedb Succ/2.
    idb W/1.
    W(I) :- { V(I) | I = 0 } ; { W(J) * V(I) | Succ(J, I) }.
  )";
  Domain dom;
  auto prog = ParseProgram(kText, &dom);
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  ASSERT_TRUE(ValidateProgram(prog.value()).ok());

  // Over (N, +, ×): W(i) should be... careful: ⊗ is ×, so use values as
  // exponents? No — the prefix-sum needs ⊕ aggregation only; the body
  // uses ⊗ to chain, so interpret over (N∪{∞}, min, +) where ⊗ = + gives
  // running sums and ⊕ = min is trivial (single derivation per tuple).
  EdbInstance<TropNatS> edb(prog.value());
  const int n = 20;
  uint64_t expect = 0;
  std::vector<uint64_t> prefix(n);
  for (int i = 0; i < n; ++i) {
    ConstId id = dom.InternInt(i);
    edb.pops(prog.value().FindPredicate("V")).Set({id}, uint64_t(i * 3 + 1));
    expect += i * 3 + 1;
    prefix[i] = expect;
    if (i > 0) {
      edb.boolean(prog.value().FindPredicate("Succ"))
          .Set({dom.InternInt(i - 1), id}, true);
    }
  }
  Engine<TropNatS> engine(prog.value(), edb);
  auto result = engine.Naive(100);
  ASSERT_TRUE(result.converged);
  EXPECT_EQ(result.steps, n);  // one chain element resolved per step
  int w = prog.value().FindPredicate("W");
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(result.idb.idb(w).Get({dom.InternInt(i)}), prefix[i]) << i;
  }
}

TEST(SupportVsGrounded, AgreeOnNaturallyOrderedSemirings) {
  // Property: the two engines implement the same semantics on naturally
  // ordered semirings (Sec. 4.3 equivalence of ICO and grounded views).
  Domain dom;
  auto prog = ParseProgram(kApspProgram, &dom);
  ASSERT_TRUE(prog.ok());
  Graph g = RandomGraph(6, 14, /*seed=*/21);
  std::vector<ConstId> ids = InternVertices(6, &dom);
  EdbInstance<TropS> edb(prog.value());
  LoadEdges<TropS>(g, ids, [](const Edge& e) { return e.weight; },
                   &edb.pops(prog.value().FindPredicate("E")));

  Engine<TropS> engine(prog.value(), edb);
  auto support = engine.Naive(1000);
  ASSERT_TRUE(support.converged);

  auto grounded = GroundProgram<TropS>(prog.value(), edb);
  auto iter = grounded.NaiveIterate(1000);
  ASSERT_TRUE(iter.converged);
  IdbInstance<TropS> decoded = grounded.Decode(iter.values);
  EXPECT_TRUE(decoded.Equals(support.idb));
}

}  // namespace
}  // namespace datalogo
