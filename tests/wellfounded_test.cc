// The alternating-fixpoint baseline (Sec. 7.1).
#include <gtest/gtest.h>

#include "src/datalogo.h"

namespace datalogo {
namespace {

TEST(WellFounded, PositiveProgramIsTwoValued) {
  // No negation: the well-founded model is the minimal model.
  NegProgram prog;
  prog.num_atoms = 3;
  prog.rules = {{0, {}, {}}, {1, {0}, {}}, {2, {2}, {}}};  // 2 :- 2 derives nothing
  WellFoundedModel m = AlternatingFixpoint(prog);
  EXPECT_EQ(m.values[0], Kleene::kTrue);
  EXPECT_EQ(m.values[1], Kleene::kTrue);
  EXPECT_EQ(m.values[2], Kleene::kFalse);  // minimal model: P(a):-P(a) is 0
}

TEST(WellFounded, StratifiedNegation) {
  // q :- ¬p where p has no rules: p = 0, q = 1.
  NegProgram prog;
  prog.num_atoms = 2;
  prog.rules = {{1, {}, {0}}};
  WellFoundedModel m = AlternatingFixpoint(prog);
  EXPECT_EQ(m.values[0], Kleene::kFalse);
  EXPECT_EQ(m.values[1], Kleene::kTrue);
}

TEST(WellFounded, ParadoxIsUndefined) {
  // p :- ¬p.
  NegProgram prog;
  prog.num_atoms = 1;
  prog.rules = {{0, {}, {0}}};
  WellFoundedModel m = AlternatingFixpoint(prog);
  EXPECT_EQ(m.values[0], Kleene::kBot);
}

TEST(WellFounded, PaperSection71Table) {
  // The exact alternating-fixpoint table for Fig. 4 (J(0)..J(6)).
  NamedGraph named = PaperFig4();
  Graph g(6);
  auto index = [&](const std::string& n) {
    for (std::size_t i = 0; i < named.names.size(); ++i) {
      if (named.names[i] == n) return static_cast<int>(i);
    }
    return -1;
  };
  for (const auto& [s, t] : named.edges) g.AddEdge(index(s), index(t));
  WellFoundedModel m = AlternatingFixpoint(WinMoveProgram(g));
  // Paper rows J(0)..J(6) over (a,b,c,d,e,f).
  const bool expected[7][6] = {
      {0, 0, 0, 0, 0, 0}, {1, 1, 1, 1, 1, 0}, {0, 0, 0, 0, 1, 0},
      {1, 1, 1, 0, 1, 0}, {0, 0, 1, 0, 1, 0}, {1, 1, 1, 0, 1, 0},
      {0, 0, 1, 0, 1, 0},
  };
  ASSERT_GE(m.trace.size(), 7u);
  for (int t = 0; t < 7; ++t) {
    for (int v = 0; v < 6; ++v) {
      EXPECT_EQ(m.trace[t][v], expected[t][v]) << "t=" << t << " v=" << v;
    }
  }
}

TEST(WellFounded, MonotoneChains) {
  // Even-indexed trace entries increase, odd-indexed decrease.
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Graph g = RandomGraph(9, 18, seed);
    WellFoundedModel m = AlternatingFixpoint(WinMoveProgram(g));
    for (std::size_t t = 2; t < m.trace.size(); ++t) {
      for (int v = 0; v < 9; ++v) {
        if (t % 2 == 0) {
          EXPECT_LE(m.trace[t - 2][v], m.trace[t][v]);
        } else {
          EXPECT_GE(m.trace[t - 2][v], m.trace[t][v]);
        }
      }
    }
    // L ⊆ G: an atom true in the increasing limit is never false in the
    // decreasing limit.
    const std::vector<bool>& last = m.trace.back();
    const std::vector<bool>& prev = m.trace[m.trace.size() - 2];
    for (int v = 0; v < 9; ++v) {
      bool in_l = ((m.trace.size() - 1) % 2 == 0 ? last : prev)[v];
      bool in_g = ((m.trace.size() - 1) % 2 == 1 ? last : prev)[v];
      EXPECT_TRUE(!in_l || in_g) << v;
    }
  }
}

}  // namespace
}  // namespace datalogo
