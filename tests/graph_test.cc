// Graph substrate and generators.
#include <gtest/gtest.h>

#include "src/graph/generators.h"
#include "src/graph/graph.h"
#include "src/graph/workloads.h"

namespace datalogo {
namespace {

TEST(Graph, ShortestPathOracle) {
  Graph g(4);
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(1, 2, 2.0);
  g.AddEdge(0, 2, 5.0);
  auto d = g.ShortestPathsFrom(0);
  EXPECT_EQ(d[0], 0.0);
  EXPECT_EQ(d[1], 1.0);
  EXPECT_EQ(d[2], 3.0);
  EXPECT_EQ(d[3], std::numeric_limits<double>::infinity());
}

TEST(Graph, ReachabilityOracle) {
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(2, 3);
  auto r = g.ReachableFrom(0);
  EXPECT_TRUE(r[0]);
  EXPECT_TRUE(r[1]);
  EXPECT_FALSE(r[2]);
}

TEST(Generators, CycleHasNEdges) {
  Graph g = CycleGraph(5);
  EXPECT_EQ(g.num_edges(), 5);
  auto d = g.ShortestPathsFrom(0);
  EXPECT_EQ(d[4], 4.0);
}

TEST(Generators, GridDimensions) {
  Graph g = GridGraph(3, 4);
  EXPECT_EQ(g.num_vertices(), 12);
  EXPECT_EQ(g.num_edges(), 3 * 3 + 2 * 4);  // rights + downs
  auto d = g.ShortestPathsFrom(0);
  EXPECT_EQ(d[11], 5.0);  // manhattan distance
}

TEST(Generators, RandomGraphIsDeterministicPerSeed) {
  Graph a = RandomGraph(10, 20, 5);
  Graph b = RandomGraph(10, 20, 5);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (int i = 0; i < a.num_edges(); ++i) {
    EXPECT_EQ(a.edges()[i].src, b.edges()[i].src);
    EXPECT_EQ(a.edges()[i].dst, b.edges()[i].dst);
    EXPECT_EQ(a.edges()[i].weight, b.edges()[i].weight);
  }
}

TEST(Generators, LayeredDagIsAcyclic) {
  Graph g = LayeredDag(4, 5, 0.5, 9);
  for (const Edge& e : g.edges()) {
    EXPECT_LT(e.src / 5, e.dst / 5);  // strictly forward layers
  }
}

TEST(Generators, TreeWithCrossEdgesIsAcyclicAndConnected) {
  Graph g = TreeWithCrossEdges(30, 10, 3);
  for (const Edge& e : g.edges()) {
    EXPECT_LT(e.src, e.dst);  // topological by construction
  }
  // Every vertex reachable from the root.
  auto r = g.ReachableFrom(0);
  for (int v = 0; v < 30; ++v) EXPECT_TRUE(r[v]) << v;
}

TEST(Workloads, PaperFiguresShape) {
  NamedGraph f2a = PaperFig2a();
  EXPECT_EQ(f2a.names.size(), 4u);
  EXPECT_EQ(f2a.edges.size(), 5u);
  NamedGraph f2b = PaperFig2b();
  EXPECT_EQ(f2b.vertex_costs.at("d"), 10.0);
  NamedGraph f4 = PaperFig4();
  EXPECT_EQ(f4.names.size(), 6u);
  EXPECT_EQ(f4.edges.size(), 7u);
}

}  // namespace
}  // namespace datalogo
