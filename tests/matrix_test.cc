// Matrices over semirings and Lemma 5.20: every N×N matrix over Trop+_p
// is ((p+1)N − 1)-stable, and the N-cycle attains the bound exactly.
#include <gtest/gtest.h>

#include "src/datalogo.h"

namespace datalogo {
namespace {

TEST(Matrix, PlusTimesIdentity) {
  Matrix<NatS> a(2, 2), b(2, 2);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 3;
  a.at(1, 1) = 4;
  b.at(0, 0) = 5;
  b.at(1, 1) = 6;
  auto sum = a.Plus(b);
  EXPECT_EQ(sum.at(0, 0), 6u);
  EXPECT_EQ(sum.at(0, 1), 2u);
  auto prod = a.Times(Matrix<NatS>::Identity(2));
  EXPECT_TRUE(prod.Equals(a));
  auto ab = a.Times(b);
  EXPECT_EQ(ab.at(0, 0), 5u);   // 1*5 + 2*0
  EXPECT_EQ(ab.at(0, 1), 12u);  // 1*0 + 2*6
}

TEST(Matrix, ApplyIsMatVec) {
  Matrix<TropS> a(2, 2);
  a.at(0, 0) = 1.0;
  a.at(0, 1) = 2.0;
  a.at(1, 0) = TropS::Inf();
  a.at(1, 1) = 0.5;
  std::vector<double> x = {10.0, 20.0};
  auto y = a.Apply(x);
  EXPECT_EQ(y[0], 11.0);  // min(1+10, 2+20)
  EXPECT_EQ(y[1], 20.5);
}

/// Adjacency matrix of a graph over Trop+_p (bags of parallel-edge costs).
template <int kP>
Matrix<TropPS<kP>> TropPAdjacency(const Graph& g) {
  using T = TropPS<kP>;
  Matrix<T> a(g.num_vertices(), g.num_vertices());
  for (int i = 0; i < g.num_vertices(); ++i) {
    for (int j = 0; j < g.num_vertices(); ++j) a.at(i, j) = T::Zero();
  }
  for (const Edge& e : g.edges()) {
    a.at(e.src, e.dst) = T::Plus(a.at(e.src, e.dst), T::FromScalar(e.weight));
  }
  return a;
}

template <int kP>
void CheckLemma520Cycle(int n) {
  // The N-cycle attains stability index exactly (p+1)N − 1.
  auto a = TropPAdjacency<kP>(CycleGraph(n));
  auto idx = MatrixStabilityIndex<TropPS<kP>>(a, (kP + 1) * n + 8);
  ASSERT_TRUE(idx.has_value()) << "p=" << kP << " n=" << n;
  EXPECT_EQ(*idx, (kP + 1) * n - 1) << "p=" << kP << " n=" << n;
}

TEST(Matrix, Lemma520CycleIsTight) {
  CheckLemma520Cycle<0>(3);
  CheckLemma520Cycle<0>(5);
  CheckLemma520Cycle<1>(3);
  CheckLemma520Cycle<1>(5);
  CheckLemma520Cycle<2>(4);
  CheckLemma520Cycle<3>(3);
}

template <int kP>
void CheckLemma520UpperBound(int n, uint64_t seed) {
  auto a = TropPAdjacency<kP>(RandomGraph(n, 3 * n, seed));
  auto idx = MatrixStabilityIndex<TropPS<kP>>(a, (kP + 1) * n + 8);
  ASSERT_TRUE(idx.has_value());
  EXPECT_LE(*idx, (kP + 1) * n - 1);
}

TEST(Matrix, Lemma520UpperBoundOnRandomMatrices) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    CheckLemma520UpperBound<0>(6, seed);
    CheckLemma520UpperBound<1>(6, seed);
    CheckLemma520UpperBound<2>(5, seed);
  }
}

TEST(Matrix, StabilityIndexOfNilpotentMatrixIsSmall) {
  // A strictly upper-triangular (DAG) matrix over Trop+: A^n = 0, so
  // A^(q) stabilizes by q = n − 1.
  Matrix<TropS> a(4, 4);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) a.at(i, j) = TropS::Inf();
  }
  a.at(0, 1) = 1.0;
  a.at(1, 2) = 1.0;
  a.at(2, 3) = 1.0;
  auto idx = MatrixStabilityIndex<TropS>(a, 10);
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(*idx, 3);
}

TEST(Matrix, StarTruncatedEqualsIteratedSums) {
  auto a = TropPAdjacency<1>(CycleGraph(3));
  using T = TropPS<1>;
  // A^(q) computed two ways: Horner (library) vs explicit powers.
  Matrix<T> pow = Matrix<T>::Identity(3);
  Matrix<T> sum = Matrix<T>::Identity(3);
  for (int q = 1; q <= 5; ++q) {
    pow = pow.Times(a);
    sum = sum.Plus(pow);
    EXPECT_TRUE(MatrixStarTruncated<T>(a, q).Equals(sum)) << q;
  }
}

TEST(Matrix, DivergesOverNaturals) {
  // The cycle over (N, +, ×) has no stable closure.
  Matrix<NatS> a(2, 2);
  a.at(0, 1) = 1;
  a.at(1, 0) = 1;
  EXPECT_EQ(MatrixStabilityIndex<NatS>(a, 100), std::nullopt);
}

}  // namespace
}  // namespace datalogo
