// Semi-naive evaluation (Section 6): Theorem 6.4 (same answer as naive),
// the Ex. 6.6 quadratic differential rule, and the work-saving property
// that motivates the optimization.
#include <gtest/gtest.h>

#include "src/datalogo.h"

namespace datalogo {
namespace {

constexpr const char* kLinearTc = R"(
  edb E/2.
  idb T/2.
  T(X,Y) :- E(X,Y) ; T(X,Z) * E(Z,Y).
)";

constexpr const char* kQuadraticTc = R"(
  edb E/2.
  idb T/2.
  T(X,Y) :- E(X,Y) ; T(X,Z) * T(Z,Y).
)";

constexpr const char* kSssp = R"(
  edb E/2.
  idb L/1.
  L(X) :- [X = a] ; L(Z) * E(Z, X).
)";

template <Pops P>
void ExpectSameFixpoint(const Program& prog, const EdbInstance<P>& edb)
  requires CompleteDistributiveDioid<P> && NaturallyOrderedSemiring<P>
{
  Engine<P> engine(prog, edb);
  auto naive = engine.Naive(10000);
  auto semi = engine.SemiNaive(10000);
  ASSERT_TRUE(naive.converged);
  ASSERT_TRUE(semi.converged);
  EXPECT_TRUE(naive.idb.Equals(semi.idb));
}

TEST(SemiNaive, MatchesNaiveOnBooleanTransitiveClosure) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Domain dom;
    auto prog = ParseProgram(kLinearTc, &dom);
    ASSERT_TRUE(prog.ok());
    Graph g = RandomGraph(10, 25, seed);
    std::vector<ConstId> ids = InternVertices(10, &dom);
    EdbInstance<BoolS> edb(prog.value());
    LoadEdges<BoolS>(g, ids, [](const Edge&) { return true; },
                     &edb.pops(prog.value().FindPredicate("E")));
    ExpectSameFixpoint<BoolS>(prog.value(), edb);
  }
}

TEST(SemiNaive, MatchesNaiveOnQuadraticTransitiveClosure) {
  // Example 6.6: two IDB occurrences per sum-product; the differential
  // rule evaluates (δ ⋈ T_old) ∨ (T_new ⋈ δ).
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Domain dom;
    auto prog = ParseProgram(kQuadraticTc, &dom);
    ASSERT_TRUE(prog.ok());
    Graph g = RandomGraph(9, 20, seed + 100);
    std::vector<ConstId> ids = InternVertices(9, &dom);
    EdbInstance<BoolS> edb(prog.value());
    LoadEdges<BoolS>(g, ids, [](const Edge&) { return true; },
                     &edb.pops(prog.value().FindPredicate("E")));
    ExpectSameFixpoint<BoolS>(prog.value(), edb);
  }
}

TEST(SemiNaive, MatchesNaiveOnTropicalSssp) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Domain dom;
    auto prog = ParseProgram(kSssp, &dom);
    ASSERT_TRUE(prog.ok());
    // Vertex "a" must exist: name vertex 0 "a".
    Graph g = RandomGraph(12, 30, seed + 7);
    std::vector<ConstId> ids;
    ids.push_back(dom.InternSymbol("a"));
    for (int i = 1; i < 12; ++i) {
      ids.push_back(dom.InternSymbol("v" + std::to_string(i)));
    }
    EdbInstance<TropS> edb(prog.value());
    LoadEdges<TropS>(g, ids, [](const Edge& e) { return e.weight; },
                     &edb.pops(prog.value().FindPredicate("E")));
    ExpectSameFixpoint<TropS>(prog.value(), edb);
  }
}

TEST(SemiNaive, MatchesNaiveOnTropicalApsp) {
  Domain dom;
  auto prog = ParseProgram(kLinearTc, &dom);
  ASSERT_TRUE(prog.ok());
  Graph g = RandomGraph(14, 45, /*seed=*/11);
  std::vector<ConstId> ids = InternVertices(14, &dom);
  EdbInstance<TropS> edb(prog.value());
  LoadEdges<TropS>(g, ids, [](const Edge& e) { return e.weight; },
                   &edb.pops(prog.value().FindPredicate("E")));
  ExpectSameFixpoint<TropS>(prog.value(), edb);
}

TEST(SemiNaive, MatchesNaiveOnFuzzyAndViterbi) {
  Domain dom;
  auto prog = ParseProgram(kLinearTc, &dom);
  ASSERT_TRUE(prog.ok());
  Graph g = RandomGraph(10, 30, /*seed=*/5);
  std::vector<ConstId> ids = InternVertices(10, &dom);
  {
    EdbInstance<FuzzyS> edb(prog.value());
    LoadEdges<FuzzyS>(g, ids,
                      [](const Edge& e) { return 1.0 / (1.0 + e.weight); },
                      &edb.pops(prog.value().FindPredicate("E")));
    ExpectSameFixpoint<FuzzyS>(prog.value(), edb);
  }
  {
    EdbInstance<ViterbiS> edb(prog.value());
    LoadEdges<ViterbiS>(g, ids,
                        [](const Edge& e) { return 1.0 / (1.0 + e.weight); },
                        &edb.pops(prog.value().FindPredicate("E")));
    ExpectSameFixpoint<ViterbiS>(prog.value(), edb);
  }
}

TEST(SemiNaive, DoesLessJoinWorkThanNaive) {
  // The point of Sec. 6: δ is much smaller than T, so the differential
  // rule touches fewer tuples. Compare the work counters on a long chain.
  Domain dom;
  auto prog = ParseProgram(kLinearTc, &dom);
  ASSERT_TRUE(prog.ok());
  const int n = 60;
  Graph g(n);
  for (int i = 0; i + 1 < n; ++i) g.AddEdge(i, i + 1, 1.0);
  std::vector<ConstId> ids = InternVertices(n, &dom);
  EdbInstance<BoolS> edb(prog.value());
  LoadEdges<BoolS>(g, ids, [](const Edge&) { return true; },
                   &edb.pops(prog.value().FindPredicate("E")));
  Engine<BoolS> engine(prog.value(), edb);
  auto naive = engine.Naive(10000);
  auto semi = engine.SemiNaive(10000);
  ASSERT_TRUE(naive.converged && semi.converged);
  EXPECT_TRUE(naive.idb.Equals(semi.idb));
  // The naive engine re-derives every tuple every iteration: Θ(n) factor.
  EXPECT_LT(semi.work * 5, naive.work);
}

TEST(SemiNaive, NonDifferentialAblationAgreesButWorksHarder) {
  // Sec. 6.3: Algorithm 3 without the differential rule computes the same
  // fixpoint but performs as much join work as naive evaluation.
  Domain dom;
  auto prog = ParseProgram(kLinearTc, &dom);
  ASSERT_TRUE(prog.ok());
  Graph g = RandomGraph(20, 60, /*seed=*/77);
  std::vector<ConstId> ids = InternVertices(20, &dom);
  EdbInstance<BoolS> edb(prog.value());
  LoadEdges<BoolS>(g, ids, [](const Edge&) { return true; },
                   &edb.pops(prog.value().FindPredicate("E")));
  Engine<BoolS> engine(prog.value(), edb);
  auto naive = engine.Naive(10000);
  auto nodiff = engine.SemiNaiveNonDifferential(10000);
  auto diff = engine.SemiNaive(10000);
  ASSERT_TRUE(naive.converged && nodiff.converged && diff.converged);
  EXPECT_TRUE(naive.idb.Equals(nodiff.idb));
  EXPECT_TRUE(naive.idb.Equals(diff.idb));
  // The ablation does (almost exactly) naive work; the differential rule
  // does strictly less.
  EXPECT_EQ(nodiff.work, naive.work);
  EXPECT_LT(diff.work, nodiff.work);
}

TEST(SemiNaive, EmptyProgramAndEmptyEdb) {
  Domain dom;
  auto prog = ParseProgram(kLinearTc, &dom);
  ASSERT_TRUE(prog.ok());
  EdbInstance<BoolS> edb(prog.value());
  Engine<BoolS> engine(prog.value(), edb);
  auto semi = engine.SemiNaive(10);
  EXPECT_TRUE(semi.converged);
  EXPECT_EQ(semi.idb.TotalSupport(), 0u);
}

TEST(SemiNaive, MinusOperatorSuppressesNonImprovements) {
  // Trop+ ⊖ (Eq. 6): a re-derived equal-or-worse distance must not appear
  // in δ. On a cycle, distances stabilize and δ must empty out.
  Domain dom;
  auto prog = ParseProgram(kSssp, &dom);
  ASSERT_TRUE(prog.ok());
  std::vector<ConstId> ids;
  ids.push_back(dom.InternSymbol("a"));
  for (int i = 1; i < 6; ++i) {
    ids.push_back(dom.InternSymbol("v" + std::to_string(i)));
  }
  Graph g = CycleGraph(6);
  EdbInstance<TropS> edb(prog.value());
  LoadEdges<TropS>(g, ids, [](const Edge& e) { return e.weight; },
                   &edb.pops(prog.value().FindPredicate("E")));
  Engine<TropS> engine(prog.value(), edb);
  auto semi = engine.SemiNaive(1000);
  ASSERT_TRUE(semi.converged);
  int l = prog.value().FindPredicate("L");
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(semi.idb.idb(l).Get({ids[i]}), static_cast<double>(i));
  }
}

}  // namespace
}  // namespace datalogo
