// Toolchain self-checks. Two properties the build system promises:
//   1. src/datalogo.h is self-contained — this TU includes nothing from
//      the library except the umbrella header, so compiling it proves the
//      installed headers stand alone.
//   2. Every tests/*_test.cc is registered with CTest — CMake passes the
//      registered list in DATALOGO_REGISTERED_TESTS and the source
//      directory in DATALOGO_TESTS_DIR; we diff them at runtime.
#include "src/datalogo.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <sstream>
#include <string>

#ifndef DATALOGO_TESTS_DIR
#error "CMake must define DATALOGO_TESTS_DIR for build_smoke_test"
#endif
#ifndef DATALOGO_REGISTERED_TESTS
#error "CMake must define DATALOGO_REGISTERED_TESTS for build_smoke_test"
#endif

namespace datalogo {
namespace {

TEST(BuildSmoke, UmbrellaHeaderIsSelfContainedAndUsable) {
  // The interesting assertion happened at compile time; run the header's
  // own quick-tour snippet end to end as a sanity check.
  Domain dom;
  auto prog = ParseProgram(
      "edb E/2. idb T/2. T(X,Y) :- E(X,Y) ; T(X,Z) * E(Z,Y).", &dom);
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  EdbInstance<BoolS> edb(prog.value());
  ConstId a = dom.InternSymbol("a");
  ConstId b = dom.InternSymbol("b");
  ConstId c = dom.InternSymbol("c");
  auto& e = edb.pops(prog.value().FindPredicate("E"));
  e.Set({a, b}, true);
  e.Set({b, c}, true);
  Engine<BoolS> engine(prog.value(), edb);
  auto result = engine.SemiNaive(100);
  ASSERT_TRUE(result.converged);
  int t = prog.value().FindPredicate("T");
  EXPECT_TRUE(result.idb.idb(t).Get({a, c}));
  EXPECT_EQ(result.idb.idb(t).support_size(), 3u);
}

TEST(BuildSmoke, EveryTestSourceIsRegisteredWithCtest) {
  std::set<std::string> on_disk;
  for (const auto& entry :
       std::filesystem::directory_iterator(DATALOGO_TESTS_DIR)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > 8 && name.substr(name.size() - 8) == "_test.cc") {
      on_disk.insert(name.substr(0, name.size() - 3));  // drop ".cc"
    }
  }
  ASSERT_FALSE(on_disk.empty()) << "no *_test.cc under " DATALOGO_TESTS_DIR;

  std::set<std::string> registered;
  std::istringstream csv(DATALOGO_REGISTERED_TESTS);
  std::string name;
  while (std::getline(csv, name, ',')) {
    if (!name.empty()) registered.insert(name);
  }

  for (const std::string& file : on_disk) {
    EXPECT_TRUE(registered.count(file))
        << file << ".cc exists but is not registered with CTest "
        << "(stale configure? re-run cmake)";
  }
  for (const std::string& reg : registered) {
    EXPECT_TRUE(on_disk.count(reg))
        << reg << " is registered with CTest but has no source file";
  }
}

}  // namespace
}  // namespace datalogo
