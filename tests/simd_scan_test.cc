// SIMD column-scan kernels (src/core/simd.h) vs the scalar reference:
// outputs must be bit-identical for every tail length — the differential
// surface is 0..2×lane-width plus a few, so every vector-body/scalar-tail
// split point is crossed — and for adversarial contents (all-zero,
// all-ones, extreme u32 values that break signed-compare shortcuts).
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "src/core/simd.h"

namespace datalogo {
namespace {

TEST(SimdScan, CollectLiveRowsMatchesScalarOverAllTailLengths) {
  std::mt19937 rng(0xC011EC7);
  for (uint32_t n = 0; n <= 2 * simd::kLanes8 + 3; ++n) {
    for (double density : {0.0, 0.5, 1.0}) {
      std::bernoulli_distribution alive(density);
      std::vector<uint8_t> live(n);
      // Live flags are nominally 0/1, but the kernels must treat any
      // nonzero byte as live.
      for (auto& f : live) f = alive(rng) ? (rng() % 2 ? 1 : 2) : 0;
      std::vector<uint32_t> ref, got;
      simd::CollectLiveRowsScalar(live.data(), n, &ref);
      simd::CollectLiveRows(live.data(), n, ScanKernel::kSimd, &got);
      EXPECT_EQ(ref, got) << "n=" << n << " density=" << density;
      // The runtime switch must really route to the reference loop.
      std::vector<uint32_t> via_switch;
      simd::CollectLiveRows(live.data(), n, ScanKernel::kScalar,
                            &via_switch);
      EXPECT_EQ(ref, via_switch);
    }
  }
}

TEST(SimdScan, FilterEqRowsMatchesScalarOverAllTailLengths) {
  std::mt19937 rng(0xF117E4);
  for (uint32_t n = 0; n <= 2 * simd::kLanes32 + 3; ++n) {
    for (int variant = 0; variant < 4; ++variant) {
      std::vector<uint32_t> col(n);
      uint32_t key = 0;
      switch (variant) {
        case 0:  // random small ids, key present with repeats
          for (auto& c : col) c = rng() % 4;
          key = 2;
          break;
        case 1:  // key absent
          for (auto& c : col) c = rng() % 100;
          key = 1000;
          break;
        case 2:  // every element matches
          for (auto& c : col) c = 7;
          key = 7;
          break;
        case 3:  // extreme values: sign-bit patterns must not confuse
                 // the integer-compare paths
          for (auto& c : col) c = rng() % 2 ? 0u : 0xFFFFFFFFu;
          key = 0xFFFFFFFFu;
          break;
      }
      std::vector<uint32_t> ref, got;
      simd::FilterEqRowsScalar(col.data(), n, key, &ref);
      simd::FilterEqRows(col.data(), n, key, ScanKernel::kSimd, &got);
      EXPECT_EQ(ref, got) << "n=" << n << " variant=" << variant;
    }
  }
}

TEST(SimdScan, MinMaxU32MatchesScalarOverAllTailLengths) {
  std::mt19937 rng(0x314159);
  for (uint32_t n = 1; n <= 4 * simd::kLanes32 + 3; ++n) {
    for (int variant = 0; variant < 3; ++variant) {
      std::vector<uint32_t> col(n);
      for (auto& c : col) {
        // Variant 2 stresses values above INT32_MAX: an unsigned min/max
        // implemented with signed compares would order them wrong.
        c = variant == 0 ? rng() % 64
                         : variant == 1 ? static_cast<uint32_t>(rng())
                                        : 0x80000000u + rng() % 1024;
      }
      uint32_t ref_lo = 0, ref_hi = 0, lo = 0, hi = 0;
      simd::MinMaxU32Scalar(col.data(), n, &ref_lo, &ref_hi);
      simd::MinMaxU32(col.data(), n, &lo, &hi, ScanKernel::kSimd);
      EXPECT_EQ(ref_lo, lo) << "n=" << n << " variant=" << variant;
      EXPECT_EQ(ref_hi, hi) << "n=" << n << " variant=" << variant;
    }
  }
}

TEST(SimdScan, RowIdsAreAscending) {
  // Both downstream consumers (EntryLists, dense detection) rely on
  // kernel outputs preserving row order; spot-check a mixed pattern.
  std::vector<uint8_t> live = {1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0,
                               1, 0, 0, 1, 1, 0, 1, 0, 1, 1, 0, 1};
  std::vector<uint32_t> rows;
  simd::CollectLiveRows(live.data(), static_cast<uint32_t>(live.size()),
                        ScanKernel::kSimd, &rows);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LT(rows[i - 1], rows[i]);
  }
}

}  // namespace
}  // namespace datalogo
