// SIMD column-scan and join-batch kernels (src/core/simd.h) vs the
// scalar reference: outputs must be bit-identical for every tail length
// — the differential surface is 0..2×lane-width plus a few, so every
// vector-body/scalar-tail split point is crossed — and for adversarial
// contents (all-zero, all-ones, extreme u32 values that break
// signed-compare shortcuts). The gather/compare-mask/compress trio is
// additionally tested composed exactly as the engine's batched join
// kernel chains them.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "src/core/simd.h"

namespace datalogo {
namespace {

TEST(SimdScan, CollectLiveRowsMatchesScalarOverAllTailLengths) {
  std::mt19937 rng(0xC011EC7);
  for (uint32_t n = 0; n <= 2 * simd::kLanes8 + 3; ++n) {
    for (double density : {0.0, 0.5, 1.0}) {
      std::bernoulli_distribution alive(density);
      std::vector<uint8_t> live(n);
      // Live flags are nominally 0/1, but the kernels must treat any
      // nonzero byte as live.
      for (auto& f : live) f = alive(rng) ? (rng() % 2 ? 1 : 2) : 0;
      std::vector<uint32_t> ref, got;
      simd::CollectLiveRowsScalar(live.data(), n, &ref);
      simd::CollectLiveRows(live.data(), n, ScanKernel::kSimd, &got);
      EXPECT_EQ(ref, got) << "n=" << n << " density=" << density;
      // The runtime switch must really route to the reference loop.
      std::vector<uint32_t> via_switch;
      simd::CollectLiveRows(live.data(), n, ScanKernel::kScalar,
                            &via_switch);
      EXPECT_EQ(ref, via_switch);
    }
  }
}

TEST(SimdScan, FilterEqRowsMatchesScalarOverAllTailLengths) {
  std::mt19937 rng(0xF117E4);
  for (uint32_t n = 0; n <= 2 * simd::kLanes32 + 3; ++n) {
    for (int variant = 0; variant < 4; ++variant) {
      std::vector<uint32_t> col(n);
      uint32_t key = 0;
      switch (variant) {
        case 0:  // random small ids, key present with repeats
          for (auto& c : col) c = rng() % 4;
          key = 2;
          break;
        case 1:  // key absent
          for (auto& c : col) c = rng() % 100;
          key = 1000;
          break;
        case 2:  // every element matches
          for (auto& c : col) c = 7;
          key = 7;
          break;
        case 3:  // extreme values: sign-bit patterns must not confuse
                 // the integer-compare paths
          for (auto& c : col) c = rng() % 2 ? 0u : 0xFFFFFFFFu;
          key = 0xFFFFFFFFu;
          break;
      }
      std::vector<uint32_t> ref, got;
      simd::FilterEqRowsScalar(col.data(), n, key, &ref);
      simd::FilterEqRows(col.data(), n, key, ScanKernel::kSimd, &got);
      EXPECT_EQ(ref, got) << "n=" << n << " variant=" << variant;
    }
  }
}

TEST(SimdScan, MinMaxU32MatchesScalarOverAllTailLengths) {
  std::mt19937 rng(0x314159);
  for (uint32_t n = 1; n <= 4 * simd::kLanes32 + 3; ++n) {
    for (int variant = 0; variant < 3; ++variant) {
      std::vector<uint32_t> col(n);
      for (auto& c : col) {
        // Variant 2 stresses values above INT32_MAX: an unsigned min/max
        // implemented with signed compares would order them wrong.
        c = variant == 0 ? rng() % 64
                         : variant == 1 ? static_cast<uint32_t>(rng())
                                        : 0x80000000u + rng() % 1024;
      }
      uint32_t ref_lo = 0, ref_hi = 0, lo = 0, hi = 0;
      simd::MinMaxU32Scalar(col.data(), n, &ref_lo, &ref_hi);
      simd::MinMaxU32(col.data(), n, &lo, &hi, ScanKernel::kSimd);
      EXPECT_EQ(ref_lo, lo) << "n=" << n << " variant=" << variant;
      EXPECT_EQ(ref_hi, hi) << "n=" << n << " variant=" << variant;
    }
  }
}

TEST(SimdScan, GatherU32MatchesScalarOverAllTailLengths) {
  std::mt19937 rng(0x6A77E4);
  std::vector<uint32_t> col(256);
  for (auto& c : col) c = rng();
  for (uint32_t n = 0; n <= 2 * simd::kLanes32 + 3; ++n) {
    // Row ids may repeat and arrive in any order (entry lists are
    // ascending, but the kernel must not rely on it).
    std::vector<uint32_t> rows(n);
    for (auto& r : rows) r = rng() % col.size();
    std::vector<uint32_t> ref(n, 0), got(n, 0), via_switch(n, 0);
    simd::GatherU32Scalar(col.data(), rows.data(), n, ref.data());
    simd::GatherU32(col.data(), rows.data(), n, ScanKernel::kSimd,
                    got.data());
    EXPECT_EQ(ref, got) << "n=" << n;
    simd::GatherU32(col.data(), rows.data(), n, ScanKernel::kScalar,
                    via_switch.data());
    EXPECT_EQ(ref, via_switch);
  }
}

TEST(SimdScan, MaskEqU32MatchesScalarOverAllTailLengths) {
  std::mt19937 rng(0x3A5CED);
  for (uint32_t n = 0; n <= 2 * simd::kLanes32 + 3; ++n) {
    for (int variant = 0; variant < 3; ++variant) {
      std::vector<uint32_t> a(n), b(n);
      for (uint32_t i = 0; i < n; ++i) {
        switch (variant) {
          case 0:  // frequent matches
            a[i] = rng() % 3;
            b[i] = rng() % 3;
            break;
          case 1:  // everything matches
            a[i] = b[i] = rng();
            break;
          case 2:  // sign-bit extremes must not confuse integer compares
            a[i] = rng() % 2 ? 0u : 0xFFFFFFFFu;
            b[i] = rng() % 2 ? 0u : 0xFFFFFFFFu;
            break;
        }
      }
      const uint32_t ref = simd::MaskEqU32Scalar(a.data(), b.data(), n);
      EXPECT_EQ(ref, simd::MaskEqU32(a.data(), b.data(), n,
                                     ScanKernel::kSimd))
          << "n=" << n << " variant=" << variant;
      EXPECT_EQ(ref, simd::MaskEqU32(a.data(), b.data(), n,
                                     ScanKernel::kScalar));
      // Bits at or above n must be clear — CompressRowIds relies on it.
      if (n < 32) EXPECT_EQ(ref >> n, 0u);
    }
  }
}

TEST(SimdScan, MaskEqScalarU32MatchesScalarOverAllTailLengths) {
  std::mt19937 rng(0x5CA1A4);
  for (uint32_t n = 0; n <= 2 * simd::kLanes32 + 3; ++n) {
    for (int variant = 0; variant < 3; ++variant) {
      std::vector<uint32_t> vals(n);
      uint32_t key = 0;
      switch (variant) {
        case 0:
          for (auto& v : vals) v = rng() % 4;
          key = 2;
          break;
        case 1:  // key absent
          for (auto& v : vals) v = rng() % 100;
          key = 1000;
          break;
        case 2:  // extreme values
          for (auto& v : vals) v = rng() % 2 ? 0u : 0xFFFFFFFFu;
          key = 0xFFFFFFFFu;
          break;
      }
      const uint32_t ref = simd::MaskEqScalarU32Scalar(vals.data(), n, key);
      EXPECT_EQ(ref, simd::MaskEqScalarU32(vals.data(), n, key,
                                           ScanKernel::kSimd))
          << "n=" << n << " variant=" << variant;
      EXPECT_EQ(ref, simd::MaskEqScalarU32(vals.data(), n, key,
                                           ScanKernel::kScalar));
    }
  }
}

TEST(SimdScan, CompressRowIdsMatchesMaskEnumeration) {
  // Every mask over one join batch: the compressed output must be the
  // selected rows in ascending lane order.
  std::vector<uint32_t> rows(simd::kJoinBatch);
  for (uint32_t i = 0; i < simd::kJoinBatch; ++i) rows[i] = 100 + 7 * i;
  for (uint32_t mask = 0; mask < (1u << simd::kJoinBatch); ++mask) {
    std::vector<uint32_t> out(simd::kJoinBatch, 0);
    const uint32_t count = simd::CompressRowIds(rows.data(), mask, out.data());
    std::vector<uint32_t> ref;
    for (uint32_t i = 0; i < simd::kJoinBatch; ++i) {
      if (mask & (1u << i)) ref.push_back(rows[i]);
    }
    ASSERT_EQ(count, ref.size()) << "mask=" << mask;
    EXPECT_TRUE(std::equal(ref.begin(), ref.end(), out.begin()))
        << "mask=" << mask;
  }
}

TEST(SimdScan, GatherCompareCompressPipelineMatchesScalarFilter) {
  // The exact composition the batched join kernel runs per chunk:
  // gather two columns over a row batch, mask-compare, compress — the
  // survivors must equal a row-at-a-time reference filter.
  std::mt19937 rng(0x90B157);
  std::vector<uint32_t> col_a(512), col_b(512);
  for (std::size_t r = 0; r < col_a.size(); ++r) {
    col_a[r] = rng() % 8;
    col_b[r] = rng() % 8;
  }
  for (uint32_t n = 0; n <= 2 * simd::kJoinBatch + 3; ++n) {
    std::vector<uint32_t> rows(n);
    for (auto& r : rows) r = rng() % col_a.size();
    std::vector<uint32_t> ref;
    for (uint32_t r : rows) {
      if (col_a[r] == col_b[r]) ref.push_back(r);
    }
    // Chunked like the engine: kJoinBatch rows per gather/compare step.
    std::vector<uint32_t> got;
    std::vector<uint32_t> ga(simd::kJoinBatch), gb(simd::kJoinBatch);
    std::vector<uint32_t> surv(simd::kJoinBatch);
    for (uint32_t i = 0; i < n; i += simd::kJoinBatch) {
      const uint32_t chunk = std::min(simd::kJoinBatch, n - i);
      simd::GatherU32(col_a.data(), rows.data() + i, chunk,
                      ScanKernel::kSimd, ga.data());
      simd::GatherU32(col_b.data(), rows.data() + i, chunk,
                      ScanKernel::kSimd, gb.data());
      const uint32_t mask =
          simd::MaskEqU32(ga.data(), gb.data(), chunk, ScanKernel::kSimd);
      const uint32_t count =
          simd::CompressRowIds(rows.data() + i, mask, surv.data());
      got.insert(got.end(), surv.begin(), surv.begin() + count);
    }
    EXPECT_EQ(ref, got) << "n=" << n;
  }
}

TEST(SimdScan, RowIdsAreAscending) {
  // Both downstream consumers (EntryLists, dense detection) rely on
  // kernel outputs preserving row order; spot-check a mixed pattern.
  std::vector<uint8_t> live = {1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0,
                               1, 0, 0, 1, 1, 0, 1, 0, 1, 1, 0, 1};
  std::vector<uint32_t> rows;
  simd::CollectLiveRows(live.data(), static_cast<uint32_t>(live.size()),
                        ScanKernel::kSimd, &rows);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LT(rows[i - 1], rows[i]);
  }
}

}  // namespace
}  // namespace datalogo
