// Unit tests for the shared Tarjan SCC utility (src/core/scc.h): exact
// component structure on handcrafted graphs, the reverse-topological
// numbering contract both the stratifier and the reliance scheduler rely
// on, agreement with a brute-force mutual-reachability oracle on random
// graphs, and iterative-traversal depth safety on a pathological chain.
#include "src/core/scc.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

namespace datalogo {
namespace {

std::vector<int> RunScc(const std::vector<std::vector<int>>& adj,
                        int* num_comps = nullptr) {
  Tarjan tarjan(adj);
  tarjan.Run();
  if (num_comps != nullptr) *num_comps = tarjan.num_components();
  return tarjan.components();
}

TEST(Scc, EmptyAndSingletonGraphs) {
  int nc = -1;
  EXPECT_TRUE(RunScc({}, &nc).empty());
  EXPECT_EQ(nc, 0);

  std::vector<int> comp = RunScc({{}}, &nc);
  EXPECT_EQ(nc, 1);
  EXPECT_EQ(comp[0], 0);

  // A self-loop is still a single singleton component.
  comp = RunScc({{0}}, &nc);
  EXPECT_EQ(nc, 1);
  EXPECT_EQ(comp[0], 0);
}

TEST(Scc, ChainIsReverseTopologicallyNumbered) {
  // 0 → 1 → 2 → 3: four components; every edge u → v must satisfy
  // comp(v) < comp(u), so decreasing component id walks sources first.
  std::vector<std::vector<int>> adj = {{1}, {2}, {3}, {}};
  int nc = -1;
  std::vector<int> comp = RunScc(adj, &nc);
  EXPECT_EQ(nc, 4);
  EXPECT_LT(comp[1], comp[0]);
  EXPECT_LT(comp[2], comp[1]);
  EXPECT_LT(comp[3], comp[2]);
}

TEST(Scc, CycleCollapsesToOneComponent) {
  std::vector<std::vector<int>> adj = {{1}, {2}, {0}};
  int nc = -1;
  std::vector<int> comp = RunScc(adj, &nc);
  EXPECT_EQ(nc, 1);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
}

TEST(Scc, TwoCyclesBridgedByAnEdge) {
  // {0,1} → {2,3}: two components, the downstream one numbered lower.
  std::vector<std::vector<int>> adj = {{1}, {0, 2}, {3}, {2}};
  int nc = -1;
  std::vector<int> comp = RunScc(adj, &nc);
  EXPECT_EQ(nc, 2);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_LT(comp[2], comp[0]);
}

TEST(Scc, DiamondCondensation) {
  // 0 → {1, 2} → 3 with 1, 2 incomparable: 4 components; both middle
  // components sit strictly between the sink and the source.
  std::vector<std::vector<int>> adj = {{1, 2}, {3}, {3}, {}};
  int nc = -1;
  std::vector<int> comp = RunScc(adj, &nc);
  EXPECT_EQ(nc, 4);
  EXPECT_LT(comp[3], comp[1]);
  EXPECT_LT(comp[3], comp[2]);
  EXPECT_LT(comp[1], comp[0]);
  EXPECT_LT(comp[2], comp[0]);
}

TEST(Scc, MatchesMutualReachabilityOracleOnRandomGraphs) {
  std::mt19937_64 rng(0x5CC0u);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 2 + static_cast<int>(rng() % 12);
    std::vector<std::vector<int>> adj(n);
    // Boolean transitive closure with self-reachability for the oracle.
    std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
    for (int v = 0; v < n; ++v) {
      const int degree = static_cast<int>(rng() % (n + 1));
      for (int e = 0; e < degree; ++e) {
        int w = static_cast<int>(rng() % n);
        adj[v].push_back(w);
        reach[v][w] = true;
      }
    }
    for (int k = 0; k < n; ++k) {
      for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
          if (reach[i][k] && reach[k][j]) reach[i][j] = true;
        }
      }
    }
    int nc = -1;
    std::vector<int> comp = RunScc(adj, &nc);
    for (int u = 0; u < n; ++u) {
      for (int v = 0; v < n; ++v) {
        if (u == v) continue;
        const bool mutual = reach[u][v] && reach[v][u];
        EXPECT_EQ(comp[u] == comp[v], mutual)
            << "trial " << trial << " u=" << u << " v=" << v;
      }
    }
    // Numbering contract: cross-component edges point at lower ids.
    for (int u = 0; u < n; ++u) {
      for (int w : adj[u]) {
        if (comp[u] != comp[w]) {
          EXPECT_LT(comp[w], comp[u]) << "trial " << trial;
        }
      }
    }
    EXPECT_EQ(nc, 1 + *std::max_element(comp.begin(), comp.end()));
  }
}

TEST(Scc, DeepChainDoesNotOverflowTheStack) {
  // The iterative traversal must survive a DFS path as long as the
  // input; a recursive Visit would blow the call stack here.
  const int n = 200000;
  std::vector<std::vector<int>> adj(n);
  for (int v = 0; v + 1 < n; ++v) adj[v].push_back(v + 1);
  int nc = -1;
  std::vector<int> comp = RunScc(adj, &nc);
  EXPECT_EQ(nc, n);
  EXPECT_EQ(comp[n - 1], 0);
  EXPECT_EQ(comp[0], n - 1);
}

}  // namespace
}  // namespace datalogo
