// Domain interning.
#include <gtest/gtest.h>

#include "src/relation/domain.h"

namespace datalogo {
namespace {

TEST(Domain, SymbolInterningIsIdempotent) {
  Domain dom;
  ConstId a = dom.InternSymbol("alpha");
  ConstId b = dom.InternSymbol("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(dom.InternSymbol("alpha"), a);
  EXPECT_EQ(dom.size(), 2u);
  EXPECT_EQ(dom.ToString(a), "alpha");
  EXPECT_FALSE(dom.IsInt(a));
  EXPECT_EQ(dom.AsInt(a), std::nullopt);
}

TEST(Domain, IntInterning) {
  Domain dom;
  ConstId x = dom.InternInt(42);
  EXPECT_EQ(dom.InternInt(42), x);
  EXPECT_NE(dom.InternInt(-7), x);
  EXPECT_TRUE(dom.IsInt(x));
  EXPECT_EQ(*dom.AsInt(x), 42);
  EXPECT_EQ(dom.ToString(x), "42");
}

TEST(Domain, SymbolsAndIntsDoNotCollide) {
  Domain dom;
  ConstId s = dom.InternSymbol("42");  // the SYMBOL "42"
  ConstId i = dom.InternInt(42);
  EXPECT_NE(s, i);
}

TEST(Domain, FindSymbolDoesNotIntern) {
  Domain dom;
  EXPECT_EQ(dom.FindSymbol("missing"), std::nullopt);
  EXPECT_EQ(dom.size(), 0u);
  dom.InternSymbol("here");
  EXPECT_TRUE(dom.FindSymbol("here").has_value());
}

TEST(Domain, AllIdsEnumeratesEverything) {
  Domain dom;
  dom.InternSymbol("a");
  dom.InternInt(1);
  dom.InternSymbol("b");
  auto ids = dom.AllIds();
  EXPECT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[0], 0u);
  EXPECT_EQ(ids[2], 2u);
}

}  // namespace
}  // namespace datalogo
