// LinearLFP (Algorithm 2, Theorem 5.22): agrees with naive iteration on
// linear systems over p-stable POPS, including the non-semiring lifted
// reals where explicit term lists matter.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "src/datalogo.h"

namespace datalogo {
namespace {

TEST(LinearLfp, SingleVariableClosedForm) {
  // x = a·x ⊕ b over Trop+: solution a^(0)·b = b (0-stable).
  LinearFunction<TropS> f;
  f.AddTerm(0, 2.0);
  f.AddConstant(7.0);
  auto x = LinearLFP<TropS>({f}, /*p=*/0);
  ASSERT_EQ(x.size(), 1u);
  EXPECT_EQ(x[0], 7.0);
}

TEST(LinearLfp, SingleVariableOverTropP) {
  // Over Trop+_1: x = 5⊗x ⊕ 7 accumulates {7, 12}.
  using T = TropPS<1>;
  LinearFunction<T> f;
  f.AddTerm(0, T::FromScalar(5.0));
  f.AddConstant(T::FromScalar(7.0));
  auto x = LinearLFP<T>({f}, /*p=*/1);
  EXPECT_TRUE(T::Eq(x[0], T::Value{7.0, 12.0}));
}

TEST(LinearLfp, MatchesNaiveIterationOnRandomTropSystems) {
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> w(0.5, 9.0);
  for (int n : {1, 2, 3, 5, 8}) {
    // Build the same random linear system in both representations.
    std::vector<LinearFunction<TropS>> fs(n);
    PolySystem<TropS> sys(n);
    for (int i = 0; i < n; ++i) {
      double c = w(rng);
      fs[i].AddConstant(c);
      sys.poly(i).Add(Monomial<TropS>{c, {}, {}});
      for (int j = 0; j < n; ++j) {
        if ((rng() % 3) == 0) {
          double a = w(rng);
          fs[i].AddTerm(j, a);
          sys.poly(i).Add(Monomial<TropS>{a, {{j, 1}}, {}});
        }
      }
    }
    auto direct = LinearLFP<TropS>(fs, /*p=*/0);
    auto iter = sys.NaiveIterate(1 << 16);
    ASSERT_TRUE(iter.converged) << n;
    for (int i = 0; i < n; ++i) {
      if (iter.values[i] == TropS::Inf()) {
        EXPECT_EQ(direct[i], iter.values[i]) << "n=" << n << " i=" << i;
      } else {
        // Elimination reassociates double sums; compare up to ulps.
        EXPECT_NEAR(direct[i], iter.values[i], 1e-9)
            << "n=" << n << " i=" << i;
      }
    }
  }
}

TEST(LinearLfp, MatchesNaiveIterationOverTropP) {
  using T = TropPS<2>;
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> w(1.0, 6.0);
  for (int n : {1, 2, 3, 4}) {
    std::vector<LinearFunction<T>> fs(n);
    PolySystem<T> sys(n);
    for (int i = 0; i < n; ++i) {
      T::Value c = T::FromScalar(w(rng));
      fs[i].AddConstant(c);
      sys.poly(i).Add(Monomial<T>{c, {}, {}});
      for (int j = 0; j < n; ++j) {
        if ((i + 2 * j) % 3 != 0) continue;
        T::Value a = T::FromScalar(w(rng));
        fs[i].AddTerm(j, a);
        sys.poly(i).Add(Monomial<T>{a, {{j, 1}}, {}});
      }
    }
    auto direct = LinearLFP<T>(fs, /*p=*/2);
    auto iter = sys.NaiveIterate(1 << 16);
    ASSERT_TRUE(iter.converged);
    auto near_eq = [](const T::Value& a, const T::Value& b) {
      for (int k = 0; k < T::kBagSize; ++k) {
        if (a[k] == T::Inf() || b[k] == T::Inf()) {
          if (a[k] != b[k]) return false;
        } else if (std::abs(a[k] - b[k]) > 1e-9) {
          return false;
        }
      }
      return true;
    };
    for (int i = 0; i < n; ++i) {
      EXPECT_TRUE(near_eq(direct[i], iter.values[i]))
          << "n=" << n << " i=" << i << " " << T::ToString(direct[i])
          << " vs " << T::ToString(iter.values[i]);
    }
  }
}

TEST(LinearLfp, LiftedRealsExplicitTermLists) {
  // Over R⊥ (p = 0: the core semiring is trivial), explicit monomials are
  // essential. x0 = 5 (no x-term!), x1 = x0 + 2.
  using L = Lifted<RealS>;
  LinearFunction<L> f0, f1;
  f0.AddConstant(L::Lift(5.0));
  f1.AddTerm(0, L::One());
  f1.AddConstant(L::Lift(2.0));
  auto x = LinearLFP<L>({f0, f1}, /*p=*/0);
  EXPECT_TRUE(L::Eq(x[0], L::Lift(5.0)));
  EXPECT_TRUE(L::Eq(x[1], L::Lift(7.0)));
}

TEST(LinearLfp, LiftedRealsRecursiveVariableStaysBottom) {
  // x0 = x0 + 1 over R⊥: the least fixpoint is ⊥ (Example 4.2 pattern);
  // a dependent x1 = x0 + 3 must also be ⊥ by strictness.
  using L = Lifted<RealS>;
  LinearFunction<L> f0, f1;
  f0.AddTerm(0, L::One());
  f0.AddConstant(L::Lift(1.0));
  f1.AddTerm(0, L::One());
  f1.AddConstant(L::Lift(3.0));
  auto x = LinearLFP<L>({f0, f1}, /*p=*/0);
  EXPECT_TRUE(L::Eq(x[0], L::Bottom()));
  EXPECT_TRUE(L::Eq(x[1], L::Bottom()));
}

TEST(LinearLfp, BillOfMaterialGroundedSystem) {
  // The Example 4.2 grounded program solved directly by LinearLFP:
  // T(a) = C(a)+T(b)+T(c); T(b) = C(b)+T(a)+T(c); T(c) = C(c)+T(d);
  // T(d) = C(d).
  using L = Lifted<RealS>;
  auto one = L::One();
  LinearFunction<L> fa, fb, fc, fd;
  fa.AddConstant(L::Lift(1.0));
  fa.AddTerm(1, one);
  fa.AddTerm(2, one);
  fb.AddConstant(L::Lift(1.0));
  fb.AddTerm(0, one);
  fb.AddTerm(2, one);
  fc.AddConstant(L::Lift(1.0));
  fc.AddTerm(3, one);
  fd.AddConstant(L::Lift(10.0));
  auto x = LinearLFP<L>({fa, fb, fc, fd}, /*p=*/0);
  EXPECT_TRUE(L::Eq(x[0], L::Bottom()));
  EXPECT_TRUE(L::Eq(x[1], L::Bottom()));
  EXPECT_TRUE(L::Eq(x[2], L::Lift(11.0)));
  EXPECT_TRUE(L::Eq(x[3], L::Lift(10.0)));
}

TEST(LinearLfp, NormalizeMergesDuplicateTerms) {
  // a1·x ⊕ a2·x = (a1 ⊕ a2)·x: 3·x ⊕ 5·x over Trop+ = 3·x.
  LinearFunction<TropS> f;
  f.AddTerm(0, 3.0);
  f.AddTerm(0, 5.0);
  f.Normalize();
  ASSERT_EQ(f.terms.size(), 1u);
  EXPECT_EQ(f.terms[0].second, 3.0);
}

}  // namespace
}  // namespace datalogo
