// Newton's method over idempotent semirings (intro / related work): it
// reaches the same least fixpoint as Kleene iteration in no more — and on
// deep chains dramatically fewer — iterations.
#include <gtest/gtest.h>

#include <random>

#include "src/datalogo.h"

namespace datalogo {
namespace {

TEST(Newton, DerivativeOfMonomial) {
  // ∂(c·x0²·x1)/∂x0 = c·x0·x1 (idempotence collapses the factor 2).
  Monomial<TropS> m{3.0, {{0, 2}, {1, 1}}, {}};
  auto d = DeriveMonomial<TropS>(m, 0);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].coeff, 3.0);
  EXPECT_EQ(d[0].powers,
            (std::vector<std::pair<int, int>>{{0, 1}, {1, 1}}));
  // ∂/∂x2 = nothing.
  EXPECT_TRUE(DeriveMonomial<TropS>(m, 2).empty());
}

TEST(Newton, SolvesBooleanReachability) {
  // x_i = OR over edges; Newton must find exactly the reachable set.
  Graph g = RandomGraph(10, 20, /*seed=*/3);
  PolySystem<BoolS> sys(10);
  sys.poly(0).Add(Monomial<BoolS>{true, {}, {}});  // source fact
  for (const Edge& e : g.edges()) {
    sys.poly(e.dst).Add(Monomial<BoolS>{true, {{e.src, 1}}, {}});
  }
  auto newton = NewtonSolve<BoolS>(sys, /*p=*/0, 50);
  ASSERT_TRUE(newton.converged);
  auto kleene = sys.NaiveIterate(1000);
  ASSERT_TRUE(kleene.converged);
  EXPECT_EQ(newton.values, kleene.values);
}

TEST(Newton, SolvesTropicalShortestPaths) {
  Graph g = RandomGraph(12, 30, /*seed=*/9);
  PolySystem<TropS> sys(12);
  sys.poly(0).Add(Monomial<TropS>{0.0, {}, {}});
  for (const Edge& e : g.edges()) {
    sys.poly(e.dst).Add(Monomial<TropS>{e.weight, {{e.src, 1}}, {}});
  }
  auto newton = NewtonSolve<TropS>(sys, 0, 50);
  ASSERT_TRUE(newton.converged);
  std::vector<double> dist = g.ShortestPathsFrom(0);
  for (int v = 0; v < 12; ++v) {
    EXPECT_EQ(newton.values[v], dist[v]) << v;
  }
}

TEST(Newton, QuadraticSystemCfgReachability) {
  // A CFG-like quadratic system over B: x0 = a ∨ x1·x1, x1 = x0.
  PolySystem<BoolS> sys(2);
  sys.poly(0).Add(Monomial<BoolS>{true, {}, {}});
  sys.poly(0).Add(Monomial<BoolS>{true, {{1, 2}}, {}});
  sys.poly(1).Add(Monomial<BoolS>{true, {{0, 1}}, {}});
  auto newton = NewtonSolve<BoolS>(sys, 0, 10);
  ASSERT_TRUE(newton.converged);
  EXPECT_TRUE(newton.values[0]);
  EXPECT_TRUE(newton.values[1]);
}

TEST(Newton, FewerIterationsThanKleeneOnDeepChains) {
  // A length-n linear chain: Kleene needs Θ(n) steps; Newton's linear
  // solve collapses it in O(1) iterations.
  const int n = 40;
  PolySystem<TropS> sys(n);
  sys.poly(0).Add(Monomial<TropS>{0.0, {}, {}});
  for (int i = 1; i < n; ++i) {
    sys.poly(i).Add(Monomial<TropS>{1.0, {{i - 1, 1}}, {}});
  }
  auto kleene = sys.NaiveIterate(1000);
  auto newton = NewtonSolve<TropS>(sys, 0, 50);
  ASSERT_TRUE(kleene.converged && newton.converged);
  EXPECT_EQ(newton.values, kleene.values);
  EXPECT_EQ(kleene.steps, n);
  EXPECT_LE(newton.iterations, 2);
}

TEST(Newton, MatchesKleeneOnRandomQuadraticSystems) {
  std::mt19937_64 rng(17);
  std::uniform_real_distribution<double> w(0.5, 4.0);
  for (int n : {2, 4, 6}) {
    PolySystem<TropS> sys(n);
    for (int i = 0; i < n; ++i) {
      sys.poly(i).Add(Monomial<TropS>{w(rng), {}, {}});
      int j = static_cast<int>(rng() % n), k = static_cast<int>(rng() % n);
      Monomial<TropS> quad{w(rng), {{j, 1}, {k, 1}}, {}};
      quad.Normalize();
      sys.poly(i).Add(quad);
    }
    auto kleene = sys.NaiveIterate(10000);
    auto newton = NewtonSolve<TropS>(sys, 0, 100);
    ASSERT_TRUE(kleene.converged && newton.converged) << n;
    EXPECT_EQ(newton.values, kleene.values) << n;
    EXPECT_LE(newton.iterations, kleene.steps + 1) << n;
  }
}

}  // namespace
}  // namespace datalogo
