// Trop+_{≤η} (Example 2.10): set arithmetic under the η-window, the
// Eq. (16) identities, and order coherence.
#include <gtest/gtest.h>

#include <random>

#include "src/semiring/trop_eta.h"
#include "src/semiring/traits.h"

namespace datalogo {
namespace {

TEST(TropEta, NormalizeSortsDedupesAndCuts) {
  TropEtaS::ScopedEta eta(2.0);
  EXPECT_EQ(TropEtaS::Normalize({5, 3, 3, 4, 9}), (TropEtaS::Value{3, 4, 5}));
  EXPECT_EQ(TropEtaS::Normalize({7}), (TropEtaS::Value{7}));
}

TEST(TropEta, EtaZeroIsTrop) {
  TropEtaS::ScopedEta eta(0.0);
  EXPECT_EQ(TropEtaS::Plus({3}, {5}), (TropEtaS::Value{3}));
  EXPECT_EQ(TropEtaS::Times({3}, {5}), (TropEtaS::Value{8}));
}

TEST(TropEta, IdempotentAddition) {
  TropEtaS::ScopedEta eta(4.0);
  TropEtaS::Value a = {1, 3, 5};
  EXPECT_EQ(TropEtaS::Plus(a, a), a);
}

TEST(TropEta, RandomizedLawsWithinWindow) {
  TropEtaS::ScopedEta eta(5.0);
  std::mt19937_64 rng(4);
  // Dyadic weights keep double sums exact under re-association.
  auto w = [&rng](auto&) { return static_cast<double>(rng() % 40) / 4; };
  auto random_val = [&] {
    TropEtaS::Value v;
    int n = 1 + static_cast<int>(rng() % 4);
    for (int i = 0; i < n; ++i) v.push_back(w(rng));
    return TropEtaS::Normalize(std::move(v));
  };
  for (int t = 0; t < 200; ++t) {
    auto a = random_val(), b = random_val(), c = random_val();
    EXPECT_EQ(TropEtaS::Plus(a, b), TropEtaS::Plus(b, a));
    EXPECT_EQ(TropEtaS::Times(a, b), TropEtaS::Times(b, a));
    EXPECT_EQ(TropEtaS::Plus(TropEtaS::Plus(a, b), c),
              TropEtaS::Plus(a, TropEtaS::Plus(b, c)));
    EXPECT_EQ(TropEtaS::Times(TropEtaS::Times(a, b), c),
              TropEtaS::Times(a, TropEtaS::Times(b, c)));
    EXPECT_EQ(TropEtaS::Times(a, TropEtaS::Plus(b, c)),
              TropEtaS::Plus(TropEtaS::Times(a, b), TropEtaS::Times(a, c)));
    // Order coherence: a ⪯ a ⊕ b and the Leq predicate agrees with the
    // additive characterization.
    auto ab = TropEtaS::Plus(a, b);
    EXPECT_TRUE(TropEtaS::Leq(a, ab));
    EXPECT_EQ(TropEtaS::Plus(a, ab), ab);
  }
}

TEST(TropEta, Eq16OneFinalTruncation) {
  // Evaluate (a ⊗ b) ⊕ c two ways: with intermediate truncations (library
  // ops) and with a single min_{≤η} at the end over exact sets.
  TropEtaS::ScopedEta eta(3.0);
  std::mt19937_64 rng(8);
  auto w = [&rng](auto&) { return static_cast<double>(rng() % 24) / 4; };
  for (int t = 0; t < 100; ++t) {
    std::vector<double> a, b, c;
    for (int i = 0; i < 3; ++i) {
      a.push_back(w(rng));
      b.push_back(w(rng));
      c.push_back(w(rng));
    }
    auto lhs = TropEtaS::Plus(
        TropEtaS::Times(TropEtaS::Normalize(a), TropEtaS::Normalize(b)),
        TropEtaS::Normalize(c));
    std::vector<double> exact;
    for (double x : a) {
      for (double y : b) exact.push_back(x + y);
    }
    exact.insert(exact.end(), c.begin(), c.end());
    EXPECT_EQ(lhs, TropEtaS::Normalize(exact));
  }
}

TEST(TropEta, LeqMatchesAdditiveWitness) {
  TropEtaS::ScopedEta eta(6.5);
  TropEtaS::Value a = {3, 7}, b = {3, 5, 7, 9};
  EXPECT_TRUE(TropEtaS::Leq(a, b));
  EXPECT_FALSE(TropEtaS::Leq(b, a));
}

}  // namespace
}  // namespace datalogo
