// TSV relation I/O.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "src/datalogo.h"
#include "src/relation/io.h"
#include "tests/ci_knob.h"

namespace datalogo {
namespace {

TEST(Io, LoadTropRelation) {
  Domain dom;
  Relation<TropS> rel(2);
  Status s = LoadTsv<TropS>(
      "# edges\n"
      "a b 1.5\n"
      "b c 2\n"
      "\n"
      "a c 9.25\n",
      &dom, &rel, ParseDoubleValue);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(rel.support_size(), 3u);
  EXPECT_EQ(rel.Get({*dom.FindSymbol("a"), *dom.FindSymbol("b")}), 1.5);
}

TEST(Io, RepeatedTuplesAccumulate) {
  Domain dom;
  Relation<TropS> rel(1);
  ASSERT_TRUE(LoadTsv<TropS>("x 5\nx 3\nx 7\n", &dom, &rel,
                             ParseDoubleValue)
                  .ok());
  EXPECT_EQ(rel.Get({*dom.FindSymbol("x")}), 3.0);  // min
}

TEST(Io, IntKeysInternAsIntegers) {
  Domain dom;
  Relation<NatS> rel(2);
  ASSERT_TRUE(
      LoadTsv<NatS>("1 2 10\n-3 2 4\n", &dom, &rel, ParseUintValue).ok());
  EXPECT_EQ(rel.Get({dom.InternInt(1), dom.InternInt(2)}), 10u);
  EXPECT_EQ(rel.Get({dom.InternInt(-3), dom.InternInt(2)}), 4u);
}

TEST(Io, ColumnCountErrors) {
  Domain dom;
  Relation<TropS> rel(2);
  Status s = LoadTsv<TropS>("a b\n", &dom, &rel, ParseDoubleValue);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Code::kInvalidArgument);
}

TEST(Io, BadValueErrors) {
  Domain dom;
  Relation<TropS> rel(1);
  EXPECT_FALSE(
      LoadTsv<TropS>("a not_a_number\n", &dom, &rel, ParseDoubleValue).ok());
}

TEST(Io, BoolRelationAllColumnsAreKeys) {
  Domain dom;
  Relation<BoolS> rel(2);
  ASSERT_TRUE(LoadTsvBool("a b\nb c\n", &dom, &rel).ok());
  EXPECT_EQ(rel.support_size(), 2u);
  EXPECT_TRUE(rel.Get({*dom.FindSymbol("b"), *dom.FindSymbol("c")}));
}

TEST(Io, DumpRoundTrips) {
  Domain dom;
  Relation<TropS> rel(2);
  rel.Set({dom.InternSymbol("b"), dom.InternSymbol("a")}, 2.0);
  rel.Set({dom.InternSymbol("a"), dom.InternSymbol("b")}, 1.0);
  std::string tsv = DumpTsv(rel, dom);
  Domain dom2;
  Relation<TropS> rel2(2);
  ASSERT_TRUE(LoadTsv<TropS>(tsv, &dom2, &rel2, ParseDoubleValue).ok());
  EXPECT_EQ(rel2.support_size(), 2u);
  EXPECT_EQ(rel2.Get({*dom2.FindSymbol("a"), *dom2.FindSymbol("b")}), 1.0);
}

TEST(Io, EndToEndProgramFromTsv) {
  // Load edges from TSV, run APSP, dump the result.
  Domain dom;
  auto prog = ParseProgram(
                  "edb E/2. idb T/2. T(X,Y) :- E(X,Y) ; T(X,Z) * E(Z,Y).",
                  &dom)
                  .value();
  EdbInstance<TropS> edb(prog);
  ASSERT_TRUE(LoadTsv<TropS>("a b 1\nb c 2\n", &dom,
                             &edb.pops(prog.FindPredicate("E")),
                             ParseDoubleValue)
                  .ok());
  Engine<TropS> engine(prog, edb);
  auto r = engine.SemiNaive(100);
  ASSERT_TRUE(r.converged);
  std::string out = DumpTsv(r.idb.idb(prog.FindPredicate("T")), dom);
  EXPECT_NE(out.find("a\tc\t3"), std::string::npos) << out;
}

TEST(Io, OutOfRangeIntKeyIsLoadErrorNotException) {
  // These tokens pass the integer-shape check but overflow int64: the
  // loader must return InvalidArgument (with the line number) instead of
  // letting std::out_of_range escape.
  for (const char* tok :
       {"-99999999999999999999999", "99999999999999999999999",
        "9223372036854775808",   // INT64_MAX + 1
        "-9223372036854775809",  // INT64_MIN - 1
        "18446744073709551616"}) {
    Domain dom;
    Relation<TropS> rel(1);
    Status s = LoadTsv<TropS>(std::string("a 1\n") + tok + " 2\n", &dom,
                              &rel, ParseDoubleValue);
    ASSERT_FALSE(s.ok()) << tok;
    EXPECT_EQ(s.code(), Code::kInvalidArgument) << tok;
    EXPECT_NE(s.ToString().find("line 2"), std::string::npos)
        << s.ToString();

    Relation<BoolS> brel(1);
    Status bs = LoadTsvBool(std::string(tok) + "\n", &dom, &brel);
    ASSERT_FALSE(bs.ok()) << tok;
    EXPECT_EQ(bs.code(), Code::kInvalidArgument) << tok;
    EXPECT_NE(bs.ToString().find("line 1"), std::string::npos)
        << bs.ToString();
  }
  // Exactly-at-the-limit tokens still load.
  Domain dom;
  Relation<TropS> rel(1);
  EXPECT_TRUE(LoadTsv<TropS>(
                  "9223372036854775807 1\n-9223372036854775808 2\n", &dom,
                  &rel, ParseDoubleValue)
                  .ok());
  EXPECT_EQ(rel.support_size(), 2u);
}

TEST(Io, OutOfRangeUintValueIsParseError) {
  Domain dom;
  Relation<NatS> rel(1);
  Status s = LoadTsv<NatS>("a 99999999999999999999999\n", &dom, &rel,
                           ParseUintValue);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Code::kInvalidArgument);
}

TEST(Io, NonDumpableSymbolsRejectedAtDump) {
  // A symbol containing whitespace would re-split into extra columns on
  // reload; empty / '#'-leading / integer-spelling symbols would vanish
  // or re-intern as something else. All must fail at dump time.
  for (const char* bad : {"has space", "has\ttab", "has\nnewline", "",
                          "#comment", "42", "-7"}) {
    Domain dom;
    Relation<TropS> rel(1);
    rel.Set({dom.InternSymbol(bad)}, 1.0);
    std::string out;
    Status s = DumpTsvChecked(rel, dom, &out);
    ASSERT_FALSE(s.ok()) << "'" << bad << "'";
    EXPECT_EQ(s.code(), Code::kInvalidArgument);
  }
}

TEST(Io, CrlfLoadsLikeLf) {
  Domain dom;
  Relation<TropS> rel(2);
  ASSERT_TRUE(LoadTsv<TropS>("a b 1\r\nb c 2\r\n", &dom, &rel,
                             ParseDoubleValue)
                  .ok());
  EXPECT_EQ(rel.support_size(), 2u);
  EXPECT_EQ(rel.Get({*dom.FindSymbol("a"), *dom.FindSymbol("b")}), 1.0);
  Relation<BoolS> brel(1);
  ASSERT_TRUE(LoadTsvBool("x\r\ny\r\n", &dom, &brel).ok());
  EXPECT_TRUE(brel.Get({*dom.FindSymbol("x")}));
}

TEST(Io, RandomizedDumpLoadRoundTrip) {
  // Property: any relation over dumpable symbols and integers survives
  // Dump → Load into a fresh domain with identical support and values.
  std::mt19937 rng(7);
  const int iters = CiIterations(200, 40);
  for (int it = 0; it < iters; ++it) {
    Domain dom;
    const int arity = 1 + static_cast<int>(rng() % 3);
    Relation<NatS> rel(arity);
    const int rows = static_cast<int>(rng() % 12);
    for (int r = 0; r < rows; ++r) {
      Tuple t;
      for (int p = 0; p < arity; ++p) {
        if (rng() % 2) {
          t.push_back(dom.InternInt(static_cast<int64_t>(rng() % 1000) - 500));
        } else {
          t.push_back(dom.InternSymbol("s" + std::to_string(rng() % 50)));
        }
      }
      rel.Merge(t, uint64_t{1} + rng() % 100);
    }
    std::string tsv;
    ASSERT_TRUE(DumpTsvChecked(rel, dom, &tsv).ok());
    Domain dom2;
    Relation<NatS> rel2(arity);
    ASSERT_TRUE(LoadTsv<NatS>(tsv, &dom2, &rel2, ParseUintValue).ok())
        << tsv;
    ASSERT_EQ(rel2.support_size(), rel.support_size()) << tsv;
    // Values survive: re-dump from the fresh domain must match byte-wise
    // (rows are emitted in lexicographic key order on both sides... of
    // the SAME interning, so compare through a second round-trip).
    std::string tsv2;
    ASSERT_TRUE(DumpTsvChecked(rel2, dom2, &tsv2).ok());
    Domain dom3;
    Relation<NatS> rel3(arity);
    ASSERT_TRUE(LoadTsv<NatS>(tsv2, &dom3, &rel3, ParseUintValue).ok());
    ASSERT_EQ(rel3.support_size(), rel.support_size());
  }
}

TEST(Io, LoaderNeverThrowsOnArbitraryInput) {
  // Fuzz-ish sweep: random token soup (integer-shaped, overflowing,
  // comment-like, junk) must always produce Ok or InvalidArgument —
  // never an exception, never a crash.
  std::mt19937 rng(13);
  const char* pieces[] = {"a",
                          "42",
                          "-7",
                          "99999999999999999999999",
                          "-99999999999999999999999",
                          "9223372036854775808",
                          "#x",
                          "1.5",
                          "nan",
                          "s#y",
                          "--3",
                          "0000000000000000000000009"};
  const int iters = CiIterations(500, 100);
  for (int it = 0; it < iters; ++it) {
    std::string text;
    const int lines = static_cast<int>(rng() % 6);
    for (int l = 0; l < lines; ++l) {
      const int toks = static_cast<int>(rng() % 5);
      for (int t = 0; t < toks; ++t) {
        if (t) text += (rng() % 4 == 0) ? '\t' : ' ';
        text += pieces[rng() % (sizeof(pieces) / sizeof(pieces[0]))];
      }
      text += (rng() % 4 == 0) ? "\r\n" : "\n";
    }
    Domain dom;
    Relation<TropS> rel(2);
    Status s = LoadTsv<TropS>(text, &dom, &rel, ParseDoubleValue);
    EXPECT_TRUE(s.ok() || s.code() == Code::kInvalidArgument) << text;
    Relation<BoolS> brel(2);
    Status bs = LoadTsvBool(text, &dom, &brel);
    EXPECT_TRUE(bs.ok() || bs.code() == Code::kInvalidArgument) << text;
  }
}

}  // namespace
}  // namespace datalogo
