// TSV relation I/O.
#include <gtest/gtest.h>

#include "src/datalogo.h"
#include "src/relation/io.h"

namespace datalogo {
namespace {

TEST(Io, LoadTropRelation) {
  Domain dom;
  Relation<TropS> rel(2);
  Status s = LoadTsv<TropS>(
      "# edges\n"
      "a b 1.5\n"
      "b c 2\n"
      "\n"
      "a c 9.25\n",
      &dom, &rel, ParseDoubleValue);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(rel.support_size(), 3u);
  EXPECT_EQ(rel.Get({*dom.FindSymbol("a"), *dom.FindSymbol("b")}), 1.5);
}

TEST(Io, RepeatedTuplesAccumulate) {
  Domain dom;
  Relation<TropS> rel(1);
  ASSERT_TRUE(LoadTsv<TropS>("x 5\nx 3\nx 7\n", &dom, &rel,
                             ParseDoubleValue)
                  .ok());
  EXPECT_EQ(rel.Get({*dom.FindSymbol("x")}), 3.0);  // min
}

TEST(Io, IntKeysInternAsIntegers) {
  Domain dom;
  Relation<NatS> rel(2);
  ASSERT_TRUE(
      LoadTsv<NatS>("1 2 10\n-3 2 4\n", &dom, &rel, ParseUintValue).ok());
  EXPECT_EQ(rel.Get({dom.InternInt(1), dom.InternInt(2)}), 10u);
  EXPECT_EQ(rel.Get({dom.InternInt(-3), dom.InternInt(2)}), 4u);
}

TEST(Io, ColumnCountErrors) {
  Domain dom;
  Relation<TropS> rel(2);
  Status s = LoadTsv<TropS>("a b\n", &dom, &rel, ParseDoubleValue);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Code::kInvalidArgument);
}

TEST(Io, BadValueErrors) {
  Domain dom;
  Relation<TropS> rel(1);
  EXPECT_FALSE(
      LoadTsv<TropS>("a not_a_number\n", &dom, &rel, ParseDoubleValue).ok());
}

TEST(Io, BoolRelationAllColumnsAreKeys) {
  Domain dom;
  Relation<BoolS> rel(2);
  ASSERT_TRUE(LoadTsvBool("a b\nb c\n", &dom, &rel).ok());
  EXPECT_EQ(rel.support_size(), 2u);
  EXPECT_TRUE(rel.Get({*dom.FindSymbol("b"), *dom.FindSymbol("c")}));
}

TEST(Io, DumpRoundTrips) {
  Domain dom;
  Relation<TropS> rel(2);
  rel.Set({dom.InternSymbol("b"), dom.InternSymbol("a")}, 2.0);
  rel.Set({dom.InternSymbol("a"), dom.InternSymbol("b")}, 1.0);
  std::string tsv = DumpTsv(rel, dom);
  Domain dom2;
  Relation<TropS> rel2(2);
  ASSERT_TRUE(LoadTsv<TropS>(tsv, &dom2, &rel2, ParseDoubleValue).ok());
  EXPECT_EQ(rel2.support_size(), 2u);
  EXPECT_EQ(rel2.Get({*dom2.FindSymbol("a"), *dom2.FindSymbol("b")}), 1.0);
}

TEST(Io, EndToEndProgramFromTsv) {
  // Load edges from TSV, run APSP, dump the result.
  Domain dom;
  auto prog = ParseProgram(
                  "edb E/2. idb T/2. T(X,Y) :- E(X,Y) ; T(X,Z) * E(Z,Y).",
                  &dom)
                  .value();
  EdbInstance<TropS> edb(prog);
  ASSERT_TRUE(LoadTsv<TropS>("a b 1\nb c 2\n", &dom,
                             &edb.pops(prog.FindPredicate("E")),
                             ParseDoubleValue)
                  .ok());
  Engine<TropS> engine(prog, edb);
  auto r = engine.SemiNaive(100);
  ASSERT_TRUE(r.converged);
  std::string out = DumpTsv(r.idb.idb(prog.FindPredicate("T")), dom);
  EXPECT_NE(out.find("a\tc\t3"), std::string::npos) << out;
}

}  // namespace
}  // namespace datalogo
