// Lifted and completed POPS (Sec. 2.5.1), plus the Lemma 2.8 phenomenon:
// no POPS extension of R can restore absorption.
#include <gtest/gtest.h>

#include "src/semiring/completed.h"
#include "src/semiring/lifted.h"
#include "src/semiring/naturals.h"
#include "src/semiring/reals.h"
#include "src/semiring/core_semiring.h"

namespace datalogo {
namespace {

using LR = Lifted<RealS>;
using LN = Lifted<NatS>;

TEST(Lifted, BottomPropagatesThroughBothOps) {
  EXPECT_TRUE(LR::Eq(LR::Plus(LR::Bottom(), LR::Bottom()), LR::Bottom()));
  EXPECT_TRUE(LR::Eq(LR::Times(LR::Bottom(), LR::Bottom()), LR::Bottom()));
  EXPECT_TRUE(LR::Eq(LR::Plus(LR::Lift(3.0), LR::Bottom()), LR::Bottom()));
}

TEST(Lifted, AbsorptionFailsAsLemma28Predicts) {
  // 0 ⊗ ⊥ = ⊥ ≠ 0: the lifted reals are a POPS but not a semiring.
  EXPECT_FALSE(LR::Eq(LR::Times(LR::Zero(), LR::Bottom()), LR::Zero()));
  static_assert(!LR::kIsSemiring);
}

TEST(Lifted, FlatOrder) {
  EXPECT_TRUE(LR::Leq(LR::Bottom(), LR::Lift(1.0)));
  EXPECT_TRUE(LR::Leq(LR::Lift(1.0), LR::Lift(1.0)));
  EXPECT_FALSE(LR::Leq(LR::Lift(1.0), LR::Lift(2.0)));
  EXPECT_FALSE(LR::Leq(LR::Lift(1.0), LR::Bottom()));
}

TEST(Lifted, BaseArithmeticSurvivesLifting) {
  EXPECT_TRUE(LR::Eq(LR::Plus(LR::Lift(2.0), LR::Lift(3.0)), LR::Lift(5.0)));
  EXPECT_TRUE(LR::Eq(LR::Times(LR::Lift(2.0), LR::Lift(3.0)),
                     LR::Lift(6.0)));
  EXPECT_TRUE(LN::Eq(LN::Plus(LN::Lift(2), LN::Lift(3)), LN::Lift(5)));
}

TEST(Lifted, MonotonicityOfOpsInFlatOrder) {
  // ⊥ ⊑ x implies ⊥ ⊕ y ⊑ x ⊕ y (both sides ⊥ or equal).
  auto vals = {LR::Bottom(), LR::Lift(0.0), LR::Lift(2.0)};
  for (const auto& a : vals) {
    for (const auto& b : vals) {
      if (!LR::Leq(a, b)) continue;
      for (const auto& c : vals) {
        EXPECT_TRUE(LR::Leq(LR::Plus(a, c), LR::Plus(b, c)));
        EXPECT_TRUE(LR::Leq(LR::Times(a, c), LR::Times(b, c)));
      }
    }
  }
}

TEST(Completed, OrderSandwich) {
  using C = Completed<RealS>;
  EXPECT_TRUE(C::Leq(C::Bottom(), C::Lift(1.0)));
  EXPECT_TRUE(C::Leq(C::Lift(1.0), C::Top()));
  EXPECT_TRUE(C::Leq(C::Bottom(), C::Top()));
  EXPECT_FALSE(C::Leq(C::Lift(1.0), C::Lift(2.0)));
}

TEST(Completed, CoreSemiringIsTrivial) {
  using C = Completed<RealS>;
  using Core = CoreSemiring<C>;
  EXPECT_TRUE(C::Eq(Core::Inject(C::Lift(5.0)), C::Bottom()));
  EXPECT_TRUE(C::Eq(Core::Inject(C::Top()), C::Bottom()));
}

TEST(Completed, ArithmeticTables) {
  using C = Completed<NatS>;
  EXPECT_TRUE(C::Eq(C::Times(C::Lift(2), C::Lift(3)), C::Lift(6)));
  EXPECT_TRUE(C::Eq(C::Plus(C::Top(), C::Lift(3)), C::Top()));
  EXPECT_TRUE(C::Eq(C::Times(C::Top(), C::Top()), C::Top()));
  EXPECT_TRUE(C::Eq(C::Plus(C::Top(), C::Bottom()), C::Bottom()));
}

}  // namespace
}  // namespace datalogo
