// The small-buffer-optimized Tuple: inline/heap boundary behaviour and
// hash/equality/ordering agreement with the former std::vector<ConstId>
// representation.
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "src/relation/tuple.h"

namespace datalogo {
namespace {

Tuple FromVector(const std::vector<ConstId>& v) {
  return Tuple(v.begin(), v.end());
}

TEST(Tuple, EmptyTuple) {
  Tuple t;
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.begin(), t.end());
  EXPECT_EQ(t, Tuple{});
}

TEST(Tuple, InlineBoundaryArities) {
  // 0 and kInlineCapacity stay inline; kInlineCapacity + 1 and 16 spill.
  for (std::size_t n : {std::size_t{0}, Tuple::kInlineCapacity,
                        Tuple::kInlineCapacity + 1, std::size_t{16}}) {
    std::vector<ConstId> ref(n);
    for (std::size_t i = 0; i < n; ++i) ref[i] = static_cast<ConstId>(i * 7);
    Tuple t = FromVector(ref);
    ASSERT_EQ(t.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(t[i], ref[i]) << "n=" << n << " i=" << i;
    }
    EXPECT_TRUE(std::equal(t.begin(), t.end(), ref.begin(), ref.end()));
  }
}

TEST(Tuple, PushBackAcrossSpillBoundary) {
  Tuple t;
  std::vector<ConstId> ref;
  for (ConstId c = 0; c < 16; ++c) {
    t.push_back(c * 3 + 1);
    ref.push_back(c * 3 + 1);
    ASSERT_EQ(t.size(), ref.size());
    EXPECT_TRUE(std::equal(t.begin(), t.end(), ref.begin(), ref.end()));
  }
}

TEST(Tuple, SizeFillConstructorMatchesVector) {
  Tuple a(3, 9);
  EXPECT_EQ(a.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(a[i], 9u);
  Tuple b(7, 0);  // heap-backed
  EXPECT_EQ(b.size(), 7u);
  for (std::size_t i = 0; i < 7; ++i) EXPECT_EQ(b[i], 0u);
}

TEST(Tuple, CopyAndMoveBothStorageModes) {
  for (std::size_t n : {std::size_t{2}, std::size_t{12}}) {
    std::vector<ConstId> ref(n);
    for (std::size_t i = 0; i < n; ++i) ref[i] = static_cast<ConstId>(i + 1);
    Tuple orig = FromVector(ref);
    Tuple copy = orig;
    EXPECT_EQ(copy, orig);
    Tuple moved = std::move(orig);
    EXPECT_EQ(moved, copy);
    EXPECT_EQ(orig.size(), 0u);  // NOLINT: moved-from is empty by contract
    // Assignment into existing storage (the reusable-buffer path).
    Tuple target(n, 0);
    target = copy;
    EXPECT_EQ(target, copy);
  }
}

TEST(Tuple, EqualityMatchesVectorSemantics) {
  auto expect_agree = [](const std::vector<ConstId>& a,
                         const std::vector<ConstId>& b) {
    EXPECT_EQ(FromVector(a) == FromVector(b), a == b);
    EXPECT_EQ(FromVector(a) != FromVector(b), a != b);
  };
  expect_agree({}, {});
  expect_agree({1}, {1});
  expect_agree({1}, {2});
  expect_agree({1, 2}, {1, 2, 3});
  expect_agree({1, 2, 3, 4, 5}, {1, 2, 3, 4, 5});
  expect_agree({1, 2, 3, 4, 5}, {1, 2, 3, 4, 6});
}

TEST(Tuple, OrderingMatchesVectorLexicographic) {
  std::vector<std::vector<ConstId>> cases = {
      {},       {0},          {1},          {1, 2},          {1, 3},
      {2},      {1, 2, 3},    {1, 2, 3, 4}, {1, 2, 3, 4, 5}, {2, 1},
      {5, 0, 0, 0, 0, 1},     {5, 0, 0, 0, 0, 2},
  };
  for (const auto& a : cases) {
    for (const auto& b : cases) {
      EXPECT_EQ(FromVector(a) < FromVector(b), a < b)
          << "lexicographic disagreement";
      EXPECT_EQ(FromVector(a) <= FromVector(b), a <= b);
      EXPECT_EQ(FromVector(a) > FromVector(b), a > b);
      EXPECT_EQ(FromVector(a) >= FromVector(b), a >= b);
    }
  }
}

TEST(Tuple, HashMatchesHashRangeOverContents) {
  // TupleHash must agree with hashing the raw id sequence — the exact
  // function the vector-based TupleHash used — in both storage modes.
  for (std::size_t n : {std::size_t{0}, std::size_t{3}, std::size_t{4},
                        std::size_t{5}, std::size_t{16}}) {
    std::vector<ConstId> ref(n);
    for (std::size_t i = 0; i < n; ++i) ref[i] = static_cast<ConstId>(i * 11);
    Tuple t = FromVector(ref);
    EXPECT_EQ(TupleHash{}(t), HashRange(ref.begin(), ref.end())) << n;
  }
}

TEST(Tuple, EqualTuplesHashEqualAcrossStorageModes) {
  // A heap-backed tuple shrunk by clear()+push_back to inline-sized
  // contents must equal (and hash like) a genuinely inline tuple.
  Tuple heap(10, 0);
  heap.clear();
  heap.push_back(1);
  heap.push_back(2);
  Tuple inl{1, 2};
  EXPECT_EQ(heap, inl);
  EXPECT_EQ(TupleHash{}(heap), TupleHash{}(inl));
  EXPECT_FALSE(heap < inl);
  EXPECT_FALSE(inl < heap);
}

TEST(Tuple, WorksAsUnorderedSetKey) {
  std::unordered_set<Tuple, TupleHash> set;
  set.insert({1, 2});
  set.insert({1, 2});
  set.insert({2, 1});
  set.insert(Tuple(8, 3));
  EXPECT_EQ(set.size(), 3u);
  EXPECT_TRUE(set.count({1, 2}));
  EXPECT_TRUE(set.count(Tuple(8, 3)));
  EXPECT_FALSE(set.count({3, 3}));
}

TEST(Tuple, CopyOfClearedHeapTupleGrowsSafely) {
  // Regression: copying a spilled-then-cleared tuple must not produce a
  // zero-capacity heap block that push_back's doubling can never grow.
  Tuple spilled(10, 7);
  spilled.clear();
  Tuple copy = spilled;
  for (ConstId c = 0; c < 12; ++c) copy.push_back(c);
  ASSERT_EQ(copy.size(), 12u);
  for (ConstId c = 0; c < 12; ++c) EXPECT_EQ(copy[c], c);
}

TEST(Tuple, AppendAndReserve) {
  Tuple t;
  t.reserve(12);
  std::vector<ConstId> ref = {4, 5, 6, 7, 8, 9};
  t.push_back(3);
  t.append(ref.begin(), ref.end());
  EXPECT_EQ(t.size(), 7u);
  EXPECT_EQ(t[0], 3u);
  EXPECT_EQ(t[6], 9u);
}

}  // namespace
}  // namespace datalogo
