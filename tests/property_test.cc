// Parameterized property sweeps across seeds: the three evaluation paths
// (naive, semi-naive, grounded) agree; fixpoints are actual fixpoints;
// iterates form an ω-chain (Sec. 3).
#include <gtest/gtest.h>

#include "src/datalogo.h"

namespace datalogo {
namespace {

constexpr const char* kApsp = R"(
  edb E/2.
  idb T/2.
  T(X,Y) :- E(X,Y) ; T(X,Z) * E(Z,Y).
)";

class SeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeedSweep, ThreeEvaluationPathsAgreeOnTrop) {
  uint64_t seed = GetParam();
  Domain dom;
  auto prog = ParseProgram(kApsp, &dom);
  ASSERT_TRUE(prog.ok());
  Graph g = RandomGraph(7, 16, seed);
  std::vector<ConstId> ids = InternVertices(7, &dom);
  EdbInstance<TropS> edb(prog.value());
  LoadEdges<TropS>(g, ids, [](const Edge& e) { return e.weight; },
                   &edb.pops(prog.value().FindPredicate("E")));
  Engine<TropS> engine(prog.value(), edb);
  auto naive = engine.Naive(10000);
  auto semi = engine.SemiNaive(10000);
  auto grounded = GroundProgram<TropS>(prog.value(), edb);
  auto poly = grounded.NaiveIterate(10000);
  ASSERT_TRUE(naive.converged && semi.converged && poly.converged);
  EXPECT_TRUE(naive.idb.Equals(semi.idb));
  EXPECT_TRUE(naive.idb.Equals(grounded.Decode(poly.values)));
}

TEST_P(SeedSweep, ThreeEvaluationPathsAgreeOnBool) {
  uint64_t seed = GetParam();
  Domain dom;
  auto prog = ParseProgram(kApsp, &dom);
  ASSERT_TRUE(prog.ok());
  Graph g = RandomGraph(6, 14, seed * 31 + 1);
  std::vector<ConstId> ids = InternVertices(6, &dom);
  EdbInstance<BoolS> edb(prog.value());
  LoadEdges<BoolS>(g, ids, [](const Edge&) { return true; },
                   &edb.pops(prog.value().FindPredicate("E")));
  Engine<BoolS> engine(prog.value(), edb);
  auto naive = engine.Naive(10000);
  auto semi = engine.SemiNaive(10000);
  auto grounded = GroundProgram<BoolS>(prog.value(), edb);
  auto poly = grounded.NaiveIterate(10000);
  ASSERT_TRUE(naive.converged && semi.converged && poly.converged);
  EXPECT_TRUE(naive.idb.Equals(semi.idb));
  EXPECT_TRUE(naive.idb.Equals(grounded.Decode(poly.values)));
}

TEST_P(SeedSweep, FixpointIsActuallyFixed) {
  uint64_t seed = GetParam();
  Domain dom;
  auto prog = ParseProgram(kApsp, &dom);
  ASSERT_TRUE(prog.ok());
  Graph g = RandomGraph(6, 12, seed * 17 + 3);
  std::vector<ConstId> ids = InternVertices(6, &dom);
  EdbInstance<TropNatS> edb(prog.value());
  LoadEdges<TropNatS>(
      g, ids,
      [](const Edge& e) { return static_cast<uint64_t>(e.weight); },
      &edb.pops(prog.value().FindPredicate("E")));
  auto grounded = GroundProgram<TropNatS>(prog.value(), edb);
  auto r = grounded.NaiveIterate(10000);
  ASSERT_TRUE(r.converged);
  auto again = grounded.system().Evaluate(r.values);
  EXPECT_EQ(again, r.values);
}

TEST_P(SeedSweep, IteratesFormAnOmegaChain) {
  uint64_t seed = GetParam();
  Domain dom;
  auto prog = ParseProgram(kApsp, &dom);
  ASSERT_TRUE(prog.ok());
  Graph g = RandomGraph(5, 10, seed * 7 + 11);
  std::vector<ConstId> ids = InternVertices(5, &dom);
  EdbInstance<TropS> edb(prog.value());
  LoadEdges<TropS>(g, ids, [](const Edge& e) { return e.weight; },
                   &edb.pops(prog.value().FindPredicate("E")));
  auto grounded = GroundProgram<TropS>(prog.value(), edb);
  std::vector<double> x(grounded.num_vars(), TropS::Bottom());
  for (int t = 0; t < 30; ++t) {
    auto next = grounded.system().Evaluate(x);
    for (int i = 0; i < grounded.num_vars(); ++i) {
      EXPECT_TRUE(TropS::Leq(x[i], next[i])) << "t=" << t << " i=" << i;
    }
    if (next == x) break;
    x = next;
  }
}

TEST_P(SeedSweep, LinearLfpAgreesWithEngineOnSssp) {
  // Build the grounded SSSP system, solve with LinearLFP (Sec. 5.5) and
  // compare against the relational engine.
  uint64_t seed = GetParam();
  Domain dom;
  constexpr const char* kSssp = R"(
    edb E/2.
    idb L/1.
    L(X) :- [X = v0] ; L(Z) * E(Z, X).
  )";
  auto prog = ParseProgram(kSssp, &dom);
  ASSERT_TRUE(prog.ok());
  Graph g = RandomGraph(8, 20, seed + 1000);
  std::vector<ConstId> ids = InternVertices(8, &dom);
  EdbInstance<TropS> edb(prog.value());
  LoadEdges<TropS>(g, ids, [](const Edge& e) { return e.weight; },
                   &edb.pops(prog.value().FindPredicate("E")));
  auto grounded = GroundProgram<TropS>(prog.value(), edb);

  // Convert the grounded linear system into LinearFunction form.
  std::vector<LinearFunction<TropS>> fs(grounded.num_vars());
  for (int i = 0; i < grounded.num_vars(); ++i) {
    for (const auto& m : grounded.system().poly(i).monomials) {
      if (m.powers.empty()) {
        fs[i].AddConstant(m.coeff);
      } else {
        ASSERT_EQ(m.powers.size(), 1u);
        fs[i].AddTerm(m.powers[0].first, m.coeff);
      }
    }
  }
  auto direct = LinearLFP<TropS>(fs, /*p=*/0);

  Engine<TropS> engine(prog.value(), edb);
  auto result = engine.Naive(10000);
  ASSERT_TRUE(result.converged);
  int l = prog.value().FindPredicate("L");
  for (int v = 0; v < 8; ++v) {
    int var = grounded.VarOf(l, {ids[v]});
    double expect = result.idb.idb(l).Get({ids[v]});
    if (expect == TropS::Inf()) {
      EXPECT_EQ(direct[var], expect) << v;
    } else {
      EXPECT_NEAR(direct[var], expect, 1e-9) << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep, ::testing::Range<uint64_t>(0, 10));

}  // namespace
}  // namespace datalogo
