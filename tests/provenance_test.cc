// Provenance semirings, including Example 5.5: iterating f(x) = b + a·x²
// over N[a,b] stabilizes the coefficient of a^n b^{n+1} to the n-th
// Catalan number once q ≥ n.
#include <gtest/gtest.h>

#include "src/datalogo.h"

namespace datalogo {
namespace {

TEST(ProvPoly, BasicArithmetic) {
  auto a = ProvPolyS::Var("a"), b = ProvPolyS::Var("b");
  auto sum = ProvPolyS::Plus(a, b);
  auto prod = ProvPolyS::Times(sum, sum);
  // (a+b)² = a² + 2ab + b².
  EXPECT_EQ(ProvPolyS::Coefficient(prod, {{"a", 2}}), 1u);
  EXPECT_EQ(ProvPolyS::Coefficient(prod, {{"a", 1}, {"b", 1}}), 2u);
  EXPECT_EQ(ProvPolyS::Coefficient(prod, {{"b", 2}}), 1u);
  EXPECT_EQ(ProvPolyS::Coefficient(prod, {{"a", 3}}), 0u);
}

TEST(ProvPoly, NaturalOrder) {
  auto a = ProvPolyS::Var("a");
  auto two_a = ProvPolyS::Plus(a, a);
  EXPECT_TRUE(ProvPolyS::Leq(a, two_a));
  EXPECT_FALSE(ProvPolyS::Leq(two_a, a));
  EXPECT_TRUE(ProvPolyS::Leq(ProvPolyS::Zero(), a));
}

TEST(ProvPoly, Example55CatalanCoefficients) {
  // f(x) = b + a x² over N[a,b]; after q iterations from 0, the
  // coefficient of a^n b^{n+1} equals Catalan(n) for all n ≤ q − 1
  // (the paper's Eq. 33 "stabilized prefix").
  const uint64_t catalan[] = {1, 1, 2, 5, 14, 42};
  PolySystem<ProvPolyS> sys(1);
  Polynomial<ProvPolyS> f;
  f.Add(Monomial<ProvPolyS>{ProvPolyS::Var("b"), {}, {}});
  f.Add(Monomial<ProvPolyS>{ProvPolyS::Var("a"), {{0, 2}}, {}});
  sys.poly(0) = f;

  std::vector<ProvPolyS::Value> x = {ProvPolyS::Zero()};
  const int q = 6;
  for (int t = 1; t <= q; ++t) {
    x = sys.Evaluate(x);
    for (int n = 0; n <= t - 1 && n < 6; ++n) {
      ProvMonomial m{{"a", static_cast<uint32_t>(n)},
                     {"b", static_cast<uint32_t>(n + 1)}};
      if (n == 0) m.erase("a");
      EXPECT_EQ(ProvPolyS::Coefficient(x[0], m), catalan[n])
          << "t=" << t << " n=" << n;
    }
  }
}

TEST(ProvPoly, TransitiveClosureProvenanceOnGroundedProgram) {
  // Ground the TC program over N[X] with one fresh variable per edge;
  // the provenance of T(a,c) on the path a→b→c is the product of the two
  // edge variables (Green et al.-style lineage).
  constexpr const char* kTc = R"(
    edb E/2.
    idb T/2.
    T(X,Y) :- E(X,Y) ; T(X,Z) * E(Z,Y).
  )";
  Domain dom;
  auto prog = ParseProgram(kTc, &dom);
  ASSERT_TRUE(prog.ok());
  EdbInstance<ProvPolyS> edb(prog.value());
  ConstId a = dom.InternSymbol("a"), b = dom.InternSymbol("b"),
          c = dom.InternSymbol("c");
  auto& e = edb.pops(prog.value().FindPredicate("E"));
  e.Set({a, b}, ProvPolyS::Var("e1"));
  e.Set({b, c}, ProvPolyS::Var("e2"));
  Engine<ProvPolyS> engine(prog.value(), edb);
  auto result = engine.Naive(10);
  ASSERT_TRUE(result.converged);
  int t = prog.value().FindPredicate("T");
  auto tac = result.idb.idb(t).Get({a, c});
  EXPECT_EQ(ProvPolyS::Coefficient(tac, {{"e1", 1}, {"e2", 1}}), 1u);
  EXPECT_EQ(tac.size(), 1u);  // exactly one derivation
}

TEST(PosBool, AbsorptionMinimizesDnf) {
  auto x = PosBoolS::Var("x"), y = PosBoolS::Var("y");
  // x + xy = x.
  EXPECT_TRUE(PosBoolS::Eq(PosBoolS::Plus(x, PosBoolS::Times(x, y)), x));
  // 1 + anything = 1 (0-stability).
  EXPECT_TRUE(PosBoolS::Eq(PosBoolS::Plus(PosBoolS::One(), y),
                           PosBoolS::One()));
}

TEST(PosBool, MinusDropsAbsorbedClauses) {
  auto x = PosBoolS::Var("x"), y = PosBoolS::Var("y");
  auto xy = PosBoolS::Times(x, y);
  // (x | y) ⊖ x = y.
  EXPECT_TRUE(PosBoolS::Eq(PosBoolS::Minus(PosBoolS::Plus(x, y), x), y));
  // xy ⊖ x = 0 (xy is already implied by x in the lattice order).
  EXPECT_TRUE(PosBoolS::Eq(PosBoolS::Minus(xy, x), PosBoolS::Zero()));
}

TEST(PosBool, WhyProvenanceOfReachability) {
  // Over PosBool, TC computes the minimal edge-sets witnessing each path.
  constexpr const char* kTc = R"(
    edb E/2.
    idb T/2.
    T(X,Y) :- E(X,Y) ; T(X,Z) * E(Z,Y).
  )";
  Domain dom;
  auto prog = ParseProgram(kTc, &dom);
  ASSERT_TRUE(prog.ok());
  EdbInstance<PosBoolS> edb(prog.value());
  ConstId a = dom.InternSymbol("a"), b = dom.InternSymbol("b"),
          c = dom.InternSymbol("c");
  auto& e = edb.pops(prog.value().FindPredicate("E"));
  e.Set({a, b}, PosBoolS::Var("ab"));
  e.Set({b, c}, PosBoolS::Var("bc"));
  e.Set({a, c}, PosBoolS::Var("ac"));
  Engine<PosBoolS> engine(prog.value(), edb);
  auto result = engine.Naive(20);
  ASSERT_TRUE(result.converged);
  int t = prog.value().FindPredicate("T");
  auto tac = result.idb.idb(t).Get({a, c});
  // Two minimal witnesses: {ac} and {ab, bc}.
  PosBoolS::Value expect = {{"ac"}, {"ab", "bc"}};
  EXPECT_TRUE(PosBoolS::Eq(tac, expect)) << PosBoolS::ToString(tac);
}

}  // namespace
}  // namespace datalogo
