// Section 7: the win-move game over the POPS THREE reproduces the
// well-founded model, including the paper's exact iteration table
// W(0)..W(4) on the Fig. 4 graph.
#include <gtest/gtest.h>

#include "src/datalogo.h"

namespace datalogo {
namespace {

constexpr const char* kWinMove = R"(
  bedb E/2.
  idb W/1.
  W(X) :- { !W(Y) | E(X, Y) }.
)";

TEST(WinMove, Fig4MatchesPaperTable) {
  Domain dom;
  auto prog = ParseProgram(kWinMove, &dom);
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  ASSERT_TRUE(ValidateProgram(prog.value()).ok());

  EdbInstance<ThreeS> edb(prog.value());
  LoadNamedEdgesBool(PaperFig4(), &dom,
                     &edb.boolean(prog.value().FindPredicate("E")));

  auto grounded = GroundProgram<ThreeS>(prog.value(), edb);
  // Walk the iteration manually to capture the paper's table.
  std::vector<Kleene> x(grounded.num_vars(), ThreeS::Bottom());
  std::vector<std::vector<Kleene>> table{x};
  for (int t = 0; t < 10; ++t) {
    auto next = grounded.system().Evaluate(x);
    table.push_back(next);
    if (next == x) break;
    x = next;
  }

  auto value_at = [&](const std::vector<Kleene>& row, const char* v) {
    int var = grounded.VarOf(prog.value().FindPredicate("W"),
                             {*dom.FindSymbol(v)});
    return row[var];
  };
  const Kleene B = Kleene::kBot, F = Kleene::kFalse, T = Kleene::kTrue;
  struct RowSpec {
    int t;
    Kleene a, b, c, d, e, f;
  };
  // The table of Sec. 7.2 (W(0)..W(4), with W(5) = W(4)).
  const RowSpec expected[] = {
      {0, B, B, B, B, B, B}, {1, B, B, B, B, B, F},
      {2, B, B, B, B, T, F}, {3, B, B, B, F, T, F},
      {4, B, B, T, F, T, F},
  };
  ASSERT_GE(table.size(), 6u);
  for (const RowSpec& row : expected) {
    EXPECT_EQ(value_at(table[row.t], "a"), row.a) << "t=" << row.t;
    EXPECT_EQ(value_at(table[row.t], "b"), row.b) << "t=" << row.t;
    EXPECT_EQ(value_at(table[row.t], "c"), row.c) << "t=" << row.t;
    EXPECT_EQ(value_at(table[row.t], "d"), row.d) << "t=" << row.t;
    EXPECT_EQ(value_at(table[row.t], "e"), row.e) << "t=" << row.t;
    EXPECT_EQ(value_at(table[row.t], "f"), row.f) << "t=" << row.t;
  }
  EXPECT_EQ(table[5], table[4]);  // W(5) = W(4): converged
}

TEST(WinMove, ThreeFixpointEqualsWellFoundedOnFig4) {
  // Build the Fig. 4 graph as a Graph for the alternating fixpoint.
  NamedGraph named = PaperFig4();
  Graph g(static_cast<int>(named.names.size()));
  auto index = [&](const std::string& n) {
    for (std::size_t i = 0; i < named.names.size(); ++i) {
      if (named.names[i] == n) return static_cast<int>(i);
    }
    return -1;
  };
  for (const auto& [s, t] : named.edges) g.AddEdge(index(s), index(t));

  WellFoundedModel wf = AlternatingFixpoint(WinMoveProgram(g));
  // Paper: well-founded model = {W(c), W(e)} true, {W(d), W(f)} false,
  // a and b undefined.
  EXPECT_EQ(wf.values[index("a")], Kleene::kBot);
  EXPECT_EQ(wf.values[index("b")], Kleene::kBot);
  EXPECT_EQ(wf.values[index("c")], Kleene::kTrue);
  EXPECT_EQ(wf.values[index("d")], Kleene::kFalse);
  EXPECT_EQ(wf.values[index("e")], Kleene::kTrue);
  EXPECT_EQ(wf.values[index("f")], Kleene::kFalse);

  // datalog° over THREE agrees.
  Domain dom;
  auto prog = ParseProgram(kWinMove, &dom);
  ASSERT_TRUE(prog.ok());
  std::vector<ConstId> ids = InternVertices(g.num_vertices(), &dom);
  EdbInstance<ThreeS> edb(prog.value());
  LoadEdgesBool(g, ids, &edb.boolean(prog.value().FindPredicate("E")));
  auto grounded = GroundProgram<ThreeS>(prog.value(), edb);
  auto iter = grounded.NaiveIterate(100);
  ASSERT_TRUE(iter.converged);
  for (int v = 0; v < g.num_vertices(); ++v) {
    int var = grounded.VarOf(prog.value().FindPredicate("W"), {ids[v]});
    EXPECT_EQ(iter.values[var], wf.values[v]) << "vertex " << v;
  }
}

TEST(WinMove, ThreeFixpointEqualsWellFoundedOnRandomGraphs) {
  // Property sweep: for win-move, Fitting's three-valued semantics (our
  // THREE fixpoint) coincides with the well-founded model.
  for (uint64_t seed = 0; seed < 12; ++seed) {
    Graph g = RandomGraph(8, 14, seed);
    WellFoundedModel wf = AlternatingFixpoint(WinMoveProgram(g));

    Domain dom;
    auto prog = ParseProgram(kWinMove, &dom);
    ASSERT_TRUE(prog.ok());
    std::vector<ConstId> ids = InternVertices(g.num_vertices(), &dom);
    EdbInstance<ThreeS> edb(prog.value());
    LoadEdgesBool(g, ids, &edb.boolean(prog.value().FindPredicate("E")));
    auto grounded = GroundProgram<ThreeS>(prog.value(), edb);
    auto iter = grounded.NaiveIterate(1000);
    ASSERT_TRUE(iter.converged) << "seed " << seed;
    for (int v = 0; v < g.num_vertices(); ++v) {
      // Vertices with no outgoing edges never enter the EDB; they may be
      // outside the grounded active domain. They lose (False) and the
      // grounding only contains them if some edge mentions them.
      int var = grounded.VarOf(prog.value().FindPredicate("W"), {ids[v]});
      if (var < 0) continue;
      EXPECT_EQ(iter.values[var], wf.values[v])
          << "seed " << seed << " vertex " << v;
    }
  }
}

TEST(WinMove, SelfLoopOnlyGraphIsAllUndefined) {
  // W(a) :- ¬W(a): classic paradox; well-founded model leaves it ⊥.
  Graph g(1);
  g.AddEdge(0, 0);
  WellFoundedModel wf = AlternatingFixpoint(WinMoveProgram(g));
  EXPECT_EQ(wf.values[0], Kleene::kBot);

  Domain dom;
  auto prog = ParseProgram(kWinMove, &dom);
  ASSERT_TRUE(prog.ok());
  std::vector<ConstId> ids = InternVertices(1, &dom);
  EdbInstance<ThreeS> edb(prog.value());
  LoadEdgesBool(g, ids, &edb.boolean(prog.value().FindPredicate("E")));
  auto grounded = GroundProgram<ThreeS>(prog.value(), edb);
  auto iter = grounded.NaiveIterate(10);
  ASSERT_TRUE(iter.converged);
  EXPECT_EQ(iter.values[0], Kleene::kBot);
}

}  // namespace
}  // namespace datalogo
