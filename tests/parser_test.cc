// Parser unit tests: syntax coverage and error reporting.
#include <gtest/gtest.h>

#include "src/datalog/parser.h"
#include "src/datalog/validate.h"

namespace datalogo {
namespace {

TEST(Parser, DeclarationsAndKinds) {
  Domain dom;
  auto r = ParseProgram("edb E/2. bedb B/1. idb T/3.", &dom);
  ASSERT_TRUE(r.ok());
  const Program& p = r.value();
  EXPECT_EQ(p.predicate(p.FindPredicate("E")).kind, PredKind::kEdb);
  EXPECT_EQ(p.predicate(p.FindPredicate("B")).kind, PredKind::kBoolEdb);
  EXPECT_EQ(p.predicate(p.FindPredicate("T")).kind, PredKind::kIdb);
  EXPECT_EQ(p.predicate(p.FindPredicate("T")).arity, 3);
}

TEST(Parser, AutoDeclaration) {
  Domain dom;
  auto r = ParseProgram("T(X,Y) :- E(X,Y) ; T(X,Z) * E(Z,Y).", &dom);
  ASSERT_TRUE(r.ok());
  const Program& p = r.value();
  EXPECT_EQ(p.predicate(p.FindPredicate("T")).kind, PredKind::kIdb);
  EXPECT_EQ(p.predicate(p.FindPredicate("E")).kind, PredKind::kEdb);
  ASSERT_EQ(p.rules().size(), 1u);
  EXPECT_EQ(p.rules()[0].disjuncts.size(), 2u);
  EXPECT_EQ(p.rules()[0].num_vars, 3);
}

TEST(Parser, VariablesVsConstants) {
  Domain dom;
  auto r = ParseProgram("T(X) :- E(X, abc) ; E(X, 42).", &dom);
  ASSERT_TRUE(r.ok());
  const Rule& rule = r.value().rules()[0];
  const Atom& a0 = rule.disjuncts[0].atoms[0];
  EXPECT_TRUE(a0.args[0].IsVar());
  EXPECT_FALSE(a0.args[1].IsVar());
  EXPECT_EQ(dom.ToString(a0.args[1].constant), "abc");
  const Atom& a1 = rule.disjuncts[1].atoms[0];
  EXPECT_EQ(dom.ToString(a1.args[1].constant), "42");
}

TEST(Parser, IndicatorDesugarsToCondition) {
  Domain dom;
  auto r = ParseProgram("L(X) :- [X = a] ; L(Z) * E(Z, X).", &dom);
  ASSERT_TRUE(r.ok());
  const Rule& rule = r.value().rules()[0];
  ASSERT_EQ(rule.disjuncts.size(), 2u);
  EXPECT_TRUE(rule.disjuncts[0].atoms.empty());
  ASSERT_EQ(rule.disjuncts[0].conditions.size(), 1u);
  EXPECT_EQ(rule.disjuncts[0].conditions[0].kind,
            Condition::Kind::kCompare);
  EXPECT_EQ(rule.disjuncts[0].conditions[0].op, CmpOp::kEq);
}

TEST(Parser, BracedConditional) {
  Domain dom;
  auto r = ParseProgram("T(X) :- { C(Y) | E(X, Y), X != Y }.", &dom);
  ASSERT_TRUE(r.ok());
  const SumProduct& sp = r.value().rules()[0].disjuncts[0];
  EXPECT_EQ(sp.atoms.size(), 1u);
  ASSERT_EQ(sp.conditions.size(), 2u);
  EXPECT_EQ(sp.conditions[0].kind, Condition::Kind::kBoolAtom);
  EXPECT_EQ(sp.conditions[1].op, CmpOp::kNe);
}

TEST(Parser, NegatedAtomAndNegatedCondition) {
  Domain dom;
  auto r = ParseProgram("W(X) :- { !W(Y) | E(X,Y), !Blocked(X) }.", &dom);
  ASSERT_TRUE(r.ok());
  const SumProduct& sp = r.value().rules()[0].disjuncts[0];
  EXPECT_TRUE(sp.atoms[0].negated);
  EXPECT_EQ(sp.conditions[1].kind, Condition::Kind::kNegBoolAtom);
}

TEST(Parser, CommentsAndWhitespace) {
  Domain dom;
  auto r = ParseProgram(R"(
    // a line comment
    % another comment style
    edb E/2.   // trailing
    T(X,Y) :- E(X,Y).
  )",
                        &dom);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().rules().size(), 1u);
}

TEST(Parser, RoundTripsThroughToString) {
  Domain dom;
  const char* text =
      "edb E/2. bedb B/1. idb T/2. "
      "T(X,Y) :- E(X,Y) ; { T(X,Z) * E(Z,Y) | B(Z), X != Y }.";
  auto r = ParseProgram(text, &dom);
  ASSERT_TRUE(r.ok());
  std::string printed = r.value().ToString();
  Domain dom2;
  auto r2 = ParseProgram(printed, &dom2);
  ASSERT_TRUE(r2.ok()) << "re-parse failed on:\n" << printed;
  EXPECT_EQ(r2.value().ToString(), printed);
}

TEST(Parser, ErrorMissingDot) {
  Domain dom;
  auto r = ParseProgram("T(X) :- E(X, Y)", &dom);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Code::kParseError);
}

TEST(Parser, ErrorArityMismatch) {
  Domain dom;
  auto r = ParseProgram("edb E/2. T(X) :- E(X).", &dom);
  EXPECT_FALSE(r.ok());
}

TEST(Parser, ErrorStrayToken) {
  Domain dom;
  auto r = ParseProgram("T(X) :@ E(X).", &dom);
  EXPECT_FALSE(r.ok());
}

TEST(Parser, ErrorUnterminatedBrace) {
  Domain dom;
  auto r = ParseProgram("T(X) :- { E(X,Y) | B(Y) .", &dom);
  EXPECT_FALSE(r.ok());
}

TEST(Parser, NegativeIntegerConstants) {
  Domain dom;
  auto r = ParseProgram("T(X) :- { V(X) | X >= -3 }.", &dom);
  ASSERT_TRUE(r.ok());
  const Condition& c = r.value().rules()[0].disjuncts[0].conditions[0];
  EXPECT_EQ(*dom.AsInt(c.rhs.constant), -3);
}

TEST(Parser, UnitFactorIsNeutral) {
  Domain dom;
  auto r = ParseProgram("T(X) :- 1 * E(X, X).", &dom);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().rules()[0].disjuncts[0].atoms.size(), 1u);
}

}  // namespace
}  // namespace datalogo
