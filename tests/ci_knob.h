// Iteration caps for CI: the fuzz/stress suites default to deep sweeps,
// which is right locally but too slow for sanitizer CI jobs. Setting the
// DATALOGO_CI environment variable (any value) selects the capped counts.
#ifndef DATALOGO_TESTS_CI_KNOB_H_
#define DATALOGO_TESTS_CI_KNOB_H_

#include <cstdlib>

namespace datalogo {

/// `full` iterations normally, `capped` when DATALOGO_CI is set (to any
/// non-empty value — an empty string counts as unset, so CI matrices can
/// blank the variable to opt a job out).
inline int CiIterations(int full, int capped) {
  const char* v = std::getenv("DATALOGO_CI");
  return (v != nullptr && v[0] != '\0') ? capped : full;
}

}  // namespace datalogo

#endif  // DATALOGO_TESTS_CI_KNOB_H_
