// Stability of semiring elements (Definition 5.1) and the paper's
// stability claims: Trop+ is 0-stable, Trop+_p is exactly p-stable
// (Proposition 5.3), Trop+_{≤η} is stable but not uniformly
// (Proposition 5.4), N and MaxPlus are not stable, PosBool is 0-stable.
#include <gtest/gtest.h>

#include "src/datalogo.h"

namespace datalogo {
namespace {

TEST(Stability, BooleanIsZeroStable) {
  EXPECT_EQ(ElementStabilityIndex<BoolS>(true, 10), 0);
  EXPECT_EQ(ElementStabilityIndex<BoolS>(false, 10), 0);
}

TEST(Stability, TropIsZeroStable) {
  // min(0, x) = 0 for x ∈ R+ ∪ {∞}: 1 ⊕ u = 1.
  for (double u : {0.0, 0.5, 3.0, TropS::Inf()}) {
    EXPECT_EQ(ElementStabilityIndex<TropS>(u, 10), 0) << u;
  }
}

TEST(Stability, NaturalsAreNotStable) {
  EXPECT_EQ(ElementStabilityIndex<NatS>(0, 10), 0);  // 0 is stable
  EXPECT_EQ(ElementStabilityIndex<NatS>(1, 100), std::nullopt);
  // True N has no stable element > 1; our carrier saturates to ∞ around
  // 2^64, so probe with a budget below the saturation horizon (2^50).
  EXPECT_EQ(ElementStabilityIndex<NatS>(2, 50), std::nullopt);
}

TEST(Stability, MaxPlusPositiveElementsDiverge) {
  EXPECT_EQ(ElementStabilityIndex<MaxPlusS>(0.0, 10), 0);
  EXPECT_EQ(ElementStabilityIndex<MaxPlusS>(-1.0, 10), 0);
  EXPECT_EQ(ElementStabilityIndex<MaxPlusS>(1.0, 200), std::nullopt);
}

TEST(Stability, ViterbiAndFuzzyAreZeroStable) {
  for (double u : {0.0, 0.3, 0.9, 1.0}) {
    EXPECT_EQ(ElementStabilityIndex<ViterbiS>(u, 10), 0) << u;
    EXPECT_EQ(ElementStabilityIndex<FuzzyS>(u, 10), 0) << u;
  }
}

TEST(Stability, PosBoolIsZeroStable) {
  auto x = PosBoolS::Var("x");
  auto xy = PosBoolS::Times(PosBoolS::Var("x"), PosBoolS::Var("y"));
  EXPECT_EQ(ElementStabilityIndex<PosBoolS>(x, 10), 0);
  EXPECT_EQ(ElementStabilityIndex<PosBoolS>(xy, 10), 0);
}

TEST(Stability, ProvenancePolynomialsAreNotStable) {
  EXPECT_EQ(ElementStabilityIndex<ProvPolyS>(ProvPolyS::Var("a"), 50),
            std::nullopt);
}

// Proposition 5.3: every element of Trop+_p is p-stable, and the unit 1_p
// attains exactly index p.
template <int kP>
void CheckTropPStability() {
  using T = TropPS<kP>;
  // The unit element has stability index exactly p.
  auto idx = ElementStabilityIndex<T>(T::One(), 4 * kP + 8);
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(*idx, kP);
  // A panel of other elements stabilizes within p.
  std::vector<typename T::Value> panel = {T::Zero(), T::FromScalar(1.0),
                                          T::FromScalar(0.0)};
  typename T::Value mixed = T::Zero();
  for (int i = 0; i <= kP; ++i) mixed[i] = 1.0 + i;
  panel.push_back(mixed);
  for (const auto& u : panel) {
    auto i = ElementStabilityIndex<T>(u, 4 * kP + 8);
    ASSERT_TRUE(i.has_value()) << T::ToString(u);
    EXPECT_LE(*i, kP) << T::ToString(u);
  }
}

TEST(Stability, TropPIsExactlyPStable) {
  CheckTropPStability<0>();
  CheckTropPStability<1>();
  CheckTropPStability<2>();
  CheckTropPStability<3>();
  CheckTropPStability<5>();
}

TEST(Stability, TropEtaStableButNotUniformly) {
  // Proposition 5.4: {x0} has stability index ⌈η/x0⌉; as x0 shrinks the
  // index grows without bound, so no uniform p exists.
  TropEtaS::ScopedEta eta(6.0);
  struct Case {
    double x0;
    int expected;
  };
  for (const Case& c : {Case{6.0, 1}, Case{3.0, 2}, Case{2.0, 3},
                        Case{1.0, 6}, Case{0.5, 12}}) {
    auto idx =
        ElementStabilityIndex<TropEtaS>(TropEtaS::FromScalar(c.x0), 100);
    ASSERT_TRUE(idx.has_value()) << c.x0;
    EXPECT_EQ(*idx, c.expected) << c.x0;
  }
  // {0} is 0-stable.
  EXPECT_EQ(ElementStabilityIndex<TropEtaS>(TropEtaS::FromScalar(0.0), 10),
            0);
}

TEST(Stability, StarTruncatedMatchesDefinition) {
  // u^(p) over Trop+_1 with u = {{2, 3}}: 1 ⊕ u ⊕ u² = {{0, 2}} after the
  // min_1 of {0, ∞} ⊎ {2,3} ⊎ {4,5,5,6}.
  using T = TropPS<1>;
  T::Value u = {2.0, 3.0};
  T::Value s2 = StarTruncated<T>(u, 2);
  EXPECT_TRUE(T::Eq(s2, T::Value{0.0, 2.0}));
  // And 1-stability: u^(1) = u^(2).
  EXPECT_TRUE(T::Eq(StarTruncated<T>(u, 1), s2));
}

TEST(Stability, PaperExample29Arithmetic) {
  // {{3,7,9}} ⊕₂ {{3,7,7}} = {{3,3,7}}; {{3,7,9}} ⊗₂ {{3,7,7}} = {{6,10,10}}.
  using T = TropPS<2>;
  T::Value a = {3, 7, 9}, b = {3, 7, 7};
  EXPECT_TRUE(T::Eq(T::Plus(a, b), T::Value{3, 3, 7}));
  EXPECT_TRUE(T::Eq(T::Times(a, b), T::Value{6, 10, 10}));
}

TEST(Stability, PaperExample210Arithmetic) {
  // η = 6.5: {3,7} ⊕ {5,9,10} = {3,5,7,9}; {1,6} ⊗ {1,2,3} = {2,3,4,7,8}.
  TropEtaS::ScopedEta eta(6.5);
  EXPECT_EQ(TropEtaS::Plus({3, 7}, {5, 9, 10}),
            (TropEtaS::Value{3, 5, 7, 9}));
  EXPECT_EQ(TropEtaS::Times({1, 6}, {1, 2, 3}),
            (TropEtaS::Value{2, 3, 4, 7, 8}));
}

TEST(Stability, AllPStableHelper) {
  std::vector<double> good = {0.0, 1.0, TropS::Inf()};
  EXPECT_TRUE(AllPStable<TropS>(good.begin(), good.end(), 0));
  std::vector<uint64_t> bad = {0, 2};
  EXPECT_FALSE(AllPStable<NatS>(bad.begin(), bad.end(), 5));
}

}  // namespace
}  // namespace datalogo
