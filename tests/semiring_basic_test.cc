// Basic unit tests for the individual POPS/semiring implementations.
#include <gtest/gtest.h>

#include "src/semiring/boolean.h"
#include "src/semiring/completed.h"
#include "src/semiring/core_semiring.h"
#include "src/semiring/lifted.h"
#include "src/semiring/naturals.h"
#include "src/semiring/powerset.h"
#include "src/semiring/product.h"
#include "src/semiring/reals.h"
#include "src/semiring/traits.h"
#include "src/semiring/tropical.h"

namespace datalogo {
namespace {

// Concept conformance (compile-time checks, spelled as static_asserts).
static_assert(Pops<BoolS>);
static_assert(Pops<NatS>);
static_assert(Pops<TropS>);
static_assert(Pops<TropNatS>);
static_assert(Pops<MaxPlusS>);
static_assert(Pops<ViterbiS>);
static_assert(Pops<FuzzyS>);
static_assert(Pops<RealPlusS>);
static_assert(PreSemiring<RealS>);
static_assert(Pops<Lifted<RealS>>);
static_assert(Pops<Completed<RealS>>);
static_assert(Pops<Powerset<NatS>>);
static_assert(NaturallyOrderedSemiring<BoolS>);
static_assert(NaturallyOrderedSemiring<TropS>);
static_assert(!NaturallyOrderedSemiring<Lifted<RealS>>);
static_assert(CompleteDistributiveDioid<BoolS>);
static_assert(CompleteDistributiveDioid<TropS>);
static_assert(CompleteDistributiveDioid<TropNatS>);
static_assert(!DioidPops<NatS>);

TEST(BoolSemiring, Operations) {
  EXPECT_EQ(BoolS::Plus(false, true), true);
  EXPECT_EQ(BoolS::Times(false, true), false);
  EXPECT_TRUE(BoolS::Leq(false, true));
  EXPECT_FALSE(BoolS::Leq(true, false));
  EXPECT_EQ(BoolS::Minus(true, false), true);
  EXPECT_EQ(BoolS::Minus(true, true), false);
}

TEST(NatSemiring, SaturatingArithmetic) {
  EXPECT_EQ(NatS::Plus(2, 3), 5u);
  EXPECT_EQ(NatS::Times(2, 3), 6u);
  EXPECT_EQ(NatS::Plus(NatS::kInf, 1), NatS::kInf);
  EXPECT_EQ(NatS::Times(NatS::kInf, 0), 0u);  // absorption survives ∞
  EXPECT_EQ(NatS::Plus(NatS::kInf - 1, 5), NatS::kInf);
  EXPECT_EQ(NatS::Times(uint64_t{1} << 40, uint64_t{1} << 40), NatS::kInf);
}

TEST(TropSemiring, MinPlus) {
  EXPECT_EQ(TropS::Plus(3.0, 5.0), 3.0);
  EXPECT_EQ(TropS::Times(3.0, 5.0), 8.0);
  EXPECT_EQ(TropS::Zero(), TropS::Inf());
  EXPECT_EQ(TropS::One(), 0.0);
  // Natural order is the REVERSE numeric order.
  EXPECT_TRUE(TropS::Leq(5.0, 3.0));
  EXPECT_FALSE(TropS::Leq(3.0, 5.0));
  EXPECT_TRUE(TropS::Leq(TropS::Inf(), 7.0));  // ∞ = ⊥ below everything
}

TEST(TropSemiring, MinusPerEquationSix) {
  // v ⊖ u = v if v < u else ∞ (Eq. 6).
  EXPECT_EQ(TropS::Minus(3.0, 5.0), 3.0);
  EXPECT_EQ(TropS::Minus(5.0, 3.0), TropS::Inf());
  EXPECT_EQ(TropS::Minus(5.0, 5.0), TropS::Inf());
  // ⊖ recovers: a ⊕ (b ⊖ a) = a ⊕ b when b ⊖ a participates.
  EXPECT_EQ(TropS::Plus(5.0, TropS::Minus(3.0, 5.0)), 3.0);
}

TEST(MaxPlusSemiring, Operations) {
  EXPECT_EQ(MaxPlusS::Plus(3.0, 5.0), 5.0);
  EXPECT_EQ(MaxPlusS::Times(3.0, 5.0), 8.0);
  EXPECT_EQ(MaxPlusS::Times(MaxPlusS::NegInf(), 5.0), MaxPlusS::NegInf());
}

TEST(ViterbiFuzzy, Operations) {
  EXPECT_EQ(ViterbiS::Plus(0.3, 0.5), 0.5);
  EXPECT_EQ(ViterbiS::Times(0.5, 0.5), 0.25);
  EXPECT_EQ(FuzzyS::Times(0.3, 0.5), 0.3);
  EXPECT_EQ(FuzzyS::Plus(0.3, 0.5), 0.5);
}

TEST(LiftedReals, StrictOperations) {
  using R = Lifted<RealS>;
  R::Value bot = R::Bottom();
  R::Value two = R::Lift(2.0);
  EXPECT_TRUE(R::Eq(R::Plus(two, bot), bot));   // x ⊕ ⊥ = ⊥
  EXPECT_TRUE(R::Eq(R::Times(two, bot), bot));  // x ⊗ ⊥ = ⊥
  EXPECT_TRUE(R::Eq(R::Times(R::Zero(), bot), bot));  // 0 ⊗ ⊥ = ⊥ ≠ 0
  EXPECT_TRUE(R::Leq(bot, two));
  EXPECT_FALSE(R::Leq(two, R::Lift(3.0)));  // flat order
  EXPECT_TRUE(R::Leq(two, two));
}

TEST(LiftedReals, CoreSemiringIsTrivial) {
  // R⊥+⊥ = {⊥} (Sec. 2.5.1): injecting anything yields ⊥.
  using R = Lifted<RealS>;
  using C = CoreSemiring<R>;
  EXPECT_TRUE(R::Eq(C::Inject(R::Lift(7.0)), R::Bottom()));
  EXPECT_TRUE(R::Eq(C::Zero(), R::Bottom()));
  EXPECT_TRUE(R::Eq(C::One(), R::Bottom()));
}

TEST(CompletedReals, TopAbsorbsAmongDefined) {
  using C = Completed<RealS>;
  C::Value bot = C::Bottom(), top = C::Top(), one = C::One();
  EXPECT_TRUE(C::Eq(C::Plus(one, top), top));
  EXPECT_TRUE(C::Eq(C::Plus(bot, top), bot));  // ⊥ beats ⊤
  EXPECT_TRUE(C::Eq(C::Times(top, bot), bot));
  EXPECT_TRUE(C::Leq(bot, one));
  EXPECT_TRUE(C::Leq(one, top));
  EXPECT_FALSE(C::Leq(top, one));
}

TEST(PowersetPops, ElementwiseImage) {
  using PS = Powerset<NatS>;
  PS::Value a = {1, 2};
  PS::Value b = {10};
  PS::Value sum = PS::Plus(a, b);
  EXPECT_EQ(sum, (PS::Value{11, 12}));
  PS::Value prod = PS::Times(a, b);
  EXPECT_EQ(prod, (PS::Value{10, 20}));
  EXPECT_TRUE(PS::Leq(PS::Bottom(), a));  // ∅ ⊆ everything
  EXPECT_TRUE(PS::Eq(PS::Times(a, PS::Bottom()), PS::Bottom()));  // strict
}

TEST(ProductPops, Componentwise) {
  using PP = ProductPops<BoolS, TropS>;
  PP::Value a = {true, 3.0};
  PP::Value b = {false, 5.0};
  PP::Value sum = PP::Plus(a, b);
  EXPECT_TRUE(sum.first);
  EXPECT_EQ(sum.second, 3.0);
  EXPECT_TRUE(PP::Leq(PP::Bottom(), a));
}

TEST(ProductPops, NontrivialCoreSemiring) {
  // Example 2.11: S × P with S naturally ordered and P strict-addition has
  // core S × {⊥}.
  using PP = ProductPops<TropS, Lifted<RealS>>;
  using C = CoreSemiring<PP>;
  PP::Value v = {4.0, Lifted<RealS>::Lift(9.0)};
  PP::Value injected = C::Inject(v);
  EXPECT_EQ(injected.first, 4.0);  // Trop component survives
  EXPECT_TRUE(Lifted<RealS>::Eq(injected.second,
                                Lifted<RealS>::Bottom()));  // lifted dies
}

}  // namespace
}  // namespace datalogo
