// K-relations: support invariant, merge, equality, indexes.
#include <gtest/gtest.h>

#include "src/relation/relation.h"
#include "src/semiring/lifted.h"
#include "src/semiring/reals.h"
#include "src/semiring/tropical.h"

namespace datalogo {
namespace {

TEST(Relation, SupportInvariantExcludesBottom) {
  Relation<TropS> r(2);
  r.Set({1, 2}, 5.0);
  EXPECT_EQ(r.support_size(), 1u);
  r.Set({1, 2}, TropS::Inf());  // ⊥ erases
  EXPECT_EQ(r.support_size(), 0u);
  EXPECT_EQ(r.Get({1, 2}), TropS::Inf());
}

TEST(Relation, MergeAccumulatesWithPlus) {
  Relation<TropS> r(1);
  r.Merge({7}, 5.0);
  r.Merge({7}, 3.0);
  r.Merge({7}, 9.0);
  EXPECT_EQ(r.Get({7}), 3.0);  // min
}

TEST(Relation, GetOutsideSupportIsBottom) {
  using L = Lifted<RealS>;
  Relation<L> r(1);
  EXPECT_TRUE(L::Eq(r.Get({0}), L::Bottom()));
  r.Set({0}, L::Lift(0.0));  // a present tuple with base value 0
  EXPECT_EQ(r.support_size(), 1u);  // 0 ≠ ⊥ in R⊥!
}

TEST(Relation, EqualsComparesSupportAndValues) {
  Relation<TropS> a(1), b(1);
  a.Set({1}, 2.0);
  b.Set({1}, 2.0);
  EXPECT_TRUE(a.Equals(b));
  b.Set({1}, 3.0);
  EXPECT_FALSE(a.Equals(b));
  b.Set({1}, 2.0);
  b.Set({2}, 4.0);
  EXPECT_FALSE(a.Equals(b));
}

TEST(Relation, IndexLookupByPositions) {
  Relation<TropS> r(2);
  r.Set({1, 10}, 1.0);
  r.Set({1, 20}, 2.0);
  r.Set({2, 10}, 3.0);
  RelationIndex<TropS> by_first(r, {0});
  EXPECT_EQ(by_first.Lookup({1}).size(), 2u);
  EXPECT_EQ(by_first.Lookup({2}).size(), 1u);
  EXPECT_EQ(by_first.Lookup({9}).size(), 0u);
  RelationIndex<TropS> by_both(r, {0, 1});
  EXPECT_EQ(by_both.Lookup({1, 20}).size(), 1u);
  RelationIndex<TropS> scan(r, {});
  EXPECT_EQ(scan.Lookup({}).size(), 3u);
}

TEST(Relation, CollectConstants) {
  Relation<TropS> r(2);
  r.Set({5, 6}, 1.0);
  std::vector<ConstId> ids;
  r.CollectConstants(ids);
  EXPECT_EQ(ids.size(), 2u);
}

TEST(Relation, ToStringIsSortedAndStable) {
  Domain dom;
  ConstId a = dom.InternSymbol("a"), b = dom.InternSymbol("b");
  Relation<TropS> r(2);
  r.Set({b, a}, 2.0);
  r.Set({a, b}, 1.0);
  EXPECT_EQ(r.ToString(dom), "(a,b) -> 1\n(b,a) -> 2\n");
}

}  // namespace
}  // namespace datalogo
