// Polynomial systems (Sec. 4.3/5): the x :- 1 + c·x litmus program, the
// Theorem 5.12 convergence bounds, Example 5.15, and the recursive-
// variable analysis of Sec. 5.4 (Proposition 5.16).
#include <gtest/gtest.h>

#include <random>

#include "src/datalogo.h"

namespace datalogo {
namespace {

template <Pops P>
PolySystem<P> OnePlusCx(typename P::Value c) {
  // x :- 1 + c·x (Eq. 29).
  PolySystem<P> sys(1);
  sys.poly(0).Add(Monomial<P>{P::One(), {}, {}});
  sys.poly(0).Add(Monomial<P>{std::move(c), {{0, 1}}, {}});
  return sys;
}

TEST(PolySystem, OnePlusCxConvergesOnTrop) {
  auto sys = OnePlusCx<TropS>(2.0);
  auto r = sys.NaiveIterate(100);
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.values[0], 0.0);  // 1 ⊕ 2⊗0 = min(0, 2) = 0
  EXPECT_LE(r.steps, 2);
}

TEST(PolySystem, OnePlusCxDivergesOnNaturals) {
  // c = 2: f^(q)(0) = 1 + 2 + … + 2^{q-1} → ∞ (the Sec. 5 opener).
  auto sys = OnePlusCx<NatS>(2);
  auto r = sys.NaiveIterate(60);
  EXPECT_FALSE(r.converged);
  // But c = 0 converges: x = 1. (The monomial 0·x is still present; over
  // the semiring N it is inert.)
  auto sys0 = OnePlusCx<NatS>(0);
  auto r0 = sys0.NaiveIterate(10);
  ASSERT_TRUE(r0.converged);
  EXPECT_EQ(r0.values[0], 1u);
}

TEST(PolySystem, OnePlusCxStabilityIndexOnTropP) {
  // Over Trop+_p the fixpoint of x = 1 ⊕ c⊗x collects the p+1 cheapest
  // path lengths 0, c, 2c, …; it must converge within p+2 steps
  // (Lemma 5.11(b) for linear f with p-stable c).
  using T = TropPS<3>;
  auto sys = OnePlusCx<T>(T::FromScalar(5.0));
  auto r = sys.NaiveIterate(100);
  ASSERT_TRUE(r.converged);
  EXPECT_TRUE(T::Eq(r.values[0], T::Value{0, 5, 10, 15}));
  EXPECT_LE(static_cast<uint64_t>(r.steps), LinearConvergenceBound(3, 1));
}

TEST(PolySystem, QuadraticUnivariateOverTropP) {
  // f(x) = b + a·x² (Example 5.5 shape) over the p-stable Trop+_p:
  // Lemma 5.11(c) gives stability index ≤ p + 2.
  for (int budget_p : {0, 1, 2, 3}) {
    auto run = [&](auto tag) {
      using T = decltype(tag);
      PolySystem<T> sys(1);
      sys.poly(0).Add(Monomial<T>{T::FromScalar(1.0), {}, {}});       // b
      sys.poly(0).Add(Monomial<T>{T::FromScalar(2.0), {{0, 2}}, {}});  // a·x²
      auto r = sys.NaiveIterate(1000);
      ASSERT_TRUE(r.converged);
      EXPECT_LE(r.steps, budget_p + 2);
    };
    if (budget_p == 0) run(TropPS<0>{});
    if (budget_p == 1) run(TropPS<1>{});
    if (budget_p == 2) run(TropPS<2>{});
    if (budget_p == 3) run(TropPS<3>{});
  }
}

TEST(PolySystem, TheoremBoundsRespectedOnRandomSystems) {
  // Random linear systems over Trop+_p must converge within
  // Σ_{i=1..N}(p+1)^i (Theorem 5.12). Exercise several (p, N).
  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> w(0.5, 5.0);
  auto run = [&](auto tag, int p) {
    using T = decltype(tag);
    for (int n : {1, 2, 3, 4}) {
      PolySystem<T> sys(n);
      for (int i = 0; i < n; ++i) {
        sys.poly(i).Add(Monomial<T>{T::FromScalar(w(rng)), {}, {}});
        for (int j = 0; j < n; ++j) {
          if ((i + j) % 2 == 0) {
            sys.poly(i).Add(
                Monomial<T>{T::FromScalar(w(rng)), {{j, 1}}, {}});
          }
        }
      }
      ASSERT_TRUE(sys.IsLinear());
      auto r = sys.NaiveIterate(1 << 20);
      ASSERT_TRUE(r.converged) << "p=" << p << " n=" << n;
      EXPECT_LE(static_cast<uint64_t>(r.steps), sys.ConvergenceBound(p))
          << "p=" << p << " n=" << n;
    }
  };
  run(TropPS<0>{}, 0);
  run(TropPS<1>{}, 1);
  run(TropPS<2>{}, 2);
}

TEST(PolySystem, ZeroStableSystemsConvergeInNSteps) {
  // Theorem 5.12(2): over a 0-stable semiring every polynomial system is
  // N-stable. Random quadratic systems over Trop+.
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> w(0.5, 5.0);
  for (int n : {1, 2, 4, 8, 16}) {
    PolySystem<TropS> sys(n);
    for (int i = 0; i < n; ++i) {
      sys.poly(i).Add(Monomial<TropS>{w(rng), {}, {}});
      int j = static_cast<int>(rng() % n);
      int k = static_cast<int>(rng() % n);
      sys.poly(i).Add(Monomial<TropS>{w(rng), {{j, 1}}, {}});
      Monomial<TropS> quad{w(rng), {{j, 1}, {k, 1}}, {}};
      quad.Normalize();
      sys.poly(i).Add(quad);
    }
    auto r = sys.NaiveIterate(10 * n + 10);
    ASSERT_TRUE(r.converged) << n;
    EXPECT_LE(r.steps, n) << n;
  }
}

TEST(PolySystem, RecursiveVariableAnalysis) {
  // x0 :- c          (non-recursive)
  // x1 :- x1 + x0    (on a cycle)
  // x2 :- x1         (reachable from a cycle → recursive)
  PolySystem<TropS> sys(3);
  sys.poly(0).Add(Monomial<TropS>{3.0, {}, {}});
  sys.poly(1).Add(Monomial<TropS>{TropS::One(), {{1, 1}}, {}});
  sys.poly(1).Add(Monomial<TropS>{TropS::One(), {{0, 1}}, {}});
  sys.poly(2).Add(Monomial<TropS>{TropS::One(), {{1, 1}}, {}});
  auto rec = sys.RecursiveVars();
  EXPECT_FALSE(rec[0]);
  EXPECT_TRUE(rec[1]);
  EXPECT_TRUE(rec[2]);
}

TEST(PolySystem, RecursiveVarsStayInCoreSemiring) {
  // Proposition 5.16 on the lifted naturals: the recursive variable's
  // iterates remain in N⊥+⊥ = {⊥} while the non-recursive one escapes.
  using L = Lifted<NatS>;
  PolySystem<L> sys(2);
  // x0 :- 5 (non-recursive); x1 :- x1 + 1 (recursive).
  sys.poly(0).Add(Monomial<L>{L::Lift(5), {}, {}});
  sys.poly(1).Add(Monomial<L>{L::One(), {{1, 1}}, {}});
  auto r = sys.NaiveIterate(10);
  ASSERT_TRUE(r.converged);  // ⊥ is a fixpoint of x ↦ x + 1 in N⊥
  EXPECT_TRUE(L::Eq(r.values[0], L::Lift(5)));
  EXPECT_TRUE(L::Eq(r.values[1], L::Bottom()));
}

TEST(PolySystem, Example515AbsorptionIn1StableSemiring) {
  // f(x) = a0 + a2 x² + a3 x³ + a4 x⁴ over a 1-stable semiring converges
  // with stability index ≥ 3 but ≤ p + 2 = 3 (Example 5.15). Trop+_1 is
  // 1-stable.
  using T = TropPS<1>;
  PolySystem<T> sys(1);
  sys.poly(0).Add(Monomial<T>{T::FromScalar(1.0), {}, {}});
  sys.poly(0).Add(Monomial<T>{T::FromScalar(2.0), {{0, 2}}, {}});
  sys.poly(0).Add(Monomial<T>{T::FromScalar(3.0), {{0, 3}}, {}});
  sys.poly(0).Add(Monomial<T>{T::FromScalar(4.0), {{0, 4}}, {}});
  auto r = sys.NaiveIterate(100);
  ASSERT_TRUE(r.converged);
  EXPECT_LE(r.steps, 3);
}

TEST(PolySystem, GeneralBoundHelpers) {
  EXPECT_EQ(GeneralConvergenceBound(0, 3), 2u + 4u + 8u);
  EXPECT_EQ(LinearConvergenceBound(1, 3), 2u + 4u + 8u);
  EXPECT_EQ(LinearConvergenceBound(0, 4), 4u);
  EXPECT_EQ(GeneralConvergenceBound(3, 64), kBoundInf);  // saturates
}

}  // namespace
}  // namespace datalogo
