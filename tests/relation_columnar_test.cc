// The columnar (struct-of-arrays) relation store: tombstone/revive/
// Compact lifecycle, row-id indexes, insertion-order independence, the
// single-probe Merge upsert, and a randomized-op property check against a
// reference std::map implementation of the same K-relation semantics.
#include <gtest/gtest.h>

#include <map>
#include <random>
#include <vector>

#include "src/relation/io.h"
#include "src/relation/relation.h"
#include "src/semiring/reals.h"
#include "src/semiring/tropical.h"

namespace datalogo {
namespace {

TEST(ColumnarRelation, TombstoneAndCompactLifecycle) {
  Relation<TropS> r(2);
  r.Set({1, 2}, 5.0);
  r.Set({3, 4}, 7.0);
  r.Set({5, 6}, 9.0);
  EXPECT_EQ(r.num_rows(), 3u);
  EXPECT_EQ(r.tombstones(), 0u);

  r.Set({3, 4}, TropS::Inf());  // ⊥ tombstones the row in place
  EXPECT_EQ(r.support_size(), 2u);
  EXPECT_EQ(r.num_rows(), 3u);
  EXPECT_EQ(r.tombstones(), 1u);
  EXPECT_EQ(r.Get({3, 4}), TropS::Inf());
  EXPECT_FALSE(r.Contains({3, 4}));

  uint64_t v = r.version();
  r.Compact();
  EXPECT_EQ(r.num_rows(), 2u);
  EXPECT_EQ(r.tombstones(), 0u);
  EXPECT_GT(r.version(), v) << "compaction renumbers rows: version must bump";
  EXPECT_EQ(r.Get({1, 2}), 5.0);
  EXPECT_EQ(r.Get({5, 6}), 9.0);

  // Compact with no tombstones: content-neutral, cached indexes (keyed by
  // the version) must stay valid.
  v = r.version();
  r.Compact();
  EXPECT_EQ(r.version(), v);
  EXPECT_EQ(r.num_rows(), 2u);
}

TEST(ColumnarRelation, EraseOfAbsentTupleKeepsVersion) {
  Relation<TropS> r(1);
  r.Set({1}, 2.0);
  uint64_t v = r.version();
  r.Set({9}, TropS::Inf());  // erasing outside the support: no-op
  EXPECT_EQ(r.version(), v);
  r.Set({1}, TropS::Inf());  // erasing a present tuple: mutation
  EXPECT_GT(r.version(), v);
}

TEST(ColumnarRelation, SetAfterEraseRevivesRowInPlace) {
  Relation<TropS> r(2);
  r.Set({1, 2}, 5.0);
  r.Set({1, 2}, TropS::Inf());
  EXPECT_EQ(r.num_rows(), 1u);
  EXPECT_EQ(r.support_size(), 0u);
  r.Set({1, 2}, 6.0);  // revives the tombstoned row, no new row appended
  EXPECT_EQ(r.num_rows(), 1u);
  EXPECT_EQ(r.support_size(), 1u);
  EXPECT_EQ(r.Get({1, 2}), 6.0);
}

TEST(ColumnarRelation, InsertionOrderIndependence) {
  // The same support reached through different insertion orders (and a
  // tombstone/revive detour) must compare Equals, render identically, and
  // dump identical TSV — row ids are storage details, not semantics.
  Domain dom;
  for (int i = 0; i < 8; ++i) dom.InternInt(i);
  Relation<TropS> a(2), b(2);
  a.Set({1, 2}, 1.0);
  a.Set({3, 4}, 2.0);
  a.Set({5, 6}, 3.0);
  b.Set({5, 6}, 3.0);
  b.Set({1, 2}, 9.0);
  b.Set({3, 4}, 2.0);
  b.Set({1, 2}, TropS::Inf());
  b.Set({1, 2}, 1.0);
  EXPECT_TRUE(a.Equals(b));
  EXPECT_TRUE(b.Equals(a));
  EXPECT_EQ(a.ToString(dom), b.ToString(dom));
  EXPECT_EQ(DumpTsv(a, dom), DumpTsv(b, dom));
}

TEST(ColumnarRelation, MergeSingleUpsertMatchesGetThenSet) {
  // The single-probe Merge upsert must be observationally identical to
  // the two-lookup reference r(t) ← Set(t, Get(t) ⊕ v), across inserts,
  // accumulations, and interleaved erases (RealPlusS: ⊕ = +, ⊥ = 0).
  std::mt19937 rng(42);
  Relation<RealPlusS> merged(2), reference(2);
  for (int step = 0; step < 2000; ++step) {
    ConstId x = rng() % 6, y = rng() % 6;
    if (rng() % 5 == 0) {
      merged.Set({x, y}, RealPlusS::Bottom());
      reference.Set({x, y}, RealPlusS::Bottom());
      continue;
    }
    double v = static_cast<double>(1 + rng() % 8);
    merged.Merge({x, y}, v);
    reference.Set({x, y}, RealPlusS::Plus(reference.Get({x, y}), v));
  }
  EXPECT_TRUE(merged.Equals(reference));
  EXPECT_TRUE(reference.Equals(merged));
  for (ConstId x = 0; x < 6; ++x) {
    for (ConstId y = 0; y < 6; ++y) {
      EXPECT_EQ(merged.Get({x, y}), reference.Get({x, y}));
    }
  }
}

TEST(ColumnarRelation, IndexSkipsTombstonesAndDecodesRowIds) {
  Relation<TropS> r(2);
  r.Set({1, 10}, 1.0);
  r.Set({1, 20}, 2.0);
  r.Set({2, 10}, 3.0);
  r.Set({1, 20}, TropS::Inf());  // tombstoned: must vanish from indexes

  RelationIndex<TropS> by_first(r, {0});
  ASSERT_EQ(by_first.Lookup({1}).size(), 1u);
  uint32_t row = by_first.Lookup({1})[0];
  EXPECT_TRUE(r.RowLive(row));
  EXPECT_EQ(r.Cell(row, 0), 1u);
  EXPECT_EQ(r.Cell(row, 1), 10u);
  EXPECT_EQ(r.ValueAt(row), 1.0);

  RelationIndex<TropS> scan(r, {});
  EXPECT_EQ(scan.Lookup({}).size(), 2u);  // full-scan group skips the dead row
  EXPECT_EQ(&by_first.relation(), &r);
}

TEST(ColumnarRelation, RowViewProbesAcrossRelations) {
  // Get/Set/Merge keyed by another relation's row view — the engine's
  // delta loops — must agree with the Tuple-keyed path.
  Relation<TropS> src(2), dst(2);
  src.Set({1, 2}, 4.0);
  src.Set({3, 4}, 8.0);
  dst.Set({1, 2}, 1.0);
  src.ForEachRow([&](uint32_t row) {
    dst.Merge(src.View(row), src.ValueAt(row));
  });
  EXPECT_EQ(dst.Get({1, 2}), 1.0);  // min(1, 4)
  EXPECT_EQ(dst.Get({3, 4}), 8.0);
  dst.Set(src.View(0), 0.5);
  EXPECT_EQ(dst.Get(src.View(0)), 0.5);
}

/// Reference model: plain ordered map with the same support invariant.
using RefMap = std::map<std::pair<ConstId, ConstId>, double>;

Relation<TropS> FromReference(const RefMap& ref) {
  Relation<TropS> out(2);
  for (const auto& [key, val] : ref) out.Set({key.first, key.second}, val);
  return out;
}

TEST(ColumnarRelation, RandomizedOpsMatchReferenceMap) {
  // Property test: an arbitrary interleaving of Set/Merge/erase/Clear/
  // Compact leaves the columnar store Equals-identical to a reference
  // map-based relation, in both directions, at every checkpoint.
  std::mt19937 rng(7);
  Relation<TropS> rel(2);
  RefMap ref;
  for (int step = 0; step < 5000; ++step) {
    int op = static_cast<int>(rng() % 100);
    ConstId x = rng() % 7, y = rng() % 7;
    if (op < 40) {
      double v = static_cast<double>(1 + rng() % 9);
      rel.Set({x, y}, v);
      ref[{x, y}] = v;
    } else if (op < 70) {
      double v = static_cast<double>(1 + rng() % 9);
      rel.Merge({x, y}, v);
      auto it = ref.find({x, y});
      if (it == ref.end()) {
        ref[{x, y}] = v;
      } else {
        it->second = TropS::Plus(it->second, v);
      }
    } else if (op < 85) {
      rel.Set({x, y}, TropS::Inf());
      ref.erase({x, y});
    } else if (op < 93) {
      rel.Compact();
    } else if (op < 95) {
      rel.Clear();
      ref.clear();
    } else {
      double got = rel.Get({x, y});
      auto it = ref.find({x, y});
      EXPECT_EQ(got, it == ref.end() ? TropS::Inf() : it->second);
    }
    ASSERT_EQ(rel.support_size(), ref.size()) << "step " << step;
    if (step % 97 == 0) {
      Relation<TropS> mirror = FromReference(ref);
      ASSERT_TRUE(rel.Equals(mirror)) << "step " << step;
      ASSERT_TRUE(mirror.Equals(rel)) << "step " << step;
    }
  }
  Relation<TropS> mirror = FromReference(ref);
  EXPECT_TRUE(rel.Equals(mirror));
  EXPECT_TRUE(mirror.Equals(rel));
}

TEST(ColumnarRelation, ValueDataMirrorsValueAt) {
  // value_data() is the raw span the vectorized value plane gathers
  // from: it must see exactly the ValueAt() column, in row order, at
  // Value granularity (the ValueCell wrapper is layout-compatible), and
  // tombstoned rows keep their slot (row ids stay stable).
  Relation<TropS> r(2);
  r.Set({1, 2}, 5.0);
  r.Set({3, 4}, 7.0);
  r.Set({5, 6}, 9.0);
  r.Set({3, 4}, TropS::Inf());  // tombstone in the middle
  const double* vd = r.value_data();
  ASSERT_EQ(r.num_rows(), 3u);
  for (uint32_t row = 0; row < r.num_rows(); ++row) {
    EXPECT_EQ(vd[row], r.ValueAt(row)) << "row " << row;
  }
  // Mutation through Merge must be visible through the same span (the
  // pointer may move on growth; re-fetch like the engine does per drain).
  r.Merge({5, 6}, 4.0);
  EXPECT_EQ(r.value_data()[2], 4.0);

  // A non-double carrier: u64 hop counts.
  Relation<TropNatS> h(1);
  h.Set({1}, uint64_t{3});
  h.Set({2}, uint64_t{7});
  const uint64_t* hd = h.value_data();
  EXPECT_EQ(hd[0], 3u);
  EXPECT_EQ(hd[1], 7u);
}

TEST(ColumnarRelation, CopyAndMoveSemantics) {
  Relation<TropS> a(2);
  a.Set({1, 2}, 3.0);
  a.Set({4, 5}, 6.0);
  a.Set({1, 2}, TropS::Inf());  // leave a tombstone in the source

  Relation<TropS> copy(a);
  EXPECT_NE(copy.uid(), a.uid()) << "copies are new objects";
  EXPECT_TRUE(copy.Equals(a));

  uint64_t src_version = a.version();
  Relation<TropS> moved(std::move(a));
  EXPECT_TRUE(moved.Equals(copy));
  EXPECT_EQ(a.support_size(), 0u);  // moved-from: empty but usable
  EXPECT_GT(a.version(), src_version);
  a.Set({7, 7}, 1.0);
  EXPECT_EQ(a.Get({7, 7}), 1.0);
}

}  // namespace
}  // namespace datalogo
