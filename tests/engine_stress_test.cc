// Stress and cross-engine agreement sweeps beyond the core suites:
// more semirings, mutual recursion, conditions in recursion, divergence
// budgets, and degenerate instances.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdlib>
#include <random>
#include <sstream>

#include "src/datalogo.h"
#include "tests/ci_knob.h"

namespace datalogo {
namespace {

constexpr const char* kTc = R"(
  edb E/2.
  idb T/2.
  T(X,Y) :- E(X,Y) ; T(X,Z) * E(Z,Y).
)";

template <NaturallyOrderedSemiring P, typename F>
void ExpectEnginesAgree(const Graph& g, F&& lift, uint64_t seed) {
  Domain dom;
  auto prog = ParseProgram(kTc, &dom);
  ASSERT_TRUE(prog.ok());
  std::vector<ConstId> ids = InternVertices(g.num_vertices(), &dom);
  EdbInstance<P> edb(prog.value());
  LoadEdges<P>(g, ids, lift, &edb.pops(prog.value().FindPredicate("E")));
  Engine<P> engine(prog.value(), edb);
  auto support = engine.Naive(100000);
  ASSERT_TRUE(support.converged) << P::kName << " seed " << seed;
  auto grounded = GroundProgram<P>(prog.value(), edb);
  auto poly = grounded.NaiveIterate(100000);
  ASSERT_TRUE(poly.converged) << P::kName << " seed " << seed;
  EXPECT_TRUE(grounded.Decode(poly.values).Equals(support.idb))
      << P::kName << " seed " << seed;
}

TEST(EngineStress, CrossEngineAgreementAcrossSemirings) {
  const uint64_t seeds = static_cast<uint64_t>(CiIterations(5, 2));
  for (uint64_t seed = 0; seed < seeds; ++seed) {
    Graph g = RandomGraph(6, 14, seed * 3 + 1);
    ExpectEnginesAgree<TropNatS>(
        g, [](const Edge& e) { return static_cast<uint64_t>(e.weight); },
        seed);
    ExpectEnginesAgree<FuzzyS>(
        g, [](const Edge& e) { return 1.0 / (1.0 + e.weight); }, seed);
    ExpectEnginesAgree<ViterbiS>(
        g, [](const Edge& e) { return 1.0 / (1.0 + e.weight); }, seed);
    // N on a DAG only (cycles diverge by design).
    Graph dag = LayeredDag(3, 2, 0.8, seed);
    ExpectEnginesAgree<NatS>(
        dag, [](const Edge&) { return static_cast<uint64_t>(1); }, seed);
  }
}

TEST(EngineStress, MutualRecursionEvenOddPaths) {
  // Even(X,Y): path of even length; Odd(X,Y): odd length.
  constexpr const char* kText = R"(
    edb E/2.
    idb Odd/2.
    idb Even/2.
    Odd(X,Y) :- E(X,Y) ; Even(X,Z) * E(Z,Y).
    Even(X,Y) :- Odd(X,Z) * E(Z,Y).
  )";
  Domain dom;
  auto prog = ParseProgram(kText, &dom);
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  ASSERT_TRUE(ValidateProgram(prog.value()).ok());
  Graph g = CycleGraph(5);  // odd cycle: eventually all pairs both ways
  std::vector<ConstId> ids = InternVertices(5, &dom);
  EdbInstance<BoolS> edb(prog.value());
  LoadEdges<BoolS>(g, ids, [](const Edge&) { return true; },
                   &edb.pops(prog.value().FindPredicate("E")));
  Engine<BoolS> engine(prog.value(), edb);
  auto naive = engine.Naive(1000);
  auto semi = engine.SemiNaive(1000);
  ASSERT_TRUE(naive.converged && semi.converged);
  EXPECT_TRUE(naive.idb.Equals(semi.idb));
  // On an odd cycle, every ordered pair is reachable by both parities.
  int even = prog.value().FindPredicate("Even");
  int odd = prog.value().FindPredicate("Odd");
  EXPECT_EQ(naive.idb.idb(even).support_size(), 25u);
  EXPECT_EQ(naive.idb.idb(odd).support_size(), 25u);
}

TEST(EngineStress, ConditionsInsideRecursion) {
  // Shortest paths avoiding "blocked" vertices.
  constexpr const char* kText = R"(
    edb E/2.
    bedb Blocked/1.
    idb L/1.
    L(X) :- [X = v0] ; { L(Z) * E(Z, X) | !Blocked(X) }.
  )";
  Domain dom;
  auto prog = ParseProgram(kText, &dom);
  ASSERT_TRUE(prog.ok());
  ASSERT_TRUE(ValidateProgram(prog.value()).ok());
  Graph g(4);
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(1, 2, 1.0);
  g.AddEdge(0, 3, 5.0);
  g.AddEdge(3, 2, 1.0);
  std::vector<ConstId> ids = InternVertices(4, &dom);
  EdbInstance<TropS> edb(prog.value());
  LoadEdges<TropS>(g, ids, [](const Edge& e) { return e.weight; },
                   &edb.pops(prog.value().FindPredicate("E")));
  edb.boolean(prog.value().FindPredicate("Blocked")).Set({ids[1]}, true);
  Engine<TropS> engine(prog.value(), edb);
  auto r = engine.Naive(100);
  ASSERT_TRUE(r.converged);
  int l = prog.value().FindPredicate("L");
  EXPECT_EQ(r.idb.idb(l).Get({ids[1]}), TropS::Inf());  // blocked
  EXPECT_EQ(r.idb.idb(l).Get({ids[2]}), 6.0);           // detour via 3
}

TEST(EngineStress, DivergenceBudgetIsRespected) {
  Domain dom;
  auto prog = ParseProgram(kTc, &dom);
  ASSERT_TRUE(prog.ok());
  Graph g = CycleGraph(3);
  std::vector<ConstId> ids = InternVertices(3, &dom);
  EdbInstance<NatS> edb(prog.value());
  LoadEdges<NatS>(g, ids, [](const Edge&) { return uint64_t{2}; },
                  &edb.pops(prog.value().FindPredicate("E")));
  Engine<NatS> engine(prog.value(), edb);
  auto r = engine.Naive(17);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.steps, 17);
}

TEST(EngineStress, SelfLoopsAndParallelEdges) {
  Domain dom;
  auto prog = ParseProgram(kTc, &dom);
  ASSERT_TRUE(prog.ok());
  Graph g(2);
  g.AddEdge(0, 0, 3.0);
  g.AddEdge(0, 1, 7.0);
  g.AddEdge(0, 1, 2.0);  // parallel, cheaper
  std::vector<ConstId> ids = InternVertices(2, &dom);
  EdbInstance<TropS> edb(prog.value());
  LoadEdges<TropS>(g, ids, [](const Edge& e) { return e.weight; },
                   &edb.pops(prog.value().FindPredicate("E")));
  Engine<TropS> engine(prog.value(), edb);
  auto r = engine.Naive(100);
  ASSERT_TRUE(r.converged);
  int t = prog.value().FindPredicate("T");
  EXPECT_EQ(r.idb.idb(t).Get({ids[0], ids[0]}), 3.0);
  EXPECT_EQ(r.idb.idb(t).Get({ids[0], ids[1]}), 2.0);  // min of parallels
}

TEST(EngineStress, LargerRandomSweepSemiNaiveEqualsNaive) {
  const uint64_t seeds = static_cast<uint64_t>(CiIterations(3, 1));
  for (uint64_t seed = 0; seed < seeds; ++seed) {
    Domain dom;
    auto prog = ParseProgram(kTc, &dom);
    ASSERT_TRUE(prog.ok());
    Graph g = RandomGraph(40, 160, seed + 500);
    std::vector<ConstId> ids = InternVertices(40, &dom);
    EdbInstance<TropS> edb(prog.value());
    LoadEdges<TropS>(g, ids, [](const Edge& e) { return e.weight; },
                     &edb.pops(prog.value().FindPredicate("E")));
    Engine<TropS> engine(prog.value(), edb);
    auto naive = engine.Naive(100000);
    auto semi = engine.SemiNaive(100000);
    auto nodiff = engine.SemiNaiveNonDifferential(100000);
    ASSERT_TRUE(naive.converged && semi.converged && nodiff.converged);
    EXPECT_TRUE(naive.idb.Equals(semi.idb)) << seed;
    EXPECT_TRUE(naive.idb.Equals(nodiff.idb)) << seed;
  }
}

TEST(EngineStress, IndexCacheInvalidatesOnEdbMutation) {
  // The engine caches RelationIndexes (EngineOptions::cache_indexes, on
  // by default); mutating the EDB between runs must invalidate them, so a
  // rerun sees the new data exactly like the uncached engine does.
  Domain dom;
  auto prog = ParseProgram(kTc, &dom);
  ASSERT_TRUE(prog.ok());
  std::vector<ConstId> ids = InternVertices(3, &dom);
  EdbInstance<TropS> edb(prog.value());
  int e = prog.value().FindPredicate("E");
  int t = prog.value().FindPredicate("T");
  edb.pops(e).Set({ids[0], ids[1]}, 5.0);
  Engine<TropS> cached(prog.value(), edb);
  Engine<TropS> uncached(prog.value(), edb,
                         EngineOptions{.cache_indexes = false});
  auto first = cached.Naive(100);
  ASSERT_TRUE(first.converged);
  EXPECT_EQ(first.idb.idb(t).Get({ids[0], ids[1]}), 5.0);
  EXPECT_GT(cached.index_hits(), 0u);

  edb.pops(e).Set({ids[0], ids[1]}, 2.0);
  edb.pops(e).Set({ids[1], ids[2]}, 1.0);
  auto second = cached.Naive(100);
  auto reference = uncached.Naive(100);
  ASSERT_TRUE(second.converged && reference.converged);
  EXPECT_EQ(second.idb.idb(t).Get({ids[0], ids[1]}), 2.0);
  EXPECT_EQ(second.idb.idb(t).Get({ids[0], ids[2]}), 3.0);
  EXPECT_TRUE(second.idb.Equals(reference.idb));
}

TEST(EngineStress, CachedEngineAgreesWithUncachedAndBuildsFewerIndexes) {
  for (uint64_t seed = 0; seed < 3; ++seed) {
    Domain dom;
    auto prog = ParseProgram(kTc, &dom);
    ASSERT_TRUE(prog.ok());
    Graph g = RandomGraph(25, 80, seed + 77);
    std::vector<ConstId> ids = InternVertices(25, &dom);
    EdbInstance<TropS> edb(prog.value());
    LoadEdges<TropS>(g, ids, [](const Edge& e) { return e.weight; },
                     &edb.pops(prog.value().FindPredicate("E")));
    Engine<TropS> cached(prog.value(), edb);
    Engine<TropS> uncached(prog.value(), edb,
                           EngineOptions{.cache_indexes = false});
    auto cn = cached.Naive(100000);
    auto un = uncached.Naive(100000);
    ASSERT_TRUE(cn.converged && un.converged);
    EXPECT_TRUE(cn.idb.Equals(un.idb)) << seed;
    auto cs = cached.SemiNaive(100000);
    auto us = uncached.SemiNaive(100000);
    ASSERT_TRUE(cs.converged && us.converged);
    EXPECT_TRUE(cs.idb.Equals(us.idb)) << seed;
    EXPECT_LT(cached.index_builds(), uncached.index_builds()) << seed;
    EXPECT_GT(cached.index_hits(), 0u) << seed;
  }
}

/// Thread count for the parallel stress sweep: DATALOGO_THREADS if set
/// (the tsan CI preset exports 4), else 4.
int StressThreads() {
  const char* v = std::getenv("DATALOGO_THREADS");
  if (v != nullptr && v[0] != '\0') {
    int t = std::atoi(v);
    if (t >= 1) return t;
  }
  return 4;
}

TEST(EngineStress, ParallelRandomProgramsMatchSequential) {
  // Randomized programs (1-2 IDB predicates, 1-3 disjuncts each, sampled
  // from a range-restricted template grammar) over randomized EDBs: the
  // parallel engine must reproduce the sequential fixpoint, work counter
  // and iteration count exactly, across thread counts, shard sizes —
  // including shard_rows = 1, one task per driver entry — and join
  // kernels (the sequential reference is pinned to the scalar kernel;
  // the parallel engine samples scalar or batched-SIMD per case).
  const int cases = CiIterations(12, 4);
  const int env_threads = StressThreads();
  std::mt19937_64 rng(0xD47A1060u);
  for (int c = 0; c < cases; ++c) {
    std::ostringstream text;
    const bool two_idb = rng() % 2 == 0;
    text << "edb E/2.\nidb T/2.\n";
    if (two_idb) text << "idb U/2.\n";
    text << "T(X,Y) :- E(X,Y)";
    if (rng() % 2 == 0) text << " ; T(X,Z) * E(Z,Y)";
    if (rng() % 2 == 0) text << " ; T(X,Z) * T(Z,Y)";
    if (rng() % 2 == 0) text << " ; T(X,X) * E(X,Y)";  // repeated-var check
    if (rng() % 3 == 0) text << " ; { E(X,Z) * E(Z,Y) | X != Y }";
    text << ".\n";
    if (two_idb) {
      text << "U(X,Y) :- T(X,Y)";
      if (rng() % 2 == 0) text << " ; U(X,Z) * E(Z,Y)";
      if (rng() % 2 == 0) text << " ; E(X,X) * T(X,Y)";  // check on EDB
      text << ".\n";
    }
    SCOPED_TRACE(::testing::Message() << "case " << c << ":\n" << text.str());
    Domain dom;
    auto prog = ParseProgram(text.str(), &dom);
    ASSERT_TRUE(prog.ok()) << prog.status().ToString();
    ASSERT_TRUE(ValidateProgram(prog.value()).ok());
    const int n = 6 + static_cast<int>(rng() % 18);
    const int m = n + static_cast<int>(rng() % (3 * n));
    Graph g = RandomGraph(n, m, rng());
    std::vector<ConstId> ids = InternVertices(n, &dom);
    EdbInstance<TropS> edb(prog.value());
    LoadEdges<TropS>(g, ids, [](const Edge& e) { return e.weight; },
                     &edb.pops(prog.value().FindPredicate("E")));

    Engine<TropS> seq(prog.value(), edb,
                      EngineOptions{.scan_kernel = ScanKernel::kScalar});
    auto base_naive = seq.Naive(100000);
    auto base_semi = seq.SemiNaive(100000);
    ASSERT_TRUE(base_naive.converged && base_semi.converged);

    const int threads = c % 2 == 0 ? env_threads : 2 + static_cast<int>(rng() % 2);
    const int shard_rows = std::array{1, 8, 512}[rng() % 3];
    const ScanKernel scan =
        rng() % 2 == 0 ? ScanKernel::kSimd : ScanKernel::kScalar;
    SCOPED_TRACE(::testing::Message()
                 << "threads=" << threads << " shard_rows=" << shard_rows
                 << " scan=" << (scan == ScanKernel::kSimd ? "simd" : "scalar"));
    Engine<TropS> par(prog.value(), edb,
                      EngineOptions{.num_threads = threads,
                                    .shard_rows = shard_rows,
                                    .scan_kernel = scan});
    auto par_naive = par.Naive(100000);
    auto par_semi = par.SemiNaive(100000);
    ASSERT_TRUE(par_naive.converged && par_semi.converged);
    EXPECT_TRUE(par_naive.idb.Equals(base_naive.idb));
    EXPECT_TRUE(par_semi.idb.Equals(base_semi.idb));
    EXPECT_EQ(par_naive.work, base_naive.work);
    EXPECT_EQ(par_semi.work, base_semi.work);
    EXPECT_EQ(par_naive.steps, base_naive.steps);
    EXPECT_EQ(par_semi.steps, base_semi.steps);
    // Every visited entry goes through the batched path, or none does.
    if (scan == ScanKernel::kSimd) {
      EXPECT_EQ(par.join_batched_rows(), par_naive.work + par_semi.work);
    } else {
      EXPECT_EQ(par.join_batched_rows(), 0u);
    }
  }
}

TEST(EngineStress, BatchedJoinKernelMatchesScalarOnRandomPrograms) {
  // The dedicated scan-kernel sweep: random programs biased toward
  // repeated-variable atoms (T(X,X), E(X,X) — the patterns that compile
  // to check ops and exercise the gather/compare/compress path) plus
  // residual conditions, run under both kernels at 1 and 4 threads. The
  // batched kernel must reproduce the scalar fixpoint, work and steps
  // exactly, and count every visited entry into join_batched_rows.
  const int cases = CiIterations(10, 4);
  std::mt19937_64 rng(0xBA7C4ED0u);
  for (int c = 0; c < cases; ++c) {
    std::ostringstream text;
    text << "edb E/2.\nidb T/2.\nidb U/2.\n";
    text << "T(X,Y) :- E(X,Y)";
    if (rng() % 2 == 0) text << " ; T(X,X) * E(X,Y)";
    if (rng() % 2 == 0) text << " ; T(X,Z) * E(Z,Y)";
    text << ".\n";
    text << "U(X,Y) :- E(X,X) * T(X,Y)";
    if (rng() % 2 == 0) text << " ; U(X,X) * T(X,Y)";
    if (rng() % 3 == 0) text << " ; { T(X,Z) * T(Z,Y) | X != Y }";
    text << ".\n";
    SCOPED_TRACE(::testing::Message() << "case " << c << ":\n" << text.str());
    Domain dom;
    auto prog = ParseProgram(text.str(), &dom);
    ASSERT_TRUE(prog.ok()) << prog.status().ToString();
    ASSERT_TRUE(ValidateProgram(prog.value()).ok());
    const int n = 5 + static_cast<int>(rng() % 12);
    const int m = 2 * n + static_cast<int>(rng() % (2 * n));
    Graph g = RandomGraph(n, m, rng());
    // Guarantee some self-loops so the checks have surviving rows, not
    // just failing ones.
    for (int v = 0; v < n; v += 3) g.AddEdge(v, v, 1.0);
    std::vector<ConstId> ids = InternVertices(n, &dom);
    EdbInstance<TropS> edb(prog.value());
    LoadEdges<TropS>(g, ids, [](const Edge& e) { return e.weight; },
                     &edb.pops(prog.value().FindPredicate("E")));

    Engine<TropS> scalar(prog.value(), edb,
                         EngineOptions{.scan_kernel = ScanKernel::kScalar});
    auto ref_naive = scalar.Naive(100000);
    auto ref_semi = scalar.SemiNaive(100000);
    ASSERT_TRUE(ref_naive.converged && ref_semi.converged);
    EXPECT_EQ(scalar.join_batched_rows(), 0u);

    for (int threads : {1, 4}) {
      SCOPED_TRACE(::testing::Message() << "threads=" << threads);
      Engine<TropS> batched(prog.value(), edb,
                            EngineOptions{.num_threads = threads,
                                          .scan_kernel = ScanKernel::kSimd});
      auto got_naive = batched.Naive(100000);
      auto got_semi = batched.SemiNaive(100000);
      ASSERT_TRUE(got_naive.converged && got_semi.converged);
      EXPECT_TRUE(got_naive.idb.Equals(ref_naive.idb));
      EXPECT_TRUE(got_semi.idb.Equals(ref_semi.idb));
      EXPECT_EQ(got_naive.work, ref_naive.work);
      EXPECT_EQ(got_semi.work, ref_semi.work);
      EXPECT_EQ(got_naive.steps, ref_naive.steps);
      EXPECT_EQ(got_semi.steps, ref_semi.steps);
      EXPECT_EQ(batched.join_batched_rows(), got_naive.work + got_semi.work);
    }
  }
}

TEST(EngineStress, OrderedSchedulerMatchesSweepOnRandomPrograms) {
  // Randomized stratified/mutually recursive programs over randomized
  // EDBs: the ordered scheduler (reliance SCC groups, triggered-rule
  // local fixpoints) must reproduce the sweep fixpoint for naive and
  // semi-naive, serially and in parallel, with no more join work.
  const int cases = CiIterations(12, 4);
  const int env_threads = StressThreads();
  std::mt19937_64 rng(0x5CC0DE01u);
  for (int c = 0; c < cases; ++c) {
    std::ostringstream text;
    const bool mutual = rng() % 2 == 0;
    const bool closure = rng() % 2 == 0;
    text << "edb E/2.\nidb T/2.\n";
    if (mutual) text << "idb U/2.\n";
    if (closure) text << "idb V/2.\n";
    // Split base and step into separate rules so T's SCC condensation
    // yields distinct groups (base rule vs recursive component).
    text << "T(X,Y) :- E(X,Y).\n";
    if (mutual) {
      text << "T(X,Y) :- U(X,Z) * E(Z,Y).\n";
      text << "U(X,Y) :- T(X,Z) * E(Z,Y).\n";
    } else if (rng() % 2 == 0) {
      text << "T(X,Y) :- T(X,Z) * E(Z,Y).\n";
    }
    if (closure) {
      text << "V(X,Y) :- T(X,Y)";
      if (rng() % 2 == 0) text << " ; V(X,Z) * V(Z,Y)";
      text << ".\n";
    }
    SCOPED_TRACE(::testing::Message() << "case " << c << ":\n" << text.str());
    Domain dom;
    auto prog = ParseProgram(text.str(), &dom);
    ASSERT_TRUE(prog.ok()) << prog.status().ToString();
    ASSERT_TRUE(ValidateProgram(prog.value()).ok());
    const int n = 6 + static_cast<int>(rng() % 18);
    const int m = n + static_cast<int>(rng() % (3 * n));
    Graph g = RandomGraph(n, m, rng());
    std::vector<ConstId> ids = InternVertices(n, &dom);
    EdbInstance<TropS> edb(prog.value());
    LoadEdges<TropS>(g, ids, [](const Edge& e) { return e.weight; },
                     &edb.pops(prog.value().FindPredicate("E")));

    Engine<TropS> sweep(prog.value(), edb);
    auto sweep_naive = sweep.Naive(100000);
    auto sweep_semi = sweep.SemiNaive(100000);
    ASSERT_TRUE(sweep_naive.converged && sweep_semi.converged);

    const int threads =
        c % 2 == 0 ? 1 : std::max(2, env_threads % 8);
    SCOPED_TRACE(::testing::Message() << "threads=" << threads);
    Engine<TropS> ordered(prog.value(), edb,
                          EngineOptions{.num_threads = threads,
                                        .scheduler = Scheduler::kOrdered});
    auto ord_naive = ordered.Naive(100000);
    auto ord_semi = ordered.SemiNaive(100000);
    ASSERT_TRUE(ord_naive.converged && ord_semi.converged);
    EXPECT_TRUE(ord_naive.idb.Equals(sweep_naive.idb));
    EXPECT_TRUE(ord_semi.idb.Equals(sweep_semi.idb));
    EXPECT_LE(ord_semi.work, sweep_semi.work);
    // Base/step rule split guarantees multiple groups whenever any
    // recursive or downstream rule was sampled.
    if (mutual || closure) EXPECT_GE(ordered.reliance().num_groups(), 2);
  }
}

TEST(EngineStress, TropPTopKPathsMatchEnumeration) {
  // Over Trop+_2 the APSP fixpoint holds the 3 cheapest WALK lengths;
  // verify against brute-force walk enumeration on a small graph.
  using T = TropPS<2>;
  Domain dom;
  auto prog = ParseProgram(kTc, &dom);
  ASSERT_TRUE(prog.ok());
  Graph g(3);
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(1, 2, 2.0);
  g.AddEdge(2, 0, 4.0);
  g.AddEdge(0, 2, 10.0);
  std::vector<ConstId> ids = InternVertices(3, &dom);
  EdbInstance<T> edb(prog.value());
  LoadEdges<T>(g, ids,
               [](const Edge& e) { return T::FromScalar(e.weight); },
               &edb.pops(prog.value().FindPredicate("E")));
  auto grounded = GroundProgram<T>(prog.value(), edb);
  auto iter = grounded.NaiveIterate(10000);
  ASSERT_TRUE(iter.converged);

  // Brute-force: enumerate walks up to length 12 edges.
  std::vector<std::vector<std::vector<double>>> walks(
      3, std::vector<std::vector<double>>(3));
  struct Item {
    int v;
    double len;
    int edges;
  };
  std::vector<Item> frontier = {{0, 0, 0}};
  for (int start = 0; start < 3; ++start) {
    std::vector<Item> layer = {{start, 0.0, 0}};
    for (int step = 0; step < 12; ++step) {
      std::vector<Item> next;
      for (const Item& it : layer) {
        for (const Edge& e : g.edges()) {
          if (e.src != it.v) continue;
          next.push_back({e.dst, it.len + e.weight, it.edges + 1});
          walks[start][e.dst].push_back(it.len + e.weight);
        }
      }
      layer = std::move(next);
    }
  }
  int t = prog.value().FindPredicate("T");
  for (int s = 0; s < 3; ++s) {
    for (int v = 0; v < 3; ++v) {
      std::sort(walks[s][v].begin(), walks[s][v].end());
      int var = grounded.VarOf(t, {ids[s], ids[v]});
      const T::Value& got = iter.values[var];
      for (int k = 0; k < 3 && k < static_cast<int>(walks[s][v].size());
           ++k) {
        EXPECT_DOUBLE_EQ(got[k], walks[s][v][k])
            << s << "->" << v << " k=" << k;
      }
    }
  }
}

}  // namespace
}  // namespace datalogo
