// Tiered-index determinism: the engine's fixpoints, `work`, and all four
// index-cache counters must be bit-identical across every index tier
// (--index=hash|direct|auto), scan kernel (--scan=scalar|simd), thread
// count, and scheduler — the tiers may only move probe *cost* (visible
// through the separate hash_probes/direct_probes counters). Workloads
// are the equivalence-suite goldens (Boolean / Tropical / PosBool
// provenance), each run naive and semi-naive.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/datalogo.h"
#include "src/semiring/provenance.h"

namespace datalogo {
namespace {

constexpr const char* kLinearTc = R"(
  edb E/2.
  idb T/2.
  T(X,Y) :- E(X,Y) ; T(X,Z) * E(Z,Y).
)";

constexpr const char* kQuadraticTc = R"(
  edb E/2.
  idb T/2.
  T(X,Y) :- E(X,Y) ; T(X,Z) * T(Z,Y).
)";

constexpr const char* kSssp = R"(
  edb E/2.
  idb L/1.
  L(X) :- [X = v0] ; L(Z) * E(Z, X).
)";

Graph ChainGraph(int n) {
  Graph g(n);
  for (int i = 0; i + 1 < n; ++i) g.AddEdge(i, i + 1, 1.0);
  return g;
}

/// The counters that must be pinned across every engine configuration.
struct PinnedCounters {
  uint64_t work = 0;
  uint64_t index_builds = 0;
  uint64_t index_hits = 0;
  uint64_t idb_index_builds = 0;
  uint64_t idb_index_hits = 0;
  bool operator==(const PinnedCounters&) const = default;
};

std::ostream& operator<<(std::ostream& os, const PinnedCounters& c) {
  return os << "{work=" << c.work << " builds=" << c.index_builds
            << " hits=" << c.index_hits << " idb_builds=" << c.idb_index_builds
            << " idb_hits=" << c.idb_index_hits << "}";
}

template <Pops P>
struct RunResult {
  EvalResult<P> eval;
  PinnedCounters pinned;
  uint64_t hash_probes = 0;
  uint64_t direct_probes = 0;
  uint64_t incremental_appends = 0;
  uint64_t join_batched_rows = 0;
  uint64_t values_batched = 0;
};

template <Pops P>
RunResult<P> RunOnce(const Program& prog, const EdbInstance<P>& edb,
                     bool semi, const EngineOptions& opts) {
  Engine<P> engine(prog, edb, opts);
  RunResult<P> out{semi ? engine.SemiNaive(1 << 20) : engine.Naive(1 << 20)};
  out.pinned = {out.eval.work, engine.index_builds(), engine.index_hits(),
                engine.idb_index_builds(), engine.idb_index_hits()};
  out.hash_probes = engine.hash_probes();
  out.direct_probes = engine.direct_probes();
  out.incremental_appends = engine.idx_incremental_appends();
  out.join_batched_rows = engine.join_batched_rows();
  out.values_batched = engine.values_batched();
  // The join-kernel totality invariant: under the batched kernel every
  // visited entry is decoded through the vector path; under the scalar
  // kernel none is. The value plane additionally needs value_kernel =
  // kSimd and an opted-in semiring.
  if (opts.scan_kernel == ScanKernel::kSimd) {
    EXPECT_EQ(out.join_batched_rows, out.eval.work);
  } else {
    EXPECT_EQ(out.join_batched_rows, 0u);
  }
  if (opts.scan_kernel != ScanKernel::kSimd ||
      opts.value_kernel != ScanKernel::kSimd || !VectorizedValuePlane<P>) {
    EXPECT_EQ(out.values_batched, 0u);
  }
  return out;
}

std::string ConfigName(IndexKind kind, ScanKernel scan, int threads,
                       Scheduler sched) {
  std::string s = kind == IndexKind::kHash     ? "hash"
                  : kind == IndexKind::kDirect ? "direct"
                                               : "auto";
  s += scan == ScanKernel::kScalar ? "/scalar" : "/simd";
  s += "/t" + std::to_string(threads);
  s += sched == Scheduler::kOrdered ? "/ordered" : "/sweep";
  return s;
}

/// Runs the reference configuration (hash tier, scalar scans, one
/// thread, sweep scheduler), then the full cross of
/// {hash,direct,auto} × {scalar,simd} × threads {1,4} × {sweep,ordered},
/// asserting each run's fixpoint and pinned counters match the
/// reference exactly — for naive AND semi-naive.
template <Pops P>
  requires CompleteDistributiveDioid<P> && NaturallyOrderedSemiring<P>
void ExpectBitIdenticalAcrossConfigs(const Program& prog,
                                     const EdbInstance<P>& edb,
                                     uint64_t golden_naive_work,
                                     uint64_t golden_semi_work) {
  const EngineOptions ref_opts{.num_threads = 1,
                               .scheduler = Scheduler::kSweep,
                               .index_kind = IndexKind::kHash,
                               .scan_kernel = ScanKernel::kScalar,
                               .value_kernel = ScanKernel::kScalar};
  RunResult<P> ref_naive = RunOnce(prog, edb, /*semi=*/false, ref_opts);
  RunResult<P> ref_semi = RunOnce(prog, edb, /*semi=*/true, ref_opts);
  ASSERT_TRUE(ref_naive.eval.converged);
  ASSERT_TRUE(ref_semi.eval.converged);
  EXPECT_EQ(ref_naive.pinned.work, golden_naive_work);
  EXPECT_EQ(ref_semi.pinned.work, golden_semi_work);
  // The reference tier hashes everything — including driver lookups.
  EXPECT_EQ(ref_naive.direct_probes, 0u);
  EXPECT_EQ(ref_semi.direct_probes, 0u);

  // values_batched moves with the kernel pair, but within (simd, simd)
  // it must be one constant across tiers, threads and schedulers.
  uint64_t vb_naive_golden = 0;
  uint64_t vb_semi_golden = 0;
  for (IndexKind kind :
       {IndexKind::kHash, IndexKind::kDirect, IndexKind::kAuto}) {
    for (ScanKernel scan : {ScanKernel::kScalar, ScanKernel::kSimd}) {
      for (ScanKernel values : {ScanKernel::kScalar, ScanKernel::kSimd}) {
        for (int threads : {1, 4}) {
          for (Scheduler sched : {Scheduler::kSweep, Scheduler::kOrdered}) {
            SCOPED_TRACE(ConfigName(kind, scan, threads, sched) +
                         (values == ScanKernel::kSimd ? "/vsimd" : "/vscalar"));
            const EngineOptions opts{.num_threads = threads,
                                     .scheduler = sched,
                                     .index_kind = kind,
                                     .scan_kernel = scan,
                                     .value_kernel = values};
            RunResult<P> naive = RunOnce(prog, edb, /*semi=*/false, opts);
            RunResult<P> semi = RunOnce(prog, edb, /*semi=*/true, opts);
            ASSERT_TRUE(naive.eval.converged);
            ASSERT_TRUE(semi.eval.converged);
            EXPECT_TRUE(naive.eval.idb.Equals(ref_naive.eval.idb));
            EXPECT_TRUE(semi.eval.idb.Equals(ref_semi.eval.idb));
            EXPECT_EQ(naive.pinned, ref_naive.pinned);
            EXPECT_EQ(semi.pinned, ref_semi.pinned);
            if (kind == IndexKind::kHash) {
              // Forced hash must never take the offset-addressed path.
              EXPECT_EQ(naive.direct_probes, 0u);
              EXPECT_EQ(semi.direct_probes, 0u);
            }
            if (scan == ScanKernel::kSimd && values == ScanKernel::kSimd &&
                VectorizedValuePlane<P>) {
              if (vb_naive_golden == 0) {
                vb_naive_golden = naive.values_batched;
                vb_semi_golden = semi.values_batched;
              }
              EXPECT_EQ(naive.values_batched, vb_naive_golden);
              EXPECT_EQ(semi.values_batched, vb_semi_golden);
            }
          }
        }
      }
    }
  }
}

template <Pops P>
  requires CompleteDistributiveDioid<P> && NaturallyOrderedSemiring<P>
void ExpectBitIdenticalOnGraph(const char* text, const Graph& g, auto&& lift,
                               uint64_t golden_naive_work,
                               uint64_t golden_semi_work) {
  Domain dom;
  auto prog = ParseProgram(text, &dom).value();
  std::vector<ConstId> ids = InternVertices(g.num_vertices(), &dom);
  EdbInstance<P> edb(prog);
  LoadEdges<P>(g, ids, lift, &edb.pops(prog.FindPredicate("E")));
  ExpectBitIdenticalAcrossConfigs(prog, edb, golden_naive_work,
                                  golden_semi_work);
}

TEST(EngineIndexTiers, BooleanLinearTcChain80) {
  ExpectBitIdenticalOnGraph<BoolS>(kLinearTc, ChainGraph(80),
                                   [](const Edge&) { return true; },
                                   /*golden_naive_work=*/338120,
                                   /*golden_semi_work=*/6320);
}

TEST(EngineIndexTiers, BooleanQuadraticTcChain80) {
  // Two IDB occurrences: exercises the t_new/t_old/delta index triple
  // (and its incremental refresh) under every tier.
  ExpectBitIdenticalOnGraph<BoolS>(kQuadraticTc, ChainGraph(80),
                                   [](const Edge&) { return true; },
                                   /*golden_naive_work=*/244823,
                                   /*golden_semi_work=*/95925);
}

TEST(EngineIndexTiers, TropicalSsspChain80) {
  ExpectBitIdenticalOnGraph<TropS>(kSssp, ChainGraph(80),
                                   [](const Edge& e) { return e.weight; },
                                   /*golden_naive_work=*/6479,
                                   /*golden_semi_work=*/159);
}

TEST(EngineIndexTiers, TropicalApspGrid8x8) {
  ExpectBitIdenticalOnGraph<TropS>(kLinearTc, GridGraph(8, 8),
                                   [](const Edge& e) { return e.weight; },
                                   /*golden_naive_work=*/33936,
                                   /*golden_semi_work=*/3248);
}

TEST(EngineIndexTiers, ProvenancePosBoolChain6) {
  Domain dom;
  auto prog = ParseProgram(kLinearTc, &dom).value();
  const int n = 6;
  Graph g = ChainGraph(n);
  std::vector<ConstId> ids = InternVertices(n, &dom);
  EdbInstance<PosBoolS> edb(prog);
  {
    int i = 0;
    for (const Edge& e : g.edges()) {
      edb.pops(prog.FindPredicate("E"))
          .Merge({ids[e.src], ids[e.dst]},
                 PosBoolS::Var("x" + std::to_string(i++)));
    }
  }
  ExpectBitIdenticalAcrossConfigs(prog, edb, /*golden_naive_work=*/125,
                                  /*golden_semi_work=*/30);
}

TEST(EngineIndexTiers, RepeatedVariableChecksChordalCycle12) {
  // Repeated-variable atoms (T(X,X), E(X,X)) compile to check ops — the
  // one join-program construct where the batched kernel's vector
  // compare/compress path does real filtering work, so this golden pins
  // `work` (which counts check-failing entries too) across the full
  // config cross. The chordal-cycle EDB gets explicit self-loops so the
  // checks both pass and fail.
  constexpr const char* kSelfLoopTc = R"(
    edb E/2.
    idb T/2.
    T(X,Y) :- E(X,Y) ; T(X,X) * E(X,Y) ; T(X,Z) * E(Z,Y).
  )";
  Graph g = CycleGraph(12);
  for (int v = 0; v < 12; v += 4) g.AddEdge(v, v, 1.0);
  for (int v = 0; v < 12; v += 3) g.AddEdge(v, (v + 5) % 12, 2.0);
  ExpectBitIdenticalOnGraph<TropS>(kSelfLoopTc, g,
                                   [](const Edge& e) { return e.weight; },
                                   /*golden_naive_work=*/2996,
                                   /*golden_semi_work=*/554);
}

TEST(EngineIndexTiers, DirectTierReplacesHashProbesOnDenseKeys) {
  // Vertex ids are interned densely, so the auto policy must route the
  // E(Z,Y) generator lookups through the offset-addressed tier: the
  // hash-probe count drops (to the hash-forced run's driver-only share)
  // while the total visit trace — `work` — stays pinned.
  Domain dom;
  auto prog = ParseProgram(kLinearTc, &dom).value();
  Graph g = GridGraph(8, 8);
  std::vector<ConstId> ids = InternVertices(g.num_vertices(), &dom);
  EdbInstance<TropS> edb(prog);
  LoadEdges<TropS>(g, ids, [](const Edge& e) { return e.weight; },
                   &edb.pops(prog.FindPredicate("E")));

  const EngineOptions hash_opts{.index_kind = IndexKind::kHash,
                                .scan_kernel = ScanKernel::kScalar};
  const EngineOptions auto_opts{.index_kind = IndexKind::kAuto,
                                .scan_kernel = ScanKernel::kScalar};
  RunResult<TropS> hashed = RunOnce(prog, edb, /*semi=*/true, hash_opts);
  RunResult<TropS> tiered = RunOnce(prog, edb, /*semi=*/true, auto_opts);

  EXPECT_EQ(hashed.pinned, tiered.pinned);
  EXPECT_GT(hashed.hash_probes, 0u);
  EXPECT_GT(tiered.direct_probes, 0u);
  EXPECT_LT(tiered.hash_probes, hashed.hash_probes);
  EXPECT_EQ(hashed.direct_probes, 0u);
}

TEST(EngineIndexTiers, SemiNaiveRefreshesDeltaIndexesIncrementally) {
  // Each semi-naive round clears and refills delta; the cache must
  // refresh its delta indexes by re-appending rows, not by rebuilding
  // from scratch — visible as a nonzero incremental-append counter under
  // every tier (and a zero one for single-shot naive evaluation, whose
  // EDB indexes are built once and only ever hit).
  Domain dom;
  auto prog = ParseProgram(kLinearTc, &dom).value();
  Graph g = GridGraph(8, 8);
  std::vector<ConstId> ids = InternVertices(g.num_vertices(), &dom);
  EdbInstance<TropS> edb(prog);
  LoadEdges<TropS>(g, ids, [](const Edge& e) { return e.weight; },
                   &edb.pops(prog.FindPredicate("E")));

  for (IndexKind kind :
       {IndexKind::kHash, IndexKind::kDirect, IndexKind::kAuto}) {
    SCOPED_TRACE(static_cast<int>(kind));
    const EngineOptions opts{.index_kind = kind,
                             .scan_kernel = ScanKernel::kScalar};
    RunResult<TropS> semi = RunOnce(prog, edb, /*semi=*/true, opts);
    EXPECT_GT(semi.incremental_appends, 0u);
    RunResult<TropS> naive = RunOnce(prog, edb, /*semi=*/false, opts);
    EXPECT_EQ(naive.incremental_appends, 0u);
  }
}

}  // namespace
}  // namespace datalogo
