// Tests for the rule-reliance analysis (src/datalog/reliance.h): group
// membership, topological execution order, recursive flags and the
// triggered-set inputs (rule_body_idb) on the program shapes the ordered
// scheduler has to get right — linear chains, diamonds, mutual recursion,
// several rules sharing one head predicate, and BEDB-only bodies.
#include "src/datalog/reliance.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/datalog/ast.h"
#include "src/datalog/parser.h"
#include "src/relation/domain.h"

namespace datalogo {
namespace {

Program Parse(const std::string& text, Domain* dom) {
  auto prog = ParseProgram(text, dom);
  EXPECT_TRUE(prog.ok()) << prog.status().message();
  return std::move(prog).value();
}

// Every reliance edge must point forward (or stay within a group), rules
// must partition across groups, and group_heads must cover the head
// predicates of the group's rules — the structural invariants the
// scheduler's correctness argument leans on.
void CheckInvariants(const Program& prog, const RelianceGroups& rg) {
  const int num_rules = static_cast<int>(prog.rules().size());
  std::vector<int> seen(num_rules, 0);
  for (int g = 0; g < rg.num_groups(); ++g) {
    for (int r : rg.groups[g]) {
      EXPECT_EQ(rg.group_of_rule[r], g);
      ++seen[r];
      const int head = prog.rules()[r].head.pred;
      EXPECT_TRUE(std::binary_search(rg.group_heads[g].begin(),
                                     rg.group_heads[g].end(), head));
    }
  }
  for (int r = 0; r < num_rules; ++r) {
    EXPECT_EQ(seen[r], 1) << "rule " << r << " not in exactly one group";
    for (int s : rg.rule_adj[r]) {
      EXPECT_LE(rg.group_of_rule[r], rg.group_of_rule[s])
          << "reliance edge " << r << " -> " << s << " points backwards";
    }
  }
}

TEST(Reliance, LinearChainGetsOneGroupPerRuleInOrder) {
  Domain dom;
  Program prog = Parse(R"(
    edb E/2.
    idb A/2. idb B/2. idb C/2.
    A(X,Y) :- E(X,Y).
    B(X,Y) :- A(X,Z)*E(Z,Y).
    C(X,Y) :- B(X,Z)*E(Z,Y).
  )",
                       &dom);
  RelianceGroups rg = BuildRelianceGroups(prog);
  CheckInvariants(prog, rg);
  ASSERT_EQ(rg.num_groups(), 3);
  // One singleton group per rule, producers first, none recursive.
  EXPECT_EQ(rg.groups[0], std::vector<int>{0});
  EXPECT_EQ(rg.groups[1], std::vector<int>{1});
  EXPECT_EQ(rg.groups[2], std::vector<int>{2});
  for (int g = 0; g < 3; ++g) EXPECT_FALSE(rg.group_recursive[g]);
  // Triggered-set inputs: the A rule reads no IDB, B reads A, C reads B.
  EXPECT_TRUE(rg.rule_body_idb[0].empty());
  EXPECT_EQ(rg.rule_body_idb[1], std::vector<int>{prog.FindPredicate("A")});
  EXPECT_EQ(rg.rule_body_idb[2], std::vector<int>{prog.FindPredicate("B")});
}

TEST(Reliance, DiamondKeepsBothBranchesBetweenSourceAndSink) {
  Domain dom;
  Program prog = Parse(R"(
    edb E/2. edb F/2.
    idb S/2. idb L/2. idb R/2. idb T/2.
    S(X,Y) :- E(X,Y).
    L(X,Y) :- S(X,Z)*E(Z,Y).
    R(X,Y) :- S(X,Z)*F(Z,Y).
    T(X,Y) :- L(X,Z)*R(Z,Y).
  )",
                       &dom);
  RelianceGroups rg = BuildRelianceGroups(prog);
  CheckInvariants(prog, rg);
  ASSERT_EQ(rg.num_groups(), 4);
  // Source strictly before both branches, both branches before the sink;
  // the order between the L and R branches is unconstrained by the
  // diamond and pinned only by the deterministic numbering.
  EXPECT_LT(rg.group_of_rule[0], rg.group_of_rule[1]);
  EXPECT_LT(rg.group_of_rule[0], rg.group_of_rule[2]);
  EXPECT_LT(rg.group_of_rule[1], rg.group_of_rule[3]);
  EXPECT_LT(rg.group_of_rule[2], rg.group_of_rule[3]);
}

TEST(Reliance, MutualRecursionCollapsesIntoOneRecursiveGroup) {
  Domain dom;
  Program prog = Parse(R"(
    edb E/2. edb F/2.
    idb P/2. idb Q/2.
    P(X,Y) :- E(X,Y).
    P(X,Y) :- Q(X,Z)*E(Z,Y).
    Q(X,Y) :- P(X,Z)*F(Z,Y).
  )",
                       &dom);
  RelianceGroups rg = BuildRelianceGroups(prog);
  CheckInvariants(prog, rg);
  ASSERT_EQ(rg.num_groups(), 2);
  // The base rule feeds the cycle but is not part of it.
  EXPECT_EQ(rg.groups[0], std::vector<int>{0});
  EXPECT_FALSE(rg.group_recursive[0]);
  EXPECT_EQ(rg.groups[1], (std::vector<int>{1, 2}));
  EXPECT_TRUE(rg.group_recursive[1]);
  // The cycle group's heads are both predicates, ascending.
  std::vector<int> expect = {prog.FindPredicate("P"),
                             prog.FindPredicate("Q")};
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(rg.group_heads[1], expect);
}

TEST(Reliance, SelfRecursiveSingletonIsMarkedRecursive) {
  Domain dom;
  Program prog = Parse(R"(
    edb E/2.
    idb T/2.
    T(X,Y) :- E(X,Y) ; T(X,Z)*E(Z,Y).
  )",
                       &dom);
  RelianceGroups rg = BuildRelianceGroups(prog);
  CheckInvariants(prog, rg);
  ASSERT_EQ(rg.num_groups(), 1);
  EXPECT_TRUE(rg.group_recursive[0]);
  EXPECT_EQ(rg.rule_body_idb[0], std::vector<int>{prog.FindPredicate("T")});
}

TEST(Reliance, MultiHeadRulesSplitBaseFromRecursiveStep) {
  // Two rules define T: the base rule is NOT in the recursive group —
  // exactly the refinement over predicate-level strata that lets the
  // scheduler stop re-sweeping base rules once their one-shot
  // contribution is in.
  Domain dom;
  Program prog = Parse(R"(
    edb E/2.
    idb T/2.
    T(X,Y) :- E(X,Y).
    T(X,Y) :- T(X,Z)*E(Z,Y).
  )",
                       &dom);
  RelianceGroups rg = BuildRelianceGroups(prog);
  CheckInvariants(prog, rg);
  ASSERT_EQ(rg.num_groups(), 2);
  EXPECT_EQ(rg.groups[0], std::vector<int>{0});
  EXPECT_FALSE(rg.group_recursive[0]);
  EXPECT_EQ(rg.groups[1], std::vector<int>{1});
  EXPECT_TRUE(rg.group_recursive[1]);
  // Both groups share the head predicate T.
  EXPECT_EQ(rg.group_heads[0], rg.group_heads[1]);
}

TEST(Reliance, BedbOnlyBodiesCreateNoRelianceEdges) {
  // Boolean-EDB and EDB atoms never carry deltas: a rule reading only
  // those is a source — no incoming edges, empty rule_body_idb — even
  // when another rule reads its head.
  Domain dom;
  Program prog = Parse(R"(
    edb E/2.
    bedb Good/1.
    idb A/1. idb B/1.
    A(X) :- { E(X,X) | Good(X) }.
    B(X) :- A(X)*E(X,X).
  )",
                       &dom);
  RelianceGroups rg = BuildRelianceGroups(prog);
  CheckInvariants(prog, rg);
  ASSERT_EQ(rg.num_groups(), 2);
  EXPECT_TRUE(rg.rule_body_idb[0].empty());
  EXPECT_TRUE(rg.rule_adj[1].empty());
  EXPECT_EQ(rg.rule_adj[0], std::vector<int>{1});
  EXPECT_FALSE(rg.group_recursive[0]);
  EXPECT_FALSE(rg.group_recursive[1]);
}

TEST(Reliance, DisjunctsContributeAllTheirBodyPredicates) {
  // rule_body_idb unions IDB reads across disjuncts, deduplicated and
  // ascending — the triggered check must see every disjunct's inputs.
  Domain dom;
  Program prog = Parse(R"(
    edb E/2. edb F/2.
    idb P/2. idb Q/2. idb R/2.
    P(X,Y) :- E(X,Y).
    Q(X,Y) :- F(X,Y).
    R(X,Y) :- P(X,Z)*E(Z,Y) ; Q(X,Z)*P(Z,Y).
  )",
                       &dom);
  RelianceGroups rg = BuildRelianceGroups(prog);
  CheckInvariants(prog, rg);
  std::vector<int> expect = {prog.FindPredicate("P"),
                             prog.FindPredicate("Q")};
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(rg.rule_body_idb[2], expect);
}

}  // namespace
}  // namespace datalogo
