// Cross-thread-count equivalence for the parallel ICO step: every golden
// program from engine_equivalence_test.cc (B / Trop / PosBool, naive and
// semi-naive, cached and uncached indexes) must produce bit-identical
// fixpoints, `work` counters, iteration counts AND index-cache counters
// (total and IDB-attributed) at num_threads ∈ {1, 2, 3, 8} — including
// with tiny shard_rows that force many (disjunct, shard) tasks per ICO
// application, which exercises the deterministic partial-merge order.
#include <gtest/gtest.h>

#include "src/datalogo.h"
#include "src/semiring/provenance.h"

namespace datalogo {
namespace {

constexpr const char* kLinearTc = R"(
  edb E/2.
  idb T/2.
  T(X,Y) :- E(X,Y) ; T(X,Z) * E(Z,Y).
)";

constexpr const char* kQuadraticTc = R"(
  edb E/2.
  idb T/2.
  T(X,Y) :- E(X,Y) ; T(X,Z) * T(Z,Y).
)";

constexpr const char* kSssp = R"(
  edb E/2.
  idb L/1.
  L(X) :- [X = v0] ; L(Z) * E(Z, X).
)";

Graph ChainGraph(int n) {
  Graph g(n);
  for (int i = 0; i + 1 < n; ++i) g.AddEdge(i, i + 1, 1.0);
  return g;
}

/// One full evaluation with a fresh Engine, capturing everything the
/// determinism contract covers.
template <Pops P>
struct RunRecord {
  EvalResult<P> result;
  uint64_t index_builds = 0;
  uint64_t index_hits = 0;
  uint64_t idb_index_builds = 0;
  uint64_t idb_index_hits = 0;
};

template <Pops P>
  requires CompleteDistributiveDioid<P> && NaturallyOrderedSemiring<P>
RunRecord<P> RunOnce(const Program& prog, const EdbInstance<P>& edb,
                     bool semi, EngineOptions opt) {
  Engine<P> engine(prog, edb, opt);
  RunRecord<P> rec{semi ? engine.SemiNaive(1 << 20) : engine.Naive(1 << 20),
                   engine.index_builds(), engine.index_hits(),
                   engine.idb_index_builds(), engine.idb_index_hits()};
  return rec;
}

template <Pops P>
  requires CompleteDistributiveDioid<P> && NaturallyOrderedSemiring<P>
void ExpectThreadCountInvariance(const Program& prog,
                                 const EdbInstance<P>& edb) {
  for (bool cache : {true, false}) {
    for (bool semi : {false, true}) {
      RunRecord<P> base = RunOnce<P>(
          prog, edb, semi,
          EngineOptions{.cache_indexes = cache, .num_threads = 1});
      ASSERT_TRUE(base.result.converged);
      for (int threads : {2, 3, 8}) {
        // shard_rows = 4 forces multi-shard evaluation even on these
        // small inputs; 256 is the production default.
        for (int shard_rows : {4, 256}) {
          SCOPED_TRACE(::testing::Message()
                       << P::kName << (semi ? " semi" : " naive")
                       << " cache=" << cache << " threads=" << threads
                       << " shard_rows=" << shard_rows);
          RunRecord<P> run =
              RunOnce<P>(prog, edb, semi,
                         EngineOptions{.cache_indexes = cache,
                                       .num_threads = threads,
                                       .shard_rows = shard_rows});
          EXPECT_TRUE(run.result.converged);
          EXPECT_TRUE(run.result.idb.Equals(base.result.idb));
          EXPECT_EQ(run.result.steps, base.result.steps);
          EXPECT_EQ(run.result.work, base.result.work);
          EXPECT_EQ(run.index_builds, base.index_builds);
          EXPECT_EQ(run.index_hits, base.index_hits);
          EXPECT_EQ(run.idb_index_builds, base.idb_index_builds);
          EXPECT_EQ(run.idb_index_hits, base.idb_index_hits);
        }
      }
    }
  }
}

template <Pops P>
  requires CompleteDistributiveDioid<P> && NaturallyOrderedSemiring<P>
void ExpectThreadCountInvarianceOnGraph(const char* text, const Graph& g,
                                        auto&& lift) {
  Domain dom;
  auto prog = ParseProgram(text, &dom).value();
  std::vector<ConstId> ids = InternVertices(g.num_vertices(), &dom);
  EdbInstance<P> edb(prog);
  LoadEdges<P>(g, ids, lift, &edb.pops(prog.FindPredicate("E")));
  ExpectThreadCountInvariance<P>(prog, edb);
}

TEST(EngineParallel, BooleanLinearTcChain80) {
  ExpectThreadCountInvarianceOnGraph<BoolS>(
      kLinearTc, ChainGraph(80), [](const Edge&) { return true; });
}

TEST(EngineParallel, BooleanQuadraticTcChain80) {
  ExpectThreadCountInvarianceOnGraph<BoolS>(
      kQuadraticTc, ChainGraph(80), [](const Edge&) { return true; });
}

TEST(EngineParallel, TropicalSsspChain80) {
  ExpectThreadCountInvarianceOnGraph<TropS>(
      kSssp, ChainGraph(80), [](const Edge& e) { return e.weight; });
}

TEST(EngineParallel, TropicalApspGrid8x8) {
  ExpectThreadCountInvarianceOnGraph<TropS>(
      kLinearTc, GridGraph(8, 8), [](const Edge& e) { return e.weight; });
}

TEST(EngineParallel, SeedWorkGoldensHoldAtEightThreads) {
  // Anchor against the absolute seed goldens (engine_equivalence_test),
  // not merely against a same-binary sequential run.
  Domain dom;
  auto prog = ParseProgram(kLinearTc, &dom).value();
  Graph g = ChainGraph(80);
  std::vector<ConstId> ids = InternVertices(80, &dom);
  EdbInstance<BoolS> edb(prog);
  LoadEdges<BoolS>(g, ids, [](const Edge&) { return true; },
                   &edb.pops(prog.FindPredicate("E")));
  Engine<BoolS> engine(prog, edb,
                       EngineOptions{.num_threads = 8, .shard_rows = 16});
  EXPECT_EQ(engine.num_threads(), 8);
  auto naive = engine.Naive(1 << 20);
  auto semi = engine.SemiNaive(1 << 20);
  ASSERT_TRUE(naive.converged && semi.converged);
  EXPECT_EQ(naive.work, 338120u);
  EXPECT_EQ(semi.work, 6320u);
}

TEST(EngineParallel, ProvenancePosBoolChain6) {
  // Set-valued provenance: the parallel merge must assemble exactly the
  // same clause sets.
  Domain dom;
  auto prog = ParseProgram(kLinearTc, &dom).value();
  const int n = 6;
  Graph g = ChainGraph(n);
  std::vector<ConstId> ids = InternVertices(n, &dom);
  EdbInstance<PosBoolS> edb(prog);
  {
    int i = 0;
    for (const Edge& e : g.edges()) {
      edb.pops(prog.FindPredicate("E"))
          .Merge({ids[e.src], ids[e.dst]},
                 PosBoolS::Var("x" + std::to_string(i++)));
    }
  }
  ExpectThreadCountInvariance<PosBoolS>(prog, edb);

  Engine<PosBoolS> par(prog, edb,
                       EngineOptions{.num_threads = 3, .shard_rows = 1});
  auto naive = par.Naive(1 << 20);
  ASSERT_TRUE(naive.converged);
  PosBoolS::Clause all;
  for (int i = 0; i < n - 1; ++i) all.insert("x" + std::to_string(i));
  EXPECT_EQ(naive.idb.idb(prog.FindPredicate("T")).Get({ids[0], ids[n - 1]}),
            PosBoolS::Value{all});
  EXPECT_EQ(naive.work, 125u);
}

TEST(EngineParallel, MutualRecursionMultiHeadMerge) {
  // Two rules with distinct head predicates in one stratum: the reduce
  // phase routes partials to the right heads in rule order.
  constexpr const char* kText = R"(
    edb E/2.
    idb Odd/2.
    idb Even/2.
    Odd(X,Y) :- E(X,Y) ; Even(X,Z) * E(Z,Y).
    Even(X,Y) :- Odd(X,Z) * E(Z,Y).
  )";
  Domain dom;
  auto prog = ParseProgram(kText, &dom).value();
  Graph g = CycleGraph(9);
  std::vector<ConstId> ids = InternVertices(9, &dom);
  EdbInstance<BoolS> edb(prog);
  LoadEdges<BoolS>(g, ids, [](const Edge&) { return true; },
                   &edb.pops(prog.FindPredicate("E")));
  ExpectThreadCountInvariance<BoolS>(prog, edb);
}

TEST(EngineParallel, ConditionsBedbAndOrderComparisons) {
  // Residual Boolean-EDB conditions plus an integer order comparison run
  // on the concurrent execute path (CheckCondition → Domain::AsInt).
  constexpr const char* kText = R"(
    edb E/2.
    bedb Blocked/1.
    idb T/2.
    T(X,Y) :- { E(X,Y) | !Blocked(Y), X < Y }
            ; { T(X,Z) * E(Z,Y) | !Blocked(Y), X < Y }.
  )";
  Domain dom;
  auto prog = ParseProgram(kText, &dom).value();
  EdbInstance<TropS> edb(prog);
  Relation<TropS>& e_rel = edb.pops(prog.FindPredicate("E"));
  std::vector<ConstId> ids;
  for (int v = 0; v < 24; ++v) ids.push_back(dom.InternInt(v));
  for (int v = 0; v + 1 < 24; ++v) {
    e_rel.Merge({ids[v], ids[v + 1]}, 1.0);
    if (v + 3 < 24) e_rel.Merge({ids[v], ids[v + 3]}, 2.5);
  }
  edb.boolean(prog.FindPredicate("Blocked")).Set({ids[5]}, true);
  edb.boolean(prog.FindPredicate("Blocked")).Set({ids[11]}, true);
  ExpectThreadCountInvariance<TropS>(prog, edb);
}

TEST(EngineParallel, AutoThreadCountAndStratifiedEvaluation) {
  // num_threads = 0 resolves to hardware concurrency; NaiveWithRules
  // (the stratified building block) goes through the same parallel path.
  Domain dom;
  auto prog = ParseProgram(kLinearTc, &dom).value();
  Graph g = ChainGraph(40);
  std::vector<ConstId> ids = InternVertices(40, &dom);
  EdbInstance<TropS> edb(prog);
  LoadEdges<TropS>(g, ids, [](const Edge& e) { return e.weight; },
                   &edb.pops(prog.FindPredicate("E")));
  Engine<TropS> seq(prog, edb);
  Engine<TropS> autopar(prog, edb,
                        EngineOptions{.num_threads = 0, .shard_rows = 8});
  EXPECT_GE(autopar.num_threads(), 1);
  std::vector<int> all_rules = {0};
  auto base = seq.NaiveWithRules(all_rules, IdbInstance<TropS>(prog), 1 << 20);
  auto run =
      autopar.NaiveWithRules(all_rules, IdbInstance<TropS>(prog), 1 << 20);
  ASSERT_TRUE(base.converged && run.converged);
  EXPECT_TRUE(run.idb.Equals(base.idb));
  EXPECT_EQ(run.work, base.work);
}

}  // namespace
}  // namespace datalogo
