// Tests for Engine::Update — incremental maintenance against the one
// oracle that matters: a full recompute from the mutated EDB must be
// bit-identical to the warm Update result, across carriers, schedulers,
// thread counts and index tiers.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <utility>
#include <vector>

#include "src/datalogo.h"
#include "src/relation/io.h"
#include "tests/ci_knob.h"

namespace datalogo {
namespace {

constexpr const char* kTc = R"(
  edb E/2.
  idb T/2.
  T(X,Y) :- E(X,Y) ; T(X,Z) * E(Z,Y).
)";

/// The engine configurations the bit-identity contract is checked over:
/// schedulers × threads, plus each forced index tier and the scalar
/// kernels (the SIMD kernels are the build default).
std::vector<EngineOptions> ConfigMatrix() {
  std::vector<EngineOptions> out;
  for (Scheduler sched : {Scheduler::kSweep, Scheduler::kOrdered}) {
    for (int threads : {1, 4}) {
      EngineOptions o;
      o.scheduler = sched;
      o.num_threads = threads;
      out.push_back(o);
    }
  }
  for (IndexKind kind : {IndexKind::kHash, IndexKind::kDirect}) {
    EngineOptions o;
    o.index_kind = kind;
    out.push_back(o);
  }
  {
    EngineOptions o;
    o.scan_kernel = ScanKernel::kScalar;
    o.value_kernel = ScanKernel::kScalar;
    out.push_back(o);
  }
  return out;
}

std::string ConfigName(const EngineOptions& o) {
  std::string s = o.scheduler == Scheduler::kOrdered ? "ordered" : "sweep";
  s += "/t" + std::to_string(o.num_threads);
  s += o.index_kind == IndexKind::kHash     ? "/hash"
       : o.index_kind == IndexKind::kDirect ? "/direct"
                                            : "/auto";
  if (o.scan_kernel == ScanKernel::kScalar) s += "/scalar";
  return s;
}

/// Full recompute from `edb` with a FRESH engine (cold caches): the
/// golden result Update must match bit-for-bit.
template <Pops P>
EvalResult<P> Golden(const Program& prog, const EdbInstance<P>& edb,
                     const EngineOptions& opts) {
  Engine<P> eng(prog, edb, opts);
  if constexpr (CompleteDistributiveDioid<P>) return eng.SemiNaive(1000);
  return eng.Naive(1000);
}

/// All live tuples of a relation (for picking random deletions).
template <Pops P>
std::vector<Tuple> LiveTuples(const Relation<P>& rel) {
  std::vector<Tuple> out;
  for (uint32_t r = 0; r < rel.num_rows(); ++r) {
    if (!rel.RowLive(r)) continue;
    Tuple t;
    for (int p = 0; p < rel.arity(); ++p) t.push_back(rel.Cell(r, p));
    out.push_back(std::move(t));
  }
  return out;
}

/// Drives `rounds` random mixed batches through one warm engine and
/// checks each against a cold full recompute of the mutated EDB. The
/// comparison is Relation::Equals (same support, P::Eq values) plus
/// DumpTsvChecked string equality — byte-level, catching any value
/// formatting drift too.
template <Pops P, typename MakeValue>
void ChurnAgainstRecompute(const EngineOptions& opts, MakeValue make_value,
                           int rounds, unsigned seed,
                           bool acyclic = false) {
  Domain dom;
  auto prog_or = ParseProgram(kTc, &dom);
  ASSERT_TRUE(prog_or.ok());
  const Program& prog = prog_or.value();
  const int e = prog.FindPredicate("E");
  const int t = prog.FindPredicate("T");

  std::mt19937 rng(seed);
  const int n = 12;
  std::vector<ConstId> ids;
  for (int v = 0; v < n; ++v) {
    ids.push_back(dom.InternSymbol("v" + std::to_string(v)));
  }

  // Carriers whose fixpoint only exists on DAGs (provenance polynomials
  // grow a monomial per path) get strictly ascending edges.
  auto random_edge = [&]() -> std::pair<ConstId, ConstId> {
    int a = static_cast<int>(rng() % n), b = static_cast<int>(rng() % n);
    if (acyclic) {
      if (a == b) b = (a + 1) % n;
      if (a > b) std::swap(a, b);
    }
    return {ids[a], ids[b]};
  };
  EdbInstance<P> edb(prog);
  for (int i = 0; i < 2 * n; ++i) {
    auto [a, b] = random_edge();
    edb.pops(e).Merge({a, b}, make_value(rng));
  }

  Engine<P> eng(prog, edb, opts);
  IdbInstance<P> idb(prog);
  {
    EvalResult<P> r0 = Golden<P>(prog, edb, opts);
    ASSERT_TRUE(r0.converged);
    idb.CopyContentsFrom(r0.idb);
  }

  for (int round = 0; round < rounds; ++round) {
    EdbDelta<P> batch;
    const int adds = 1 + static_cast<int>(rng() % 3);
    const int dels = static_cast<int>(rng() % 3);
    std::vector<Tuple> live = LiveTuples(edb.pops(e));
    for (int i = 0; i < dels && !live.empty(); ++i) {
      batch.Delete(e, live[rng() % live.size()]);
    }
    for (int i = 0; i < adds; ++i) {
      auto [a, b] = random_edge();
      batch.Add(e, Tuple{a, b}, make_value(rng));
    }

    UpdateResult ur = eng.Update(batch, &edb, &idb, 1000);
    ASSERT_TRUE(ur.converged) << ConfigName(opts) << " round " << round;

    EdbInstance<P> gold_edb(prog);
    gold_edb.pops(e) = edb.pops(e);
    EvalResult<P> gold = Golden<P>(prog, gold_edb, opts);
    ASSERT_TRUE(gold.converged);
    ASSERT_TRUE(idb.Equals(gold.idb))
        << ConfigName(opts) << " round " << round
        << ": Update diverged from full recompute";
    std::string got, want;
    ASSERT_TRUE(DumpTsvChecked(idb.idb(t), dom, &got).ok());
    ASSERT_TRUE(DumpTsvChecked(gold.idb.idb(t), dom, &want).ok());
    EXPECT_EQ(got, want) << ConfigName(opts) << " round " << round;
  }
}

TEST(EngineUpdate, BoolChurnMatchesRecompute) {
  int rounds = CiIterations(8, 3);
  for (const EngineOptions& o : ConfigMatrix()) {
    ChurnAgainstRecompute<BoolS>(
        o, [](std::mt19937&) { return true; }, rounds, 11);
  }
}

TEST(EngineUpdate, TropChurnMatchesRecompute) {
  int rounds = CiIterations(8, 3);
  for (const EngineOptions& o : ConfigMatrix()) {
    // Weights exact in binary (k/8), so recompute and cascade sums are
    // comparable bit-for-bit.
    ChurnAgainstRecompute<TropS>(
        o, [](std::mt19937& rng) { return double(1 + rng() % 64) / 8.0; },
        rounds, 23);
  }
}

TEST(EngineUpdate, NaturalsChurnMatchesRecompute) {
  int rounds = CiIterations(6, 2);
  for (const EngineOptions& o : ConfigMatrix()) {
    ChurnAgainstRecompute<NatS>(
        o, [](std::mt19937& rng) { return uint64_t{1} + rng() % 3; }, rounds,
        37);
  }
}

TEST(EngineUpdate, ProvenanceChurnMatchesRecompute) {
  int rounds = CiIterations(4, 2);
  EngineOptions o;
  int edge = 0;
  ChurnAgainstRecompute<ProvPolyS>(
      o,
      [&edge](std::mt19937&) {
        return ProvPolyS::Var("e" + std::to_string(edge++));
      },
      rounds, 41, /*acyclic=*/true);
}

// -------- Targeted scenarios --------

struct Fixture {
  Domain dom;
  Program prog;
  int e, t;
  ConstId a, b, c, d;
  explicit Fixture(const char* text = kTc)
      : prog(ParseProgram(text, &dom).value()),
        e(prog.FindPredicate("E")),
        t(prog.FindPredicate("T")),
        a(dom.InternSymbol("a")),
        b(dom.InternSymbol("b")),
        c(dom.InternSymbol("c")),
        d(dom.InternSymbol("d")) {}
};

TEST(EngineUpdate, EmptyBatchIsNoop) {
  Fixture f;
  EdbInstance<BoolS> edb(f.prog);
  edb.pops(f.e).Set({f.a, f.b}, true);
  Engine<BoolS> eng(f.prog, edb);
  IdbInstance<BoolS> idb(f.prog);
  idb.CopyContentsFrom(eng.SemiNaive(100).idb);
  UpdateResult r = eng.Update(EdbDelta<BoolS>{}, &edb, &idb, 100);
  EXPECT_EQ(r.strategy, UpdateStrategy::kNoop);
  EXPECT_EQ(r.rounds, 0);
  EXPECT_TRUE(r.converged);
  EXPECT_TRUE(idb.idb(f.t).Get({f.a, f.b}));
}

TEST(EngineUpdate, InsertOnlyCascades) {
  Fixture f;
  EdbInstance<BoolS> edb(f.prog);
  edb.pops(f.e).Set({f.a, f.b}, true);
  Engine<BoolS> eng(f.prog, edb);
  IdbInstance<BoolS> idb(f.prog);
  idb.CopyContentsFrom(eng.SemiNaive(100).idb);

  EdbDelta<BoolS> batch;
  batch.Add(f.e, {f.b, f.c}, true);
  batch.Add(f.e, {f.c, f.d}, true);
  UpdateResult r = eng.Update(batch, &edb, &idb, 100);
  EXPECT_EQ(r.strategy, UpdateStrategy::kInsertOnly);
  EXPECT_TRUE(r.converged);
  // The cascade reached the two-hop closure through BOTH new edges.
  EXPECT_TRUE(idb.idb(f.t).Get({f.a, f.c}));
  EXPECT_TRUE(idb.idb(f.t).Get({f.a, f.d}));
  EXPECT_TRUE(idb.idb(f.t).Get({f.b, f.d}));
}

TEST(EngineUpdate, DredDeleteWithSurvivingDerivation) {
  // a→b twice over (direct edge AND a→c→b): deleting the direct edge
  // must keep T(a,b) alive through the alternative derivation.
  Fixture f;
  EdbInstance<BoolS> edb(f.prog);
  edb.pops(f.e).Set({f.a, f.b}, true);
  edb.pops(f.e).Set({f.a, f.c}, true);
  edb.pops(f.e).Set({f.c, f.b}, true);
  Engine<BoolS> eng(f.prog, edb);
  IdbInstance<BoolS> idb(f.prog);
  idb.CopyContentsFrom(eng.SemiNaive(100).idb);

  EdbDelta<BoolS> batch;
  batch.Delete(f.e, {f.a, f.b});
  UpdateResult r = eng.Update(batch, &edb, &idb, 100);
  EXPECT_EQ(r.strategy, UpdateStrategy::kDred);
  EXPECT_TRUE(r.converged);
  EXPECT_TRUE(idb.idb(f.t).Get({f.a, f.b}));  // rederived via a→c→b
  EXPECT_GE(r.deleted_rederived, 1u);
  EXPECT_FALSE(edb.pops(f.e).Contains({f.a, f.b}));
}

TEST(EngineUpdate, DredCascadingDelete) {
  // Chain a→b→c→d: deleting a→b must take out T(a,b), T(a,c), T(a,d) —
  // the whole cone — and nothing else.
  Fixture f;
  EdbInstance<BoolS> edb(f.prog);
  edb.pops(f.e).Set({f.a, f.b}, true);
  edb.pops(f.e).Set({f.b, f.c}, true);
  edb.pops(f.e).Set({f.c, f.d}, true);
  Engine<BoolS> eng(f.prog, edb);
  IdbInstance<BoolS> idb(f.prog);
  idb.CopyContentsFrom(eng.SemiNaive(100).idb);

  EdbDelta<BoolS> batch;
  batch.Delete(f.e, {f.a, f.b});
  UpdateResult r = eng.Update(batch, &edb, &idb, 100);
  EXPECT_EQ(r.strategy, UpdateStrategy::kDred);
  EXPECT_TRUE(r.converged);
  EXPECT_FALSE(idb.idb(f.t).Contains({f.a, f.b}));
  EXPECT_FALSE(idb.idb(f.t).Contains({f.a, f.c}));
  EXPECT_FALSE(idb.idb(f.t).Contains({f.a, f.d}));
  EXPECT_TRUE(idb.idb(f.t).Get({f.b, f.c}));
  EXPECT_TRUE(idb.idb(f.t).Get({f.b, f.d}));
  EXPECT_TRUE(idb.idb(f.t).Get({f.c, f.d}));
}

TEST(EngineUpdate, TropDeleteRestoresLongerPath) {
  // Shortcut a→b (1) over a→c→b (2+3): deleting the shortcut must
  // surface the longer distance, not drop the tuple.
  Fixture f;
  EdbInstance<TropS> edb(f.prog);
  edb.pops(f.e).Set({f.a, f.b}, 1.0);
  edb.pops(f.e).Set({f.a, f.c}, 2.0);
  edb.pops(f.e).Set({f.c, f.b}, 3.0);
  Engine<TropS> eng(f.prog, edb);
  IdbInstance<TropS> idb(f.prog);
  idb.CopyContentsFrom(eng.SemiNaive(100).idb);
  ASSERT_EQ(idb.idb(f.t).Get({f.a, f.b}), 1.0);

  EdbDelta<TropS> batch;
  batch.Delete(f.e, {f.a, f.b});
  UpdateResult r = eng.Update(batch, &edb, &idb, 100);
  EXPECT_EQ(r.strategy, UpdateStrategy::kDred);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(idb.idb(f.t).Get({f.a, f.b}), 5.0);
}

TEST(EngineUpdate, NaturalsExactDeleteKeepsSurvivingCounts) {
  // ℕ counts derivations: T(a,b) has two (direct + via c). Deleting the
  // direct edge subtracts exactly that derivation's count — the other
  // survives, no over-deletion, no re-derive pass.
  Fixture f;
  EdbInstance<NatS> edb(f.prog);
  edb.pops(f.e).Set({f.a, f.b}, uint64_t{1});
  edb.pops(f.e).Set({f.a, f.c}, uint64_t{1});
  edb.pops(f.e).Set({f.c, f.b}, uint64_t{1});
  Engine<NatS> eng(f.prog, edb);
  IdbInstance<NatS> idb(f.prog);
  idb.CopyContentsFrom(eng.Naive(100).idb);
  ASSERT_EQ(idb.idb(f.t).Get({f.a, f.b}), uint64_t{2});

  EdbDelta<NatS> batch;
  batch.Delete(f.e, {f.a, f.b});
  UpdateResult r = eng.Update(batch, &edb, &idb, 100);
  EXPECT_EQ(r.strategy, UpdateStrategy::kExactDeletion);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(idb.idb(f.t).Get({f.a, f.b}), uint64_t{1});
  EXPECT_EQ(idb.idb(f.t).Get({f.a, f.c}), uint64_t{1});
}

TEST(EngineUpdate, NaturalsSaturationFallsBackToRecompute) {
  // An ∞-weighted fact saturates downstream counts; the exact cascade
  // cannot subtract from ∞ and must hand over to a full recompute — with
  // the EDB batch still applied exactly once.
  Fixture f;
  EdbInstance<NatS> edb(f.prog);
  edb.pops(f.e).Set({f.a, f.a}, NatS::kInf);  // ⇒ T(a,·) = ∞
  edb.pops(f.e).Set({f.a, f.b}, uint64_t{1});
  edb.pops(f.e).Set({f.b, f.c}, uint64_t{1});
  Engine<NatS> eng(f.prog, edb);
  IdbInstance<NatS> idb(f.prog);
  idb.CopyContentsFrom(eng.Naive(100).idb);
  ASSERT_EQ(idb.idb(f.t).Get({f.a, f.b}), NatS::kInf);

  EdbDelta<NatS> batch;
  batch.Delete(f.e, {f.a, f.a});
  UpdateResult r = eng.Update(batch, &edb, &idb, 100);
  EXPECT_EQ(r.strategy, UpdateStrategy::kRecompute);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(idb.idb(f.t).Get({f.a, f.b}), uint64_t{1});
  EXPECT_FALSE(edb.pops(f.e).Contains({f.a, f.a}));

  EdbInstance<NatS> gold_edb(f.prog);
  gold_edb.pops(f.e) = edb.pops(f.e);
  EXPECT_TRUE(idb.Equals(Golden<NatS>(f.prog, gold_edb, {}).idb));
}

TEST(EngineUpdate, BoolEdbDeltaForcesRecompute) {
  constexpr const char* kGuarded = R"(
    edb E/2.
    bedb Keep/1.
    idb T/2.
    T(X,Y) :- { E(X,Y) | Keep(X) }.
  )";
  Domain dom;
  auto prog_or = ParseProgram(kGuarded, &dom);
  ASSERT_TRUE(prog_or.ok()) << prog_or.status().ToString();
  const Program& prog = prog_or.value();
  const int e = prog.FindPredicate("E");
  const int keep = prog.FindPredicate("Keep");
  const int t = prog.FindPredicate("T");
  ConstId a = dom.InternSymbol("a"), b = dom.InternSymbol("b");

  EdbInstance<BoolS> edb(prog);
  edb.pops(e).Set({a, b}, true);
  edb.boolean(keep).Set({a}, true);
  Engine<BoolS> eng(prog, edb);
  IdbInstance<BoolS> idb(prog);
  idb.CopyContentsFrom(eng.SemiNaive(100).idb);
  ASSERT_TRUE(idb.idb(t).Get({a, b}));

  EdbDelta<BoolS> batch;
  batch.DeleteBool(keep, {a});
  UpdateResult r = eng.Update(batch, &edb, &idb, 100);
  EXPECT_EQ(r.strategy, UpdateStrategy::kRecompute);
  EXPECT_TRUE(r.converged);
  EXPECT_FALSE(idb.idb(t).Contains({a, b}));
  EXPECT_FALSE(edb.boolean(keep).Contains({a}));
}

TEST(EngineUpdate, DeleteThenReAddLandsOnAddedValue) {
  Fixture f;
  EdbInstance<TropS> edb(f.prog);
  edb.pops(f.e).Set({f.a, f.b}, 1.0);
  Engine<TropS> eng(f.prog, edb);
  IdbInstance<TropS> idb(f.prog);
  idb.CopyContentsFrom(eng.SemiNaive(100).idb);

  EdbDelta<TropS> batch;
  batch.Delete(f.e, {f.a, f.b});
  batch.Add(f.e, Tuple{f.a, f.b}, 7.0);
  UpdateResult r = eng.Update(batch, &edb, &idb, 100);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(edb.pops(f.e).Get({f.a, f.b}), 7.0);
  EXPECT_EQ(idb.idb(f.t).Get({f.a, f.b}), 7.0);
}

TEST(EngineUpdate, DeleteAbsentFactIsNoop) {
  Fixture f;
  EdbInstance<BoolS> edb(f.prog);
  edb.pops(f.e).Set({f.a, f.b}, true);
  Engine<BoolS> eng(f.prog, edb);
  IdbInstance<BoolS> idb(f.prog);
  idb.CopyContentsFrom(eng.SemiNaive(100).idb);

  EdbDelta<BoolS> batch;
  batch.Delete(f.e, {f.c, f.d});
  UpdateResult r = eng.Update(batch, &edb, &idb, 100);
  EXPECT_TRUE(r.converged);
  EXPECT_TRUE(idb.idb(f.t).Get({f.a, f.b}));
}

}  // namespace
}  // namespace datalogo
