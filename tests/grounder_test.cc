// The grounder (Sec. 4.3): provenance-polynomial construction, variable
// bookkeeping, and agreement with the relational engine.
#include <gtest/gtest.h>

#include "src/datalogo.h"

namespace datalogo {
namespace {

TEST(Grounder, VariableCountIsAdomToTheArity) {
  Domain dom;
  auto prog = ParseProgram("T(X,Y) :- E(X,Y) ; T(X,Z)*E(Z,Y).", &dom);
  ASSERT_TRUE(prog.ok());
  EdbInstance<TropS> edb(prog.value());
  ConstId a = dom.InternSymbol("a"), b = dom.InternSymbol("b"),
          c = dom.InternSymbol("c");
  auto& e = edb.pops(prog.value().FindPredicate("E"));
  e.Set({a, b}, 1.0);
  e.Set({b, c}, 2.0);
  auto grounded = GroundProgram<TropS>(prog.value(), edb);
  EXPECT_EQ(grounded.num_vars(), 9);  // |ADom|² = 3²
  EXPECT_GE(grounded.VarOf(prog.value().FindPredicate("T"), {a, c}), 0);
  EXPECT_EQ(grounded.VarOf(prog.value().FindPredicate("T"),
                           {a, dom.InternSymbol("zz")}),
            -1);
}

TEST(Grounder, SemiringDropsZeroCoefficientMonomials) {
  // Over Trop+ the only E-tuples in the support generate monomials; the
  // linear part of T(a,c) must reference exactly T(a,b) via E(b,c).
  Domain dom;
  auto prog = ParseProgram("T(X,Y) :- E(X,Y) ; T(X,Z)*E(Z,Y).", &dom);
  ASSERT_TRUE(prog.ok());
  EdbInstance<TropS> edb(prog.value());
  ConstId a = dom.InternSymbol("a"), b = dom.InternSymbol("b"),
          c = dom.InternSymbol("c");
  edb.pops(prog.value().FindPredicate("E")).Set({a, b}, 1.0);
  edb.pops(prog.value().FindPredicate("E")).Set({b, c}, 2.0);
  auto grounded = GroundProgram<TropS>(prog.value(), edb);
  int tac = grounded.VarOf(prog.value().FindPredicate("T"), {a, c});
  int tab = grounded.VarOf(prog.value().FindPredicate("T"), {a, b});
  const Polynomial<TropS>& f = grounded.system().poly(tac);
  ASSERT_EQ(f.monomials.size(), 1u);
  EXPECT_EQ(f.monomials[0].coeff, 2.0);
  EXPECT_EQ(f.monomials[0].powers,
            (std::vector<std::pair<int, int>>{{tab, 1}}));
}

TEST(Grounder, NonSemiringKeepsBottomCoefficients) {
  // Over R⊥, an EDB atom with value ⊥ (unknown cost) must stay in the
  // polynomial and poison the sum (Example 2.6 discussion).
  using L = Lifted<RealS>;
  Domain dom;
  auto prog = ParseProgram(R"(
    bedb E/2.
    edb C/1.
    idb T/1.
    T(X) :- { C(Y) | E(X, Y) }.
  )",
                           &dom);
  ASSERT_TRUE(prog.ok());
  EdbInstance<L> edb(prog.value());
  ConstId a = dom.InternSymbol("a"), b = dom.InternSymbol("b"),
          c = dom.InternSymbol("c");
  auto& e = edb.boolean(prog.value().FindPredicate("E"));
  e.Set({a, b}, true);
  e.Set({a, c}, true);
  auto& cost = edb.pops(prog.value().FindPredicate("C"));
  cost.Set({b, }, L::Lift(3.0));
  // C(c) stays ⊥ (unknown).
  auto grounded = GroundProgram<L>(prog.value(), edb);
  auto iter = grounded.NaiveIterate(10);
  ASSERT_TRUE(iter.converged);
  int ta = grounded.VarOf(prog.value().FindPredicate("T"), {a});
  EXPECT_TRUE(L::Eq(iter.values[ta], L::Bottom()));  // 3 + ⊥ = ⊥
  // With the cost known, the sum materializes.
  cost.Set({c}, L::Lift(4.0));
  auto grounded2 = GroundProgram<L>(prog.value(), edb);
  auto iter2 = grounded2.NaiveIterate(10);
  int ta2 = grounded2.VarOf(prog.value().FindPredicate("T"), {a});
  EXPECT_TRUE(L::Eq(iter2.values[ta2], L::Lift(7.0)));
}

TEST(Grounder, ConditionsRestrictValuationRange) {
  Domain dom;
  auto prog = ParseProgram(R"(
    bedb E/2.
    idb T/1.
    T(X) :- { 1 | E(X, Y), X != Y }.
  )",
                           &dom);
  ASSERT_TRUE(prog.ok());
  EdbInstance<TropS> edb(prog.value());
  ConstId a = dom.InternSymbol("a"), b = dom.InternSymbol("b");
  auto& e = edb.boolean(prog.value().FindPredicate("E"));
  e.Set({a, a}, true);
  e.Set({a, b}, true);
  auto grounded = GroundProgram<TropS>(prog.value(), edb);
  int ta = grounded.VarOf(prog.value().FindPredicate("T"), {a});
  int tb = grounded.VarOf(prog.value().FindPredicate("T"), {b});
  // T(a) gets exactly one monomial (via E(a,b)); T(b) none.
  EXPECT_EQ(grounded.system().poly(ta).monomials.size(), 1u);
  EXPECT_TRUE(grounded.system().poly(tb).monomials.empty());
}

TEST(Grounder, DecodeRoundTripsThroughRelations) {
  Domain dom;
  auto prog = ParseProgram("T(X,Y) :- E(X,Y) ; T(X,Z)*E(Z,Y).", &dom);
  ASSERT_TRUE(prog.ok());
  Graph g = RandomGraph(5, 10, /*seed=*/2);
  std::vector<ConstId> ids = InternVertices(5, &dom);
  EdbInstance<TropS> edb(prog.value());
  LoadEdges<TropS>(g, ids, [](const Edge& e) { return e.weight; },
                   &edb.pops(prog.value().FindPredicate("E")));
  auto grounded = GroundProgram<TropS>(prog.value(), edb);
  auto iter = grounded.NaiveIterate(1000);
  ASSERT_TRUE(iter.converged);
  IdbInstance<TropS> decoded = grounded.Decode(iter.values);
  int t = prog.value().FindPredicate("T");
  for (int s = 0; s < 5; ++s) {
    for (int v = 0; v < 5; ++v) {
      int var = grounded.VarOf(t, {ids[s], ids[v]});
      EXPECT_EQ(decoded.idb(t).Get({ids[s], ids[v]}), iter.values[var]);
    }
  }
}

TEST(Grounder, HeadConstantsGroundCorrectly) {
  Domain dom;
  auto prog = ParseProgram("T(a) :- E(a, Y).", &dom);
  ASSERT_TRUE(prog.ok());
  EdbInstance<NatS> edb(prog.value());
  ConstId a = dom.InternSymbol("a"), b = dom.InternSymbol("b");
  edb.pops(prog.value().FindPredicate("E")).Set({a, b}, 3u);
  auto grounded = GroundProgram<NatS>(prog.value(), edb);
  auto iter = grounded.NaiveIterate(10);
  ASSERT_TRUE(iter.converged);
  int ta = grounded.VarOf(prog.value().FindPredicate("T"), {a});
  EXPECT_EQ(iter.values[ta], 3u);
}

}  // namespace
}  // namespace datalogo
