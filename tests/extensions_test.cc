// Sec. 4.5 extensions: case statements, stratified evaluation, and the
// Theorem 1.2 convergence advisor.
#include <gtest/gtest.h>

#include "src/datalog/advisor.h"
#include "src/datalog/stratified.h"
#include "src/datalogo.h"

namespace datalogo {
namespace {

TEST(CaseStatement, DesugarsWithGuardNegations) {
  Domain dom;
  auto prog = ParseProgram(R"(
    edb V/1.
    bedb Succ/2.
    idb W/1.
    W(I) :- case I = 0 : V(I) ; Succ(J, I) : W(J) * V(I).
  )",
                           &dom);
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  const Rule& rule = prog.value().rules()[0];
  ASSERT_EQ(rule.disjuncts.size(), 2u);
  // Branch 1: guard I = 0.
  ASSERT_EQ(rule.disjuncts[0].conditions.size(), 1u);
  EXPECT_EQ(rule.disjuncts[0].conditions[0].op, CmpOp::kEq);
  // Branch 2: Succ(J, I) AND ¬(I = 0).
  ASSERT_EQ(rule.disjuncts[1].conditions.size(), 2u);
  EXPECT_EQ(rule.disjuncts[1].conditions[0].kind,
            Condition::Kind::kBoolAtom);
  EXPECT_EQ(rule.disjuncts[1].conditions[1].op, CmpOp::kNe);
}

TEST(CaseStatement, PrefixSumSemanticsMatchPaper) {
  // The Sec. 4.5 prefix-sum program written WITH case syntax.
  Domain dom;
  auto prog = ParseProgram(R"(
    edb V/1.
    bedb Succ/2.
    idb W/1.
    W(I) :- case I = 0 : V(I) ; Succ(J, I) : W(J) * V(I).
  )",
                           &dom);
  ASSERT_TRUE(prog.ok());
  ASSERT_TRUE(ValidateProgram(prog.value()).ok());
  const int n = 10;
  EdbInstance<TropNatS> edb(prog.value());
  uint64_t total = 0;
  std::vector<uint64_t> prefix;
  for (int i = 0; i < n; ++i) {
    uint64_t v = (i * 5 + 2) % 7;
    edb.pops(prog.value().FindPredicate("V")).Set({dom.InternInt(i)}, v);
    total += v;
    prefix.push_back(total);
    if (i > 0) {
      edb.boolean(prog.value().FindPredicate("Succ"))
          .Set({dom.InternInt(i - 1), dom.InternInt(i)}, true);
    }
  }
  Engine<TropNatS> engine(prog.value(), edb);
  auto r = engine.Naive(100);
  ASSERT_TRUE(r.converged);
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(
        r.idb.idb(prog.value().FindPredicate("W")).Get({dom.InternInt(i)}),
        prefix[i])
        << i;
  }
}

TEST(CaseStatement, ElseBranchNegatesAllGuards) {
  Domain dom;
  auto prog = ParseProgram(R"(
    edb V/1.
    idb W/1.
    W(I) :- case I = 0 : V(I) ; I = 1 : V(I) * V(I) ; else 1.
  )",
                           &dom);
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  const Rule& rule = prog.value().rules()[0];
  ASSERT_EQ(rule.disjuncts.size(), 3u);
  // else-branch: ¬(I=0) ∧ ¬(I=1), no guard of its own.
  ASSERT_EQ(rule.disjuncts[2].conditions.size(), 2u);
  EXPECT_EQ(rule.disjuncts[2].conditions[0].op, CmpOp::kNe);
  EXPECT_EQ(rule.disjuncts[2].conditions[1].op, CmpOp::kNe);
}

TEST(CaseStatement, CaseAsPredicateNameStillWorks) {
  Domain dom;
  auto prog = ParseProgram("T(X) :- case(X).", &dom);
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  EXPECT_GE(prog.value().FindPredicate("case"), 0);
}

TEST(Stratified, MatchesWholeProgramFixpoint) {
  constexpr const char* kText = R"(
    edb E/2.
    idb T/2.
    idb D/1.
    T(X,Y) :- E(X,Y) ; T(X,Z) * E(Z,Y).
    D(X) :- T(v0, X).
  )";
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Domain dom;
    auto prog = ParseProgram(kText, &dom);
    ASSERT_TRUE(prog.ok());
    Graph g = RandomGraph(8, 18, seed);
    std::vector<ConstId> ids = InternVertices(8, &dom);
    EdbInstance<TropS> edb(prog.value());
    LoadEdges<TropS>(g, ids, [](const Edge& e) { return e.weight; },
                     &edb.pops(prog.value().FindPredicate("E")));
    Engine<TropS> engine(prog.value(), edb);
    auto whole = engine.Naive(10000);
    auto strat = EvaluateStratified<TropS>(prog.value(), edb, 10000);
    ASSERT_TRUE(whole.converged && strat.converged);
    EXPECT_TRUE(whole.idb.Equals(strat.idb)) << seed;
  }
}

TEST(Stratified, FewerStepsOnDeepStrataChains) {
  // A chain of strata A → B → C: stratified evaluation resolves each
  // level once instead of rippling changes through the whole program.
  constexpr const char* kText = R"(
    edb E/2.
    idb A/2.
    idb B/2.
    idb C/2.
    A(X,Y) :- E(X,Y) ; A(X,Z) * E(Z,Y).
    B(X,Y) :- A(X,Y) ; B(X,Z) * A(Z,Y).
    C(X,Y) :- B(X,Y) ; C(X,Z) * B(Z,Y).
  )";
  Domain dom;
  auto prog = ParseProgram(kText, &dom);
  ASSERT_TRUE(prog.ok());
  Graph g(12);
  for (int i = 0; i + 1 < 12; ++i) g.AddEdge(i, i + 1, 1.0);
  std::vector<ConstId> ids = InternVertices(12, &dom);
  EdbInstance<BoolS> edb(prog.value());
  LoadEdges<BoolS>(g, ids, [](const Edge&) { return true; },
                   &edb.pops(prog.value().FindPredicate("E")));
  Engine<BoolS> engine(prog.value(), edb);
  auto whole = engine.Naive(10000);
  auto strat = EvaluateStratified<BoolS>(prog.value(), edb, 10000);
  ASSERT_TRUE(whole.converged && strat.converged);
  EXPECT_TRUE(whole.idb.Equals(strat.idb));
  EXPECT_LE(strat.work, whole.work);
}

template <Pops P, typename F>
ConvergenceReport AdviseFor(const char* text, F&& lift) {
  Domain dom;
  auto prog = ParseProgram(text, &dom).value();
  Graph g = CycleGraph(4);
  std::vector<ConstId> ids = InternVertices(4, &dom);
  EdbInstance<P> edb(prog);
  LoadEdges<P>(g, ids, lift, &edb.pops(prog.FindPredicate("E")));
  auto grounded = GroundProgram<P>(prog, edb);
  return Advise(grounded);
}

constexpr const char* kTc = R"(
  edb E/2.
  idb T/2.
  T(X,Y) :- E(X,Y) ; T(X,Z) * E(Z,Y).
)";

TEST(Advisor, TheoremOneTwoVerdicts) {
  auto trop = AdviseFor<TropS>(kTc, [](const Edge& e) { return e.weight; });
  EXPECT_EQ(trop.verdict, ConvergenceVerdict::kPolynomialTime);
  EXPECT_TRUE(trop.recursive);
  EXPECT_TRUE(trop.linear);
  EXPECT_EQ(trop.bound, static_cast<uint64_t>(trop.num_vars));

  auto trop1 = AdviseFor<TropPS<1>>(
      kTc, [](const Edge& e) { return TropPS<1>::FromScalar(e.weight); });
  EXPECT_EQ(trop1.verdict, ConvergenceVerdict::kBoundedSteps);
  EXPECT_LT(trop1.bound, kBoundInf);

  TropEtaS::ScopedEta eta(3.0);
  auto trope = AdviseFor<TropEtaS>(
      kTc, [](const Edge& e) { return TropEtaS::FromScalar(e.weight); });
  EXPECT_EQ(trope.verdict, ConvergenceVerdict::kConverges);

  auto nat = AdviseFor<NatS>(
      kTc, [](const Edge& e) { return static_cast<uint64_t>(e.weight); });
  EXPECT_EQ(nat.verdict, ConvergenceVerdict::kMayDiverge);
}

TEST(Advisor, AcyclicGroundingIsAlwaysSafe) {
  // Even over the unstable N, a DAG grounding converges within N steps.
  Domain dom;
  auto prog = ParseProgram(kTc, &dom).value();
  Graph g = LayeredDag(3, 2, 0.9, 2);
  std::vector<ConstId> ids = InternVertices(g.num_vertices(), &dom);
  EdbInstance<NatS> edb(prog);
  LoadEdges<NatS>(g, ids,
                  [](const Edge&) { return static_cast<uint64_t>(1); },
                  &edb.pops(prog.FindPredicate("E")));
  auto grounded = GroundProgram<NatS>(prog, edb);
  auto report = Advise(grounded);
  EXPECT_FALSE(report.recursive);
  EXPECT_EQ(report.verdict, ConvergenceVerdict::kPolynomialTime);
  // And the prediction is honest: it really converges within the bound.
  auto iter = grounded.NaiveIterate(static_cast<int>(report.bound) + 2);
  EXPECT_TRUE(iter.converged);
}

TEST(Advisor, LiftedRealsAlwaysConverge) {
  // Corollary 5.17 + trivial core: every program over R⊥ converges.
  using L = Lifted<RealS>;
  auto report =
      AdviseFor<L>(kTc, [](const Edge& e) { return L::Lift(e.weight); });
  EXPECT_EQ(report.verdict, ConvergenceVerdict::kPolynomialTime);
}

TEST(Advisor, VerdictNamesArePrintable) {
  EXPECT_STREQ(VerdictName(ConvergenceVerdict::kPolynomialTime),
               "POLYNOMIAL_TIME");
  EXPECT_STREQ(VerdictName(ConvergenceVerdict::kMayDiverge), "MAY_DIVERGE");
}

}  // namespace
}  // namespace datalogo
