// The vectorized value plane vs its scalar definitions, at two layers.
// Layer 1: every typed ⊗/⊕ kernel in src/core/simd.h against its scalar
// reference twin, bit-for-bit, over tail lengths 0..2×lane-width plus a
// few (crossing every vector-body/scalar-tail split) and adversarial
// contents — ±0.0 in both operand orders (hardware min/max return the
// SECOND operand on ties; std::min/std::max return the FIRST, so an
// unswapped kernel flips the sign bit), ±∞, u64 values that straddle the
// signed-compare bias, saturation boundaries at UINT64_MAX. Layer 2:
// every SemiringSimdTraits specialization against the definitional
// TimesScalarVecRef/PlusVecRef loops over P::Times/P::Plus — the
// exactness contract the engine's cross-kernel determinism pins rest on.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <random>
#include <vector>

#include "src/core/simd.h"
#include "src/semiring/boolean.h"
#include "src/semiring/naturals.h"
#include "src/semiring/reals.h"
#include "src/semiring/simd_traits.h"
#include "src/semiring/tropical.h"

namespace datalogo {
namespace {

constexpr uint32_t kMaxN = 19;  // > 2 × any shipped lane width + 3
constexpr double kPosInf = std::numeric_limits<double>::infinity();

// Doubles compare as bit patterns: EXPECT_EQ(-0.0, 0.0) passes, but the
// engine's goldens (and the relation hash) see the bytes.
void ExpectBitsEq(const double* ref, const double* got, uint32_t n,
                  const char* what) {
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t rb, gb;
    std::memcpy(&rb, &ref[i], sizeof rb);
    std::memcpy(&gb, &got[i], sizeof gb);
    EXPECT_EQ(rb, gb) << what << " lane " << i << " of " << n << ": "
                      << ref[i] << " vs " << got[i];
  }
}

double AdversarialF64(std::mt19937& rng, int variant) {
  switch (variant) {
    case 0:  // plain magnitudes
      return static_cast<double>(rng() % 1000) * 0.25;
    case 1:  // signed zeros, both signs
      return rng() % 2 ? 0.0 : -0.0;
    case 2:  // infinities mixed with finite values
      switch (rng() % 4) {
        case 0: return kPosInf;
        case 1: return -kPosInf;
        default: return static_cast<double>(rng() % 7) - 3.0;
      }
    default:  // denormal-scale and huge values
      return rng() % 2 ? 1e-310 : 1e300;
  }
}

uint64_t AdversarialU64(std::mt19937& rng, int variant) {
  switch (variant) {
    case 0:  // small counts
      return rng() % 16;
    case 1:  // straddle the sign bit (signed-compare bias surface)
      return (uint64_t{1} << 63) + rng() % 1024 - 512;
    case 2:  // saturation boundary
      switch (rng() % 3) {
        case 0: return UINT64_MAX;
        case 1: return UINT64_MAX - rng() % 8;
        default: return rng() % 8;
      }
    default:  // full-range random
      return (uint64_t{rng()} << 32) | rng();
  }
}

TEST(SimdValue, GatherF64MatchesScalarOverAllTailLengths) {
  std::mt19937 rng(0x6F64A11);
  std::vector<double> col(256);
  for (std::size_t i = 0; i < col.size(); ++i) {
    col[i] = AdversarialF64(rng, static_cast<int>(i % 4));
  }
  for (uint32_t n = 0; n <= kMaxN; ++n) {
    std::vector<uint32_t> rows(n);
    for (auto& r : rows) r = rng() % col.size();
    std::vector<double> ref(n, 0), got(n, 0), via_switch(n, 0);
    simd::GatherF64Scalar(col.data(), rows.data(), n, ref.data());
    simd::GatherF64(col.data(), rows.data(), n, ScanKernel::kSimd,
                    got.data());
    ExpectBitsEq(ref.data(), got.data(), n, "GatherF64");
    simd::GatherF64(col.data(), rows.data(), n, ScanKernel::kScalar,
                    via_switch.data());
    ExpectBitsEq(ref.data(), via_switch.data(), n, "GatherF64/switch");
  }
}

TEST(SimdValue, ScalarAccumulatorF64KernelsMatchScalar) {
  std::mt19937 rng(0xACC0F64);
  for (uint32_t n = 0; n <= kMaxN; ++n) {
    for (int variant = 0; variant < 4; ++variant) {
      std::vector<double> vals(n);
      for (auto& v : vals) v = AdversarialF64(rng, variant);
      for (double acc : {0.0, -0.0, 1.5, kPosInf, -kPosInf}) {
        std::vector<double> ref(n, 0), got(n, 0);
        simd::AddScalarF64Scalar(acc, vals.data(), n, ref.data());
        simd::AddScalarF64(acc, vals.data(), n, ScanKernel::kSimd,
                           got.data());
        ExpectBitsEq(ref.data(), got.data(), n, "AddScalarF64");
        simd::MulScalarF64Scalar(acc, vals.data(), n, ref.data());
        simd::MulScalarF64(acc, vals.data(), n, ScanKernel::kSimd,
                           got.data());
        ExpectBitsEq(ref.data(), got.data(), n, "MulScalarF64");
      }
    }
  }
}

TEST(SimdValue, ElementwiseF64KernelsMatchScalarIncludingTies) {
  std::mt19937 rng(0xE1E3F64);
  for (uint32_t n = 0; n <= kMaxN; ++n) {
    for (int variant = 0; variant < 4; ++variant) {
      std::vector<double> a(n), b(n);
      for (uint32_t i = 0; i < n; ++i) {
        a[i] = AdversarialF64(rng, variant);
        // Force frequent exact ties (same value, and ±0.0 pairs in both
        // orders): the operand-order surface for min/max.
        b[i] = rng() % 3 == 0 ? a[i] : AdversarialF64(rng, variant);
        if (variant == 1 && rng() % 2) b[i] = -a[i];
      }
      std::vector<double> ref(n, 0), got(n, 0);
      simd::MinF64Scalar(a.data(), b.data(), n, ref.data());
      simd::MinF64(a.data(), b.data(), n, ScanKernel::kSimd, got.data());
      ExpectBitsEq(ref.data(), got.data(), n, "MinF64");
      simd::MaxF64Scalar(a.data(), b.data(), n, ref.data());
      simd::MaxF64(a.data(), b.data(), n, ScanKernel::kSimd, got.data());
      ExpectBitsEq(ref.data(), got.data(), n, "MaxF64");
      simd::AddF64Scalar(a.data(), b.data(), n, ref.data());
      simd::AddF64(a.data(), b.data(), n, ScanKernel::kSimd, got.data());
      ExpectBitsEq(ref.data(), got.data(), n, "AddF64");
    }
  }
}

TEST(SimdValue, SaturatingU64KernelsMatchScalar) {
  std::mt19937 rng(0x5A7A64);
  for (uint32_t n = 0; n <= kMaxN; ++n) {
    for (int variant = 0; variant < 4; ++variant) {
      std::vector<uint64_t> a(n), b(n);
      for (uint32_t i = 0; i < n; ++i) {
        a[i] = AdversarialU64(rng, variant);
        b[i] = AdversarialU64(rng, variant);
      }
      std::vector<uint64_t> ref(n, 0), got(n, 0);
      simd::SatAddU64Scalar(a.data(), b.data(), n, ref.data());
      simd::SatAddU64(a.data(), b.data(), n, ScanKernel::kSimd, got.data());
      EXPECT_EQ(ref, got) << "SatAddU64 n=" << n << " variant=" << variant;
      simd::MinU64Scalar(a.data(), b.data(), n, ref.data());
      simd::MinU64(a.data(), b.data(), n, ScanKernel::kSimd, got.data());
      EXPECT_EQ(ref, got) << "MinU64 n=" << n << " variant=" << variant;
      for (uint64_t acc : {uint64_t{0}, uint64_t{3}, UINT64_MAX - 2,
                           UINT64_MAX}) {
        simd::SatAddScalarU64Scalar(acc, a.data(), n, ref.data());
        simd::SatAddScalarU64(acc, a.data(), n, ScanKernel::kSimd,
                              got.data());
        EXPECT_EQ(ref, got) << "SatAddScalarU64 n=" << n << " acc=" << acc;
      }
    }
  }
}

TEST(SimdValue, ByteKernelsMatchScalar) {
  std::mt19937 rng(0xB17E5);
  for (uint32_t n = 0; n <= 2 * simd::kLanes8 + 3; ++n) {
    std::vector<uint8_t> a(n), b(n);
    // Nominally 0/1, but the kernels must preserve arbitrary bytes.
    for (uint32_t i = 0; i < n; ++i) {
      a[i] = static_cast<uint8_t>(rng() % 2 ? rng() % 256 : 0);
      b[i] = static_cast<uint8_t>(rng() % 2 ? rng() % 256 : 0);
    }
    std::vector<uint8_t> ref(n, 0), got(n, 0);
    simd::OrU8Scalar(a.data(), b.data(), n, ref.data());
    simd::OrU8(a.data(), b.data(), n, ScanKernel::kSimd, got.data());
    EXPECT_EQ(ref, got) << "OrU8 n=" << n;
    for (uint8_t acc : {uint8_t{0}, uint8_t{1}, uint8_t{0xFF}}) {
      simd::AndScalarU8Scalar(acc, a.data(), n, ref.data());
      simd::AndScalarU8(acc, a.data(), n, ScanKernel::kSimd, got.data());
      EXPECT_EQ(ref, got) << "AndScalarU8 n=" << n << " acc=" << int{acc};
    }
  }
}

// ---------------------------------------------------------------------
// Layer 2: trait kernels vs the definitional P::Times / P::Plus loops.
// Fixed-size carrier arrays sidestep std::vector<bool>.

template <typename P, typename MakeVal, typename MakeAcc>
void TraitMatchesDefinitionalRef(MakeVal make_val, MakeAcc make_acc,
                                 uint32_t seed) {
  using Traits = SemiringSimdTraits<P>;
  using Value = typename P::Value;
  static_assert(Traits::kVectorized);
  std::mt19937 rng(seed);
  for (ScanKernel k : {ScanKernel::kScalar, ScanKernel::kSimd}) {
    for (uint32_t n = 0; n <= kMaxN; ++n) {
      for (int round = 0; round < 8; ++round) {
        Value vals[kMaxN + 1], a[kMaxN + 1], b[kMaxN + 1];
        Value ref[kMaxN + 1], got[kMaxN + 1];
        for (uint32_t i = 0; i < n; ++i) {
          vals[i] = make_val(rng);
          a[i] = make_val(rng);
          b[i] = rng() % 3 == 0 ? a[i] : make_val(rng);
        }
        const Value acc = make_acc(rng, round);
        TimesScalarVecRef<P>(acc, vals, n, ref);
        Traits::TimesScalarVec(acc, vals, n, k, got);
        for (uint32_t i = 0; i < n; ++i) {
          EXPECT_EQ(0, std::memcmp(&ref[i], &got[i], sizeof(Value)))
              << P::kName << " TimesScalarVec lane " << i << " n=" << n
              << " kernel=" << (k == ScanKernel::kSimd ? "simd" : "scalar");
        }
        PlusVecRef<P>(a, b, n, ref);
        Traits::PlusVec(a, b, n, k, got);
        for (uint32_t i = 0; i < n; ++i) {
          EXPECT_EQ(0, std::memcmp(&ref[i], &got[i], sizeof(Value)))
              << P::kName << " PlusVec lane " << i << " n=" << n;
        }
      }
    }
  }
}

TEST(SimdValueTraits, TropMatchesDefinitionalRef) {
  // ⊗-accumulators cycle through 1 = 0.0, finite weights and 0 = ∞;
  // values include signed zeros (⊕ tie order) and ∞ (annihilator).
  TraitMatchesDefinitionalRef<TropS>(
      [](std::mt19937& rng) { return AdversarialF64(rng, rng() % 3); },
      [](std::mt19937& rng, int round) {
        return round % 3 == 0 ? TropS::One()
               : round % 3 == 1 ? TropS::Zero()
                                : static_cast<double>(rng() % 50) * 0.5;
      },
      0x7407);
}

TEST(SimdValueTraits, TropNatMatchesDefinitionalRef) {
  TraitMatchesDefinitionalRef<TropNatS>(
      [](std::mt19937& rng) { return AdversarialU64(rng, rng() % 4); },
      [](std::mt19937& rng, int round) {
        return round % 3 == 0 ? TropNatS::One()
               : round % 3 == 1 ? TropNatS::kInf
                                : uint64_t{rng() % 1000};
      },
      0x7404A7);
}

TEST(SimdValueTraits, BoolMatchesDefinitionalRef) {
  TraitMatchesDefinitionalRef<BoolS>(
      [](std::mt19937& rng) { return rng() % 2 == 0; },
      [](std::mt19937&, int round) { return round % 2 == 0; }, 0xB001);
}

TEST(SimdValueTraits, NatMatchesDefinitionalRef) {
  // The saturating-multiply threshold hoist must reproduce N::Times
  // exactly at 0, ∞, and on both sides of every overflow boundary.
  TraitMatchesDefinitionalRef<NatS>(
      [](std::mt19937& rng) { return AdversarialU64(rng, rng() % 4); },
      [](std::mt19937& rng, int round) {
        switch (round % 5) {
          case 0: return uint64_t{0};
          case 1: return NatS::kInf;
          case 2: return uint64_t{1} << 32;  // overflows against 2^32 vals
          case 3: return UINT64_MAX - 1;
          default: return uint64_t{rng() % 100};
        }
      },
      0x4A7);
}

TEST(SimdValueTraits, RealPlusMatchesDefinitionalRef) {
  TraitMatchesDefinitionalRef<RealPlusS>(
      [](std::mt19937& rng) { return AdversarialF64(rng, rng() % 4); },
      [](std::mt19937& rng, int round) {
        return round % 3 == 0 ? RealPlusS::One()
               : round % 3 == 1 ? RealPlusS::Zero()
                                : AdversarialF64(rng, 0);
      },
      0x4EA1);
}

TEST(SimdValueTraits, OptInSetIsExactlyThePodCarriers) {
  static_assert(SemiringSimdTraits<TropS>::kVectorized);
  static_assert(SemiringSimdTraits<TropNatS>::kVectorized);
  static_assert(SemiringSimdTraits<BoolS>::kVectorized);
  static_assert(SemiringSimdTraits<NatS>::kVectorized);
  static_assert(SemiringSimdTraits<RealPlusS>::kVectorized);
  // Trait-less semirings keep the primary template: the engine's value
  // plane must be unreachable for them.
  static_assert(!SemiringSimdTraits<MaxPlusS>::kVectorized);
  static_assert(!SemiringSimdTraits<ViterbiS>::kVectorized);
  // Float sums reassociate: R+ must never license ⊕-coalescing.
  static_assert(!SemiringSimdTraits<RealPlusS>::kExactPlusFold);
  static_assert(SemiringSimdTraits<TropS>::kExactPlusFold);
  SUCCEED();
}

}  // namespace
}  // namespace datalogo
