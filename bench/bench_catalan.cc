// E12 — Example 5.5: iterating f(x) = b + a·x² over the free semiring
// N[a,b]. The coefficient of a^n b^{n+1} stabilizes to the n-th Catalan
// number after n iterations even though the iteration itself never
// converges (N[X] is not stable).
#include "bench/bench_util.h"

namespace datalogo {
namespace {

PolySystem<ProvPolyS> CatalanSystem() {
  PolySystem<ProvPolyS> sys(1);
  sys.poly(0).Add(Monomial<ProvPolyS>{ProvPolyS::Var("b"), {}, {}});
  sys.poly(0).Add(Monomial<ProvPolyS>{ProvPolyS::Var("a"), {{0, 2}}, {}});
  return sys;
}

void PrintTables() {
  Banner("E12 bench_catalan",
         "Example 5.5: coefficient of a^n b^(n+1) in f^(q)(0), f = b+a*x^2");
  auto sys = CatalanSystem();
  const int max_q = 7;
  std::printf("%-4s", "q");
  for (int n = 0; n < 6; ++n) std::printf("  n=%-8d", n);
  std::printf("\n");
  std::vector<ProvPolyS::Value> x = {ProvPolyS::Zero()};
  for (int q = 1; q <= max_q; ++q) {
    x = sys.Evaluate(x);
    std::printf("%-4d", q);
    for (int n = 0; n < 6; ++n) {
      ProvMonomial m{{"a", static_cast<uint32_t>(n)},
                     {"b", static_cast<uint32_t>(n + 1)}};
      if (n == 0) m.erase("a");
      std::printf("  %-10llu", static_cast<unsigned long long>(
                                   ProvPolyS::Coefficient(x[0], m)));
    }
    std::printf("\n");
  }
  std::printf("(stabilized prefix = Catalan numbers 1,1,2,5,14,42 — the\n"
              " paper's Eq. 33; rows q stabilize columns n <= q-1)\n");
}

void BM_CatalanIteration(benchmark::State& state) {
  const int q = static_cast<int>(state.range(0));
  auto sys = CatalanSystem();
  for (auto _ : state) {
    std::vector<ProvPolyS::Value> x = {ProvPolyS::Zero()};
    for (int i = 0; i < q; ++i) x = sys.Evaluate(x);
    benchmark::DoNotOptimize(x[0].size());
    state.counters["monomials"] = static_cast<double>(x[0].size());
  }
}

BENCHMARK(BM_CatalanIteration)->Arg(4)->Arg(6)->Arg(8);

}  // namespace
}  // namespace datalogo

int main(int argc, char** argv) {
  datalogo::PrintTables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
