// E9/E10 — Section 6: semi-naive vs naive evaluation. The table reports
// join-work (generator entries touched) on chains, random graphs and
// grids, for linear TC (B), quadratic TC (Ex. 6.6) and SSSP (Trop+);
// the timing section sweeps graph size.
#include "bench/bench_util.h"

namespace datalogo {
namespace {

constexpr const char* kQuadTc = R"(
  edb E/2.
  idb T/2.
  T(X,Y) :- E(X,Y) ; T(X,Z) * T(Z,Y).
)";

struct WorkRow {
  const char* name;
  uint64_t naive_work;
  uint64_t semi_work;
  bool agree;
};

template <Pops P>
  requires CompleteDistributiveDioid<P> && NaturallyOrderedSemiring<P>
WorkRow Measure(const char* name, const char* text, const Graph& g,
                auto&& lift) {
  Domain dom;
  auto prog = ParseProgram(text, &dom).value();
  std::vector<ConstId> ids = InternVertices(g.num_vertices(), &dom);
  EdbInstance<P> edb(prog);
  LoadEdges<P>(g, ids, lift, &edb.pops(prog.FindPredicate("E")));
  Engine<P> engine(prog, edb);
  auto naive = engine.Naive(1 << 20);
  auto semi = engine.SemiNaive(1 << 20);
  return {name, naive.work, semi.work, naive.idb.Equals(semi.idb)};
}

void PrintTables() {
  Banner("E9/E10 bench_seminaive",
         "Sec. 6: join-work of naive vs semi-naive (Thm 6.4/6.5, Ex. 6.6)");
  std::vector<WorkRow> rows;
  {
    Graph chain(80);
    for (int i = 0; i + 1 < 80; ++i) chain.AddEdge(i, i + 1, 1.0);
    rows.push_back(Measure<BoolS>("TC/B chain-80", R"(
        edb E/2. idb T/2. T(X,Y) :- E(X,Y) ; T(X,Z) * E(Z,Y).)",
                                  chain, [](const Edge&) { return true; }));
    rows.push_back(Measure<BoolS>("TCq/B chain-80", kQuadTc, chain,
                                  [](const Edge&) { return true; }));
    rows.push_back(Measure<TropS>("SSSP-ish/Trop chain-80", R"(
        edb E/2. idb L/1. L(X) :- [X = v0] ; L(Z) * E(Z, X).)",
                                  chain,
                                  [](const Edge& e) { return e.weight; }));
  }
  {
    Graph g = RandomGraph(60, 180, /*seed=*/5);
    rows.push_back(Measure<BoolS>("TC/B random-60", R"(
        edb E/2. idb T/2. T(X,Y) :- E(X,Y) ; T(X,Z) * E(Z,Y).)",
                                  g, [](const Edge&) { return true; }));
    rows.push_back(Measure<TropS>("APSP/Trop random-60", R"(
        edb E/2. idb T/2. T(X,Y) :- E(X,Y) ; T(X,Z) * E(Z,Y).)",
                                  g,
                                  [](const Edge& e) { return e.weight; }));
  }
  {
    Graph g = GridGraph(8, 8);
    rows.push_back(Measure<TropS>("APSP/Trop grid-8x8", R"(
        edb E/2. idb T/2. T(X,Y) :- E(X,Y) ; T(X,Z) * E(Z,Y).)",
                                  g,
                                  [](const Edge& e) { return e.weight; }));
  }
  // Ablation: Algorithm 3 without the differential rule (Sec. 6.3).
  {
    Domain dom;
    auto prog = ApspProgram(&dom).value();
    Graph g = RandomGraph(60, 180, /*seed=*/5);
    std::vector<ConstId> ids = InternVertices(60, &dom);
    EdbInstance<TropS> edb(prog);
    LoadEdges<TropS>(g, ids, [](const Edge& e) { return e.weight; },
                     &edb.pops(prog.FindPredicate("E")));
    Engine<TropS> engine(prog, edb);
    auto nodiff = engine.SemiNaiveNonDifferential(1 << 20);
    rows.push_back(WorkRow{"ablation: no diff rule", nodiff.work,
                           engine.SemiNaive(1 << 20).work, true});
  }
  std::printf("%-24s %-14s %-14s %-8s %-6s\n", "workload", "naive-work",
              "semi-work", "speedup", "agree");
  for (const WorkRow& r : rows) {
    std::printf("%-24s %-14llu %-14llu %-8.1fx %-6s\n", r.name,
                static_cast<unsigned long long>(r.naive_work),
                static_cast<unsigned long long>(r.semi_work),
                static_cast<double>(r.naive_work) /
                    static_cast<double>(r.semi_work ? r.semi_work : 1),
                r.agree ? "yes" : "NO");
  }
  std::printf(
      "(shape: semi-naive wins everywhere; the factor grows with the\n"
      " iteration depth — the paper's motivation for Algorithm 3)\n");
}

// Index caching: the seed engine rebuilt every RelationIndex per joining
// step; the IndexCache reuses an index until its relation mutates, so EDB
// indexes are built once per run instead of once per disjunct-evaluation.
void PrintIndexCachingTable() {
  Banner("index caching (EngineOptions::cache_indexes)",
         "engine bugfix: indexes cached per (relation, position-set)");
  struct Row {
    const char* name;
    uint64_t builds_off;
    uint64_t builds_on;
    uint64_t hits_on;
    bool agree;
  };
  std::vector<Row> rows;
  auto measure = [&](const char* name, int n, int m, bool semi) {
    Domain dom;
    auto prog = ApspProgram(&dom).value();
    Graph g = RandomGraph(n, m, /*seed=*/5);
    std::vector<ConstId> ids = InternVertices(n, &dom);
    EdbInstance<TropS> edb(prog);
    LoadEdges<TropS>(g, ids, [](const Edge& e) { return e.weight; },
                     &edb.pops(prog.FindPredicate("E")));
    Engine<TropS> off(prog, edb, EngineOptions{.cache_indexes = false});
    Engine<TropS> on(prog, edb, EngineOptions{.cache_indexes = true});
    auto r_off = semi ? off.SemiNaive(1 << 20) : off.Naive(1 << 20);
    auto r_on = semi ? on.SemiNaive(1 << 20) : on.Naive(1 << 20);
    rows.push_back(Row{name, off.index_builds(), on.index_builds(),
                       on.index_hits(), r_off.idb.Equals(r_on.idb)});
  };
  measure("APSP naive random-60", 60, 180, /*semi=*/false);
  measure("APSP semi random-60", 60, 180, /*semi=*/true);
  measure("APSP semi random-120", 120, 360, /*semi=*/true);
  std::printf("%-22s %-13s %-13s %-11s %-6s\n", "workload", "builds(off)",
              "builds(on)", "hits(on)", "agree");
  for (const Row& r : rows) {
    std::printf("%-22s %-13llu %-13llu %-11llu %-6s\n", r.name,
                static_cast<unsigned long long>(r.builds_off),
                static_cast<unsigned long long>(r.builds_on),
                static_cast<unsigned long long>(r.hits_on),
                r.agree ? "yes" : "NO");
  }
  std::printf(
      "(builds(on) ≪ builds(off): the EDB index is built once per run and\n"
      " every further lookup is a hit; results are identical either way)\n");
}

// Parallel ICO step: wall time per thread count on the APSP workload,
// with a determinism cross-check against the sequential engine. On a
// single hardware core this table measures the prepare/reduce overhead
// of the parallel path; on a multi-core machine it shows the scaling.
void PrintParallelTable() {
  Banner("parallel ICO step (EngineOptions::num_threads)",
         "rule/shard-parallel join execution with deterministic merge");
  const bool smoke = BenchSmokeMode();
  const int n = smoke ? 48 : 128;
  Domain dom;
  auto prog = ApspProgram(&dom).value();
  Graph g = RandomGraph(n, 3 * n, /*seed=*/9);
  std::vector<ConstId> ids = InternVertices(n, &dom);
  EdbInstance<TropS> edb(prog);
  LoadEdges<TropS>(g, ids, [](const Edge& e) { return e.weight; },
                   &edb.pops(prog.FindPredicate("E")));
  Engine<TropS> seq(prog, edb);
  auto base_naive = seq.Naive(1 << 20);
  auto base_semi = seq.SemiNaive(1 << 20);
  std::printf("%-10s %-14s %-14s %-8s %-6s (APSP/Trop random-%d)\n",
              "threads", "naive-ms", "semi-ms", "work=", "agree", n);
  for (int threads : BenchThreadCounts()) {
    Engine<TropS> engine(prog, edb,
                         EngineOptions{.num_threads = threads});
    double naive_ms = 1e300, semi_ms = 1e300;
    EvalResult<TropS> naive{IdbInstance<TropS>(prog)};
    EvalResult<TropS> semi{IdbInstance<TropS>(prog)};
    for (int rep = 0; rep < (smoke ? 1 : 3); ++rep) {
      naive_ms = std::min(naive_ms, WallMs([&] {
                            naive = engine.Naive(1 << 20);
                          }));
      semi_ms = std::min(semi_ms, WallMs([&] {
                           semi = engine.SemiNaive(1 << 20);
                         }));
    }
    const bool agree = naive.idb.Equals(base_naive.idb) &&
                       semi.idb.Equals(base_semi.idb);
    const bool work_eq =
        naive.work == base_naive.work && semi.work == base_semi.work;
    std::printf("%-10d %-14.2f %-14.2f %-8s %-6s\n", threads, naive_ms,
                semi_ms, work_eq ? "yes" : "NO", agree ? "yes" : "NO");
  }
  std::printf(
      "(fixpoints and work counters are identical at every thread count —\n"
      " the deterministic (disjunct, shard) merge order replays the\n"
      " sequential head-merge sequence)\n");
}

// Index tiers and scan kernels: the hash index is the general tier;
// dense single-column keys get an offset-addressed direct tier (kAuto
// detects density, kDirect forces it), and index-build column scans run
// through the SIMD kernels in src/core/simd.h. Every combination is
// pinned to the same fixpoint, work counter and four index counters —
// only wall time and the probe counters (hash vs direct lookups) move.
void PrintIndexTierTable() {
  Banner("index tiers & scan kernels (EngineOptions::index_kind/scan_kernel)",
         "dense-id direct indexes + SIMD column scans, bit-identical");
  const bool smoke = BenchSmokeMode();
  const int reps = smoke ? 1 : 3;
  const int n = smoke ? 48 : 128;
  Domain dom;
  auto prog = ApspProgram(&dom).value();
  Graph g = RandomGraph(n, 3 * n, /*seed=*/9);
  std::vector<ConstId> ids = InternVertices(n, &dom);
  EdbInstance<TropS> edb(prog);
  LoadEdges<TropS>(g, ids, [](const Edge& e) { return e.weight; },
                   &edb.pops(prog.FindPredicate("E")));
  // Reference: the pre-tier behaviour (hash everywhere, scalar scans).
  Engine<TropS> ref(prog, edb,
                    EngineOptions{.index_kind = IndexKind::kHash,
                                  .scan_kernel = ScanKernel::kScalar});
  auto base = ref.SemiNaive(1 << 20);
  std::printf("%-14s %-10s %-12s %-13s %-12s %-7s %-6s (APSP/Trop random-%d"
              ", simd=%s)\n",
              "index/scan", "semi-ms", "hash-probes", "direct-probes",
              "incr-appends", "pinned", "agree", n, simd::IsaName());
  for (IndexKind kind : {IndexKind::kHash, IndexKind::kDirect,
                         IndexKind::kAuto}) {
    for (ScanKernel scan : {ScanKernel::kScalar, ScanKernel::kSimd}) {
      const EngineOptions opts{.index_kind = kind, .scan_kernel = scan};
      double best_ms = 1e300;
      EvalResult<TropS> r{IdbInstance<TropS>(prog)};
      uint64_t hash_probes = 0, direct_probes = 0, incr = 0;
      bool pinned = false;
      for (int rep = 0; rep < reps; ++rep) {
        Engine<TropS> engine(prog, edb, opts);
        EvalResult<TropS> cur{IdbInstance<TropS>(prog)};
        double ms = WallMs([&] { cur = engine.SemiNaive(1 << 20); });
        if (ms < best_ms) {
          best_ms = ms;
          hash_probes = engine.hash_probes();
          direct_probes = engine.direct_probes();
          incr = engine.idx_incremental_appends();
          pinned = cur.work == base.work &&
                   engine.index_builds() == ref.index_builds() &&
                   engine.index_hits() == ref.index_hits() &&
                   engine.idb_index_builds() == ref.idb_index_builds() &&
                   engine.idb_index_hits() == ref.idb_index_hits();
          r = std::move(cur);
        }
      }
      std::string config = std::string(IndexKindName(kind)) + "/" +
                           ScanKernelName(scan);
      std::printf("%-14s %-10.2f %-12llu %-13llu %-12llu %-7s %-6s\n",
                  config.c_str(), best_ms,
                  static_cast<unsigned long long>(hash_probes),
                  static_cast<unsigned long long>(direct_probes),
                  static_cast<unsigned long long>(incr),
                  pinned ? "yes" : "NO",
                  r.idb.Equals(base.idb) ? "yes" : "NO");
    }
  }
  std::printf(
      "(direct/auto route the dense APSP key lookups off the hash map —\n"
      " hash-probes drops to the Boolean-condition remainder — and the\n"
      " Clear+append delta cycle keeps incr-appends nonzero; `work` and\n"
      " the four index counters are pinned across every combination)\n");
}

// Scalar vs batched join kernel: the same APSP workload driven through
// the row-at-a-time reference join and the SIMD batched bind/check join
// (gather/compare-mask/compress over kJoinBatch-row chunks of each entry
// list). Fixpoints, work, and join_batched_rows' invariant (== work when
// batched, 0 when scalar) hold at every thread count — only wall time
// moves.
void PrintJoinKernelTable() {
  Banner("scalar vs batched join kernel (EngineOptions::scan_kernel)",
         "SIMD batched bind/check over entry lists, bit-identical");
  const bool smoke = BenchSmokeMode();
  const int reps = smoke ? 1 : 3;
  const int n = smoke ? 48 : 128;
  Domain dom;
  auto prog = ApspProgram(&dom).value();
  Graph g = RandomGraph(n, 3 * n, /*seed=*/9);
  std::vector<ConstId> ids = InternVertices(n, &dom);
  EdbInstance<TropS> edb(prog);
  LoadEdges<TropS>(g, ids, [](const Edge& e) { return e.weight; },
                   &edb.pops(prog.FindPredicate("E")));
  Engine<TropS> ref(prog, edb,
                    EngineOptions{.scan_kernel = ScanKernel::kScalar});
  auto base = ref.SemiNaive(1 << 20);
  std::printf("%-14s %-10s %-10s %-16s %-7s %-6s (APSP/Trop random-%d)\n",
              "join-kernel", "threads", "semi-ms", "batched-rows", "pinned",
              "agree", n);
  for (ScanKernel scan : {ScanKernel::kScalar, ScanKernel::kSimd}) {
    for (int threads : {1, 4}) {
      const EngineOptions opts{.num_threads = threads, .scan_kernel = scan};
      double best_ms = 1e300;
      EvalResult<TropS> r{IdbInstance<TropS>(prog)};
      uint64_t batched = 0;
      for (int rep = 0; rep < reps; ++rep) {
        Engine<TropS> engine(prog, edb, opts);
        EvalResult<TropS> cur{IdbInstance<TropS>(prog)};
        double ms = WallMs([&] { cur = engine.SemiNaive(1 << 20); });
        if (ms < best_ms) {
          best_ms = ms;
          batched = engine.join_batched_rows();
          r = std::move(cur);
        }
      }
      const bool pinned =
          r.work == base.work &&
          (scan == ScanKernel::kSimd ? batched == r.work : batched == 0);
      std::printf("%-14s %-10d %-10.2f %-16llu %-7s %-6s\n",
                  JoinKernelName(scan).c_str(), threads, best_ms,
                  static_cast<unsigned long long>(batched),
                  pinned ? "yes" : "NO",
                  r.idb.Equals(base.idb) ? "yes" : "NO");
    }
  }
  std::printf(
      "(the batched kernel drains check-free inner levels in one tight\n"
      " loop and filters repeated-variable checks with gathered column\n"
      " compares; survivors keep entry-list order, so fixpoint, work and\n"
      " merge order replay the scalar run exactly)\n");
}

// Scalar vs vectorized value plane: the batched join with per-row ⊗ and
// head merges (values=scalar) against the SemiringSimdTraits kernels
// (values=simd): SIMD ⊗ products per survivor batch, pre-hashed head
// keys, ⊕-coalesced adjacent duplicates. values_batched counts the head
// contributions the scalar path would merge (pre-coalesce) — nonzero
// exactly when both kernels are kSimd — while fixpoint and work stay
// pinned to the scalar-scan reference.
void PrintValueKernelTable() {
  Banner("scalar vs vectorized value plane (EngineOptions::value_kernel)",
         "SIMD semiring ⊗/⊕ kernels + batched head emission, bit-identical");
  const bool smoke = BenchSmokeMode();
  const int reps = smoke ? 1 : 3;
  const int n = smoke ? 48 : 128;
  Domain dom;
  auto prog = ApspProgram(&dom).value();
  Graph g = RandomGraph(n, 3 * n, /*seed=*/9);
  std::vector<ConstId> ids = InternVertices(n, &dom);
  EdbInstance<TropS> edb(prog);
  LoadEdges<TropS>(g, ids, [](const Edge& e) { return e.weight; },
                   &edb.pops(prog.FindPredicate("E")));
  Engine<TropS> ref(prog, edb,
                    EngineOptions{.scan_kernel = ScanKernel::kScalar,
                                  .value_kernel = ScanKernel::kScalar});
  auto base = ref.SemiNaive(1 << 20);
  struct Config {
    ScanKernel scan;
    ScanKernel values;
  };
  const Config configs[] = {
      {ScanKernel::kScalar, ScanKernel::kScalar},
      {ScanKernel::kSimd, ScanKernel::kScalar},
      {ScanKernel::kSimd, ScanKernel::kSimd},
  };
  std::printf("%-22s %-10s %-16s %-7s %-6s (APSP/Trop random-%d)\n",
              "join/value-kernel", "semi-ms", "values-batched", "pinned",
              "agree", n);
  for (const Config& c : configs) {
    const EngineOptions opts{.scan_kernel = c.scan, .value_kernel = c.values};
    double best_ms = 1e300;
    EvalResult<TropS> r{IdbInstance<TropS>(prog)};
    uint64_t vb = 0;
    for (int rep = 0; rep < reps; ++rep) {
      Engine<TropS> engine(prog, edb, opts);
      EvalResult<TropS> cur{IdbInstance<TropS>(prog)};
      double ms = WallMs([&] { cur = engine.SemiNaive(1 << 20); });
      if (ms < best_ms) {
        best_ms = ms;
        vb = engine.values_batched();
        r = std::move(cur);
      }
    }
    const bool active =
        c.scan == ScanKernel::kSimd && c.values == ScanKernel::kSimd;
    const bool pinned = r.work == base.work && (active ? vb > 0 : vb == 0);
    std::string config = JoinKernelName(c.scan) + "/" +
                         ValueKernelName<TropS>(c.scan, c.values);
    std::printf("%-22s %-10.2f %-16llu %-7s %-6s\n", config.c_str(), best_ms,
                static_cast<unsigned long long>(vb), pinned ? "yes" : "NO",
                r.idb.Equals(base.idb) ? "yes" : "NO");
  }
  std::printf(
      "(the vectorized plane gathers the value column per survivor batch,\n"
      " computes all ⊗ products in one kernel call and ⊕-coalesces\n"
      " adjacent duplicate head keys before the hash probe; min's tie\n"
      " rule and ±0.0 are replicated exactly, so fixpoint, work and merge\n"
      " results replay the scalar run bit for bit)\n");
}

// Parity-split shortest paths: a wide multi-SCC stratified program — a
// base group, a mutually recursive Odd/Even group (whose deltas drain in
// alternation, so the triggered set skips one rule per round), and a
// downstream recursive closure group.
constexpr const char* kParityPaths = R"(
  edb E/2.
  idb Odd/2. idb Even/2. idb T/2.
  Odd(X,Y) :- E(X,Y).
  Odd(X,Y) :- Even(X,Z) * E(Z,Y).
  Even(X,Y) :- Odd(X,Z) * E(Z,Y).
  T(X,Y) :- Even(X,Y) ; Odd(X,Y) ; T(X,Z) * T(Z,Y).
)";

// Triggered-rule scheduling: sweep re-evaluates every rule per global
// iteration; ordered runs one local fixpoint per reliance group and only
// re-evaluates triggered rules. Identical fixpoints; on multi-group
// programs ordered skips drained rules, and its join work differs from
// the sweep's (usually less; quadratic closures over a different delta
// schedule can tip slightly the other way).
void PrintSchedulerTable() {
  Banner("triggered-rule scheduling (EngineOptions::scheduler)",
         "reliance-graph SCC condensation with per-group local fixpoints");
  struct Row {
    std::string name;
    uint64_t sweep_work, ordered_work;
    int sweep_steps, ordered_steps;
    uint64_t groups, group_iters, skipped;
    bool agree;
  };
  std::vector<Row> rows;
  auto measure = [&](const std::string& name, const char* text, int n,
                     int m, int seed) {
    Domain dom;
    auto prog = ParseProgram(text, &dom).value();
    Graph g = RandomGraph(n, m, seed);
    std::vector<ConstId> ids = InternVertices(n, &dom);
    EdbInstance<TropS> edb(prog);
    LoadEdges<TropS>(g, ids, [](const Edge& e) { return e.weight; },
                     &edb.pops(prog.FindPredicate("E")));
    Engine<TropS> sweep(prog, edb);
    Engine<TropS> ordered(prog, edb,
                          EngineOptions{.scheduler = Scheduler::kOrdered});
    auto rs = sweep.SemiNaive(1 << 20);
    auto ro = ordered.SemiNaive(1 << 20);
    rows.push_back(Row{
        name, rs.work, ro.work, rs.steps, ro.steps,
        static_cast<uint64_t>(ordered.reliance().num_groups()),
        ordered.group_iterations(), ordered.rules_skipped(),
        rs.idb.Equals(ro.idb)});
  };
  const int n = BenchSmokeMode() ? 48 : 128;
  measure("APSP/Trop random-" + std::to_string(n), R"(
      edb E/2. idb T/2. T(X,Y) :- E(X,Y) ; T(X,Z) * E(Z,Y).)",
          n, 3 * n, /*seed=*/9);
  measure("parity/Trop random-" + std::to_string(n), kParityPaths, n, 3 * n,
          /*seed=*/9);
  std::printf("%-24s %-12s %-12s %-11s %-7s %-7s %-8s %-6s\n", "workload",
              "sweep-work", "ord-work", "steps(s/o)", "groups", "iters",
              "skipped", "agree");
  for (const Row& r : rows) {
    std::printf("%-24s %-12llu %-12llu %3d/%-7d %-7llu %-7llu %-8llu %-6s\n",
                r.name.c_str(),
                static_cast<unsigned long long>(r.sweep_work),
                static_cast<unsigned long long>(r.ordered_work),
                r.sweep_steps, r.ordered_steps,
                static_cast<unsigned long long>(r.groups),
                static_cast<unsigned long long>(r.group_iters),
                static_cast<unsigned long long>(r.skipped),
                r.agree ? "yes" : "NO");
  }
  std::printf(
      "(single-group APSP: ordered replays the sweep trace bit for bit;\n"
      " the multi-SCC parity program converges to the same fixpoint with\n"
      " a nonzero triggered-set skip count)\n");
}

template <bool kSemi>
void BM_Apsp(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Domain dom;
  auto prog = ApspProgram(&dom).value();
  Graph g = RandomGraph(n, 3 * n, /*seed=*/9);
  std::vector<ConstId> ids = InternVertices(n, &dom);
  EdbInstance<TropS> edb(prog);
  LoadEdges<TropS>(g, ids, [](const Edge& e) { return e.weight; },
                   &edb.pops(prog.FindPredicate("E")));
  Engine<TropS> engine(prog, edb);
  for (auto _ : state) {
    auto r = kSemi ? engine.SemiNaive(1 << 20) : engine.Naive(1 << 20);
    benchmark::DoNotOptimize(r.idb.TotalSupport());
  }
}

template <bool kSemi>
void BM_QuadraticTc(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Domain dom;
  auto prog = ParseProgram(kQuadTc, &dom).value();
  Graph g = RandomGraph(n, 2 * n, /*seed=*/11);
  std::vector<ConstId> ids = InternVertices(n, &dom);
  EdbInstance<BoolS> edb(prog);
  LoadEdges<BoolS>(g, ids, [](const Edge&) { return true; },
                   &edb.pops(prog.FindPredicate("E")));
  Engine<BoolS> engine(prog, edb);
  for (auto _ : state) {
    auto r = kSemi ? engine.SemiNaive(1 << 20) : engine.Naive(1 << 20);
    benchmark::DoNotOptimize(r.idb.TotalSupport());
  }
}

/// Same semi-naive APSP workload with index caching on/off; the counters
/// report how many indexes each engine actually constructed.
template <bool kCache>
void BM_ApspIndexCache(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Domain dom;
  auto prog = ApspProgram(&dom).value();
  Graph g = RandomGraph(n, 3 * n, /*seed=*/9);
  std::vector<ConstId> ids = InternVertices(n, &dom);
  EdbInstance<TropS> edb(prog);
  LoadEdges<TropS>(g, ids, [](const Edge& e) { return e.weight; },
                   &edb.pops(prog.FindPredicate("E")));
  Engine<TropS> engine(prog, edb,
                       EngineOptions{.cache_indexes = kCache});
  for (auto _ : state) {
    auto r = engine.SemiNaive(1 << 20);
    benchmark::DoNotOptimize(r.idb.TotalSupport());
  }
  // Per-iteration averages: totals accumulate across however many
  // iterations the framework chose, which differs between variants.
  state.counters["index_builds"] =
      benchmark::Counter(static_cast<double>(engine.index_builds()),
                         benchmark::Counter::kAvgIterations);
  state.counters["index_hits"] =
      benchmark::Counter(static_cast<double>(engine.index_hits()),
                         benchmark::Counter::kAvgIterations);
}

/// APSP with the parallel ICO step: range(0) = n, range(1) = threads.
template <bool kSemi>
void BM_ApspMt(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  Domain dom;
  auto prog = ApspProgram(&dom).value();
  Graph g = RandomGraph(n, 3 * n, /*seed=*/9);
  std::vector<ConstId> ids = InternVertices(n, &dom);
  EdbInstance<TropS> edb(prog);
  LoadEdges<TropS>(g, ids, [](const Edge& e) { return e.weight; },
                   &edb.pops(prog.FindPredicate("E")));
  Engine<TropS> engine(prog, edb, EngineOptions{.num_threads = threads});
  for (auto _ : state) {
    auto r = kSemi ? engine.SemiNaive(1 << 20) : engine.Naive(1 << 20);
    benchmark::DoNotOptimize(r.idb.TotalSupport());
  }
}

BENCHMARK(BM_Apsp<false>)->Name("apsp_naive")->Arg(32)->Arg(64)->Arg(128);
BENCHMARK(BM_Apsp<true>)->Name("apsp_seminaive")->Arg(32)->Arg(64)->Arg(128);
BENCHMARK(BM_ApspMt<false>)
    ->Name("apsp_naive_mt")
    ->Args({128, 1})
    ->Args({128, 2})
    ->Args({128, 4})
    ->Args({128, 8});
BENCHMARK(BM_ApspMt<true>)
    ->Name("apsp_seminaive_mt")
    ->Args({128, 1})
    ->Args({128, 2})
    ->Args({128, 4})
    ->Args({128, 8});
/// APSP / parity semi-naive under each scheduler: range(0) = n,
/// range(1) = 1 for ordered, 0 for sweep.
template <bool kParity>
void BM_SchedArg(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const bool ordered = state.range(1) != 0;
  Domain dom;
  auto prog = kParity ? ParseProgram(kParityPaths, &dom).value()
                      : ApspProgram(&dom).value();
  Graph g = RandomGraph(n, 3 * n, /*seed=*/9);
  std::vector<ConstId> ids = InternVertices(n, &dom);
  EdbInstance<TropS> edb(prog);
  LoadEdges<TropS>(g, ids, [](const Edge& e) { return e.weight; },
                   &edb.pops(prog.FindPredicate("E")));
  Engine<TropS> engine(
      prog, edb,
      EngineOptions{.scheduler = ordered ? Scheduler::kOrdered
                                         : Scheduler::kSweep});
  for (auto _ : state) {
    auto r = engine.SemiNaive(1 << 20);
    benchmark::DoNotOptimize(r.idb.TotalSupport());
  }
  state.counters["rules_skipped"] =
      benchmark::Counter(static_cast<double>(engine.rules_skipped()),
                         benchmark::Counter::kAvgIterations);
}

BENCHMARK(BM_SchedArg<false>)
    ->Name("apsp_seminaive_sched")
    ->Args({128, 0})
    ->Args({128, 1});
BENCHMARK(BM_SchedArg<true>)
    ->Name("parity_seminaive_sched")
    ->Args({128, 0})
    ->Args({128, 1});
BENCHMARK(BM_QuadraticTc<false>)->Name("quad_tc_naive")->Arg(32)->Arg(64);
BENCHMARK(BM_QuadraticTc<true>)->Name("quad_tc_seminaive")->Arg(32)->Arg(64);
BENCHMARK(BM_ApspIndexCache<false>)
    ->Name("apsp_uncached")
    ->Arg(64)
    ->Arg(128);
BENCHMARK(BM_ApspIndexCache<true>)->Name("apsp_cached")->Arg(64)->Arg(128);

/// APSP semi-naive per index tier and scan kernel: range(0) = n,
/// range(1) = IndexKind, range(2) = ScanKernel — each piece of the
/// tiered-index subsystem benchmarkable in isolation.
void BM_ApspIndexTier(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto kind = static_cast<IndexKind>(state.range(1));
  const auto scan = static_cast<ScanKernel>(state.range(2));
  Domain dom;
  auto prog = ApspProgram(&dom).value();
  Graph g = RandomGraph(n, 3 * n, /*seed=*/9);
  std::vector<ConstId> ids = InternVertices(n, &dom);
  EdbInstance<TropS> edb(prog);
  LoadEdges<TropS>(g, ids, [](const Edge& e) { return e.weight; },
                   &edb.pops(prog.FindPredicate("E")));
  Engine<TropS> engine(prog, edb,
                       EngineOptions{.index_kind = kind, .scan_kernel = scan});
  for (auto _ : state) {
    auto r = engine.SemiNaive(1 << 20);
    benchmark::DoNotOptimize(r.idb.TotalSupport());
  }
  state.SetLabel(std::string(IndexKindName(kind)) + "/" +
                 ScanKernelName(scan));
  state.counters["hash_probes"] =
      benchmark::Counter(static_cast<double>(engine.hash_probes()),
                         benchmark::Counter::kAvgIterations);
  state.counters["direct_probes"] =
      benchmark::Counter(static_cast<double>(engine.direct_probes()),
                         benchmark::Counter::kAvgIterations);
}

BENCHMARK(BM_ApspIndexTier)
    ->Name("apsp_seminaive_index")
    ->Args({128, static_cast<int>(datalogo::IndexKind::kHash),
            static_cast<int>(datalogo::ScanKernel::kScalar)})
    ->Args({128, static_cast<int>(datalogo::IndexKind::kHash),
            static_cast<int>(datalogo::ScanKernel::kSimd)})
    ->Args({128, static_cast<int>(datalogo::IndexKind::kDirect),
            static_cast<int>(datalogo::ScanKernel::kScalar)})
    ->Args({128, static_cast<int>(datalogo::IndexKind::kDirect),
            static_cast<int>(datalogo::ScanKernel::kSimd)})
    ->Args({128, static_cast<int>(datalogo::IndexKind::kAuto),
            static_cast<int>(datalogo::ScanKernel::kSimd)});

// Machine-readable perf journal: BENCH_seminaive.json in the working
// directory, with wall ms / iterations / work / index builds (total and
// IDB/delta-attributed) per engine, so perf regressions surface in the
// trajectory without scraping stdout.
void WriteJson() {
  const bool smoke = BenchSmokeMode();
  WriteEngineJson<TropS>("seminaive", "APSP/Trop random graph (seed 9, m = 3n)",
                         [](Domain* dom) { return ApspProgram(dom); },
                         [](int n) { return RandomGraph(n, 3 * n, /*seed=*/9); },
                         [](const Edge& e) { return e.weight; },
                         {smoke ? 32 : 64, smoke ? 64 : 128});
  // Multi-SCC stratified workload: the ordered rows journal nonzero
  // rules_skipped (the Odd/Even deltas drain in alternation).
  WriteEngineJson<TropS>("seminaive_parity",
                         "parity-split APSP/Trop random graph (seed 9, m = 3n)",
                         [](Domain* dom) {
                           return ParseProgram(kParityPaths, dom);
                         },
                         [](int n) { return RandomGraph(n, 3 * n, /*seed=*/9); },
                         [](const Edge& e) { return e.weight; },
                         {smoke ? 32 : 64, smoke ? 64 : 128});
}

}  // namespace
}  // namespace datalogo

int main(int argc, char** argv) {
  datalogo::PrintTables();
  datalogo::PrintIndexCachingTable();
  datalogo::PrintParallelTable();
  datalogo::PrintSchedulerTable();
  datalogo::PrintIndexTierTable();
  datalogo::PrintJoinKernelTable();
  datalogo::PrintValueKernelTable();
  datalogo::WriteJson();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
