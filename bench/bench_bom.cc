// E3 — Example 4.2 bill-of-material: R⊥ converges in 3 steps on the
// cyclic Fig. 2(b) while N diverges; timing of the grounded engine on
// acyclic assemblies.
#include "bench/bench_util.h"

namespace datalogo {
namespace {

constexpr const char* kBom = R"(
  bedb E/2.
  edb C/1.
  idb T/1.
  T(X) :- C(X) ; { T(Y) | E(X, Y) }.
)";

using LReal = Lifted<RealS>;

void PrintTables() {
  Banner("E3 bench_bom", "Example 4.2 (Fig. 2b): R_bot vs N");
  {
    Domain dom;
    auto prog = ParseProgram(kBom, &dom).value();
    NamedGraph fig = PaperFig2b();
    EdbInstance<LReal> edb(prog);
    LoadNamedEdgesBool(fig, &dom, &edb.boolean(prog.FindPredicate("E")));
    for (const auto& [v, c] : fig.vertex_costs) {
      edb.pops(prog.FindPredicate("C"))
          .Set({dom.InternSymbol(v)}, LReal::Lift(c));
    }
    auto grounded = GroundProgram<LReal>(prog, edb);
    auto iter = grounded.NaiveIterate(100);
    int t = prog.FindPredicate("T");
    std::printf("R_bot: converged=%d stability-index=%d  ", iter.converged,
                iter.steps);
    for (const char* v : {"a", "b", "c", "d"}) {
      int var = grounded.VarOf(t, {*dom.FindSymbol(v)});
      std::printf("T(%s)=%s ", v, LReal::ToString(iter.values[var]).c_str());
    }
    std::printf("\n(paper: converges in 3 steps; T = (bot, bot, 11, 10))\n");
  }
  {
    Domain dom;
    auto prog = ParseProgram(kBom, &dom).value();
    NamedGraph fig = PaperFig2b();
    EdbInstance<NatS> edb(prog);
    LoadNamedEdgesBool(fig, &dom, &edb.boolean(prog.FindPredicate("E")));
    for (const auto& [v, c] : fig.vertex_costs) {
      edb.pops(prog.FindPredicate("C"))
          .Set({dom.InternSymbol(v)}, static_cast<uint64_t>(c));
    }
    auto grounded = GroundProgram<NatS>(prog, edb);
    auto iter = grounded.NaiveIterate(64);
    std::printf("N:     converged after 64 iterations? %s (paper: diverges)\n",
                iter.converged ? "yes (UNEXPECTED)" : "no");
  }
}

void BM_BomGrounded(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Domain dom;
  auto prog = ParseProgram(kBom, &dom).value();
  Graph g = TreeWithCrossEdges(n, n / 2, /*seed=*/3);
  std::vector<ConstId> ids = InternVertices(n, &dom);
  EdbInstance<NatS> edb(prog);
  for (const Edge& e : g.edges()) {
    edb.boolean(prog.FindPredicate("E")).Set({ids[e.src], ids[e.dst]}, true);
  }
  for (int v = 0; v < n; ++v) {
    edb.pops(prog.FindPredicate("C")).Set({ids[v]}, uint64_t(v + 1));
  }
  for (auto _ : state) {
    auto grounded = GroundProgram<NatS>(prog, edb);
    auto iter = grounded.NaiveIterate(10 * n);
    benchmark::DoNotOptimize(iter.values.data());
    state.counters["steps"] = iter.steps;
  }
}

BENCHMARK(BM_BomGrounded)->Arg(16)->Arg(64)->Arg(128);

}  // namespace
}  // namespace datalogo

int main(int argc, char** argv) {
  datalogo::PrintTables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
