// Incremental maintenance (Engine::Update) vs full recompute: APSP over
// Trop on a random graph with 1% edge churn per batch. The table and the
// BENCH_update.json journal report wall time and join work for servicing
// each batch incrementally (warm engine, delete cascade + insert
// cascade) against re-running the semi-naive fixpoint from scratch on
// the mutated EDB — the maintained tables are checked equal every round.
#include "bench/bench_util.h"

#include <random>
#include <utility>
#include <vector>

namespace datalogo {
namespace {

/// All live key tuples of a relation.
std::vector<Tuple> LiveTuples(const Relation<TropS>& rel) {
  std::vector<Tuple> out;
  for (uint32_t r = 0; r < rel.num_rows(); ++r) {
    if (!rel.RowLive(r)) continue;
    Tuple t;
    for (int p = 0; p < rel.arity(); ++p) t.push_back(rel.Cell(r, p));
    out.push_back(std::move(t));
  }
  return out;
}

struct ChurnStats {
  int batches = 0;
  double update_ms = 0;
  double recompute_ms = 0;
  uint64_t update_work = 0;
  uint64_t recompute_work = 0;
  uint64_t update_rounds = 0;
  uint64_t deleted_rederived = 0;
  bool agree = true;
};

/// Runs `batches` churn batches (1% of the edges deleted, as many fresh
/// edges inserted) through one warm engine, timing Update against a
/// cold-engine full recompute of the same mutated EDB.
ChurnStats ChurnApsp(int n, int batches, unsigned seed) {
  Domain dom;
  auto prog = ApspProgram(&dom).value();
  const int e = prog.FindPredicate("E");
  Graph g = RandomGraph(n, 3 * n, /*seed=*/static_cast<int>(seed));
  std::vector<ConstId> ids = InternVertices(n, &dom);
  EdbInstance<TropS> edb(prog);
  LoadEdges<TropS>(g, ids, [](const Edge& ed) { return ed.weight; },
                   &edb.pops(e));
  Engine<TropS> engine(prog, edb);
  IdbInstance<TropS> idb(prog);
  idb.CopyContentsFrom(engine.SemiNaive(1 << 20).idb);

  std::mt19937 rng(seed);
  ChurnStats st;
  st.batches = batches;
  for (int b = 0; b < batches; ++b) {
    std::vector<Tuple> live = LiveTuples(edb.pops(e));
    const int churn =
        static_cast<int>(live.size() / 100) > 0
            ? static_cast<int>(live.size() / 100)
            : 1;  // 1% of the edge set, at least one
    EdbDelta<TropS> batch;
    for (int i = 0; i < churn; ++i) {
      batch.Delete(e, live[rng() % live.size()]);
      batch.Add(e, Tuple{ids[rng() % n], ids[rng() % n]},
                double(1 + rng() % 64) / 8.0);
    }
    UpdateResult ur;
    st.update_ms += WallMs([&] {
      ur = engine.Update(batch, &edb, &idb, 1 << 20);
    });
    st.update_work += ur.work;
    st.update_rounds += static_cast<uint64_t>(ur.rounds);
    st.deleted_rederived += ur.deleted_rederived;
    if (!ur.converged) st.agree = false;

    EdbInstance<TropS> cold(prog);
    cold.pops(e) = edb.pops(e);
    Engine<TropS> cold_engine(prog, cold);
    IdbInstance<TropS> gold_idb(prog);
    st.recompute_ms += WallMs([&] {
      auto gr = cold_engine.SemiNaive(1 << 20);
      st.recompute_work += gr.work;
      if (!gr.converged) st.agree = false;
      gold_idb.TakeContentsFrom(&gr.idb);
    });
    if (!idb.Equals(gold_idb)) st.agree = false;
  }
  return st;
}

void PrintChurnTable() {
  Banner("bench_update", "Engine::Update vs full recompute, 1% edge churn "
                         "APSP/Trop (random graph, m = 3n)");
  const bool smoke = BenchSmokeMode();
  const int batches = smoke ? 4 : 16;
  std::printf("%-14s %-12s %-14s %-9s %-12s %-12s %-10s %-6s\n", "workload",
              "update-ms", "recompute-ms", "speedup", "upd-work",
              "rec-work", "rederived", "agree");
  BenchJson json("update");
  AddHostMeta(&json);
  json.Meta("workload", "APSP/Trop random graph, 1% churn per batch");
  json.MetaInt("batches", static_cast<uint64_t>(batches));
  for (int n : {smoke ? 32 : 64, smoke ? 64 : 128}) {
    ChurnStats st = ChurnApsp(n, batches, /*seed=*/9);
    std::printf("%-14s %-12.2f %-14.2f %-9.1fx %-12llu %-12llu %-10llu %-6s\n",
                ("apsp-" + std::to_string(n)).c_str(),
                st.update_ms / st.batches, st.recompute_ms / st.batches,
                st.recompute_ms / (st.update_ms > 0 ? st.update_ms : 1e-9),
                static_cast<unsigned long long>(st.update_work),
                static_cast<unsigned long long>(st.recompute_work),
                static_cast<unsigned long long>(st.deleted_rederived),
                st.agree ? "yes" : "NO");
    json.BeginRow()
        .Str("workload", "apsp-trop")
        .Int("n", static_cast<uint64_t>(n))
        .Int("batches", static_cast<uint64_t>(st.batches))
        .Num("update_ms", st.update_ms)
        .Num("recompute_ms", st.recompute_ms)
        .Num("speedup", st.recompute_ms /
                            (st.update_ms > 0 ? st.update_ms : 1e-9))
        .Int("update_work", st.update_work)
        .Int("recompute_work", st.recompute_work)
        .Int("update_rounds", st.update_rounds)
        .Int("deleted_rederived", st.deleted_rederived)
        .Str("agree", st.agree ? "yes" : "NO")
        .EndRow();
  }
  json.Write("BENCH_update.json");
  std::printf(
      "(shape: a 1%% batch touches a thin cone of the closure, so the\n"
      " warm cascades beat re-deriving every pair from scratch)\n");
}

/// range(0) = n; one batch per iteration against a warm engine.
void BM_ApspUpdate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Domain dom;
  auto prog = ApspProgram(&dom).value();
  const int e = prog.FindPredicate("E");
  Graph g = RandomGraph(n, 3 * n, /*seed=*/9);
  std::vector<ConstId> ids = InternVertices(n, &dom);
  EdbInstance<TropS> edb(prog);
  LoadEdges<TropS>(g, ids, [](const Edge& ed) { return ed.weight; },
                   &edb.pops(e));
  Engine<TropS> engine(prog, edb);
  IdbInstance<TropS> idb(prog);
  idb.CopyContentsFrom(engine.SemiNaive(1 << 20).idb);
  std::mt19937 rng(7);
  for (auto _ : state) {
    std::vector<Tuple> live = LiveTuples(edb.pops(e));
    const int churn = static_cast<int>(live.size() / 100) > 0
                          ? static_cast<int>(live.size() / 100)
                          : 1;
    EdbDelta<TropS> batch;
    for (int i = 0; i < churn; ++i) {
      batch.Delete(e, live[rng() % live.size()]);
      batch.Add(e, Tuple{ids[rng() % n], ids[rng() % n]},
                double(1 + rng() % 64) / 8.0);
    }
    UpdateResult ur = engine.Update(batch, &edb, &idb, 1 << 20);
    benchmark::DoNotOptimize(ur.rounds + idb.TotalSupport());
  }
}

/// The same churn serviced by mutating the EDB and re-running the full
/// semi-naive fixpoint — the baseline Update must beat.
void BM_ApspRecomputeChurn(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Domain dom;
  auto prog = ApspProgram(&dom).value();
  const int e = prog.FindPredicate("E");
  Graph g = RandomGraph(n, 3 * n, /*seed=*/9);
  std::vector<ConstId> ids = InternVertices(n, &dom);
  EdbInstance<TropS> edb(prog);
  LoadEdges<TropS>(g, ids, [](const Edge& ed) { return ed.weight; },
                   &edb.pops(e));
  Engine<TropS> engine(prog, edb);
  std::mt19937 rng(7);
  for (auto _ : state) {
    std::vector<Tuple> live = LiveTuples(edb.pops(e));
    const int churn = static_cast<int>(live.size() / 100) > 0
                          ? static_cast<int>(live.size() / 100)
                          : 1;
    for (int i = 0; i < churn; ++i) {
      edb.pops(e).Erase(live[rng() % live.size()]);
      edb.pops(e).Merge(Tuple{ids[rng() % n], ids[rng() % n]},
                        double(1 + rng() % 64) / 8.0);
    }
    auto r = engine.SemiNaive(1 << 20);
    benchmark::DoNotOptimize(r.idb.TotalSupport());
  }
}

BENCHMARK(BM_ApspUpdate)->Name("apsp_update_1pct")->Arg(64)->Arg(128);
BENCHMARK(BM_ApspRecomputeChurn)
    ->Name("apsp_recompute_1pct")
    ->Arg(64)
    ->Arg(128);

}  // namespace
}  // namespace datalogo

int main(int argc, char** argv) {
  datalogo::PrintChurnTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
