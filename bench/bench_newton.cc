// E13 — intro/related work: Newton's method vs Kleene (naive) iteration.
// The table shows iteration counts on deep chains and random quadratic
// systems; the timings expose the cost-per-step trade-off the paper
// describes (Newton steps are few but each solves a matrix closure).
#include "bench/bench_util.h"

#include <random>

namespace datalogo {
namespace {

PolySystem<TropS> ChainSystem(int n) {
  PolySystem<TropS> sys(n);
  sys.poly(0).Add(Monomial<TropS>{0.0, {}, {}});
  for (int i = 1; i < n; ++i) {
    sys.poly(i).Add(Monomial<TropS>{1.0, {{i - 1, 1}}, {}});
  }
  return sys;
}

PolySystem<TropS> RandomQuadratic(int n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> w(0.5, 4.0);
  PolySystem<TropS> sys(n);
  for (int i = 0; i < n; ++i) {
    sys.poly(i).Add(Monomial<TropS>{w(rng), {}, {}});
    int j = static_cast<int>(rng() % n), k = static_cast<int>(rng() % n);
    Monomial<TropS> quad{w(rng), {{j, 1}, {k, 1}}, {}};
    quad.Normalize();
    sys.poly(i).Add(quad);
  }
  return sys;
}

void PrintTables() {
  Banner("E13 bench_newton",
         "Newton vs Kleene iteration counts (intro discussion; [19,41])");
  std::printf("%-22s %-14s %-16s %-6s\n", "system", "kleene-steps",
              "newton-iters", "agree");
  for (int n : {16, 64, 256}) {
    auto sys = ChainSystem(n);
    auto kleene = sys.NaiveIterate(1 << 20);
    auto newton = NewtonSolve<TropS>(sys, 0, 100);
    std::printf("chain N=%-13d %-14d %-16d %-6s\n", n, kleene.steps,
                newton.iterations,
                newton.values == kleene.values ? "yes" : "NO");
  }
  for (int n : {8, 16}) {
    auto sys = RandomQuadratic(n, n);
    auto kleene = sys.NaiveIterate(1 << 20);
    auto newton = NewtonSolve<TropS>(sys, 0, 100);
    std::printf("quadratic N=%-9d %-14d %-16d %-6s\n", n, kleene.steps,
                newton.iterations,
                newton.values == kleene.values ? "yes" : "NO");
  }
  std::printf(
      "(shape: Newton needs far fewer iterations, but each one pays an\n"
      " O(N^3) Jacobian closure — mirroring the paper's cost discussion)\n");
}

void BM_KleeneChain(benchmark::State& state) {
  auto sys = ChainSystem(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.NaiveIterate(1 << 20).values.data());
  }
}

void BM_NewtonChain(benchmark::State& state) {
  auto sys = ChainSystem(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(NewtonSolve<TropS>(sys, 0, 100).values.data());
  }
}

BENCHMARK(BM_KleeneChain)->Arg(64)->Arg(256);
BENCHMARK(BM_NewtonChain)->Arg(64)->Arg(256);

}  // namespace
}  // namespace datalogo

int main(int argc, char** argv) {
  datalogo::PrintTables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
