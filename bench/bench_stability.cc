// E5/E6 — Propositions 5.3 and 5.4: stability indexes of Trop+_p (exactly
// p, tight at 1_p) and of Trop+_{≤η} ({x0} has index ⌈η/x0⌉, unbounded).
#include "bench/bench_util.h"

namespace datalogo {
namespace {

template <int kP>
void TropPRow() {
  using T = TropPS<kP>;
  auto unit = ElementStabilityIndex<T>(T::One(), 4 * kP + 8);
  auto mixed_val = T::Zero();
  for (int i = 0; i <= kP; ++i) mixed_val[i] = 1.5 * (i + 1);
  auto mixed = ElementStabilityIndex<T>(mixed_val, 4 * kP + 8);
  std::printf("Trop+_%d:  index(1_p)=%-3d (expected %d)   index(mixed)=%d\n",
              kP, unit.value_or(-1), kP, mixed.value_or(-1));
}

void PrintTables() {
  Banner("E5/E6 bench_stability",
         "Prop. 5.3 (Trop+_p is exactly p-stable) and Prop. 5.4 "
         "(Trop+_eta not uniformly stable)");
  TropPRow<0>();
  TropPRow<1>();
  TropPRow<2>();
  TropPRow<3>();
  TropPRow<4>();
  TropPRow<6>();
  TropPRow<8>();

  std::printf("\nTrop+_eta with eta = 6:\n  x0      index   ceil(eta/x0)\n");
  TropEtaS::ScopedEta eta(6.0);
  for (double x0 : {6.0, 3.0, 2.0, 1.5, 1.0, 0.75, 0.5, 0.25}) {
    auto idx = ElementStabilityIndex<TropEtaS>(TropEtaS::FromScalar(x0), 200);
    std::printf("  %-7g %-7d %d\n", x0, idx.value_or(-1),
                static_cast<int>(std::ceil(6.0 / x0)));
  }
  std::printf("(index grows without bound as x0 -> 0: stable, NOT p-stable)\n");
}

template <int kP>
void BM_StarTruncated(benchmark::State& state) {
  using T = TropPS<kP>;
  typename T::Value u = T::Zero();
  for (int i = 0; i <= kP; ++i) u[i] = 1.0 + i;
  for (auto _ : state) {
    benchmark::DoNotOptimize(StarTruncated<T>(u, kP + 1));
  }
}

BENCHMARK(BM_StarTruncated<1>)->Name("star_trop1");
BENCHMARK(BM_StarTruncated<4>)->Name("star_trop4");
BENCHMARK(BM_StarTruncated<8>)->Name("star_trop8");

void BM_StabilityProbeTropEta(benchmark::State& state) {
  TropEtaS::ScopedEta eta(6.0);
  double x0 = 6.0 / static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ElementStabilityIndex<TropEtaS>(TropEtaS::FromScalar(x0), 500));
  }
}

BENCHMARK(BM_StabilityProbeTropEta)->Arg(4)->Arg(16)->Arg(64);

}  // namespace
}  // namespace datalogo

int main(int argc, char** argv) {
  datalogo::PrintTables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
