// E11 — Section 7: win-move over THREE vs the alternating fixpoint. The
// table reproduces the Fig. 4 iteration (W(0)..W(4)) and the J(0)..J(6)
// alternating table; timings sweep random game boards.
#include "bench/bench_util.h"

namespace datalogo {
namespace {

constexpr const char* kWinMove = R"(
  bedb E/2.
  idb W/1.
  W(X) :- { !W(Y) | E(X, Y) }.
)";

Graph Fig4Graph(std::vector<std::string>* names) {
  NamedGraph named = PaperFig4();
  *names = named.names;
  Graph g(static_cast<int>(named.names.size()));
  auto index = [&](const std::string& n) {
    for (std::size_t i = 0; i < named.names.size(); ++i) {
      if (named.names[i] == n) return static_cast<int>(i);
    }
    return -1;
  };
  for (const auto& [s, t] : named.edges) g.AddEdge(index(s), index(t));
  return g;
}

void PrintTables() {
  Banner("E11 bench_winmove",
         "Sec. 7.1/7.2 tables: THREE lfp = well-founded model on Fig. 4");
  std::vector<std::string> names;
  Graph g = Fig4Graph(&names);

  // THREE iteration table.
  Domain dom;
  auto prog = ParseProgram(kWinMove, &dom).value();
  std::vector<ConstId> ids;
  for (const auto& n : names) ids.push_back(dom.InternSymbol(n));
  EdbInstance<ThreeS> edb(prog);
  LoadEdgesBool(g, ids, &edb.boolean(prog.FindPredicate("E")));
  auto grounded = GroundProgram<ThreeS>(prog, edb);
  std::printf("THREE naive iteration:\n        ");
  for (const auto& n : names) std::printf("%-5s", n.c_str());
  std::printf("\n");
  std::vector<Kleene> x(grounded.num_vars(), ThreeS::Bottom());
  for (int t = 0;; ++t) {
    std::printf("W(%d):  ", t);
    for (const auto& n : names) {
      int var = grounded.VarOf(prog.FindPredicate("W"),
                               {*dom.FindSymbol(n)});
      std::printf("%-5s", ThreeS::ToString(x[var]).c_str());
    }
    std::printf("\n");
    auto next = grounded.system().Evaluate(x);
    if (next == x || t > 10) break;
    x = std::move(next);
  }

  // Alternating fixpoint table.
  WellFoundedModel wf = AlternatingFixpoint(WinMoveProgram(g));
  std::printf("\nalternating fixpoint (van Gelder):\n        ");
  for (const auto& n : names) std::printf("%-3s", n.c_str());
  std::printf("\n");
  for (std::size_t t = 0; t < wf.trace.size(); ++t) {
    std::printf("J(%zu):  ", t);
    for (int v = 0; v < g.num_vertices(); ++v) {
      std::printf("%-3d", wf.trace[t][v] ? 1 : 0);
    }
    std::printf("\n");
  }
  std::printf("(paper: W(4) = (bot,bot,1,0,1,0); well-founded model has\n"
              " c,e won; d,f lost; a,b drawn)\n");
}

void BM_WinMoveThree(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Domain dom;
  auto prog = ParseProgram(kWinMove, &dom).value();
  Graph g = RandomGraph(n, 2 * n, /*seed=*/21);
  std::vector<ConstId> ids = InternVertices(n, &dom);
  EdbInstance<ThreeS> edb(prog);
  LoadEdgesBool(g, ids, &edb.boolean(prog.FindPredicate("E")));
  for (auto _ : state) {
    auto grounded = GroundProgram<ThreeS>(prog, edb);
    auto iter = grounded.NaiveIterate(10 * n);
    benchmark::DoNotOptimize(iter.values.data());
    state.counters["steps"] = iter.steps;
  }
}

void BM_WinMoveAlternating(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Graph g = RandomGraph(n, 2 * n, /*seed=*/21);
  NegProgram prog = WinMoveProgram(g);
  for (auto _ : state) {
    WellFoundedModel wf = AlternatingFixpoint(prog);
    benchmark::DoNotOptimize(wf.values.data());
    state.counters["rounds"] = static_cast<double>(wf.trace.size());
  }
}

BENCHMARK(BM_WinMoveThree)->Arg(16)->Arg(48);
BENCHMARK(BM_WinMoveAlternating)->Arg(16)->Arg(48)->Arg(256);

}  // namespace
}  // namespace datalogo

int main(int argc, char** argv) {
  datalogo::PrintTables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
