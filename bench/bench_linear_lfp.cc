// E8 — Theorem 5.22 / Corollary 5.21: LinearLFP (O(pN + N³)) vs the naive
// iteration on linear systems over Trop+_p; the crossover as N grows.
#include "bench/bench_util.h"

#include <random>

namespace datalogo {
namespace {

using T1 = TropPS<1>;

struct LinearInstance {
  std::vector<LinearFunction<T1>> fs;
  PolySystem<T1> sys{0};
};

LinearInstance MakeInstance(int n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> w(0.5, 8.0);
  LinearInstance inst;
  inst.fs.resize(n);
  inst.sys = PolySystem<T1>(n);
  for (int i = 0; i < n; ++i) {
    T1::Value c = T1::FromScalar(w(rng));
    inst.fs[i].AddConstant(c);
    inst.sys.poly(i).Add(Monomial<T1>{c, {}, {}});
    for (int j = 0; j < n; ++j) {
      if (rng() % n >= 3) continue;  // ~3 terms per row
      T1::Value a = T1::FromScalar(w(rng));
      inst.fs[i].AddTerm(j, a);
      inst.sys.poly(i).Add(Monomial<T1>{a, {{j, 1}}, {}});
    }
  }
  return inst;
}

void PrintTables() {
  Banner("E8 bench_linear_lfp",
         "Thm 5.22: LinearLFP equals naive lfp; Cor. 5.21 step bound");
  std::printf("%-6s %-12s %-14s %-10s\n", "N", "naive-steps",
              "bound (p+1)N-1", "agree");
  for (int n : {4, 8, 16, 32}) {
    LinearInstance inst = MakeInstance(n, n);
    auto iter = inst.sys.NaiveIterate(1 << 20);
    auto direct = LinearLFP<T1>(inst.fs, /*p=*/1);
    bool agree = iter.converged;
    for (int i = 0; i < n && agree; ++i) {
      // Compare up to ulps (the two algorithms associate sums differently).
      for (int k = 0; k < T1::kBagSize; ++k) {
        double a = direct[i][k], b = iter.values[i][k];
        if (a == T1::Inf() || b == T1::Inf()) {
          if (a != b) agree = false;
        } else if (std::abs(a - b) > 1e-9) {
          agree = false;
        }
      }
    }
    std::printf("%-6d %-12d %-14d %-10s\n", n, iter.steps, 2 * n - 1,
                agree ? "yes" : "NO");
  }
}

void BM_NaiveLinear(benchmark::State& state) {
  LinearInstance inst =
      MakeInstance(static_cast<int>(state.range(0)), state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(inst.sys.NaiveIterate(1 << 20).values.data());
  }
}

void BM_LinearLfp(benchmark::State& state) {
  LinearInstance inst =
      MakeInstance(static_cast<int>(state.range(0)), state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(LinearLFP<T1>(inst.fs, /*p=*/1).data());
  }
}

void BM_KleeneClosure(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Matrix<T1> a(n, n);
  std::mt19937_64 rng(n);
  std::uniform_real_distribution<double> w(0.5, 8.0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      a.at(i, j) = (rng() % n < 3) ? T1::FromScalar(w(rng)) : T1::Zero();
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(KleeneClosurePStable<T1>(a, 1));
  }
}

BENCHMARK(BM_NaiveLinear)->Arg(16)->Arg(64)->Arg(128);
BENCHMARK(BM_LinearLfp)->Arg(16)->Arg(64)->Arg(128);
BENCHMARK(BM_KleeneClosure)->Arg(16)->Arg(64)->Arg(128);

}  // namespace
}  // namespace datalogo

int main(int argc, char** argv) {
  datalogo::PrintTables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
