// Shared helpers for the experiment benches: each bench binary first
// regenerates its paper artifact (table/series) on stdout, then runs the
// google-benchmark timings.
#ifndef DATALOGO_BENCH_BENCH_UTIL_H_
#define DATALOGO_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/datalogo.h"

namespace datalogo {

/// Prints the standard experiment banner.
inline void Banner(const char* experiment, const char* artifact) {
  std::printf("\n================================================\n");
  std::printf("%s\n  reproduces: %s\n", experiment, artifact);
  std::printf("================================================\n");
}

/// Builds the APSP/TC program over any POPS.
inline Result<Program> ApspProgram(Domain* dom) {
  return ParseProgram(R"(
    edb E/2.
    idb T/2.
    T(X,Y) :- E(X,Y) ; T(X,Z) * E(Z,Y).
  )",
                      dom);
}

/// Builds the SSSP program (source = vertex "v0").
inline Result<Program> SsspProgram(Domain* dom) {
  return ParseProgram(R"(
    edb E/2.
    idb L/1.
    L(X) :- [X = v0] ; L(Z) * E(Z, X).
  )",
                      dom);
}

}  // namespace datalogo

#endif  // DATALOGO_BENCH_BENCH_UTIL_H_
