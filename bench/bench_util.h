// Shared helpers for the experiment benches: each bench binary first
// regenerates its paper artifact (table/series) on stdout, then runs the
// google-benchmark timings.
#ifndef DATALOGO_BENCH_BENCH_UTIL_H_
#define DATALOGO_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>

#include "src/datalogo.h"

namespace datalogo {

/// Prints the standard experiment banner.
inline void Banner(const char* experiment, const char* artifact) {
  std::printf("\n================================================\n");
  std::printf("%s\n  reproduces: %s\n", experiment, artifact);
  std::printf("================================================\n");
}

/// True when the bench should run in CI smoke mode (small sizes, one
/// timing rep): export DATALOGO_BENCH_SMOKE=1.
inline bool BenchSmokeMode() {
  const char* v = std::getenv("DATALOGO_BENCH_SMOKE");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

/// Thread counts the engine benches sweep (one BENCH_*.json row per
/// count). DATALOGO_THREADS overrides as a comma-separated list (e.g.
/// "1,4"); the default sweep is 1/2/4/8, trimmed to 1/4 in smoke mode.
inline std::vector<int> BenchThreadCounts() {
  std::vector<int> out;
  if (const char* v = std::getenv("DATALOGO_THREADS");
      v != nullptr && v[0] != '\0') {
    std::stringstream ss(v);
    std::string tok;
    while (std::getline(ss, tok, ',')) {
      int t = std::atoi(tok.c_str());
      if (t >= 1) out.push_back(t);
    }
  }
  if (out.empty()) {
    out = BenchSmokeMode() ? std::vector<int>{1, 4}
                           : std::vector<int>{1, 2, 4, 8};
  }
  return out;
}

/// Wall-clock milliseconds of one `fn()` run.
template <typename F>
double WallMs(F&& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

/// Minimal emitter for the machine-readable BENCH_<name>.json artifacts:
/// one flat metadata object plus a "rows" array of flat objects, so a
/// trajectory script can diff perf numbers across commits without
/// scraping stdout tables.
class BenchJson {
 public:
  explicit BenchJson(const std::string& bench) : bench_(bench) {}

  BenchJson& Meta(const char* key, const std::string& value) {
    meta_ << ",\n  \"" << key << "\": \"" << Escaped(value) << "\"";
    return *this;
  }
  BenchJson& MetaBool(const char* key, bool value) {
    meta_ << ",\n  \"" << key << "\": " << (value ? "true" : "false");
    return *this;
  }
  BenchJson& MetaInt(const char* key, uint64_t value) {
    meta_ << ",\n  \"" << key << "\": " << value;
    return *this;
  }

  BenchJson& BeginRow() {
    if (any_row_) rows_ << ",";
    rows_ << "\n    {";
    first_field_ = true;
    any_row_ = true;
    return *this;
  }
  BenchJson& Str(const char* key, const std::string& v) {
    Key(key) << "\"" << Escaped(v) << "\"";
    return *this;
  }
  BenchJson& Int(const char* key, uint64_t v) {
    Key(key) << v;
    return *this;
  }
  BenchJson& Num(const char* key, double v) {
    Key(key) << v;
    return *this;
  }
  BenchJson& EndRow() {
    rows_ << "}";
    return *this;
  }

  /// Writes the artifact; returns false (and warns) on I/O failure.
  bool Write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return false;
    }
    std::string out = "{\n  \"bench\": \"" + bench_ + "\"" + meta_.str() +
                      ",\n  \"rows\": [" + rows_.str() + "\n  ]\n}\n";
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return true;
  }

 private:
  /// JSON string escaping: backslash, quote, and control characters.
  static std::string Escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '\\' || c == '"') {
        out += '\\';
        out += c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\u%04x", c);
        out += buf;
      } else {
        out += c;
      }
    }
    return out;
  }

  std::ostringstream& Key(const char* key) {
    if (!first_field_) rows_ << ", ";
    first_field_ = false;
    rows_ << "\"" << key << "\": ";
    return rows_;
  }

  std::string bench_;
  std::ostringstream meta_;
  std::ostringstream rows_;
  bool any_row_ = false;
  bool first_field_ = true;
};

/// Journal spellings of the engine's index-tier / scan-kernel knobs.
inline const char* IndexKindName(IndexKind k) {
  switch (k) {
    case IndexKind::kHash:
      return "hash";
    case IndexKind::kDirect:
      return "direct";
    case IndexKind::kAuto:
      return "auto";
  }
  return "?";
}
inline const char* ScanKernelName(ScanKernel k) {
  return k == ScanKernel::kScalar ? "scalar" : "simd";
}

/// Effective join-kernel spelling for the journals: the batched kernel's
/// behaviour depends on the ISA the binary compiled to, so "batched-avx2"
/// and "batched-sse2" journal as distinct kernels while "scalar" is
/// ISA-independent.
inline std::string JoinKernelName(ScanKernel k) {
  if (k == ScanKernel::kScalar) return "scalar";
  return std::string("batched-") + simd::IsaName();
}

/// Effective value-kernel spelling: the vectorized value plane only runs
/// when the join kernel is batched AND the value kernel is kSimd AND the
/// semiring opted into SemiringSimdTraits; otherwise values journal as
/// "scalar". Active kernels journal the trait family plus the ISA (e.g.
/// "trop-f64-sse2") so journals from different hosts stay distinguishable.
template <NaturallyOrderedSemiring P>
std::string ValueKernelName(ScanKernel scan, ScanKernel values) {
  if constexpr (VectorizedValuePlane<P>) {
    if (scan == ScanKernel::kSimd && values == ScanKernel::kSimd) {
      return std::string(SemiringSimdTraits<P>::kFamily) + "-" +
             simd::IsaName();
    }
  }
  return "scalar";
}

/// Host metadata for every BENCH_*.json: hardware concurrency (the PR-5
/// single-core-host caveat, machine-readable) and the SIMD instruction
/// set the binary's kSimd scan paths compile to.
inline void AddHostMeta(BenchJson* json) {
  json->MetaInt("nproc", std::thread::hardware_concurrency());
  json->Meta("simd_isa", simd::IsaName());
}

/// Shared emitter for the BENCH_<name>.json perf journals: for each n,
/// each engine, and each thread count in BenchThreadCounts() (the
/// DATALOGO_THREADS knob), times `reps` evaluations — a fresh Engine per
/// rep,
/// so every journaled counter describes exactly the one run whose wall
/// time is reported (the best rep) rather than mixing best-of wall with
/// lifetime-accumulated index counters. Works over any naturally ordered
/// semiring; the seminaive rows are emitted only when P supports ⊖
/// (e.g. the Naturals lack it — those workloads journal naive rows).
template <NaturallyOrderedSemiring P, typename MakeProgram,
          typename MakeGraph, typename Lift>
void WriteEngineJson(const std::string& bench_name,
                     const char* workload_desc, MakeProgram&& make_program,
                     MakeGraph&& make_graph, Lift&& lift,
                     std::initializer_list<int> sizes) {
  const bool smoke = BenchSmokeMode();
  const int reps = smoke ? 1 : 3;
  const std::vector<int> thread_counts = BenchThreadCounts();
  BenchJson json(bench_name);
  json.MetaBool("smoke", smoke);
  json.Meta("workload", workload_desc);
  AddHostMeta(&json);
  for (int n : sizes) {
    Domain dom;
    Program prog = make_program(&dom).value();
    Graph g = make_graph(n);
    std::vector<ConstId> ids = InternVertices(n, &dom);
    EdbInstance<P> edb(prog);
    LoadEdges<P>(g, ids, lift, &edb.pops(prog.FindPredicate("E")));
    for (bool semi : {false, true}) {
      if (semi && !CompleteDistributiveDioid<P>) continue;
      for (Scheduler sched : {Scheduler::kSweep, Scheduler::kOrdered}) {
        for (int threads : thread_counts) {
          double best_ms = -1.0;
          EvalResult<P> best{IdbInstance<P>(prog)};
          uint64_t builds = 0, hits = 0, idb_builds = 0, idb_hits = 0;
          uint64_t groups = 0, group_iters = 0, skipped = 0;
          uint64_t incr_appends = 0, hash_probes = 0, direct_probes = 0;
          uint64_t join_batched = 0, values_batched = 0;
          const EngineOptions opts{.num_threads = threads,
                                   .scheduler = sched};
          for (int rep = 0; rep < reps; ++rep) {
            Engine<P> engine(prog, edb, opts);
            EvalResult<P> r{IdbInstance<P>(prog)};
            double ms = WallMs([&] {
              if constexpr (CompleteDistributiveDioid<P>) {
                r = semi ? engine.SemiNaive(1 << 20) : engine.Naive(1 << 20);
              } else {
                r = engine.Naive(1 << 20);
              }
            });
            if (best_ms < 0 || ms < best_ms) {
              best_ms = ms;
              best = std::move(r);
              builds = engine.index_builds();
              hits = engine.index_hits();
              idb_builds = engine.idb_index_builds();
              idb_hits = engine.idb_index_hits();
              groups = static_cast<uint64_t>(engine.reliance().num_groups());
              group_iters = engine.group_iterations();
              skipped = engine.rules_skipped();
              incr_appends = engine.idx_incremental_appends();
              hash_probes = engine.hash_probes();
              direct_probes = engine.direct_probes();
              join_batched = engine.join_batched_rows();
              values_batched = engine.values_batched();
            }
          }
          json.BeginRow()
              .Str("engine", semi ? "seminaive" : "naive")
              .Str("scheduler",
                   sched == Scheduler::kOrdered ? "ordered" : "sweep")
              .Int("n", static_cast<uint64_t>(n))
              .Int("threads", static_cast<uint64_t>(threads))
              .Num("wall_ms", best_ms)
              .Int("iterations", static_cast<uint64_t>(best.steps))
              .Int("work", best.work)
              .Int("index_builds", builds)
              .Int("index_hits", hits)
              .Int("idb_index_builds", idb_builds)
              .Int("idb_index_hits", idb_hits)
              .Int("groups", groups)
              .Int("group_iterations", group_iters)
              .Int("rules_skipped", skipped)
              .Str("index_kind", IndexKindName(opts.index_kind))
              .Str("scan_kernel", ScanKernelName(opts.scan_kernel))
              .Str("join_kernel", JoinKernelName(opts.scan_kernel))
              .Int("join_batched_rows", join_batched)
              .Str("value_kernel",
                   ValueKernelName<P>(opts.scan_kernel, opts.value_kernel))
              .Int("values_batched", values_batched)
              .Int("idx_incremental_appends", incr_appends)
              .Int("hash_probes", hash_probes)
              .Int("direct_probes", direct_probes)
              .EndRow();
        }
      }
    }
  }
  json.Write("BENCH_" + bench_name + ".json");
}

/// Builds the APSP/TC program over any POPS.
inline Result<Program> ApspProgram(Domain* dom) {
  return ParseProgram(R"(
    edb E/2.
    idb T/2.
    T(X,Y) :- E(X,Y) ; T(X,Z) * E(Z,Y).
  )",
                      dom);
}

/// Builds the SSSP program (source = vertex "v0").
inline Result<Program> SsspProgram(Domain* dom) {
  return ParseProgram(R"(
    edb E/2.
    idb L/1.
    L(X) :- [X = v0] ; L(Z) * E(Z, X).
  )",
                      dom);
}

}  // namespace datalogo

#endif  // DATALOGO_BENCH_BENCH_UTIL_H_
