// E1/E2 — Example 4.1 / Example 1.1: the SSSP program on Fig. 2(a) over
// four POPS (table of results + convergence steps), plus naive vs
// semi-naive timings on random graphs.
#include "bench/bench_util.h"

namespace datalogo {
namespace {

constexpr const char* kSssp = R"(
  edb E/2.
  idb L/1.
  L(X) :- [X = a] ; L(Z) * E(Z, X).
)";

template <Pops P, typename F>
void PrintRow(const char* name, F&& lift) {
  Domain dom;
  auto prog = ParseProgram(kSssp, &dom).value();
  EdbInstance<P> edb(prog);
  LoadNamedEdges<P>(PaperFig2a(), &dom, lift,
                    &edb.pops(prog.FindPredicate("E")));
  auto grounded = GroundProgram<P>(prog, edb);
  auto iter = grounded.NaiveIterate(1000);
  int l = prog.FindPredicate("L");
  std::printf("%-14s steps=%-3d", name, iter.steps);
  for (const char* v : {"a", "b", "c", "d"}) {
    int var = grounded.VarOf(l, {*dom.FindSymbol(v)});
    std::printf(" L(%s)=%-12s", v, P::ToString(iter.values[var]).c_str());
  }
  std::printf("\n");
}

void PrintTables() {
  Banner("E1/E2 bench_sssp",
         "Example 4.1 table (Fig. 2a) over B, Trop+, Trop+_1, Trop+_eta");
  PrintRow<TropS>("Trop+", [](double w) { return w; });
  PrintRow<BoolS>("B", [](double) { return true; });
  PrintRow<TropPS<1>>("Trop+_1",
                      [](double w) { return TropPS<1>::FromScalar(w); });
  TropEtaS::ScopedEta eta(6.5);
  PrintRow<TropEtaS>("Trop+_<=6.5",
                     [](double w) { return TropEtaS::FromScalar(w); });
  std::printf(
      "(paper: Trop+ converges after the 5-row table L(0)..L(5); values\n"
      " L = (0,1,4,8); Trop+_1: {{0,3}},{{1,4}},{{4,5}},{{8,9}})\n");
}

template <bool kSemiNaive>
void BM_Sssp(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Domain dom;
  auto prog = SsspProgram(&dom).value();
  Graph g = RandomGraph(n, 6 * n, /*seed=*/7);
  std::vector<ConstId> ids = InternVertices(n, &dom);
  EdbInstance<TropS> edb(prog);
  LoadEdges<TropS>(g, ids, [](const Edge& e) { return e.weight; },
                   &edb.pops(prog.FindPredicate("E")));
  Engine<TropS> engine(prog, edb);
  for (auto _ : state) {
    auto r = kSemiNaive ? engine.SemiNaive(1 << 20) : engine.Naive(1 << 20);
    benchmark::DoNotOptimize(r.idb.TotalSupport());
    state.counters["steps"] = r.steps;
    state.counters["work"] = static_cast<double>(r.work);
  }
}

BENCHMARK(BM_Sssp<false>)->Name("sssp_naive")->Arg(64)->Arg(256);
BENCHMARK(BM_Sssp<true>)->Name("sssp_seminaive")->Arg(64)->Arg(256);

// Machine-readable perf journal (see bench_util.h): wall ms /
// iterations / work / index builds for SSSP per engine.
void WriteJson() {
  const bool smoke = BenchSmokeMode();
  WriteEngineJson<TropS>("sssp", "SSSP/Trop random graph (seed 7, m = 6n)",
                         [](Domain* dom) { return SsspProgram(dom); },
                         [](int n) { return RandomGraph(n, 6 * n, /*seed=*/7); },
                         [](const Edge& e) { return e.weight; },
                         {smoke ? 64 : 256, smoke ? 128 : 512});
}

}  // namespace
}  // namespace datalogo

int main(int argc, char** argv) {
  datalogo::PrintTables();
  datalogo::WriteJson();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
