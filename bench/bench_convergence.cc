// E4 — Theorem 1.2 / Theorem 5.12: measured convergence steps of grounded
// datalog° programs vs the theoretical bounds Σ(p+2)^i / Σ(p+1)^i / N.
#include "bench/bench_util.h"

namespace datalogo {
namespace {

template <Pops P, typename F>
void Row(const char* name, int p, const Graph& g, F&& lift) {
  Domain dom;
  auto prog = SsspProgram(&dom).value();
  std::vector<ConstId> ids = InternVertices(g.num_vertices(), &dom);
  EdbInstance<P> edb(prog);
  LoadEdges<P>(g, ids, lift, &edb.pops(prog.FindPredicate("E")));
  auto grounded = GroundProgram<P>(prog, edb);
  auto iter = grounded.NaiveIterate(1 << 22);
  uint64_t bound = grounded.system().ConvergenceBound(p);
  std::printf("%-10s p=%d N=%-4d measured=%-6d bound=", name, p,
              grounded.num_vars(), iter.steps);
  if (bound == kBoundInf) {
    std::printf("%-12s", "huge");
  } else {
    std::printf("%-12llu", static_cast<unsigned long long>(bound));
  }
  std::printf(" converged=%d %s\n", iter.converged,
              p == 0 ? "(0-stable: N-step bound applies)" : "");
}

void PrintTables() {
  Banner("E4 bench_convergence",
         "Theorem 1.2 / 5.12 bounds vs measured naive steps");
  std::printf("%-10s %-3s %-6s %-15s %-18s\n", "POPS", "p", "N", "measured",
              "theoretical bound");
  for (int n : {4, 6, 8}) {
    Graph g = RandomGraph(n, 3 * n, /*seed=*/n);
    Row<TropS>("Trop+", 0, g, [](const Edge& e) { return e.weight; });
  }
  for (int n : {4, 6}) {
    Graph g = CycleGraph(n);
    Row<TropPS<1>>("Trop+_1", 1, g, [](const Edge& e) {
      return TropPS<1>::FromScalar(e.weight);
    });
  }
  {
    Graph g = CycleGraph(4);
    Row<TropPS<2>>("Trop+_2", 2, g, [](const Edge& e) {
      return TropPS<2>::FromScalar(e.weight);
    });
  }
  std::printf(
      "(shape check: measured << bound everywhere; for p = 0 the measured\n"
      " index stays below the ground-atom count N, per Theorem 5.12(2))\n");
}

template <typename P>
void BM_GroundedIteration(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Domain dom;
  auto prog = SsspProgram(&dom).value();
  Graph g = RandomGraph(n, 4 * n, /*seed=*/5);
  std::vector<ConstId> ids = InternVertices(n, &dom);
  EdbInstance<P> edb(prog);
  LoadEdges<P>(g, ids,
               [](const Edge& e) {
                 if constexpr (std::is_same_v<P, TropS>) {
                   return e.weight;
                 } else {
                   return P::FromScalar(e.weight);
                 }
               },
               &edb.pops(prog.FindPredicate("E")));
  auto grounded = GroundProgram<P>(prog, edb);
  for (auto _ : state) {
    auto iter = grounded.NaiveIterate(1 << 20);
    benchmark::DoNotOptimize(iter.values.data());
    state.counters["steps"] = iter.steps;
  }
}

BENCHMARK(BM_GroundedIteration<TropS>)
    ->Name("grounded_trop")
    ->Arg(32)
    ->Arg(64);
BENCHMARK(BM_GroundedIteration<TropPS<1>>)
    ->Name("grounded_trop1")
    ->Arg(32)
    ->Arg(64);
BENCHMARK(BM_GroundedIteration<TropPS<3>>)
    ->Name("grounded_trop3")
    ->Arg(32);

}  // namespace
}  // namespace datalogo

int main(int argc, char** argv) {
  datalogo::PrintTables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
