// Triangle counting over the Naturals (bag) semiring: a wide, multi-join
// rule shape — three atoms joined in one sum-product — complementing the
// path-style recursion (APSP/SSSP/TC) the other benches cover. With every
// edge weighted 1, Tri(x,y,z) = E(x,y) ⊗ E(y,z) ⊗ E(z,x) counts each
// directed 3-cycle once per rotation, so Σ Tri = 3 · #directed-triangles.
#include "bench/bench_util.h"

namespace datalogo {
namespace {

constexpr const char* kTriangle = R"(
  edb E/2.
  idb Tri/3.
  Tri(X,Y,Z) :- E(X,Y) * E(Y,Z) * E(Z,X).
)";

Result<Program> TriangleProgram(Domain* dom) {
  return ParseProgram(kTriangle, dom);
}

/// Sum of Tri values = number of closed ordered walks of length 3 without
/// the start fixed — 3× the directed triangle count.
uint64_t TriangleMass(const EvalResult<NatS>& r, const Program& prog) {
  const Relation<NatS>& tri = r.idb.idb(prog.FindPredicate("Tri"));
  uint64_t total = 0;
  tri.ForEachRow([&](uint32_t row) { total += tri.ValueAt(row); });
  return total;
}

void PrintTable() {
  Banner("bench_triangle",
         "triangle counting over N (bag semantics) — wide 3-way join");
  std::printf("%-22s %-10s %-12s %-12s %-10s\n", "graph", "support",
              "sum(Tri)", "work", "steps");
  for (auto [n, m, seed] : {std::tuple{40, 240, 3}, std::tuple{80, 640, 3},
                            std::tuple{120, 1200, 3}}) {
    Domain dom;
    auto prog = TriangleProgram(&dom).value();
    Graph g = RandomGraph(n, m, seed);
    std::vector<ConstId> ids = InternVertices(n, &dom);
    EdbInstance<NatS> edb(prog);
    LoadEdges<NatS>(g, ids, [](const Edge&) { return uint64_t{1}; },
                    &edb.pops(prog.FindPredicate("E")));
    Engine<NatS> engine(prog, edb);
    auto r = engine.Naive(1 << 20);
    char name[32];
    std::snprintf(name, sizeof(name), "random-%d (m=%d)", n, m);
    std::printf("%-22s %-10llu %-12llu %-12llu %-10d\n", name,
                static_cast<unsigned long long>(r.idb.TotalSupport()),
                static_cast<unsigned long long>(TriangleMass(r, prog)),
                static_cast<unsigned long long>(r.work), r.steps);
  }
  std::printf(
      "(the rule is non-recursive: one productive ICO application reaches\n"
      " the fixpoint and a second confirms it — the cost is pure join\n"
      " work over the three-atom product)\n");
}

void BM_Triangle(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Domain dom;
  auto prog = TriangleProgram(&dom).value();
  Graph g = RandomGraph(n, 8 * n, /*seed=*/3);
  std::vector<ConstId> ids = InternVertices(n, &dom);
  EdbInstance<NatS> edb(prog);
  LoadEdges<NatS>(g, ids, [](const Edge&) { return uint64_t{1}; },
                  &edb.pops(prog.FindPredicate("E")));
  Engine<NatS> engine(prog, edb);
  uint64_t mass = 0;
  for (auto _ : state) {
    auto r = engine.Naive(1 << 20);
    mass = TriangleMass(r, prog);
    benchmark::DoNotOptimize(mass);
  }
  state.counters["triangle_mass"] = static_cast<double>(mass);
}

BENCHMARK(BM_Triangle)->Name("triangle_naive")->Arg(64)->Arg(128)->Arg(256);

// Machine-readable perf journal, same BENCH_*.json schema as the other
// engine benches. N has no ⊖, so only naive rows are journaled.
void WriteJson() {
  const bool smoke = BenchSmokeMode();
  WriteEngineJson<NatS>("triangle",
                        "triangle counting / N random graph (seed 3, m = 8n)",
                        [](Domain* dom) { return TriangleProgram(dom); },
                        [](int n) { return RandomGraph(n, 8 * n, /*seed=*/3); },
                        [](const Edge&) { return uint64_t{1}; },
                        {smoke ? 48 : 96, smoke ? 96 : 192});
}

}  // namespace
}  // namespace datalogo

int main(int argc, char** argv) {
  datalogo::PrintTable();
  datalogo::WriteJson();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
