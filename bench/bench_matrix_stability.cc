// E7 — Lemma 5.20: the stability index of N×N matrices over Trop+_p is at
// most (p+1)N − 1, with the N-cycle attaining it exactly.
#include "bench/bench_util.h"

namespace datalogo {
namespace {

template <int kP>
Matrix<TropPS<kP>> Adjacency(const Graph& g) {
  using T = TropPS<kP>;
  Matrix<T> a(g.num_vertices(), g.num_vertices());
  for (int i = 0; i < g.num_vertices(); ++i) {
    for (int j = 0; j < g.num_vertices(); ++j) a.at(i, j) = T::Zero();
  }
  for (const Edge& e : g.edges()) {
    a.at(e.src, e.dst) = T::Plus(a.at(e.src, e.dst), T::FromScalar(e.weight));
  }
  return a;
}

template <int kP>
void CycleRow(int n) {
  auto idx =
      MatrixStabilityIndex<TropPS<kP>>(Adjacency<kP>(CycleGraph(n)),
                                       (kP + 1) * n + 16);
  std::printf("  p=%d N=%-3d cycle-index=%-4d bound (p+1)N-1=%-4d %s\n", kP,
              n, idx.value_or(-1), (kP + 1) * n - 1,
              idx == (kP + 1) * n - 1 ? "TIGHT" : "");
}

template <int kP>
void RandomRow(int n, uint64_t seed) {
  auto idx = MatrixStabilityIndex<TropPS<kP>>(
      Adjacency<kP>(RandomGraph(n, 3 * n, seed)), (kP + 1) * n + 16);
  std::printf("  p=%d N=%-3d random-index=%-4d bound=%-4d\n", kP, n,
              idx.value_or(-1), (kP + 1) * n - 1);
}

void PrintTables() {
  Banner("E7 bench_matrix_stability",
         "Lemma 5.20: matrix stability over Trop+_p; cycle is tight");
  std::printf("cycle matrices (lower-bound instance):\n");
  CycleRow<0>(4);
  CycleRow<0>(8);
  CycleRow<1>(4);
  CycleRow<1>(8);
  CycleRow<2>(5);
  CycleRow<3>(4);
  std::printf("random matrices (upper bound):\n");
  RandomRow<1>(8, 1);
  RandomRow<1>(8, 2);
  RandomRow<2>(6, 3);
}

template <int kP>
void BM_MatrixStability(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto a = Adjacency<kP>(CycleGraph(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MatrixStabilityIndex<TropPS<kP>>(a, (kP + 1) * n + 16));
  }
}

BENCHMARK(BM_MatrixStability<0>)->Name("matrix_stability_p0")->Arg(16)->Arg(32);
BENCHMARK(BM_MatrixStability<2>)->Name("matrix_stability_p2")->Arg(16)->Arg(32);

}  // namespace
}  // namespace datalogo

int main(int argc, char** argv) {
  datalogo::PrintTables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
