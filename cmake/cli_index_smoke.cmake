# Index-tier / scan-kernel equivalence smoke at the CLI surface,
# mirroring cli_scheduler_smoke.cmake: every --index=hash|direct|auto ×
# --scan=scalar|simd combination must be byte-identical to the default
# run — fixpoint rows AND the stability-index comment line. The index
# tier changes how lookups are served and the scan kernel changes how
# index builds walk columns AND which join kernel the engine runs
# (row-at-a-time scalar vs SIMD batched bind/check); none of it may
# change a single output byte.
#
# Invoked by CTest as:
#   cmake -DCLI=<datalogo_cli> -DPROGRAM=<.dl> -DEDGES=<.tsv>
#         -DOUT_DIR=<dir> -P cli_index_smoke.cmake
foreach(var CLI PROGRAM EDGES OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "cli_index_smoke: missing -D${var}=...")
  endif()
endforeach()

function(run_cli out_file)
  execute_process(
    COMMAND ${CLI} ${ARGN}
    OUTPUT_FILE ${out_file}
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "datalogo_cli ${ARGN} failed (exit ${rc})")
  endif()
endfunction()

function(require_identical a b what)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files ${a} ${b}
    RESULT_VARIABLE diff_rc)
  if(NOT diff_rc EQUAL 0)
    message(FATAL_ERROR "${what} differ: ${a} vs ${b}")
  endif()
endfunction()

set(base_args --semiring=trop --edb E=${EDGES} --seminaive)

# Reference: defaults (--index=auto, --scan per build/environment).
set(ref_out "${OUT_DIR}/cli_index_ref.out")
run_cli(${ref_out} ${PROGRAM} ${base_args})

foreach(index hash direct auto)
  foreach(scan scalar simd)
    set(out "${OUT_DIR}/cli_index_${index}_${scan}.out")
    run_cli(${out} ${PROGRAM} ${base_args} --index=${index} --scan=${scan})
    require_identical(${ref_out} ${out}
                      "default and --index=${index} --scan=${scan} output")
  endforeach()
endforeach()

# Tier/kernel choice must also commute with parallelism: spot-check the
# least hash-like combination at 4 threads against the reference.
set(t4_out "${OUT_DIR}/cli_index_direct_simd_t4.out")
run_cli(${t4_out} ${PROGRAM} ${base_args} --index=direct --scan=simd
        --threads=4)
require_identical(${ref_out} ${t4_out}
                  "default and --index=direct --scan=simd --threads=4 output")

# And the scalar join kernel under parallelism: the batched and
# row-at-a-time joins must replay the same deterministic merge order.
set(t4_scalar_out "${OUT_DIR}/cli_index_scalar_t4.out")
run_cli(${t4_scalar_out} ${PROGRAM} ${base_args} --scan=scalar --threads=4)
require_identical(${ref_out} ${t4_scalar_out}
                  "default and --scan=scalar --threads=4 output")

# Value-plane kernel: the batched join with scalar values (per-row ⊗ and
# head merges) must be byte-identical to the vectorized value plane
# (SIMD ⊗ products, pre-hashed ⊕-coalesced head emission), serial and
# parallel.
foreach(values scalar simd)
  set(out "${OUT_DIR}/cli_index_values_${values}.out")
  run_cli(${out} ${PROGRAM} ${base_args} --scan=simd --values=${values})
  require_identical(${ref_out} ${out}
                    "default and --scan=simd --values=${values} output")
endforeach()
set(vt4_out "${OUT_DIR}/cli_index_values_scalar_t4.out")
run_cli(${vt4_out} ${PROGRAM} ${base_args} --scan=simd --values=scalar
        --threads=4)
require_identical(${ref_out} ${vt4_out}
                  "default and --scan=simd --values=scalar --threads=4 output")

message(STATUS "index smoke: all index/scan combinations byte-identical")
