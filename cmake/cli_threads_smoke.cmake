# Determinism smoke for the parallel engine at the CLI surface: run the
# same program serially and with --threads=4 and require byte-identical
# output (the TSV dump is sorted and the '# converged' stability index is
# part of the determinism contract).
#
# Invoked by CTest as:
#   cmake -DCLI=<datalogo_cli> -DPROGRAM=<.dl> -DEDGES=<.tsv>
#         -DOUT_DIR=<dir> -P cli_threads_smoke.cmake
foreach(var CLI PROGRAM EDGES OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "cli_threads_smoke: missing -D${var}=...")
  endif()
endforeach()

set(serial_out "${OUT_DIR}/cli_smoke_serial.out")
set(threads_out "${OUT_DIR}/cli_smoke_threads4.out")

execute_process(
  COMMAND ${CLI} ${PROGRAM} --semiring=trop --edb E=${EDGES} --seminaive
  OUTPUT_FILE ${serial_out}
  RESULT_VARIABLE serial_rc)
if(NOT serial_rc EQUAL 0)
  message(FATAL_ERROR "serial run failed (exit ${serial_rc})")
endif()

execute_process(
  COMMAND ${CLI} ${PROGRAM} --semiring=trop --edb E=${EDGES} --seminaive
          --threads=4
  OUTPUT_FILE ${threads_out}
  RESULT_VARIABLE threads_rc)
if(NOT threads_rc EQUAL 0)
  message(FATAL_ERROR "--threads=4 run failed (exit ${threads_rc})")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${serial_out} ${threads_out}
  RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
  message(FATAL_ERROR
          "serial and --threads=4 output differ: ${serial_out} vs "
          "${threads_out}")
endif()
message(STATUS "serial and --threads=4 CLI output identical")
