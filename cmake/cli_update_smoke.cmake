# Incremental-maintenance byte-identity smoke at the CLI surface: running
# the fixpoint on the ORIGINAL edges and servicing a mutation batch with
# --update= (Engine::Update — delete cascade + insert cascade, no full
# re-run) must print tables byte-identical to a cold full run over the
# PRE-MUTATED edge file. The leading '# ...' status comment legitimately
# differs between the two modes ("update applied via ..." vs "converged,
# stability index ..."), so comment lines are stripped before comparing;
# the '## PRED' table headers and every fact row must match exactly.
#
# Invoked by CTest as:
#   cmake -DCLI=<datalogo_cli> -DPROGRAM=<.dl> -DEDGES=<.tsv>
#         -DBATCH=<.batch> -DEDGES_UPDATED=<.tsv> -DOUT_DIR=<dir>
#         -P cli_update_smoke.cmake
foreach(var CLI PROGRAM EDGES BATCH EDGES_UPDATED OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "cli_update_smoke: missing -D${var}=...")
  endif()
endforeach()

function(run_cli out_file)
  execute_process(
    COMMAND ${CLI} ${ARGN}
    OUTPUT_FILE ${out_file}
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "datalogo_cli ${ARGN} failed (exit ${rc})")
  endif()
endfunction()

# Rewrites `in_file` with every "# " status-comment line removed. The
# "## PRED" table headers survive: their second character is '#', not ' '.
function(strip_comments in_file out_file)
  file(READ ${in_file} text)
  string(REGEX REPLACE "(^|\n)# [^\n]*\n" "\\1" text "${text}")
  file(WRITE ${out_file} "${text}")
endfunction()

function(require_identical a b what)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files ${a} ${b}
    RESULT_VARIABLE diff_rc)
  if(NOT diff_rc EQUAL 0)
    message(FATAL_ERROR "${what} differ: ${a} vs ${b}")
  endif()
endfunction()

set(base_args --semiring=trop --seminaive)

# Reference: cold full run over the post-batch edge file.
set(ref_out "${OUT_DIR}/cli_update_ref.out")
run_cli(${ref_out} ${PROGRAM} ${base_args} --edb E=${EDGES_UPDATED})
strip_comments(${ref_out} "${ref_out}.stripped")

# Incremental: fixpoint over the original edges, then the batch through
# Engine::Update — default config and a deliberately different one
# (threads, scheduler, index tier all changed); every variant must match
# the recompute byte-for-byte.
set(upd_out "${OUT_DIR}/cli_update_inc.out")
run_cli(${upd_out} ${PROGRAM} ${base_args} --edb E=${EDGES}
        --update=${BATCH})
strip_comments(${upd_out} "${upd_out}.stripped")
require_identical("${ref_out}.stripped" "${upd_out}.stripped"
                  "full recompute and --update output")

set(upd_t4_out "${OUT_DIR}/cli_update_inc_t4.out")
run_cli(${upd_t4_out} ${PROGRAM} ${base_args} --edb E=${EDGES}
        --update=${BATCH} --threads=4 --scheduler=ordered --index=direct)
strip_comments(${upd_t4_out} "${upd_t4_out}.stripped")
require_identical("${ref_out}.stripped" "${upd_t4_out}.stripped"
                  "full recompute and parallel/ordered --update output")

# The scalar kernels must maintain the same bytes too.
set(upd_scalar_out "${OUT_DIR}/cli_update_inc_scalar.out")
run_cli(${upd_scalar_out} ${PROGRAM} ${base_args} --edb E=${EDGES}
        --update=${BATCH} --scan=scalar --values=scalar)
strip_comments(${upd_scalar_out} "${upd_scalar_out}.stripped")
require_identical("${ref_out}.stripped" "${upd_scalar_out}.stripped"
                  "full recompute and scalar-kernel --update output")

message(STATUS "update smoke: incremental maintenance byte-identical")
