# Scheduler equivalence smoke at the CLI surface, mirroring
# cli_threads_smoke.cmake:
#   1. On a single-group program (PROGRAM), --scheduler=ordered must be
#      byte-identical to --scheduler=sweep — the ordered scheduler replays
#      the global semi-naive trace there, stability index included.
#   2. On a multi-group program (MULTI_PROGRAM), the fixpoints must match
#      after stripping '#' comment lines (the stability index legitimately
#      differs: ordered spends one seed step per group).
#   3. Ordered with --threads=4 must be byte-identical to ordered serial —
#      thread-count invariance holds per scheduler.
#
# Invoked by CTest as:
#   cmake -DCLI=<datalogo_cli> -DPROGRAM=<.dl> -DMULTI_PROGRAM=<.dl>
#         -DEDGES=<.tsv> -DOUT_DIR=<dir> -P cli_scheduler_smoke.cmake
foreach(var CLI PROGRAM MULTI_PROGRAM EDGES OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "cli_scheduler_smoke: missing -D${var}=...")
  endif()
endforeach()

function(run_cli out_file)
  execute_process(
    COMMAND ${CLI} ${ARGN}
    OUTPUT_FILE ${out_file}
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "datalogo_cli ${ARGN} failed (exit ${rc})")
  endif()
endfunction()

# Drops '#'-prefixed comment lines, keeping only the TSV fixpoint rows.
function(strip_comments in_file out_file)
  file(STRINGS ${in_file} lines)
  set(kept "")
  foreach(line IN LISTS lines)
    if(NOT line MATCHES "^#")
      string(APPEND kept "${line}\n")
    endif()
  endforeach()
  file(WRITE ${out_file} "${kept}")
endfunction()

function(require_identical a b what)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files ${a} ${b}
    RESULT_VARIABLE diff_rc)
  if(NOT diff_rc EQUAL 0)
    message(FATAL_ERROR "${what} differ: ${a} vs ${b}")
  endif()
endfunction()

set(base_args --semiring=trop --edb E=${EDGES} --seminaive)

# 1. Single-group program: full byte identity, stability index included.
set(sweep_out "${OUT_DIR}/cli_sched_sweep.out")
set(ordered_out "${OUT_DIR}/cli_sched_ordered.out")
run_cli(${sweep_out} ${PROGRAM} ${base_args} --scheduler=sweep)
run_cli(${ordered_out} ${PROGRAM} ${base_args} --scheduler=ordered)
require_identical(${sweep_out} ${ordered_out}
                  "sweep and ordered single-group output")

# 2. Multi-group program: identical fixpoints modulo comment lines.
set(msweep_out "${OUT_DIR}/cli_sched_multi_sweep.out")
set(mordered_out "${OUT_DIR}/cli_sched_multi_ordered.out")
run_cli(${msweep_out} ${MULTI_PROGRAM} ${base_args} --scheduler=sweep)
run_cli(${mordered_out} ${MULTI_PROGRAM} ${base_args} --scheduler=ordered)
strip_comments(${msweep_out} "${msweep_out}.rows")
strip_comments(${mordered_out} "${mordered_out}.rows")
require_identical("${msweep_out}.rows" "${mordered_out}.rows"
                  "sweep and ordered multi-group fixpoints")

# 3. Ordered is thread-count invariant, byte for byte.
set(mthreads_out "${OUT_DIR}/cli_sched_multi_ordered_t4.out")
run_cli(${mthreads_out} ${MULTI_PROGRAM} ${base_args} --scheduler=ordered
        --threads=4)
require_identical(${mordered_out} ${mthreads_out}
                  "ordered serial and ordered --threads=4 output")

message(STATUS "scheduler smoke: sweep/ordered/threads outputs agree")
