// Vector-valued polynomial systems f : P^N → P^N — the grounded form of a
// datalog° program (Sec. 4.3). Provides the naive (Kleene) iteration with
// step counting, the recursive-variable analysis of Sec. 5.4, and the
// theoretical convergence bounds of Theorem 5.12 for comparison.
#ifndef DATALOGO_POLY_POLY_SYSTEM_H_
#define DATALOGO_POLY_POLY_SYSTEM_H_

#include <string>
#include <vector>

#include "src/core/check.h"
#include "src/fixpoint/fixpoint.h"
#include "src/poly/polynomial.h"
#include "src/semiring/traits.h"

namespace datalogo {

/// Result of iterating a polynomial system from ⊥.
template <Pops P>
struct PolyIterationResult {
  std::vector<typename P::Value> values;
  int steps = 0;        ///< stability index if converged, else the budget
  bool converged = false;
};

/// f = (f₁, …, f_N), one polynomial per variable.
template <Pops P>
class PolySystem {
 public:
  using Value = typename P::Value;

  explicit PolySystem(int num_vars)
      : num_vars_(num_vars), polys_(num_vars) {}

  int num_vars() const { return num_vars_; }

  Polynomial<P>& poly(int i) {
    DLO_CHECK(i >= 0 && i < num_vars_);
    return polys_[i];
  }
  const Polynomial<P>& poly(int i) const {
    DLO_CHECK(i >= 0 && i < num_vars_);
    return polys_[i];
  }

  /// One application of the immediate consequence operator.
  std::vector<Value> Evaluate(const std::vector<Value>& x) const {
    DLO_CHECK(static_cast<int>(x.size()) == num_vars_);
    std::vector<Value> out;
    out.reserve(num_vars_);
    for (const auto& f : polys_) out.push_back(f.Evaluate(x));
    return out;
  }

  /// Algorithm 1 (naive evaluation): iterate from ⊥^N until fixpoint.
  PolyIterationResult<P> NaiveIterate(int max_steps) const {
    std::vector<Value> x(num_vars_, P::Bottom());
    auto step = [this](const std::vector<Value>& v) { return Evaluate(v); };
    auto eq = [](const std::vector<Value>& a, const std::vector<Value>& b) {
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (!P::Eq(a[i], b[i])) return false;
      }
      return true;
    };
    FixpointStats stats = IterateToFixpoint(x, step, eq, max_steps);
    return {std::move(x), stats.steps, stats.converged};
  }

  /// True if every component polynomial is linear (Sec. 5.3).
  bool IsLinear() const {
    for (const auto& f : polys_) {
      if (!f.IsLinear()) return false;
    }
    return true;
  }

  /// The dependency graph G_f of Sec. 5.4: edge i → j iff f_j depends on
  /// x_i. A variable is *recursive* if it lies on a cycle or is reachable
  /// from one; recursive variables can never escape the core semiring P+⊥
  /// (Proposition 5.16).
  std::vector<bool> RecursiveVars() const {
    // adj[i] = variables j such that f_j depends on x_i (edges i → j).
    std::vector<std::vector<int>> adj(num_vars_);
    for (int j = 0; j < num_vars_; ++j) {
      for (int i = 0; i < num_vars_; ++i) {
        if (polys_[j].DependsOn(i)) adj[i].push_back(j);
      }
    }
    // A variable is on a cycle iff it can reach itself; then propagate
    // forward. N is the number of grounded atoms (small in our use), so the
    // O(N·E) reachability pass is fine.
    std::vector<bool> recursive(num_vars_, false);
    for (int s = 0; s < num_vars_; ++s) {
      // BFS from s; if we re-enter s, it is on a cycle.
      std::vector<bool> seen(num_vars_, false);
      std::vector<int> queue = adj[s];
      while (!queue.empty()) {
        int v = queue.back();
        queue.pop_back();
        if (v == s) {
          recursive[s] = true;
        }
        if (seen[v]) continue;
        seen[v] = true;
        for (int w : adj[v]) {
          if (!seen[w]) queue.push_back(w);
        }
      }
    }
    // Propagate: recursive if reachable from a recursive variable.
    bool changed = true;
    while (changed) {
      changed = false;
      for (int i = 0; i < num_vars_; ++i) {
        if (!recursive[i]) continue;
        for (int j : adj[i]) {
          if (!recursive[j]) {
            recursive[j] = true;
            changed = true;
          }
        }
      }
    }
    return recursive;
  }

  /// The Theorem 5.12 / Corollary 5.18 bound on the stability index of this
  /// system over a p-stable POPS (saturating).
  uint64_t ConvergenceBound(int p) const {
    return IsLinear() ? LinearConvergenceBound(p, num_vars_)
                      : GeneralConvergenceBound(p, num_vars_);
  }

  std::string ToString() const {
    std::string out;
    for (int i = 0; i < num_vars_; ++i) {
      out += "x" + std::to_string(i) + " :- " + polys_[i].ToString() + "\n";
    }
    return out;
  }

 private:
  int num_vars_;
  std::vector<Polynomial<P>> polys_;
};

}  // namespace datalogo

#endif  // DATALOGO_POLY_POLY_SYSTEM_H_
