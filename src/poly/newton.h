// Newton's method for polynomial fixpoints over commutative IDEMPOTENT
// semirings (Esparza et al. [19], Hopkins–Kozen [41]); discussed in the
// paper's introduction as the second-order alternative to the naive
// (Kleene) iteration: fewer iterations, but every step solves an inner
// linear fixpoint (the Jacobian's Kleene closure).
//
// For an idempotent semiring the Newton step simplifies to
//     ν_{i+1} = (J_f(ν_i))* ⊙ f(ν_i)
// where J_f is the formal Jacobian (∂f_i/∂x_j with integer multiplicities
// collapsed by idempotence) and * is the matrix Kleene closure.
#ifndef DATALOGO_POLY_NEWTON_H_
#define DATALOGO_POLY_NEWTON_H_

#include <vector>

#include "src/core/check.h"
#include "src/poly/kleene.h"
#include "src/poly/matrix.h"
#include "src/poly/poly_system.h"

namespace datalogo {

/// Formal partial derivative ∂m/∂x_v of a monomial over an idempotent
/// semiring: drop one factor of x_v; the multiplicity k_v collapses to a
/// single copy by idempotence of ⊕.
template <Pops P>
std::vector<Monomial<P>> DeriveMonomial(const Monomial<P>& m, int v) {
  static_assert(P::kIdempotentPlus,
                "Newton's method requires an idempotent semiring");
  std::vector<Monomial<P>> out;
  for (std::size_t i = 0; i < m.powers.size(); ++i) {
    if (m.powers[i].first != v) continue;
    Monomial<P> d = m;
    if (d.powers[i].second > 1) {
      d.powers[i].second -= 1;
    } else {
      d.powers.erase(d.powers.begin() + i);
    }
    out.push_back(std::move(d));
    break;  // idempotence: one copy suffices
  }
  return out;
}

/// ∂f/∂x_v as a polynomial.
template <Pops P>
Polynomial<P> DerivePolynomial(const Polynomial<P>& f, int v) {
  Polynomial<P> out;
  for (const auto& m : f.monomials) {
    for (auto& d : DeriveMonomial<P>(m, v)) out.Add(std::move(d));
  }
  return out;
}

/// The Jacobian of the system evaluated at point x: J_ij = ∂f_i/∂x_j (x).
template <Pops P>
Matrix<P> JacobianAt(const PolySystem<P>& sys,
                     const std::vector<typename P::Value>& x) {
  const int n = sys.num_vars();
  Matrix<P> jac(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      jac.at(i, j) = DerivePolynomial<P>(sys.poly(i), j).Evaluate(x);
    }
  }
  return jac;
}

/// Result of a Newton run.
template <Pops P>
struct NewtonResult {
  std::vector<typename P::Value> values;
  int iterations = 0;
  bool converged = false;
};

/// Newton iteration for a system over a commutative idempotent semiring
/// whose elements are p-stable (star(a) = a^(p)). Converges to the least
/// fixpoint in at most N iterations for such semirings ([19]).
template <Pops P>
NewtonResult<P> NewtonSolve(const PolySystem<P>& sys, int p,
                            int max_iterations) {
  static_assert(P::kIdempotentPlus,
                "Newton's method requires an idempotent semiring");
  using Value = typename P::Value;
  const int n = sys.num_vars();
  std::vector<Value> nu(n, P::Bottom());
  nu = sys.Evaluate(nu);  // ν₀ = f(⊥)
  for (int it = 1; it <= max_iterations; ++it) {
    std::vector<Value> fnu = sys.Evaluate(nu);
    bool fixed = true;
    for (int i = 0; i < n; ++i) {
      if (!P::Eq(fnu[i], nu[i])) {
        fixed = false;
        break;
      }
    }
    if (fixed) return {std::move(nu), it - 1, true};
    Matrix<P> jac = JacobianAt<P>(sys, nu);
    Matrix<P> closure = KleeneClosurePStable<P>(jac, p);
    nu = closure.Apply(fnu);
  }
  // Final convergence check after exhausting the budget.
  std::vector<Value> fnu = sys.Evaluate(nu);
  bool fixed = true;
  for (int i = 0; i < n; ++i) {
    if (!P::Eq(fnu[i], nu[i])) {
      fixed = false;
      break;
    }
  }
  return {std::move(nu), max_iterations, fixed};
}

}  // namespace datalogo

#endif  // DATALOGO_POLY_NEWTON_H_
