// Dense matrices over a semiring and the matrix stability index of
// Sec. 5.5: A is q-stable when A^(q) = A^(q+1) with A^(q) = I + A + … + A^q.
// Lemma 5.20: over Trop+_p every N×N matrix is ((p+1)N − 1)-stable, and the
// N-cycle attains the bound.
#ifndef DATALOGO_POLY_MATRIX_H_
#define DATALOGO_POLY_MATRIX_H_

#include <optional>
#include <string>
#include <vector>

#include "src/core/check.h"
#include "src/semiring/traits.h"

namespace datalogo {

/// An n×n (or n×m) matrix with entries in the semiring S.
template <PreSemiring S>
class Matrix {
 public:
  using Value = typename S::Value;

  Matrix(int rows, int cols)
      : rows_(rows), cols_(cols), data_(rows * cols, Cell{S::Zero()}) {}

  static Matrix Identity(int n) {
    Matrix m(n, n);
    for (int i = 0; i < n; ++i) m.at(i, i) = S::One();
    return m;
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  Value& at(int i, int j) {
    DLO_CHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[i * cols_ + j].v;
  }
  const Value& at(int i, int j) const {
    DLO_CHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[i * cols_ + j].v;
  }

  bool Equals(const Matrix& other) const {
    if (rows_ != other.rows_ || cols_ != other.cols_) return false;
    for (std::size_t k = 0; k < data_.size(); ++k) {
      if (!S::Eq(data_[k].v, other.data_[k].v)) return false;
    }
    return true;
  }

  Matrix Plus(const Matrix& other) const {
    DLO_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
    Matrix out(rows_, cols_);
    for (std::size_t k = 0; k < data_.size(); ++k) {
      out.data_[k].v = S::Plus(data_[k].v, other.data_[k].v);
    }
    return out;
  }

  Matrix Times(const Matrix& other) const {
    DLO_CHECK(cols_ == other.rows_);
    Matrix out(rows_, other.cols_);
    for (int i = 0; i < rows_; ++i) {
      for (int j = 0; j < other.cols_; ++j) {
        Value acc = S::Zero();
        for (int k = 0; k < cols_; ++k) {
          acc = S::Plus(acc, S::Times(at(i, k), other.at(k, j)));
        }
        out.at(i, j) = acc;
      }
    }
    return out;
  }

  /// y = A·x over S.
  std::vector<Value> Apply(const std::vector<Value>& x) const {
    DLO_CHECK(static_cast<int>(x.size()) == cols_);
    std::vector<Value> y(rows_, S::Zero());
    for (int i = 0; i < rows_; ++i) {
      Value acc = S::Zero();
      for (int k = 0; k < cols_; ++k) {
        acc = S::Plus(acc, S::Times(at(i, k), x[k]));
      }
      y[i] = acc;
    }
    return y;
  }

  std::string ToString() const {
    std::string out;
    for (int i = 0; i < rows_; ++i) {
      for (int j = 0; j < cols_; ++j) {
        if (j) out += " ";
        out += S::ToString(at(i, j));
      }
      out += "\n";
    }
    return out;
  }

 private:
  // Cell wrapper sidesteps the std::vector<bool> proxy-reference
  // specialization so at() can hand out real references for every S.
  struct Cell {
    Value v;
  };

  int rows_, cols_;
  std::vector<Cell> data_;
};

/// Least q ≤ max_q with A^(q) = A^(q+1) (the matrix stability index of
/// Sec. 5.5), or nullopt if not reached. Uses A^(q+1) = I + A·A^(q).
template <PreSemiring S>
std::optional<int> MatrixStabilityIndex(const Matrix<S>& a, int max_q) {
  DLO_CHECK(a.rows() == a.cols());
  Matrix<S> sum = Matrix<S>::Identity(a.rows());  // A^(0)
  for (int q = 0; q <= max_q; ++q) {
    Matrix<S> next = Matrix<S>::Identity(a.rows()).Plus(a.Times(sum));
    if (next.Equals(sum)) return q;
    sum = std::move(next);
  }
  return std::nullopt;
}

/// A^(q) = I + A + … + A^q.
template <PreSemiring S>
Matrix<S> MatrixStarTruncated(const Matrix<S>& a, int q) {
  DLO_CHECK(a.rows() == a.cols());
  Matrix<S> sum = Matrix<S>::Identity(a.rows());
  for (int i = 0; i < q; ++i) {
    sum = Matrix<S>::Identity(a.rows()).Plus(a.Times(sum));
  }
  return sum;
}

}  // namespace datalogo

#endif  // DATALOGO_POLY_MATRIX_H_
