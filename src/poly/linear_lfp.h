// LinearLFP (Algorithm 2, Theorem 5.22): computes the least fixpoint of N
// linear functions over a p-stable POPS with strict multiplication in
// O(pN + N³) time, by variable elimination à la Gaussian /
// Floyd–Warshall–Kleene.
//
// A linear function over a POPS is represented by an EXPLICIT list of
// terms Σ_{i∈V} aᵢ·xᵢ (+ b): dropping a variable is not the same as
// setting its coefficient to 0, because 0·⊥ = ⊥ and x ⊕ ⊥ = ⊥ in a
// general POPS (Sec. 5.5 proof of Theorem 5.22).
#ifndef DATALOGO_POLY_LINEAR_LFP_H_
#define DATALOGO_POLY_LINEAR_LFP_H_

#include <optional>
#include <utility>
#include <vector>

#include "src/core/check.h"
#include "src/semiring/stability.h"
#include "src/semiring/traits.h"

namespace datalogo {

/// Σ terms aᵢ·xᵢ plus an optional explicit constant monomial.
template <Pops P>
struct LinearFunction {
  using Value = typename P::Value;

  /// (variable index, coefficient); at most one entry per variable after
  /// Normalize().
  std::vector<std::pair<int, Value>> terms;
  /// Explicit constant monomial; std::nullopt means "no constant monomial"
  /// (distinct from a constant of 0 over a non-semiring POPS).
  std::optional<Value> constant;

  Value Evaluate(const std::vector<Value>& x) const {
    Value sum = P::Zero();
    for (const auto& [v, a] : terms) {
      DLO_CHECK(v >= 0 && static_cast<std::size_t>(v) < x.size());
      sum = P::Plus(sum, P::Times(a, x[v]));
    }
    if (constant.has_value()) sum = P::Plus(sum, *constant);
    return sum;
  }

  /// Merges duplicate variable terms: a₁·x ⊕ a₂·x = (a₁ ⊕ a₂)·x, valid by
  /// distributivity in every pre-semiring.
  void Normalize() {
    std::vector<std::pair<int, Value>> merged;
    for (auto& [v, a] : terms) {
      bool found = false;
      for (auto& [mv, ma] : merged) {
        if (mv == v) {
          ma = P::Plus(ma, a);
          found = true;
          break;
        }
      }
      if (!found) merged.emplace_back(v, a);
    }
    terms = std::move(merged);
  }

  /// Adds the term a·x_v.
  void AddTerm(int v, Value a) { terms.emplace_back(v, std::move(a)); }

  /// Adds c to the constant monomial (creating it if absent).
  void AddConstant(Value c) {
    constant = constant.has_value() ? P::Plus(*constant, std::move(c))
                                    : std::move(c);
  }

  /// Removes and returns the coefficient of x_v, if present.
  std::optional<Value> ExtractTerm(int v) {
    for (std::size_t i = 0; i < terms.size(); ++i) {
      if (terms[i].first == v) {
        Value a = std::move(terms[i].second);
        terms.erase(terms.begin() + i);
        return a;
      }
    }
    return std::nullopt;
  }

  /// Substitutes the linear function g for x_v: each term a·x_v becomes
  /// a·g = Σⱼ (a⊗cⱼ)·xⱼ ⊕ a⊗c₀. Normalizes afterwards.
  void Substitute(int v, const LinearFunction& g) {
    std::optional<Value> a = ExtractTerm(v);
    if (!a.has_value()) return;
    for (const auto& [w, c] : g.terms) {
      AddTerm(w, P::Times(*a, c));
    }
    if (g.constant.has_value()) {
      AddConstant(P::Times(*a, *g.constant));
    }
    Normalize();
  }
};

/// LinearLFP (Algorithm 2): least fixpoint of x_i = f_i(x_1..x_N) over a
/// p-stable POPS with strict ⊗. Recursion eliminates the last variable:
///   if f_N is independent of x_N:      c(x) = f_N(x)
///   if f_N = a·x_N ⊕ b(x):             c(x) = a^(p)·b(x) ⊕ ⊥
/// then solves the remaining (N−1)-system with c substituted for x_N.
template <Pops P>
std::vector<typename P::Value> LinearLFP(
    std::vector<LinearFunction<P>> fs, int p) {
  using Value = typename P::Value;
  const int n = static_cast<int>(fs.size());
  if (n == 0) return {};

  for (auto& f : fs) f.Normalize();

  LinearFunction<P>& fn = fs[n - 1];
  std::optional<Value> a_nn = fn.ExtractTerm(n - 1);

  // Build c(x_1..x_{N-1}), the closed form of x_N (Lemma 3.3 with the
  // q-stability of g_x(y) = a·y ⊕ b(x)).
  LinearFunction<P> c;
  if (!a_nn.has_value()) {
    c = fn;  // f_N does not depend on x_N
  } else {
    Value star = StarTruncated<P>(*a_nn, p);  // a^(p)
    for (const auto& [v, coef] : fn.terms) {
      c.AddTerm(v, P::Times(star, coef));
    }
    if (fn.constant.has_value()) {
      c.AddConstant(P::Times(star, *fn.constant));
    }
    // The ⊕ ⊥ from g^(p+1)(⊥) = a^(p)·b(x) ⊕ ⊥.
    c.AddConstant(P::Bottom());
  }

  std::vector<LinearFunction<P>> reduced(fs.begin(), fs.end() - 1);
  for (auto& f : reduced) f.Substitute(n - 1, c);

  std::vector<Value> solution = LinearLFP<P>(std::move(reduced), p);
  // c only mentions variables < n-1; pad so Evaluate can index safely.
  solution.push_back(P::Bottom());
  solution[n - 1] = c.Evaluate(solution);
  return solution;
}

}  // namespace datalogo

#endif  // DATALOGO_POLY_LINEAR_LFP_H_
