// Multivariate polynomials over a POPS (Sec. 2.2). Monomials are kept as an
// EXPLICIT list: over a POPS that is not a semiring, a monomial with
// coefficient 0 is not the same as an absent monomial (0 ⊗ ⊥ = ⊥ ≠ 0 in
// the lifted reals), so polynomials never "pad" with zero coefficients.
#ifndef DATALOGO_POLY_POLYNOMIAL_H_
#define DATALOGO_POLY_POLYNOMIAL_H_

#include <algorithm>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/core/check.h"
#include "src/semiring/traits.h"

namespace datalogo {

/// A monomial c · x₁^{k₁} ⋯ x_N^{k_N} with only the non-zero exponents
/// stored, sorted by variable index.
template <Pops P>
struct Monomial {
  typename P::Value coeff = P::One();
  /// (variable index, exponent ≥ 1), strictly increasing in the index.
  std::vector<std::pair<int, int>> powers;
  /// Variables appearing under the POPS's `Not` function (Sec. 7): each
  /// entry v contributes a factor Not(x_v). Only valid for POPS exposing
  /// a monotone Not (THREE, FOUR).
  std::vector<int> negations;

  /// Total degree Σ kᵢ (Sec. 2.2), counting negated factors.
  int Degree() const {
    int d = static_cast<int>(negations.size());
    for (const auto& [v, e] : powers) d += e;
    return d;
  }

  /// Evaluates the monomial at the given assignment.
  typename P::Value Evaluate(const std::vector<typename P::Value>& x) const {
    typename P::Value result = coeff;
    for (const auto& [v, e] : powers) {
      DLO_CHECK(v >= 0 && static_cast<std::size_t>(v) < x.size());
      for (int i = 0; i < e; ++i) result = P::Times(result, x[v]);
    }
    for (int v : negations) {
      DLO_CHECK(v >= 0 && static_cast<std::size_t>(v) < x.size());
      if constexpr (requires(const typename P::Value& a) { P::Not(a); }) {
        result = P::Times(result, P::Not(x[v]));
      } else {
        DLO_CHECK_MSG(false, "POPS does not define Not()");
      }
    }
    return result;
  }

  /// Sorts the power list and merges duplicate variables; call after
  /// building a monomial by hand.
  void Normalize() {
    std::sort(powers.begin(), powers.end());
    std::vector<std::pair<int, int>> merged;
    for (const auto& [v, e] : powers) {
      if (!merged.empty() && merged.back().first == v) {
        merged.back().second += e;
      } else {
        merged.emplace_back(v, e);
      }
    }
    powers = std::move(merged);
  }
};

/// A polynomial = explicit sum of monomials; the empty sum evaluates to 0.
template <Pops P>
struct Polynomial {
  std::vector<Monomial<P>> monomials;

  /// Builds the constant polynomial {c}.
  static Polynomial Constant(typename P::Value c) {
    Polynomial f;
    f.monomials.push_back(Monomial<P>{std::move(c), {}, {}});
    return f;
  }

  /// Builds the single-variable polynomial c·x_v^e.
  static Polynomial Term(typename P::Value c, int var, int exp = 1) {
    Polynomial f;
    f.monomials.push_back(Monomial<P>{std::move(c), {{var, exp}}, {}});
    return f;
  }

  void Add(Monomial<P> m) { monomials.push_back(std::move(m)); }

  void AddAll(const Polynomial& other) {
    monomials.insert(monomials.end(), other.monomials.begin(),
                     other.monomials.end());
  }

  typename P::Value Evaluate(const std::vector<typename P::Value>& x) const {
    typename P::Value sum = P::Zero();
    for (const auto& m : monomials) sum = P::Plus(sum, m.Evaluate(x));
    return sum;
  }

  /// True if every monomial has total degree ≤ 1 ("linear", Sec. 5.3).
  bool IsLinear() const {
    for (const auto& m : monomials) {
      if (m.Degree() > 1) return false;
    }
    return true;
  }

  /// Maximum total degree over the monomials (0 for constants/empty).
  int Degree() const {
    int d = 0;
    for (const auto& m : monomials) d = std::max(d, m.Degree());
    return d;
  }

  /// True if some monomial mentions variable v (directly or under Not).
  bool DependsOn(int v) const {
    for (const auto& m : monomials) {
      for (const auto& [var, e] : m.powers) {
        if (var == v && e >= 1) return true;
      }
      for (int nv : m.negations) {
        if (nv == v) return true;
      }
    }
    return false;
  }

  std::string ToString(const std::string& var_prefix = "x") const {
    if (monomials.empty()) return "<empty>";
    std::ostringstream os;
    bool first = true;
    for (const auto& m : monomials) {
      if (!first) os << " + ";
      first = false;
      os << P::ToString(m.coeff);
      for (const auto& [v, e] : m.powers) {
        os << "*" << var_prefix << v;
        if (e > 1) os << "^" << e;
      }
    }
    return os.str();
  }
};

}  // namespace datalogo

#endif  // DATALOGO_POLY_POLYNOMIAL_H_
