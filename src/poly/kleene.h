// Floyd–Warshall–Kleene / Gauss–Jordan closure (Sec. 5.5, [52, 72]):
// computes A* = I + A + A² + … in O(N³) semiring operations given an
// element-level star. Over a p-stable semiring, star(a) = a^(p) (Eq. 30).
#ifndef DATALOGO_POLY_KLEENE_H_
#define DATALOGO_POLY_KLEENE_H_

#include <functional>

#include "src/poly/matrix.h"
#include "src/semiring/stability.h"

namespace datalogo {

/// Lehmann's algorithm: in-place elimination
///   C ← A;  for k: C_ij ← C_ij ⊕ C_ik ⊗ (C_kk)* ⊗ C_kj;  A* = I ⊕ C.
/// `star` must satisfy star(a) = 1 ⊕ a⊗star(a) (e.g. a^(p) when every
/// element is p-stable).
template <PreSemiring S>
Matrix<S> KleeneClosure(
    const Matrix<S>& a,
    const std::function<typename S::Value(const typename S::Value&)>& star) {
  DLO_CHECK(a.rows() == a.cols());
  const int n = a.rows();
  Matrix<S> c = a;
  for (int k = 0; k < n; ++k) {
    typename S::Value skk = star(c.at(k, k));
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        c.at(i, j) = S::Plus(
            c.at(i, j), S::Times(c.at(i, k), S::Times(skk, c.at(k, j))));
      }
    }
  }
  return Matrix<S>::Identity(n).Plus(c);
}

/// Closure over a uniformly p-stable semiring: star(a) = a^(p).
template <PreSemiring S>
Matrix<S> KleeneClosurePStable(const Matrix<S>& a, int p) {
  return KleeneClosure<S>(a, [p](const typename S::Value& v) {
    return StarTruncated<S>(v, p);
  });
}

/// Solves the linear fixpoint x = A·x ⊕ b as x = A*·b.
template <PreSemiring S>
std::vector<typename S::Value> SolveLinearFixpoint(
    const Matrix<S>& a, const std::vector<typename S::Value>& b, int p) {
  return KleeneClosurePStable<S>(a, p).Apply(b);
}

}  // namespace datalogo

#endif  // DATALOGO_POLY_KLEENE_H_
