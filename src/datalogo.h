// Umbrella header for the datalogo library: datalog over (pre-)semirings.
//
// Quick tour (see README.md for a walkthrough):
//   Domain dom;
//   auto prog = ParseProgram("idb T/2. T(X,Y) :- E(X,Y) ; T(X,Z)*E(Z,Y).",
//                            &dom).value();
//   EdbInstance<TropS> edb(prog);     // APSP when P = Trop+
//   ... load E ...
//   Engine<TropS> engine(prog, edb);
//   auto result = engine.SemiNaive(/*max_steps=*/1000);
#ifndef DATALOGO_DATALOGO_H_
#define DATALOGO_DATALOGO_H_

#include "src/core/status.h"
#include "src/datalog/advisor.h"
#include "src/datalog/ast.h"
#include "src/datalog/engine.h"
#include "src/datalog/grounder.h"
#include "src/datalog/instance.h"
#include "src/datalog/loader.h"
#include "src/datalog/parser.h"
#include "src/datalog/reliance.h"
#include "src/datalog/stratified.h"
#include "src/datalog/stratify.h"
#include "src/datalog/validate.h"
#include "src/fixpoint/fixpoint.h"
#include "src/graph/generators.h"
#include "src/graph/graph.h"
#include "src/graph/workloads.h"
#include "src/poly/kleene.h"
#include "src/poly/linear_lfp.h"
#include "src/poly/matrix.h"
#include "src/poly/newton.h"
#include "src/poly/poly_system.h"
#include "src/poly/polynomial.h"
#include "src/relation/relation.h"
#include "src/semiring/boolean.h"
#include "src/semiring/classification.h"
#include "src/semiring/completed.h"
#include "src/semiring/core_semiring.h"
#include "src/semiring/deletion.h"
#include "src/semiring/four.h"
#include "src/semiring/lifted.h"
#include "src/semiring/naturals.h"
#include "src/semiring/powerset.h"
#include "src/semiring/product.h"
#include "src/semiring/provenance.h"
#include "src/semiring/reals.h"
#include "src/semiring/stability.h"
#include "src/semiring/three.h"
#include "src/semiring/traits.h"
#include "src/semiring/trop_eta.h"
#include "src/semiring/trop_p.h"
#include "src/semiring/tropical.h"
#include "src/wf/wellfounded.h"

#endif  // DATALOGO_DATALOGO_H_
