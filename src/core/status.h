// Lightweight Status / Result types for fallible operations (parsing,
// program validation). The public API does not throw across boundaries.
#ifndef DATALOGO_CORE_STATUS_H_
#define DATALOGO_CORE_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "src/core/check.h"

namespace datalogo {

/// Error categories used across the library.
enum class Code {
  kOk = 0,
  kInvalidArgument,
  kParseError,
  kNotFound,
  kUnsupported,
  kDiverged,
  kInternal,
};

/// Returns a short human-readable name for an error code.
const char* CodeName(Code code);

/// Success-or-error result of an operation, carrying a message on error.
class Status {
 public:
  Status() : code_(Code::kOk) {}
  Status(Code code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Formats "CODE: message" for diagnostics.
  std::string ToString() const;

 private:
  Code code_;
  std::string message_;
};

inline Status InvalidArgument(std::string msg) {
  return Status(Code::kInvalidArgument, std::move(msg));
}
inline Status ParseError(std::string msg) {
  return Status(Code::kParseError, std::move(msg));
}
inline Status NotFound(std::string msg) {
  return Status(Code::kNotFound, std::move(msg));
}
inline Status Unsupported(std::string msg) {
  return Status(Code::kUnsupported, std::move(msg));
}
inline Status Diverged(std::string msg) {
  return Status(Code::kDiverged, std::move(msg));
}
inline Status Internal(std::string msg) {
  return Status(Code::kInternal, std::move(msg));
}

/// A value of type T or a Status error.
template <typename T>
class Result {
 public:
  Result(T value) : rep_(std::move(value)) {}             // NOLINT(runtime/explicit)
  Result(Status status) : rep_(std::move(status)) {       // NOLINT(runtime/explicit)
    DLO_CHECK_MSG(!std::get<Status>(rep_).ok(),
                  "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const T& value() const& {
    DLO_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(rep_);
  }
  T& value() & {
    DLO_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(rep_);
  }
  T&& value() && {
    DLO_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(std::move(rep_));
  }

  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(rep_);
  }

 private:
  std::variant<T, Status> rep_;
};

}  // namespace datalogo

#endif  // DATALOGO_CORE_STATUS_H_
