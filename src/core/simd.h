// Portable SIMD column-scan kernels for the columnar relation store.
//
// Two families of primitives live here. The *column scans* cover every
// vectorizable pass the index subsystem performs: compacting live-flag
// bytes to row ids (index construction over tombstoned stores),
// equality-filtering a ConstId column against one key (small-span
// direct-index builds), and exact min/max of a ConstId column
// (dense-range detection for direct indexes). The *join-batch
// primitives* (gather / compare-mask / compress) are the building
// blocks of the engine's batched join kernel: decode a small batch of
// entry-list row ids, gather the checked column cells, compare them as
// one mask, and compress the survivors.
//
// Dispatch is two-level. The instruction set is chosen at compile time
// by preprocessor detection (AVX2 > SSE2 on x86, NEON on arm64, scalar
// elsewhere); within one binary, every primitive also takes a runtime
// ScanKernel switch so the scalar path — the definitional reference —
// stays selectable for differential testing and benchmarking. Both
// paths emit row ids in ascending order and never read past the given
// length (tails are scalar), so outputs are bit-identical across
// kernels and sanitizer-clean: the engine's determinism pins do not
// depend on which kernel ran.
#ifndef DATALOGO_CORE_SIMD_H_
#define DATALOGO_CORE_SIMD_H_

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <vector>

#if defined(__AVX2__)
#include <immintrin.h>
#elif defined(__SSE2__)
#include <emmintrin.h>
#elif defined(__ARM_NEON) || defined(__ARM_NEON__)
#include <arm_neon.h>
#endif

namespace datalogo {

/// Runtime selection of the column-scan implementation. kSimd uses the
/// best instruction set the binary was compiled for (falling back to
/// scalar code when there is none); kScalar forces the reference loops.
enum class ScanKernel : uint8_t { kScalar = 0, kSimd = 1 };

/// The process-wide default kernel: DATALOGO_SCAN=scalar|simd overrides
/// (read once); otherwise kSimd — safe because results are identical by
/// construction.
inline ScanKernel DefaultScanKernel() {
  static const ScanKernel kDefault = [] {
    const char* v = std::getenv("DATALOGO_SCAN");
    if (v != nullptr && v[0] == 's' && v[1] == 'c') return ScanKernel::kScalar;
    return ScanKernel::kSimd;
  }();
  return kDefault;
}

/// The process-wide default semiring value-plane kernel:
/// DATALOGO_VALUES=scalar|simd overrides (read once); otherwise the value
/// plane follows the scan kernel — it only ever runs inside the batched
/// join, so there is no point vectorizing values under a scalar join.
inline ScanKernel DefaultValueKernel() {
  static const ScanKernel kDefault = [] {
    const char* v = std::getenv("DATALOGO_VALUES");
    if (v != nullptr && v[0] == 's' && v[1] == 'c') return ScanKernel::kScalar;
    if (v != nullptr && v[0] == 's' && v[1] == 'i') return ScanKernel::kSimd;
    return DefaultScanKernel();
  }();
  return kDefault;
}

namespace simd {

#if defined(__AVX2__)
inline constexpr const char* kIsaName = "avx2";
inline constexpr uint32_t kLanes32 = 8;   ///< u32 lanes per vector op
inline constexpr uint32_t kLanes8 = 32;   ///< u8 lanes per vector op
#elif defined(__SSE2__)
inline constexpr const char* kIsaName = "sse2";
inline constexpr uint32_t kLanes32 = 4;
inline constexpr uint32_t kLanes8 = 16;
#elif defined(__ARM_NEON) || defined(__ARM_NEON__)
inline constexpr const char* kIsaName = "neon";
inline constexpr uint32_t kLanes32 = 4;
inline constexpr uint32_t kLanes8 = 16;
#else
inline constexpr const char* kIsaName = "scalar";
inline constexpr uint32_t kLanes32 = 1;
inline constexpr uint32_t kLanes8 = 1;
#endif

/// The instruction set the kSimd paths compile to in this binary.
inline const char* IsaName() { return kIsaName; }

// ------------------------------------------------------------------
// CollectLiveRows: append every r in [0, n) with live[r] != 0 to *out,
// ascending. The hot scan of index construction over stores that carry
// tombstones (and the whole build for key-less "all rows" indexes).

inline void CollectLiveRowsScalar(const uint8_t* live, uint32_t n,
                                  std::vector<uint32_t>* out) {
  for (uint32_t r = 0; r < n; ++r) {
    if (live[r]) out->push_back(r);
  }
}

inline void CollectLiveRows(const uint8_t* live, uint32_t n, ScanKernel k,
                            std::vector<uint32_t>* out) {
  if (k == ScanKernel::kScalar) {
    CollectLiveRowsScalar(live, n, out);
    return;
  }
  uint32_t r = 0;
#if defined(__AVX2__)
  const __m256i zero = _mm256_setzero_si256();
  for (; r + 32 <= n; r += 32) {
    __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(live + r));
    uint32_t alive = ~static_cast<uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, zero)));
    while (alive) {
      out->push_back(r + static_cast<uint32_t>(__builtin_ctz(alive)));
      alive &= alive - 1;
    }
  }
#elif defined(__SSE2__)
  const __m128i zero = _mm_setzero_si128();
  for (; r + 16 <= n; r += 16) {
    __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(live + r));
    uint32_t alive =
        ~static_cast<uint32_t>(_mm_movemask_epi8(_mm_cmpeq_epi8(v, zero))) &
        0xFFFFu;
    while (alive) {
      out->push_back(r + static_cast<uint32_t>(__builtin_ctz(alive)));
      alive &= alive - 1;
    }
  }
#elif defined(__ARM_NEON) || defined(__ARM_NEON__)
  // NEON has no movemask; narrow each byte's comparison result to a
  // nibble (vshrn by 4), giving a 64-bit mask with 4 bits per lane.
  for (; r + 16 <= n; r += 16) {
    uint8x16_t v = vld1q_u8(live + r);
    uint8x16_t nonzero = vtstq_u8(v, v);
    uint8x8_t nib = vshrn_n_u16(vreinterpretq_u16_u8(nonzero), 4);
    uint64_t m = vget_lane_u64(vreinterpret_u64_u8(nib), 0);
    while (m) {
      uint32_t i = static_cast<uint32_t>(__builtin_ctzll(m)) >> 2;
      out->push_back(r + i);
      m &= ~(0xFull << (i * 4));
    }
  }
#endif
  for (; r < n; ++r) {
    if (live[r]) out->push_back(r);
  }
}

// ------------------------------------------------------------------
// FilterEqRows: append every r in [0, n) with col[r] == key to *out,
// ascending. Callers guarantee the whole range is live (tombstone-free
// stores) — this is the per-key pass of small-span direct-index builds,
// where scanning the column once per key beats a scalar scatter.

inline void FilterEqRowsScalar(const uint32_t* col, uint32_t n, uint32_t key,
                               std::vector<uint32_t>* out) {
  for (uint32_t r = 0; r < n; ++r) {
    if (col[r] == key) out->push_back(r);
  }
}

inline void FilterEqRows(const uint32_t* col, uint32_t n, uint32_t key,
                         ScanKernel k, std::vector<uint32_t>* out) {
  if (k == ScanKernel::kScalar) {
    FilterEqRowsScalar(col, n, key, out);
    return;
  }
  uint32_t r = 0;
#if defined(__AVX2__)
  const __m256i kv = _mm256_set1_epi32(static_cast<int>(key));
  for (; r + 8 <= n; r += 8) {
    __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(col + r));
    uint32_t m = static_cast<uint32_t>(
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(v, kv))));
    while (m) {
      out->push_back(r + static_cast<uint32_t>(__builtin_ctz(m)));
      m &= m - 1;
    }
  }
#elif defined(__SSE2__)
  const __m128i kv = _mm_set1_epi32(static_cast<int>(key));
  for (; r + 4 <= n; r += 4) {
    __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(col + r));
    uint32_t m = static_cast<uint32_t>(
        _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(v, kv))));
    while (m) {
      out->push_back(r + static_cast<uint32_t>(__builtin_ctz(m)));
      m &= m - 1;
    }
  }
#elif defined(__ARM_NEON) || defined(__ARM_NEON__)
  const uint32x4_t kv = vdupq_n_u32(key);
  for (; r + 4 <= n; r += 4) {
    uint32x4_t eq = vceqq_u32(vld1q_u32(col + r), kv);
    // Nibble-narrow as above: each u32 lane occupies 8 mask bits.
    uint8x8_t nib = vshrn_n_u16(vreinterpretq_u16_u32(eq), 4);
    uint64_t m = vget_lane_u64(vreinterpret_u64_u8(nib), 0);
    while (m) {
      uint32_t i = static_cast<uint32_t>(__builtin_ctzll(m)) >> 3;
      out->push_back(r + i);
      m &= ~(0xFFull << (i * 8));
    }
  }
#endif
  for (; r < n; ++r) {
    if (col[r] == key) out->push_back(r);
  }
}

// ------------------------------------------------------------------
// MinMaxU32: exact unsigned min and max of col[0..n). Requires n > 0.
// Feeds the direct-index density rule, so both kernels must be exact —
// a SIMD approximation would make index-kind selection diverge.

inline void MinMaxU32Scalar(const uint32_t* col, uint32_t n, uint32_t* lo,
                            uint32_t* hi) {
  uint32_t mn = col[0], mx = col[0];
  for (uint32_t r = 1; r < n; ++r) {
    if (col[r] < mn) mn = col[r];
    if (col[r] > mx) mx = col[r];
  }
  *lo = mn;
  *hi = mx;
}

inline void MinMaxU32(const uint32_t* col, uint32_t n, uint32_t* lo,
                      uint32_t* hi, ScanKernel k) {
  if (k == ScanKernel::kScalar || n < 2 * kLanes32) {
    MinMaxU32Scalar(col, n, lo, hi);
    return;
  }
  uint32_t r = 0;
  uint32_t mn = col[0], mx = col[0];
#if defined(__AVX2__)
  __m256i vmn = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(col));
  __m256i vmx = vmn;
  for (r = 8; r + 8 <= n; r += 8) {
    __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(col + r));
    vmn = _mm256_min_epu32(vmn, v);
    vmx = _mm256_max_epu32(vmx, v);
  }
  alignas(32) uint32_t lanes_mn[8], lanes_mx[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes_mn), vmn);
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes_mx), vmx);
  for (int i = 0; i < 8; ++i) {
    if (lanes_mn[i] < mn) mn = lanes_mn[i];
    if (lanes_mx[i] > mx) mx = lanes_mx[i];
  }
#elif defined(__SSE2__)
  // SSE2 has no unsigned 32-bit min/max; bias by 0x80000000 so signed
  // compare orders like unsigned, and blend through the compare mask.
  const __m128i bias = _mm_set1_epi32(static_cast<int>(0x80000000u));
  __m128i vmn = _mm_loadu_si128(reinterpret_cast<const __m128i*>(col));
  __m128i vmx = vmn;
  for (r = 4; r + 4 <= n; r += 4) {
    __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(col + r));
    __m128i gt_mn = _mm_cmpgt_epi32(_mm_xor_si128(vmn, bias),
                                    _mm_xor_si128(v, bias));
    vmn = _mm_or_si128(_mm_and_si128(gt_mn, v),
                       _mm_andnot_si128(gt_mn, vmn));
    __m128i gt_v = _mm_cmpgt_epi32(_mm_xor_si128(v, bias),
                                   _mm_xor_si128(vmx, bias));
    vmx = _mm_or_si128(_mm_and_si128(gt_v, v),
                       _mm_andnot_si128(gt_v, vmx));
  }
  alignas(16) uint32_t lanes_mn[4], lanes_mx[4];
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes_mn), vmn);
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes_mx), vmx);
  for (int i = 0; i < 4; ++i) {
    if (lanes_mn[i] < mn) mn = lanes_mn[i];
    if (lanes_mx[i] > mx) mx = lanes_mx[i];
  }
#elif defined(__ARM_NEON) || defined(__ARM_NEON__)
  uint32x4_t vmn = vld1q_u32(col);
  uint32x4_t vmx = vmn;
  for (r = 4; r + 4 <= n; r += 4) {
    uint32x4_t v = vld1q_u32(col + r);
    vmn = vminq_u32(vmn, v);
    vmx = vmaxq_u32(vmx, v);
  }
  uint32_t lanes_mn[4], lanes_mx[4];
  vst1q_u32(lanes_mn, vmn);
  vst1q_u32(lanes_mx, vmx);
  for (int i = 0; i < 4; ++i) {
    if (lanes_mn[i] < mn) mn = lanes_mn[i];
    if (lanes_mx[i] > mx) mx = lanes_mx[i];
  }
#endif
  for (; r < n; ++r) {
    if (col[r] < mn) mn = col[r];
    if (col[r] > mx) mx = col[r];
  }
  *lo = mn;
  *hi = mx;
}

// ------------------------------------------------------------------
// Join-batch primitives. The engine's batched join kernel decodes
// kJoinBatch row ids per step from an index entry list, gathers the
// column cells its check ops compare, folds the comparisons into one
// survivor bitmask, and compresses the surviving row ids into a small
// batch buffer. All three keep the column-scan contract: scalar
// reference selectable at runtime, scalar tails, never read past the
// given length, bit-identical outputs across kernels.

/// Row ids decoded per batched join step. Two SSE2/NEON vectors or one
/// AVX2 vector per compare; masks stay comfortably inside a uint32_t.
inline constexpr uint32_t kJoinBatch = 8;

// GatherU32: out[i] = col[rows[i]] for i in [0, n). The batch decode of
// one column over a row-id batch.

inline void GatherU32Scalar(const uint32_t* col, const uint32_t* rows,
                            uint32_t n, uint32_t* out) {
  for (uint32_t i = 0; i < n; ++i) out[i] = col[rows[i]];
}

inline void GatherU32(const uint32_t* col, const uint32_t* rows, uint32_t n,
                      ScanKernel k, uint32_t* out) {
  if (k == ScanKernel::kScalar) {
    GatherU32Scalar(col, rows, n, out);
    return;
  }
  uint32_t i = 0;
#if defined(__AVX2__)
  for (; i + 8 <= n; i += 8) {
    __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows + i));
    __m256i v =
        _mm256_i32gather_epi32(reinterpret_cast<const int*>(col), idx, 4);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), v);
  }
#else
  // SSE2/NEON have no hardware gather: issue four independent scalar
  // loads per step so the load ports pipeline them.
  for (; i + 4 <= n; i += 4) {
    out[i + 0] = col[rows[i + 0]];
    out[i + 1] = col[rows[i + 1]];
    out[i + 2] = col[rows[i + 2]];
    out[i + 3] = col[rows[i + 3]];
  }
#endif
  for (; i < n; ++i) out[i] = col[rows[i]];
}

// MaskEqU32: bit i of the result is set iff a[i] == b[i], for i in
// [0, n); higher bits are clear. Requires n <= 32. The pairwise form
// serves the engine's repeated-variable checks (two cells of the same
// row must agree); the scalar-key form filters a gathered batch against
// one loop-invariant ConstId.

inline uint32_t MaskEqU32Scalar(const uint32_t* a, const uint32_t* b,
                                uint32_t n) {
  uint32_t m = 0;
  for (uint32_t i = 0; i < n; ++i) {
    m |= static_cast<uint32_t>(a[i] == b[i]) << i;
  }
  return m;
}

inline uint32_t MaskEqU32(const uint32_t* a, const uint32_t* b, uint32_t n,
                          ScanKernel k) {
  if (k == ScanKernel::kScalar) return MaskEqU32Scalar(a, b, n);
  uint32_t m = 0;
  uint32_t i = 0;
#if defined(__AVX2__)
  for (; i + 8 <= n; i += 8) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    m |= static_cast<uint32_t>(_mm256_movemask_ps(
             _mm256_castsi256_ps(_mm256_cmpeq_epi32(va, vb))))
         << i;
  }
#elif defined(__SSE2__)
  for (; i + 4 <= n; i += 4) {
    __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    m |= static_cast<uint32_t>(
             _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(va, vb))))
         << i;
  }
#elif defined(__ARM_NEON) || defined(__ARM_NEON__)
  for (; i + 4 <= n; i += 4) {
    uint32x4_t eq = vceqq_u32(vld1q_u32(a + i), vld1q_u32(b + i));
    // Nibble-narrow as in FilterEqRows: each u32 lane lands on 8 mask
    // bits; pick bit 0 of each byte.
    uint8x8_t nib = vshrn_n_u16(vreinterpretq_u16_u32(eq), 4);
    uint64_t nm = vget_lane_u64(vreinterpret_u64_u8(nib), 0);
    for (uint32_t l = 0; l < 4; ++l) {
      m |= static_cast<uint32_t>((nm >> (8 * l)) & 1u) << (i + l);
    }
  }
#endif
  for (; i < n; ++i) {
    m |= static_cast<uint32_t>(a[i] == b[i]) << i;
  }
  return m;
}

inline uint32_t MaskEqScalarU32Scalar(const uint32_t* vals, uint32_t n,
                                      uint32_t key) {
  uint32_t m = 0;
  for (uint32_t i = 0; i < n; ++i) {
    m |= static_cast<uint32_t>(vals[i] == key) << i;
  }
  return m;
}

inline uint32_t MaskEqScalarU32(const uint32_t* vals, uint32_t n, uint32_t key,
                                ScanKernel k) {
  if (k == ScanKernel::kScalar) return MaskEqScalarU32Scalar(vals, n, key);
  uint32_t m = 0;
  uint32_t i = 0;
#if defined(__AVX2__)
  const __m256i kv = _mm256_set1_epi32(static_cast<int>(key));
  for (; i + 8 <= n; i += 8) {
    __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(vals + i));
    m |= static_cast<uint32_t>(_mm256_movemask_ps(
             _mm256_castsi256_ps(_mm256_cmpeq_epi32(v, kv))))
         << i;
  }
#elif defined(__SSE2__)
  const __m128i kv = _mm_set1_epi32(static_cast<int>(key));
  for (; i + 4 <= n; i += 4) {
    __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(vals + i));
    m |= static_cast<uint32_t>(
             _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(v, kv))))
         << i;
  }
#elif defined(__ARM_NEON) || defined(__ARM_NEON__)
  const uint32x4_t kv = vdupq_n_u32(key);
  for (; i + 4 <= n; i += 4) {
    uint32x4_t eq = vceqq_u32(vld1q_u32(vals + i), kv);
    uint8x8_t nib = vshrn_n_u16(vreinterpretq_u16_u32(eq), 4);
    uint64_t nm = vget_lane_u64(vreinterpret_u64_u8(nib), 0);
    for (uint32_t l = 0; l < 4; ++l) {
      m |= static_cast<uint32_t>((nm >> (8 * l)) & 1u) << (i + l);
    }
  }
#endif
  for (; i < n; ++i) {
    m |= static_cast<uint32_t>(vals[i] == key) << i;
  }
  return m;
}

/// Compresses the row ids selected by `mask` into `out`, preserving
/// ascending lane order; returns how many were written. Callers
/// guarantee mask bits at or above the batch length are clear (the
/// MaskEq kernels do). One deterministic implementation serves both
/// kernels — a bit-scan loop is already branch-light, and survivor
/// batches are at most kJoinBatch wide.
inline uint32_t CompressRowIds(const uint32_t* rows, uint32_t mask,
                               uint32_t* out) {
  uint32_t count = 0;
  while (mask) {
    out[count++] = rows[__builtin_ctz(mask)];
    mask &= mask - 1;
  }
  return count;
}

// ------------------------------------------------------------------
// Value-plane kernels. The batched join kernel's *value* twin: gather a
// survivor batch's semiring values, apply ⊗ against one loop-invariant
// accumulator, and fold ⊕ elementwise. Which kernel implements which
// semiring op is declared per semiring in semiring/simd_traits.h; the
// kernels themselves are plain typed arithmetic with the column-scan
// contract (runtime-selectable scalar reference, scalar tails,
// bit-identical outputs across kernels).
//
// Exactness notes, load-bearing for the engine's determinism pins:
//  * f64 add/mul lanes are the same IEEE operations as the scalar
//    expressions — bit-identical per element, no reassociation.
//  * MinF64/MaxF64 replicate std::min/std::max tie behaviour exactly
//    (ties — including ±0.0 — return the FIRST operand) by swapping the
//    operands of the hardware min/max, which return the second operand
//    on ties.
//  * The u64 kernels saturate exactly like NatS::Plus / TropNatS::Times
//    (kInf = UINT64_MAX absorbs through wrap-around + clamp). SSE2 has
//    no 64-bit compares, so their kSimd path is vectorized on AVX2 only
//    and falls back to the scalar loop elsewhere — still batched, still
//    bit-identical.

// GatherF64: out[i] = col[rows[i]] — value-column decode over a row-id
// batch (the f64 sibling of GatherU32).

inline void GatherF64Scalar(const double* col, const uint32_t* rows,
                            uint32_t n, double* out) {
  for (uint32_t i = 0; i < n; ++i) out[i] = col[rows[i]];
}

inline void GatherF64(const double* col, const uint32_t* rows, uint32_t n,
                      ScanKernel k, double* out) {
  if (k == ScanKernel::kScalar) {
    GatherF64Scalar(col, rows, n, out);
    return;
  }
  uint32_t i = 0;
#if defined(__AVX2__)
  for (; i + 4 <= n; i += 4) {
    __m128i idx = _mm_loadu_si128(reinterpret_cast<const __m128i*>(rows + i));
    __m256d v = _mm256_i32gather_pd(col, idx, 8);
    _mm256_storeu_pd(out + i, v);
  }
#else
  // No hardware gather below AVX2: four independent loads per step so
  // the load ports pipeline them (same shape as GatherU32).
  for (; i + 4 <= n; i += 4) {
    out[i + 0] = col[rows[i + 0]];
    out[i + 1] = col[rows[i + 1]];
    out[i + 2] = col[rows[i + 2]];
    out[i + 3] = col[rows[i + 3]];
  }
#endif
  for (; i < n; ++i) out[i] = col[rows[i]];
}

// AddScalarF64 / MulScalarF64: out[i] = acc ⊗ vals[i] for the f64
// semirings whose ⊗ is + (Trop) or × (R+/Viterbi), acc loop-invariant.

inline void AddScalarF64Scalar(double acc, const double* vals, uint32_t n,
                               double* out) {
  for (uint32_t i = 0; i < n; ++i) out[i] = acc + vals[i];
}

inline void AddScalarF64(double acc, const double* vals, uint32_t n,
                         ScanKernel k, double* out) {
  if (k == ScanKernel::kScalar) {
    AddScalarF64Scalar(acc, vals, n, out);
    return;
  }
  uint32_t i = 0;
#if defined(__AVX2__)
  const __m256d av = _mm256_set1_pd(acc);
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, _mm256_add_pd(av, _mm256_loadu_pd(vals + i)));
  }
#elif defined(__SSE2__)
  const __m128d av = _mm_set1_pd(acc);
  for (; i + 2 <= n; i += 2) {
    _mm_storeu_pd(out + i, _mm_add_pd(av, _mm_loadu_pd(vals + i)));
  }
#elif (defined(__ARM_NEON) || defined(__ARM_NEON__)) && defined(__aarch64__)
  const float64x2_t av = vdupq_n_f64(acc);
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(out + i, vaddq_f64(av, vld1q_f64(vals + i)));
  }
#endif
  for (; i < n; ++i) out[i] = acc + vals[i];
}

inline void MulScalarF64Scalar(double acc, const double* vals, uint32_t n,
                               double* out) {
  for (uint32_t i = 0; i < n; ++i) out[i] = acc * vals[i];
}

inline void MulScalarF64(double acc, const double* vals, uint32_t n,
                         ScanKernel k, double* out) {
  if (k == ScanKernel::kScalar) {
    MulScalarF64Scalar(acc, vals, n, out);
    return;
  }
  uint32_t i = 0;
#if defined(__AVX2__)
  const __m256d av = _mm256_set1_pd(acc);
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, _mm256_mul_pd(av, _mm256_loadu_pd(vals + i)));
  }
#elif defined(__SSE2__)
  const __m128d av = _mm_set1_pd(acc);
  for (; i + 2 <= n; i += 2) {
    _mm_storeu_pd(out + i, _mm_mul_pd(av, _mm_loadu_pd(vals + i)));
  }
#elif (defined(__ARM_NEON) || defined(__ARM_NEON__)) && defined(__aarch64__)
  const float64x2_t av = vdupq_n_f64(acc);
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(out + i, vmulq_f64(av, vld1q_f64(vals + i)));
  }
#endif
  for (; i < n; ++i) out[i] = acc * vals[i];
}

// MinF64 / MaxF64: out[i] = std::min/max(a[i], b[i]) — elementwise ⊕
// for min-plus/max-plus f64 dioids. Hardware min/max return the SECOND
// operand on ties (x < y ? x : y), std::min returns the FIRST, so the
// vector ops take (b, a): min_pd(b, a) = b < a ? b : a = std::min(a, b)
// bit-for-bit, ±0.0 included. No NaN can reach these: stored values are
// finite (∞ = ⊥ is never stored) and accumulators are finite products.

inline void MinF64Scalar(const double* a, const double* b, uint32_t n,
                         double* out) {
  for (uint32_t i = 0; i < n; ++i) out[i] = std::min(a[i], b[i]);
}

inline void MinF64(const double* a, const double* b, uint32_t n, ScanKernel k,
                   double* out) {
  if (k == ScanKernel::kScalar) {
    MinF64Scalar(a, b, n, out);
    return;
  }
  uint32_t i = 0;
#if defined(__AVX2__)
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, _mm256_min_pd(_mm256_loadu_pd(b + i),
                                            _mm256_loadu_pd(a + i)));
  }
#elif defined(__SSE2__)
  for (; i + 2 <= n; i += 2) {
    _mm_storeu_pd(out + i, _mm_min_pd(_mm_loadu_pd(b + i),
                                      _mm_loadu_pd(a + i)));
  }
#elif (defined(__ARM_NEON) || defined(__ARM_NEON__)) && defined(__aarch64__)
  for (; i + 2 <= n; i += 2) {
    float64x2_t va = vld1q_f64(a + i);
    float64x2_t vb = vld1q_f64(b + i);
    // b < a ? b : a — explicit select for std::min tie behaviour.
    vst1q_f64(out + i, vbslq_f64(vcltq_f64(vb, va), vb, va));
  }
#endif
  for (; i < n; ++i) out[i] = std::min(a[i], b[i]);
}

inline void MaxF64Scalar(const double* a, const double* b, uint32_t n,
                         double* out) {
  for (uint32_t i = 0; i < n; ++i) out[i] = std::max(a[i], b[i]);
}

inline void MaxF64(const double* a, const double* b, uint32_t n, ScanKernel k,
                   double* out) {
  if (k == ScanKernel::kScalar) {
    MaxF64Scalar(a, b, n, out);
    return;
  }
  uint32_t i = 0;
#if defined(__AVX2__)
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, _mm256_max_pd(_mm256_loadu_pd(b + i),
                                            _mm256_loadu_pd(a + i)));
  }
#elif defined(__SSE2__)
  for (; i + 2 <= n; i += 2) {
    _mm_storeu_pd(out + i, _mm_max_pd(_mm_loadu_pd(b + i),
                                      _mm_loadu_pd(a + i)));
  }
#elif (defined(__ARM_NEON) || defined(__ARM_NEON__)) && defined(__aarch64__)
  for (; i + 2 <= n; i += 2) {
    float64x2_t va = vld1q_f64(a + i);
    float64x2_t vb = vld1q_f64(b + i);
    // a < b ? b : a — std::max returns the first operand on ties.
    vst1q_f64(out + i, vbslq_f64(vcltq_f64(va, vb), vb, va));
  }
#endif
  for (; i < n; ++i) out[i] = std::max(a[i], b[i]);
}

// AddF64: out[i] = a[i] + b[i] — elementwise ⊕ for the float-sum
// semirings (R+). Elementwise-exact, but FOLDING through it reassociates
// — which is why simd_traits marks R+ kExactPlusFold = false.

inline void AddF64Scalar(const double* a, const double* b, uint32_t n,
                         double* out) {
  for (uint32_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
}

inline void AddF64(const double* a, const double* b, uint32_t n, ScanKernel k,
                   double* out) {
  if (k == ScanKernel::kScalar) {
    AddF64Scalar(a, b, n, out);
    return;
  }
  uint32_t i = 0;
#if defined(__AVX2__)
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, _mm256_add_pd(_mm256_loadu_pd(a + i),
                                            _mm256_loadu_pd(b + i)));
  }
#elif defined(__SSE2__)
  for (; i + 2 <= n; i += 2) {
    _mm_storeu_pd(out + i, _mm_add_pd(_mm_loadu_pd(a + i),
                                      _mm_loadu_pd(b + i)));
  }
#elif (defined(__ARM_NEON) || defined(__ARM_NEON__)) && defined(__aarch64__)
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(out + i, vaddq_f64(vld1q_f64(a + i), vld1q_f64(b + i)));
  }
#endif
  for (; i < n; ++i) out[i] = a[i] + b[i];
}

// SatAddScalarU64 / SatAddU64: saturating u64 add with UINT64_MAX as
// the absorbing ∞ — exactly NatS::Plus / TropNatS::Times, including the
// ∞ cases, because wrap-around + clamp reproduces them: ∞ + x wraps
// below the addend and clamps back to ∞. Vector path on AVX2 only (64-
// bit compares); SSE2/NEON run the batched scalar loop.

inline void SatAddScalarU64Scalar(uint64_t acc, const uint64_t* vals,
                                  uint32_t n, uint64_t* out) {
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t s = acc + vals[i];
    out[i] = s < acc ? ~uint64_t{0} : s;
  }
}

inline void SatAddScalarU64(uint64_t acc, const uint64_t* vals, uint32_t n,
                            ScanKernel k, uint64_t* out) {
  if (k == ScanKernel::kScalar) {
    SatAddScalarU64Scalar(acc, vals, n, out);
    return;
  }
  uint32_t i = 0;
#if defined(__AVX2__)
  const __m256i av = _mm256_set1_epi64x(static_cast<long long>(acc));
  const __m256i bias =
      _mm256_set1_epi64x(static_cast<long long>(0x8000000000000000ULL));
  const __m256i ab = _mm256_xor_si256(av, bias);
  for (; i + 4 <= n; i += 4) {
    __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(vals + i));
    __m256i s = _mm256_add_epi64(av, v);
    // Unsigned s < acc (overflow) via sign-biased signed compare; the
    // all-ones overflow lanes OR straight to UINT64_MAX.
    __m256i ov = _mm256_cmpgt_epi64(ab, _mm256_xor_si256(s, bias));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_or_si256(s, ov));
  }
#endif
  for (; i < n; ++i) {
    uint64_t s = acc + vals[i];
    out[i] = s < acc ? ~uint64_t{0} : s;
  }
}

inline void SatAddU64Scalar(const uint64_t* a, const uint64_t* b, uint32_t n,
                            uint64_t* out) {
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t s = a[i] + b[i];
    out[i] = s < a[i] ? ~uint64_t{0} : s;
  }
}

inline void SatAddU64(const uint64_t* a, const uint64_t* b, uint32_t n,
                      ScanKernel k, uint64_t* out) {
  if (k == ScanKernel::kScalar) {
    SatAddU64Scalar(a, b, n, out);
    return;
  }
  uint32_t i = 0;
#if defined(__AVX2__)
  const __m256i bias =
      _mm256_set1_epi64x(static_cast<long long>(0x8000000000000000ULL));
  for (; i + 4 <= n; i += 4) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    __m256i s = _mm256_add_epi64(va, vb);
    __m256i ov = _mm256_cmpgt_epi64(_mm256_xor_si256(va, bias),
                                    _mm256_xor_si256(s, bias));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_or_si256(s, ov));
  }
#endif
  for (; i < n; ++i) {
    uint64_t s = a[i] + b[i];
    out[i] = s < a[i] ? ~uint64_t{0} : s;
  }
}

// MinU64: out[i] = std::min(a[i], b[i]) — ⊕ of the u64 min-plus dioid
// (TropN). Ties return the first operand, matching std::min.

inline void MinU64Scalar(const uint64_t* a, const uint64_t* b, uint32_t n,
                         uint64_t* out) {
  for (uint32_t i = 0; i < n; ++i) out[i] = std::min(a[i], b[i]);
}

inline void MinU64(const uint64_t* a, const uint64_t* b, uint32_t n,
                   ScanKernel k, uint64_t* out) {
  if (k == ScanKernel::kScalar) {
    MinU64Scalar(a, b, n, out);
    return;
  }
  uint32_t i = 0;
#if defined(__AVX2__)
  const __m256i bias =
      _mm256_set1_epi64x(static_cast<long long>(0x8000000000000000ULL));
  for (; i + 4 <= n; i += 4) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    // b < a ? b : a — unsigned via sign bias; blendv picks b where set.
    __m256i lt = _mm256_cmpgt_epi64(_mm256_xor_si256(va, bias),
                                    _mm256_xor_si256(vb, bias));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_blendv_epi8(va, vb, lt));
  }
#endif
  for (; i < n; ++i) out[i] = std::min(a[i], b[i]);
}

// AndScalarU8 / OrU8: byte-wise ⊗/⊕ of the Boolean semiring over its
// 0/1 value bytes (B stores bool values; vector<ValueCell<bool>> is one
// byte per row).

inline void AndScalarU8Scalar(uint8_t acc, const uint8_t* vals, uint32_t n,
                              uint8_t* out) {
  for (uint32_t i = 0; i < n; ++i) {
    out[i] = static_cast<uint8_t>(acc & vals[i]);
  }
}

inline void AndScalarU8(uint8_t acc, const uint8_t* vals, uint32_t n,
                        ScanKernel k, uint8_t* out) {
  if (k == ScanKernel::kScalar) {
    AndScalarU8Scalar(acc, vals, n, out);
    return;
  }
  uint32_t i = 0;
#if defined(__AVX2__)
  const __m256i av = _mm256_set1_epi8(static_cast<char>(acc));
  for (; i + 32 <= n; i += 32) {
    __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(vals + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_and_si256(av, v));
  }
#elif defined(__SSE2__)
  const __m128i av = _mm_set1_epi8(static_cast<char>(acc));
  for (; i + 16 <= n; i += 16) {
    __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(vals + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm_and_si128(av, v));
  }
#elif defined(__ARM_NEON) || defined(__ARM_NEON__)
  const uint8x16_t av = vdupq_n_u8(acc);
  for (; i + 16 <= n; i += 16) {
    vst1q_u8(out + i, vandq_u8(av, vld1q_u8(vals + i)));
  }
#endif
  for (; i < n; ++i) {
    out[i] = static_cast<uint8_t>(acc & vals[i]);
  }
}

inline void OrU8Scalar(const uint8_t* a, const uint8_t* b, uint32_t n,
                       uint8_t* out) {
  for (uint32_t i = 0; i < n; ++i) {
    out[i] = static_cast<uint8_t>(a[i] | b[i]);
  }
}

inline void OrU8(const uint8_t* a, const uint8_t* b, uint32_t n, ScanKernel k,
                 uint8_t* out) {
  if (k == ScanKernel::kScalar) {
    OrU8Scalar(a, b, n, out);
    return;
  }
  uint32_t i = 0;
#if defined(__AVX2__)
  for (; i + 32 <= n; i += 32) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_or_si256(va, vb));
  }
#elif defined(__SSE2__)
  for (; i + 16 <= n; i += 16) {
    __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm_or_si128(va, vb));
  }
#elif defined(__ARM_NEON) || defined(__ARM_NEON__)
  for (; i + 16 <= n; i += 16) {
    vst1q_u8(out + i, vorrq_u8(vld1q_u8(a + i), vld1q_u8(b + i)));
  }
#endif
  for (; i < n; ++i) {
    out[i] = static_cast<uint8_t>(a[i] | b[i]);
  }
}

}  // namespace simd
}  // namespace datalogo

#endif  // DATALOGO_CORE_SIMD_H_
