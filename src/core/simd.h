// Portable SIMD column-scan kernels for the columnar relation store.
//
// Two families of primitives live here. The *column scans* cover every
// vectorizable pass the index subsystem performs: compacting live-flag
// bytes to row ids (index construction over tombstoned stores),
// equality-filtering a ConstId column against one key (small-span
// direct-index builds), and exact min/max of a ConstId column
// (dense-range detection for direct indexes). The *join-batch
// primitives* (gather / compare-mask / compress) are the building
// blocks of the engine's batched join kernel: decode a small batch of
// entry-list row ids, gather the checked column cells, compare them as
// one mask, and compress the survivors.
//
// Dispatch is two-level. The instruction set is chosen at compile time
// by preprocessor detection (AVX2 > SSE2 on x86, NEON on arm64, scalar
// elsewhere); within one binary, every primitive also takes a runtime
// ScanKernel switch so the scalar path — the definitional reference —
// stays selectable for differential testing and benchmarking. Both
// paths emit row ids in ascending order and never read past the given
// length (tails are scalar), so outputs are bit-identical across
// kernels and sanitizer-clean: the engine's determinism pins do not
// depend on which kernel ran.
#ifndef DATALOGO_CORE_SIMD_H_
#define DATALOGO_CORE_SIMD_H_

#include <cstdint>
#include <cstdlib>
#include <vector>

#if defined(__AVX2__)
#include <immintrin.h>
#elif defined(__SSE2__)
#include <emmintrin.h>
#elif defined(__ARM_NEON) || defined(__ARM_NEON__)
#include <arm_neon.h>
#endif

namespace datalogo {

/// Runtime selection of the column-scan implementation. kSimd uses the
/// best instruction set the binary was compiled for (falling back to
/// scalar code when there is none); kScalar forces the reference loops.
enum class ScanKernel : uint8_t { kScalar = 0, kSimd = 1 };

/// The process-wide default kernel: DATALOGO_SCAN=scalar|simd overrides
/// (read once); otherwise kSimd — safe because results are identical by
/// construction.
inline ScanKernel DefaultScanKernel() {
  static const ScanKernel kDefault = [] {
    const char* v = std::getenv("DATALOGO_SCAN");
    if (v != nullptr && v[0] == 's' && v[1] == 'c') return ScanKernel::kScalar;
    return ScanKernel::kSimd;
  }();
  return kDefault;
}

namespace simd {

#if defined(__AVX2__)
inline constexpr const char* kIsaName = "avx2";
inline constexpr uint32_t kLanes32 = 8;   ///< u32 lanes per vector op
inline constexpr uint32_t kLanes8 = 32;   ///< u8 lanes per vector op
#elif defined(__SSE2__)
inline constexpr const char* kIsaName = "sse2";
inline constexpr uint32_t kLanes32 = 4;
inline constexpr uint32_t kLanes8 = 16;
#elif defined(__ARM_NEON) || defined(__ARM_NEON__)
inline constexpr const char* kIsaName = "neon";
inline constexpr uint32_t kLanes32 = 4;
inline constexpr uint32_t kLanes8 = 16;
#else
inline constexpr const char* kIsaName = "scalar";
inline constexpr uint32_t kLanes32 = 1;
inline constexpr uint32_t kLanes8 = 1;
#endif

/// The instruction set the kSimd paths compile to in this binary.
inline const char* IsaName() { return kIsaName; }

// ------------------------------------------------------------------
// CollectLiveRows: append every r in [0, n) with live[r] != 0 to *out,
// ascending. The hot scan of index construction over stores that carry
// tombstones (and the whole build for key-less "all rows" indexes).

inline void CollectLiveRowsScalar(const uint8_t* live, uint32_t n,
                                  std::vector<uint32_t>* out) {
  for (uint32_t r = 0; r < n; ++r) {
    if (live[r]) out->push_back(r);
  }
}

inline void CollectLiveRows(const uint8_t* live, uint32_t n, ScanKernel k,
                            std::vector<uint32_t>* out) {
  if (k == ScanKernel::kScalar) {
    CollectLiveRowsScalar(live, n, out);
    return;
  }
  uint32_t r = 0;
#if defined(__AVX2__)
  const __m256i zero = _mm256_setzero_si256();
  for (; r + 32 <= n; r += 32) {
    __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(live + r));
    uint32_t alive = ~static_cast<uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, zero)));
    while (alive) {
      out->push_back(r + static_cast<uint32_t>(__builtin_ctz(alive)));
      alive &= alive - 1;
    }
  }
#elif defined(__SSE2__)
  const __m128i zero = _mm_setzero_si128();
  for (; r + 16 <= n; r += 16) {
    __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(live + r));
    uint32_t alive =
        ~static_cast<uint32_t>(_mm_movemask_epi8(_mm_cmpeq_epi8(v, zero))) &
        0xFFFFu;
    while (alive) {
      out->push_back(r + static_cast<uint32_t>(__builtin_ctz(alive)));
      alive &= alive - 1;
    }
  }
#elif defined(__ARM_NEON) || defined(__ARM_NEON__)
  // NEON has no movemask; narrow each byte's comparison result to a
  // nibble (vshrn by 4), giving a 64-bit mask with 4 bits per lane.
  for (; r + 16 <= n; r += 16) {
    uint8x16_t v = vld1q_u8(live + r);
    uint8x16_t nonzero = vtstq_u8(v, v);
    uint8x8_t nib = vshrn_n_u16(vreinterpretq_u16_u8(nonzero), 4);
    uint64_t m = vget_lane_u64(vreinterpret_u64_u8(nib), 0);
    while (m) {
      uint32_t i = static_cast<uint32_t>(__builtin_ctzll(m)) >> 2;
      out->push_back(r + i);
      m &= ~(0xFull << (i * 4));
    }
  }
#endif
  for (; r < n; ++r) {
    if (live[r]) out->push_back(r);
  }
}

// ------------------------------------------------------------------
// FilterEqRows: append every r in [0, n) with col[r] == key to *out,
// ascending. Callers guarantee the whole range is live (tombstone-free
// stores) — this is the per-key pass of small-span direct-index builds,
// where scanning the column once per key beats a scalar scatter.

inline void FilterEqRowsScalar(const uint32_t* col, uint32_t n, uint32_t key,
                               std::vector<uint32_t>* out) {
  for (uint32_t r = 0; r < n; ++r) {
    if (col[r] == key) out->push_back(r);
  }
}

inline void FilterEqRows(const uint32_t* col, uint32_t n, uint32_t key,
                         ScanKernel k, std::vector<uint32_t>* out) {
  if (k == ScanKernel::kScalar) {
    FilterEqRowsScalar(col, n, key, out);
    return;
  }
  uint32_t r = 0;
#if defined(__AVX2__)
  const __m256i kv = _mm256_set1_epi32(static_cast<int>(key));
  for (; r + 8 <= n; r += 8) {
    __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(col + r));
    uint32_t m = static_cast<uint32_t>(
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(v, kv))));
    while (m) {
      out->push_back(r + static_cast<uint32_t>(__builtin_ctz(m)));
      m &= m - 1;
    }
  }
#elif defined(__SSE2__)
  const __m128i kv = _mm_set1_epi32(static_cast<int>(key));
  for (; r + 4 <= n; r += 4) {
    __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(col + r));
    uint32_t m = static_cast<uint32_t>(
        _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(v, kv))));
    while (m) {
      out->push_back(r + static_cast<uint32_t>(__builtin_ctz(m)));
      m &= m - 1;
    }
  }
#elif defined(__ARM_NEON) || defined(__ARM_NEON__)
  const uint32x4_t kv = vdupq_n_u32(key);
  for (; r + 4 <= n; r += 4) {
    uint32x4_t eq = vceqq_u32(vld1q_u32(col + r), kv);
    // Nibble-narrow as above: each u32 lane occupies 8 mask bits.
    uint8x8_t nib = vshrn_n_u16(vreinterpretq_u16_u32(eq), 4);
    uint64_t m = vget_lane_u64(vreinterpret_u64_u8(nib), 0);
    while (m) {
      uint32_t i = static_cast<uint32_t>(__builtin_ctzll(m)) >> 3;
      out->push_back(r + i);
      m &= ~(0xFFull << (i * 8));
    }
  }
#endif
  for (; r < n; ++r) {
    if (col[r] == key) out->push_back(r);
  }
}

// ------------------------------------------------------------------
// MinMaxU32: exact unsigned min and max of col[0..n). Requires n > 0.
// Feeds the direct-index density rule, so both kernels must be exact —
// a SIMD approximation would make index-kind selection diverge.

inline void MinMaxU32Scalar(const uint32_t* col, uint32_t n, uint32_t* lo,
                            uint32_t* hi) {
  uint32_t mn = col[0], mx = col[0];
  for (uint32_t r = 1; r < n; ++r) {
    if (col[r] < mn) mn = col[r];
    if (col[r] > mx) mx = col[r];
  }
  *lo = mn;
  *hi = mx;
}

inline void MinMaxU32(const uint32_t* col, uint32_t n, uint32_t* lo,
                      uint32_t* hi, ScanKernel k) {
  if (k == ScanKernel::kScalar || n < 2 * kLanes32) {
    MinMaxU32Scalar(col, n, lo, hi);
    return;
  }
  uint32_t r = 0;
  uint32_t mn = col[0], mx = col[0];
#if defined(__AVX2__)
  __m256i vmn = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(col));
  __m256i vmx = vmn;
  for (r = 8; r + 8 <= n; r += 8) {
    __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(col + r));
    vmn = _mm256_min_epu32(vmn, v);
    vmx = _mm256_max_epu32(vmx, v);
  }
  alignas(32) uint32_t lanes_mn[8], lanes_mx[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes_mn), vmn);
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes_mx), vmx);
  for (int i = 0; i < 8; ++i) {
    if (lanes_mn[i] < mn) mn = lanes_mn[i];
    if (lanes_mx[i] > mx) mx = lanes_mx[i];
  }
#elif defined(__SSE2__)
  // SSE2 has no unsigned 32-bit min/max; bias by 0x80000000 so signed
  // compare orders like unsigned, and blend through the compare mask.
  const __m128i bias = _mm_set1_epi32(static_cast<int>(0x80000000u));
  __m128i vmn = _mm_loadu_si128(reinterpret_cast<const __m128i*>(col));
  __m128i vmx = vmn;
  for (r = 4; r + 4 <= n; r += 4) {
    __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(col + r));
    __m128i gt_mn = _mm_cmpgt_epi32(_mm_xor_si128(vmn, bias),
                                    _mm_xor_si128(v, bias));
    vmn = _mm_or_si128(_mm_and_si128(gt_mn, v),
                       _mm_andnot_si128(gt_mn, vmn));
    __m128i gt_v = _mm_cmpgt_epi32(_mm_xor_si128(v, bias),
                                   _mm_xor_si128(vmx, bias));
    vmx = _mm_or_si128(_mm_and_si128(gt_v, v),
                       _mm_andnot_si128(gt_v, vmx));
  }
  alignas(16) uint32_t lanes_mn[4], lanes_mx[4];
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes_mn), vmn);
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes_mx), vmx);
  for (int i = 0; i < 4; ++i) {
    if (lanes_mn[i] < mn) mn = lanes_mn[i];
    if (lanes_mx[i] > mx) mx = lanes_mx[i];
  }
#elif defined(__ARM_NEON) || defined(__ARM_NEON__)
  uint32x4_t vmn = vld1q_u32(col);
  uint32x4_t vmx = vmn;
  for (r = 4; r + 4 <= n; r += 4) {
    uint32x4_t v = vld1q_u32(col + r);
    vmn = vminq_u32(vmn, v);
    vmx = vmaxq_u32(vmx, v);
  }
  uint32_t lanes_mn[4], lanes_mx[4];
  vst1q_u32(lanes_mn, vmn);
  vst1q_u32(lanes_mx, vmx);
  for (int i = 0; i < 4; ++i) {
    if (lanes_mn[i] < mn) mn = lanes_mn[i];
    if (lanes_mx[i] > mx) mx = lanes_mx[i];
  }
#endif
  for (; r < n; ++r) {
    if (col[r] < mn) mn = col[r];
    if (col[r] > mx) mx = col[r];
  }
  *lo = mn;
  *hi = mx;
}

// ------------------------------------------------------------------
// Join-batch primitives. The engine's batched join kernel decodes
// kJoinBatch row ids per step from an index entry list, gathers the
// column cells its check ops compare, folds the comparisons into one
// survivor bitmask, and compresses the surviving row ids into a small
// batch buffer. All three keep the column-scan contract: scalar
// reference selectable at runtime, scalar tails, never read past the
// given length, bit-identical outputs across kernels.

/// Row ids decoded per batched join step. Two SSE2/NEON vectors or one
/// AVX2 vector per compare; masks stay comfortably inside a uint32_t.
inline constexpr uint32_t kJoinBatch = 8;

// GatherU32: out[i] = col[rows[i]] for i in [0, n). The batch decode of
// one column over a row-id batch.

inline void GatherU32Scalar(const uint32_t* col, const uint32_t* rows,
                            uint32_t n, uint32_t* out) {
  for (uint32_t i = 0; i < n; ++i) out[i] = col[rows[i]];
}

inline void GatherU32(const uint32_t* col, const uint32_t* rows, uint32_t n,
                      ScanKernel k, uint32_t* out) {
  if (k == ScanKernel::kScalar) {
    GatherU32Scalar(col, rows, n, out);
    return;
  }
  uint32_t i = 0;
#if defined(__AVX2__)
  for (; i + 8 <= n; i += 8) {
    __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows + i));
    __m256i v =
        _mm256_i32gather_epi32(reinterpret_cast<const int*>(col), idx, 4);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), v);
  }
#else
  // SSE2/NEON have no hardware gather: issue four independent scalar
  // loads per step so the load ports pipeline them.
  for (; i + 4 <= n; i += 4) {
    out[i + 0] = col[rows[i + 0]];
    out[i + 1] = col[rows[i + 1]];
    out[i + 2] = col[rows[i + 2]];
    out[i + 3] = col[rows[i + 3]];
  }
#endif
  for (; i < n; ++i) out[i] = col[rows[i]];
}

// MaskEqU32: bit i of the result is set iff a[i] == b[i], for i in
// [0, n); higher bits are clear. Requires n <= 32. The pairwise form
// serves the engine's repeated-variable checks (two cells of the same
// row must agree); the scalar-key form filters a gathered batch against
// one loop-invariant ConstId.

inline uint32_t MaskEqU32Scalar(const uint32_t* a, const uint32_t* b,
                                uint32_t n) {
  uint32_t m = 0;
  for (uint32_t i = 0; i < n; ++i) {
    m |= static_cast<uint32_t>(a[i] == b[i]) << i;
  }
  return m;
}

inline uint32_t MaskEqU32(const uint32_t* a, const uint32_t* b, uint32_t n,
                          ScanKernel k) {
  if (k == ScanKernel::kScalar) return MaskEqU32Scalar(a, b, n);
  uint32_t m = 0;
  uint32_t i = 0;
#if defined(__AVX2__)
  for (; i + 8 <= n; i += 8) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    m |= static_cast<uint32_t>(_mm256_movemask_ps(
             _mm256_castsi256_ps(_mm256_cmpeq_epi32(va, vb))))
         << i;
  }
#elif defined(__SSE2__)
  for (; i + 4 <= n; i += 4) {
    __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    m |= static_cast<uint32_t>(
             _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(va, vb))))
         << i;
  }
#elif defined(__ARM_NEON) || defined(__ARM_NEON__)
  for (; i + 4 <= n; i += 4) {
    uint32x4_t eq = vceqq_u32(vld1q_u32(a + i), vld1q_u32(b + i));
    // Nibble-narrow as in FilterEqRows: each u32 lane lands on 8 mask
    // bits; pick bit 0 of each byte.
    uint8x8_t nib = vshrn_n_u16(vreinterpretq_u16_u32(eq), 4);
    uint64_t nm = vget_lane_u64(vreinterpret_u64_u8(nib), 0);
    for (uint32_t l = 0; l < 4; ++l) {
      m |= static_cast<uint32_t>((nm >> (8 * l)) & 1u) << (i + l);
    }
  }
#endif
  for (; i < n; ++i) {
    m |= static_cast<uint32_t>(a[i] == b[i]) << i;
  }
  return m;
}

inline uint32_t MaskEqScalarU32Scalar(const uint32_t* vals, uint32_t n,
                                      uint32_t key) {
  uint32_t m = 0;
  for (uint32_t i = 0; i < n; ++i) {
    m |= static_cast<uint32_t>(vals[i] == key) << i;
  }
  return m;
}

inline uint32_t MaskEqScalarU32(const uint32_t* vals, uint32_t n, uint32_t key,
                                ScanKernel k) {
  if (k == ScanKernel::kScalar) return MaskEqScalarU32Scalar(vals, n, key);
  uint32_t m = 0;
  uint32_t i = 0;
#if defined(__AVX2__)
  const __m256i kv = _mm256_set1_epi32(static_cast<int>(key));
  for (; i + 8 <= n; i += 8) {
    __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(vals + i));
    m |= static_cast<uint32_t>(_mm256_movemask_ps(
             _mm256_castsi256_ps(_mm256_cmpeq_epi32(v, kv))))
         << i;
  }
#elif defined(__SSE2__)
  const __m128i kv = _mm_set1_epi32(static_cast<int>(key));
  for (; i + 4 <= n; i += 4) {
    __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(vals + i));
    m |= static_cast<uint32_t>(
             _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(v, kv))))
         << i;
  }
#elif defined(__ARM_NEON) || defined(__ARM_NEON__)
  const uint32x4_t kv = vdupq_n_u32(key);
  for (; i + 4 <= n; i += 4) {
    uint32x4_t eq = vceqq_u32(vld1q_u32(vals + i), kv);
    uint8x8_t nib = vshrn_n_u16(vreinterpretq_u16_u32(eq), 4);
    uint64_t nm = vget_lane_u64(vreinterpret_u64_u8(nib), 0);
    for (uint32_t l = 0; l < 4; ++l) {
      m |= static_cast<uint32_t>((nm >> (8 * l)) & 1u) << (i + l);
    }
  }
#endif
  for (; i < n; ++i) {
    m |= static_cast<uint32_t>(vals[i] == key) << i;
  }
  return m;
}

/// Compresses the row ids selected by `mask` into `out`, preserving
/// ascending lane order; returns how many were written. Callers
/// guarantee mask bits at or above the batch length are clear (the
/// MaskEq kernels do). One deterministic implementation serves both
/// kernels — a bit-scan loop is already branch-light, and survivor
/// batches are at most kJoinBatch wide.
inline uint32_t CompressRowIds(const uint32_t* rows, uint32_t mask,
                               uint32_t* out) {
  uint32_t count = 0;
  while (mask) {
    out[count++] = rows[__builtin_ctz(mask)];
    mask &= mask - 1;
  }
  return count;
}

}  // namespace simd
}  // namespace datalogo

#endif  // DATALOGO_CORE_SIMD_H_
