// Internal invariant checking. CHECK-style macros abort on violation; they
// guard programmer errors, not user input (user input goes through Status).
#ifndef DATALOGO_CORE_CHECK_H_
#define DATALOGO_CORE_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define DLO_CHECK(cond)                                                       \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__, __LINE__, \
                   #cond);                                                    \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

#define DLO_CHECK_MSG(cond, msg)                                             \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s (%s)\n", __FILE__,     \
                   __LINE__, #cond, msg);                                    \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#endif  // DATALOGO_CORE_CHECK_H_
