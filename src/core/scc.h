// Strongly connected components by Tarjan's algorithm, shared by the
// predicate-level stratifier (src/datalog/stratify.cc) and the rule-level
// reliance scheduler (src/datalog/reliance.h).
//
// The traversal is fully iterative (explicit DFS frames, no recursion), so
// component extraction is safe on adversarially deep graphs — a linear
// chain as long as the input cannot overflow the call stack.
//
// Numbering contract: components are numbered in REVERSE topological
// order of the condensation — for every edge u → v with comp(u) ≠
// comp(v), comp(v) < comp(u). Iterating component ids in DECREASING
// order therefore visits sources (producers) before the components that
// depend on them; both consumers rely on this.
#ifndef DATALOGO_CORE_SCC_H_
#define DATALOGO_CORE_SCC_H_

#include <algorithm>
#include <cstddef>
#include <vector>

namespace datalogo {

/// Tarjan SCC over a small adjacency list. Construct with the graph,
/// call Run() once, then read components()/num_components().
class Tarjan {
 public:
  explicit Tarjan(const std::vector<std::vector<int>>& adj)
      : adj_(adj),
        index_(adj.size(), -1),
        low_(adj.size(), 0),
        on_stack_(adj.size(), false),
        comp_(adj.size(), -1) {}

  void Run() {
    for (std::size_t v = 0; v < adj_.size(); ++v) {
      if (index_[v] < 0) Visit(static_cast<int>(v));
    }
  }

  /// comp_[v] = component id of vertex v (valid after Run()).
  const std::vector<int>& components() const { return comp_; }
  int num_components() const { return num_comps_; }

 private:
  /// One suspended DFS position: vertex plus the next out-edge to try.
  struct Frame {
    int v;
    std::size_t edge;
  };

  /// Iterative DFS from `root`, numbering vertices in the exact order
  /// the textbook recursive formulation would (children expanded in
  /// adjacency order, low-links folded into the parent on frame pop).
  void Visit(int root) {
    index_[root] = low_[root] = next_index_++;
    stack_.push_back(root);
    on_stack_[root] = true;
    frames_.push_back(Frame{root, 0});
    while (!frames_.empty()) {
      Frame& f = frames_.back();
      if (f.edge < adj_[f.v].size()) {
        const int w = adj_[f.v][f.edge++];
        if (index_[w] < 0) {
          index_[w] = low_[w] = next_index_++;
          stack_.push_back(w);
          on_stack_[w] = true;
          frames_.push_back(Frame{w, 0});
        } else if (on_stack_[w]) {
          low_[f.v] = std::min(low_[f.v], index_[w]);
        }
        continue;
      }
      const int v = f.v;
      frames_.pop_back();
      if (low_[v] == index_[v]) {
        const int c = num_comps_++;
        while (true) {
          const int w = stack_.back();
          stack_.pop_back();
          on_stack_[w] = false;
          comp_[w] = c;
          if (w == v) break;
        }
      }
      if (!frames_.empty()) {
        low_[frames_.back().v] = std::min(low_[frames_.back().v], low_[v]);
      }
    }
  }

  const std::vector<std::vector<int>>& adj_;
  std::vector<int> index_, low_;
  std::vector<bool> on_stack_;
  std::vector<int> comp_;
  std::vector<int> stack_;
  std::vector<Frame> frames_;
  int next_index_ = 0;
  int num_comps_ = 0;
};

}  // namespace datalogo

#endif  // DATALOGO_CORE_SCC_H_
