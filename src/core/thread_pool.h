// A minimal fork-join thread pool for the engine's parallel ICO step.
//
// The pool exposes exactly one primitive — ParallelFor(n, fn) — which runs
// fn(0) .. fn(n-1) across the submitting thread plus the pool's workers
// and blocks until every task has finished. There is no work stealing and
// no task graph: the engine needs a barriered indexed loop (the
// deterministic merge that follows evaluation depends on the barrier), so
// tasks are handed out from a single atomic cursor and the batch completes
// when the last task does.
//
// Determinism contract: every task is attempted exactly once regardless of
// which thread runs it or whether other tasks threw; if any task threw,
// the exception from the LOWEST-index failing task is rethrown to the
// submitter after the whole batch has completed, so the propagated error
// does not depend on scheduling.
#ifndef DATALOGO_CORE_THREAD_POOL_H_
#define DATALOGO_CORE_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace datalogo {

/// Fixed-size fork-join pool. `num_threads` is the total concurrency of a
/// ParallelFor call: the pool spawns num_threads - 1 workers and the
/// submitting thread executes tasks too. num_threads <= 1 is the
/// degenerate mode — no workers are spawned and ParallelFor runs inline
/// on the caller (same semantics, zero synchronization).
///
/// One batch at a time: ParallelFor must not be called concurrently from
/// two threads, and must not be called from inside a task.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads) {
    int workers = num_threads - 1;
    if (workers < 0) workers = 0;
    if (workers > kMaxWorkers) workers = kMaxWorkers;
    threads_.reserve(static_cast<std::size_t>(workers));
    for (int i = 0; i < workers; ++i) {
      threads_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  /// Worker threads owned by the pool (the submitter is not counted).
  int workers() const { return static_cast<int>(threads_.size()); }
  /// Threads a ParallelFor call executes on: workers plus the submitter.
  int concurrency() const { return workers() + 1; }

  /// Runs fn(0) .. fn(n-1), returning once all have completed. Tasks are
  /// claimed dynamically, so callers must not assume any execution order —
  /// only that each index runs exactly once and that everything observable
  /// from the tasks is visible to the submitter when the call returns.
  void ParallelFor(std::size_t n, std::function<void(std::size_t)> fn) {
    if (n == 0) return;
    if (threads_.empty()) {
      // Inline degenerate mode: same all-tasks-attempted / lowest-index
      // exception semantics, no synchronization.
      std::exception_ptr eptr;
      for (std::size_t i = 0; i < n; ++i) {
        try {
          fn(i);
        } catch (...) {
          if (!eptr) eptr = std::current_exception();
        }
      }
      if (eptr) std::rethrow_exception(eptr);
      return;
    }
    auto batch = std::make_shared<Batch>();
    batch->fn = std::move(fn);
    batch->n = n;
    {
      std::lock_guard<std::mutex> lk(mu_);
      current_ = batch;
    }
    cv_.notify_all();
    RunTasks(*batch);  // the submitter participates
    {
      std::unique_lock<std::mutex> lk(batch->mu);
      batch->done_cv.wait(lk, [&] { return batch->done == batch->n; });
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (current_ == batch) current_.reset();
    }
    if (batch->eptr) std::rethrow_exception(batch->eptr);
  }

 private:
  /// Spawning thousands of OS threads is never what a caller wants. The
  /// engine passes num_threads through unclamped (the equivalence tests
  /// deliberately oversubscribe single-core hosts), so the pool itself
  /// caps runaway values.
  static constexpr int kMaxWorkers = 255;

  /// Shared state of one ParallelFor call. Heap-allocated and reference-
  /// counted so a worker that wakes late (or finishes last) can never
  /// touch a batch the submitter has abandoned.
  struct Batch {
    std::function<void(std::size_t)> fn;
    std::size_t n = 0;
    std::atomic<std::size_t> next{0};
    std::mutex mu;
    std::condition_variable done_cv;
    std::size_t done = 0;            ///< guarded by mu
    std::exception_ptr eptr;         ///< guarded by mu
    std::size_t eidx = 0;            ///< index whose exception eptr holds
  };

  static void RunTasks(Batch& b) {
    for (;;) {
      const std::size_t i = b.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= b.n) return;
      std::exception_ptr e;
      try {
        b.fn(i);
      } catch (...) {
        e = std::current_exception();
      }
      std::lock_guard<std::mutex> lk(b.mu);
      if (e && (!b.eptr || i < b.eidx)) {
        b.eptr = e;
        b.eidx = i;
      }
      if (++b.done == b.n) b.done_cv.notify_all();
    }
  }

  void WorkerLoop() {
    for (;;) {
      std::shared_ptr<Batch> batch;
      {
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [&] {
          return stop_ ||
                 (current_ != nullptr &&
                  current_->next.load(std::memory_order_relaxed) <
                      current_->n);
        });
        if (stop_) return;
        batch = current_;
      }
      RunTasks(*batch);
    }
  }

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::shared_ptr<Batch> current_;  ///< guarded by mu_
  bool stop_ = false;               ///< guarded by mu_
};

}  // namespace datalogo

#endif  // DATALOGO_CORE_THREAD_POOL_H_
