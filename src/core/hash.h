// Hash combinators used by tuples and relation indexes.
#ifndef DATALOGO_CORE_HASH_H_
#define DATALOGO_CORE_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>

namespace datalogo {

/// Mixes `value` into `seed` (boost::hash_combine-style, 64-bit constants).
inline void HashCombine(std::size_t& seed, std::size_t value) {
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

/// Hashes a contiguous range of integral ids.
template <typename It>
std::size_t HashRange(It first, It last) {
  std::size_t seed = 0xcbf29ce484222325ULL;
  for (It it = first; it != last; ++it) {
    HashCombine(seed, std::hash<uint64_t>{}(static_cast<uint64_t>(*it)));
  }
  return seed;
}

}  // namespace datalogo

#endif  // DATALOGO_CORE_HASH_H_
