#include "src/core/status.h"

namespace datalogo {

const char* CodeName(Code code) {
  switch (code) {
    case Code::kOk:
      return "OK";
    case Code::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case Code::kParseError:
      return "PARSE_ERROR";
    case Code::kNotFound:
      return "NOT_FOUND";
    case Code::kUnsupported:
      return "UNSUPPORTED";
    case Code::kDiverged:
      return "DIVERGED";
    case Code::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace datalogo
