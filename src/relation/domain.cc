#include "src/relation/domain.h"

#include "src/core/check.h"

namespace datalogo {

ConstId Domain::InternSymbol(const std::string& name) {
  auto it = symbol_index_.find(name);
  if (it != symbol_index_.end()) return it->second;
  ConstId id = static_cast<ConstId>(entries_.size());
  entries_.push_back(Entry{false, name, 0});
  symbol_index_.emplace(name, id);
  return id;
}

ConstId Domain::InternInt(int64_t value) {
  auto it = int_index_.find(value);
  if (it != int_index_.end()) return it->second;
  ConstId id = static_cast<ConstId>(entries_.size());
  entries_.push_back(Entry{true, "", value});
  int_index_.emplace(value, id);
  return id;
}

bool Domain::IsInt(ConstId id) const {
  DLO_CHECK(id < entries_.size());
  return entries_[id].is_int;
}

std::optional<int64_t> Domain::AsInt(ConstId id) const {
  DLO_CHECK(id < entries_.size());
  if (!entries_[id].is_int) return std::nullopt;
  return entries_[id].value;
}

std::string Domain::ToString(ConstId id) const {
  DLO_CHECK(id < entries_.size());
  const Entry& e = entries_[id];
  return e.is_int ? std::to_string(e.value) : e.symbol;
}

std::optional<ConstId> Domain::FindSymbol(const std::string& name) const {
  auto it = symbol_index_.find(name);
  if (it == symbol_index_.end()) return std::nullopt;
  return it->second;
}

std::vector<ConstId> Domain::AllIds() const {
  std::vector<ConstId> ids(entries_.size());
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<ConstId>(i);
  return ids;
}

}  // namespace datalogo
