// TSV import/export for K-relations.
//
// Token grammar (one tuple per line):
//   line    := '#' comment | WS* | token (WS+ token)* WS*
//   token   := 1*<any byte except space, tab, CR, LF>
//   WS      := space | tab | CR
// Tokens are whitespace-delimited, so a symbol containing whitespace
// cannot be represented; DumpTsv/DumpTsvChecked reject such symbols
// instead of emitting text that SplitLine would re-split into extra
// columns on reload. A token matching `-?[0-9]+` interns as the 64-bit
// integer it spells (out-of-range integer tokens are a load error, not an
// exception); every other token interns as a symbol. Lines that are empty
// or whose first byte is '#' are skipped, which is why a symbol may not
// begin with '#': it would round-trip into a comment. CR before LF is
// treated as whitespace, so CRLF files load like LF files.
//
// POPS relations carry the value in the last column; Boolean relations
// are key-only.
#ifndef DATALOGO_RELATION_IO_H_
#define DATALOGO_RELATION_IO_H_

#include <cctype>
#include <charconv>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/check.h"
#include "src/core/status.h"
#include "src/relation/relation.h"
#include "src/semiring/boolean.h"

namespace datalogo {
namespace io_internal {

inline bool LooksLikeInt(const std::string& s) {
  if (s.empty()) return false;
  std::size_t i = (s[0] == '-') ? 1 : 0;
  if (i == s.size()) return false;
  for (; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
  }
  return true;
}

/// Interns one key token: integer-looking tokens as integers, everything
/// else as symbols. Returns false — instead of letting std::stoll throw
/// std::out_of_range through the loaders — when the token spells an
/// integer that does not fit int64_t.
inline bool TryInternToken(const std::string& tok, Domain* dom,
                           ConstId* out) {
  if (LooksLikeInt(tok)) {
    int64_t v = 0;
    auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
    if (ec != std::errc() || p != tok.data() + tok.size()) return false;
    *out = dom->InternInt(v);
    return true;
  }
  *out = dom->InternSymbol(tok);
  return true;
}

inline std::vector<std::string> SplitLine(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

/// True iff `text` is re-readable as a single token of the grammar above
/// AND re-interns as the same symbol (not as an integer, a comment, or
/// nothing at all).
inline bool IsDumpableSymbol(const std::string& text) {
  if (text.empty() || text[0] == '#') return false;
  if (LooksLikeInt(text)) return false;
  for (char ch : text) {
    if (ch == ' ' || ch == '\t' || ch == '\r' || ch == '\n') return false;
  }
  return true;
}

}  // namespace io_internal

/// Loads a POPS relation from TSV text: k key columns then one value
/// column, parsed by `parse_value(text, &value) -> bool`. Lines that are
/// empty or start with '#' are skipped. Repeated tuples accumulate via ⊕.
template <Pops P, typename ParseFn>
Status LoadTsv(const std::string& text, Domain* dom, Relation<P>* rel,
               ParseFn&& parse_value) {
  std::istringstream is(text);
  std::string line;
  int lineno = 0;
  Tuple t;  // reused across lines; Merge copies it into the relation
  t.reserve(rel->arity());
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> toks = io_internal::SplitLine(line);
    if (toks.empty()) continue;
    if (static_cast<int>(toks.size()) != rel->arity() + 1) {
      return InvalidArgument("line " + std::to_string(lineno) +
                             ": expected " + std::to_string(rel->arity()) +
                             " keys + 1 value, got " +
                             std::to_string(toks.size()) + " columns");
    }
    t.clear();
    for (int i = 0; i < rel->arity(); ++i) {
      ConstId id = 0;
      if (!io_internal::TryInternToken(toks[i], dom, &id)) {
        return InvalidArgument("line " + std::to_string(lineno) +
                               ": integer key out of 64-bit range '" +
                               toks[i] + "'");
      }
      t.push_back(id);
    }
    typename P::Value v;
    if (!parse_value(toks.back(), &v)) {
      return InvalidArgument("line " + std::to_string(lineno) +
                             ": cannot parse value '" + toks.back() + "'");
    }
    rel->Merge(t, v);
  }
  return Status::Ok();
}

/// Loads a Boolean relation: every column is a key, the value is true.
inline Status LoadTsvBool(const std::string& text, Domain* dom,
                          Relation<BoolS>* rel) {
  std::istringstream is(text);
  std::string line;
  int lineno = 0;
  Tuple t;  // reused across lines; Set copies it into the relation
  t.reserve(rel->arity());
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> toks = io_internal::SplitLine(line);
    if (toks.empty()) continue;
    if (static_cast<int>(toks.size()) != rel->arity()) {
      return InvalidArgument("line " + std::to_string(lineno) +
                             ": expected " + std::to_string(rel->arity()) +
                             " key columns");
    }
    t.clear();
    for (const std::string& tok : toks) {
      ConstId id = 0;
      if (!io_internal::TryInternToken(tok, dom, &id)) {
        return InvalidArgument("line " + std::to_string(lineno) +
                               ": integer key out of 64-bit range '" + tok +
                               "'");
      }
      t.push_back(id);
    }
    rel->Set(t, true);
  }
  return Status::Ok();
}

/// Standard value parsers for the common carriers.
inline bool ParseDoubleValue(const std::string& s, double* out) {
  try {
    std::size_t pos = 0;
    *out = std::stod(s, &pos);
    return pos == s.size();
  } catch (...) {
    return false;
  }
}
inline bool ParseUintValue(const std::string& s, uint64_t* out) {
  if (!io_internal::LooksLikeInt(s) || s[0] == '-') return false;
  uint64_t v = 0;
  auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || p != s.data() + s.size()) return false;
  *out = v;
  return true;
}
inline bool ParseBoolValue(const std::string& s, bool* out) {
  if (s == "1" || s == "true") {
    *out = true;
    return true;
  }
  if (s == "0" || s == "false") {
    *out = false;
    return true;
  }
  return false;
}

/// Dumps a relation as sorted TSV (keys then value), reading cells
/// straight out of the columnar store in lexicographic row order. Fails
/// with InvalidArgument — instead of silently emitting text that LoadTsv
/// would re-split into the wrong columns — when a key renders as a
/// non-dumpable symbol (contains whitespace, is empty, starts with '#',
/// or spells an integer; see the token grammar above).
template <Pops P>
Status DumpTsvChecked(const Relation<P>& rel, const Domain& dom,
                      std::string* out) {
  std::ostringstream os;
  for (uint32_t row : rel.SortedLiveRows()) {
    for (int p = 0; p < rel.arity(); ++p) {
      ConstId id = rel.Cell(row, p);
      std::string text = dom.ToString(id);
      if (!dom.IsInt(id) && !io_internal::IsDumpableSymbol(text)) {
        return InvalidArgument(
            "symbol not representable as a TSV token: '" + text + "'");
      }
      if (p) os << "\t";
      os << text;
    }
    os << "\t" << P::ToString(rel.ValueAt(row)) << "\n";
  }
  *out = os.str();
  return Status::Ok();
}

/// DumpTsvChecked for callers that treat a non-dumpable symbol as a
/// programming error: fails the process loudly instead of corrupting the
/// round-trip. Use DumpTsvChecked to recover instead.
template <Pops P>
std::string DumpTsv(const Relation<P>& rel, const Domain& dom) {
  std::string out;
  Status s = DumpTsvChecked(rel, dom, &out);
  DLO_CHECK_MSG(s.ok(), "DumpTsv: symbol not representable as a TSV token");
  return out;
}

}  // namespace datalogo

#endif  // DATALOGO_RELATION_IO_H_
