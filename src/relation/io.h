// TSV import/export for K-relations: one tuple per line, tab- (or
// whitespace-) separated key columns, with the POPS value in the last
// column for POPS relations. Integer-looking keys intern as integers,
// everything else as symbols.
#ifndef DATALOGO_RELATION_IO_H_
#define DATALOGO_RELATION_IO_H_

#include <cctype>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/status.h"
#include "src/relation/relation.h"
#include "src/semiring/boolean.h"

namespace datalogo {
namespace io_internal {

inline bool LooksLikeInt(const std::string& s) {
  if (s.empty()) return false;
  std::size_t i = (s[0] == '-') ? 1 : 0;
  if (i == s.size()) return false;
  for (; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
  }
  return true;
}

inline ConstId InternToken(const std::string& tok, Domain* dom) {
  if (LooksLikeInt(tok)) return dom->InternInt(std::stoll(tok));
  return dom->InternSymbol(tok);
}

inline std::vector<std::string> SplitLine(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

}  // namespace io_internal

/// Loads a POPS relation from TSV text: k key columns then one value
/// column, parsed by `parse_value(text, &value) -> bool`. Lines that are
/// empty or start with '#' are skipped. Repeated tuples accumulate via ⊕.
template <Pops P, typename ParseFn>
Status LoadTsv(const std::string& text, Domain* dom, Relation<P>* rel,
               ParseFn&& parse_value) {
  std::istringstream is(text);
  std::string line;
  int lineno = 0;
  Tuple t;  // reused across lines; Merge copies it into the relation
  t.reserve(rel->arity());
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> toks = io_internal::SplitLine(line);
    if (toks.empty()) continue;
    if (static_cast<int>(toks.size()) != rel->arity() + 1) {
      return InvalidArgument("line " + std::to_string(lineno) +
                             ": expected " + std::to_string(rel->arity()) +
                             " keys + 1 value, got " +
                             std::to_string(toks.size()) + " columns");
    }
    t.clear();
    for (int i = 0; i < rel->arity(); ++i) {
      t.push_back(io_internal::InternToken(toks[i], dom));
    }
    typename P::Value v;
    if (!parse_value(toks.back(), &v)) {
      return InvalidArgument("line " + std::to_string(lineno) +
                             ": cannot parse value '" + toks.back() + "'");
    }
    rel->Merge(t, v);
  }
  return Status::Ok();
}

/// Loads a Boolean relation: every column is a key, the value is true.
inline Status LoadTsvBool(const std::string& text, Domain* dom,
                          Relation<BoolS>* rel) {
  std::istringstream is(text);
  std::string line;
  int lineno = 0;
  Tuple t;  // reused across lines; Set copies it into the relation
  t.reserve(rel->arity());
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> toks = io_internal::SplitLine(line);
    if (toks.empty()) continue;
    if (static_cast<int>(toks.size()) != rel->arity()) {
      return InvalidArgument("line " + std::to_string(lineno) +
                             ": expected " + std::to_string(rel->arity()) +
                             " key columns");
    }
    t.clear();
    for (const std::string& tok : toks) {
      t.push_back(io_internal::InternToken(tok, dom));
    }
    rel->Set(t, true);
  }
  return Status::Ok();
}

/// Standard value parsers for the common carriers.
inline bool ParseDoubleValue(const std::string& s, double* out) {
  try {
    std::size_t pos = 0;
    *out = std::stod(s, &pos);
    return pos == s.size();
  } catch (...) {
    return false;
  }
}
inline bool ParseUintValue(const std::string& s, uint64_t* out) {
  if (!io_internal::LooksLikeInt(s) || s[0] == '-') return false;
  *out = std::stoull(s);
  return true;
}
inline bool ParseBoolValue(const std::string& s, bool* out) {
  if (s == "1" || s == "true") {
    *out = true;
    return true;
  }
  if (s == "0" || s == "false") {
    *out = false;
    return true;
  }
  return false;
}

/// Dumps a relation as sorted TSV (keys then value), reading cells
/// straight out of the columnar store in lexicographic row order.
template <Pops P>
std::string DumpTsv(const Relation<P>& rel, const Domain& dom) {
  std::ostringstream os;
  for (uint32_t row : rel.SortedLiveRows()) {
    for (int p = 0; p < rel.arity(); ++p) {
      if (p) os << "\t";
      os << dom.ToString(rel.Cell(row, p));
    }
    os << "\t" << P::ToString(rel.ValueAt(row)) << "\n";
  }
  return os.str();
}

}  // namespace datalogo

#endif  // DATALOGO_RELATION_IO_H_
