// K-relations (Sec. 2.3): finite-support maps GA(R, D) → P. Only tuples
// with value ≠ ⊥ are stored — exactly the paper's notion of support, and
// the reason semi-naive evaluation pays off (Sec. 1.1 discussion of ⊖).
#ifndef DATALOGO_RELATION_RELATION_H_
#define DATALOGO_RELATION_RELATION_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <iterator>
#include <memory>
#include <sstream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/core/check.h"
#include "src/relation/domain.h"
#include "src/relation/tuple.h"
#include "src/semiring/traits.h"

namespace datalogo {

/// Process-unique id for one Relation object; never reused, so a cache
/// entry keyed by a dead relation's id can never match a live relation.
inline uint64_t NextRelationUid() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

/// A P-relation of fixed arity; absent tuples implicitly map to ⊥.
template <Pops P>
class Relation {
 public:
  using Value = typename P::Value;
  using Map = std::unordered_map<Tuple, Value, TupleHash>;

  explicit Relation(int arity = 0) : arity_(arity) {}

  // Every object carries a unique id plus a mutation counter so index
  // caches can tell "same content as when I indexed it" apart from "same
  // address by coincidence". Copies and moves are new objects: they get a
  // fresh uid instead of inheriting cached-index validity.
  Relation(const Relation& other) : arity_(other.arity_), data_(other.data_) {}
  Relation(Relation&& other) noexcept
      : arity_(other.arity_), data_(std::move(other.data_)) {
    other.data_.clear();
    ++other.version_;
  }
  Relation& operator=(const Relation& other) {
    if (this != &other) {
      arity_ = other.arity_;
      data_ = other.data_;
      ++version_;
    }
    return *this;
  }
  Relation& operator=(Relation&& other) noexcept {
    if (this != &other) {
      arity_ = other.arity_;
      data_ = std::move(other.data_);
      other.data_.clear();
      ++other.version_;
      ++version_;
    }
    return *this;
  }

  int arity() const { return arity_; }
  std::size_t support_size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  /// The value of a ground atom (⊥ when outside the support).
  Value Get(const Tuple& t) const {
    auto it = data_.find(t);
    return it == data_.end() ? P::Bottom() : it->second;
  }

  bool Contains(const Tuple& t) const { return data_.count(t) > 0; }

  /// Sets the value, maintaining the support invariant (⊥ values erase).
  void Set(const Tuple& t, Value v) {
    DLO_CHECK(static_cast<int>(t.size()) == arity_);
    if (P::Eq(v, P::Bottom())) {
      // Erasing an absent tuple leaves the content unchanged; bumping the
      // version would invalidate cached indexes for nothing.
      if (data_.erase(t) > 0) ++version_;
    } else {
      data_[t] = std::move(v);
      ++version_;
    }
  }

  /// r(t) ← r(t) ⊕ v.
  void Merge(const Tuple& t, const Value& v) { Set(t, P::Plus(Get(t), v)); }

  void Clear() {
    ++version_;
    data_.clear();
  }

  /// Identity of this object (stable for its lifetime, never reused).
  uint64_t uid() const { return uid_; }
  /// Bumped on every mutation; (uid, version) identifies one content state.
  uint64_t version() const { return version_; }

  const Map& tuples() const { return data_; }

  bool Equals(const Relation& other) const {
    if (arity_ != other.arity_ || data_.size() != other.data_.size()) {
      return false;
    }
    for (const auto& [t, v] : data_) {
      auto it = other.data_.find(t);
      if (it == other.data_.end() || !P::Eq(v, it->second)) return false;
    }
    return true;
  }

  /// Registers every constant in the support with `out`.
  void CollectConstants(std::vector<ConstId>& out) const {
    for (const auto& [t, v] : data_) {
      out.insert(out.end(), t.begin(), t.end());
    }
  }

  /// Deterministic rendering (sorted by tuple) for goldens and debugging.
  std::string ToString(const Domain& dom) const {
    std::vector<const typename Map::value_type*> rows;
    rows.reserve(data_.size());
    for (const auto& kv : data_) rows.push_back(&kv);
    std::sort(rows.begin(), rows.end(),
              [](const auto* a, const auto* b) { return a->first < b->first; });
    std::ostringstream os;
    for (const auto* kv : rows) {
      os << "(";
      for (std::size_t i = 0; i < kv->first.size(); ++i) {
        if (i) os << ",";
        os << dom.ToString(kv->first[i]);
      }
      os << ") -> " << P::ToString(kv->second) << "\n";
    }
    return os.str();
  }

 private:
  int arity_;
  Map data_;
  uint64_t uid_ = NextRelationUid();
  uint64_t version_ = 0;
};

/// An index over a relation keyed by a subset of argument positions;
/// built on demand by the engine (index nested-loop joins) and reused
/// across joining steps through IndexCache below.
template <Pops P>
class RelationIndex {
 public:
  /// One indexed support entry: a pointer into the relation's storage.
  using Entry = const std::pair<const Tuple, typename P::Value>*;
  using EntryList = std::vector<Entry>;

  /// Builds an index of `rel` on the given positions.
  RelationIndex(const Relation<P>& rel, std::vector<int> positions)
      : positions_(std::move(positions)) {
    Tuple key(positions_.size(), 0);
    for (const auto& kv : rel.tuples()) {
      for (std::size_t i = 0; i < positions_.size(); ++i) {
        key[i] = kv.first[positions_[i]];
      }
      index_[key].push_back(&kv);
    }
  }

  /// All support entries whose projection matches `key`.
  const EntryList& Lookup(const Tuple& key) const {
    static const EntryList kEmpty;
    auto it = index_.find(key);
    return it == index_.end() ? kEmpty : it->second;
  }

  const std::vector<int>& positions() const { return positions_; }

 private:
  std::vector<int> positions_;
  std::unordered_map<Tuple, EntryList, TupleHash> index_;
};

/// Memoizes RelationIndexes keyed by (relation identity, position set).
/// A cached index is reused only while the relation's version is unchanged
/// — i.e. the relation has not been mutated since the index was built — so
/// EDB indexes survive an entire fixpoint run and IDB indexes survive all
/// rule evaluations within one ICO application. An index holds pointers
/// into the relation's storage; the version guard ensures such pointers
/// are only ever followed while they are valid, and entries for mutated or
/// destroyed relations become unreachable (uids are never reused).
template <Pops P>
class IndexCache {
 public:
  /// Returns an index of `rel` on `positions`, building it if no current
  /// one is cached. The reference stays valid until `rel` is mutated, the
  /// cache is cleared, or MaybeEvict() runs — Get itself never evicts, so
  /// references obtained during one joining step cannot be invalidated by
  /// later lookups in that same step.
  const RelationIndex<P>& Get(const Relation<P>& rel,
                              const std::vector<int>& positions) {
    // Two-level lookup (uid, then a linear scan of the few position sets a
    // predicate is ever joined on) keeps cache hits allocation-free; the
    // positions vector is copied only when an index is first built.
    std::vector<Entry>& entries = cache_[rel.uid()];
    for (Entry& e : entries) {
      if (e.positions != positions) continue;
      if (e.version == rel.version()) {
        ++hits_;
        e.last_used = sweep_;
        return *e.index;
      }
      ++builds_;
      // Build before updating the entry: a throwing constructor must not
      // leave the stale index tagged with the fresh version.
      auto rebuilt = std::make_unique<RelationIndex<P>>(rel, positions);
      e.version = rel.version();
      e.index = std::move(rebuilt);
      e.last_used = sweep_;
      return *e.index;
    }
    ++builds_;
    // Growing `entries` may relocate other Entry objects, but never the
    // heap RelationIndexes that outstanding Get() references point to.
    entries.push_back(Entry{positions, rel.version(),
                            std::make_unique<RelationIndex<P>>(rel, positions),
                            sweep_});
    return *entries.back().index;
  }

  /// Eviction — call only when no Get() references are live (e.g. between
  /// fixpoint iterations, which also advances the "recently used" epoch).
  /// Callers that index short-lived relations (fresh IdbInstances every
  /// iteration) orphan their entries — each a fully built index the size
  /// of its relation — so everything idle for a full epoch is dropped;
  /// hot (EDB) indexes are looked up every epoch and survive.
  void MaybeEvict() {
    ++sweep_;
    for (auto it = cache_.begin(); it != cache_.end();) {
      std::erase_if(it->second, [this](const Entry& e) {
        return e.last_used + 1 < sweep_;
      });
      it = it->second.empty() ? cache_.erase(it) : std::next(it);
    }
  }

  void Clear() { cache_.clear(); }

  /// Number of indexes actually constructed through this cache.
  uint64_t builds() const { return builds_; }
  /// Number of lookups served without rebuilding.
  uint64_t hits() const { return hits_; }

 private:
  struct Entry {
    std::vector<int> positions;
    uint64_t version;
    std::unique_ptr<RelationIndex<P>> index;
    uint64_t last_used = 0;  ///< sweep epoch of the most recent lookup
  };

  std::unordered_map<uint64_t, std::vector<Entry>> cache_;
  uint64_t sweep_ = 0;
  uint64_t builds_ = 0;
  uint64_t hits_ = 0;
};

}  // namespace datalogo

#endif  // DATALOGO_RELATION_RELATION_H_
