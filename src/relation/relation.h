// K-relations (Sec. 2.3): finite-support maps GA(R, D) → P. Only tuples
// with value ≠ ⊥ are stored — exactly the paper's notion of support, and
// the reason semi-naive evaluation pays off (Sec. 1.1 discussion of ⊖).
#ifndef DATALOGO_RELATION_RELATION_H_
#define DATALOGO_RELATION_RELATION_H_

#include <algorithm>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/check.h"
#include "src/relation/domain.h"
#include "src/relation/tuple.h"
#include "src/semiring/traits.h"

namespace datalogo {

/// A P-relation of fixed arity; absent tuples implicitly map to ⊥.
template <Pops P>
class Relation {
 public:
  using Value = typename P::Value;
  using Map = std::unordered_map<Tuple, Value, TupleHash>;

  explicit Relation(int arity = 0) : arity_(arity) {}

  int arity() const { return arity_; }
  std::size_t support_size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  /// The value of a ground atom (⊥ when outside the support).
  Value Get(const Tuple& t) const {
    auto it = data_.find(t);
    return it == data_.end() ? P::Bottom() : it->second;
  }

  bool Contains(const Tuple& t) const { return data_.count(t) > 0; }

  /// Sets the value, maintaining the support invariant (⊥ values erase).
  void Set(const Tuple& t, Value v) {
    DLO_CHECK(static_cast<int>(t.size()) == arity_);
    if (P::Eq(v, P::Bottom())) {
      data_.erase(t);
    } else {
      data_[t] = std::move(v);
    }
  }

  /// r(t) ← r(t) ⊕ v.
  void Merge(const Tuple& t, const Value& v) { Set(t, P::Plus(Get(t), v)); }

  void Clear() { data_.clear(); }

  const Map& tuples() const { return data_; }

  bool Equals(const Relation& other) const {
    if (arity_ != other.arity_ || data_.size() != other.data_.size()) {
      return false;
    }
    for (const auto& [t, v] : data_) {
      auto it = other.data_.find(t);
      if (it == other.data_.end() || !P::Eq(v, it->second)) return false;
    }
    return true;
  }

  /// Registers every constant in the support with `out`.
  void CollectConstants(std::vector<ConstId>& out) const {
    for (const auto& [t, v] : data_) {
      out.insert(out.end(), t.begin(), t.end());
    }
  }

  /// Deterministic rendering (sorted by tuple) for goldens and debugging.
  std::string ToString(const Domain& dom) const {
    std::vector<const typename Map::value_type*> rows;
    rows.reserve(data_.size());
    for (const auto& kv : data_) rows.push_back(&kv);
    std::sort(rows.begin(), rows.end(),
              [](const auto* a, const auto* b) { return a->first < b->first; });
    std::ostringstream os;
    for (const auto* kv : rows) {
      os << "(";
      for (std::size_t i = 0; i < kv->first.size(); ++i) {
        if (i) os << ",";
        os << dom.ToString(kv->first[i]);
      }
      os << ") -> " << P::ToString(kv->second) << "\n";
    }
    return os.str();
  }

 private:
  int arity_;
  Map data_;
};

/// An index over a relation keyed by a subset of argument positions;
/// rebuilt per joining step by the engine (index nested-loop joins).
template <Pops P>
class RelationIndex {
 public:
  /// Builds an index of `rel` on the given positions.
  RelationIndex(const Relation<P>& rel, std::vector<int> positions)
      : positions_(std::move(positions)) {
    for (const auto& kv : rel.tuples()) {
      Tuple key;
      key.reserve(positions_.size());
      for (int p : positions_) key.push_back(kv.first[p]);
      index_[key].push_back(&kv);
    }
  }

  /// All support entries whose projection matches `key`.
  const std::vector<const std::pair<const Tuple, typename P::Value>*>& Lookup(
      const Tuple& key) const {
    static const std::vector<
        const std::pair<const Tuple, typename P::Value>*>
        kEmpty;
    auto it = index_.find(key);
    return it == index_.end() ? kEmpty : it->second;
  }

  const std::vector<int>& positions() const { return positions_; }

 private:
  std::vector<int> positions_;
  std::unordered_map<Tuple,
                     std::vector<const std::pair<const Tuple,
                                                 typename P::Value>*>,
                     TupleHash>
      index_;
};

}  // namespace datalogo

#endif  // DATALOGO_RELATION_RELATION_H_
