// K-relations (Sec. 2.3): finite-support maps GA(R, D) → P, stored
// column-major. Only tuples with value ≠ ⊥ are in the support — exactly
// the paper's notion, and the reason semi-naive evaluation pays off
// (Sec. 1.1 discussion of ⊖).
//
// Storage layout (struct-of-arrays): one contiguous ConstId column per
// argument position plus a parallel value column, addressed by row id.
// Point lookups (Get/Set/Merge) go through an open-addressing row-id hash
// table probed with a lightweight key view — no Tuple is materialized on
// the probe path. Erasing a tuple tombstones its row (the row id and its
// hash slot stay put, so a later Set of the same key revives the row in
// place); Compact() squeezes tombstones out between fixpoint iterations.
// Index construction and key projection become sequential column scans.
#ifndef DATALOGO_RELATION_RELATION_H_
#define DATALOGO_RELATION_RELATION_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/core/check.h"
#include "src/core/hash.h"
#include "src/core/simd.h"
#include "src/relation/domain.h"
#include "src/relation/tuple.h"
#include "src/semiring/traits.h"

namespace datalogo {

/// Process-unique id for one Relation object; never reused, so a cache
/// entry keyed by a dead relation's id can never match a live relation.
inline uint64_t NextRelationUid() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

/// Sentinel row id: "no such row" (also the empty-slot marker of the
/// row-id hash table).
inline constexpr uint32_t kNoRow = 0xFFFFFFFFu;

/// A list of row ids into one relation's columnar storage — the currency
/// of RelationIndex lookups and the engine's join programs.
using RowIdList = std::vector<uint32_t>;

/// Index-tier selection policy (per (relation, key-spec); see
/// RelationIndex). kAuto picks per key column: direct when the live key
/// range is dense enough, hash otherwise. kDirect forces the direct tier
/// whenever the key span fits the hard cap; kHash forces hashing
/// everywhere — the pre-tier behaviour, kept as the reference.
enum class IndexKind : uint8_t { kHash = 0, kDirect = 1, kAuto = 2 };

/// Knobs threaded from EngineOptions into every index build.
struct IndexConfig {
  IndexKind kind = IndexKind::kAuto;
  ScanKernel scan = DefaultScanKernel();
};

/// Non-owning view of one row's key columns in a columnar store. Usable
/// as a probe/upsert key against any Relation (of any value space)
/// without materializing a Tuple: it reads straight out of the source
/// relation's columns.
class RowView {
 public:
  RowView(const std::vector<std::vector<ConstId>>* cols, uint32_t row)
      : cols_(cols), row_(row) {}

  std::size_t size() const { return cols_->size(); }
  ConstId operator[](std::size_t pos) const { return (*cols_)[pos][row_]; }

 private:
  const std::vector<std::vector<ConstId>>* cols_;
  uint32_t row_;
};

/// A P-relation of fixed arity; absent tuples implicitly map to ⊥.
template <Pops P>
class Relation {
 public:
  using Value = typename P::Value;

  explicit Relation(int arity = 0) : arity_(arity), cols_(arity) {}

  // Every object carries a unique id plus a mutation counter so index
  // caches can tell "same content as when I indexed it" apart from "same
  // address by coincidence". Copies and moves are new objects: they get a
  // fresh uid instead of inheriting cached-index validity.
  Relation(const Relation& other)
      : arity_(other.arity_),
        cols_(other.cols_),
        values_(other.values_),
        live_flags_(other.live_flags_),
        live_(other.live_),
        slots_(other.slots_),
        mask_(other.mask_) {}
  Relation(Relation&& other) noexcept
      : arity_(other.arity_),
        cols_(std::move(other.cols_)),
        values_(std::move(other.values_)),
        live_flags_(std::move(other.live_flags_)),
        live_(other.live_),
        slots_(std::move(other.slots_)),
        mask_(other.mask_) {
    other.ResetToEmpty();
    other.BumpHard();
  }
  Relation& operator=(const Relation& other) {
    if (this != &other) {
      arity_ = other.arity_;
      cols_ = other.cols_;
      values_ = other.values_;
      live_flags_ = other.live_flags_;
      live_ = other.live_;
      slots_ = other.slots_;
      mask_ = other.mask_;
      BumpHard();  // wholesale replacement: row ids mean something new
    }
    return *this;
  }
  Relation& operator=(Relation&& other) noexcept {
    if (this != &other) {
      arity_ = other.arity_;
      cols_ = std::move(other.cols_);
      values_ = std::move(other.values_);
      live_flags_ = std::move(other.live_flags_);
      live_ = other.live_;
      slots_ = std::move(other.slots_);
      mask_ = other.mask_;
      other.ResetToEmpty();
      other.BumpHard();
      BumpHard();
    }
    return *this;
  }

  int arity() const { return arity_; }
  std::size_t support_size() const { return live_; }
  bool empty() const { return live_ == 0; }

  // ------------------------------------------------------ row accessors
  /// Total rows in the store, tombstoned ones included. Valid row ids are
  /// [0, num_rows()); only rows with RowLive() belong to the support.
  uint32_t num_rows() const { return static_cast<uint32_t>(values_.size()); }
  bool RowLive(uint32_t row) const { return live_flags_[row] != 0; }
  ConstId Cell(uint32_t row, int pos) const { return cols_[pos][row]; }
  const Value& ValueAt(uint32_t row) const { return values_[row].v; }
  /// A key view of `row` — valid until this relation's columns mutate.
  RowView View(uint32_t row) const { return RowView(&cols_, row); }
  /// One whole key column — the sequential-scan surface for index builds.
  const std::vector<ConstId>& column(int pos) const { return cols_[pos]; }
  /// Raw span of one key column, indexable by row id — the gather
  /// surface of the batched join kernel (simd::GatherU32 decodes entry
  /// batches straight from it). Valid until the columns mutate.
  const ConstId* column_data(int pos) const { return cols_[pos].data(); }
  /// Raw span of the value column, indexable by row id — the gather
  /// surface of the batched VALUE kernel (semiring/simd_traits.h), the
  /// value-plane twin of column_data(). Only instantiable for trivially
  /// copyable carriers whose ValueCell wrapper is layout-compatible with
  /// the bare Value (asserted below — the wrapper exists solely to defeat
  /// vector<bool>, so a one-member standard-layout struct adds no
  /// padding). Valid until the value column mutates.
  const Value* value_data() const {
    static_assert(std::is_trivially_copyable_v<Value>,
                  "value_data() requires a raw-gatherable carrier");
    static_assert(sizeof(ValueCell) == sizeof(Value) &&
                      alignof(ValueCell) == alignof(Value),
                  "ValueCell must be layout-compatible with Value");
    return reinterpret_cast<const Value*>(values_.data());
  }
  /// Raw live-flag bytes (parallel to the columns) — the SIMD-scan
  /// surface for live-row compaction during index builds.
  const uint8_t* live_data() const { return live_flags_.data(); }
  std::size_t tombstones() const { return values_.size() - live_; }

  /// Calls fn(row_id) for every live (support) row, in row order.
  template <typename Fn>
  void ForEachRow(Fn&& fn) const {
    const uint32_t n = num_rows();
    for (uint32_t r = 0; r < n; ++r) {
      if (live_flags_[r]) fn(r);
    }
  }

  /// Live row ids in lexicographic tuple order (deterministic renderings).
  std::vector<uint32_t> SortedLiveRows() const {
    std::vector<uint32_t> rows;
    rows.reserve(live_);
    ForEachRow([&](uint32_t r) { rows.push_back(r); });
    std::sort(rows.begin(), rows.end(), [this](uint32_t a, uint32_t b) {
      for (int p = 0; p < arity_; ++p) {
        if (cols_[p][a] != cols_[p][b]) return cols_[p][a] < cols_[p][b];
      }
      return false;
    });
    return rows;
  }

  // ----------------------------------------------------- point operations
  /// The value of a ground atom (⊥ when outside the support).
  Value Get(const Tuple& t) const { return GetKey(t); }
  /// Same, keyed by another relation's row — no Tuple materialized.
  Value Get(const RowView& key) const { return GetKey(key); }

  bool Contains(const Tuple& t) const {
    if (static_cast<int>(t.size()) != arity_) return false;
    uint32_t r = FindRow(t);
    return r != kNoRow && live_flags_[r] != 0;
  }

  /// Sets the value, maintaining the support invariant (⊥ tombstones).
  void Set(const Tuple& t, Value v) { SetKey(t, std::move(v)); }
  void Set(const RowView& key, Value v) { SetKey(key, std::move(v)); }

  /// r(t) ← r(t) ⊕ v — a single-probe upsert (one hash walk, not the
  /// Get-then-Set double lookup of the row-major store).
  void Merge(const Tuple& t, const Value& v) { MergeKey(t, v); }
  void Merge(const RowView& key, const Value& v) { MergeKey(key, v); }

  /// Removes a tuple from the support (r(t) ← ⊥); returns true iff the
  /// tuple was live. Equivalent to Set(t, ⊥): membership shrinks, which
  /// appending cannot express, so a successful Erase is a HARD mutation —
  /// cached indexes rebuild on next use, not refresh. Bulk deletions
  /// (Engine::Update's prune/apply phases) therefore batch their Erases
  /// between evaluations and follow them with one Compact, paying one
  /// rebuild per touched relation instead of one per tuple.
  bool Erase(const Tuple& t) { return EraseKey(t); }
  bool Erase(const RowView& key) { return EraseKey(key); }

  /// The key hash Merge/Get probe with, exposed so batched callers can
  /// hash a whole head batch ahead of the probes. Any Key exposing
  /// size() and operator[] over ConstIds works; the same value sequence
  /// hashes identically regardless of form.
  template <typename Key>
  static std::size_t HashOf(const Key& key) {
    return KeyHash(key);
  }
  /// Merge with the key's hash precomputed by HashOf(key) — the batched
  /// head-emission upsert. Behaviour (including version accounting) is
  /// identical to Merge(); only the hash computation moves out of the
  /// probe. `hash` MUST equal HashOf(key).
  template <typename Key>
  void MergeHashed(const Key& key, std::size_t hash, const Value& v) {
    MergeKeyHashed(key, hash, v);
  }

  /// r ← r ⊕ other, consuming `other` (left empty but structurally valid):
  /// the reduce primitive for the engine's parallel per-task partials.
  /// When this relation holds no rows at all the partial's storage is
  /// adopted wholesale — one move, with the uid (and therefore cached-
  /// index identity) of *this preserved. Otherwise every live row of
  /// `other` is upserted in row order, which is exactly the Merge-call
  /// sequence a sequential evaluation of the same contributions would
  /// have issued — the foundation of the parallel step's determinism.
  void MergeFrom(Relation&& other) {
    DLO_CHECK(arity_ == other.arity_);
    if (this == &other || other.live_ == 0) return;
    if (values_.empty()) {
      *this = std::move(other);  // keeps this->uid_, bumps both versions
      return;
    }
    const uint32_t n = other.num_rows();
    for (uint32_t r = 0; r < n; ++r) {
      if (!other.live_flags_[r]) continue;
      MergeKey(other.View(r), other.values_[r].v);
    }
    other.Clear();
  }

  /// Empties the relation but keeps column/slot capacity, so a Clear +
  /// refill cycle (persistent delta relations) does not reallocate.
  void Clear() {
    ++version_;
    clear_version_ = version_;
    for (auto& col : cols_) col.clear();
    values_.clear();
    live_flags_.clear();
    live_ = 0;
    std::fill(slots_.begin(), slots_.end(), kNoRow);
  }

  /// Squeezes tombstoned rows out of the columns and rebuilds the row-id
  /// table. Row ids change, so the version is bumped (cached indexes over
  /// the old ids must rebuild); with no tombstones this is a no-op that
  /// leaves the version — and therefore cached indexes — untouched.
  void Compact() {
    if (live_ == values_.size()) return;
    for (int p = 0; p < arity_; ++p) {
      std::vector<ConstId>& col = cols_[p];
      uint32_t w = 0;
      for (uint32_t r = 0; r < num_rows(); ++r) {
        if (live_flags_[r]) col[w++] = col[r];
      }
      col.resize(w);
    }
    uint32_t w = 0;
    for (uint32_t r = 0; r < num_rows(); ++r) {
      if (!live_flags_[r]) continue;
      if (w != r) values_[w].v = std::move(values_[r].v);
      ++w;
    }
    values_.resize(w);
    live_flags_.assign(w, 1);
    live_ = w;
    BumpHard();  // surviving rows were renumbered
    Rehash(SlotCountFor(w));
  }

  /// Identity of this object (stable for its lifetime, never reused).
  uint64_t uid() const { return uid_; }
  /// Bumped on every mutation; (uid, version) identifies one content state.
  uint64_t version() const { return version_; }
  /// Version of the last *hard* discontinuity — any mutation after which
  /// previously handed-out row ids are renumbered, reordered, or revived
  /// (tombstone, revival, Compact, copy/move assignment). Everything in
  /// between is appends of fresh live rows and value overwrites of live
  /// rows, so an index built at version v with hard_version() <= v can be
  /// refreshed by appending rows added since v instead of rebuilding.
  uint64_t hard_version() const { return hard_version_; }
  /// Version of the last Clear(). A Clear between an index's version and
  /// now means "reset the entry lists, then re-append from row 0" — still
  /// no re-hash of retained structure, and no allocation churn.
  uint64_t clear_version() const { return clear_version_; }

  bool Equals(const Relation& other) const {
    if (arity_ != other.arity_ || live_ != other.live_) return false;
    const uint32_t n = num_rows();
    for (uint32_t r = 0; r < n; ++r) {
      if (!live_flags_[r]) continue;
      uint32_t o = other.FindRow(View(r));
      if (o == kNoRow || !other.live_flags_[o] ||
          !P::Eq(values_[r].v, other.values_[o].v)) {
        return false;
      }
    }
    return true;
  }

  /// Registers every constant in the support with `out` — one sequential
  /// scan per column.
  void CollectConstants(std::vector<ConstId>& out) const {
    const uint32_t n = num_rows();
    for (int p = 0; p < arity_; ++p) {
      const std::vector<ConstId>& col = cols_[p];
      for (uint32_t r = 0; r < n; ++r) {
        if (live_flags_[r]) out.push_back(col[r]);
      }
    }
  }

  /// Deterministic rendering (sorted by tuple) for goldens and debugging.
  std::string ToString(const Domain& dom) const {
    std::ostringstream os;
    for (uint32_t r : SortedLiveRows()) {
      os << "(";
      for (int p = 0; p < arity_; ++p) {
        if (p) os << ",";
        os << dom.ToString(cols_[p][r]);
      }
      os << ") -> " << P::ToString(values_[r].v) << "\n";
    }
    return os.str();
  }

 private:
  /// Hash of a key (Tuple or RowView) — the same value sequence hashes
  /// identically regardless of which form it arrives in. The splitmix64
  /// finalizer matters: the table is masked to a power of two and probed
  /// linearly, so weak low-bit dispersion (dense interned ids are highly
  /// structured) would cluster catastrophically.
  template <typename Key>
  static std::size_t KeyHash(const Key& key) {
    std::size_t h = 0xcbf29ce484222325ULL;
    const std::size_t n = key.size();
    for (std::size_t i = 0; i < n; ++i) {
      HashCombine(h, static_cast<std::size_t>(key[i]));
    }
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebULL;
    h ^= h >> 31;
    return h;
  }

  template <typename Key>
  bool RowMatchesKey(uint32_t row, const Key& key) const {
    for (int p = 0; p < arity_; ++p) {
      if (cols_[p][row] != key[static_cast<std::size_t>(p)]) return false;
    }
    return true;
  }

  /// Linear probe: the slot holding the key's row, or the empty slot
  /// where it would be inserted. Requires a non-empty table.
  template <typename Key>
  std::size_t Probe(const Key& key) const {
    return ProbeHashed(key, KeyHash(key));
  }

  /// Probe with the hash already computed (hash == KeyHash(key)); the
  /// hash is independent of table size, so callers may compute it before
  /// ReserveOneRow() grows the table.
  template <typename Key>
  std::size_t ProbeHashed(const Key& key, std::size_t hash) const {
    std::size_t s = hash & mask_;
    for (;;) {
      uint32_t r = slots_[s];
      if (r == kNoRow || RowMatchesKey(r, key)) return s;
      s = (s + 1) & mask_;
    }
  }

  /// Row id (live or tombstoned) of `key`, or kNoRow. At most one row per
  /// distinct key ever exists — erasure tombstones the row in place.
  template <typename Key>
  uint32_t FindRow(const Key& key) const {
    if (slots_.empty()) return kNoRow;
    return slots_[Probe(key)];
  }

  static std::size_t SlotCountFor(std::size_t rows) {
    std::size_t n = 16;
    while (rows * 4 >= n * 3) n <<= 1;  // keep load factor under 3/4
    return n;
  }

  void Rehash(std::size_t n_slots) {
    slots_.assign(n_slots, kNoRow);
    mask_ = n_slots - 1;
    for (uint32_t r = 0; r < num_rows(); ++r) {
      std::size_t s = KeyHash(View(r)) & mask_;
      while (slots_[s] != kNoRow) s = (s + 1) & mask_;
      slots_[s] = r;
    }
  }

  /// Grows the slot table ahead of a potential one-row append, so a slot
  /// index obtained from Probe() stays valid through the insertion.
  void ReserveOneRow() {
    if (slots_.empty()) {
      Rehash(SlotCountFor(values_.size() + 1));
    } else if ((values_.size() + 1) * 4 >= slots_.size() * 3) {
      Rehash(slots_.size() * 2);
    }
  }

  /// Appends a fresh live row for `key` into the empty slot `slot`.
  /// Reading key[p] before growing column p keeps self-referential views
  /// (key aliasing this relation's own columns) safe.
  template <typename Key>
  void AppendRow(std::size_t slot, const Key& key, Value v) {
    const uint32_t row = num_rows();
    for (int p = 0; p < arity_; ++p) {
      ConstId c = key[static_cast<std::size_t>(p)];
      cols_[p].push_back(c);
    }
    values_.push_back(ValueCell{std::move(v)});
    live_flags_.push_back(1);
    slots_[slot] = row;
  }

  template <typename Key>
  Value GetKey(const Key& key) const {
    if (static_cast<int>(key.size()) != arity_) return P::Bottom();
    uint32_t r = FindRow(key);
    return (r == kNoRow || !live_flags_[r]) ? P::Bottom() : values_[r].v;
  }

  template <typename Key>
  void SetKey(const Key& key, Value v) {
    DLO_CHECK(static_cast<int>(key.size()) == arity_);
    if (P::Eq(v, P::Bottom())) {
      // Erasing an absent tuple leaves the content unchanged; bumping the
      // version would invalidate cached indexes for nothing.
      uint32_t r = FindRow(key);
      if (r != kNoRow && live_flags_[r]) {
        live_flags_[r] = 0;
        --live_;
        BumpHard();  // membership shrank: appended-row refresh can't see it
      }
      return;
    }
    ReserveOneRow();
    std::size_t slot = Probe(key);
    uint32_t r = slots_[slot];
    if (r == kNoRow) {
      AppendRow(slot, key, std::move(v));
      ++live_;
      ++version_;
    } else if (!live_flags_[r]) {
      // Revive the tombstoned row in place. Hard: the row id re-enters
      // the support out of row order, which appending cannot express.
      values_[r].v = std::move(v);
      live_flags_[r] = 1;
      ++live_;
      BumpHard();
    } else {
      values_[r].v = std::move(v);  // value-only overwrite: soft
      ++version_;
    }
  }

  template <typename Key>
  bool EraseKey(const Key& key) {
    if (static_cast<int>(key.size()) != arity_) return false;
    uint32_t r = FindRow(key);
    if (r == kNoRow || !live_flags_[r]) return false;
    live_flags_[r] = 0;
    --live_;
    BumpHard();  // membership shrank: appended-row refresh can't see it
    return true;
  }

  template <typename Key>
  void MergeKey(const Key& key, const Value& v) {
    MergeKeyHashed(key, KeyHash(key), v);
  }

  template <typename Key>
  void MergeKeyHashed(const Key& key, std::size_t hash, const Value& v) {
    DLO_CHECK(static_cast<int>(key.size()) == arity_);
    ReserveOneRow();
    std::size_t slot = ProbeHashed(key, hash);
    uint32_t r = slots_[slot];
    if (r != kNoRow && live_flags_[r]) {
      Value nv = P::Plus(values_[r].v, v);
      if (P::Eq(nv, P::Bottom())) {
        live_flags_[r] = 0;
        --live_;
        BumpHard();  // ⊕ annihilated the row: membership shrank
      } else {
        values_[r].v = std::move(nv);
        ++version_;
      }
      return;
    }
    Value nv = P::Plus(P::Bottom(), v);
    if (P::Eq(nv, P::Bottom())) return;  // ⊥ ⊕ v = ⊥: nothing to store
    if (r != kNoRow) {
      values_[r].v = std::move(nv);  // revival: hard (see SetKey)
      live_flags_[r] = 1;
      ++live_;
      BumpHard();
    } else {
      AppendRow(slot, key, std::move(nv));
      ++live_;
      ++version_;
    }
  }

  /// Bumps the version and marks it a hard discontinuity (see
  /// hard_version()): cached indexes must rebuild, not refresh.
  void BumpHard() {
    ++version_;
    hard_version_ = version_;
  }

  /// Leaves a moved-from object empty but structurally valid (arity and
  /// uid retained, columns re-sized to arity).
  void ResetToEmpty() {
    cols_.assign(static_cast<std::size_t>(arity_), {});
    values_.clear();
    live_flags_.clear();
    live_ = 0;
    slots_.clear();
    mask_ = 0;
  }

  /// One value-column element. The wrapper defeats the std::vector<bool>
  /// bit-packing specialization: ValueAt must hand out stable
  /// `const Value&` references into the column (the join kernel keeps
  /// them across bind/check ops), which a packed proxy cannot provide.
  struct ValueCell {
    Value v;
  };

  int arity_;
  std::vector<std::vector<ConstId>> cols_;  ///< one column per position
  std::vector<ValueCell> values_;           ///< parallel value column
  std::vector<uint8_t> live_flags_;         ///< 0 = tombstoned row
  std::size_t live_ = 0;                    ///< support size
  RowIdList slots_;     ///< open-addressing row-id table (kNoRow = empty)
  std::size_t mask_ = 0;
  uint64_t uid_ = NextRelationUid();
  uint64_t version_ = 0;
  uint64_t hard_version_ = 0;   ///< version of the last hard discontinuity
  uint64_t clear_version_ = 0;  ///< version of the last Clear()
};

/// How one RelationIndex actually serves lookups. Tier choice is a pure
/// function of (key positions, IndexConfig, live key-column min/max and
/// support size), so the same relation state always gets the same tier —
/// a prerequisite for the engine's cross-configuration determinism pins.
enum class IndexRepr : uint8_t {
  kHashMap,      ///< Tuple-keyed unordered_map — the general tier
  kDirectArray,  ///< single key column, dense ids: offset-indexed buckets
  kAllRows,      ///< empty key: one list of all live rows
};

/// Span cap for the direct tier: above this, bucket storage (one vector
/// header per id in [min, max]) stops being worth skipping the hash.
/// Applies even under IndexKind::kDirect.
inline constexpr uint64_t kDirectSpanCap = uint64_t{1} << 20;

/// Direct-build strategy bound: tombstone-free columns whose span is at
/// most this are built by one vectorized FilterEqRows pass per key
/// instead of a scalar scatter. Kernel-independent on purpose, so both
/// scan kernels build byte-identical structures by the same plan.
inline constexpr uint64_t kFilterBuildSpanCap = 8;

/// An index over a relation keyed by a subset of argument positions;
/// built on demand by the engine (index nested-loop joins) and reused
/// across joining steps through IndexCache below. Entries are row ids
/// into the relation's columnar store, in ascending row order whatever
/// the tier — Lookup results are bit-identical across representations.
///
/// Tiers: multi-column keys always hash. Single-column keys use the
/// direct tier when the live ids are dense (kAuto: span <= 4*live + 256,
/// always under kDirectSpanCap) — Lookup is then one subtraction and a
/// bounds check, with no hashing and no key-Tuple walk. Empty keys (full
/// scans) keep the single live-row list directly. IndexKind::kHash
/// forces the general tier everywhere.
template <Pops P>
class RelationIndex {
 public:
  using EntryList = RowIdList;

  /// Builds an index of `rel` on the given positions.
  explicit RelationIndex(const Relation<P>& rel, std::vector<int> positions,
                         IndexConfig cfg = {})
      : rel_(&rel), positions_(std::move(positions)), cfg_(cfg) {
    ChooseRepr();
    if (repr_ == IndexRepr::kDirectArray) {
      buckets_.assign(static_cast<std::size_t>(span_), EntryList{});
    }
    bool ok = AppendRange(0, rel.num_rows());
    DLO_CHECK(ok);  // a fresh build chose its range from the same data
  }

  /// All row ids whose projection matches `key`, in row order.
  const EntryList& Lookup(const Tuple& key) const {
    static const EntryList kEmpty;
    switch (repr_) {
      case IndexRepr::kAllRows:
        return all_;
      case IndexRepr::kDirectArray: {
        // Unsigned wrap makes one compare cover both `key < base` and
        // `key >= base + span`.
        const uint32_t off = static_cast<uint32_t>(key[0]) - base_;
        return off < buckets_.size() ? buckets_[off] : kEmpty;
      }
      case IndexRepr::kHashMap:
        break;
    }
    auto it = index_.find(key);
    return it == index_.end() ? kEmpty : it->second;
  }

  /// The relation the row ids point into. Only valid while the index is —
  /// i.e. while the relation's version is unchanged (IndexCache's guard).
  const Relation<P>& relation() const { return *rel_; }

  const std::vector<int>& positions() const { return positions_; }

  IndexRepr repr() const { return repr_; }
  /// True when Lookup hashes a key Tuple (the probe-counter split).
  bool is_hash() const { return repr_ == IndexRepr::kHashMap; }

  /// Rows this index has incorporated (== the relation's num_rows() as of
  /// the version it is valid for).
  uint32_t indexed_rows() const { return indexed_rows_; }
  /// Rows examined by this object's build/refresh column scans (including
  /// the dense-detection min/max pass) — the "did a cache hit really skip
  /// the scan" accounting surface.
  uint64_t rows_scanned() const { return rows_scanned_; }

  // ---------------------------------------------------- incremental refresh
  // IndexCache-only surface. Both calls require that every row in
  // [indexed_rows_, rel.num_rows()) is live and in its final position —
  // guaranteed by the caller's hard_version() check (appends of fresh
  // rows and value overwrites are the only soft mutations).

  /// Appends the rows added since the last build/refresh. Returns false —
  /// leaving the index unusable — iff a new key falls outside the direct
  /// tier's bucket range; the caller rebuilds (and re-picks the tier).
  bool AppendNewRows() { return AppendRange(indexed_rows_, rel_->num_rows()); }

  /// Refresh after a Clear + refill cycle: empties every entry list
  /// (keeping their allocations and, for the hash tier, the map nodes)
  /// and re-appends from row 0. Same false-means-rebuild contract.
  bool ResetAndReappend() {
    all_.clear();
    for (EntryList& b : buckets_) b.clear();
    for (auto& [key, list] : index_) list.clear();
    indexed_rows_ = 0;
    return AppendRange(0, rel_->num_rows());
  }

 private:
  /// Picks the representation (and, for the direct tier, base/span) from
  /// the relation's current content.
  void ChooseRepr() {
    if (positions_.size() != 1) {
      repr_ = (positions_.empty() && cfg_.kind != IndexKind::kHash)
                  ? IndexRepr::kAllRows
                  : IndexRepr::kHashMap;
      return;
    }
    if (cfg_.kind == IndexKind::kHash) {
      repr_ = IndexRepr::kHashMap;
      return;
    }
    const std::size_t live = rel_->support_size();
    if (live == 0) {  // trivially dense: zero buckets, every lookup misses
      repr_ = IndexRepr::kDirectArray;
      base_ = 0;
      span_ = 0;
      return;
    }
    const std::vector<ConstId>& col = rel_->column(positions_[0]);
    uint32_t lo = 0, hi = 0;
    if (rel_->tombstones() == 0) {
      simd::MinMaxU32(col.data(), rel_->num_rows(), &lo, &hi, cfg_.scan);
    } else {
      bool first = true;
      for (uint32_t r = 0; r < rel_->num_rows(); ++r) {
        if (!rel_->RowLive(r)) continue;
        if (first || col[r] < lo) lo = col[r];
        if (first || col[r] > hi) hi = col[r];
        first = false;
      }
    }
    rows_scanned_ += rel_->num_rows();  // the min/max detection pass
    const uint64_t span = static_cast<uint64_t>(hi) - lo + 1;
    const bool dense =
        cfg_.kind == IndexKind::kDirect ||
        span <= 4 * static_cast<uint64_t>(live) + 256;
    if (span <= kDirectSpanCap && dense) {
      repr_ = IndexRepr::kDirectArray;
      base_ = lo;
      span_ = span;
    } else {
      repr_ = IndexRepr::kHashMap;
    }
  }

  /// Scans rows [from, to) into the structure (skipping dead rows only
  /// when a full build may see them; refresh ranges are all-live).
  bool AppendRange(uint32_t from, uint32_t to) {
    const bool may_have_dead = from == 0 && rel_->tombstones() != 0;
    switch (repr_) {
      case IndexRepr::kAllRows:
        // The entry list IS the live-row compaction — one SIMD pass.
        if (from == 0) {
          simd::CollectLiveRows(rel_->live_data(), to, cfg_.scan, &all_);
        } else {
          for (uint32_t r = from; r < to; ++r) all_.push_back(r);
        }
        break;
      case IndexRepr::kDirectArray: {
        const std::vector<ConstId>& col = rel_->column(positions_[0]);
        // Range check first: a failed append must not leave the buckets
        // half-updated (the caller keeps the object on failure paths
        // until it replaces it).
        for (uint32_t r = from; r < to; ++r) {
          if (may_have_dead && !rel_->RowLive(r)) continue;
          if (static_cast<uint32_t>(col[r]) - base_ >= span_) return false;
        }
        if (from == 0 && !may_have_dead && span_ != 0 &&
            span_ <= kFilterBuildSpanCap) {
          // Small-span full build: one vectorized equality pass per key
          // fills each bucket in ascending row order.
          for (uint64_t k = 0; k < span_; ++k) {
            FilterScans(to);
            simd::FilterEqRows(col.data(), to,
                               base_ + static_cast<uint32_t>(k), cfg_.scan,
                               &buckets_[static_cast<std::size_t>(k)]);
          }
        } else {
          for (uint32_t r = from; r < to; ++r) {
            if (may_have_dead && !rel_->RowLive(r)) continue;
            buckets_[col[r] - base_].push_back(r);
          }
        }
        break;
      }
      case IndexRepr::kHashMap: {
        Tuple key(positions_.size(), 0);
        for (uint32_t r = from; r < to; ++r) {
          if (may_have_dead && !rel_->RowLive(r)) continue;
          for (std::size_t i = 0; i < positions_.size(); ++i) {
            key[i] = rel_->Cell(r, positions_[i]);
          }
          index_[key].push_back(r);
        }
        break;
      }
    }
    rows_scanned_ += to - from;
    indexed_rows_ = to;
    return true;
  }

  void FilterScans(uint32_t n) { rows_scanned_ += n; }

  const Relation<P>* rel_;
  std::vector<int> positions_;
  IndexConfig cfg_;
  IndexRepr repr_ = IndexRepr::kHashMap;
  // General tier.
  std::unordered_map<Tuple, EntryList, TupleHash> index_;
  // Direct tier: buckets_[key - base_], span_ == buckets_.size().
  uint32_t base_ = 0;
  uint64_t span_ = 0;
  std::vector<EntryList> buckets_;
  // Empty-key tier.
  EntryList all_;
  uint32_t indexed_rows_ = 0;
  uint64_t rows_scanned_ = 0;
};

/// Memoizes RelationIndexes keyed by (relation identity, position set).
/// A cached index is reused only while the relation's version is unchanged
/// — i.e. the relation has not been mutated since the index was built — so
/// EDB indexes survive an entire fixpoint run and IDB indexes survive all
/// rule evaluations within one ICO application. An index holds row ids
/// into the relation's columnar storage; the version guard ensures they
/// are only ever decoded while they are valid (mutation, Compact and Clear
/// all bump the version), and entries for mutated or destroyed relations
/// become unreachable (uids are never reused).
template <Pops P>
class IndexCache {
 public:
  /// Index-tier and scan-kernel knobs for every index built through this
  /// cache. Set before the first Get (the engine does, at construction).
  void set_config(IndexConfig cfg) { config_ = cfg; }
  IndexConfig config() const { return config_; }

  /// Returns an index of `rel` on `positions`, building it if no current
  /// one is cached. The reference stays valid until `rel` is mutated, the
  /// cache is cleared, or MaybeEvict() runs — Get itself never evicts, so
  /// references obtained during one joining step cannot be invalidated by
  /// later lookups in that same step.
  ///
  /// `pin` marks the entry eviction-exempt: the engine pins EDB entries,
  /// which never mutate during a run but used to fall idle — and get
  /// evicted, then fully re-scanned — while the ordered scheduler ran
  /// other groups' local fixpoints.
  ///
  /// A version mismatch does not always mean a scan: when the relation
  /// reports no hard discontinuity since the entry's version, the cached
  /// index is *refreshed* — appended rows only, or reset-and-reappend
  /// after a Clear + refill cycle — instead of rebuilt. Refreshes still
  /// count into builds() (keeping the build/hit counters bit-identical
  /// to the rebuild-everything behaviour); the appended rows count into
  /// incremental_appends() so journals show the rebuild work saved.
  const RelationIndex<P>& Get(const Relation<P>& rel,
                              const std::vector<int>& positions,
                              bool pin = false) {
    // Two-level lookup (uid, then a linear scan of the few position sets a
    // predicate is ever joined on) keeps cache hits allocation-free; the
    // positions vector is copied only when an index is first built.
    std::vector<Entry>& entries = cache_[rel.uid()];
    for (Entry& e : entries) {
      if (e.positions != positions) continue;
      e.pinned = e.pinned || pin;
      if (e.version == rel.version()) {
        ++hits_;
        e.last_used = sweep_;
        return *e.index;
      }
      ++builds_;
      if (!RefreshEntry(rel, &e)) {
        // Build before updating the entry: a throwing constructor must
        // not leave the stale index tagged with the fresh version.
        auto rebuilt =
            std::make_unique<RelationIndex<P>>(rel, positions, config_);
        scan_rows_ += rebuilt->rows_scanned();
        e.index = std::move(rebuilt);
      }
      e.version = rel.version();
      e.last_used = sweep_;
      return *e.index;
    }
    ++builds_;
    // Growing `entries` may relocate other Entry objects, but never the
    // heap RelationIndexes that outstanding Get() references point to.
    entries.push_back(
        Entry{positions, rel.version(),
              std::make_unique<RelationIndex<P>>(rel, positions, config_),
              sweep_, pin});
    scan_rows_ += entries.back().index->rows_scanned();
    return *entries.back().index;
  }

  /// Eviction — call only when no Get() references are live (e.g. between
  /// fixpoint iterations, which also advances the "recently used" epoch).
  /// Callers that index short-lived relations orphan their entries — each
  /// a fully built index the size of its relation — so everything idle for
  /// a full epoch is dropped; hot (persistent-delta) indexes are looked up
  /// every epoch and survive, and pinned (EDB) entries are exempt.
  void MaybeEvict() {
    ++sweep_;
    for (auto it = cache_.begin(); it != cache_.end();) {
      std::erase_if(it->second, [this](const Entry& e) {
        return !e.pinned && e.last_used + 1 < sweep_;
      });
      it = it->second.empty() ? cache_.erase(it) : std::next(it);
    }
  }

  void Clear() { cache_.clear(); }

  /// Number of indexes constructed or refreshed through this cache.
  uint64_t builds() const { return builds_; }
  /// Number of lookups served without rebuilding.
  uint64_t hits() const { return hits_; }
  /// Rows appended to cached indexes by incremental refreshes — each one
  /// a row the rebuild path would have re-scanned along with its whole
  /// relation.
  uint64_t incremental_appends() const { return incremental_appends_; }
  /// Rows examined by index build/refresh scans through this cache (cache
  /// hits contribute nothing — the "hit path never scans" assertion
  /// surface).
  uint64_t scan_rows() const { return scan_rows_; }

 private:
  struct Entry {
    std::vector<int> positions;
    uint64_t version;
    std::unique_ptr<RelationIndex<P>> index;
    uint64_t last_used = 0;  ///< sweep epoch of the most recent lookup
    bool pinned = false;     ///< eviction-exempt (EDB entries)
  };

  /// Tries the incremental-refresh paths; returns true iff the cached
  /// index was brought current without a rebuild.
  bool RefreshEntry(const Relation<P>& rel, Entry* e) {
    if (rel.hard_version() > e->version) return false;
    const uint64_t scans_before = e->index->rows_scanned();
    const uint32_t rows_before = e->index->indexed_rows();
    bool ok;
    uint32_t appended;
    if (rel.clear_version() > e->version) {
      ok = e->index->ResetAndReappend();
      appended = ok ? e->index->indexed_rows() : 0;
    } else {
      ok = e->index->AppendNewRows();
      appended = ok ? e->index->indexed_rows() - rows_before : 0;
    }
    if (ok) {
      incremental_appends_ += appended;
      scan_rows_ += e->index->rows_scanned() - scans_before;
    }
    return ok;
  }

  IndexConfig config_;
  std::unordered_map<uint64_t, std::vector<Entry>> cache_;
  uint64_t sweep_ = 0;
  uint64_t builds_ = 0;
  uint64_t hits_ = 0;
  uint64_t incremental_appends_ = 0;
  uint64_t scan_rows_ = 0;
};

}  // namespace datalogo

#endif  // DATALOGO_RELATION_RELATION_H_
