// Tuples over the key space: fixed-arity sequences of interned ConstIds.
//
// Tuple is a small-buffer-optimized sequence: tuples of arity ≤ 4 (the
// overwhelmingly common case — every paper workload is arity 1 or 2) live
// entirely inline, so relation maps, index keys and head tuples involve no
// heap traffic. Larger tuples spill to the heap with vector-like growth.
// Hashing, equality and lexicographic ordering match the semantics of the
// previous `std::vector<ConstId>` representation exactly.
#ifndef DATALOGO_RELATION_TUPLE_H_
#define DATALOGO_RELATION_TUPLE_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <new>
#include <type_traits>
#include <utility>

#include "src/core/hash.h"
#include "src/relation/domain.h"

namespace datalogo {

/// A ground tuple t ∈ D^k with inline storage for k ≤ kInlineCapacity.
class Tuple {
 public:
  using value_type = ConstId;
  using iterator = ConstId*;
  using const_iterator = const ConstId*;

  /// Arity up to which a tuple is stored inline (no heap allocation).
  static constexpr std::size_t kInlineCapacity = 4;

  Tuple() noexcept : size_(0), capacity_(kInlineCapacity) {}

  /// A tuple of `n` copies of `fill` (mirrors vector's (n, value) form).
  explicit Tuple(std::size_t n, ConstId fill = 0)
      : size_(0), capacity_(kInlineCapacity) {
    reserve(n);
    std::fill_n(data(), n, fill);
    size_ = static_cast<uint32_t>(n);
  }

  Tuple(std::initializer_list<ConstId> init)
      : size_(0), capacity_(kInlineCapacity) {
    reserve(init.size());
    std::copy(init.begin(), init.end(), data());
    size_ = static_cast<uint32_t>(init.size());
  }

  template <typename It, typename = std::enable_if_t<
                             !std::is_integral_v<It>>>  // not the (n, fill) form
  Tuple(It first, It last) : size_(0), capacity_(kInlineCapacity) {
    for (; first != last; ++first) push_back(*first);
  }

  Tuple(const Tuple& other) : size_(other.size_), capacity_(kInlineCapacity) {
    // Inline-sized contents always land inline (even when the source had
    // spilled), preserving the invariant that heap capacity is strictly
    // greater than kInlineCapacity — the push_back doubling relies on it.
    if (other.size_ <= kInlineCapacity) {
      std::memcpy(inline_, other.data(), other.size_ * sizeof(ConstId));
    } else {
      heap_ = new ConstId[other.size_];
      capacity_ = other.size_;
      std::memcpy(heap_, other.heap_, other.size_ * sizeof(ConstId));
    }
  }

  Tuple(Tuple&& other) noexcept
      : size_(other.size_), capacity_(other.capacity_) {
    if (other.is_inline()) {
      std::memcpy(inline_, other.inline_, other.size_ * sizeof(ConstId));
    } else {
      heap_ = other.heap_;
      other.capacity_ = kInlineCapacity;
    }
    other.size_ = 0;
  }

  Tuple& operator=(const Tuple& other) {
    if (this == &other) return *this;
    if (other.size_ <= capacity_) {
      // Reuse existing storage (inline or a large-enough heap block) —
      // this is the no-allocation path reusable key buffers rely on.
      std::memcpy(data(), other.data(), other.size_ * sizeof(ConstId));
      size_ = other.size_;
      return *this;
    }
    Tuple copy(other);
    swap(copy);
    return *this;
  }

  Tuple& operator=(Tuple&& other) noexcept {
    if (this == &other) return *this;
    if (!is_inline()) delete[] heap_;
    size_ = other.size_;
    capacity_ = other.capacity_;
    if (other.is_inline()) {
      std::memcpy(inline_, other.inline_, sizeof(inline_));
      capacity_ = kInlineCapacity;
    } else {
      heap_ = other.heap_;
      other.capacity_ = kInlineCapacity;
    }
    other.size_ = 0;
    return *this;
  }

  ~Tuple() {
    if (!is_inline()) delete[] heap_;
  }

  void swap(Tuple& other) noexcept {
    Tuple tmp(std::move(other));
    other = std::move(*this);
    *this = std::move(tmp);
  }

  ConstId* data() { return is_inline() ? inline_ : heap_; }
  const ConstId* data() const { return is_inline() ? inline_ : heap_; }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  ConstId& operator[](std::size_t i) { return data()[i]; }
  ConstId operator[](std::size_t i) const { return data()[i]; }

  ConstId front() const { return data()[0]; }
  ConstId back() const { return data()[size_ - 1]; }

  iterator begin() { return data(); }
  iterator end() { return data() + size_; }
  const_iterator begin() const { return data(); }
  const_iterator end() const { return data() + size_; }

  /// Ensures capacity ≥ n; never shrinks and keeps contents.
  void reserve(std::size_t n) {
    if (n <= capacity_) return;
    ConstId* block = new ConstId[n];
    std::memcpy(block, data(), size_ * sizeof(ConstId));
    if (!is_inline()) delete[] heap_;
    heap_ = block;
    capacity_ = static_cast<uint32_t>(n);
  }

  void push_back(ConstId c) {
    if (size_ == capacity_) reserve(capacity_ * 2);
    data()[size_++] = c;
  }

  /// Appends [first, last) — the vector::insert(end, …) idiom.
  template <typename It>
  void append(It first, It last) {
    for (; first != last; ++first) push_back(*first);
  }

  void clear() { size_ = 0; }

  friend bool operator==(const Tuple& a, const Tuple& b) {
    return a.size_ == b.size_ &&
           std::memcmp(a.data(), b.data(), a.size_ * sizeof(ConstId)) == 0;
  }
  friend bool operator!=(const Tuple& a, const Tuple& b) { return !(a == b); }

  /// Lexicographic, matching std::vector<ConstId> ordering.
  friend bool operator<(const Tuple& a, const Tuple& b) {
    return std::lexicographical_compare(a.begin(), a.end(), b.begin(),
                                        b.end());
  }
  friend bool operator>(const Tuple& a, const Tuple& b) { return b < a; }
  friend bool operator<=(const Tuple& a, const Tuple& b) { return !(b < a); }
  friend bool operator>=(const Tuple& a, const Tuple& b) { return !(a < b); }

 private:
  bool is_inline() const { return capacity_ == kInlineCapacity; }

  uint32_t size_;
  uint32_t capacity_;  ///< == kInlineCapacity ⇔ inline storage is active
  union {
    ConstId inline_[kInlineCapacity];
    ConstId* heap_;
  };
};

/// Hash functor for tuples (for unordered containers).
struct TupleHash {
  std::size_t operator()(const Tuple& t) const {
    return HashRange(t.begin(), t.end());
  }
};

}  // namespace datalogo

#endif  // DATALOGO_RELATION_TUPLE_H_
