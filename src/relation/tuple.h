// Tuples over the key space: fixed-arity sequences of interned ConstIds.
#ifndef DATALOGO_RELATION_TUPLE_H_
#define DATALOGO_RELATION_TUPLE_H_

#include <vector>

#include "src/core/hash.h"
#include "src/relation/domain.h"

namespace datalogo {

/// A ground tuple t ∈ D^k.
using Tuple = std::vector<ConstId>;

/// Hash functor for tuples (for unordered containers).
struct TupleHash {
  std::size_t operator()(const Tuple& t) const {
    return HashRange(t.begin(), t.end());
  }
};

}  // namespace datalogo

#endif  // DATALOGO_RELATION_TUPLE_H_
