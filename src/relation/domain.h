// The key space D (Sec. 2.3): an interning table for the constants that
// appear in EDBs and programs. Constants are symbols or 64-bit integers;
// both intern to dense ConstId handles used inside tuples.
#ifndef DATALOGO_RELATION_DOMAIN_H_
#define DATALOGO_RELATION_DOMAIN_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace datalogo {

/// Dense handle for an interned constant.
using ConstId = uint32_t;

/// Interning table for the key space D. Not thread-safe; one Domain per
/// program instance.
class Domain {
 public:
  /// Interns a symbolic constant (idempotent).
  ConstId InternSymbol(const std::string& name);

  /// Interns an integer constant (idempotent).
  ConstId InternInt(int64_t value);

  /// Number of interned constants (= |ADom| once loading is complete).
  std::size_t size() const { return entries_.size(); }

  /// True if the constant is an integer.
  bool IsInt(ConstId id) const;

  /// The integer payload, or nullopt for symbols.
  std::optional<int64_t> AsInt(ConstId id) const;

  /// Printable form ("a", "42", …).
  std::string ToString(ConstId id) const;

  /// Looks up a symbol without interning.
  std::optional<ConstId> FindSymbol(const std::string& name) const;

  /// All interned ids, in interning order.
  std::vector<ConstId> AllIds() const;

 private:
  struct Entry {
    bool is_int;
    std::string symbol;
    int64_t value;
  };
  std::vector<Entry> entries_;
  std::unordered_map<std::string, ConstId> symbol_index_;
  std::map<int64_t, ConstId> int_index_;
};

}  // namespace datalogo

#endif  // DATALOGO_RELATION_DOMAIN_H_
