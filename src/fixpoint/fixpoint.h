// Least fixpoints of monotone functions on posets (Section 3). The naive
// algorithm computes the ω-sequence ⊥, f(⊥), f²(⊥), … and stops at the
// first repeat; its stopping step is exactly the stability index of f
// (Definition 3.1).
#ifndef DATALOGO_FIXPOINT_FIXPOINT_H_
#define DATALOGO_FIXPOINT_FIXPOINT_H_

#include <cstdint>
#include <utility>

namespace datalogo {

/// Outcome of a Kleene iteration.
struct FixpointStats {
  /// Stability index: the first q with f^(q)(⊥) = f^(q+1)(⊥); equals the
  /// iteration budget if the sequence did not converge.
  int steps = 0;
  bool converged = false;
};

/// Iterates x ← f(x) from the given initial state until a fixpoint or the
/// budget runs out. On return `x` holds f^(steps)(initial). `eq` must be
/// the poset's equality.
template <typename State, typename StepFn, typename EqFn>
FixpointStats IterateToFixpoint(State& x, StepFn&& step, EqFn&& eq,
                                int max_steps) {
  for (int t = 0; t < max_steps; ++t) {
    State next = step(x);
    if (eq(next, x)) {
      return {t, true};
    }
    x = std::move(next);
  }
  return {max_steps, false};
}

/// Σ_{i=1..n} (p+2)^i — the Theorem 5.12(1) convergence bound for general
/// polynomial systems over a p-stable semiring; saturates at kBoundInf.
inline constexpr uint64_t kBoundInf = UINT64_MAX;
inline uint64_t GeneralConvergenceBound(int p, int n) {
  uint64_t base = static_cast<uint64_t>(p) + 2;
  uint64_t sum = 0, pow = 1;
  for (int i = 1; i <= n; ++i) {
    if (pow > kBoundInf / base) return kBoundInf;
    pow *= base;
    if (sum > kBoundInf - pow) return kBoundInf;
    sum += pow;
  }
  return sum;
}

/// Σ_{i=1..n} (p+1)^i — the Theorem 5.12(1) bound for *linear* systems.
inline uint64_t LinearConvergenceBound(int p, int n) {
  uint64_t base = static_cast<uint64_t>(p) + 1;
  uint64_t sum = 0, pow = 1;
  for (int i = 1; i <= n; ++i) {
    if (pow > kBoundInf / base) return kBoundInf;
    pow *= base;
    if (sum > kBoundInf - pow) return kBoundInf;
    sum += pow;
  }
  return sum;
}

/// E_m(a_1..a_m) = a1 + a1·a2 + … + a1···am — the Theorem 3.4 c-clone
/// composition bound (maximized by a decreasing sequence).
inline uint64_t CloneCompositionBound(const int* stability, int n) {
  uint64_t sum = 0, prod = 1;
  for (int i = 0; i < n; ++i) {
    uint64_t a = static_cast<uint64_t>(stability[i]);
    if (a != 0 && prod > kBoundInf / a) return kBoundInf;
    prod *= a;
    if (sum > kBoundInf - prod) return kBoundInf;
    sum += prod;
  }
  return sum;
}

}  // namespace datalogo

#endif  // DATALOGO_FIXPOINT_FIXPOINT_H_
