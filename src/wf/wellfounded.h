// The well-founded model via van Gelder's alternating fixpoint (Sec. 7.1):
// the baseline against which datalog° over THREE is compared. Operates on
// grounded datalog-with-negation programs.
#ifndef DATALOGO_WF_WELLFOUNDED_H_
#define DATALOGO_WF_WELLFOUNDED_H_

#include <vector>

#include "src/graph/graph.h"
#include "src/semiring/three.h"

namespace datalogo {

/// A grounded rule head :- pos₁ ∧ … ∧ pos_k ∧ ¬neg₁ ∧ … ∧ ¬neg_m over
/// ground-atom ids 0..num_atoms-1.
struct GroundRuleNeg {
  int head = 0;
  std::vector<int> pos_body;
  std::vector<int> neg_body;
};

/// A grounded datalog¬ program.
struct NegProgram {
  int num_atoms = 0;
  std::vector<GroundRuleNeg> rules;
};

/// Result of the alternating fixpoint computation.
struct WellFoundedModel {
  /// Three-valued truth value per atom (1 in L; 0 outside G; else ⊥).
  std::vector<Kleene> values;
  /// The alternating sequence J(0), J(1), … until both chains converge
  /// (the Sec. 7.1 table).
  std::vector<std::vector<bool>> trace;
};

/// Computes the well-founded model: J(t+1) = lfp of the program with the
/// negative literals frozen against J(t); even steps increase to L, odd
/// steps decrease to G.
WellFoundedModel AlternatingFixpoint(const NegProgram& prog);

/// The win-move game (Eq. 67) grounded over a graph: atom v = Win(v),
/// one rule Win(x) :- ¬Win(y) per edge (x, y).
NegProgram WinMoveProgram(const Graph& g);

}  // namespace datalogo

#endif  // DATALOGO_WF_WELLFOUNDED_H_
