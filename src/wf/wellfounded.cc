#include "src/wf/wellfounded.h"

#include <utility>

#include "src/core/check.h"

namespace datalogo {
namespace {

/// Precomputed evaluation structure for the inner least-fixpoint: for
/// each atom, the rules whose positive body mentions it (so deriving an
/// atom wakes exactly the rules it can help fire), plus per-rule counters
/// reused across all InnerLfp calls of one alternating-fixpoint run —
/// the same compile-once/run-many shape as the relational engine's flat
/// join programs.
class InnerLfpProgram {
 public:
  explicit InnerLfpProgram(const NegProgram& prog) : prog_(&prog) {
    // Watch lists in CSR (column-oriented) form: the rules watching atom a
    // are watch_rules_[watch_begin_[a] .. watch_begin_[a+1]) — one flat
    // array instead of num_atoms separate heap vectors, so the hot
    // propagation loop walks contiguous memory.
    watch_begin_.assign(prog.num_atoms + 1, 0);
    for (const GroundRuleNeg& rule : prog.rules) {
      for (int a : rule.pos_body) ++watch_begin_[a + 1];
    }
    for (int a = 0; a < prog.num_atoms; ++a) {
      watch_begin_[a + 1] += watch_begin_[a];
    }
    watch_rules_.resize(watch_begin_[prog.num_atoms]);
    std::vector<int> cursor(watch_begin_.begin(), watch_begin_.end() - 1);
    for (std::size_t r = 0; r < prog.rules.size(); ++r) {
      for (int a : prog.rules[r].pos_body) {
        watch_rules_[cursor[a]++] = static_cast<int>(r);
      }
    }
    missing_.resize(prog.rules.size());
  }

  /// Least fixpoint of the positive program obtained by freezing negative
  /// literals against `frozen`.
  std::vector<bool> Run(const std::vector<bool>& frozen) {
    const NegProgram& prog = *prog_;
    std::vector<bool> j(prog.num_atoms, false);
    worklist_.clear();
    auto derive = [&](int atom) {
      if (!j[atom]) {
        j[atom] = true;
        worklist_.push_back(atom);
      }
    };
    for (std::size_t r = 0; r < prog.rules.size(); ++r) {
      const GroundRuleNeg& rule = prog.rules[r];
      missing_[r] = static_cast<int>(rule.pos_body.size());
      bool blocked = false;
      for (int a : rule.neg_body) {
        if (frozen[a]) {
          blocked = true;
          break;
        }
      }
      if (blocked) {
        missing_[r] = -1;  // can never fire this round
      } else if (missing_[r] == 0) {
        derive(rule.head);
      }
    }
    while (!worklist_.empty()) {
      int atom = worklist_.back();
      worklist_.pop_back();
      for (int i = watch_begin_[atom]; i < watch_begin_[atom + 1]; ++i) {
        const int r = watch_rules_[i];
        // An atom repeated in one positive body decrements once per
        // occurrence, matching the initial occurrence count.
        if (missing_[r] > 0 && --missing_[r] == 0) {
          derive(prog.rules[r].head);
        }
      }
    }
    return j;
  }

 private:
  const NegProgram* prog_;
  std::vector<int> watch_begin_;  ///< CSR offsets: atom → watch_rules_ span
  std::vector<int> watch_rules_;  ///< CSR payload: watching rule ids
  std::vector<int> missing_;   ///< per-rule outstanding positive atoms
  std::vector<int> worklist_;  ///< newly derived atoms to propagate
};

}  // namespace

WellFoundedModel AlternatingFixpoint(const NegProgram& prog) {
  WellFoundedModel out;
  InnerLfpProgram inner(prog);
  std::vector<bool> j(prog.num_atoms, false);
  out.trace.push_back(j);
  // The even subsequence increases, the odd one decreases; both are
  // monotone, so each converges within num_atoms+1 rounds. Iterate until
  // J(t) = J(t-2) for two consecutive t.
  int stable_pairs = 0;
  while (stable_pairs < 2) {
    std::vector<bool> next = inner.Run(j);
    out.trace.push_back(next);
    std::size_t n = out.trace.size();
    if (n >= 3 && out.trace[n - 1] == out.trace[n - 3]) {
      ++stable_pairs;
    } else {
      stable_pairs = 0;
    }
    j = std::move(next);
    DLO_CHECK_MSG(out.trace.size() <
                      static_cast<std::size_t>(4 * prog.num_atoms + 16),
                  "alternating fixpoint failed to converge");
  }
  // The last two trace entries are G (odd limit) and L (even limit), in
  // some order depending on parity.
  std::size_t n = out.trace.size();
  const std::vector<bool>& last = out.trace[n - 1];
  const std::vector<bool>& prev = out.trace[n - 2];
  // Even-indexed entries underestimate (L), odd-indexed overestimate (G).
  const std::vector<bool>& l = (n - 1) % 2 == 0 ? last : prev;
  const std::vector<bool>& g = (n - 1) % 2 == 1 ? last : prev;
  out.values.resize(prog.num_atoms);
  for (int a = 0; a < prog.num_atoms; ++a) {
    if (l[a]) {
      out.values[a] = Kleene::kTrue;
    } else if (!g[a]) {
      out.values[a] = Kleene::kFalse;
    } else {
      out.values[a] = Kleene::kBot;
    }
  }
  return out;
}

NegProgram WinMoveProgram(const Graph& g) {
  NegProgram prog;
  prog.num_atoms = g.num_vertices();
  for (const Edge& e : g.edges()) {
    prog.rules.push_back(GroundRuleNeg{e.src, {}, {e.dst}});
  }
  return prog;
}

}  // namespace datalogo
