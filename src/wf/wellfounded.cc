#include "src/wf/wellfounded.h"

#include "src/core/check.h"

namespace datalogo {
namespace {

/// Least fixpoint of the positive program obtained by freezing negative
/// literals against `frozen`.
std::vector<bool> InnerLfp(const NegProgram& prog,
                           const std::vector<bool>& frozen) {
  std::vector<bool> j(prog.num_atoms, false);
  bool changed = true;
  while (changed) {
    changed = false;
    for (const GroundRuleNeg& r : prog.rules) {
      if (j[r.head]) continue;
      bool fires = true;
      for (int a : r.pos_body) {
        if (!j[a]) {
          fires = false;
          break;
        }
      }
      if (fires) {
        for (int a : r.neg_body) {
          if (frozen[a]) {
            fires = false;
            break;
          }
        }
      }
      if (fires) {
        j[r.head] = true;
        changed = true;
      }
    }
  }
  return j;
}

}  // namespace

WellFoundedModel AlternatingFixpoint(const NegProgram& prog) {
  WellFoundedModel out;
  std::vector<bool> j(prog.num_atoms, false);
  out.trace.push_back(j);
  // The even subsequence increases, the odd one decreases; both are
  // monotone, so each converges within num_atoms+1 rounds. Iterate until
  // J(t) = J(t-2) for two consecutive t.
  int stable_pairs = 0;
  while (stable_pairs < 2) {
    std::vector<bool> next = InnerLfp(prog, j);
    out.trace.push_back(next);
    std::size_t n = out.trace.size();
    if (n >= 3 && out.trace[n - 1] == out.trace[n - 3]) {
      ++stable_pairs;
    } else {
      stable_pairs = 0;
    }
    j = std::move(next);
    DLO_CHECK_MSG(out.trace.size() <
                      static_cast<std::size_t>(4 * prog.num_atoms + 16),
                  "alternating fixpoint failed to converge");
  }
  // The last two trace entries are G (odd limit) and L (even limit), in
  // some order depending on parity.
  std::size_t n = out.trace.size();
  const std::vector<bool>& last = out.trace[n - 1];
  const std::vector<bool>& prev = out.trace[n - 2];
  // Even-indexed entries underestimate (L), odd-indexed overestimate (G).
  const std::vector<bool>& l = (n - 1) % 2 == 0 ? last : prev;
  const std::vector<bool>& g = (n - 1) % 2 == 1 ? last : prev;
  out.values.resize(prog.num_atoms);
  for (int a = 0; a < prog.num_atoms; ++a) {
    if (l[a]) {
      out.values[a] = Kleene::kTrue;
    } else if (!g[a]) {
      out.values[a] = Kleene::kFalse;
    } else {
      out.values[a] = Kleene::kBot;
    }
  }
  return out;
}

NegProgram WinMoveProgram(const Graph& g) {
  NegProgram prog;
  prog.num_atoms = g.num_vertices();
  for (const Edge& e : g.edges()) {
    prog.rules.push_back(GroundRuleNeg{e.src, {}, {e.dst}});
  }
  return prog;
}

}  // namespace datalogo
