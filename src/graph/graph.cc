#include "src/graph/graph.h"

#include <deque>
#include <limits>
#include <sstream>

#include "src/core/check.h"

namespace datalogo {

void Graph::AddEdge(int src, int dst, double weight) {
  DLO_CHECK(src >= 0 && src < num_vertices_);
  DLO_CHECK(dst >= 0 && dst < num_vertices_);
  edges_.push_back(Edge{src, dst, weight});
}

std::vector<std::vector<Edge>> Graph::OutAdjacency() const {
  std::vector<std::vector<Edge>> adj(num_vertices_);
  for (const Edge& e : edges_) adj[e.src].push_back(e);
  return adj;
}

std::vector<double> Graph::ShortestPathsFrom(int source) const {
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(num_vertices_, inf);
  dist[source] = 0.0;
  for (int round = 0; round < num_vertices_; ++round) {
    bool changed = false;
    for (const Edge& e : edges_) {
      if (dist[e.src] + e.weight < dist[e.dst]) {
        dist[e.dst] = dist[e.src] + e.weight;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return dist;
}

std::vector<bool> Graph::ReachableFrom(int source) const {
  std::vector<bool> seen(num_vertices_, false);
  std::vector<std::vector<Edge>> adj = OutAdjacency();
  std::deque<int> queue{source};
  seen[source] = true;
  while (!queue.empty()) {
    int v = queue.front();
    queue.pop_front();
    for (const Edge& e : adj[v]) {
      if (!seen[e.dst]) {
        seen[e.dst] = true;
        queue.push_back(e.dst);
      }
    }
  }
  return seen;
}

std::string Graph::ToString() const {
  std::ostringstream os;
  os << "Graph(n=" << num_vertices_ << ", m=" << edges_.size() << ")";
  return os.str();
}

}  // namespace datalogo
