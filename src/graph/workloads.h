// The paper's concrete instances: the weighted graph of Fig. 2(a)
// (Example 4.1, SSSP), the part/subpart graph of Fig. 2(b) (Example 4.2,
// bill-of-material), and the win-move game graph of Fig. 4 (Section 7).
#ifndef DATALOGO_GRAPH_WORKLOADS_H_
#define DATALOGO_GRAPH_WORKLOADS_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/graph/graph.h"

namespace datalogo {

/// A graph with named vertices, as drawn in the paper's figures.
struct NamedGraph {
  std::vector<std::string> names;                       ///< vertex → name
  std::vector<std::pair<std::string, std::string>> edges;
  std::map<std::string, double> vertex_costs;           ///< for Fig. 2(b)
  std::map<std::pair<std::string, std::string>, double> edge_weights;
};

/// Fig. 2(a): a,b,c,d with E = {(a,b,1),(b,c,3),(a,c,5),(c,d,4),(d,c,2)}.
/// Naive SSSP from `a` over Trop+ converges in 5 steps (Example 4.1).
NamedGraph PaperFig2a();

/// Fig. 2(b): a,b,c,d with E = {(a,b),(a,c),(b,a),(c,d)} and costs
/// C(a)=C(b)=C(c)=1, C(d)=10. Bill-of-material over R⊥ converges in
/// 3 steps with T(c)=11, T(d)=10, T(a)=T(b)=⊥ (Example 4.2).
NamedGraph PaperFig2b();

/// Fig. 4: a..f with E = {(a,b),(a,c),(b,a),(c,d),(c,e),(d,e),(e,f)};
/// the win-move game's well-founded model is W(c)=W(e)=1, W(d)=W(f)=0,
/// W(a)=W(b)=⊥ (Section 7).
NamedGraph PaperFig4();

}  // namespace datalogo

#endif  // DATALOGO_GRAPH_WORKLOADS_H_
