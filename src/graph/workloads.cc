#include "src/graph/workloads.h"

namespace datalogo {

NamedGraph PaperFig2a() {
  NamedGraph g;
  g.names = {"a", "b", "c", "d"};
  auto edge = [&](const std::string& s, const std::string& t, double w) {
    g.edges.emplace_back(s, t);
    g.edge_weights[{s, t}] = w;
  };
  // Fig. 2(a): a -1-> b, b -2-> a, b -3-> c, c -4-> d, a -5-> c.
  // Produces the Example 4.1 table (L converges to (0,1,4,8) in 5 steps)
  // and the Trop+_1 results L(a)={{0,3}}, L(b)={{1,4}}, L(c)={{4,5}},
  // L(d)={{8,9}}.
  edge("a", "b", 1);
  edge("b", "a", 2);
  edge("b", "c", 3);
  edge("c", "d", 4);
  edge("a", "c", 5);
  return g;
}

NamedGraph PaperFig2b() {
  NamedGraph g;
  g.names = {"a", "b", "c", "d"};
  g.edges = {{"a", "b"}, {"a", "c"}, {"b", "a"}, {"c", "d"}};
  g.vertex_costs = {{"a", 1}, {"b", 1}, {"c", 1}, {"d", 10}};
  return g;
}

NamedGraph PaperFig4() {
  NamedGraph g;
  g.names = {"a", "b", "c", "d", "e", "f"};
  g.edges = {{"a", "b"}, {"a", "c"}, {"b", "a"}, {"c", "d"},
             {"c", "e"}, {"d", "e"}, {"e", "f"}};
  return g;
}

}  // namespace datalogo
