// Synthetic workload generators (see DESIGN.md substitution notes): the
// paper has no external datasets, so benches sweep these graph families.
#ifndef DATALOGO_GRAPH_GENERATORS_H_
#define DATALOGO_GRAPH_GENERATORS_H_

#include <cstdint>

#include "src/graph/graph.h"

namespace datalogo {

/// G(n, m): m uniformly random directed edges, weights in [1, max_weight].
Graph RandomGraph(int n, int m, uint64_t seed, double max_weight = 10.0);

/// The directed n-cycle 0 → 1 → … → n-1 → 0 with unit weights — the
/// Lemma 5.20 lower-bound instance.
Graph CycleGraph(int n);

/// Directed 2D grid (edges right and down), rows × cols vertices.
Graph GridGraph(int rows, int cols);

/// A layered DAG: `layers` layers of `width` vertices, random edges
/// between consecutive layers with probability `density`.
Graph LayeredDag(int layers, int width, double density, uint64_t seed);

/// A random tree oriented away from the root plus `extra_edges` random
/// cross edges — the bill-of-material shape (part/subpart with sharing).
Graph TreeWithCrossEdges(int n, int extra_edges, uint64_t seed);

}  // namespace datalogo

#endif  // DATALOGO_GRAPH_GENERATORS_H_
