// Weighted directed graphs: the workload substrate for the paper's
// programs (transitive closure, SSSP/APSP, bill-of-material, win-move).
#ifndef DATALOGO_GRAPH_GRAPH_H_
#define DATALOGO_GRAPH_GRAPH_H_

#include <string>
#include <vector>

namespace datalogo {

/// A directed edge with a non-negative weight.
struct Edge {
  int src = 0;
  int dst = 0;
  double weight = 1.0;
};

/// A simple directed multigraph on vertices 0..n-1.
class Graph {
 public:
  explicit Graph(int num_vertices) : num_vertices_(num_vertices) {}

  int num_vertices() const { return num_vertices_; }
  int num_edges() const { return static_cast<int>(edges_.size()); }
  const std::vector<Edge>& edges() const { return edges_; }

  void AddEdge(int src, int dst, double weight = 1.0);

  /// Out-adjacency lists (built on demand).
  std::vector<std::vector<Edge>> OutAdjacency() const;

  /// Reference single-source shortest paths (Bellman–Ford), used as the
  /// oracle for SSSP/APSP tests; +inf for unreachable.
  std::vector<double> ShortestPathsFrom(int source) const;

  /// Reference reachability from `source` (BFS oracle).
  std::vector<bool> ReachableFrom(int source) const;

  std::string ToString() const;

 private:
  int num_vertices_;
  std::vector<Edge> edges_;
};

}  // namespace datalogo

#endif  // DATALOGO_GRAPH_GRAPH_H_
