#include "src/graph/generators.h"

#include <random>

#include "src/core/check.h"

namespace datalogo {

Graph RandomGraph(int n, int m, uint64_t seed, double max_weight) {
  DLO_CHECK(n > 0);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> vertex(0, n - 1);
  std::uniform_real_distribution<double> weight(1.0, max_weight);
  Graph g(n);
  for (int i = 0; i < m; ++i) {
    g.AddEdge(vertex(rng), vertex(rng), weight(rng));
  }
  return g;
}

Graph CycleGraph(int n) {
  DLO_CHECK(n > 0);
  Graph g(n);
  for (int i = 0; i < n; ++i) g.AddEdge(i, (i + 1) % n, 1.0);
  return g;
}

Graph GridGraph(int rows, int cols) {
  DLO_CHECK(rows > 0 && cols > 0);
  Graph g(rows * cols);
  auto id = [cols](int r, int c) { return r * cols + c; };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.AddEdge(id(r, c), id(r, c + 1), 1.0);
      if (r + 1 < rows) g.AddEdge(id(r, c), id(r + 1, c), 1.0);
    }
  }
  return g;
}

Graph LayeredDag(int layers, int width, double density, uint64_t seed) {
  DLO_CHECK(layers > 0 && width > 0);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::uniform_real_distribution<double> weight(1.0, 10.0);
  Graph g(layers * width);
  for (int l = 0; l + 1 < layers; ++l) {
    for (int a = 0; a < width; ++a) {
      for (int b = 0; b < width; ++b) {
        if (coin(rng) < density) {
          g.AddEdge(l * width + a, (l + 1) * width + b, weight(rng));
        }
      }
    }
  }
  return g;
}

Graph TreeWithCrossEdges(int n, int extra_edges, uint64_t seed) {
  DLO_CHECK(n > 0);
  std::mt19937_64 rng(seed);
  Graph g(n);
  for (int v = 1; v < n; ++v) {
    std::uniform_int_distribution<int> parent(0, v - 1);
    g.AddEdge(parent(rng), v, 1.0);
  }
  std::uniform_int_distribution<int> vertex(0, n - 1);
  for (int i = 0; i < extra_edges; ++i) {
    int a = vertex(rng), b = vertex(rng);
    if (a < b) g.AddEdge(a, b, 1.0);  // keep it acyclic: edges go forward
  }
  return g;
}

}  // namespace datalogo
