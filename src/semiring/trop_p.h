// Trop+_p (Example 2.9): bags of the p+1 smallest path lengths, computing
// the top p+1 shortest paths. The carrier is B_{p+1}(R+ ∪ {∞}) — bags of
// exactly p+1 elements, represented as a sorted ascending std::array.
// Trop+_p is a naturally ordered semiring and is exactly p-stable
// (Proposition 5.3; the bound is tight on the unit element 1_p).
#ifndef DATALOGO_SEMIRING_TROP_P_H_
#define DATALOGO_SEMIRING_TROP_P_H_

#include <algorithm>
#include <array>
#include <cstddef>
#include <limits>
#include <sstream>
#include <string>

namespace datalogo {

/// Trop+_p with compile-time p ≥ 0; values are sorted bags of p+1 lengths.
template <int kP>
struct TropPS {
  static_assert(kP >= 0, "p must be non-negative");
  static constexpr int kBagSize = kP + 1;
  using Value = std::array<double, kBagSize>;
  static constexpr const char* kName = "Trop+_p";
  static constexpr bool kIsSemiring = true;
  static constexpr bool kNaturallyOrdered = true;
  // a ⊕ a duplicates finite entries (bags, not sets), so ⊕ is idempotent
  // only for p = 0 where Trop+_0 = Trop+.
  static constexpr bool kIdempotentPlus = (kP == 0);

  static double Inf() { return std::numeric_limits<double>::infinity(); }

  /// 0_p = {{∞, …, ∞}}.
  static Value Zero() {
    Value v;
    v.fill(Inf());
    return v;
  }

  /// 1_p = {{0, ∞, …, ∞}}.
  static Value One() {
    Value v = Zero();
    v[0] = 0.0;
    return v;
  }

  static Value Bottom() { return Zero(); }

  /// Lifts a single length into a bag {{x, ∞, …, ∞}}.
  static Value FromScalar(double x) {
    Value v = Zero();
    v[0] = x;
    return v;
  }

  /// ⊕_p = min_p over the bag union: merge two sorted bags, keep p+1.
  /// At the start of step k we have i + j = k < kBagSize, so both indexes
  /// stay in range throughout.
  static Value Plus(const Value& a, const Value& b) {
    Value out;
    std::size_t i = 0, j = 0;
    for (std::size_t k = 0; k < kBagSize; ++k) {
      if (a[i] <= b[j]) {
        out[k] = a[i++];
      } else {
        out[k] = b[j++];
      }
    }
    return out;
  }

  /// ⊗_p = min_p over pairwise sums of the two bags.
  static Value Times(const Value& a, const Value& b) {
    std::array<double, kBagSize * kBagSize> sums;
    std::size_t n = 0;
    for (int i = 0; i < kBagSize; ++i) {
      for (int j = 0; j < kBagSize; ++j) {
        sums[n++] = a[i] + b[j];
      }
    }
    std::partial_sort(sums.begin(), sums.begin() + kBagSize, sums.end());
    Value out;
    std::copy(sums.begin(), sums.begin() + kBagSize, out.begin());
    return out;
  }

  static bool Eq(const Value& a, const Value& b) {
    for (int i = 0; i < kBagSize; ++i) {
      if (a[i] != b[i]) return false;
    }
    return true;
  }

  /// Natural order: a ⪯ b iff ∃c with min_p(a ⊎ c) = b. Adding elements
  /// can push large entries of a out of the bag but can never delete an
  /// entry smaller than the resulting maximum, so the exact condition is:
  /// every value v < max(b) occurs in b at least as often as in a.
  static bool Leq(const Value& a, const Value& b) {
    const double t = b[kBagSize - 1];
    for (int i = 0; i < kBagSize; ++i) {
      const double v = a[i];
      if (!(v < t)) continue;
      int in_a = 0, in_b = 0;
      for (int k = 0; k < kBagSize; ++k) {
        if (a[k] == v) ++in_a;
        if (b[k] == v) ++in_b;
      }
      if (in_a > in_b) return false;
    }
    return true;
  }

  static std::string ToString(const Value& a) {
    std::ostringstream os;
    os << "{{";
    for (int i = 0; i < kBagSize; ++i) {
      if (i) os << ",";
      if (a[i] == Inf()) {
        os << "inf";
      } else {
        os << a[i];
      }
    }
    os << "}}";
    return os.str();
  }
};

}  // namespace datalogo

#endif  // DATALOGO_SEMIRING_TROP_P_H_
