// Completed POPS S⊥⊤ (Sec. 2.5.1 "Representing Contradiction"): adjoin
// both ⊥ (undefined) and ⊤ (contradiction). ⊥ is strict and absorbs both
// operations; ⊤ absorbs among non-⊥ values. Order: ⊥ ⊑ x ⊑ ⊤.
#ifndef DATALOGO_SEMIRING_COMPLETED_H_
#define DATALOGO_SEMIRING_COMPLETED_H_

#include <string>
#include <variant>

#include "src/semiring/traits.h"

namespace datalogo {

/// S⊥⊤ for a base pre-semiring S. ⊥ = "no value yet", ⊤ = "conflicting
/// values"; intuitively ⊥ = ∅, x = {x}, ⊤ = S (Sec. 2.5.1).
template <PreSemiring S>
struct Completed {
  struct BotTag {
    bool operator==(const BotTag&) const { return true; }
  };
  struct TopTag {
    bool operator==(const TopTag&) const { return true; }
  };
  using Value = std::variant<BotTag, typename S::Value, TopTag>;
  static constexpr const char* kName = "Completed";
  static constexpr bool kIsSemiring = false;
  static constexpr bool kNaturallyOrdered = false;
  static constexpr bool kIdempotentPlus = false;

  static Value Zero() { return Value(std::in_place_index<1>, S::Zero()); }
  static Value One() { return Value(std::in_place_index<1>, S::One()); }
  static Value Bottom() { return Value(BotTag{}); }
  static Value Top() { return Value(TopTag{}); }
  static Value Lift(typename S::Value v) {
    return Value(std::in_place_index<1>, std::move(v));
  }

  static bool IsBot(const Value& v) { return v.index() == 0; }
  static bool IsTop(const Value& v) { return v.index() == 2; }

  static Value Plus(const Value& a, const Value& b) {
    if (IsBot(a) || IsBot(b)) return Bottom();  // ⊥ strict
    if (IsTop(a) || IsTop(b)) return Top();     // x ⊕ ⊤ = ⊤ for x ≠ ⊥
    return Lift(S::Plus(std::get<1>(a), std::get<1>(b)));
  }

  static Value Times(const Value& a, const Value& b) {
    if (IsBot(a) || IsBot(b)) return Bottom();
    if (IsTop(a) || IsTop(b)) return Top();
    return Lift(S::Times(std::get<1>(a), std::get<1>(b)));
  }

  static bool Eq(const Value& a, const Value& b) {
    if (a.index() != b.index()) return false;
    if (a.index() != 1) return true;
    return S::Eq(std::get<1>(a), std::get<1>(b));
  }

  /// x ⊑ y iff x = ⊥, x = y, or y = ⊤.
  static bool Leq(const Value& a, const Value& b) {
    if (IsBot(a) || IsTop(b)) return true;
    return Eq(a, b);
  }

  static std::string ToString(const Value& a) {
    if (IsBot(a)) return "bot";
    if (IsTop(a)) return "top";
    return S::ToString(std::get<1>(a));
  }
};

}  // namespace datalogo

#endif  // DATALOGO_SEMIRING_COMPLETED_H_
