// Provenance semirings: the free commutative semiring N[X] of provenance
// polynomials (Green et al., used by the paper for groundings, Sec. 2.4)
// and the absorptive PosBool(X) semiring (Dannert et al., cited in
// Sec. 5.1 as a 0-stable example).
//
// N[X] is naturally ordered but NOT stable — iterating f(x) = b + a·x²
// over N[a,b] never converges, yet its coefficient prefix stabilizes to
// the Catalan numbers (Example 5.5); tests/provenance_test.cc checks this.
#ifndef DATALOGO_SEMIRING_PROVENANCE_H_
#define DATALOGO_SEMIRING_PROVENANCE_H_

#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "src/semiring/naturals.h"

namespace datalogo {

/// A commutative monomial: variable name → exponent (absent = 0).
using ProvMonomial = std::map<std::string, uint32_t>;

/// N[X]: formal polynomials with (saturating) natural coefficients.
struct ProvPolyS {
  /// polynomial = monomial → coefficient; absent monomial = coefficient 0.
  using Value = std::map<ProvMonomial, uint64_t>;
  static constexpr const char* kName = "N[X]";
  static constexpr bool kIsSemiring = true;
  static constexpr bool kNaturallyOrdered = true;
  static constexpr bool kIdempotentPlus = false;

  static Value Zero() { return {}; }
  static Value One() { return {{ProvMonomial{}, 1}}; }
  static Value Bottom() { return Zero(); }

  /// The polynomial consisting of the single variable `name`.
  static Value Var(const std::string& name) {
    return {{ProvMonomial{{name, 1}}, 1}};
  }

  static Value Plus(const Value& a, const Value& b) {
    Value out = a;
    for (const auto& [m, c] : b) {
      uint64_t& slot = out[m];
      slot = NatS::Plus(slot, c);
    }
    return out;
  }

  static Value Times(const Value& a, const Value& b) {
    Value out;
    for (const auto& [ma, ca] : a) {
      for (const auto& [mb, cb] : b) {
        ProvMonomial m = ma;
        for (const auto& [v, e] : mb) m[v] += e;
        uint64_t& slot = out[m];
        slot = NatS::Plus(slot, NatS::Times(ca, cb));
      }
    }
    return out;
  }

  static bool Eq(const Value& a, const Value& b) { return a == b; }

  /// Natural order: coefficientwise ≤.
  static bool Leq(const Value& a, const Value& b) {
    for (const auto& [m, c] : a) {
      auto it = b.find(m);
      uint64_t cb = (it == b.end()) ? 0 : it->second;
      if (c > cb) return false;
    }
    return true;
  }

  /// Coefficient of a monomial (0 if absent).
  static uint64_t Coefficient(const Value& v, const ProvMonomial& m) {
    auto it = v.find(m);
    return it == v.end() ? 0 : it->second;
  }

  static std::string ToString(const Value& v) {
    if (v.empty()) return "0";
    std::ostringstream os;
    bool first = true;
    for (const auto& [m, c] : v) {
      if (!first) os << " + ";
      first = false;
      bool wrote = false;
      if (c != 1 || m.empty()) {
        os << NatS::ToString(c);
        wrote = true;
      }
      for (const auto& [var, e] : m) {
        if (wrote) os << "*";
        os << var;
        if (e > 1) os << "^" << e;
        wrote = true;
      }
    }
    return os.str();
  }
};

/// PosBool(X): positive Boolean provenance as minimized DNF — an antichain
/// of variable sets under ⊆. Absorptive (1 ⊕ a = 1), hence 0-stable, and a
/// complete distributive dioid with a computable ⊖.
struct PosBoolS {
  using Clause = std::set<std::string>;
  using Value = std::set<Clause>;  // antichain of clauses
  static constexpr const char* kName = "PosBool[X]";
  static constexpr bool kIsSemiring = true;
  static constexpr bool kNaturallyOrdered = true;
  static constexpr bool kIdempotentPlus = true;

  static Value Zero() { return {}; }          // false
  static Value One() { return {Clause{}}; }   // true (empty clause)
  static Value Bottom() { return Zero(); }
  static Value Var(const std::string& name) { return {Clause{name}}; }

  /// Removes clauses that are supersets of another clause (absorption).
  static Value Minimize(const Value& v) {
    Value out;
    for (const auto& c : v) {
      bool absorbed = false;
      for (const auto& d : v) {
        if (d.size() < c.size() &&
            std::includes(c.begin(), c.end(), d.begin(), d.end())) {
          absorbed = true;
          break;
        }
      }
      if (!absorbed) out.insert(c);
    }
    return out;
  }

  static Value Plus(const Value& a, const Value& b) {
    Value u = a;
    u.insert(b.begin(), b.end());
    return Minimize(u);
  }

  static Value Times(const Value& a, const Value& b) {
    Value u;
    for (const auto& ca : a) {
      for (const auto& cb : b) {
        Clause c = ca;
        c.insert(cb.begin(), cb.end());
        u.insert(std::move(c));
      }
    }
    return Minimize(u);
  }

  static bool Eq(const Value& a, const Value& b) { return a == b; }

  /// Natural order of the dioid: a ⊑ b iff a ⊕ b = b.
  static bool Leq(const Value& a, const Value& b) { return Eq(Plus(a, b), b); }

  /// b ⊖ a (Eq. 58): the clauses of b not already absorbed by a.
  static Value Minus(const Value& b, const Value& a) {
    Value out;
    for (const auto& c : b) {
      bool absorbed = false;
      for (const auto& d : a) {
        if (std::includes(c.begin(), c.end(), d.begin(), d.end())) {
          absorbed = true;
          break;
        }
      }
      if (!absorbed) out.insert(c);
    }
    return out;
  }

  static std::string ToString(const Value& v) {
    if (v.empty()) return "false";
    std::ostringstream os;
    bool firstClause = true;
    for (const auto& c : v) {
      if (!firstClause) os << " | ";
      firstClause = false;
      if (c.empty()) {
        os << "true";
        continue;
      }
      bool firstVar = true;
      for (const auto& x : c) {
        if (!firstVar) os << "&";
        firstVar = false;
        os << x;
      }
    }
    return os.str();
  }
};

}  // namespace datalogo

#endif  // DATALOGO_SEMIRING_PROVENANCE_H_
