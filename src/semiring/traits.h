// Concepts describing the algebraic structures of the paper (Section 2):
// pre-semirings, semirings, POPS (partially ordered pre-semirings), and
// dioids with a difference operator (Section 6).
//
// A structure is modeled as a stateless "tag" type S exposing:
//   using Value = ...;                 the carrier
//   static Value Zero();               additive identity 0
//   static Value One();                multiplicative identity 1
//   static Value Plus(a, b);           ⊕
//   static Value Times(a, b);          ⊗
//   static bool  Eq(a, b);             value equality
//   static std::string ToString(a);
//   static constexpr const char* kName;
// A POPS additionally exposes the partial order ⊑ and its minimum ⊥:
//   static Value Bottom();
//   static bool  Leq(a, b);            a ⊑ b
// and the classification flags used to select algorithms:
//   static constexpr bool kIsSemiring;        absorption 0 ⊗ x = 0 holds
//   static constexpr bool kNaturallyOrdered;  ⊑ is the natural order, ⊥ = 0
//   static constexpr bool kIdempotentPlus;    a ⊕ a = a
// A complete distributive dioid (Def. 6.2) additionally provides
//   static Value Minus(b, a);          b ⊖ a  (Eq. 58)
#ifndef DATALOGO_SEMIRING_TRAITS_H_
#define DATALOGO_SEMIRING_TRAITS_H_

#include <concepts>
#include <string>
#include <type_traits>

namespace datalogo {

/// A commutative pre-semiring (Def. 2.1) without an order.
template <typename S>
concept PreSemiring = requires(const typename S::Value& a,
                               const typename S::Value& b) {
  typename S::Value;
  { S::Zero() } -> std::convertible_to<typename S::Value>;
  { S::One() } -> std::convertible_to<typename S::Value>;
  { S::Plus(a, b) } -> std::convertible_to<typename S::Value>;
  { S::Times(a, b) } -> std::convertible_to<typename S::Value>;
  { S::Eq(a, b) } -> std::convertible_to<bool>;
  { S::ToString(a) } -> std::convertible_to<std::string>;
  { S::kName } -> std::convertible_to<const char*>;
};

/// A partially ordered pre-semiring (Def. 2.3) with minimum element ⊥.
template <typename P>
concept Pops = PreSemiring<P> && requires(const typename P::Value& a,
                                          const typename P::Value& b) {
  { P::Bottom() } -> std::convertible_to<typename P::Value>;
  { P::Leq(a, b) } -> std::convertible_to<bool>;
  { P::kIsSemiring } -> std::convertible_to<bool>;
  { P::kNaturallyOrdered } -> std::convertible_to<bool>;
  { P::kIdempotentPlus } -> std::convertible_to<bool>;
};

/// A POPS that is a naturally ordered semiring; the support-based relational
/// engine is sound exactly for these (⊥ = 0 and 0 is absorbing, so absent
/// tuples can never influence a result).
template <typename P>
concept NaturallyOrderedSemiring =
    Pops<P> && P::kIsSemiring && P::kNaturallyOrdered;

/// A POPS whose addition is idempotent (a dioid, Section 6.1).
template <typename P>
concept DioidPops = Pops<P> && P::kIdempotentPlus;

/// A complete distributive dioid (Def. 6.2) exposing the difference
/// operator b ⊖ a of Eq. (58); required by semi-naive evaluation.
template <typename P>
concept CompleteDistributiveDioid =
    DioidPops<P> && requires(const typename P::Value& a,
                             const typename P::Value& b) {
  { P::Minus(b, a) } -> std::convertible_to<typename P::Value>;
};

/// Opt-in SIMD value-plane support for a semiring. The primary template
/// is the universal opt-out: kVectorized = false keeps lifted, product,
/// provenance and every other structured-value semiring on the scalar
/// ⊗/⊕ path with zero behavior change. POD-value semirings specialize
/// this in semiring/simd_traits.h, exposing
///   static constexpr bool kVectorized;    // true for specializations
///   static constexpr bool kExactPlusFold; // ⊕ exactly associative?
///   static constexpr const char* kFamily; // journal name, e.g. "trop-f64"
///   static void GatherVals(col, rows, n, kernel, out);
///   static void TimesScalarVec(acc, vals, n, kernel, out);
///   static void PlusVec(a, b, n, kernel, out);
/// where every kernel is bit-identical, element for element, to the
/// definitional scalar loops over P::Times / P::Plus (the exactness
/// contract the engine's cross-kernel determinism pins rest on).
/// kExactPlusFold additionally licenses ⊕-FOLDING adjacent duplicate
/// head keys before the hash probe: true only when ⊕ is exactly
/// associative as an operation on bit patterns (min/max/or/saturating
/// add), false for floating-point sums, which fold exactly elementwise
/// but reassociate when chained.
template <typename P>
struct SemiringSimdTraits {
  static constexpr bool kVectorized = false;
};

/// Semirings whose value plane the batched join kernel may vectorize:
/// an opted-in POPS with a trivially copyable (raw-gatherable) carrier.
template <typename P>
concept VectorizedValuePlane =
    Pops<P> && SemiringSimdTraits<P>::kVectorized &&
    std::is_trivially_copyable_v<typename P::Value>;

/// Convenience: n-fold product a^k (a^0 = 1).
template <PreSemiring S>
typename S::Value Pow(const typename S::Value& a, int k) {
  typename S::Value result = S::One();
  for (int i = 0; i < k; ++i) result = S::Times(result, a);
  return result;
}

/// Convenience: sum of a list of values (empty sum = 0).
template <PreSemiring S>
typename S::Value Sum(const std::initializer_list<typename S::Value>& vs) {
  typename S::Value result = S::Zero();
  for (const auto& v : vs) result = S::Plus(result, v);
  return result;
}

}  // namespace datalogo

#endif  // DATALOGO_SEMIRING_TRAITS_H_
