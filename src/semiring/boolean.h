// The Boolean semiring B = ({0,1}, ∨, ∧, 0, 1) — Example 2.2. Standard
// relations (sets) are B-relations; datalog° over B is classic datalog.
#ifndef DATALOGO_SEMIRING_BOOLEAN_H_
#define DATALOGO_SEMIRING_BOOLEAN_H_

#include <string>

namespace datalogo {

/// The Boolean semiring. Naturally ordered (0 ⪯ 1), 0-stable, and a
/// complete distributive dioid with b ⊖ a = b ∧ ¬a (set difference).
struct BoolS {
  using Value = bool;
  static constexpr const char* kName = "B";
  static constexpr bool kIsSemiring = true;
  static constexpr bool kNaturallyOrdered = true;
  static constexpr bool kIdempotentPlus = true;

  static Value Zero() { return false; }
  static Value One() { return true; }
  static Value Bottom() { return false; }
  static Value Plus(Value a, Value b) { return a || b; }
  static Value Times(Value a, Value b) { return a && b; }
  static bool Eq(Value a, Value b) { return a == b; }
  static bool Leq(Value a, Value b) { return !a || b; }
  /// b ⊖ a per Eq. (58); the unique c ⊑ b with a ⊕ c = a ∨ b.
  static Value Minus(Value b, Value a) { return b && !a; }
  static std::string ToString(Value a) { return a ? "1" : "0"; }
};

}  // namespace datalogo

#endif  // DATALOGO_SEMIRING_BOOLEAN_H_
