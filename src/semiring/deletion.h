// Deletion support for incremental maintenance (Engine::Update).
//
// Deleting EDB facts removes the ⊕-mass of every derivation tree that
// used a deleted fact. A carrier supports EXACT deletion when that mass
// can be subtracted back out of a total: count-carrying semirings — ℕ
// (Example 2.2), the provenance polynomials N[X] (Sec. 2.4), and products
// of such carriers — keep one "how many / which derivations" unit per
// tree, so `total ⊖ removed` is ordinary (coefficient-wise) subtraction
// and over-deletion never occurs. Idempotent carriers (B, Trop, ...)
// collapse alternative derivations into one value; deletion there needs
// the over-delete/re-derive (DRed) route instead, which Engine::Update
// drives off CompleteDistributiveDioid.
//
// Retract is partial: saturated values (ℕ's ∞, saturated polynomial
// coefficients) have forgotten the exact count, so subtracting from or
// by them must fail — the engine then falls back to a full recompute.
#ifndef DATALOGO_SEMIRING_DELETION_H_
#define DATALOGO_SEMIRING_DELETION_H_

#include <utility>

#include "src/semiring/naturals.h"
#include "src/semiring/product.h"
#include "src/semiring/provenance.h"
#include "src/semiring/tropical.h"
#include "src/semiring/boolean.h"
#include "src/semiring/traits.h"

namespace datalogo {

/// Per-carrier deletion capabilities. The primary template declares no
/// capability; carriers opt in by specialization.
template <typename P>
struct DeletionTraits {
  /// True iff the carrier can subtract removed derivation mass exactly
  /// (and then provides `static bool Retract(total, removed, out)`).
  static constexpr bool kSupportsExactDeletion = false;
  /// True iff ⊕ is *selective* (always returns one of its arguments —
  /// min, max, or). On a selective dioid a tuple's value is witnessed by
  /// a single best derivation, so DRed can prune only tuples whose
  /// removed-mass ties or beats the stored optimum instead of the whole
  /// reachable cone. Must NOT be set for mixing ⊕ (union, sum).
  static constexpr bool kSelectivePlus = false;
};

/// ℕ∞: exact as long as no ∞ is involved (∞ has forgotten its count).
template <>
struct DeletionTraits<NatS> {
  static constexpr bool kSupportsExactDeletion = true;
  static constexpr bool kSelectivePlus = false;
  static bool Retract(NatS::Value total, NatS::Value removed,
                      NatS::Value* out) {
    if (total == NatS::kInf || removed == NatS::kInf) return false;
    if (removed > total) return false;  // over-removal: count went bad
    *out = total - removed;
    return true;
  }
};

/// N[X]: coefficient-wise ℕ retraction per monomial.
template <>
struct DeletionTraits<ProvPolyS> {
  static constexpr bool kSupportsExactDeletion = true;
  static constexpr bool kSelectivePlus = false;
  static bool Retract(const ProvPolyS::Value& total,
                      const ProvPolyS::Value& removed,
                      ProvPolyS::Value* out) {
    ProvPolyS::Value result = total;
    for (const auto& [mono, coeff] : removed) {
      auto it = result.find(mono);
      uint64_t have = (it == result.end()) ? 0 : it->second;
      uint64_t left = 0;
      if (!DeletionTraits<NatS>::Retract(have, coeff, &left)) return false;
      if (left == 0) {
        if (it != result.end()) result.erase(it);
      } else {
        it->second = left;
      }
    }
    *out = std::move(result);
    return true;
  }
};

/// Products retract componentwise when every component does. ⊕ of a
/// product mixes components, so it is never selective.
template <Pops P1, Pops P2>
  requires(DeletionTraits<P1>::kSupportsExactDeletion &&
           DeletionTraits<P2>::kSupportsExactDeletion)
struct DeletionTraits<ProductPops<P1, P2>> {
  static constexpr bool kSupportsExactDeletion = true;
  static constexpr bool kSelectivePlus = false;
  using Value = typename ProductPops<P1, P2>::Value;
  static bool Retract(const Value& total, const Value& removed, Value* out) {
    return DeletionTraits<P1>::Retract(total.first, removed.first,
                                       &out->first) &&
           DeletionTraits<P2>::Retract(total.second, removed.second,
                                       &out->second);
  }
};

/// Selective-⊕ dioids: or / min / max pick one argument exactly.
template <>
struct DeletionTraits<BoolS> {
  static constexpr bool kSupportsExactDeletion = false;
  static constexpr bool kSelectivePlus = true;
};
template <>
struct DeletionTraits<TropS> {
  static constexpr bool kSupportsExactDeletion = false;
  static constexpr bool kSelectivePlus = true;
};
template <>
struct DeletionTraits<TropNatS> {
  static constexpr bool kSupportsExactDeletion = false;
  static constexpr bool kSelectivePlus = true;
};
template <>
struct DeletionTraits<MaxPlusS> {
  static constexpr bool kSupportsExactDeletion = false;
  static constexpr bool kSelectivePlus = true;
};
template <>
struct DeletionTraits<ViterbiS> {
  static constexpr bool kSupportsExactDeletion = false;
  static constexpr bool kSelectivePlus = true;
};
template <>
struct DeletionTraits<FuzzyS> {
  static constexpr bool kSupportsExactDeletion = false;
  static constexpr bool kSelectivePlus = true;
};

/// Concept gate for Engine::Update's exact-deletion cascade.
template <typename P>
concept SupportsExactDeletion =
    Pops<P> && DeletionTraits<P>::kSupportsExactDeletion &&
    requires(const typename P::Value& a, typename P::Value* out) {
      { DeletionTraits<P>::Retract(a, a, out) } -> std::same_as<bool>;
    };

}  // namespace datalogo

#endif  // DATALOGO_SEMIRING_DELETION_H_
