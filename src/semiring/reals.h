// The reals (R, +, ×, 0, 1) — Example 2.2. R is a semiring but is NOT
// naturally ordered (x ⪯ y holds for every x, y), so it is not itself a
// POPS; the paper (and this library) uses it as the base pre-semiring of
// the lifted POPS R⊥ (Sec. 2.5.1) — see lifted.h. Lemma 2.8 proves no POPS
// extension of R can be a semiring.
#ifndef DATALOGO_SEMIRING_REALS_H_
#define DATALOGO_SEMIRING_REALS_H_

#include <cmath>
#include <sstream>
#include <string>

namespace datalogo {

/// (R, +, ×, 0, 1) as a pre-semiring (no order; use Lifted<RealS>).
struct RealS {
  using Value = double;
  static constexpr const char* kName = "R";

  static Value Zero() { return 0.0; }
  static Value One() { return 1.0; }
  static Value Plus(Value a, Value b) { return a + b; }
  static Value Times(Value a, Value b) { return a * b; }
  static bool Eq(Value a, Value b) { return a == b; }
  static std::string ToString(Value a) {
    std::ostringstream os;
    os << a;
    return os.str();
  }
};

/// (R+, +, ×, 0, 1): the non-negative reals, naturally ordered by ≤.
/// Used by the company-control example (Example 4.3). Not stable.
struct RealPlusS {
  using Value = double;
  static constexpr const char* kName = "R+";
  static constexpr bool kIsSemiring = true;
  static constexpr bool kNaturallyOrdered = true;
  static constexpr bool kIdempotentPlus = false;

  static Value Zero() { return 0.0; }
  static Value One() { return 1.0; }
  static Value Bottom() { return 0.0; }
  static Value Plus(Value a, Value b) { return a + b; }
  static Value Times(Value a, Value b) { return a * b; }
  static bool Eq(Value a, Value b) { return a == b; }
  static bool Leq(Value a, Value b) { return a <= b; }
  static std::string ToString(Value a) {
    std::ostringstream os;
    os << a;
    return os.str();
  }
};

}  // namespace datalogo

#endif  // DATALOGO_SEMIRING_REALS_H_
