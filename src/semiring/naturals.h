// The naturals (N, +, ×, 0, 1) — Example 2.2 — extended with ∞ so that
// divergent computations saturate instead of overflowing. Bag semantics
// uses N-relations. N is naturally ordered but NOT stable: the one-rule
// program x :- 1 + 2x diverges (Section 5 opening example).
#ifndef DATALOGO_SEMIRING_NATURALS_H_
#define DATALOGO_SEMIRING_NATURALS_H_

#include <cstdint>
#include <limits>
#include <string>

namespace datalogo {

/// N ∪ {∞} with saturating arithmetic; kInf represents ∞.
struct NatS {
  using Value = uint64_t;
  static constexpr Value kInf = std::numeric_limits<uint64_t>::max();
  static constexpr const char* kName = "N";
  static constexpr bool kIsSemiring = true;
  static constexpr bool kNaturallyOrdered = true;
  static constexpr bool kIdempotentPlus = false;

  static Value Zero() { return 0; }
  static Value One() { return 1; }
  static Value Bottom() { return 0; }

  static Value Plus(Value a, Value b) {
    if (a == kInf || b == kInf) return kInf;
    Value s = a + b;
    return (s < a) ? kInf : s;  // saturate on overflow
  }

  static Value Times(Value a, Value b) {
    if (a == 0 || b == 0) return 0;
    if (a == kInf || b == kInf) return kInf;
    if (a > kInf / b) return kInf;  // saturate on overflow
    return a * b;
  }

  static bool Eq(Value a, Value b) { return a == b; }
  static bool Leq(Value a, Value b) { return a <= b; }
  static std::string ToString(Value a) {
    return a == kInf ? "inf" : std::to_string(a);
  }
};

}  // namespace datalogo

#endif  // DATALOGO_SEMIRING_NATURALS_H_
