// Powerset POPS P(S) (Sec. 2.5.1 "Representing Incomplete Values"): all
// subsets of the base pre-semiring, ordered by inclusion, with ⊕/⊗ lifted
// elementwise (A ⊕ B = {a ⊕ b | a ∈ A, b ∈ B}). ⊥ = ∅ is undefined,
// ⊤ = S is contradiction, intermediate sets are degrees of incompleteness.
#ifndef DATALOGO_SEMIRING_POWERSET_H_
#define DATALOGO_SEMIRING_POWERSET_H_

#include <algorithm>
#include <set>
#include <sstream>
#include <string>

#include "src/semiring/traits.h"

namespace datalogo {

/// P(S) for a base pre-semiring whose Value is totally ordered (needed for
/// the std::set representation). Operations are elementwise images.
template <PreSemiring S>
  requires std::totally_ordered<typename S::Value>
struct Powerset {
  using Value = std::set<typename S::Value>;
  static constexpr const char* kName = "Powerset";
  static constexpr bool kIsSemiring = false;  // A ⊗ ∅ = ∅, not 0
  static constexpr bool kNaturallyOrdered = false;
  static constexpr bool kIdempotentPlus = false;

  static Value Zero() { return {S::Zero()}; }
  static Value One() { return {S::One()}; }
  static Value Bottom() { return {}; }

  static Value Plus(const Value& a, const Value& b) {
    Value out;
    for (const auto& x : a) {
      for (const auto& y : b) out.insert(S::Plus(x, y));
    }
    return out;
  }

  static Value Times(const Value& a, const Value& b) {
    Value out;
    for (const auto& x : a) {
      for (const auto& y : b) out.insert(S::Times(x, y));
    }
    return out;
  }

  static bool Eq(const Value& a, const Value& b) { return a == b; }

  /// Set inclusion.
  static bool Leq(const Value& a, const Value& b) {
    return std::includes(b.begin(), b.end(), a.begin(), a.end());
  }

  static std::string ToString(const Value& a) {
    std::ostringstream os;
    os << "{";
    bool first = true;
    for (const auto& x : a) {
      if (!first) os << ",";
      first = false;
      os << S::ToString(x);
    }
    os << "}";
    return os.str();
  }
};

}  // namespace datalogo

#endif  // DATALOGO_SEMIRING_POWERSET_H_
