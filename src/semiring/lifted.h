// Lifted POPS S⊥ (Sec. 2.5.1 "Representing Undefined"): adjoin a bottom
// element ⊥ to a pre-semiring with the flat order (x ⊑ y iff x = ⊥ or
// x = y) and strict operations x ⊕ ⊥ = x ⊗ ⊥ = ⊥. A lifted POPS is never
// a semiring (0 ⊗ ⊥ = ⊥ ≠ 0); its core semiring S⊥+⊥ is trivial ({⊥}),
// which by Corollary 5.17 makes every datalog° program over it converge.
// R⊥ (lifted reals) drives the bill-of-material example (Example 4.2).
#ifndef DATALOGO_SEMIRING_LIFTED_H_
#define DATALOGO_SEMIRING_LIFTED_H_

#include <optional>
#include <string>

#include "src/semiring/traits.h"

namespace datalogo {

/// S⊥ for a base pre-semiring S; std::nullopt encodes ⊥.
template <PreSemiring S>
struct Lifted {
  using Value = std::optional<typename S::Value>;
  static constexpr const char* kName = "Lifted";
  static constexpr bool kIsSemiring = false;      // 0 ⊗ ⊥ = ⊥ ≠ 0
  static constexpr bool kNaturallyOrdered = false;
  static constexpr bool kIdempotentPlus = false;

  static Value Zero() { return typename S::Value(S::Zero()); }
  static Value One() { return typename S::Value(S::One()); }
  static Value Bottom() { return std::nullopt; }
  static Value Lift(typename S::Value v) { return Value(std::move(v)); }

  static Value Plus(const Value& a, const Value& b) {
    if (!a || !b) return std::nullopt;  // strict addition
    return Value(S::Plus(*a, *b));
  }

  static Value Times(const Value& a, const Value& b) {
    if (!a || !b) return std::nullopt;  // strict multiplication
    return Value(S::Times(*a, *b));
  }

  static bool Eq(const Value& a, const Value& b) {
    if (!a || !b) return !a && !b;
    return S::Eq(*a, *b);
  }

  /// Flat order: ⊥ ⊑ x, and x ⊑ x.
  static bool Leq(const Value& a, const Value& b) {
    if (!a) return true;
    return Eq(a, b);
  }

  static std::string ToString(const Value& a) {
    return a ? S::ToString(*a) : "bot";
  }
};

}  // namespace datalogo

#endif  // DATALOGO_SEMIRING_LIFTED_H_
