// Trop+_{≤η} (Example 2.10): *sets* of path lengths within η of the
// minimum. Stable but NOT uniformly stable (Proposition 5.4): the element
// {x₀} has stability index ⌈η/x₀⌉, unbounded as x₀ → 0.
//
// η is a runtime parameter shared by all values of the instantiation; use
// TropEtaS::ScopedEta in tests to set it for a scope.
#ifndef DATALOGO_SEMIRING_TROP_ETA_H_
#define DATALOGO_SEMIRING_TROP_ETA_H_

#include <algorithm>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/check.h"

namespace datalogo {

/// Trop+_{≤η} = (P_{≤η}(R+ ∪ {∞}), ⊕_{≤η}, ⊗_{≤η}, {∞}, {0}).
/// Values are sorted, duplicate-free vectors with max ≤ min + η.
struct TropEtaS {
  using Value = std::vector<double>;
  static constexpr const char* kName = "Trop+_eta";
  static constexpr bool kIsSemiring = true;
  static constexpr bool kNaturallyOrdered = true;
  static constexpr bool kIdempotentPlus = true;  // sets: a ∪ a = a

  /// The shared slack parameter η ≥ 0.
  static inline double eta = 0.0;

  /// RAII helper: sets η for the current scope, restoring it on exit.
  class ScopedEta {
   public:
    explicit ScopedEta(double e) : saved_(eta) { eta = e; }
    ~ScopedEta() { eta = saved_; }
    ScopedEta(const ScopedEta&) = delete;
    ScopedEta& operator=(const ScopedEta&) = delete;

   private:
    double saved_;
  };

  static double Inf() { return std::numeric_limits<double>::infinity(); }
  static Value Zero() { return {Inf()}; }
  static Value One() { return {0.0}; }
  static Value Bottom() { return Zero(); }
  static Value FromScalar(double x) { return {x}; }

  /// min_{≤η}: sort, dedupe, and keep only elements ≤ min + η.
  static Value Normalize(Value v) {
    DLO_CHECK(!v.empty());
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
    const double cutoff = v.front() + eta;
    while (v.size() > 1 && v.back() > cutoff) v.pop_back();
    return v;
  }

  static Value Plus(const Value& a, const Value& b) {
    Value u = a;
    u.insert(u.end(), b.begin(), b.end());
    return Normalize(std::move(u));
  }

  static Value Times(const Value& a, const Value& b) {
    Value u;
    u.reserve(a.size() * b.size());
    for (double x : a) {
      for (double y : b) u.push_back(x + y);
    }
    return Normalize(std::move(u));
  }

  static bool Eq(const Value& a, const Value& b) { return a == b; }

  /// Natural order: a ⪯ b iff b = min_{≤η}(a ∪ c) for some c, i.e.
  /// min(b) ≤ min(a) and every element of a within η of min(b) is in b.
  static bool Leq(const Value& a, const Value& b) {
    if (!(b.front() <= a.front())) return false;
    const double cutoff = b.front() + eta;
    for (double x : a) {
      if (x > cutoff) break;  // a is sorted
      if (!std::binary_search(b.begin(), b.end(), x)) return false;
    }
    return true;
  }

  static std::string ToString(const Value& a) {
    std::ostringstream os;
    os << "{";
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (i) os << ",";
      if (a[i] == Inf()) {
        os << "inf";
      } else {
        os << a[i];
      }
    }
    os << "}";
    return os.str();
  }
};

}  // namespace datalogo

#endif  // DATALOGO_SEMIRING_TROP_ETA_H_
