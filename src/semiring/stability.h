// Stability of semiring elements (Definition 5.1): u is p-stable when
// u^(p) = u^(p+1), where u^(p) = 1 ⊕ u ⊕ u² ⊕ … ⊕ u^p. A semiring is
// p-stable (uniformly stable) when every element is, and stable when every
// element is p-stable for some element-dependent p. Stability of the core
// semiring P+⊥ characterizes convergence of datalog° (Theorem 1.2).
#ifndef DATALOGO_SEMIRING_STABILITY_H_
#define DATALOGO_SEMIRING_STABILITY_H_

#include <optional>

#include "src/semiring/traits.h"

namespace datalogo {

/// u^(p) = 1 ⊕ u ⊕ … ⊕ u^p (Eq. 30).
template <PreSemiring S>
typename S::Value StarTruncated(const typename S::Value& u, int p) {
  typename S::Value sum = S::One();
  typename S::Value pow = S::One();
  for (int i = 1; i <= p; ++i) {
    pow = S::Times(pow, u);
    sum = S::Plus(sum, pow);
  }
  return sum;
}

/// Least p ≤ max_p with u^(p) = u^(p+1), or nullopt if none (element not
/// observed to be stable within the budget).
template <PreSemiring S>
std::optional<int> ElementStabilityIndex(const typename S::Value& u,
                                         int max_p) {
  typename S::Value sum = S::One();  // u^(0)
  typename S::Value pow = S::One();
  for (int p = 0; p <= max_p; ++p) {
    typename S::Value next_pow = S::Times(pow, u);
    typename S::Value next_sum = S::Plus(sum, next_pow);  // u^(p+1)
    if (S::Eq(sum, next_sum)) return p;
    sum = next_sum;
    pow = next_pow;
  }
  return std::nullopt;
}

/// u* for a p-stable element: u^(p) (the closure used by
/// Floyd–Warshall–Kleene and LinearLFP, Sec. 5.5). CHECK-fails via the
/// caller if u is not actually stable within max_p; returns u^(max_p).
template <PreSemiring S>
typename S::Value StarOfStable(const typename S::Value& u, int p) {
  return StarTruncated<S>(u, p);
}

/// True if every value in [first,last) is p-stable for the given p.
template <PreSemiring S, typename It>
bool AllPStable(It first, It last, int p) {
  for (It it = first; it != last; ++it) {
    auto idx = ElementStabilityIndex<S>(*it, p);
    if (!idx.has_value()) return false;
  }
  return true;
}

}  // namespace datalogo

#endif  // DATALOGO_SEMIRING_STABILITY_H_
