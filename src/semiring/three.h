// The POPS THREE (Sec. 2.5.2): Kleene's three-valued logic {⊥, 0, 1} with
// ∨/∧ taken over the *truth* order 0 ≤t ⊥ ≤t 1, partially ordered by the
// *knowledge* order ⊥ ≤k 0, ⊥ ≤k 1. THREE is a semiring (∧ absorbs with 0,
// including 0 ∧ ⊥ = 0 — unlike the lifted Booleans B⊥). Together with the
// monotone-in-≤k `Not` function it expresses datalog with negation under
// Fitting's three-valued semantics (Section 7).
#ifndef DATALOGO_SEMIRING_THREE_H_
#define DATALOGO_SEMIRING_THREE_H_

#include <cstdint>
#include <string>

namespace datalogo {

/// Truth values of THREE; numeric order is the truth order 0 ≤t ⊥ ≤t 1.
enum class Kleene : uint8_t { kFalse = 0, kBot = 1, kTrue = 2 };

/// THREE = ({⊥,0,1}, ∨, ∧, 0, 1, ≤k).
struct ThreeS {
  using Value = Kleene;
  static constexpr const char* kName = "THREE";
  static constexpr bool kIsSemiring = true;  // 0 ∧ x = 0 for all x incl. ⊥
  // ∨ is idempotent, but THREE's POPS order is the knowledge order, not the
  // natural order of ∨, so semi-naive machinery must not be applied.
  static constexpr bool kNaturallyOrdered = false;
  static constexpr bool kIdempotentPlus = true;

  static Value Zero() { return Kleene::kFalse; }
  static Value One() { return Kleene::kTrue; }
  static Value Bottom() { return Kleene::kBot; }

  /// ∨ = max over the truth order.
  static Value Plus(Value a, Value b) { return a >= b ? a : b; }
  /// ∧ = min over the truth order.
  static Value Times(Value a, Value b) { return a <= b ? a : b; }

  static bool Eq(Value a, Value b) { return a == b; }

  /// Knowledge order: ⊥ ≤k 0, ⊥ ≤k 1; 0 and 1 incomparable.
  static bool Leq(Value a, Value b) {
    return a == Kleene::kBot || a == b;
  }

  /// Fitting's negation: not(0)=1, not(1)=0, not(⊥)=⊥ — monotone in ≤k.
  static Value Not(Value a) {
    switch (a) {
      case Kleene::kFalse:
        return Kleene::kTrue;
      case Kleene::kTrue:
        return Kleene::kFalse;
      case Kleene::kBot:
        return Kleene::kBot;
    }
    return Kleene::kBot;
  }

  static std::string ToString(Value a) {
    switch (a) {
      case Kleene::kFalse:
        return "0";
      case Kleene::kTrue:
        return "1";
      case Kleene::kBot:
        return "bot";
    }
    return "?";
  }
};

}  // namespace datalogo

#endif  // DATALOGO_SEMIRING_THREE_H_
