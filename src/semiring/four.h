// Belnap's bilattice FOUR (Sec. 7.3, Fig. 5): truth values {⊥, 0, 1, ⊤}
// carrying both a truth order (0 ≤t ⊥,⊤ ≤t 1 with ⊥,⊤ incomparable) and a
// knowledge order (⊥ ≤k 0,1 ≤k ⊤ with 0,1 incomparable). The semiring
// operations ∨/∧ are lub/glb of the truth order; the POPS order is the
// knowledge order. Fitting showed ⊤ never appears in the ≤k-least fixpoint
// ([21] Prop. 7.1) — tested in tests/four_test.cc.
#ifndef DATALOGO_SEMIRING_FOUR_H_
#define DATALOGO_SEMIRING_FOUR_H_

#include <cstdint>
#include <string>

namespace datalogo {

/// The four Belnap values.
enum class Belnap : uint8_t { kBot = 0, kFalse = 1, kTrue = 2, kTop = 3 };

/// FOUR = ({⊥,0,1,⊤}, ∨t, ∧t, 0, 1, ≤k).
struct FourS {
  using Value = Belnap;
  static constexpr const char* kName = "FOUR";
  static constexpr bool kIsSemiring = true;
  static constexpr bool kNaturallyOrdered = false;
  static constexpr bool kIdempotentPlus = true;

  static Value Zero() { return Belnap::kFalse; }
  static Value One() { return Belnap::kTrue; }
  static Value Bottom() { return Belnap::kBot; }
  static Value Top() { return Belnap::kTop; }

  // Encode the truth order as an integer "truth degree" for 0 and 1 and
  // handle the middle layer {⊥, ⊤} explicitly.

  /// lub in the truth order.
  static Value Plus(Value a, Value b) {
    if (a == b) return a;
    if (a == Belnap::kFalse) return b;
    if (b == Belnap::kFalse) return a;
    if (a == Belnap::kTrue || b == Belnap::kTrue) return Belnap::kTrue;
    // {⊥, ⊤} with a ≠ b: lub_t(⊥, ⊤) = 1.
    return Belnap::kTrue;
  }

  /// glb in the truth order.
  static Value Times(Value a, Value b) {
    if (a == b) return a;
    if (a == Belnap::kTrue) return b;
    if (b == Belnap::kTrue) return a;
    if (a == Belnap::kFalse || b == Belnap::kFalse) return Belnap::kFalse;
    // {⊥, ⊤} with a ≠ b: glb_t(⊥, ⊤) = 0.
    return Belnap::kFalse;
  }

  static bool Eq(Value a, Value b) { return a == b; }

  /// Knowledge order: ⊥ ≤k {0,1} ≤k ⊤.
  static bool Leq(Value a, Value b) {
    if (a == b) return true;
    if (a == Belnap::kBot) return true;
    if (b == Belnap::kTop) return true;
    return false;
  }

  /// Negation flips 0/1, fixes ⊥ and ⊤; monotone in ≤k.
  static Value Not(Value a) {
    switch (a) {
      case Belnap::kFalse:
        return Belnap::kTrue;
      case Belnap::kTrue:
        return Belnap::kFalse;
      default:
        return a;
    }
  }

  static std::string ToString(Value a) {
    switch (a) {
      case Belnap::kBot:
        return "bot";
      case Belnap::kFalse:
        return "0";
      case Belnap::kTrue:
        return "1";
      case Belnap::kTop:
        return "top";
    }
    return "?";
  }
};

}  // namespace datalogo

#endif  // DATALOGO_SEMIRING_FOUR_H_
