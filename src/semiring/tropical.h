// The tropical semiring Trop+ = (R+ ∪ {∞}, min, +, ∞, 0) — Examples 1.1 and
// 2.2 — plus the max-plus ("arctic"), Viterbi and fuzzy dioids. Trop+ is
// 0-stable (min(0, x) = 0) and a complete distributive dioid whose ⊖ is
// Eq. (6); it powers APSP/SSSP. Max-plus is an idempotent dioid that is NOT
// stable (longest paths diverge on cyclic graphs), used as a divergence
// specimen in the tests.
#ifndef DATALOGO_SEMIRING_TROPICAL_H_
#define DATALOGO_SEMIRING_TROPICAL_H_

#include <algorithm>
#include <limits>
#include <sstream>
#include <string>

namespace datalogo {

/// Trop+ = (R+ ∪ {∞}, min, +, ∞, 0). The POPS order is the *reverse*
/// numeric order: a ⊑ b iff b ≤ a (Example 2.2).
struct TropS {
  using Value = double;
  static constexpr const char* kName = "Trop+";
  static constexpr bool kIsSemiring = true;
  static constexpr bool kNaturallyOrdered = true;
  static constexpr bool kIdempotentPlus = true;

  static Value Inf() { return std::numeric_limits<double>::infinity(); }
  static Value Zero() { return Inf(); }
  static Value One() { return 0.0; }
  static Value Bottom() { return Inf(); }
  static Value Plus(Value a, Value b) { return std::min(a, b); }
  static Value Times(Value a, Value b) { return a + b; }
  static bool Eq(Value a, Value b) { return a == b; }
  static bool Leq(Value a, Value b) { return b <= a; }
  /// Eq. (6): v ⊖ u = v if v < u, else ∞.
  static Value Minus(Value v, Value u) { return v < u ? v : Inf(); }
  static std::string ToString(Value a) {
    if (a == Inf()) return "inf";
    std::ostringstream os;
    os << a;
    return os.str();
  }
};

/// Min-plus over N ∪ {∞}: hop counts / BFS distances. Same laws as Trop+.
struct TropNatS {
  using Value = uint64_t;
  static constexpr Value kInf = std::numeric_limits<uint64_t>::max();
  static constexpr const char* kName = "TropN";
  static constexpr bool kIsSemiring = true;
  static constexpr bool kNaturallyOrdered = true;
  static constexpr bool kIdempotentPlus = true;

  static Value Zero() { return kInf; }
  static Value One() { return 0; }
  static Value Bottom() { return kInf; }
  static Value Plus(Value a, Value b) { return std::min(a, b); }
  static Value Times(Value a, Value b) {
    if (a == kInf || b == kInf) return kInf;
    Value s = a + b;
    return s < a ? kInf : s;
  }
  static bool Eq(Value a, Value b) { return a == b; }
  static bool Leq(Value a, Value b) { return b <= a; }
  static Value Minus(Value v, Value u) { return v < u ? v : kInf; }
  static std::string ToString(Value a) {
    return a == kInf ? "inf" : std::to_string(a);
  }
};

/// Max-plus (arctic) dioid (R ∪ {−∞}, max, +, −∞, 0). Idempotent and
/// naturally ordered but NOT stable: any c > 0 has unbounded powers.
struct MaxPlusS {
  using Value = double;
  static constexpr const char* kName = "MaxPlus";
  static constexpr bool kIsSemiring = true;
  static constexpr bool kNaturallyOrdered = true;
  static constexpr bool kIdempotentPlus = true;

  static Value NegInf() { return -std::numeric_limits<double>::infinity(); }
  static Value Zero() { return NegInf(); }
  static Value One() { return 0.0; }
  static Value Bottom() { return NegInf(); }
  static Value Plus(Value a, Value b) { return std::max(a, b); }
  static Value Times(Value a, Value b) {
    if (a == NegInf() || b == NegInf()) return NegInf();
    return a + b;
  }
  static bool Eq(Value a, Value b) { return a == b; }
  static bool Leq(Value a, Value b) { return a <= b; }
  static Value Minus(Value v, Value u) { return v > u ? v : NegInf(); }
  static std::string ToString(Value a) {
    if (a == NegInf()) return "-inf";
    std::ostringstream os;
    os << a;
    return os.str();
  }
};

/// The Viterbi dioid ([0,1], max, ×, 0, 1): most-probable paths. 0-stable.
struct ViterbiS {
  using Value = double;
  static constexpr const char* kName = "Viterbi";
  static constexpr bool kIsSemiring = true;
  static constexpr bool kNaturallyOrdered = true;
  static constexpr bool kIdempotentPlus = true;

  static Value Zero() { return 0.0; }
  static Value One() { return 1.0; }
  static Value Bottom() { return 0.0; }
  static Value Plus(Value a, Value b) { return std::max(a, b); }
  static Value Times(Value a, Value b) { return a * b; }
  static bool Eq(Value a, Value b) { return a == b; }
  static bool Leq(Value a, Value b) { return a <= b; }
  static Value Minus(Value v, Value u) { return v > u ? v : 0.0; }
  static std::string ToString(Value a) {
    std::ostringstream os;
    os << a;
    return os.str();
  }
};

/// The fuzzy dioid ([0,1], max, min, 0, 1): widest-bottleneck paths. A
/// distributive lattice, hence 0-stable (Sec. 5.1 discussion).
struct FuzzyS {
  using Value = double;
  static constexpr const char* kName = "Fuzzy";
  static constexpr bool kIsSemiring = true;
  static constexpr bool kNaturallyOrdered = true;
  static constexpr bool kIdempotentPlus = true;

  static Value Zero() { return 0.0; }
  static Value One() { return 1.0; }
  static Value Bottom() { return 0.0; }
  static Value Plus(Value a, Value b) { return std::max(a, b); }
  static Value Times(Value a, Value b) { return std::min(a, b); }
  static bool Eq(Value a, Value b) { return a == b; }
  static bool Leq(Value a, Value b) { return a <= b; }
  static Value Minus(Value v, Value u) { return v > u ? v : 0.0; }
  static std::string ToString(Value a) {
    std::ostringstream os;
    os << a;
    return os.str();
  }
};

}  // namespace datalogo

#endif  // DATALOGO_SEMIRING_TROPICAL_H_
