// SemiringSimdTraits specializations: the vectorized value plane for the
// POD-carrier semirings. Each specialization maps the semiring's ⊗ (with
// a loop-invariant left accumulator) and elementwise ⊕ onto the typed
// kernels in core/simd.h, plus a raw gather over its value column. The
// exactness contract (traits.h): every kernel must equal the definitional
// scalar loops TimesScalarVecRef / PlusVecRef below bit-for-bit on every
// element — differential-tested in simd_value_test over all tail lengths.
//
// Which semirings opt in and why the mapping is exact:
//  * Trop+ (f64 min-plus): ⊗ is IEEE double +, ⊕ is std::min — the same
//    hardware operations per lane, tie order preserved by operand swap.
//  * TropN (u64 min-plus): ⊗ is saturating add (wrap + clamp reproduces
//    the kInf cases exactly), ⊕ is u64 min.
//  * B (bool): ⊗ with a fixed accumulator is copy-or-clear, ⊕ is byte or.
//  * N (u64 counting): ⊕ is saturating add; ⊗ is saturating multiply,
//    kept as a batched scalar loop with the accumulator's zero/∞/overflow
//    threshold hoisted out (no portable u64 vector multiply exists) —
//    still bit-identical to P::Times per element.
//  * R+ (f64 sum-product): ⊗/⊕ are IEEE ×/+ per lane; exact elementwise,
//    but kExactPlusFold is FALSE — folding float sums reassociates.
// Everything else (lifted, product, provenance, …) keeps the primary
// template's kVectorized = false and never reaches these paths.
#ifndef DATALOGO_SEMIRING_SIMD_TRAITS_H_
#define DATALOGO_SEMIRING_SIMD_TRAITS_H_

#include <cstdint>
#include <cstring>

#include "src/core/simd.h"
#include "src/semiring/boolean.h"
#include "src/semiring/naturals.h"
#include "src/semiring/reals.h"
#include "src/semiring/traits.h"
#include "src/semiring/tropical.h"

namespace datalogo {

/// The definitional scalar references: what every trait kernel must
/// reproduce bit-for-bit. These are the differential-test anchors; the
/// engine never calls them (the trait kernels' kScalar branches are the
/// same loops, expressed over the concrete carrier).
template <typename P>
void TimesScalarVecRef(const typename P::Value& acc,
                       const typename P::Value* vals, uint32_t n,
                       typename P::Value* out) {
  for (uint32_t i = 0; i < n; ++i) out[i] = P::Times(acc, vals[i]);
}
template <typename P>
void PlusVecRef(const typename P::Value* a, const typename P::Value* b,
                uint32_t n, typename P::Value* out) {
  for (uint32_t i = 0; i < n; ++i) out[i] = P::Plus(a[i], b[i]);
}

template <>
struct SemiringSimdTraits<TropS> {
  static constexpr bool kVectorized = true;
  static constexpr bool kExactPlusFold = true;  // min is associative
  static constexpr const char* kFamily = "trop-f64";
  static void GatherVals(const double* col, const uint32_t* rows, uint32_t n,
                         ScanKernel k, double* out) {
    simd::GatherF64(col, rows, n, k, out);
  }
  static void TimesScalarVec(double acc, const double* vals, uint32_t n,
                             ScanKernel k, double* out) {
    simd::AddScalarF64(acc, vals, n, k, out);
  }
  static void PlusVec(const double* a, const double* b, uint32_t n,
                      ScanKernel k, double* out) {
    simd::MinF64(a, b, n, k, out);
  }
};

template <>
struct SemiringSimdTraits<TropNatS> {
  static constexpr bool kVectorized = true;
  static constexpr bool kExactPlusFold = true;  // u64 min is associative
  static constexpr const char* kFamily = "tropn-u64";
  static void GatherVals(const uint64_t* col, const uint32_t* rows,
                         uint32_t n, ScanKernel k, uint64_t* out) {
    (void)k;  // no portable u64 gather below AVX-512; pipelined loads
    for (uint32_t i = 0; i + 4 <= n; i += 4) {
      out[i + 0] = col[rows[i + 0]];
      out[i + 1] = col[rows[i + 1]];
      out[i + 2] = col[rows[i + 2]];
      out[i + 3] = col[rows[i + 3]];
    }
    for (uint32_t i = n & ~3u; i < n; ++i) out[i] = col[rows[i]];
  }
  static void TimesScalarVec(uint64_t acc, const uint64_t* vals, uint32_t n,
                             ScanKernel k, uint64_t* out) {
    simd::SatAddScalarU64(acc, vals, n, k, out);
  }
  static void PlusVec(const uint64_t* a, const uint64_t* b, uint32_t n,
                      ScanKernel k, uint64_t* out) {
    simd::MinU64(a, b, n, k, out);
  }
};

template <>
struct SemiringSimdTraits<BoolS> {
  static constexpr bool kVectorized = true;
  static constexpr bool kExactPlusFold = true;  // ∨ is associative
  static constexpr const char* kFamily = "bool-u8";
  static void GatherVals(const bool* col, const uint32_t* rows, uint32_t n,
                         ScanKernel k, bool* out) {
    (void)k;
    for (uint32_t i = 0; i < n; ++i) out[i] = col[rows[i]];
  }
  static void TimesScalarVec(bool acc, const bool* vals, uint32_t n,
                             ScanKernel k, bool* out) {
    // true ∧ v = v; false ∧ v = false — copy or clear, kernel-free.
    (void)k;
    if (acc) {
      std::memcpy(out, vals, n);
    } else {
      std::memset(out, 0, n);
    }
  }
  static void PlusVec(const bool* a, const bool* b, uint32_t n, ScanKernel k,
                      bool* out) {
    simd::OrU8(reinterpret_cast<const uint8_t*>(a),
               reinterpret_cast<const uint8_t*>(b), n, k,
               reinterpret_cast<uint8_t*>(out));
  }
};

template <>
struct SemiringSimdTraits<NatS> {
  static constexpr bool kVectorized = true;
  // Saturating add is exactly associative: any chain that overflows
  // saturates to kInf in every association, and kInf absorbs.
  static constexpr bool kExactPlusFold = true;
  static constexpr const char* kFamily = "nat-u64";
  static void GatherVals(const uint64_t* col, const uint32_t* rows,
                         uint32_t n, ScanKernel k, uint64_t* out) {
    SemiringSimdTraits<TropNatS>::GatherVals(col, rows, n, k, out);
  }
  static void TimesScalarVec(uint64_t acc, const uint64_t* vals, uint32_t n,
                             ScanKernel k, uint64_t* out) {
    (void)k;  // no u64 vector multiply; batched scalar with hoisted acc
    constexpr uint64_t kInf = NatS::kInf;
    if (acc == 0) {
      for (uint32_t i = 0; i < n; ++i) out[i] = 0;
      return;
    }
    if (acc == kInf) {
      for (uint32_t i = 0; i < n; ++i) out[i] = vals[i] == 0 ? 0 : kInf;
      return;
    }
    const uint64_t thresh = kInf / acc;  // v > thresh ⇒ acc·v saturates
    for (uint32_t i = 0; i < n; ++i) {
      const uint64_t v = vals[i];
      out[i] = v == 0 ? 0 : (v > thresh ? kInf : acc * v);
    }
  }
  static void PlusVec(const uint64_t* a, const uint64_t* b, uint32_t n,
                      ScanKernel k, uint64_t* out) {
    simd::SatAddU64(a, b, n, k, out);
  }
};

template <>
struct SemiringSimdTraits<RealPlusS> {
  static constexpr bool kVectorized = true;
  // Elementwise ⊗/⊕ are exact, but float sums reassociate when folded:
  // the engine must keep one Merge per emitted row for R+.
  static constexpr bool kExactPlusFold = false;
  static constexpr const char* kFamily = "real-f64";
  static void GatherVals(const double* col, const uint32_t* rows, uint32_t n,
                         ScanKernel k, double* out) {
    simd::GatherF64(col, rows, n, k, out);
  }
  static void TimesScalarVec(double acc, const double* vals, uint32_t n,
                             ScanKernel k, double* out) {
    simd::MulScalarF64(acc, vals, n, k, out);
  }
  static void PlusVec(const double* a, const double* b, uint32_t n,
                      ScanKernel k, double* out) {
    simd::AddF64(a, b, n, k, out);
  }
};

}  // namespace datalogo

#endif  // DATALOGO_SEMIRING_SIMD_TRAITS_H_
