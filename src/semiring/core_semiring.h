// The core semiring P+⊥ of a POPS (Proposition 2.4): the image of
// x ↦ x ⊕ ⊥, which is a semiring whenever ⊗ is strict. Theorem 1.2 ties
// convergence of every datalog° program over P to stability of P+⊥.
#ifndef DATALOGO_SEMIRING_CORE_SEMIRING_H_
#define DATALOGO_SEMIRING_CORE_SEMIRING_H_

#include <string>

#include "src/semiring/traits.h"

namespace datalogo {

/// P+⊥ as a semiring tag type; values are P-values of the form x ⊕ ⊥.
/// Inject() maps a P-value into the core; Zero()/One() are 0⊕⊥ and 1⊕⊥.
template <Pops P>
struct CoreSemiring {
  using Value = typename P::Value;
  static constexpr const char* kName = "Core";
  static constexpr bool kIsSemiring = true;  // Proposition 2.4
  static constexpr bool kNaturallyOrdered = P::kNaturallyOrdered;
  static constexpr bool kIdempotentPlus = P::kIdempotentPlus;

  static Value Inject(const Value& x) { return P::Plus(x, P::Bottom()); }
  static Value Zero() { return Inject(P::Zero()); }
  static Value One() { return Inject(P::One()); }
  static Value Bottom() { return Zero(); }
  static Value Plus(const Value& a, const Value& b) { return P::Plus(a, b); }
  static Value Times(const Value& a, const Value& b) { return P::Times(a, b); }
  static bool Eq(const Value& a, const Value& b) { return P::Eq(a, b); }
  static bool Leq(const Value& a, const Value& b) { return P::Leq(a, b); }
  static std::string ToString(const Value& a) { return P::ToString(a); }
};

}  // namespace datalogo

#endif  // DATALOGO_SEMIRING_CORE_SEMIRING_H_
