// Cartesian product of two POPS (Example 2.11): operations and order are
// componentwise, ⊥ = (⊥₁, ⊥₂). Used to exhibit a non-trivial core
// semiring: for S a naturally ordered semiring and P strict-addition POPS,
// (S × P)+⊥ ≅ S × {⊥}.
#ifndef DATALOGO_SEMIRING_PRODUCT_H_
#define DATALOGO_SEMIRING_PRODUCT_H_

#include <string>
#include <utility>

#include "src/semiring/traits.h"

namespace datalogo {

/// P1 × P2 with componentwise structure.
template <Pops P1, Pops P2>
struct ProductPops {
  using Value = std::pair<typename P1::Value, typename P2::Value>;
  static constexpr const char* kName = "Product";
  static constexpr bool kIsSemiring = P1::kIsSemiring && P2::kIsSemiring;
  static constexpr bool kNaturallyOrdered =
      P1::kNaturallyOrdered && P2::kNaturallyOrdered;
  static constexpr bool kIdempotentPlus =
      P1::kIdempotentPlus && P2::kIdempotentPlus;

  static Value Zero() { return {P1::Zero(), P2::Zero()}; }
  static Value One() { return {P1::One(), P2::One()}; }
  static Value Bottom() { return {P1::Bottom(), P2::Bottom()}; }

  static Value Plus(const Value& a, const Value& b) {
    return {P1::Plus(a.first, b.first), P2::Plus(a.second, b.second)};
  }
  static Value Times(const Value& a, const Value& b) {
    return {P1::Times(a.first, b.first), P2::Times(a.second, b.second)};
  }
  static bool Eq(const Value& a, const Value& b) {
    return P1::Eq(a.first, b.first) && P2::Eq(a.second, b.second);
  }
  static bool Leq(const Value& a, const Value& b) {
    return P1::Leq(a.first, b.first) && P2::Leq(a.second, b.second);
  }
  static std::string ToString(const Value& a) {
    return "(" + P1::ToString(a.first) + "," + P2::ToString(a.second) + ")";
  }
};

}  // namespace datalogo

#endif  // DATALOGO_SEMIRING_PRODUCT_H_
