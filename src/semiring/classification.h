// Compile-time stability classification of the library's POPS — the
// algebraic inputs to Theorem 1.2. The class describes the CORE semiring
// P+⊥ (Prop. 2.4), which is what convergence depends on:
//   * kUniformlyStable(p): every element is p-stable  → cases (iv)/(v)
//   * kStable: stable, but no uniform p               → case (iii)
//   * kUnstable: some element is not stable           → may diverge
#ifndef DATALOGO_SEMIRING_CLASSIFICATION_H_
#define DATALOGO_SEMIRING_CLASSIFICATION_H_

#include "src/semiring/boolean.h"
#include "src/semiring/completed.h"
#include "src/semiring/four.h"
#include "src/semiring/lifted.h"
#include "src/semiring/naturals.h"
#include "src/semiring/provenance.h"
#include "src/semiring/reals.h"
#include "src/semiring/three.h"
#include "src/semiring/traits.h"
#include "src/semiring/trop_eta.h"
#include "src/semiring/trop_p.h"
#include "src/semiring/tropical.h"

namespace datalogo {

/// How stable the core semiring P+⊥ is.
enum class StabilityClass {
  kUniformlyStable,  ///< p-stable for the p in `core_stability_p`
  kStable,           ///< every element stable, no uniform p (Trop+_eta)
  kUnstable,         ///< has non-stable elements (N, MaxPlus, N[X])
};

/// Default: unknown POPS are conservatively unstable.
template <Pops P>
struct CoreStability {
  static constexpr StabilityClass kClass = StabilityClass::kUnstable;
  static constexpr int kP = -1;
};

template <>
struct CoreStability<BoolS> {
  static constexpr StabilityClass kClass = StabilityClass::kUniformlyStable;
  static constexpr int kP = 0;
};
template <>
struct CoreStability<TropS> {
  static constexpr StabilityClass kClass = StabilityClass::kUniformlyStable;
  static constexpr int kP = 0;
};
template <>
struct CoreStability<TropNatS> {
  static constexpr StabilityClass kClass = StabilityClass::kUniformlyStable;
  static constexpr int kP = 0;
};
template <>
struct CoreStability<ViterbiS> {
  static constexpr StabilityClass kClass = StabilityClass::kUniformlyStable;
  static constexpr int kP = 0;
};
template <>
struct CoreStability<FuzzyS> {
  static constexpr StabilityClass kClass = StabilityClass::kUniformlyStable;
  static constexpr int kP = 0;
};
template <>
struct CoreStability<PosBoolS> {
  static constexpr StabilityClass kClass = StabilityClass::kUniformlyStable;
  static constexpr int kP = 0;
};
/// Trop+_p is exactly p-stable (Prop. 5.3).
template <int kPp>
struct CoreStability<TropPS<kPp>> {
  static constexpr StabilityClass kClass = StabilityClass::kUniformlyStable;
  static constexpr int kP = kPp;
};
/// Trop+_eta: stable but not uniformly (Prop. 5.4).
template <>
struct CoreStability<TropEtaS> {
  static constexpr StabilityClass kClass = StabilityClass::kStable;
  static constexpr int kP = -1;
};
/// Lifted POPS: the core semiring is trivial ({⊥}), hence 0-stable
/// (Sec. 2.5.1 + Cor. 5.17: every program converges).
template <PreSemiring S>
struct CoreStability<Lifted<S>> {
  static constexpr StabilityClass kClass = StabilityClass::kUniformlyStable;
  static constexpr int kP = 0;
};
template <PreSemiring S>
struct CoreStability<Completed<S>> {
  static constexpr StabilityClass kClass = StabilityClass::kUniformlyStable;
  static constexpr int kP = 0;
};
/// THREE's core is {⊥, 1} ≅ B (Sec. 2.5.2): 0-stable.
template <>
struct CoreStability<ThreeS> {
  static constexpr StabilityClass kClass = StabilityClass::kUniformlyStable;
  static constexpr int kP = 0;
};
template <>
struct CoreStability<FourS> {
  static constexpr StabilityClass kClass = StabilityClass::kUniformlyStable;
  static constexpr int kP = 0;
};
// N, R+, MaxPlus, N[X] fall through to the unstable default.

}  // namespace datalogo

#endif  // DATALOGO_SEMIRING_CLASSIFICATION_H_
