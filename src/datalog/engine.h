// The support-based relational engine: naive evaluation (Algorithm 1) and
// semi-naive evaluation with the differential rule (Algorithm 3, Theorems
// 6.4/6.5). Sound for naturally ordered semirings, where ⊥ = 0 is both the
// additive identity and absorbing, so tuples outside the stored support can
// never influence a result. For general POPS use the grounded engine
// (grounder.h).
#ifndef DATALOGO_DATALOG_ENGINE_H_
#define DATALOGO_DATALOG_ENGINE_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "src/core/check.h"
#include "src/core/status.h"
#include "src/datalog/ast.h"
#include "src/datalog/instance.h"
#include "src/relation/relation.h"
#include "src/semiring/boolean.h"
#include "src/semiring/traits.h"

namespace datalogo {

/// Outcome of an evaluation run.
template <Pops P>
struct EvalResult {
  IdbInstance<P> idb;
  /// Number of ICO applications (naive) or loop iterations (semi-naive).
  int steps = 0;
  bool converged = false;
  /// Join-work counter: generator entries visited (for the Sec. 6 benches).
  uint64_t work = 0;
};

/// Tuning knobs for Engine.
struct EngineOptions {
  /// Reuse RelationIndexes across joining steps (EDB indexes live for the
  /// whole run; IDB indexes until their relation mutates). Off = the
  /// seed's rebuild-per-disjunct behaviour, kept for benchmarking.
  bool cache_indexes = true;
};

/// Relational evaluation of a datalog° program over a naturally ordered
/// semiring. Compiles each sum-product into a flat join program once —
/// index-key sources, per-entry bind/check slots, head slots — then
/// applies the ICO by iterative index nested-loop joins over relation
/// supports, reusing preallocated per-disjunct buffers so the inner loop
/// does not allocate.
///
/// Thread safety: the evaluation entry points are const but memoize
/// RelationIndexes and reuse evaluation scratch buffers through mutable
/// members, so one Engine must not be shared across threads without
/// external synchronization (use one Engine per thread — compilation is
/// cheap).
template <NaturallyOrderedSemiring P>
class Engine {
 public:
  Engine(const Program& prog, const EdbInstance<P>& edb,
         EngineOptions options = {})
      : prog_(&prog), edb_(&edb), options_(options) {
    Compile();
  }

  /// Indexes constructed so far (cached or not) — the bench counter for
  /// the index-caching win.
  uint64_t index_builds() const {
    return pops_cache_.builds() + bool_cache_.builds() + uncached_builds_;
  }
  /// Index lookups served from cache without rebuilding.
  uint64_t index_hits() const {
    return pops_cache_.hits() + bool_cache_.hits();
  }
  /// Cache traffic attributable to IDB relations (deltas, T(t), T(t-1));
  /// EDB indexes are built once per run, so these counters isolate how
  /// well the per-iteration delta indexes amortize.
  uint64_t idb_index_builds() const { return idb_index_builds_; }
  uint64_t idb_index_hits() const { return idb_index_hits_; }

  /// Algorithm 1: J ← F(J) from ⊥ until fixpoint (or budget).
  EvalResult<P> Naive(int max_steps) const {
    std::vector<int> all(compiled_.size());
    for (std::size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);
    return NaiveWithRules(all, IdbInstance<P>(*prog_), max_steps);
  }

  /// Naive evaluation restricted to a rule subset, iterating from (and
  /// re-seeding each round with) `frozen` — the building block for
  /// stratified evaluation (Sec. 4.5 "Multiple Value Spaces", Sec. 6.4):
  /// lower-stratum relations live in `frozen` and stay fixed.
  EvalResult<P> NaiveWithRules(const std::vector<int>& rule_ids,
                               const IdbInstance<P>& frozen,
                               int max_steps) const {
    IdbInstance<P> j = frozen;
    // `next` persists across iterations: content moves into `j` through
    // the stable Relation objects (TakeContentsFrom), so the index cache
    // stays keyed to live uids instead of orphaning entries every round.
    IdbInstance<P> next = frozen;
    uint64_t work = 0;
    for (int t = 0; t < max_steps; ++t) {
      SweepCaches();
      if (t > 0) next.CopyContentsFrom(frozen);
      for (int r : rule_ids) {
        DLO_CHECK(r >= 0 && r < static_cast<int>(compiled_.size()));
        ApplyRule(compiled_[r], j, &next, &work);
      }
      if (next.Equals(j)) {
        return {std::move(j), t, true, work};
      }
      j.TakeContentsFrom(&next);
      j.CompactAll();  // tombstone hygiene between fixpoint iterations
    }
    return {std::move(j), max_steps, false, work};
  }

  /// Algorithm 3 WITHOUT the differential rule — the ablation the paper
  /// discusses in Sec. 6.3: δ(t) = F(J(t)) ⊖ J(t) computed by a full ICO
  /// application. Correct (Theorem 6.4) but does as much join work as
  /// naive; exists to quantify what Eq. (64)/(65) buy.
  EvalResult<P> SemiNaiveNonDifferential(int max_steps) const
    requires CompleteDistributiveDioid<P>
  {
    IdbInstance<P> j(*prog_);
    IdbInstance<P> f(*prog_);  // persistent: Clear + refill per iteration
    uint64_t work = 0;
    for (int t = 0; t < max_steps; ++t) {
      SweepCaches();
      f.ClearAll();
      ApplyIco(j, &f, &work);
      bool any_delta = false;
      for (int pred : prog_->IdbPredicates()) {
        const Relation<P>& f_rel = f.idb(pred);
        Relation<P>& j_rel = j.idb(pred);
        const uint32_t rows = f_rel.num_rows();
        for (uint32_t r = 0; r < rows; ++r) {
          if (!f_rel.RowLive(r)) continue;
          typename P::Value d =
              P::Minus(f_rel.ValueAt(r), j_rel.Get(f_rel.View(r)));
          if (!P::Eq(d, P::Zero())) {
            j_rel.Merge(f_rel.View(r), d);
            any_delta = true;
          }
        }
      }
      if (!any_delta) {
        return {std::move(j), t, true, work};
      }
      j.CompactAll();  // tombstone hygiene between fixpoint iterations
    }
    return {std::move(j), max_steps, false, work};
  }

  /// Algorithm 3 with the differential rule (Eq. 65): requires a complete
  /// distributive dioid for ⊖. Returns the same fixpoint as Naive
  /// (Theorem 6.4).
  EvalResult<P> SemiNaive(int max_steps) const
    requires CompleteDistributiveDioid<P>
  {
    uint64_t work = 0;
    IdbInstance<P> t_old(*prog_);   // T(t-1)
    IdbInstance<P> t_new(*prog_);   // T(t)
    IdbInstance<P> delta(*prog_);   // δ(t-1)

    // t = 0: δ(0) = F(0) ⊖ 0 = F(0); T(1) = δ(0).
    ApplyIco(t_new /*empty*/, &delta, &work);
    bool empty = true;
    for (int pred : prog_->IdbPredicates()) {
      if (!delta.idb(pred).empty()) empty = false;
    }
    if (empty) return {std::move(t_new), 1, true, work};
    t_new.CopyContentsFrom(delta);

    // Scratch instances persist across iterations (Clear + refill), and
    // next_delta's contents move into `delta`'s stable Relation objects,
    // so the cache entries for delta indexes stay keyed to live uids —
    // one rebuild per iteration (the content changed) instead of a fresh
    // orphaned entry per iteration.
    IdbInstance<P> candidate(*prog_);
    IdbInstance<P> next_delta(*prog_);
    for (int t = 1; t < max_steps; ++t) {
      SweepCaches();
      // Candidate C_i = ⊕_ℓ G_i(.., δ_ℓ, ..) using new/old T per Eq. (64).
      candidate.ClearAll();
      for (const CompiledRule& cr : compiled_) {
        for (const CompiledDisjunct& cd : cr.disjuncts) {
          const int occurrences = static_cast<int>(cd.idb_atoms.size());
          if (occurrences == 0) continue;  // the EDB-only part E_i, Eq. (65)
          for (int ell = 0; ell < occurrences; ++ell) {
            auto resolver = [&](int atom_index) -> const Relation<P>& {
              int pred = cd.sp->atoms[atom_index].pred;
              int occ = cd.occ_of_atom[atom_index];
              DLO_CHECK(occ >= 0);
              if (occ < ell) return t_new.idb(pred);
              if (occ == ell) return delta.idb(pred);
              return t_old.idb(pred);
            };
            EvalDisjunct(cd, resolver,
                         &candidate.idb(cr.rule->head.pred), &work);
          }
        }
      }
      // δ(t) = C ⊖ T(t), per row of C's support.
      next_delta.ClearAll();
      bool all_empty = true;
      for (int pred : prog_->IdbPredicates()) {
        const Relation<P>& c_rel = candidate.idb(pred);
        const Relation<P>& tn_rel = t_new.idb(pred);
        Relation<P>& nd_rel = next_delta.idb(pred);
        const uint32_t rows = c_rel.num_rows();
        for (uint32_t r = 0; r < rows; ++r) {
          if (!c_rel.RowLive(r)) continue;
          typename P::Value d =
              P::Minus(c_rel.ValueAt(r), tn_rel.Get(c_rel.View(r)));
          if (!P::Eq(d, P::Zero())) {
            nd_rel.Set(c_rel.View(r), d);
            all_empty = false;
          }
        }
      }
      if (all_empty) {
        return {std::move(t_new), t + 1, true, work};
      }
      // T(t+1) = T(t) ⊕ δ(t).
      t_old.CopyContentsFrom(t_new);
      for (int pred : prog_->IdbPredicates()) {
        const Relation<P>& nd_rel = next_delta.idb(pred);
        Relation<P>& tn_rel = t_new.idb(pred);
        const uint32_t rows = nd_rel.num_rows();
        for (uint32_t r = 0; r < rows; ++r) {
          if (!nd_rel.RowLive(r)) continue;
          tn_rel.Merge(nd_rel.View(r), nd_rel.ValueAt(r));
        }
      }
      delta.TakeContentsFrom(&next_delta);
      t_new.CompactAll();  // tombstone hygiene between fixpoint iterations
    }
    return {std::move(t_new), max_steps, false, work};
  }

 private:
  static constexpr ConstId kUnbound = static_cast<ConstId>(-1);

  /// Where a key or head slot gets its constant from: a rule-variable slot
  /// (var ≥ 0, statically guaranteed bound by then) or a literal constant.
  struct ValueSource {
    int var = -1;
    ConstId constant = 0;
  };

  /// What to do with one non-key position of a matched index entry:
  /// bind a fresh variable from it, or check it against a variable bound
  /// earlier within the same atom (repeated-variable pattern, e.g. E(X,X)).
  struct EntryOp {
    enum class Kind : uint8_t { kBind, kCheck };
    Kind kind = Kind::kBind;
    int pos = 0;  ///< argument position in the matched tuple
    int var = 0;  ///< rule-variable slot to bind or compare
  };

  /// One join generator — a POPS atom or a positive Boolean condition atom
  /// — compiled to a flat program step: which positions form the index
  /// key, where each key constant comes from, and what each remaining
  /// position binds or checks. No Term inspection happens at run time.
  struct Generator {
    bool is_bool = false;
    bool is_idb = false;       ///< resolve through the per-call resolver
    int pred = -1;
    int atom_index = -1;       ///< into sp.atoms or sp.conditions
    std::vector<int> key_positions;   ///< arg positions bound beforehand
    std::vector<ValueSource> key_sources;  ///< parallel to key_positions
    std::vector<EntryOp> entry_ops;   ///< non-key positions, in arg order
  };

  struct CompiledDisjunct {
    int disjunct_index = 0;
    const SumProduct* sp = nullptr;
    std::vector<std::pair<int, ConstId>> prebindings;
    std::vector<Generator> generators;
    std::vector<const Condition*> residual;
    std::vector<int> idb_atoms;  ///< indexes of IDB atoms in sp->atoms
    std::vector<int> occ_of_atom;  ///< atom index → IDB occurrence, or -1
    std::vector<ValueSource> head_sources;  ///< one per head argument
    int scratch_id = -1;  ///< into scratch_ (reusable per-disjunct buffers)
  };

  struct CompiledRule {
    const Rule* rule = nullptr;
    std::vector<CompiledDisjunct> disjuncts;
  };

  /// Reusable evaluation buffers for one disjunct, sized at Compile()
  /// time. Evaluating a disjunct allocates nothing: bindings, per-level
  /// join keys, per-level accumulators and the head tuple all live here.
  struct Scratch {
    std::vector<ConstId> binding;          ///< rule-variable slots
    std::vector<typename P::Value> acc;    ///< acc[g] = value entering level g
    std::vector<Tuple> keys;               ///< per-level key buffers
    Tuple head;                            ///< head tuple buffer
    std::vector<const RelationIndex<P>*> pops_idx;
    std::vector<const RelationIndex<BoolS>*> bool_idx;
    std::vector<const Relation<P>*> pops_rel;    ///< row-id decode target
    std::vector<const Relation<BoolS>*> bool_rel;
    std::vector<const RowIdList*> entries;  ///< per-level matched row ids
    std::vector<std::size_t> next;         ///< per-level entry cursor
  };

  void Compile() {
    for (const Rule& rule : prog_->rules()) {
      CompiledRule cr;
      cr.rule = &rule;
      for (std::size_t d = 0; d < rule.disjuncts.size(); ++d) {
        const SumProduct& sp = rule.disjuncts[d];
        CompiledDisjunct cd;
        cd.disjunct_index = static_cast<int>(d);
        cd.sp = &sp;

        // Pre-bindings from `Var = const` equality chains.
        std::vector<ConstId> pre(rule.num_vars, kUnbound);
        bool changed = true;
        while (changed) {
          changed = false;
          for (const Condition& c : sp.conditions) {
            if (c.kind != Condition::Kind::kCompare || c.op != CmpOp::kEq) {
              continue;
            }
            auto ground = [&](const Term& t) -> ConstId {
              if (!t.IsVar()) return t.constant;
              return pre[t.var];
            };
            auto bind = [&](const Term& a, const Term& b) {
              if (a.IsVar() && pre[a.var] == kUnbound &&
                  ground(b) != kUnbound) {
                pre[a.var] = ground(b);
                changed = true;
              }
            };
            bind(c.lhs, c.rhs);
            bind(c.rhs, c.lhs);
          }
        }
        std::vector<bool> bound(rule.num_vars, false);
        for (int v = 0; v < rule.num_vars; ++v) {
          if (pre[v] != kUnbound) {
            cd.prebindings.emplace_back(v, pre[v]);
            bound[v] = true;
          }
        }

        auto add_generator = [&](bool is_bool, int index, const Atom& a) {
          Generator g;
          g.is_bool = is_bool;
          g.atom_index = index;
          g.pred = a.pred;
          g.is_idb =
              !is_bool && prog_->predicate(a.pred).kind == PredKind::kIdb;
          // One pass over the argument positions: positions whose value is
          // known before this generator (constants and already-bound
          // variables) become index-key slots; the rest become bind/check
          // ops executed per matched entry, in argument order, so a
          // repeated variable is bound by its first occurrence before its
          // later occurrences compare against it.
          std::vector<bool> bound_before = bound;
          for (std::size_t p = 0; p < a.args.size(); ++p) {
            const Term& t = a.args[p];
            if (!t.IsVar()) {
              g.key_positions.push_back(static_cast<int>(p));
              g.key_sources.push_back(ValueSource{-1, t.constant});
            } else if (bound_before[t.var]) {
              g.key_positions.push_back(static_cast<int>(p));
              g.key_sources.push_back(ValueSource{t.var, 0});
            } else if (!bound[t.var]) {
              g.entry_ops.push_back(
                  EntryOp{EntryOp::Kind::kBind, static_cast<int>(p), t.var});
              bound[t.var] = true;
            } else {
              g.entry_ops.push_back(
                  EntryOp{EntryOp::Kind::kCheck, static_cast<int>(p), t.var});
            }
          }
          cd.generators.push_back(std::move(g));
        };

        for (std::size_t i = 0; i < sp.atoms.size(); ++i) {
          const Atom& a = sp.atoms[i];
          DLO_CHECK_MSG(!a.negated,
                        "negated POPS atoms require the grounded engine");
          add_generator(false, static_cast<int>(i), a);
          if (prog_->predicate(a.pred).kind == PredKind::kIdb) {
            cd.idb_atoms.push_back(static_cast<int>(i));
          }
        }
        for (std::size_t i = 0; i < sp.conditions.size(); ++i) {
          const Condition& c = sp.conditions[i];
          if (c.kind != Condition::Kind::kBoolAtom) continue;
          bool binds_new = false;
          for (const Term& t : c.atom.args) {
            if (t.IsVar() && !bound[t.var]) binds_new = true;
          }
          if (binds_new) {
            add_generator(true, static_cast<int>(i), c.atom);
          }
        }
        // Residual checks: everything except bool atoms used as generators.
        for (std::size_t i = 0; i < sp.conditions.size(); ++i) {
          const Condition& c = sp.conditions[i];
          bool is_generator = false;
          for (const Generator& g : cd.generators) {
            if (g.is_bool && g.atom_index == static_cast<int>(i)) {
              is_generator = true;
              break;
            }
          }
          if (!is_generator) cd.residual.push_back(&c);
        }

        // O(1) atom-index → IDB-occurrence map for the semi-naive
        // differential rule (Eq. 64): the resolver must not re-scan
        // idb_atoms on every atom resolution of every iteration.
        cd.occ_of_atom.assign(sp.atoms.size(), -1);
        for (std::size_t k = 0; k < cd.idb_atoms.size(); ++k) {
          cd.occ_of_atom[cd.idb_atoms[k]] = static_cast<int>(k);
        }

        // Head slots: range restriction (validate.cc) guarantees every
        // head variable is bound once all generators have run.
        for (const Term& t : rule.head.args) {
          if (t.IsVar()) {
            DLO_CHECK_MSG(bound[t.var], "unbound head variable");
            cd.head_sources.push_back(ValueSource{t.var, 0});
          } else {
            cd.head_sources.push_back(ValueSource{-1, t.constant});
          }
        }

        // Reusable evaluation buffers, exactly sized for this disjunct.
        cd.scratch_id = static_cast<int>(scratch_.size());
        Scratch sc;
        sc.binding.assign(rule.num_vars, kUnbound);
        sc.acc.assign(cd.generators.size() + 1, P::One());
        sc.keys.reserve(cd.generators.size());
        for (const Generator& g : cd.generators) {
          sc.keys.emplace_back(g.key_positions.size(), 0);
        }
        sc.head = Tuple(rule.head.args.size(), 0);
        sc.pops_idx.resize(cd.generators.size());
        sc.bool_idx.resize(cd.generators.size());
        sc.pops_rel.resize(cd.generators.size());
        sc.bool_rel.resize(cd.generators.size());
        sc.entries.resize(cd.generators.size());
        sc.next.resize(cd.generators.size());
        scratch_.push_back(std::move(sc));

        cr.disjuncts.push_back(std::move(cd));
      }
      compiled_.push_back(std::move(cr));
    }
  }

  /// Bounds cache memory between joining steps — the only time no
  /// RelationIndex references are live.
  void SweepCaches() const {
    pops_cache_.MaybeEvict();
    bool_cache_.MaybeEvict();
  }

  /// F(J) evaluated into `out` (fresh instance), counting join work.
  void ApplyIco(const IdbInstance<P>& j, IdbInstance<P>* out,
                uint64_t* work) const {
    for (const CompiledRule& cr : compiled_) {
      ApplyRule(cr, j, out, work);
    }
  }

  /// One rule's contribution to F(J), merged into `out`.
  void ApplyRule(const CompiledRule& cr, const IdbInstance<P>& j,
                 IdbInstance<P>* out, uint64_t* work) const {
    for (const CompiledDisjunct& cd : cr.disjuncts) {
      auto resolver = [&](int atom_index) -> const Relation<P>& {
        return j.idb(cd.sp->atoms[atom_index].pred);
      };
      EvalDisjunct(cd, resolver, &out->idb(cr.rule->head.pred), work);
    }
  }

  ConstId GroundTerm(const Term& t,
                     const std::vector<ConstId>& binding) const {
    if (!t.IsVar()) return t.constant;
    return binding[t.var];
  }

  bool CheckCondition(const Condition& c,
                      const std::vector<ConstId>& binding) const {
    switch (c.kind) {
      case Condition::Kind::kBoolAtom:
      case Condition::Kind::kNegBoolAtom: {
        Tuple t;
        t.reserve(c.atom.args.size());
        for (const Term& term : c.atom.args) {
          ConstId id = GroundTerm(term, binding);
          DLO_CHECK(id != kUnbound);
          t.push_back(id);
        }
        bool holds = edb_->boolean(c.atom.pred).Get(t);
        return c.kind == Condition::Kind::kBoolAtom ? holds : !holds;
      }
      case Condition::Kind::kCompare: {
        ConstId l = GroundTerm(c.lhs, binding);
        ConstId r = GroundTerm(c.rhs, binding);
        DLO_CHECK(l != kUnbound && r != kUnbound);
        if (c.op == CmpOp::kEq) return l == r;
        if (c.op == CmpOp::kNe) return l != r;
        auto li = prog_->domain()->AsInt(l);
        auto ri = prog_->domain()->AsInt(r);
        DLO_CHECK_MSG(li.has_value() && ri.has_value(),
                      "order comparison requires integer constants");
        switch (c.op) {
          case CmpOp::kLt:
            return *li < *ri;
          case CmpOp::kLe:
            return *li <= *ri;
          case CmpOp::kGt:
            return *li > *ri;
          case CmpOp::kGe:
            return *li >= *ri;
          default:
            return false;
        }
      }
    }
    return false;
  }

  /// Residual checks + zero filter + head construction for one complete
  /// join binding; merges the result into `out`. Uses the disjunct's
  /// preallocated head buffer — no allocation on this path.
  void EmitHead(const CompiledDisjunct& cd, const typename P::Value& acc,
                Relation<P>* out) const {
    Scratch& sc = scratch_[cd.scratch_id];
    for (const Condition* c : cd.residual) {
      if (!CheckCondition(*c, sc.binding)) return;
    }
    if (P::Eq(acc, P::Zero())) return;
    for (std::size_t i = 0; i < cd.head_sources.size(); ++i) {
      const ValueSource& s = cd.head_sources[i];
      sc.head[i] = s.var >= 0 ? sc.binding[s.var] : s.constant;
    }
    out->Merge(sc.head, acc);
  }

  /// Evaluates one sum-product under `resolver` (mapping IDB atom indexes
  /// to the relation instance to read), merging results into `out`.
  ///
  /// Executes the compiled flat join program with an explicit iterative
  /// loop over generator levels: per level, the key buffer is filled from
  /// precomputed sources, looked up in the (cached) index, and each entry
  /// runs its bind/check ops — no recursion, no per-entry allocation, no
  /// Term re-inspection. Unbinding on backtrack is unnecessary: which
  /// variables are bound at each level is static, so stale slots are
  /// always overwritten before being read.
  template <typename Resolver>
  void EvalDisjunct(const CompiledDisjunct& cd, Resolver&& resolver,
                    Relation<P>* out, uint64_t* work) const {
    Scratch& sc = scratch_[cd.scratch_id];
    for (const auto& [v, c] : cd.prebindings) sc.binding[v] = c;

    const std::size_t levels = cd.generators.size();

    // Per-generator indexes: served from the engine-level cache (invalid
    // the moment the underlying relation mutates) or, with caching off,
    // rebuilt into locals exactly as the seed engine did.
    std::vector<std::unique_ptr<RelationIndex<P>>> local_pops;
    std::vector<std::unique_ptr<RelationIndex<BoolS>>> local_bool;
    for (std::size_t g = 0; g < levels; ++g) {
      const Generator& gen = cd.generators[g];
      if (gen.is_bool) {
        const Relation<BoolS>& rel = edb_->boolean(gen.pred);
        if (options_.cache_indexes) {
          sc.bool_idx[g] = &bool_cache_.Get(rel, gen.key_positions);
        } else {
          ++uncached_builds_;
          local_bool.push_back(
              std::make_unique<RelationIndex<BoolS>>(rel,
                                                     gen.key_positions));
          sc.bool_idx[g] = local_bool.back().get();
        }
        sc.bool_rel[g] = &rel;
      } else {
        const Relation<P>& rel =
            gen.is_idb ? resolver(gen.atom_index) : edb_->pops(gen.pred);
        if (options_.cache_indexes) {
          const uint64_t before = pops_cache_.builds();
          sc.pops_idx[g] = &pops_cache_.Get(rel, gen.key_positions);
          if (gen.is_idb) {
            if (pops_cache_.builds() != before) {
              ++idb_index_builds_;
            } else {
              ++idb_index_hits_;
            }
          }
        } else {
          ++uncached_builds_;
          local_pops.push_back(
              std::make_unique<RelationIndex<P>>(rel, gen.key_positions));
          sc.pops_idx[g] = local_pops.back().get();
        }
        sc.pops_rel[g] = &rel;
      }
    }

    if (levels == 0) {
      EmitHead(cd, P::One(), out);
      return;
    }

    // Fills level `lvl`'s key buffer from the current binding and points
    // its cursor at the matching entry list.
    auto enter_level = [&](std::size_t lvl) {
      const Generator& gen = cd.generators[lvl];
      Tuple& key = sc.keys[lvl];
      for (std::size_t i = 0; i < gen.key_sources.size(); ++i) {
        const ValueSource& s = gen.key_sources[i];
        key[i] = s.var >= 0 ? sc.binding[s.var] : s.constant;
      }
      if (gen.is_bool) {
        sc.entries[lvl] = &sc.bool_idx[lvl]->Lookup(key);
      } else {
        sc.entries[lvl] = &sc.pops_idx[lvl]->Lookup(key);
      }
      sc.next[lvl] = 0;
    };

    sc.acc[0] = P::One();
    std::size_t g = 0;
    enter_level(0);
    for (;;) {
      const Generator& gen = cd.generators[g];
      const RowIdList& entries = *sc.entries[g];
      if (sc.next[g] == entries.size()) {
        if (g == 0) break;
        --g;
        continue;
      }
      const uint32_t row = entries[sc.next[g]];
      ++sc.next[g];
      ++*work;
      // Bind/check against the matched row's cells, read straight out of
      // the relation's columns (no tuple is materialized).
      auto run_entry_ops = [&](const auto& rel) {
        for (const EntryOp& op : gen.entry_ops) {
          ConstId got = rel.Cell(row, op.pos);
          if (op.kind == EntryOp::Kind::kBind) {
            sc.binding[op.var] = got;
          } else if (sc.binding[op.var] != got) {
            return false;
          }
        }
        return true;
      };
      bool matched;
      const typename P::Value* value = nullptr;
      if (gen.is_bool) {
        matched = run_entry_ops(*sc.bool_rel[g]);
      } else {
        const Relation<P>& rel = *sc.pops_rel[g];
        matched = run_entry_ops(rel);
        value = &rel.ValueAt(row);
      }
      if (!matched) continue;
      sc.acc[g + 1] = value ? P::Times(sc.acc[g], *value) : sc.acc[g];
      if (g + 1 == levels) {
        EmitHead(cd, sc.acc[levels], out);
      } else {
        ++g;
        enter_level(g);
      }
    }
  }

  const Program* prog_;
  const EdbInstance<P>* edb_;
  EngineOptions options_;
  std::vector<CompiledRule> compiled_;
  // Mutable: evaluation entry points are const, but memoizing indexes,
  // counting builds, and reusing per-disjunct evaluation buffers are all
  // invisible to callers (and are why one Engine is not shareable across
  // threads — see the class comment).
  mutable std::vector<Scratch> scratch_;  ///< one per compiled disjunct
  mutable IndexCache<P> pops_cache_;
  mutable IndexCache<BoolS> bool_cache_;
  mutable uint64_t uncached_builds_ = 0;
  mutable uint64_t idb_index_builds_ = 0;  ///< cache builds for IDB inputs
  mutable uint64_t idb_index_hits_ = 0;    ///< cache hits for IDB inputs
};

}  // namespace datalogo

#endif  // DATALOGO_DATALOG_ENGINE_H_
