// The support-based relational engine: naive evaluation (Algorithm 1) and
// semi-naive evaluation with the differential rule (Algorithm 3, Theorems
// 6.4/6.5). Sound for naturally ordered semirings, where ⊥ = 0 is both the
// additive identity and absorbing, so tuples outside the stored support can
// never influence a result. For general POPS use the grounded engine
// (grounder.h).
#ifndef DATALOGO_DATALOG_ENGINE_H_
#define DATALOGO_DATALOG_ENGINE_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "src/core/check.h"
#include "src/core/simd.h"
#include "src/core/status.h"
#include "src/core/thread_pool.h"
#include "src/datalog/ast.h"
#include "src/datalog/instance.h"
#include "src/datalog/reliance.h"
#include "src/relation/relation.h"
#include "src/semiring/boolean.h"
#include "src/semiring/deletion.h"
#include "src/semiring/simd_traits.h"
#include "src/semiring/traits.h"

namespace datalogo {

/// Outcome of an evaluation run.
template <Pops P>
struct EvalResult {
  IdbInstance<P> idb;
  /// Number of ICO applications (naive) or loop iterations (semi-naive).
  int steps = 0;
  bool converged = false;
  /// Join-work counter: generator entries visited (for the Sec. 6 benches).
  uint64_t work = 0;
};

/// Rule-scheduling policy for the fixpoint loops.
enum class Scheduler {
  /// Re-evaluate every rule on every global iteration — the engine's
  /// original behaviour, preserved bit-for-bit (fixpoints, `work`, all
  /// index counters).
  kSweep,
  /// Condense the rule reliance graph (reliance.h) into SCC groups and
  /// run one LOCAL fixpoint per group in topological (producers-first)
  /// order; inside a group, only rules whose body predicates actually
  /// received a delta last round are re-evaluated (a triggered set that
  /// drains with the deltas). Fixpoints are identical to kSweep; on
  /// multi-group programs the local deltas are smaller and dead rules
  /// are skipped, so `steps`, `work` and index counters may legitimately
  /// be LOWER than kSweep's. On single-group programs (every rule
  /// mutually recursive) the two schedulers are bit-identical.
  kOrdered,
};

/// Tuning knobs for Engine.
struct EngineOptions {
  /// Reuse RelationIndexes across joining steps (EDB indexes live for the
  /// whole run; IDB indexes until their relation mutates). Off = the
  /// seed's rebuild-per-disjunct behaviour, kept for benchmarking.
  bool cache_indexes = true;
  /// Worker parallelism for ICO applications. <= 1 runs the sequential
  /// kernel unchanged; N > 1 fans compiled disjuncts (and row-range
  /// shards of each disjunct's driver entry list) out across N threads
  /// and reduces the per-task partial relations in a fixed order, so
  /// fixpoints, `work` counters and index-cache counters are identical
  /// to the sequential run (see the class comment). 0 = one thread per
  /// hardware core.
  int num_threads = 1;
  /// Target driver (level-0) entries per parallel shard. Deliberately
  /// independent of num_threads: the shard structure — and therefore the
  /// deterministic reduce tree — depends only on the data, so results
  /// are identical at every thread count, not merely per thread count.
  int shard_rows = 256;
  /// Rule scheduling for Naive/SemiNaive (see Scheduler). Orthogonal to
  /// num_threads: the ordered scheduler routes each group round through
  /// the same prepare/execute/reduce phases, so its results and counters
  /// are identical at every thread count too.
  Scheduler scheduler = Scheduler::kSweep;
  /// Index-tier policy (relation.h): kAuto picks a direct (offset-
  /// addressed) index per (relation, key-spec) when the key column is a
  /// dense ConstId range, else hash; kHash/kDirect force one tier.
  /// Fixpoints, `work` and all four index counters are bit-identical
  /// across tiers — only probe cost and the new probe counters move.
  IndexKind index_kind = IndexKind::kAuto;
  /// Column-scan and join kernel (simd.h). kScalar forces the
  /// definitional reference everywhere: scalar index-build scans and the
  /// row-at-a-time join loop. kSimd uses the compiled ISA (SSE2/AVX2/
  /// NEON, scalar tails) for index builds AND routes ExecuteShard
  /// through the batched join kernel (kJoinBatch row ids decoded per
  /// step, check ops as masked vector compares, survivors compressed
  /// before the bind ops run). Fixpoints, `work` and all index counters
  /// are bit-identical across kernels by construction; only
  /// join_batched_rows() distinguishes them. Default honors the
  /// DATALOGO_SCAN environment variable.
  ScanKernel scan_kernel = DefaultScanKernel();
  /// Value-plane kernel: how the batched join computes ⊗ products and
  /// emits head rows for semirings that opt into SemiringSimdTraits
  /// (Trop, TropN, B, N, R+). kSimd batches value gathers, ⊗ kernels,
  /// ground residual compares and head-key pre-hashing per survivor
  /// batch (and ⊕-coalesces adjacent duplicate head keys when the trait
  /// declares the fold exact); kScalar keeps the per-row P::Times /
  /// EmitHead reference. Only active when scan_kernel is also kSimd —
  /// the scalar join kernel is always fully scalar. Fixpoints, `work`
  /// and all index counters are bit-identical across value kernels;
  /// only values_batched() distinguishes them. Default honors the
  /// DATALOGO_VALUES environment variable (falling back to DATALOGO_SCAN).
  ScanKernel value_kernel = DefaultValueKernel();
};

/// How Engine::Update serviced one batch (reported for tests/benches).
enum class UpdateStrategy {
  kNoop,           ///< empty batch: nothing ran
  kInsertOnly,     ///< one warm insert cascade, no deletes
  kExactDeletion,  ///< subtract cascade (count-carrying carriers); also
                   ///< covers the trailing insert cascade of a mixed batch
  kDred,           ///< over-delete / re-derive (dioid carriers)
  kRecompute,      ///< full fixpoint from the mutated EDB
};

/// Outcome of one Engine::Update call.
struct UpdateResult {
  /// Cascade rounds run, seed evaluations included (for kRecompute: the
  /// fallback run's steps).
  int rounds = 0;
  bool converged = false;
  /// Generator entries visited servicing the batch.
  uint64_t work = 0;
  /// DRed only: pruned tuples the re-derivation brought back — each had a
  /// surviving derivation that avoided every deleted fact.
  uint64_t deleted_rederived = 0;
  UpdateStrategy strategy = UpdateStrategy::kNoop;
};

/// Relational evaluation of a datalog° program over a naturally ordered
/// semiring. Compiles each sum-product into a flat join program once —
/// index-key sources, per-entry bind/check slots, head slots — then
/// applies the ICO by iterative index nested-loop joins over relation
/// supports, reusing preallocated per-disjunct buffers so the inner loop
/// does not allocate.
///
/// With EngineOptions::num_threads > 1 each ICO application runs in three
/// phases: a sequential *prepare* phase resolves every disjunct's indexes
/// through the cache (all cache mutation and counter traffic happens
/// here, in the same order as a sequential run — so `index_builds`,
/// `idb_index_builds/hits` etc. are bit-identical), a parallel *execute*
/// phase fans (disjunct, driver-row-range shard) tasks out to a
/// ThreadPool — each task reads only immutable prepared state and writes
/// a task-private partial Relation and work counter — and a sequential
/// *reduce* phase merges the partials into the head relations in (rule,
/// disjunct [, occurrence], shard) order. Because shard s's driver
/// entries all precede shard s+1's, that fixed order replays the exact
/// head-merge sequence of the sequential kernel, so fixpoints and `work`
/// are identical at every thread count (for ⊕ that is exactly
/// associative — every shipped discrete/min/max semiring; a floating-
/// point *sum* ⊕ may differ from sequential by reassociation rounding
/// across shard-boundary key collisions, but is still deterministic for
/// a fixed shard_rows).
///
/// Thread safety: internal parallelism is safe by the phase structure
/// above (mutable caches and scratch pools are touched only in the
/// sequential phases). One Engine object must still not be *shared*
/// across caller threads without external synchronization — use one
/// Engine per thread; compilation is cheap.
template <NaturallyOrderedSemiring P>
class Engine {
 public:
  Engine(const Program& prog, const EdbInstance<P>& edb,
         EngineOptions options = {})
      : prog_(&prog), edb_(&edb), options_(options) {
    const IndexConfig idx_cfg{options_.index_kind, options_.scan_kernel};
    pops_cache_.set_config(idx_cfg);
    bool_cache_.set_config(idx_cfg);
    reliance_ = BuildRelianceGroups(prog);
    Compile();
    int threads = options_.num_threads;
    if (threads == 0) {
      threads = static_cast<int>(std::thread::hardware_concurrency());
    }
    if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
  }

  /// Threads an ICO application executes on (1 = sequential kernel).
  int num_threads() const { return pool_ ? pool_->concurrency() : 1; }

  /// Indexes constructed so far (cached or not) — the bench counter for
  /// the index-caching win.
  uint64_t index_builds() const {
    return pops_cache_.builds() + bool_cache_.builds() + uncached_builds_;
  }
  /// Index lookups served from cache without rebuilding.
  uint64_t index_hits() const {
    return pops_cache_.hits() + bool_cache_.hits();
  }
  /// Cache traffic attributable to IDB relations (deltas, T(t), T(t-1));
  /// EDB indexes are built once per run, so these counters isolate how
  /// well the per-iteration delta indexes amortize.
  uint64_t idb_index_builds() const { return idb_index_builds_; }
  uint64_t idb_index_hits() const { return idb_index_hits_; }

  /// Join-kernel lookups served by hash-map indexes (key-Tuple hash +
  /// probe each) vs direct offset-addressed indexes (one bounds-checked
  /// array access each). Tier selection shifts traffic between the two —
  /// the bench evidence that kDirect/kAuto removes hashing from the hot
  /// path. Deterministic across thread counts (shard counts reduce in
  /// fixed order), but NOT pinned across index kinds by design.
  uint64_t hash_probes() const { return hash_probes_; }
  uint64_t direct_probes() const { return direct_probes_; }
  /// Entry-list rows decoded through the batched join kernel. Zero under
  /// ScanKernel::kScalar; equal to `work` under kSimd (every visited
  /// entry goes through the vector path — chunk sizes at shard
  /// boundaries differ across thread counts, but the counter sums rows,
  /// so it is thread-invariant like hash_probes: task-private during the
  /// execute phase, reduced in shard order).
  uint64_t join_batched_rows() const { return join_batched_rows_; }
  /// Head contributions emitted through the vectorized value plane —
  /// counted per surviving (head key, ⊗ product) pair BEFORE any
  /// ⊕-coalescing, so under (scan_kernel, value_kernel) == (kSimd,
  /// kSimd) on an opted-in semiring it equals the number of head merges
  /// the scalar reference would perform, and is 0 under either scalar
  /// kernel or on a trait-less semiring. Thread-invariant for the same
  /// reason as join_batched_rows (task-private, reduced in shard order).
  uint64_t values_batched() const { return values_batched_; }
  /// Rows appended to cached indexes by incremental refreshes instead of
  /// full rebuilds (relation.h IndexCache) — nonzero on every delta-driven
  /// run; each appended row replaces a whole-relation re-scan.
  uint64_t idx_incremental_appends() const {
    return pops_cache_.incremental_appends() +
           bool_cache_.incremental_appends();
  }
  /// Rows scanned building/refreshing EDB indexes. EDB relations never
  /// mutate during a run, so after the first build per (relation, key)
  /// this must not move — the regression surface for cache-hit paths
  /// that silently re-scan full columns (asserted in
  /// engine_scheduler_test).
  uint64_t edb_index_scan_rows() const { return edb_index_scan_rows_; }

  /// The condensed rule-reliance structure the ordered scheduler executes
  /// (computed for every engine; kSweep simply ignores it).
  const RelianceGroups& reliance() const { return reliance_; }
  /// Local fixpoint rounds executed by the ordered scheduler so far: seed
  /// applications plus differential rounds, summed over groups.
  uint64_t group_iterations() const { return group_iterations_; }
  /// Triggered-set savings: rule evaluations the ordered scheduler skipped
  /// because none of the rule's body predicates held a live delta.
  uint64_t rules_skipped() const { return rules_skipped_; }

  /// Algorithm 1: J ← F(J) from ⊥ until fixpoint (or budget).
  EvalResult<P> Naive(int max_steps) const {
    if (options_.scheduler == Scheduler::kOrdered) {
      return NaiveOrdered(max_steps);
    }
    std::vector<int> all(compiled_.size());
    for (std::size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);
    return NaiveWithRules(all, IdbInstance<P>(*prog_), max_steps);
  }

  /// Naive evaluation restricted to a rule subset, iterating from (and
  /// re-seeding each round with) `frozen` — the building block for
  /// stratified evaluation (Sec. 4.5 "Multiple Value Spaces", Sec. 6.4):
  /// lower-stratum relations live in `frozen` and stay fixed.
  EvalResult<P> NaiveWithRules(const std::vector<int>& rule_ids,
                               const IdbInstance<P>& frozen,
                               int max_steps) const {
    IdbInstance<P> j = frozen;
    // `next` persists across iterations: content moves into `j` through
    // the stable Relation objects (TakeContentsFrom), so the index cache
    // stays keyed to live uids instead of orphaning entries every round.
    IdbInstance<P> next = frozen;
    uint64_t work = 0;
    // Units are loop-invariant: the resolvers capture `j` itself, whose
    // Relation objects stay stable across iterations (TakeContentsFrom
    // moves contents, not objects) — build once, reuse every round.
    const std::vector<EvalUnit> units =
        pool_ ? NaiveUnits(rule_ids, j) : std::vector<EvalUnit>{};
    for (int t = 0; t < max_steps; ++t) {
      SweepCaches();
      if (t > 0) next.CopyContentsFrom(frozen);
      if (pool_) {
        ApplyUnitsParallel(units, &next, &work);
      } else {
        for (int r : rule_ids) {
          DLO_CHECK(r >= 0 && r < static_cast<int>(compiled_.size()));
          ApplyRule(compiled_[r], j, &next, &work);
        }
      }
      if (next.Equals(j)) {
        return {std::move(j), t, true, work};
      }
      j.TakeContentsFrom(&next);
      j.CompactAll();  // tombstone hygiene between fixpoint iterations
    }
    return {std::move(j), max_steps, false, work};
  }

  /// Algorithm 3 WITHOUT the differential rule — the ablation the paper
  /// discusses in Sec. 6.3: δ(t) = F(J(t)) ⊖ J(t) computed by a full ICO
  /// application. Correct (Theorem 6.4) but does as much join work as
  /// naive; exists to quantify what Eq. (64)/(65) buy.
  EvalResult<P> SemiNaiveNonDifferential(int max_steps) const
    requires CompleteDistributiveDioid<P>
  {
    IdbInstance<P> j(*prog_);
    IdbInstance<P> f(*prog_);  // persistent: Clear + refill per iteration
    uint64_t work = 0;
    for (int t = 0; t < max_steps; ++t) {
      SweepCaches();
      f.ClearAll();
      ApplyIco(j, &f, &work);
      bool any_delta = false;
      for (int pred : prog_->IdbPredicates()) {
        const Relation<P>& f_rel = f.idb(pred);
        Relation<P>& j_rel = j.idb(pred);
        const uint32_t rows = f_rel.num_rows();
        for (uint32_t r = 0; r < rows; ++r) {
          if (!f_rel.RowLive(r)) continue;
          typename P::Value d =
              P::Minus(f_rel.ValueAt(r), j_rel.Get(f_rel.View(r)));
          if (!P::Eq(d, P::Zero())) {
            j_rel.Merge(f_rel.View(r), d);
            any_delta = true;
          }
        }
      }
      if (!any_delta) {
        return {std::move(j), t, true, work};
      }
      j.CompactAll();  // tombstone hygiene between fixpoint iterations
    }
    return {std::move(j), max_steps, false, work};
  }

  /// Algorithm 3 with the differential rule (Eq. 65): requires a complete
  /// distributive dioid for ⊖. Returns the same fixpoint as Naive
  /// (Theorem 6.4).
  EvalResult<P> SemiNaive(int max_steps) const
    requires CompleteDistributiveDioid<P>
  {
    if (options_.scheduler == Scheduler::kOrdered) {
      return SemiNaiveOrdered(max_steps);
    }
    uint64_t work = 0;
    IdbInstance<P> t_old(*prog_);   // T(t-1)
    IdbInstance<P> t_new(*prog_);   // T(t)
    IdbInstance<P> delta(*prog_);   // δ(t-1)

    // t = 0: δ(0) = F(0) ⊖ 0 = F(0); T(1) = δ(0).
    ApplyIco(t_new /*empty*/, &delta, &work);
    bool empty = true;
    for (int pred : prog_->IdbPredicates()) {
      if (!delta.idb(pred).empty()) empty = false;
    }
    if (empty) return {std::move(t_new), 1, true, work};
    t_new.CopyContentsFrom(delta);

    // Scratch instances persist across iterations (Clear + refill).
    // δ(t) is diffed DIRECTLY into `delta` (safe: the candidate is fully
    // computed before the old deltas are cleared, and DiffRows reads only
    // candidate and t_new), so each round's delta mutation is a Clear
    // plus fresh Sets — the soft pattern the index cache refreshes
    // incrementally (reset-and-reappend) instead of rebuilding, and one
    // full content move per round cheaper than staging through a
    // next_delta instance.
    IdbInstance<P> candidate(*prog_);
    // Units enumerate (rule, disjunct, occurrence) in the exact order of
    // the sequential loop below; ApplyUnitsParallel prepares and reduces
    // in that order, so counters and fixpoints agree. Loop-invariant:
    // the resolvers capture the persistent t_new/delta/t_old instances,
    // whose Relation objects stay stable across iterations.
    std::vector<EvalUnit> units;
    if (pool_) {
      for (const CompiledRule& cr : compiled_) {
        for (const CompiledDisjunct& cd : cr.disjuncts) {
          const int occurrences = static_cast<int>(cd.idb_atoms.size());
          if (occurrences == 0) continue;  // EDB-only part E_i, Eq. (65)
          const CompiledDisjunct* cdp = &cd;
          for (int ell = 0; ell < occurrences; ++ell) {
            units.push_back(EvalUnit{
                &cr, cdp,
                [this, cdp, ell, &t_new, &delta,
                 &t_old](int atom_index) -> const Relation<P>& {
                  int pred = cdp->sp->atoms[atom_index].pred;
                  int occ = cdp->occ_of_atom[atom_index];
                  if (occ < 0) return edb_->pops(pred);
                  if (occ < ell) return t_new.idb(pred);
                  if (occ == ell) return delta.idb(pred);
                  return t_old.idb(pred);
                }});
          }
        }
      }
    }
    for (int t = 1; t < max_steps; ++t) {
      SweepCaches();
      // Candidate C_i = ⊕_ℓ G_i(.., δ_ℓ, ..) using new/old T per Eq. (64).
      candidate.ClearAll();
      if (pool_) {
        ApplyUnitsParallel(units, &candidate, &work);
      } else {
        for (const CompiledRule& cr : compiled_) {
          for (const CompiledDisjunct& cd : cr.disjuncts) {
            const int occurrences = static_cast<int>(cd.idb_atoms.size());
            if (occurrences == 0) continue;  // EDB-only part E_i, Eq. (65)
            for (int ell = 0; ell < occurrences; ++ell) {
              auto resolver = [&](int atom_index) -> const Relation<P>& {
                int pred = cd.sp->atoms[atom_index].pred;
                int occ = cd.occ_of_atom[atom_index];
                if (occ < 0) return edb_->pops(pred);
                if (occ < ell) return t_new.idb(pred);
                if (occ == ell) return delta.idb(pred);
                return t_old.idb(pred);
              };
              EvalDisjunct(cd, resolver,
                           &candidate.idb(cr.rule->head.pred), &work);
            }
          }
        }
      }
      // δ(t) = C ⊖ T(t), per row of C's support — into `delta` itself.
      delta.ClearAll();
      bool all_empty = true;
      for (int pred : prog_->IdbPredicates()) {
        if (DiffRows(candidate.idb(pred), t_new.idb(pred),
                     &delta.idb(pred))) {
          all_empty = false;
        }
      }
      if (all_empty) {
        return {std::move(t_new), t + 1, true, work};
      }
      // T(t+1) = T(t) ⊕ δ(t).
      t_old.CopyContentsFrom(t_new);
      for (int pred : prog_->IdbPredicates()) {
        MergeRows(delta.idb(pred), &t_new.idb(pred));
      }
      t_new.CompactAll();  // tombstone hygiene between fixpoint iterations
    }
    return {std::move(t_new), max_steps, false, work};
  }

  /// Incremental maintenance — the warm-continuation entry point. Given
  /// `idb` holding the converged fixpoint of the engine's CURRENT EDB
  /// (Naive/SemiNaive output, or a previous converged Update), applies one
  /// batch of EDB mutations in place and brings `idb` to the fixpoint of
  /// the mutated EDB without re-running the whole fixpoint.
  ///
  ///  * Inserts run exactly one semi-naive delta cascade seeded from the
  ///    new facts: the seed evaluates the multilinear cross terms of every
  ///    rule body over the added mass (Δ at one changed-EDB occurrence,
  ///    the post-mutation EDB before it, pre-mutation snapshots after it —
  ///    the EDB transposition of Eq. (64)); the rounds are the ordinary
  ///    differential rule. Valid in ANY carrier: E_new = E_old ⊕ Δ holds
  ///    by definition of the ⊕-merge, and multilinearity makes the cross
  ///    terms exactly the fresh one-step mass, no ⊖ required.
  ///  * Deletes go through support counting where the carrier supports it
  ///    (SupportsExactDeletion — ℕ, ℕ[X], products of such: the removed
  ///    derivation mass is subtracted back out row by row, so
  ///    over-deletion is impossible by construction), and through DRed
  ///    (over-delete the affected cone, then re-derive) on complete
  ///    distributive dioids. Selective-⊕ dioids (min/max/or) prune only
  ///    tuples whose removed mass ties the stored optimum — what keeps the
  ///    affected cone small. Carriers with neither capability recompute.
  ///  * Boolean-EDB changes always recompute: Boolean facts appear as
  ///    (possibly negated) residual conditions, outside the ⊕-linear
  ///    differential algebra.
  ///
  /// `edb` must be the engine's own instance — mutating it in place keeps
  /// relation uids stable, so cached EDB indexes refresh incrementally
  /// (appended rows) instead of rebuilding, and `idb`'s persistent
  /// Relation objects keep their cached delta indexes attached across
  /// Update calls. Within one batch, deletes apply before adds (a fact
  /// deleted and re-added ends up with exactly the added value). The
  /// converged result is bit-identical to a full recompute from the
  /// mutated EDB; on a blown budget, converged=false and `idb` is left
  /// mid-cascade like the fixpoint entry points' partial results.
  UpdateResult Update(const EdbDelta<P>& batch, EdbInstance<P>* edb,
                      IdbInstance<P>* idb, int max_steps) const {
    DLO_CHECK_MSG(edb == edb_, "Update must mutate the engine's own EDB");
    UpdateResult res;
    res.converged = true;
    if (batch.empty()) return res;

    bool recompute = !batch.bool_adds.empty() || !batch.bool_deletes.empty();
    bool deletes_applied = false;

    if (!recompute && !batch.pops_deletes.empty()) {
      if constexpr (SupportsExactDeletion<P>) {
        res.strategy = UpdateStrategy::kExactDeletion;
        const CascadeOutcome oc =
            ExactDeleteCascade(batch, edb, idb, max_steps, &res);
        if (oc == CascadeOutcome::kBudget) {
          res.converged = false;
          return res;
        }
        deletes_applied = true;
        if (oc == CascadeOutcome::kInexact) recompute = true;
      } else if constexpr (CompleteDistributiveDioid<P>) {
        // DRed folds the batch's adds into its re-derivation seed, so it
        // services the whole batch in one warm continuation.
        res.strategy = UpdateStrategy::kDred;
        DredUpdate(batch, edb, idb, max_steps, &res);
        return res;
      } else {
        recompute = true;  // no exact counts, no ⊖: nothing cheaper exists
      }
    }
    if (recompute) {
      res.strategy = UpdateStrategy::kRecompute;
      for (const auto& d : batch.bool_deletes) {
        edb->boolean(d.pred).Erase(d.tuple);
      }
      for (const auto& a : batch.bool_adds) {
        edb->boolean(a.pred).Set(a.tuple, true);
      }
      if (!deletes_applied) {
        for (const auto& d : batch.pops_deletes) {
          edb->pops(d.pred).Erase(d.tuple);
        }
      }
      for (const auto& a : batch.pops_adds) {
        edb->pops(a.pred).Merge(a.tuple, a.value);
      }
      Recompute(idb, max_steps, &res);
      return res;
    }
    if (!batch.pops_adds.empty()) {
      if (res.strategy == UpdateStrategy::kNoop) {
        res.strategy = UpdateStrategy::kInsertOnly;
      }
      InsertCascade(batch, edb, idb, max_steps, &res);
    }
    return res;
  }

 private:
  static constexpr ConstId kUnbound = static_cast<ConstId>(-1);

  /// Where a key or head slot gets its constant from: a rule-variable slot
  /// (var ≥ 0, statically guaranteed bound by then) or a literal constant.
  struct ValueSource {
    int var = -1;
    ConstId constant = 0;
  };

  /// What to do with one non-key position of a matched index entry:
  /// bind a fresh variable from it, or check it against a variable bound
  /// earlier within the same atom (repeated-variable pattern, e.g. E(X,X)).
  struct EntryOp {
    enum class Kind : uint8_t { kBind, kCheck };
    Kind kind = Kind::kBind;
    int pos = 0;  ///< argument position in the matched tuple
    int var = 0;  ///< rule-variable slot to bind or compare
  };

  /// One join generator — a POPS atom or a positive Boolean condition atom
  /// — compiled to a flat program step: which positions form the index
  /// key, where each key constant comes from, and what each remaining
  /// position binds or checks. No Term inspection happens at run time.
  struct Generator {
    bool is_bool = false;
    bool is_idb = false;       ///< resolve through the per-call resolver
    int pred = -1;
    int atom_index = -1;       ///< into sp.atoms or sp.conditions
    std::vector<int> key_positions;   ///< arg positions bound beforehand
    std::vector<ValueSource> key_sources;  ///< parallel to key_positions
    std::vector<EntryOp> entry_ops;   ///< non-key positions, in arg order
    /// entry_ops split for the batched join kernel. A kCheck op can only
    /// compare against a variable bound by an earlier kBind of the SAME
    /// atom (anything bound before the atom becomes a key position), so
    /// each check lowers to a same-row column-pair equality: the entry
    /// survives iff its `pos` cell equals its `first_pos` cell. Checks
    /// run first over the whole batch (vector compare + survivor
    /// compress), then the binds run per survivor — rows failing a
    /// check never touch the bind columns.
    struct CheckPair {
      int pos = 0;        ///< position carrying the repeated variable
      int first_pos = 0;  ///< position whose kBind introduced it
    };
    std::vector<CheckPair> check_pairs;
    std::vector<EntryOp> bind_ops;  ///< the kBind subset, in arg order
  };

  struct CompiledDisjunct {
    int disjunct_index = 0;
    const SumProduct* sp = nullptr;
    std::vector<std::pair<int, ConstId>> prebindings;
    std::vector<Generator> generators;
    std::vector<const Condition*> residual;
    /// A residual compare decided false at compile time. The join still
    /// runs with its exact work/probe trace (the residual keeps the
    /// condition, so the scalar kernel fails it per row); the batched
    /// kernel short-circuits the drain instead of paying per-row checks.
    bool always_false = false;
    /// Residual Eq/Ne compares between a variable bound by the LAST
    /// generator and a compile-time-ground side: the vectorized drain
    /// runs these as batched column-vs-scalar masks (MaskEqScalarU32)
    /// instead of per-row re-grounding. `pos` is the bound column of the
    /// last generator's relation, `key` the ground side.
    struct VecResidual {
      int pos;
      ConstId key;
      bool negate;  ///< true for kNe
    };
    std::vector<VecResidual> vec_residuals;
    /// Residual conditions the vectorized drain must still ground per
    /// surviving row (bool-atom lookups, var-var compares, compares not
    /// touching the last generator). residual = vec_residuals ∪ this
    /// whenever the vectorized drain is reachable.
    std::vector<const Condition*> batched_residual;
    std::vector<int> idb_atoms;  ///< indexes of IDB atoms in sp->atoms
    std::vector<int> occ_of_atom;  ///< atom index → IDB occurrence, or -1
    /// Like idb_atoms/occ_of_atom, restricted to atoms whose predicate is
    /// a head of this rule's own reliance group — the only atoms that can
    /// carry a delta during the group's local fixpoint (everything else a
    /// group reads is already converged, so it resolves to T(t)).
    std::vector<int> group_atoms;
    std::vector<int> group_occ_of_atom;  ///< atom index → group occ, or -1
    std::vector<ValueSource> head_sources;  ///< one per head argument
    int scratch_id = -1;  ///< into scratch_ (reusable per-disjunct buffers)
  };

  struct CompiledRule {
    const Rule* rule = nullptr;
    std::vector<CompiledDisjunct> disjuncts;
  };

  /// Reusable join-state buffers for one disjunct evaluation, sized by
  /// SizeScratch(). Executing a disjunct allocates nothing: bindings,
  /// per-level join keys, per-level accumulators and the head tuple all
  /// live here. One Scratch belongs to exactly one concurrent task — the
  /// sequential kernel keeps one per disjunct; the parallel kernel keeps
  /// one per (disjunct, shard) task slot.
  struct Scratch {
    std::vector<ConstId> binding;          ///< rule-variable slots
    std::vector<typename P::Value> acc;    ///< acc[g] = value entering level g
    std::vector<Tuple> keys;               ///< per-level key buffers
    Tuple head;                            ///< head tuple buffer
    std::vector<const RowIdList*> entries;  ///< per-level matched row ids
    std::vector<std::size_t> next;         ///< per-level entry cursor
    // Batched join kernel state. Each level owns a kJoinBatch-wide slice
    // of `survivors` (levels are re-entered while their parents still
    // hold half-consumed batches, so the buffers cannot be shared);
    // `batch` points either into that slice (check levels) or straight
    // into the entry list (check-free levels decode zero-copy).
    std::vector<uint32_t> survivors;       ///< levels × kJoinBatch row ids
    std::vector<const uint32_t*> batch;    ///< per-level current batch
    std::vector<uint32_t> batch_pos;       ///< per-level batch cursor
    std::vector<uint32_t> batch_len;       ///< per-level batch fill
    std::vector<uint32_t> gather_a;        ///< check-gather buffer (lhs)
    std::vector<uint32_t> gather_b;        ///< check-gather buffer (rhs)
    // Vectorized value-plane state (sized only for semirings satisfying
    // VectorizedValuePlane; empty otherwise). val_prod holds one
    // kJoinBatch-wide ⊗-product slice per level, mirroring `survivors`.
    // The ValCell wrapper defeats the std::vector<bool> bit-packing
    // specialization (same trick as Relation's value column); the
    // *_data() views hand the trait kernels a raw carrier span.
    struct ValCell {
      typename P::Value v;
    };
    std::vector<ValCell> val_gather;       ///< gathered value batch
    std::vector<ValCell> val_prod;         ///< levels × kJoinBatch ⊗ acc
    std::vector<ConstId> head_batch;       ///< kJoinBatch × arity head keys
    std::vector<std::size_t> head_hash;    ///< pre-computed head-key hashes
    std::vector<ValCell> head_vals;        ///< per-emission ⊗ products
    std::vector<const ConstId*> head_col;  ///< per-slot varying column or null
    std::vector<ConstId> head_fixed;       ///< per-slot drain-invariant value
    typename P::Value* val_gather_data() {
      static_assert(sizeof(ValCell) == sizeof(typename P::Value) &&
                        alignof(ValCell) == alignof(typename P::Value),
                    "ValCell must be layout-compatible with Value");
      return reinterpret_cast<typename P::Value*>(val_gather.data());
    }
    typename P::Value* val_prod_data() {
      return reinterpret_cast<typename P::Value*>(val_prod.data());
    }
  };

  /// Per-generator inputs of one disjunct evaluation, resolved during the
  /// sequential prepare phase (the only phase that touches the index
  /// caches, build counters, or — with caching off — builds throwaway
  /// local indexes). Immutable during the execute phase, so any number of
  /// shard tasks of the same evaluation may read it concurrently.
  struct PreparedGens {
    std::vector<const RelationIndex<P>*> pops_idx;
    std::vector<const RelationIndex<BoolS>*> bool_idx;
    std::vector<const Relation<P>*> pops_rel;    ///< row-id decode target
    std::vector<const Relation<BoolS>*> bool_rel;
    /// Per-level representation of the serving index, so the execute
    /// phase can classify each Lookup into hash_probes/direct_probes
    /// without re-virtual-dispatching on the index.
    std::vector<IndexRepr> repr;
    /// The driver: level 0's matched entry list (its key depends only on
    /// prebindings, so it is known before execution and is what shards
    /// partition). Null iff the disjunct has no generators.
    const RowIdList* level0 = nullptr;
    /// Caching off: owning storage keeping rebuilt indexes alive for the
    /// duration of the execute phase (the seed's rebuild-per-disjunct
    /// behaviour, preserved for benchmarking).
    std::vector<std::unique_ptr<RelationIndex<P>>> local_pops;
    std::vector<std::unique_ptr<RelationIndex<BoolS>>> local_bool;
  };

  /// One unit of parallel evaluation: a disjunct plus the resolver that
  /// maps its IDB atoms to concrete relation instances (naive: the
  /// current J; semi-naive: the Eq. (64) new/delta/old split for one
  /// occurrence index).
  struct EvalUnit {
    const CompiledRule* cr;
    const CompiledDisjunct* cd;
    std::function<const Relation<P>&(int)> resolver;
  };

  /// Reusable per-task state of the parallel execute phase: join scratch,
  /// the task-private partial head relation, and the task's work counter.
  struct TaskState {
    Scratch scratch;
    Relation<P> partial;
    uint64_t work = 0;
    uint64_t hash_probes = 0;    ///< task-private, reduced in shard order
    uint64_t direct_probes = 0;
    uint64_t join_batched = 0;   ///< rows through the batched join path
    uint64_t values_batched = 0;  ///< head emissions through the value plane
    const CompiledDisjunct* sized_for = nullptr;  ///< scratch shape guard
  };

  void Compile() {
    for (std::size_t rule_index = 0; rule_index < prog_->rules().size();
         ++rule_index) {
      const Rule& rule = prog_->rules()[rule_index];
      const std::vector<int>& own_group_heads =
          reliance_.group_heads[reliance_.group_of_rule[rule_index]];
      CompiledRule cr;
      cr.rule = &rule;
      for (std::size_t d = 0; d < rule.disjuncts.size(); ++d) {
        const SumProduct& sp = rule.disjuncts[d];
        CompiledDisjunct cd;
        cd.disjunct_index = static_cast<int>(d);
        cd.sp = &sp;

        // Pre-bindings from `Var = const` equality chains.
        std::vector<ConstId> pre(rule.num_vars, kUnbound);
        bool changed = true;
        while (changed) {
          changed = false;
          for (const Condition& c : sp.conditions) {
            if (c.kind != Condition::Kind::kCompare || c.op != CmpOp::kEq) {
              continue;
            }
            auto ground = [&](const Term& t) -> ConstId {
              if (!t.IsVar()) return t.constant;
              return pre[t.var];
            };
            auto bind = [&](const Term& a, const Term& b) {
              if (a.IsVar() && pre[a.var] == kUnbound &&
                  ground(b) != kUnbound) {
                pre[a.var] = ground(b);
                changed = true;
              }
            };
            bind(c.lhs, c.rhs);
            bind(c.rhs, c.lhs);
          }
        }
        std::vector<bool> bound(rule.num_vars, false);
        for (int v = 0; v < rule.num_vars; ++v) {
          if (pre[v] != kUnbound) {
            cd.prebindings.emplace_back(v, pre[v]);
            bound[v] = true;
          }
        }

        auto add_generator = [&](bool is_bool, int index, const Atom& a) {
          Generator g;
          g.is_bool = is_bool;
          g.atom_index = index;
          g.pred = a.pred;
          g.is_idb =
              !is_bool && prog_->predicate(a.pred).kind == PredKind::kIdb;
          // One pass over the argument positions: positions whose value is
          // known before this generator (constants and already-bound
          // variables) become index-key slots; the rest become bind/check
          // ops executed per matched entry, in argument order, so a
          // repeated variable is bound by its first occurrence before its
          // later occurrences compare against it.
          std::vector<bool> bound_before = bound;
          for (std::size_t p = 0; p < a.args.size(); ++p) {
            const Term& t = a.args[p];
            if (!t.IsVar()) {
              g.key_positions.push_back(static_cast<int>(p));
              g.key_sources.push_back(ValueSource{-1, t.constant});
            } else if (bound_before[t.var]) {
              g.key_positions.push_back(static_cast<int>(p));
              g.key_sources.push_back(ValueSource{t.var, 0});
            } else if (!bound[t.var]) {
              g.entry_ops.push_back(
                  EntryOp{EntryOp::Kind::kBind, static_cast<int>(p), t.var});
              bound[t.var] = true;
            } else {
              g.entry_ops.push_back(
                  EntryOp{EntryOp::Kind::kCheck, static_cast<int>(p), t.var});
            }
          }
          // Split for the batched kernel: every kCheck pairs with the
          // kBind that introduced its variable earlier in this atom (see
          // Generator::CheckPair — no other source is possible).
          for (const EntryOp& op : g.entry_ops) {
            if (op.kind == EntryOp::Kind::kBind) {
              g.bind_ops.push_back(op);
              continue;
            }
            int first_pos = -1;
            for (const EntryOp& b : g.entry_ops) {
              if (b.kind == EntryOp::Kind::kBind && b.var == op.var) {
                first_pos = b.pos;
                break;
              }
            }
            DLO_CHECK_MSG(first_pos >= 0,
                          "check without a same-atom binding occurrence");
            g.check_pairs.push_back({op.pos, first_pos});
          }
          cd.generators.push_back(std::move(g));
        };

        for (std::size_t i = 0; i < sp.atoms.size(); ++i) {
          const Atom& a = sp.atoms[i];
          DLO_CHECK_MSG(!a.negated,
                        "negated POPS atoms require the grounded engine");
          add_generator(false, static_cast<int>(i), a);
          if (prog_->predicate(a.pred).kind == PredKind::kIdb) {
            cd.idb_atoms.push_back(static_cast<int>(i));
          }
        }
        for (std::size_t i = 0; i < sp.conditions.size(); ++i) {
          const Condition& c = sp.conditions[i];
          if (c.kind != Condition::Kind::kBoolAtom) continue;
          bool binds_new = false;
          for (const Term& t : c.atom.args) {
            if (t.IsVar() && !bound[t.var]) binds_new = true;
          }
          if (binds_new) {
            add_generator(true, static_cast<int>(i), c.atom);
          }
        }
        // Residual checks: everything except bool atoms used as
        // generators — minus compile-time-decidable compares. A compare
        // whose sides are both constants or prebound variables has one
        // truth value for the whole run (prebound variables are never
        // rebound: later occurrences compile to key positions), so
        // re-grounding it per emitted row is pure waste. Always-true
        // ones are dropped here; always-false ones stay residual, so a
        // dead disjunct keeps the exact work/probe trace of its join
        // while emitting nothing.
        for (std::size_t i = 0; i < sp.conditions.size(); ++i) {
          const Condition& c = sp.conditions[i];
          bool is_generator = false;
          for (const Generator& g : cd.generators) {
            if (g.is_bool && g.atom_index == static_cast<int>(i)) {
              is_generator = true;
              break;
            }
          }
          if (is_generator) continue;
          if (c.kind == Condition::Kind::kCompare) {
            std::optional<bool> decided = DecideGroundCompare(c, pre);
            if (decided.has_value() && *decided) continue;
            if (decided.has_value() && !*decided) cd.always_false = true;
          }
          cd.residual.push_back(&c);
        }
        // Classify residuals for the vectorized drain: an Eq/Ne compare
        // between a variable the LAST generator binds and a side that is
        // ground at compile time becomes a batched column-vs-scalar mask;
        // everything else stays a per-row check. Only meaningful when the
        // innermost generator is a POPS atom (the only drain that
        // vectorizes) — a bool innermost generator keeps the full
        // residual on the scalar EmitHead path.
        if (!cd.generators.empty() && !cd.generators.back().is_bool) {
          const Generator& last = cd.generators.back();
          for (const Condition* c : cd.residual) {
            typename CompiledDisjunct::VecResidual vr{-1, 0, false};
            if (c->kind == Condition::Kind::kCompare &&
                (c->op == CmpOp::kEq || c->op == CmpOp::kNe)) {
              auto ground_side = [&](const Term& t, ConstId* out_key) {
                if (!t.IsVar()) {
                  *out_key = t.constant;
                  return true;
                }
                if (pre[t.var] != kUnbound) {
                  *out_key = pre[t.var];
                  return true;
                }
                return false;
              };
              auto last_bound_pos = [&](const Term& t) {
                if (!t.IsVar()) return -1;
                for (const EntryOp& op : last.bind_ops) {
                  if (op.var == t.var) return op.pos;
                }
                return -1;
              };
              ConstId key = 0;
              int pos = last_bound_pos(c->lhs);
              if (pos >= 0 && ground_side(c->rhs, &key)) {
                vr = {pos, key, c->op == CmpOp::kNe};
              } else {
                pos = last_bound_pos(c->rhs);
                if (pos >= 0 && ground_side(c->lhs, &key)) {
                  vr = {pos, key, c->op == CmpOp::kNe};
                }
              }
            }
            if (vr.pos >= 0) {
              cd.vec_residuals.push_back(vr);
            } else {
              cd.batched_residual.push_back(c);
            }
          }
        }

        // O(1) atom-index → IDB-occurrence map for the semi-naive
        // differential rule (Eq. 64): the resolver must not re-scan
        // idb_atoms on every atom resolution of every iteration.
        cd.occ_of_atom.assign(sp.atoms.size(), -1);
        for (std::size_t k = 0; k < cd.idb_atoms.size(); ++k) {
          cd.occ_of_atom[cd.idb_atoms[k]] = static_cast<int>(k);
        }
        // Group-restricted occurrence map for the ordered scheduler's
        // local differential rounds (group_heads are sorted).
        cd.group_occ_of_atom.assign(sp.atoms.size(), -1);
        for (int atom : cd.idb_atoms) {
          if (std::binary_search(own_group_heads.begin(),
                                 own_group_heads.end(),
                                 sp.atoms[atom].pred)) {
            cd.group_occ_of_atom[atom] = static_cast<int>(cd.group_atoms.size());
            cd.group_atoms.push_back(atom);
          }
        }

        // Head slots: range restriction (validate.cc) guarantees every
        // head variable is bound once all generators have run.
        for (const Term& t : rule.head.args) {
          if (t.IsVar()) {
            DLO_CHECK_MSG(bound[t.var], "unbound head variable");
            cd.head_sources.push_back(ValueSource{t.var, 0});
          } else {
            cd.head_sources.push_back(ValueSource{-1, t.constant});
          }
        }

        // Reusable evaluation buffers, exactly sized for this disjunct
        // (the sequential kernel's one-task-per-disjunct slots).
        cd.scratch_id = static_cast<int>(scratch_.size());
        Scratch sc;
        SizeScratch(rule, cd, &sc);
        scratch_.push_back(std::move(sc));
        prepared_.emplace_back();

        cr.disjuncts.push_back(std::move(cd));
      }
      compiled_.push_back(std::move(cr));
    }
  }

  /// Bounds cache memory between joining steps — the only time no
  /// RelationIndex references are live.
  void SweepCaches() const {
    pops_cache_.MaybeEvict();
    bool_cache_.MaybeEvict();
  }

  /// F(J) evaluated into `out` (fresh instance), counting join work.
  void ApplyIco(const IdbInstance<P>& j, IdbInstance<P>* out,
                uint64_t* work) const {
    if (pool_) {
      std::vector<int> all(compiled_.size());
      for (std::size_t i = 0; i < all.size(); ++i) {
        all[i] = static_cast<int>(i);
      }
      std::vector<EvalUnit> units = NaiveUnits(all, j);
      ApplyUnitsParallel(units, out, work);
      return;
    }
    for (const CompiledRule& cr : compiled_) {
      ApplyRule(cr, j, out, work);
    }
  }

  /// The naive-evaluation units for a rule subset: every disjunct of every
  /// listed rule, resolving IDB atoms against `j` — in the exact order the
  /// sequential ApplyRule loop evaluates them.
  std::vector<EvalUnit> NaiveUnits(const std::vector<int>& rule_ids,
                                   const IdbInstance<P>& j) const {
    std::vector<EvalUnit> units;
    for (int r : rule_ids) {
      DLO_CHECK(r >= 0 && r < static_cast<int>(compiled_.size()));
      const CompiledRule& cr = compiled_[r];
      for (const CompiledDisjunct& cd : cr.disjuncts) {
        const CompiledDisjunct* cdp = &cd;
        units.push_back(EvalUnit{
            &cr, cdp,
            [this, cdp, &j](int atom_index) -> const Relation<P>& {
              const int pred = cdp->sp->atoms[atom_index].pred;
              if (prog_->predicate(pred).kind != PredKind::kIdb) {
                return edb_->pops(pred);
              }
              return j.idb(pred);
            }});
      }
    }
    return units;
  }

  /// Ordered naive evaluation: one local naive fixpoint per reliance
  /// group, producers first, with everything below frozen — the
  /// rule-level analogue of stratified evaluation (stratified.h), with
  /// groups finer than strata. Reaches the same least fixpoint as the
  /// global sweep: the condensation order makes every predicate a group
  /// reads (beyond its own heads) final before the group runs. `steps`
  /// sums the local stability indexes; max_steps is a TOTAL budget
  /// across groups, so ordered never exceeds the sweep's iteration cap.
  EvalResult<P> NaiveOrdered(int max_steps) const {
    IdbInstance<P> j(*prog_);
    int steps = 0;
    uint64_t work = 0;
    for (int g = 0; g < reliance_.num_groups(); ++g) {
      if (steps >= max_steps) return {std::move(j), max_steps, false, work};
      EvalResult<P> r =
          NaiveWithRules(reliance_.groups[g], j, max_steps - steps);
      steps += r.steps;
      work += r.work;
      group_iterations_ +=
          static_cast<uint64_t>(r.steps) + (r.converged ? 1 : 0);
      if (!r.converged) return {std::move(r.idb), max_steps, false, work};
      j = std::move(r.idb);
    }
    return {std::move(j), steps, true, work};
  }

  /// The ordered scheduler's differential evaluation: per reliance group,
  /// a seed application of the group's rules over the accumulated T
  /// (δ_g = F_g(T) ⊖ T over the group's heads), then — for recursive
  /// groups only — local semi-naive rounds (Eq. 64/65 restricted to the
  /// occurrences of the group's own heads) in which only TRIGGERED rules
  /// run: a rule re-evaluates iff some group-head predicate it reads
  /// still holds a live delta. Deltas drain through the shared `delta`
  /// instance; rules whose inputs have drained count into rules_skipped()
  /// instead of being evaluated.
  ///
  /// Soundness: lower-group predicates are constants of F_g by the
  /// condensation order, so the differential expansion over group
  /// occurrences is exactly Eq. (64) for F_g; the warm-start invariant
  /// F_g(T_prev) ≼ T holds after the seed by x ⊕ (y ⊖ x) ⊒ y and is then
  /// maintained as in the global algorithm (Theorem 6.4). For a single
  /// recursive rule (every golden recursion) the local trace replays the
  /// global one operation for operation — same seed, same rounds, same
  /// ⊖ scan and merge orders — so fixpoints, steps, `work` and index
  /// counters are bit-identical to kSweep there.
  EvalResult<P> SemiNaiveOrdered(int max_steps) const
    requires CompleteDistributiveDioid<P>
  {
    uint64_t work = 0;
    int steps = 0;
    IdbInstance<P> t_old(*prog_);  // T before the last local merge
    IdbInstance<P> t_new(*prog_);  // the accumulated T across groups
    // Live deltas of the running group. Like the sweep scheduler, every
    // δ — the seed's and each local round's — is diffed directly into
    // `delta` (ClearPreds + DiffRows), keeping the delta relations on the
    // Clear-plus-append mutation pattern the index cache refreshes
    // incrementally.
    IdbInstance<P> delta(*prog_);
    IdbInstance<P> candidate(*prog_);
    std::vector<int> triggered;

    for (int g = 0; g < reliance_.num_groups(); ++g) {
      const std::vector<int>& rules = reliance_.groups[g];
      const std::vector<int>& heads = reliance_.group_heads[g];
      if (steps >= max_steps) {
        return {std::move(t_new), max_steps, false, work};
      }

      // Seed: C = F_g(T), δ = C ⊖ T over the group's heads. For the
      // first group T = 0, making this exactly the global t = 0 step.
      candidate.ClearPreds(heads);
      if (pool_) {
        ApplyUnitsParallel(NaiveUnits(rules, t_new), &candidate, &work);
      } else {
        for (int r : rules) ApplyRule(compiled_[r], t_new, &candidate, &work);
      }
      ++steps;
      ++group_iterations_;
      delta.ClearPreds(heads);  // may hold stale rows of a shared head
      bool any_delta = false;
      for (int pred : heads) {
        if (DiffRows(candidate.idb(pred), t_new.idb(pred),
                     &delta.idb(pred))) {
          any_delta = true;
        }
      }
      if (!any_delta) continue;
      t_old.CopyPredsFrom(t_new, heads);
      for (int pred : heads) MergeRows(delta.idb(pred), &t_new.idb(pred));
      if (!reliance_.group_recursive[g]) continue;  // nothing can retrigger

      // Local differential rounds over the group.
      bool drained = false;
      while (steps < max_steps) {
        SweepCaches();
        triggered.clear();
        for (int r : rules) {
          bool fire = false;
          for (int pred : reliance_.rule_body_idb[r]) {
            if (delta.HasSupport(pred) &&
                std::binary_search(heads.begin(), heads.end(), pred)) {
              fire = true;
              break;
            }
          }
          if (fire) {
            triggered.push_back(r);
          } else {
            ++rules_skipped_;
          }
        }
        if (triggered.empty()) {  // live deltas feed no rule of this group
          drained = true;
          break;
        }
        ++steps;
        ++group_iterations_;
        candidate.ClearPreds(heads);
        if (pool_) {
          BuildGroupUnits(triggered, t_new, delta, t_old, &group_units_);
          ApplyUnitsParallel(group_units_, &candidate, &work);
        } else {
          for (int r : triggered) {
            const CompiledRule& cr = compiled_[r];
            for (const CompiledDisjunct& cd : cr.disjuncts) {
              // occurrences == 0: the disjunct reads nothing the group
              // still moves — its one-shot contribution was the seed's.
              const int occurrences =
                  static_cast<int>(cd.group_atoms.size());
              for (int ell = 0; ell < occurrences; ++ell) {
                auto resolver = [&](int atom_index) -> const Relation<P>& {
                  const int pred = cd.sp->atoms[atom_index].pred;
                  if (prog_->predicate(pred).kind != PredKind::kIdb) {
                    return edb_->pops(pred);
                  }
                  const int occ = cd.group_occ_of_atom[atom_index];
                  if (occ < 0 || occ < ell) return t_new.idb(pred);
                  if (occ == ell) return delta.idb(pred);
                  return t_old.idb(pred);
                };
                EvalDisjunct(cd, resolver,
                             &candidate.idb(cr.rule->head.pred), &work);
              }
            }
          }
        }
        // δ(t) = C ⊖ T(t) over the group's heads — into `delta` itself.
        delta.ClearPreds(heads);
        bool all_empty = true;
        for (int pred : heads) {
          if (DiffRows(candidate.idb(pred), t_new.idb(pred),
                       &delta.idb(pred))) {
            all_empty = false;
          }
        }
        if (all_empty) {
          drained = true;
          break;
        }
        t_old.CopyPredsFrom(t_new, heads);
        for (int pred : heads) {
          MergeRows(delta.idb(pred), &t_new.idb(pred));
        }
        t_new.CompactPreds(heads);
      }
      if (!drained) return {std::move(t_new), max_steps, false, work};
    }
    return {std::move(t_new), steps, true, work};
  }

  /// δ = candidate ⊖ base for one predicate, appended into *out in
  /// candidate's row order; returns true iff any nonzero difference was
  /// stored. The shared ⊖ scan of both semi-naive variants — identical
  /// code path keeps sweep and ordered value/order behaviour aligned.
  bool DiffRows(const Relation<P>& candidate, const Relation<P>& base,
                Relation<P>* out) const
    requires CompleteDistributiveDioid<P>
  {
    bool any = false;
    const uint32_t rows = candidate.num_rows();
    for (uint32_t r = 0; r < rows; ++r) {
      if (!candidate.RowLive(r)) continue;
      typename P::Value d =
          P::Minus(candidate.ValueAt(r), base.Get(candidate.View(r)));
      if (!P::Eq(d, P::Zero())) {
        out->Set(candidate.View(r), d);
        any = true;
      }
    }
    return any;
  }

  /// T ⊕= δ row-wise for one predicate, in δ's row order.
  static void MergeRows(const Relation<P>& from, Relation<P>* into) {
    const uint32_t rows = from.num_rows();
    for (uint32_t r = 0; r < rows; ++r) {
      if (!from.RowLive(r)) continue;
      into->Merge(from.View(r), from.ValueAt(r));
    }
  }

  /// The ordered scheduler's differential units for one group round:
  /// every (triggered rule, disjunct, group occurrence) in the exact
  /// order of the sequential loop in SemiNaiveOrdered, resolving through
  /// the persistent t_new/delta/t_old instances (stable Relation
  /// objects, so cached delta indexes stay attached across rounds).
  void BuildGroupUnits(const std::vector<int>& rule_ids,
                       const IdbInstance<P>& t_new,
                       const IdbInstance<P>& delta,
                       const IdbInstance<P>& t_old,
                       std::vector<EvalUnit>* units) const {
    units->clear();
    for (int r : rule_ids) {
      const CompiledRule& cr = compiled_[r];
      for (const CompiledDisjunct& cd : cr.disjuncts) {
        const int occurrences = static_cast<int>(cd.group_atoms.size());
        const CompiledDisjunct* cdp = &cd;
        for (int ell = 0; ell < occurrences; ++ell) {
          units->push_back(EvalUnit{
              &cr, cdp,
              [this, cdp, ell, &t_new, &delta,
               &t_old](int atom_index) -> const Relation<P>& {
                const int pred = cdp->sp->atoms[atom_index].pred;
                if (prog_->predicate(pred).kind != PredKind::kIdb) {
                  return edb_->pops(pred);
                }
                const int occ = cdp->group_occ_of_atom[atom_index];
                if (occ < 0 || occ < ell) return t_new.idb(pred);
                if (occ == ell) return delta.idb(pred);
                return t_old.idb(pred);
              }});
        }
      }
    }
  }

  // ------- Incremental maintenance internals (Engine::Update) -------

  enum class CascadeOutcome { kConverged, kBudget, kInexact };

  /// Full recompute from the (already mutated) EDB into the caller's
  /// instance — the fallback every incremental route shares. Content is
  /// copied into `idb`'s existing Relation objects, so their uids (and
  /// any cached indexes) survive even the fallback.
  void Recompute(IdbInstance<P>* idb, int max_steps,
                 UpdateResult* res) const {
    EvalResult<P> r = [&] {
      if constexpr (CompleteDistributiveDioid<P>) return SemiNaive(max_steps);
      return Naive(max_steps);
    }();
    idb->CopyContentsFrom(r.idb);
    res->rounds += r.steps;
    res->work += r.work;
    if (!r.converged) res->converged = false;
  }

  /// Evaluates the multilinear EDB cross terms of F(T) over a set of
  /// changed EDB predicates, merging into `out`: for every disjunct and
  /// every occurrence ℓ of a changed predicate (in atom order), one
  /// sum-product with occurrence ℓ reading delta_by_pred, earlier changed
  /// occurrences reading the live EDB, later ones reading hi_by_pred
  /// (null entry = live EDB) and IDB atoms reading `idb`. With hi = the
  /// pre-mutation snapshots this is exactly F_new(T) "⊖" F_old(T)
  /// realized as fresh mass (multilinearity — no subtraction happens, so
  /// it is valid in any carrier); with hi = live it evaluates the
  /// one-step mass through the delta, the DRed affected seed.
  void EvalEdbCrossTerms(const std::vector<const Relation<P>*>& delta_by_pred,
                         const std::vector<const Relation<P>*>& hi_by_pred,
                         const IdbInstance<P>& idb, IdbInstance<P>* out,
                         uint64_t* work) const {
    std::vector<EvalUnit> units;
    std::vector<int> changed;
    for (const CompiledRule& cr : compiled_) {
      for (const CompiledDisjunct& cd : cr.disjuncts) {
        changed.clear();
        for (std::size_t i = 0; i < cd.sp->atoms.size(); ++i) {
          if (cd.occ_of_atom[i] < 0 &&
              delta_by_pred[cd.sp->atoms[i].pred] != nullptr) {
            changed.push_back(static_cast<int>(i));
          }
        }
        const CompiledDisjunct* cdp = &cd;
        for (int ell_atom : changed) {
          auto resolver = [this, cdp, ell_atom, &idb, &delta_by_pred,
                           &hi_by_pred](int atom_index)
              -> const Relation<P>& {
            const int pred = cdp->sp->atoms[atom_index].pred;
            if (cdp->occ_of_atom[atom_index] >= 0) return idb.idb(pred);
            const Relation<P>* d = delta_by_pred[pred];
            if (d == nullptr) return edb_->pops(pred);  // unchanged
            if (atom_index < ell_atom) return edb_->pops(pred);
            if (atom_index == ell_atom) return *d;
            const Relation<P>* hi = hi_by_pred[pred];
            return hi != nullptr ? *hi : edb_->pops(pred);
          };
          if (pool_) {
            units.push_back(EvalUnit{&cr, cdp, resolver});
          } else {
            EvalDisjunct(cd, resolver, &out->idb(cr.rule->head.pred), work);
          }
        }
      }
    }
    if (pool_ && !units.empty()) ApplyUnitsParallel(units, out, work);
  }

  /// The unit list for EvalDifferentialRound's pool path — SemiNaive's
  /// unit shape, with EDB atoms resolved to the live EDB. References the
  /// caller's instances: rebuild only when they move.
  std::vector<EvalUnit> DifferentialUnits(const IdbInstance<P>& cur,
                                          const IdbInstance<P>& delta,
                                          const IdbInstance<P>& prev) const {
    std::vector<EvalUnit> units;
    for (const CompiledRule& cr : compiled_) {
      for (const CompiledDisjunct& cd : cr.disjuncts) {
        const int occurrences = static_cast<int>(cd.idb_atoms.size());
        if (occurrences == 0) continue;
        const CompiledDisjunct* cdp = &cd;
        for (int ell = 0; ell < occurrences; ++ell) {
          units.push_back(EvalUnit{
              &cr, cdp,
              [this, cdp, ell, &cur, &delta,
               &prev](int atom_index) -> const Relation<P>& {
                const int pred = cdp->sp->atoms[atom_index].pred;
                const int occ = cdp->occ_of_atom[atom_index];
                if (occ < 0) return edb_->pops(pred);
                if (occ < ell) return cur.idb(pred);
                if (occ == ell) return delta.idb(pred);
                return prev.idb(pred);
              }});
        }
      }
    }
    return units;
  }

  /// One differential round body (Eq. 64 with caller-supplied instances):
  /// candidate ⊕= Σ_disjuncts Σ_ℓ G(cur <ℓ, delta at ℓ, prev >ℓ), EDB
  /// atoms reading the live EDB, in SemiNaive's exact (rule, disjunct, ℓ)
  /// order. `units` is the pool path's prebuilt list (ignored
  /// sequentially).
  void EvalDifferentialRound(const IdbInstance<P>& cur,
                             const IdbInstance<P>& delta,
                             const IdbInstance<P>& prev,
                             const std::vector<EvalUnit>& units,
                             IdbInstance<P>* candidate,
                             uint64_t* work) const {
    if (pool_) {
      ApplyUnitsParallel(units, candidate, work);
      return;
    }
    for (const CompiledRule& cr : compiled_) {
      for (const CompiledDisjunct& cd : cr.disjuncts) {
        const int occurrences = static_cast<int>(cd.idb_atoms.size());
        for (int ell = 0; ell < occurrences; ++ell) {
          auto resolver = [&](int atom_index) -> const Relation<P>& {
            const int pred = cd.sp->atoms[atom_index].pred;
            const int occ = cd.occ_of_atom[atom_index];
            if (occ < 0) return edb_->pops(pred);
            if (occ < ell) return cur.idb(pred);
            if (occ == ell) return delta.idb(pred);
            return prev.idb(pred);
          };
          EvalDisjunct(cd, resolver, &candidate->idb(cr.rule->head.pred),
                       work);
        }
      }
    }
  }

  /// δ = candidate relative to base, per IDB predicate: ⊖ on dioids. On
  /// carriers without ⊖ the candidate rows ARE the fresh derivation mass
  /// (the cross terms never double-count, by multilinearity), so each row
  /// is kept verbatim — unless the base already ⊕-absorbs it, which in
  /// the shipped carriers means a saturated value (ℕ's ∞, saturated
  /// polynomial coefficients). Dropping absorbed rows is what makes
  /// cascades through saturated cycles terminate, and is sound because an
  /// absorbed row can only produce further absorbed mass downstream: any
  /// one-step image a ⊗ c ⊗ b of mass c absorbed at a saturated tuple is
  /// itself absorbed by the a ⊗ T(u) ⊗ b mass the target already holds.
  bool DeltaFromCandidate(const IdbInstance<P>& candidate,
                          const IdbInstance<P>& base,
                          IdbInstance<P>* delta) const {
    bool any = false;
    for (int pred : prog_->IdbPredicates()) {
      const Relation<P>& c = candidate.idb(pred);
      if constexpr (CompleteDistributiveDioid<P>) {
        if (DiffRows(c, base.idb(pred), &delta->idb(pred))) any = true;
      } else {
        const Relation<P>& b = base.idb(pred);
        Relation<P>& out = delta->idb(pred);
        const uint32_t rows = c.num_rows();
        for (uint32_t r = 0; r < rows; ++r) {
          if (!c.RowLive(r)) continue;
          const typename P::Value bv = b.Get(c.View(r));
          if (P::Eq(P::Plus(bv, c.ValueAt(r)), bv)) continue;
          out.Set(c.View(r), c.ValueAt(r));
          any = true;
        }
      }
    }
    return any;
  }

  /// Differential rounds of a warm cascade: repeat candidate = Eq. (64)
  /// cross terms, δ = candidate relative to T, T ⊕= δ, until δ drains or
  /// the budget runs out (converged=false, T left mid-cascade).
  void RunMergeRounds(IdbInstance<P>* t_new, IdbInstance<P>* delta,
                      IdbInstance<P>* t_old, IdbInstance<P>* candidate,
                      int max_steps, UpdateResult* res,
                      uint64_t* work) const {
    std::vector<EvalUnit> units;
    if (pool_) units = DifferentialUnits(*t_new, *delta, *t_old);
    while (true) {
      if (res->rounds >= max_steps) {
        res->converged = false;
        return;
      }
      SweepCaches();
      candidate->ClearAll();
      EvalDifferentialRound(*t_new, *delta, *t_old, units, candidate, work);
      ++res->rounds;
      delta->ClearAll();
      if (!DeltaFromCandidate(*candidate, *t_new, delta)) return;
      t_old->CopyContentsFrom(*t_new);
      for (int pred : prog_->IdbPredicates()) {
        MergeRows(delta->idb(pred), &t_new->idb(pred));
      }
      t_new->CompactAll();
    }
  }

  /// Insert-only cascade: snapshot the changed predicates, ⊕-merge the
  /// added facts into the live EDB, seed with the EDB cross terms, then
  /// run ordinary differential rounds from the warm T.
  void InsertCascade(const EdbDelta<P>& batch, EdbInstance<P>* edb,
                     IdbInstance<P>* idb, int max_steps,
                     UpdateResult* res) const {
    const int n = prog_->num_predicates();
    std::vector<std::unique_ptr<Relation<P>>> owned;
    std::vector<const Relation<P>*> snap(n, nullptr);
    std::vector<Relation<P>*> delta_rel(n, nullptr);
    for (const auto& add : batch.pops_adds) {
      if (delta_rel[add.pred] != nullptr) continue;
      // Snapshot BEFORE the merges below: the seed's later-occurrence
      // slots must read the pre-mutation contents.
      owned.push_back(std::make_unique<Relation<P>>(edb->pops(add.pred)));
      snap[add.pred] = owned.back().get();
      owned.push_back(
          std::make_unique<Relation<P>>(edb->pops(add.pred).arity()));
      delta_rel[add.pred] = owned.back().get();
    }
    for (const auto& add : batch.pops_adds) {
      delta_rel[add.pred]->Merge(add.tuple, add.value);
      edb->pops(add.pred).Merge(add.tuple, add.value);
    }
    bool have_delta = false;
    for (int p = 0; p < n; ++p) {
      if (delta_rel[p] == nullptr) continue;
      if (delta_rel[p]->empty()) {
        delta_rel[p] = nullptr;  // all-⊥ adds: nothing actually changed
      } else {
        have_delta = true;
      }
    }
    if (!have_delta) return;
    std::vector<const Relation<P>*> delta_cv(delta_rel.begin(),
                                             delta_rel.end());
    SweepCaches();
    IdbInstance<P> candidate(*prog_);
    uint64_t work = 0;
    EvalEdbCrossTerms(delta_cv, snap, *idb, &candidate, &work);
    ++res->rounds;
    IdbInstance<P> delta(*prog_);
    if (DeltaFromCandidate(candidate, *idb, &delta)) {
      IdbInstance<P> t_old(*prog_);
      t_old.CopyContentsFrom(*idb);
      for (int pred : prog_->IdbPredicates()) {
        MergeRows(delta.idb(pred), &idb->idb(pred));
      }
      idb->CompactAll();
      RunMergeRounds(idb, &delta, &t_old, &candidate, max_steps, res, &work);
    }
    res->work += work;
  }

  /// Exact-deletion cascade for count-carrying carriers: snapshot the
  /// deleted predicates, Erase the facts (E_new), then subtract the
  /// removed derivation mass back out of T round by round. The seed is
  /// the same cross-term evaluator as the insert cascade — the removed
  /// mass of one ICO step; each round retracts the previous round's rows
  /// from T (DeletionTraits::Retract — exact) and evaluates the next
  /// cross terms over the (retracted, previous) pair. Terminates when no
  /// mass is left to remove. Any Retract failure — a saturated value has
  /// forgotten its count — aborts with kInexact: the EDB deletes are
  /// already applied and `idb`'s contents are garbage until the caller's
  /// recompute overwrites them (Recompute ignores prior contents).
  CascadeOutcome ExactDeleteCascade(const EdbDelta<P>& batch,
                                    EdbInstance<P>* edb, IdbInstance<P>* idb,
                                    int max_steps, UpdateResult* res) const
    requires SupportsExactDeletion<P>
  {
    const int n = prog_->num_predicates();
    std::vector<std::unique_ptr<Relation<P>>> owned;
    std::vector<const Relation<P>*> snap(n, nullptr);
    std::vector<Relation<P>*> delta_rel(n, nullptr);
    for (const auto& del : batch.pops_deletes) {
      if (delta_rel[del.pred] != nullptr) continue;
      owned.push_back(std::make_unique<Relation<P>>(edb->pops(del.pred)));
      snap[del.pred] = owned.back().get();
      owned.push_back(
          std::make_unique<Relation<P>>(edb->pops(del.pred).arity()));
      delta_rel[del.pred] = owned.back().get();
    }
    bool any_removed = false;
    for (const auto& del : batch.pops_deletes) {
      Relation<P>& rel = edb->pops(del.pred);
      const typename P::Value old_v = rel.Get(del.tuple);
      if (P::Eq(old_v, P::Zero())) continue;  // absent: deleting is a no-op
      delta_rel[del.pred]->Set(del.tuple, old_v);
      rel.Erase(del.tuple);
      any_removed = true;
    }
    if (!any_removed) return CascadeOutcome::kConverged;
    std::vector<const Relation<P>*> delta_cv(delta_rel.begin(),
                                             delta_rel.end());
    SweepCaches();
    IdbInstance<P> candidate(*prog_);
    uint64_t work = 0;
    EvalEdbCrossTerms(delta_cv, snap, *idb, &candidate, &work);
    ++res->rounds;
    IdbInstance<P> removed(*prog_);  // δ⁻ the next round propagates
    IdbInstance<P> t_prev(*prog_);
    std::vector<EvalUnit> units;
    if (pool_) units = DifferentialUnits(*idb, removed, t_prev);
    while (true) {
      removed.ClearAll();
      bool any = false;
      for (int pred : prog_->IdbPredicates()) {
        const Relation<P>& c = candidate.idb(pred);
        const uint32_t rows = c.num_rows();
        for (uint32_t r = 0; r < rows; ++r) {
          if (!c.RowLive(r)) continue;
          removed.idb(pred).Set(c.View(r), c.ValueAt(r));
          any = true;
        }
      }
      if (!any) {
        res->work += work;
        return CascadeOutcome::kConverged;
      }
      // T_prev ← T, then T ⊖= removed (exact, or bail out).
      t_prev.CopyContentsFrom(*idb);
      for (int pred : prog_->IdbPredicates()) {
        const Relation<P>& rem = removed.idb(pred);
        Relation<P>& t = idb->idb(pred);
        const uint32_t rows = rem.num_rows();
        for (uint32_t r = 0; r < rows; ++r) {
          if (!rem.RowLive(r)) continue;
          typename P::Value left;
          if (!DeletionTraits<P>::Retract(t.Get(rem.View(r)), rem.ValueAt(r),
                                          &left)) {
            res->work += work;
            return CascadeOutcome::kInexact;
          }
          t.Set(rem.View(r), left);  // ⊥ tombstones the row
        }
      }
      idb->CompactAll();
      if (res->rounds >= max_steps) {
        res->work += work;
        return CascadeOutcome::kBudget;
      }
      SweepCaches();
      candidate.ClearAll();
      EvalDifferentialRound(*idb, removed, t_prev, units, &candidate, &work);
      ++res->rounds;
    }
  }

  /// DRed for complete distributive dioids, in three phases. (1) AFFECTED
  /// cascade over the pre-mutation instance: a semi-naive fixpoint of the
  /// one-step mass through the deleted facts, carrying the real removed
  /// ⊕-values so selective-⊕ carriers (min/max/or) can drop tuples whose
  /// stored optimum beats every deleted-using derivation. Correctness of
  /// that filter is optimal substructure: subtrees of an optimal
  /// deleted-using tree are optimal deleted-using at their own roots, so
  /// every truly affected tuple — ties included — survives. Non-selective
  /// dioids (PosBool) keep the whole reachable cone (plain support-level
  /// DRed). (2) Prune the cone from T and apply the whole EDB batch.
  /// (3) Re-derive: seed = insert cross terms ⊕ a backward point
  /// re-derivation of every pruned tuple, then ordinary differential
  /// rounds. Unpruned rows need no seed slot — they satisfy
  /// F_new(T_start)(u) ⊑ T_start(u), so their diff is ⊥.
  void DredUpdate(const EdbDelta<P>& batch, EdbInstance<P>* edb,
                  IdbInstance<P>* idb, int max_steps,
                  UpdateResult* res) const
    requires CompleteDistributiveDioid<P>
  {
    const int n = prog_->num_predicates();
    uint64_t work = 0;
    // ---- Phase 1: affected cascade (EDB not yet mutated). ----
    std::vector<std::unique_ptr<Relation<P>>> owned;
    std::vector<const Relation<P>*> no_snap(n, nullptr);
    std::vector<Relation<P>*> del_rel(n, nullptr);
    for (const auto& del : batch.pops_deletes) {
      if (del_rel[del.pred] == nullptr) {
        owned.push_back(
            std::make_unique<Relation<P>>(edb->pops(del.pred).arity()));
        del_rel[del.pred] = owned.back().get();
      }
      const typename P::Value old_v = edb->pops(del.pred).Get(del.tuple);
      if (!P::Eq(old_v, P::Zero())) del_rel[del.pred]->Set(del.tuple, old_v);
    }
    std::vector<const Relation<P>*> del_cv(del_rel.begin(), del_rel.end());
    IdbInstance<P> candidate(*prog_);
    IdbInstance<P> affected(*prog_);   // accumulated affected mass
    IdbInstance<P> aff_delta(*prog_);  // last round's fresh mass
    SweepCaches();
    EvalEdbCrossTerms(del_cv, no_snap, *idb, &candidate, &work);
    ++res->rounds;
    std::vector<EvalUnit> units;
    if (pool_) units = DifferentialUnits(*idb, aff_delta, *idb);
    while (true) {
      aff_delta.ClearAll();
      bool any = false;
      for (int pred : prog_->IdbPredicates()) {
        const Relation<P>& c = candidate.idb(pred);
        const Relation<P>& told = idb->idb(pred);
        const Relation<P>& acc = affected.idb(pred);
        Relation<P>& out = aff_delta.idb(pred);
        const uint32_t rows = c.num_rows();
        for (uint32_t r = 0; r < rows; ++r) {
          if (!c.RowLive(r)) continue;
          const typename P::Value cv = c.ValueAt(r);
          if constexpr (DeletionTraits<P>::kSelectivePlus) {
            // The stored optimum beats every deleted-using derivation of
            // this tuple: the tuple — and anything reachable through it
            // ALONE — is unaffected.
            if (!P::Eq(P::Plus(cv, told.Get(c.View(r))), cv)) continue;
          }
          const typename P::Value d = P::Minus(cv, acc.Get(c.View(r)));
          if (P::Eq(d, P::Zero())) continue;
          out.Set(c.View(r), d);
          any = true;
        }
      }
      if (!any) break;
      for (int pred : prog_->IdbPredicates()) {
        MergeRows(aff_delta.idb(pred), &affected.idb(pred));
      }
      if (res->rounds >= max_steps) {
        // Budget blew inside the affected cascade: apply the EDB batch so
        // the instance at least reflects it, and report non-convergence
        // (idb is stale, like any non-converged run's partial output).
        for (const auto& del : batch.pops_deletes) {
          edb->pops(del.pred).Erase(del.tuple);
        }
        for (const auto& add : batch.pops_adds) {
          edb->pops(add.pred).Merge(add.tuple, add.value);
        }
        res->converged = false;
        res->work += work;
        return;
      }
      SweepCaches();
      candidate.ClearAll();
      EvalDifferentialRound(*idb, aff_delta, *idb, units, &candidate, &work);
      ++res->rounds;
    }
    // ---- Phase 2: prune the cone, apply the EDB batch. ----
    std::vector<std::pair<int, Tuple>> pruned;
    for (int pred : prog_->IdbPredicates()) {
      const Relation<P>& a = affected.idb(pred);
      Relation<P>& t = idb->idb(pred);
      const uint32_t rows = a.num_rows();
      for (uint32_t r = 0; r < rows; ++r) {
        if (!a.RowLive(r)) continue;
        if (!t.Erase(a.View(r))) continue;
        Tuple tup(static_cast<std::size_t>(a.arity()), 0);
        for (int p = 0; p < a.arity(); ++p) tup[p] = a.Cell(r, p);
        pruned.emplace_back(pred, std::move(tup));
      }
    }
    idb->CompactAll();
    for (const auto& del : batch.pops_deletes) {
      edb->pops(del.pred).Erase(del.tuple);
    }
    std::vector<const Relation<P>*> add_snap(n, nullptr);
    std::vector<Relation<P>*> add_rel(n, nullptr);
    for (const auto& add : batch.pops_adds) {
      if (add_rel[add.pred] != nullptr) continue;
      // Snapshot AFTER the deletes, BEFORE the adds: the insert seed's
      // later-occurrence slots read the mid-mutation contents.
      owned.push_back(std::make_unique<Relation<P>>(edb->pops(add.pred)));
      add_snap[add.pred] = owned.back().get();
      owned.push_back(
          std::make_unique<Relation<P>>(edb->pops(add.pred).arity()));
      add_rel[add.pred] = owned.back().get();
    }
    bool have_adds = false;
    for (const auto& add : batch.pops_adds) {
      add_rel[add.pred]->Merge(add.tuple, add.value);
      edb->pops(add.pred).Merge(add.tuple, add.value);
      if (!add_rel[add.pred]->empty()) have_adds = true;
    }
    std::vector<const Relation<P>*> add_cv(add_rel.begin(), add_rel.end());
    // ---- Phase 3: re-derive. ----
    SweepCaches();
    candidate.ClearAll();
    if (have_adds) {
      EvalEdbCrossTerms(add_cv, add_snap, *idb, &candidate, &work);
    }
    for (const auto& [pred, tup] : pruned) {
      const typename P::Value v = RederiveTuple(pred, tup, *idb, &work);
      if (!P::Eq(v, P::Zero())) candidate.idb(pred).Merge(tup, v);
    }
    ++res->rounds;
    IdbInstance<P> delta(*prog_);
    if (DeltaFromCandidate(candidate, *idb, &delta)) {
      IdbInstance<P> t_old(*prog_);
      t_old.CopyContentsFrom(*idb);
      for (int pred : prog_->IdbPredicates()) {
        MergeRows(delta.idb(pred), &idb->idb(pred));
      }
      idb->CompactAll();
      RunMergeRounds(idb, &delta, &t_old, &candidate, max_steps, res, &work);
    }
    for (const auto& [pred, tup] : pruned) {
      if (idb->idb(pred).Contains(tup)) ++res->deleted_rederived;
    }
    res->work += work;
  }

  /// Backward point re-derivation: F(T)(tuple) for ONE head tuple — the
  /// DRed re-derive seed for a pruned tuple. The head binding grounds
  /// positions the forward compilation treated as free, so the key sets
  /// differ from the compiled generators': each level re-plans its key
  /// (the currently ground argument positions) against the live binding
  /// and probes through the shared index cache — unpinned, so the
  /// point-query indexes amortize across the pruned set and sweep away
  /// afterwards. ⊕ across derivations is exactly associative/commutative
  /// for every DRed carrier (min/max/or/antichain union), so enumeration
  /// order cannot perturb values.
  typename P::Value RederiveTuple(int head_pred, const Tuple& tuple,
                                  const IdbInstance<P>& idb,
                                  uint64_t* work) const {
    typename P::Value total = P::Zero();
    std::vector<ConstId> binding;
    for (const CompiledRule& cr : compiled_) {
      if (cr.rule->head.pred != head_pred) continue;
      for (const CompiledDisjunct& cd : cr.disjuncts) {
        binding.assign(static_cast<std::size_t>(cr.rule->num_vars),
                       kUnbound);
        for (const auto& [v, c] : cd.prebindings) binding[v] = c;
        bool feasible = true;
        for (std::size_t i = 0; i < cr.rule->head.args.size(); ++i) {
          const Term& t = cr.rule->head.args[i];
          if (!t.IsVar()) {
            if (t.constant != tuple[i]) {
              feasible = false;
              break;
            }
            continue;
          }
          if (binding[t.var] != kUnbound && binding[t.var] != tuple[i]) {
            feasible = false;
            break;
          }
          binding[t.var] = tuple[i];
        }
        if (!feasible) continue;
        total = P::Plus(total,
                        RederiveLevel(cd, 0, &binding, P::One(), idb, work));
      }
    }
    return total;
  }

  /// One generator level of RederiveTuple's backward join (recursive,
  /// depth = generator count). Fully ground levels probe point-wise;
  /// partially bound levels enumerate the cache-served entry list for the
  /// ground positions, binding first occurrences and checking repeats.
  /// Variables this level introduced are re-unbound before returning so
  /// sibling entries (and the caller's next entry) re-plan cleanly.
  typename P::Value RederiveLevel(const CompiledDisjunct& cd, std::size_t g,
                                  std::vector<ConstId>* binding,
                                  const typename P::Value& acc,
                                  const IdbInstance<P>& idb,
                                  uint64_t* work) const {
    if (g == cd.generators.size()) {
      for (const Condition* c : cd.residual) {
        if (!CheckCondition(*c, *binding)) return P::Zero();
      }
      return acc;
    }
    const Generator& gen = cd.generators[g];
    const Atom& atom = gen.is_bool ? cd.sp->conditions[gen.atom_index].atom
                                   : cd.sp->atoms[gen.atom_index];
    std::vector<int> key_pos;
    Tuple key;
    struct FreeOp {
      int pos;
      int var;
      bool bind;  ///< first unbound occurrence within this atom
    };
    std::vector<FreeOp> free_ops;
    for (std::size_t p = 0; p < atom.args.size(); ++p) {
      const Term& t = atom.args[p];
      const ConstId ground = t.IsVar() ? (*binding)[t.var] : t.constant;
      if (ground != kUnbound) {
        key_pos.push_back(static_cast<int>(p));
        key.push_back(ground);
        continue;
      }
      bool seen = false;
      for (const FreeOp& f : free_ops) {
        if (f.bind && f.var == t.var) seen = true;
      }
      free_ops.push_back(FreeOp{static_cast<int>(p), t.var, !seen});
    }
    const IndexConfig idx_cfg{options_.index_kind, options_.scan_kernel};
    typename P::Value total = P::Zero();
    auto drain = [&](const auto& rel, const RowIdList& entries,
                     auto&& value_of) {
      for (uint32_t row : entries) {
        ++*work;
        bool matched = true;
        for (const FreeOp& f : free_ops) {
          const ConstId got = rel.Cell(row, f.pos);
          if (f.bind) {
            (*binding)[f.var] = got;
          } else if ((*binding)[f.var] != got) {
            matched = false;
            break;
          }
        }
        if (!matched) continue;
        total = P::Plus(total, RederiveLevel(cd, g + 1, binding,
                                             value_of(row), idb, work));
      }
      for (const FreeOp& f : free_ops) {
        if (f.bind) (*binding)[f.var] = kUnbound;
      }
    };
    if (gen.is_bool) {
      const Relation<BoolS>& rel = edb_->boolean(gen.pred);
      if (free_ops.empty()) {
        ++*work;
        if (!rel.Get(key)) return P::Zero();
        return RederiveLevel(cd, g + 1, binding, acc, idb, work);
      }
      std::unique_ptr<RelationIndex<BoolS>> local;
      const RowIdList* entries = nullptr;
      if (options_.cache_indexes) {
        const RelationIndex<BoolS>& idx =
            bool_cache_.Get(rel, key_pos, /*pin=*/false);
        CountProbe(idx.repr(), &hash_probes_, &direct_probes_);
        entries = &idx.Lookup(key);
      } else {
        ++uncached_builds_;
        local = std::make_unique<RelationIndex<BoolS>>(rel, key_pos, idx_cfg);
        CountProbe(local->repr(), &hash_probes_, &direct_probes_);
        entries = &local->Lookup(key);
      }
      drain(rel, *entries, [&](uint32_t) { return acc; });
      return total;
    }
    const Relation<P>& rel =
        gen.is_idb ? idb.idb(gen.pred) : edb_->pops(gen.pred);
    if (free_ops.empty()) {
      ++*work;
      const typename P::Value v = rel.Get(key);
      if (P::Eq(v, P::Zero())) return P::Zero();
      return RederiveLevel(cd, g + 1, binding, P::Times(acc, v), idb, work);
    }
    std::unique_ptr<RelationIndex<P>> local;
    const RowIdList* entries = nullptr;
    if (options_.cache_indexes) {
      const RelationIndex<P>& idx =
          pops_cache_.Get(rel, key_pos, /*pin=*/false);
      CountProbe(idx.repr(), &hash_probes_, &direct_probes_);
      entries = &idx.Lookup(key);
    } else {
      ++uncached_builds_;
      local = std::make_unique<RelationIndex<P>>(rel, key_pos, idx_cfg);
      CountProbe(local->repr(), &hash_probes_, &direct_probes_);
      entries = &local->Lookup(key);
    }
    drain(rel, *entries,
          [&](uint32_t row) { return P::Times(acc, rel.ValueAt(row)); });
    return total;
  }

  /// The parallel ICO step. Three phases (see the class comment):
  ///  1. prepare (sequential): resolve every unit's generator indexes —
  ///     all cache/counters traffic, in unit order — and shard each
  ///     unit's driver entry list into row ranges of <= shard_rows.
  ///  2. execute (parallel): every (unit, shard) task joins its driver
  ///     range into a task-private partial relation with a task-private
  ///     work counter; tasks share only immutable prepared state.
  ///  3. reduce (sequential): merge partials into the head relations and
  ///     work into the run counter, in (unit, shard) order — replaying
  ///     the sequential kernel's exact head-merge sequence.
  void ApplyUnitsParallel(const std::vector<EvalUnit>& units,
                          IdbInstance<P>* out, uint64_t* work) const {
    if (par_prepared_.size() < units.size()) {
      par_prepared_.resize(units.size());
    }
    struct TaskRef {
      int unit;
      std::size_t begin;
      std::size_t end;
    };
    std::vector<TaskRef> tasks;
    const std::size_t shard_rows =
        options_.shard_rows < 1 ? 1
                                : static_cast<std::size_t>(options_.shard_rows);
    for (std::size_t u = 0; u < units.size(); ++u) {
      PreparedGens& prep = par_prepared_[u];
      PrepareGens(*units[u].cd, units[u].resolver, &prep);
      if (units[u].cd->generators.empty()) {
        // No driver to shard; one task emits the empty-product head.
        tasks.push_back(TaskRef{static_cast<int>(u), 0, 0});
        continue;
      }
      const std::size_t n0 = prep.level0->size();
      for (std::size_t b = 0; b < n0; b += shard_rows) {
        tasks.push_back(
            TaskRef{static_cast<int>(u), b, std::min(n0, b + shard_rows)});
      }
    }
    if (par_states_.size() < tasks.size()) par_states_.resize(tasks.size());
    for (std::size_t t = 0; t < tasks.size(); ++t) {
      const EvalUnit& un = units[static_cast<std::size_t>(tasks[t].unit)];
      TaskState& st = par_states_[t];
      if (st.sized_for != un.cd) {
        SizeScratch(*un.cr->rule, *un.cd, &st.scratch);
        st.sized_for = un.cd;
      }
      const int head_arity = static_cast<int>(un.cr->rule->head.args.size());
      if (st.partial.arity() != head_arity) {
        st.partial = Relation<P>(head_arity);
      } else {
        st.partial.Clear();
      }
      st.work = 0;
      st.hash_probes = 0;
      st.direct_probes = 0;
      st.join_batched = 0;
      st.values_batched = 0;
    }
    pool_->ParallelFor(tasks.size(), [&](std::size_t t) {
      const TaskRef& tr = tasks[t];
      const EvalUnit& un = units[static_cast<std::size_t>(tr.unit)];
      TaskState& st = par_states_[t];
      ExecuteShard(*un.cd, par_prepared_[static_cast<std::size_t>(tr.unit)],
                   st.scratch, tr.begin, tr.end, &st.partial, &st.work,
                   &st.hash_probes, &st.direct_probes, &st.join_batched,
                   &st.values_batched);
    });
    for (std::size_t t = 0; t < tasks.size(); ++t) {
      const EvalUnit& un = units[static_cast<std::size_t>(tasks[t].unit)];
      out->idb(un.cr->rule->head.pred)
          .MergeFrom(std::move(par_states_[t].partial));
      *work += par_states_[t].work;
      hash_probes_ += par_states_[t].hash_probes;
      direct_probes_ += par_states_[t].direct_probes;
      join_batched_rows_ += par_states_[t].join_batched;
      values_batched_ += par_states_[t].values_batched;
    }
  }

  /// One rule's contribution to F(J), merged into `out`.
  void ApplyRule(const CompiledRule& cr, const IdbInstance<P>& j,
                 IdbInstance<P>* out, uint64_t* work) const {
    for (const CompiledDisjunct& cd : cr.disjuncts) {
      auto resolver = [&](int atom_index) -> const Relation<P>& {
        const int pred = cd.sp->atoms[atom_index].pred;
        if (prog_->predicate(pred).kind != PredKind::kIdb) {
          return edb_->pops(pred);
        }
        return j.idb(pred);
      };
      EvalDisjunct(cd, resolver, &out->idb(cr.rule->head.pred), work);
    }
  }

  ConstId GroundTerm(const Term& t,
                     const std::vector<ConstId>& binding) const {
    if (!t.IsVar()) return t.constant;
    return binding[t.var];
  }

  bool CheckCondition(const Condition& c,
                      const std::vector<ConstId>& binding) const {
    switch (c.kind) {
      case Condition::Kind::kBoolAtom:
      case Condition::Kind::kNegBoolAtom: {
        Tuple t;
        t.reserve(c.atom.args.size());
        for (const Term& term : c.atom.args) {
          ConstId id = GroundTerm(term, binding);
          DLO_CHECK(id != kUnbound);
          t.push_back(id);
        }
        bool holds = edb_->boolean(c.atom.pred).Get(t);
        return c.kind == Condition::Kind::kBoolAtom ? holds : !holds;
      }
      case Condition::Kind::kCompare: {
        ConstId l = GroundTerm(c.lhs, binding);
        ConstId r = GroundTerm(c.rhs, binding);
        DLO_CHECK(l != kUnbound && r != kUnbound);
        if (c.op == CmpOp::kEq) return l == r;
        if (c.op == CmpOp::kNe) return l != r;
        auto li = prog_->domain()->AsInt(l);
        auto ri = prog_->domain()->AsInt(r);
        DLO_CHECK_MSG(li.has_value() && ri.has_value(),
                      "order comparison requires integer constants");
        switch (c.op) {
          case CmpOp::kLt:
            return *li < *ri;
          case CmpOp::kLe:
            return *li <= *ri;
          case CmpOp::kGt:
            return *li > *ri;
          case CmpOp::kGe:
            return *li >= *ri;
          default:
            return false;
        }
      }
    }
    return false;
  }

  /// Compile-time truth value of a compare condition under the
  /// disjunct's prebindings, or nullopt when a side is unbound at
  /// compile time (or an ordered compare reaches a non-integer constant
  /// — left for the runtime check so compilation cannot fail on a
  /// condition no emitted row would ever reach).
  std::optional<bool> DecideGroundCompare(const Condition& c,
                                          const std::vector<ConstId>& pre)
      const {
    auto ground = [&](const Term& t) -> ConstId {
      if (!t.IsVar()) return t.constant;
      return pre[t.var];
    };
    const ConstId l = ground(c.lhs);
    const ConstId r = ground(c.rhs);
    if (l == kUnbound || r == kUnbound) return std::nullopt;
    if (c.op == CmpOp::kEq) return l == r;
    if (c.op == CmpOp::kNe) return l != r;
    auto li = prog_->domain()->AsInt(l);
    auto ri = prog_->domain()->AsInt(r);
    if (!li.has_value() || !ri.has_value()) return std::nullopt;
    switch (c.op) {
      case CmpOp::kLt:
        return *li < *ri;
      case CmpOp::kLe:
        return *li <= *ri;
      case CmpOp::kGt:
        return *li > *ri;
      case CmpOp::kGe:
        return *li >= *ri;
      default:
        return std::nullopt;
    }
  }

  /// Sizes a Scratch's buffers for one disjunct (idempotent; reuses
  /// capacity when a task slot is re-pointed at the same shape).
  void SizeScratch(const Rule& rule, const CompiledDisjunct& cd,
                   Scratch* sc) const {
    sc->binding.assign(static_cast<std::size_t>(rule.num_vars), kUnbound);
    sc->acc.assign(cd.generators.size() + 1, P::One());
    sc->keys.clear();
    sc->keys.reserve(cd.generators.size());
    for (const Generator& g : cd.generators) {
      sc->keys.emplace_back(g.key_positions.size(), 0);
    }
    sc->head = Tuple(rule.head.args.size(), 0);
    sc->entries.assign(cd.generators.size(), nullptr);
    sc->next.assign(cd.generators.size(), 0);
    sc->survivors.assign(cd.generators.size() * simd::kJoinBatch, 0);
    sc->batch.assign(cd.generators.size(), nullptr);
    sc->batch_pos.assign(cd.generators.size(), 0);
    sc->batch_len.assign(cd.generators.size(), 0);
    sc->gather_a.assign(simd::kJoinBatch, 0);
    sc->gather_b.assign(simd::kJoinBatch, 0);
    if constexpr (VectorizedValuePlane<P>) {
      using ValCell = typename Scratch::ValCell;
      sc->val_gather.assign(simd::kJoinBatch, ValCell{P::One()});
      sc->val_prod.assign(cd.generators.size() * simd::kJoinBatch,
                          ValCell{P::One()});
      sc->head_batch.assign(simd::kJoinBatch * rule.head.args.size(), 0);
      sc->head_hash.assign(simd::kJoinBatch, 0);
      sc->head_vals.assign(simd::kJoinBatch, ValCell{P::One()});
      sc->head_col.assign(rule.head.args.size(), nullptr);
      sc->head_fixed.assign(rule.head.args.size(), 0);
    }
  }

  /// Residual checks + zero filter + head construction for one complete
  /// join binding; merges the result into `out`. Uses the task's
  /// preallocated head buffer — no allocation on this path.
  void EmitHead(const CompiledDisjunct& cd, Scratch& sc,
                const typename P::Value& acc, Relation<P>* out) const {
    for (const Condition* c : cd.residual) {
      if (!CheckCondition(*c, sc.binding)) return;
    }
    if (P::Eq(acc, P::Zero())) return;
    for (std::size_t i = 0; i < cd.head_sources.size(); ++i) {
      const ValueSource& s = cd.head_sources[i];
      sc.head[i] = s.var >= 0 ? sc.binding[s.var] : s.constant;
    }
    out->Merge(sc.head, acc);
  }

  /// Evaluates one sum-product under `resolver` (mapping IDB atom indexes
  /// to the relation instance to read), merging results into `out` — the
  /// sequential kernel: prepare, then execute the whole driver range with
  /// the disjunct's own scratch slot.
  template <typename Resolver>
  void EvalDisjunct(const CompiledDisjunct& cd, Resolver&& resolver,
                    Relation<P>* out, uint64_t* work) const {
    PreparedGens& prep = prepared_[static_cast<std::size_t>(cd.scratch_id)];
    PrepareGens(cd, resolver, &prep);
    ExecuteShard(cd, prep, scratch_[static_cast<std::size_t>(cd.scratch_id)],
                 0, static_cast<std::size_t>(-1), out, work, &hash_probes_,
                 &direct_probes_, &join_batched_rows_, &values_batched_);
  }

  /// Prepare phase of one disjunct evaluation: resolves every generator's
  /// relation and index (through the cache — the only place build/hit
  /// counters move — or into owned locals with caching off) and looks up
  /// the driver entry list (level 0's key depends only on prebindings).
  /// Sequential by construction: callers never overlap PrepareGens with
  /// the parallel execute phase.
  template <typename Resolver>
  void PrepareGens(const CompiledDisjunct& cd, Resolver&& resolver,
                   PreparedGens* prep) const {
    const std::size_t levels = cd.generators.size();
    const IndexConfig idx_cfg{options_.index_kind, options_.scan_kernel};
    prep->pops_idx.assign(levels, nullptr);
    prep->bool_idx.assign(levels, nullptr);
    prep->pops_rel.assign(levels, nullptr);
    prep->bool_rel.assign(levels, nullptr);
    prep->repr.assign(levels, IndexRepr::kHashMap);
    prep->level0 = nullptr;
    prep->local_pops.clear();
    prep->local_bool.clear();
    for (std::size_t g = 0; g < levels; ++g) {
      const Generator& gen = cd.generators[g];
      if (gen.is_bool) {
        const Relation<BoolS>& rel = edb_->boolean(gen.pred);
        if (options_.cache_indexes) {
          // Boolean condition atoms always read the EDB: pin the entry
          // (never evicted, never re-scanned) and attribute its scan.
          const uint64_t scans = bool_cache_.scan_rows();
          prep->bool_idx[g] =
              &bool_cache_.Get(rel, gen.key_positions, /*pin=*/true);
          edb_index_scan_rows_ += bool_cache_.scan_rows() - scans;
        } else {
          ++uncached_builds_;
          prep->local_bool.push_back(std::make_unique<RelationIndex<BoolS>>(
              rel, gen.key_positions, idx_cfg));
          prep->bool_idx[g] = prep->local_bool.back().get();
        }
        prep->bool_rel[g] = &rel;
        prep->repr[g] = prep->bool_idx[g]->repr();
      } else {
        // ALL POPS atoms resolve through the resolver: the standard
        // resolvers return the live EDB relation for non-IDB atoms, while
        // Engine::Update's seed resolvers substitute snapshot/delta
        // relations for changed EDB predicates. Pinning and the EDB-scan
        // counter apply only to the live EDB relation itself — substitute
        // relations are transient, so their cache entries must stay
        // evictable and must not disturb the EDB-scan invariant.
        const Relation<P>& rel = resolver(gen.atom_index);
        const bool base_edb = !gen.is_idb && &rel == &edb_->pops(gen.pred);
        if (options_.cache_indexes) {
          const uint64_t before = pops_cache_.builds();
          const uint64_t scans = pops_cache_.scan_rows();
          prep->pops_idx[g] =
              &pops_cache_.Get(rel, gen.key_positions, /*pin=*/base_edb);
          if (!base_edb) {
            if (pops_cache_.builds() != before) {
              ++idb_index_builds_;
            } else {
              ++idb_index_hits_;
            }
          } else {
            edb_index_scan_rows_ += pops_cache_.scan_rows() - scans;
          }
        } else {
          ++uncached_builds_;
          prep->local_pops.push_back(std::make_unique<RelationIndex<P>>(
              rel, gen.key_positions, idx_cfg));
          prep->pops_idx[g] = prep->local_pops.back().get();
        }
        prep->pops_rel[g] = &rel;
        prep->repr[g] = prep->pops_idx[g]->repr();
      }
    }
    if (levels == 0) return;
    // The driver entry list: level 0's key sources are constants or
    // prebound variables (nothing else is bound before the first
    // generator), so the lookup is independent of join state.
    const Generator& g0 = cd.generators[0];
    Tuple key(g0.key_positions.size(), 0);
    for (std::size_t i = 0; i < g0.key_sources.size(); ++i) {
      const ValueSource& s = g0.key_sources[i];
      if (s.var < 0) {
        key[i] = s.constant;
        continue;
      }
      ConstId c = kUnbound;
      for (const auto& [v, pc] : cd.prebindings) {
        if (v == s.var) c = pc;
      }
      DLO_CHECK(c != kUnbound);
      key[i] = c;
    }
    CountProbe(prep->repr[0], &hash_probes_, &direct_probes_);
    prep->level0 = g0.is_bool ? &prep->bool_idx[0]->Lookup(key)
                              : &prep->pops_idx[0]->Lookup(key);
  }

  /// Classifies one index Lookup into the probe counters. The execute
  /// phase passes task-private counters (reduced in fixed order); the
  /// sequential prepare phase passes the engine members directly.
  static void CountProbe(IndexRepr repr, uint64_t* hash_probes,
                         uint64_t* direct_probes) {
    if (repr == IndexRepr::kHashMap) {
      ++*hash_probes;
    } else if (repr == IndexRepr::kDirectArray) {
      ++*direct_probes;
    }  // kAllRows: no key is consulted at all.
  }

  /// Execute phase: joins driver entries [begin, end) of a prepared
  /// disjunct into `out`, counting visited entries into `work`.
  ///
  /// Two kernels implement the same join, selected once per engine by
  /// EngineOptions::scan_kernel: the row-at-a-time scalar reference and
  /// the batch-at-a-time vector kernel (below). Both visit the same
  /// entries in the same order and merge the same heads in the same
  /// order, so fixpoints, `work` and every index counter are
  /// bit-identical across kernels; `join_batched` counts the rows the
  /// vector path decoded (zero for the scalar kernel).
  ///
  /// Const-path safety: reads only immutable prepared/compiled state and
  /// the (unchanging) input relations; writes only `sc`, `out` and the
  /// task counters, which belong exclusively to the calling task — so
  /// shards execute concurrently without synchronization.
  void ExecuteShard(const CompiledDisjunct& cd, const PreparedGens& prep,
                    Scratch& sc, std::size_t begin, std::size_t end,
                    Relation<P>* out, uint64_t* work, uint64_t* hash_probes,
                    uint64_t* direct_probes, uint64_t* join_batched,
                    uint64_t* values_batched) const {
    if (options_.scan_kernel == ScanKernel::kSimd) {
      ExecuteShardBatched(cd, prep, sc, begin, end, out, work, hash_probes,
                          direct_probes, join_batched, values_batched);
    } else {
      ExecuteShardScalar(cd, prep, sc, begin, end, out, work, hash_probes,
                         direct_probes);
    }
  }

  /// The scalar join kernel — the definitional reference. Runs the
  /// compiled flat join program with an explicit iterative loop over
  /// generator levels: per level, the key buffer is filled from
  /// precomputed sources, looked up in the prepared index, and each entry
  /// runs its bind/check ops — no recursion, no per-entry allocation, no
  /// Term re-inspection. Unbinding on backtrack is unnecessary: which
  /// variables are bound at each level is static, so stale slots are
  /// always overwritten before being read.
  void ExecuteShardScalar(const CompiledDisjunct& cd, const PreparedGens& prep,
                          Scratch& sc, std::size_t begin, std::size_t end,
                          Relation<P>* out, uint64_t* work,
                          uint64_t* hash_probes,
                          uint64_t* direct_probes) const {
    for (const auto& [v, c] : cd.prebindings) sc.binding[v] = c;

    const std::size_t levels = cd.generators.size();
    if (levels == 0) {
      EmitHead(cd, sc, P::One(), out);
      return;
    }
    const RowIdList& driver = *prep.level0;
    if (end > driver.size()) end = driver.size();
    if (begin >= end) return;
    sc.entries[0] = &driver;
    sc.next[0] = begin;

    // Fills level `lvl`'s key buffer from the current binding and points
    // its cursor at the matching entry list (levels >= 1 only; level 0's
    // list is the prepared driver).
    auto enter_level = [&](std::size_t lvl) {
      const Generator& gen = cd.generators[lvl];
      Tuple& key = sc.keys[lvl];
      for (std::size_t i = 0; i < gen.key_sources.size(); ++i) {
        const ValueSource& s = gen.key_sources[i];
        key[i] = s.var >= 0 ? sc.binding[s.var] : s.constant;
      }
      CountProbe(prep.repr[lvl], hash_probes, direct_probes);
      if (gen.is_bool) {
        sc.entries[lvl] = &prep.bool_idx[lvl]->Lookup(key);
      } else {
        sc.entries[lvl] = &prep.pops_idx[lvl]->Lookup(key);
      }
      sc.next[lvl] = 0;
    };

    sc.acc[0] = P::One();
    std::size_t g = 0;
    for (;;) {
      const Generator& gen = cd.generators[g];
      const RowIdList& entries = *sc.entries[g];
      const std::size_t limit = g == 0 ? end : entries.size();
      if (sc.next[g] == limit) {
        if (g == 0) break;
        --g;
        continue;
      }
      const uint32_t row = entries[sc.next[g]];
      ++sc.next[g];
      ++*work;
      // Bind/check against the matched row's cells, read straight out of
      // the relation's columns (no tuple is materialized).
      auto run_entry_ops = [&](const auto& rel) {
        for (const EntryOp& op : gen.entry_ops) {
          ConstId got = rel.Cell(row, op.pos);
          if (op.kind == EntryOp::Kind::kBind) {
            sc.binding[op.var] = got;
          } else if (sc.binding[op.var] != got) {
            return false;
          }
        }
        return true;
      };
      bool matched;
      const typename P::Value* value = nullptr;
      if (gen.is_bool) {
        matched = run_entry_ops(*prep.bool_rel[g]);
      } else {
        const Relation<P>& rel = *prep.pops_rel[g];
        matched = run_entry_ops(rel);
        value = &rel.ValueAt(row);
      }
      if (!matched) continue;
      sc.acc[g + 1] = value ? P::Times(sc.acc[g], *value) : sc.acc[g];
      if (g + 1 == levels) {
        EmitHead(cd, sc, sc.acc[levels], out);
      } else {
        ++g;
        enter_level(g);
      }
    }
  }

  /// The batched join kernel. Per level, entry-list row ids are decoded
  /// simd::kJoinBatch at a time: the level's check ops run first as
  /// vector compares over the gathered column pairs (Generator::
  /// CheckPair), the survivor mask is compressed into the level's
  /// Scratch batch slice, and only then do the bind ops touch the
  /// surviving rows — check-free levels alias the batch pointer straight
  /// into the entry list (zero copy). Descending a level leaves the
  /// parent's batch half-consumed, which is why every level owns its own
  /// survivor slice; the innermost level drains whole batches in one
  /// tight loop. Work accounting is per chunk (`work += chunk` on
  /// refill) and covers every decoded row, matching the scalar kernel's
  /// per-entry `++work` exactly; survivor order is entry-list order, so
  /// head merges replay the scalar sequence bit-for-bit.
  void ExecuteShardBatched(const CompiledDisjunct& cd,
                           const PreparedGens& prep, Scratch& sc,
                           std::size_t begin, std::size_t end,
                           Relation<P>* out, uint64_t* work,
                           uint64_t* hash_probes, uint64_t* direct_probes,
                           uint64_t* join_batched,
                           uint64_t* values_batched) const {
    for (const auto& [v, c] : cd.prebindings) sc.binding[v] = c;
    // The value plane vectorizes only when BOTH kernels are kSimd and
    // the semiring opted in; otherwise ⊗/⊕ stay on the scalar reference
    // inside this (row-decode-batched) kernel.
    const bool value_simd = options_.value_kernel == ScanKernel::kSimd;

    const std::size_t levels = cd.generators.size();
    if (levels == 0) {
      EmitHead(cd, sc, P::One(), out);
      return;
    }
    const RowIdList& driver = *prep.level0;
    if (end > driver.size()) end = driver.size();
    if (begin >= end) return;
    sc.entries[0] = &driver;
    sc.next[0] = begin;
    sc.batch_pos[0] = 0;
    sc.batch_len[0] = 0;

    auto enter_level = [&](std::size_t lvl) {
      const Generator& gen = cd.generators[lvl];
      Tuple& key = sc.keys[lvl];
      for (std::size_t i = 0; i < gen.key_sources.size(); ++i) {
        const ValueSource& s = gen.key_sources[i];
        key[i] = s.var >= 0 ? sc.binding[s.var] : s.constant;
      }
      CountProbe(prep.repr[lvl], hash_probes, direct_probes);
      if (gen.is_bool) {
        sc.entries[lvl] = &prep.bool_idx[lvl]->Lookup(key);
      } else {
        sc.entries[lvl] = &prep.pops_idx[lvl]->Lookup(key);
      }
      sc.next[lvl] = 0;
      sc.batch_pos[lvl] = 0;
      sc.batch_len[lvl] = 0;
    };

    // Refills level g's survivor batch from its entry list; returns
    // false when the list is exhausted without survivors (pop a level).
    // Chunks that fail every check refill again immediately, so one
    // call always leaves either a non-empty batch or a spent cursor.
    constexpr uint32_t kB = simd::kJoinBatch;
    auto refill = [&](std::size_t g) {
      const Generator& gen = cd.generators[g];
      const RowIdList& entries = *sc.entries[g];
      const std::size_t limit = g == 0 ? end : entries.size();
      uint32_t filled = 0;
      while (filled == 0 && sc.next[g] < limit) {
        const uint32_t chunk =
            static_cast<uint32_t>(std::min<std::size_t>(kB, limit - sc.next[g]));
        const uint32_t* rows = entries.data() + sc.next[g];
        sc.next[g] += chunk;
        *work += chunk;
        *join_batched += chunk;
        if (gen.check_pairs.empty()) {
          sc.batch[g] = rows;
          filled = chunk;
          continue;
        }
        uint32_t mask = (1u << chunk) - 1;  // chunk <= kB < 32
        for (const typename Generator::CheckPair& cp : gen.check_pairs) {
          const ConstId* ca;
          const ConstId* cb;
          if (gen.is_bool) {
            ca = prep.bool_rel[g]->column_data(cp.pos);
            cb = prep.bool_rel[g]->column_data(cp.first_pos);
          } else {
            ca = prep.pops_rel[g]->column_data(cp.pos);
            cb = prep.pops_rel[g]->column_data(cp.first_pos);
          }
          simd::GatherU32(ca, rows, chunk, ScanKernel::kSimd,
                          sc.gather_a.data());
          simd::GatherU32(cb, rows, chunk, ScanKernel::kSimd,
                          sc.gather_b.data());
          mask &= simd::MaskEqU32(sc.gather_a.data(), sc.gather_b.data(),
                                  chunk, ScanKernel::kSimd);
          if (mask == 0) break;
        }
        uint32_t* surv = sc.survivors.data() + g * kB;
        filled = simd::CompressRowIds(rows, mask, surv);
        sc.batch[g] = surv;
      }
      if constexpr (VectorizedValuePlane<P>) {
        // Mid-level ⊗ batching: acc[g] is invariant while this batch is
        // consumed (the parent wrote it before descending), so the whole
        // batch's products are one gather + one kernel call into the
        // level's val_prod slice. The innermost level computes products
        // in its own drain instead (it may bypass refill entirely).
        if (value_simd && filled != 0 && g + 1 < levels &&
            !cd.generators[g].is_bool) {
          using Traits = SemiringSimdTraits<P>;
          Traits::GatherVals(prep.pops_rel[g]->value_data(), sc.batch[g],
                             filled, ScanKernel::kSimd, sc.val_gather_data());
          Traits::TimesScalarVec(sc.acc[g], sc.val_gather_data(), filled,
                                 ScanKernel::kSimd,
                                 sc.val_prod_data() + g * kB);
        }
      }
      sc.batch_len[g] = filled;
      sc.batch_pos[g] = 0;
      return filled != 0;
    };

    // Drains one innermost-level row batch: binds, accumulate, emit —
    // no state-machine dispatch per row.
    auto drain = [&](std::size_t g, const uint32_t* rows, std::size_t n) {
      // A compile-time-false residual can never emit: the callers have
      // already counted this batch's work/decode (and the descent above
      // kept the probe trace), so the per-row residual re-grounding the
      // scalar kernel pays is pure waste — skip the drain body entirely.
      if (cd.always_false) return;
      const Generator& gen = cd.generators[g];
      const typename P::Value& acc_in = sc.acc[g];
      if constexpr (VectorizedValuePlane<P>) {
        if (value_simd && !gen.is_bool) {
          DrainValueBatched(cd, prep, sc, g, rows, n, out, values_batched);
          return;
        }
      }
      if (gen.is_bool) {
        const Relation<BoolS>& rel = *prep.bool_rel[g];
        for (std::size_t i = 0; i < n; ++i) {
          const uint32_t row = rows[i];
          for (const EntryOp& op : gen.bind_ops) {
            sc.binding[op.var] = rel.Cell(row, op.pos);
          }
          EmitHead(cd, sc, acc_in, out);
        }
      } else if (gen.bind_ops.size() == 1) {
        // The dominant shape (e.g. TC's E(Z,Y) level): one bound column,
        // hoisted to a raw span outside the loop.
        const Relation<P>& rel = *prep.pops_rel[g];
        const ConstId* col = rel.column_data(gen.bind_ops[0].pos);
        const int var = gen.bind_ops[0].var;
        for (std::size_t i = 0; i < n; ++i) {
          const uint32_t row = rows[i];
          sc.binding[var] = col[row];
          EmitHead(cd, sc, P::Times(acc_in, rel.ValueAt(row)), out);
        }
      } else {
        const Relation<P>& rel = *prep.pops_rel[g];
        for (std::size_t i = 0; i < n; ++i) {
          const uint32_t row = rows[i];
          for (const EntryOp& op : gen.bind_ops) {
            sc.binding[op.var] = rel.Cell(row, op.pos);
          }
          EmitHead(cd, sc, P::Times(acc_in, rel.ValueAt(row)), out);
        }
      }
    };

    sc.acc[0] = P::One();
    std::size_t g = 0;
    for (;;) {
      const Generator& gen = cd.generators[g];
      if (g + 1 == levels) {
        // Innermost level: everything it produces is consumed here, so a
        // check-free list needs no survivor buffer at all — the whole
        // remaining range is one batch. Check-bearing lists go through
        // the refill/compress cycle batch by batch.
        if (gen.check_pairs.empty()) {
          const RowIdList& entries = *sc.entries[g];
          const std::size_t limit = g == 0 ? end : entries.size();
          const std::size_t n = limit - sc.next[g];
          drain(g, entries.data() + sc.next[g], n);
          sc.next[g] = limit;
          *work += n;
          *join_batched += n;
        } else {
          while (refill(g)) {
            drain(g, sc.batch[g], sc.batch_len[g]);
            sc.batch_pos[g] = sc.batch_len[g];
          }
        }
        if (g == 0) break;
        --g;
        continue;
      }
      // Mid level: take one survivor, bind, accumulate, descend.
      if (sc.batch_pos[g] == sc.batch_len[g] && !refill(g)) {
        if (g == 0) break;
        --g;
        continue;
      }
      const uint32_t bidx = sc.batch_pos[g];
      const uint32_t row = sc.batch[g][bidx];
      ++sc.batch_pos[g];
      if (gen.is_bool) {
        const Relation<BoolS>& rel = *prep.bool_rel[g];
        for (const EntryOp& op : gen.bind_ops) {
          sc.binding[op.var] = rel.Cell(row, op.pos);
        }
        sc.acc[g + 1] = sc.acc[g];
      } else {
        const Relation<P>& rel = *prep.pops_rel[g];
        for (const EntryOp& op : gen.bind_ops) {
          sc.binding[op.var] = rel.Cell(row, op.pos);
        }
        bool batched_acc = false;
        if constexpr (VectorizedValuePlane<P>) {
          if (value_simd) {
            // refill computed the whole batch's products already.
            sc.acc[g + 1] = sc.val_prod[g * kB + bidx].v;
            batched_acc = true;
          }
        }
        if (!batched_acc) sc.acc[g + 1] = P::Times(sc.acc[g], rel.ValueAt(row));
      }
      ++g;
      enter_level(g);
    }
  }

  /// A borrowed head-key view over the batched head buffer. Shapes like a
  /// Tuple (size() + operator[]) so Relation's probe/merge templates and
  /// KeyHash accept it without materializing a key per emission.
  struct HeadKeyRef {
    const ConstId* p;
    std::size_t n;
    std::size_t size() const { return n; }
    ConstId operator[](std::size_t i) const { return p[i]; }
  };

  /// The vectorized innermost drain (SemiringSimdTraits semirings under
  /// value_kernel == kSimd only). Per survivor chunk of up to kJoinBatch
  /// rows: gather the value column once, compute every ⊗ product in one
  /// TimesScalarVec call, run ground residual Eq/Ne compares as batched
  /// column-vs-scalar masks, then walk the surviving lanes in entry-list
  /// order — remaining residuals, zero filter, head-key build and
  /// pre-hash — and merge. When the trait declares ⊕ exactly associative
  /// (kExactPlusFold), adjacent duplicate head keys fold into a single
  /// pre-hashed upsert; the fold preserves stored values bit-for-bit
  /// (exact associativity + exact ⊥-identity), first-occurrence append
  /// order, and — on a naturally ordered semiring — tombstone behaviour
  /// (x ≠ ⊥ ⇒ x ⊕ y ≠ ⊥), so fixpoints and every pinned counter match
  /// the scalar emission sequence exactly.
  void DrainValueBatched(const CompiledDisjunct& cd, const PreparedGens& prep,
                         Scratch& sc, std::size_t g, const uint32_t* rows,
                         std::size_t n, Relation<P>* out,
                         uint64_t* values_batched) const {
    using Traits = SemiringSimdTraits<P>;
    using Value = typename P::Value;
    constexpr uint32_t kB = simd::kJoinBatch;
    const ScanKernel vk = ScanKernel::kSimd;
    const Generator& gen = cd.generators[g];
    const Relation<P>& rel = *prep.pops_rel[g];
    const Value* vd = rel.value_data();
    const Value& acc_in = sc.acc[g];
    const std::size_t ar = cd.head_sources.size();
    // Classify head slots once per drain: a slot fed by one of THIS
    // generator's binds varies per row (read straight off the bound
    // column); every other slot is constant for the whole call.
    for (std::size_t j = 0; j < ar; ++j) {
      const ValueSource& s = cd.head_sources[j];
      const ConstId* colp = nullptr;
      if (s.var >= 0) {
        for (const EntryOp& op : gen.bind_ops) {
          if (op.var == s.var) {
            colp = rel.column_data(op.pos);
            break;
          }
        }
      }
      sc.head_col[j] = colp;
      sc.head_fixed[j] =
          colp ? 0 : (s.var >= 0 ? sc.binding[s.var] : s.constant);
    }
    const bool per_row_residual = !cd.batched_residual.empty();
    Value* prod = sc.val_prod_data() + g * kB;
    for (std::size_t base = 0; base < n; base += kB) {
      const uint32_t c =
          static_cast<uint32_t>(std::min<std::size_t>(kB, n - base));
      const uint32_t* chunk_rows = rows + base;
      // All c ⊗ products of this chunk in one kernel call.
      Traits::GatherVals(vd, chunk_rows, c, vk, sc.val_gather_data());
      Traits::TimesScalarVec(acc_in, sc.val_gather_data(), c, vk, prod);
      // Ground residual compares over this level's bound columns run as
      // batched masks — a dead lane never reaches the per-row loop.
      const uint32_t full = (1u << c) - 1;  // c <= kB < 32
      uint32_t mask = full;
      for (const typename CompiledDisjunct::VecResidual& vr :
           cd.vec_residuals) {
        simd::GatherU32(rel.column_data(vr.pos), chunk_rows, c, vk,
                        sc.gather_a.data());
        const uint32_t em =
            simd::MaskEqScalarU32(sc.gather_a.data(), c, vr.key, vk);
        mask &= vr.negate ? (~em & full) : em;
        if (mask == 0) break;
      }
      // Surviving lanes in entry-list order: remaining residuals, zero
      // filter, head build + pre-hash.
      uint32_t emit = 0;
      while (mask != 0) {
        const uint32_t i = static_cast<uint32_t>(__builtin_ctz(mask));
        mask &= mask - 1;
        const uint32_t row = chunk_rows[i];
        if (per_row_residual) {
          for (const EntryOp& op : gen.bind_ops) {
            sc.binding[op.var] = rel.Cell(row, op.pos);
          }
          bool ok = true;
          for (const Condition* cond : cd.batched_residual) {
            if (!CheckCondition(*cond, sc.binding)) {
              ok = false;
              break;
            }
          }
          if (!ok) continue;
        }
        const Value& v = prod[i];
        if (P::Eq(v, P::Zero())) continue;
        ConstId* hk = sc.head_batch.data() + emit * ar;
        for (std::size_t j = 0; j < ar; ++j) {
          hk[j] = sc.head_col[j] != nullptr ? sc.head_col[j][row]
                                            : sc.head_fixed[j];
        }
        sc.head_hash[emit] = Relation<P>::HashOf(HeadKeyRef{hk, ar});
        sc.head_vals[emit].v = v;
        ++emit;
      }
      *values_batched += emit;
      // Upserts in emission order. Under kExactPlusFold, a run of equal
      // adjacent head keys (hash prefilter, then exact compare) folds
      // into one probe; otherwise one probe per emission (R+ sums would
      // reassociate).
      uint32_t i = 0;
      while (i < emit) {
        const ConstId* ki = sc.head_batch.data() + i * ar;
        Value folded = sc.head_vals[i].v;
        uint32_t run_end = i + 1;
        if constexpr (Traits::kExactPlusFold) {
          while (run_end < emit && sc.head_hash[run_end] == sc.head_hash[i] &&
                 (ar == 0 ||
                  std::memcmp(ki, sc.head_batch.data() + run_end * ar,
                              ar * sizeof(ConstId)) == 0)) {
            folded = P::Plus(folded, sc.head_vals[run_end].v);
            ++run_end;
          }
        }
        out->MergeHashed(HeadKeyRef{ki, ar}, sc.head_hash[i], folded);
        i = run_end;
      }
    }
  }

  const Program* prog_;
  const EdbInstance<P>* edb_;
  EngineOptions options_;
  RelianceGroups reliance_;  ///< computed before Compile() (group maps)
  std::vector<CompiledRule> compiled_;
  std::unique_ptr<ThreadPool> pool_;  ///< null when num_threads <= 1
  // Mutable: evaluation entry points are const, but memoizing indexes,
  // counting builds, and reusing evaluation buffers are all invisible to
  // callers. Every one of these members is touched only in the
  // sequential prepare/reduce phases (never during the fanned-out
  // execute phase), which is what makes internal parallelism safe — and
  // also why one Engine object is still not shareable across *caller*
  // threads (see the class comment).
  mutable std::vector<Scratch> scratch_;  ///< one per compiled disjunct
  mutable std::vector<PreparedGens> prepared_;  ///< one per disjunct
  mutable std::vector<PreparedGens> par_prepared_;  ///< one per eval unit
  mutable std::vector<TaskState> par_states_;  ///< one per (unit, shard)
  mutable IndexCache<P> pops_cache_;
  mutable IndexCache<BoolS> bool_cache_;
  mutable uint64_t uncached_builds_ = 0;
  mutable uint64_t idb_index_builds_ = 0;  ///< cache builds for IDB inputs
  mutable uint64_t idb_index_hits_ = 0;    ///< cache hits for IDB inputs
  mutable uint64_t hash_probes_ = 0;    ///< hash-map index lookups
  mutable uint64_t direct_probes_ = 0;  ///< direct-array index lookups
  mutable uint64_t join_batched_rows_ = 0;
  mutable uint64_t values_batched_ = 0;  ///< vector value-plane emissions  ///< rows through vector join
  mutable uint64_t edb_index_scan_rows_ = 0;  ///< EDB build-scan rows
  mutable std::vector<EvalUnit> group_units_;  ///< ordered-round unit buffer
  mutable uint64_t group_iterations_ = 0;  ///< ordered: local rounds run
  mutable uint64_t rules_skipped_ = 0;     ///< ordered: triggered-set skips
};

}  // namespace datalogo

#endif  // DATALOGO_DATALOG_ENGINE_H_
