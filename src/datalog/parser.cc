#include "src/datalog/parser.h"

#include <cctype>
#include <map>
#include <utility>
#include <vector>

namespace datalogo {
namespace {

enum class TokKind {
  kIdent,
  kInt,
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kLBrace,
  kRBrace,
  kComma,
  kDot,
  kSemi,
  kStar,
  kPipe,
  kBang,
  kSlash,
  kColon,
  kTurnstile,  // :-
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kEof,
};

struct Token {
  TokKind kind;
  std::string text;
  int64_t value = 0;
  int line = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Status Tokenize(std::vector<Token>* out) {
    std::size_t i = 0;
    int line = 1;
    const std::size_t n = text_.size();
    while (i < n) {
      char c = text_[i];
      if (c == '\n') {
        ++line;
        ++i;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (c == '%' || (c == '/' && i + 1 < n && text_[i + 1] == '/')) {
        while (i < n && text_[i] != '\n') ++i;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::size_t start = i;
        while (i < n && (std::isalnum(static_cast<unsigned char>(text_[i])) ||
                         text_[i] == '_')) {
          ++i;
        }
        out->push_back({TokKind::kIdent, text_.substr(start, i - start), 0,
                        line});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '-' && i + 1 < n &&
           std::isdigit(static_cast<unsigned char>(text_[i + 1])))) {
        std::size_t start = i;
        if (c == '-') ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(text_[i]))) {
          ++i;
        }
        std::string digits = text_.substr(start, i - start);
        out->push_back(
            {TokKind::kInt, digits, std::stoll(digits), line});
        continue;
      }
      auto push1 = [&](TokKind k) {
        out->push_back({k, std::string(1, c), 0, line});
        ++i;
      };
      switch (c) {
        case '(':
          push1(TokKind::kLParen);
          break;
        case ')':
          push1(TokKind::kRParen);
          break;
        case '[':
          push1(TokKind::kLBracket);
          break;
        case ']':
          push1(TokKind::kRBracket);
          break;
        case '{':
          push1(TokKind::kLBrace);
          break;
        case '}':
          push1(TokKind::kRBrace);
          break;
        case ',':
          push1(TokKind::kComma);
          break;
        case '.':
          push1(TokKind::kDot);
          break;
        case ';':
          push1(TokKind::kSemi);
          break;
        case '*':
          push1(TokKind::kStar);
          break;
        case '|':
          push1(TokKind::kPipe);
          break;
        case '/':
          push1(TokKind::kSlash);
          break;
        case ':':
          if (i + 1 < n && text_[i + 1] == '-') {
            out->push_back({TokKind::kTurnstile, ":-", 0, line});
            i += 2;
          } else {
            push1(TokKind::kColon);
          }
          break;
        case '=':
          push1(TokKind::kEq);
          break;
        case '!':
          if (i + 1 < n && text_[i + 1] == '=') {
            out->push_back({TokKind::kNe, "!=", 0, line});
            i += 2;
          } else {
            push1(TokKind::kBang);
          }
          break;
        case '<':
          if (i + 1 < n && text_[i + 1] == '=') {
            out->push_back({TokKind::kLe, "<=", 0, line});
            i += 2;
          } else {
            push1(TokKind::kLt);
          }
          break;
        case '>':
          if (i + 1 < n && text_[i + 1] == '=') {
            out->push_back({TokKind::kGe, ">=", 0, line});
            i += 2;
          } else {
            push1(TokKind::kGt);
          }
          break;
        default:
          return ParseError("line " + std::to_string(line) +
                            ": unexpected character '" + std::string(1, c) +
                            "'");
      }
    }
    out->push_back({TokKind::kEof, "", 0, line});
    return Status::Ok();
  }

 private:
  const std::string& text_;
};

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  Parser(std::vector<Token> tokens, Domain* domain)
      : tokens_(std::move(tokens)), domain_(domain), program_(domain) {}

  Result<Program> Run() {
    while (!At(TokKind::kEof)) {
      Status s = ParseStatement();
      if (!s.ok()) return s;
    }
    return std::move(program_);
  }

 private:
  const Token& Peek(int ahead = 0) const {
    std::size_t i = pos_ + ahead;
    if (i >= tokens_.size()) i = tokens_.size() - 1;
    return tokens_[i];
  }
  bool At(TokKind k) const { return Peek().kind == k; }
  Token Next() { return tokens_[pos_++]; }
  bool Accept(TokKind k) {
    if (At(k)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status Expect(TokKind k, const char* what) {
    if (Accept(k)) return Status::Ok();
    return ParseError("line " + std::to_string(Peek().line) + ": expected " +
                      what + ", got '" + Peek().text + "'");
  }

  static bool IsVariableName(const std::string& s) {
    return !s.empty() && (std::isupper(static_cast<unsigned char>(s[0])) ||
                          s[0] == '_');
  }

  Status ParseStatement() {
    // Declaration: (edb|bedb|idb) Name/arity.
    if (At(TokKind::kIdent) &&
        (Peek().text == "edb" || Peek().text == "bedb" ||
         Peek().text == "idb") &&
        Peek(1).kind == TokKind::kIdent) {
      std::string kw = Next().text;
      std::string name = Next().text;
      Status s = Expect(TokKind::kSlash, "'/'");
      if (!s.ok()) return s;
      if (!At(TokKind::kInt)) {
        return ParseError("line " + std::to_string(Peek().line) +
                          ": expected arity");
      }
      int arity = static_cast<int>(Next().value);
      s = Expect(TokKind::kDot, "'.'");
      if (!s.ok()) return s;
      PredKind kind = kw == "edb" ? PredKind::kEdb
                      : kw == "bedb" ? PredKind::kBoolEdb
                                     : PredKind::kIdb;
      program_.AddPredicate(name, arity, kind, /*auto_declared=*/false);
      return Status::Ok();
    }
    return ParseRule();
  }

  /// Resolves a term token into the current rule's term.
  Status ParseTerm(Term* out) {
    if (At(TokKind::kInt)) {
      Token t = Next();
      *out = Term::Const(domain_->InternInt(t.value));
      return Status::Ok();
    }
    if (!At(TokKind::kIdent)) {
      return ParseError("line " + std::to_string(Peek().line) +
                        ": expected term, got '" + Peek().text + "'");
    }
    Token t = Next();
    if (IsVariableName(t.text)) {
      auto it = var_ids_.find(t.text);
      int id;
      if (it == var_ids_.end()) {
        id = static_cast<int>(var_names_.size());
        var_ids_.emplace(t.text, id);
        var_names_.push_back(t.text);
      } else {
        id = it->second;
      }
      *out = Term::Var(id);
    } else {
      *out = Term::Const(domain_->InternSymbol(t.text));
    }
    return Status::Ok();
  }

  /// Parses `Name(t, …)`; declares unknown predicates with `default_kind`.
  Status ParseAtom(Atom* out, PredKind default_kind) {
    if (!At(TokKind::kIdent)) {
      return ParseError("line " + std::to_string(Peek().line) +
                        ": expected predicate name");
    }
    std::string name = Next().text;
    Status s = Expect(TokKind::kLParen, "'('");
    if (!s.ok()) return s;
    std::vector<Term> args;
    if (!At(TokKind::kRParen)) {
      while (true) {
        Term t;
        s = ParseTerm(&t);
        if (!s.ok()) return s;
        args.push_back(t);
        if (!Accept(TokKind::kComma)) break;
      }
    }
    s = Expect(TokKind::kRParen, "')'");
    if (!s.ok()) return s;
    int pred = program_.FindPredicate(name);
    if (pred < 0) {
      pred = program_.AddPredicate(name, static_cast<int>(args.size()),
                                   default_kind, /*auto_declared=*/true);
    } else if (program_.predicate(pred).arity !=
               static_cast<int>(args.size())) {
      return ParseError("predicate '" + name + "' used with arity " +
                        std::to_string(args.size()) + " but declared with " +
                        std::to_string(program_.predicate(pred).arity));
    }
    out->pred = pred;
    out->args = std::move(args);
    out->negated = false;
    return Status::Ok();
  }

  static TokKind CmpTok(CmpOp op) {
    switch (op) {
      case CmpOp::kEq:
        return TokKind::kEq;
      case CmpOp::kNe:
        return TokKind::kNe;
      case CmpOp::kLt:
        return TokKind::kLt;
      case CmpOp::kLe:
        return TokKind::kLe;
      case CmpOp::kGt:
        return TokKind::kGt;
      case CmpOp::kGe:
        return TokKind::kGe;
    }
    return TokKind::kEq;
  }

  bool AtCmp() const {
    TokKind k = Peek().kind;
    return k == TokKind::kEq || k == TokKind::kNe || k == TokKind::kLt ||
           k == TokKind::kLe || k == TokKind::kGt || k == TokKind::kGe;
  }

  CmpOp NextCmp() {
    TokKind k = Next().kind;
    switch (k) {
      case TokKind::kEq:
        return CmpOp::kEq;
      case TokKind::kNe:
        return CmpOp::kNe;
      case TokKind::kLt:
        return CmpOp::kLt;
      case TokKind::kLe:
        return CmpOp::kLe;
      case TokKind::kGt:
        return CmpOp::kGt;
      default:
        return CmpOp::kGe;
    }
  }

  /// cond := '!' atom | atom | term cmp term
  Status ParseCondition(Condition* out) {
    if (Accept(TokKind::kBang)) {
      out->kind = Condition::Kind::kNegBoolAtom;
      return ParseAtom(&out->atom, PredKind::kBoolEdb);
    }
    // Lookahead: IDENT '(' is an atom, otherwise a comparison.
    if (At(TokKind::kIdent) && Peek(1).kind == TokKind::kLParen) {
      out->kind = Condition::Kind::kBoolAtom;
      return ParseAtom(&out->atom, PredKind::kBoolEdb);
    }
    out->kind = Condition::Kind::kCompare;
    Status s = ParseTerm(&out->lhs);
    if (!s.ok()) return s;
    if (!AtCmp()) {
      return ParseError("line " + std::to_string(Peek().line) +
                        ": expected comparison operator");
    }
    out->op = NextCmp();
    return ParseTerm(&out->rhs);
  }

  /// factor := atom | '!' atom | '[' cond (',' cond)* ']' | '1'
  Status ParseFactor(SumProduct* sp) {
    if (Accept(TokKind::kLBracket)) {
      // Indicator function: desugar to conditions (Sec. 4.4).
      while (true) {
        Condition c;
        Status s = ParseCondition(&c);
        if (!s.ok()) return s;
        sp->conditions.push_back(std::move(c));
        if (!Accept(TokKind::kComma)) break;
      }
      return Expect(TokKind::kRBracket, "']'");
    }
    if (At(TokKind::kInt) && Peek().value == 1) {
      Next();  // the unit factor "1" contributes nothing to the product
      return Status::Ok();
    }
    bool negated = Accept(TokKind::kBang);
    Atom a;
    Status s = ParseAtom(&a, PredKind::kEdb);
    if (!s.ok()) return s;
    a.negated = negated;
    sp->atoms.push_back(std::move(a));
    return Status::Ok();
  }

  /// product := factor ('*' factor)*
  Status ParseProduct(SumProduct* sp) {
    Status s = ParseFactor(sp);
    if (!s.ok()) return s;
    while (Accept(TokKind::kStar)) {
      s = ParseFactor(sp);
      if (!s.ok()) return s;
    }
    return Status::Ok();
  }

  /// sumprod := '{' product '|' cond (',' cond)* '}' | product
  Status ParseSumProduct(SumProduct* sp) {
    if (Accept(TokKind::kLBrace)) {
      Status s = ParseProduct(sp);
      if (!s.ok()) return s;
      s = Expect(TokKind::kPipe, "'|'");
      if (!s.ok()) return s;
      while (true) {
        Condition c;
        s = ParseCondition(&c);
        if (!s.ok()) return s;
        sp->conditions.push_back(std::move(c));
        if (!Accept(TokKind::kComma)) break;
      }
      return Expect(TokKind::kRBrace, "'}'");
    }
    return ParseProduct(sp);
  }

  /// Logical negation of a condition — used by case-statement
  /// desugaring (Sec. 4.5). Every condition in our fragment is negatable.
  static Condition Negate(const Condition& c) {
    Condition out = c;
    switch (c.kind) {
      case Condition::Kind::kBoolAtom:
        out.kind = Condition::Kind::kNegBoolAtom;
        break;
      case Condition::Kind::kNegBoolAtom:
        out.kind = Condition::Kind::kBoolAtom;
        break;
      case Condition::Kind::kCompare:
        switch (c.op) {
          case CmpOp::kEq:
            out.op = CmpOp::kNe;
            break;
          case CmpOp::kNe:
            out.op = CmpOp::kEq;
            break;
          case CmpOp::kLt:
            out.op = CmpOp::kGe;
            break;
          case CmpOp::kGe:
            out.op = CmpOp::kLt;
            break;
          case CmpOp::kLe:
            out.op = CmpOp::kGt;
            break;
          case CmpOp::kGt:
            out.op = CmpOp::kLe;
            break;
        }
        break;
    }
    return out;
  }

  /// Keyword check that never shadows a predicate (keywords followed by
  /// '(' are atoms).
  bool AtKeyword(const char* kw) const {
    return At(TokKind::kIdent) && Peek().text == kw &&
           Peek(1).kind != TokKind::kLParen;
  }

  /// case C1 : E1 ; C2 : E2 ; … ; [else En] — desugared per Sec. 4.5:
  /// branch k carries ¬C1 ∧ … ∧ ¬C_{k-1} ∧ C_k.
  Status ParseCaseBody(Rule* rule) {
    std::vector<Condition> prior;
    while (true) {
      SumProduct sp;
      if (AtKeyword("else")) {
        Next();
        Status s = ParseSumProduct(&sp);
        if (!s.ok()) return s;
        for (const Condition& g : prior) sp.conditions.push_back(Negate(g));
        rule->disjuncts.push_back(std::move(sp));
        break;
      }
      Condition guard;
      Status s = ParseCondition(&guard);
      if (!s.ok()) return s;
      s = Expect(TokKind::kColon, "':'");
      if (!s.ok()) return s;
      s = ParseSumProduct(&sp);
      if (!s.ok()) return s;
      sp.conditions.push_back(guard);
      for (const Condition& g : prior) sp.conditions.push_back(Negate(g));
      rule->disjuncts.push_back(std::move(sp));
      prior.push_back(guard);
      if (!Accept(TokKind::kSemi)) break;
    }
    return Status::Ok();
  }

  Status ParseRule() {
    var_ids_.clear();
    var_names_.clear();
    Rule rule;
    Status s = ParseAtom(&rule.head, PredKind::kIdb);
    if (!s.ok()) return s;
    // A predicate first seen in an earlier rule body was auto-declared as
    // a POPS EDB; appearing in head position upgrades it to an IDB.
    program_.UpgradeToIdb(rule.head.pred);
    s = Expect(TokKind::kTurnstile, "':-'");
    if (!s.ok()) return s;
    if (AtKeyword("case")) {
      Next();
      s = ParseCaseBody(&rule);
      if (!s.ok()) return s;
    } else {
      while (true) {
        SumProduct sp;
        s = ParseSumProduct(&sp);
        if (!s.ok()) return s;
        rule.disjuncts.push_back(std::move(sp));
        if (!Accept(TokKind::kSemi)) break;
      }
    }
    s = Expect(TokKind::kDot, "'.'");
    if (!s.ok()) return s;
    rule.num_vars = static_cast<int>(var_names_.size());
    rule.var_names = var_names_;
    program_.AddRule(std::move(rule));
    return Status::Ok();
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  Domain* domain_;
  Program program_;
  std::map<std::string, int> var_ids_;
  std::vector<std::string> var_names_;
};

}  // namespace

Result<Program> ParseProgram(const std::string& text, Domain* domain) {
  std::vector<Token> tokens;
  Lexer lexer(text);
  Status s = lexer.Tokenize(&tokens);
  if (!s.ok()) return s;
  Parser parser(std::move(tokens), domain);
  return parser.Run();
}

}  // namespace datalogo
