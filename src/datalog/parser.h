// Text syntax for datalog° programs. Example (APSP, Example 1.1):
//
//   edb E/2.
//   idb T/2.
//   T(X,Y) :- E(X,Y) ; T(X,Z) * E(Z,Y).
//
// Conventions:
//   * identifiers starting with an uppercase letter are variables; those
//     starting lowercase (and integer literals) are constants;
//   * `;` separates the ⊕-disjuncts of a sum-sum-product body, `*` is ⊗;
//   * bound variables (not in the head) are implicitly ⊕-aggregated;
//   * `{ product | cond, cond }` attaches a conditional Φ (Def. 2.5);
//   * `[X = a]` is an indicator function (Sec. 4.4), desugared into a
//     condition on its sum-product; `[X = a]` alone is the pure indicator;
//   * `!R(..)` in a product applies the POPS `Not` (Sec. 7);
//     `!B(..)` in a condition is Boolean negation of a Boolean EDB atom;
//   * declarations: `edb E/2.`, `bedb G/1.`, `idb T/2.` — heads are
//     auto-declared as IDBs, unknown body predicates as POPS EDBs, and
//     unknown condition predicates as Boolean EDBs;
//   * comments run from `//` or `%` to end of line.
#ifndef DATALOGO_DATALOG_PARSER_H_
#define DATALOGO_DATALOG_PARSER_H_

#include <string>

#include "src/core/status.h"
#include "src/datalog/ast.h"

namespace datalogo {

/// Parses a datalog° program; constants are interned into `domain`.
Result<Program> ParseProgram(const std::string& text, Domain* domain);

}  // namespace datalogo

#endif  // DATALOGO_DATALOG_PARSER_H_
