// Helpers to load graph workloads into EDB instances.
#ifndef DATALOGO_DATALOG_LOADER_H_
#define DATALOGO_DATALOG_LOADER_H_

#include <string>
#include <vector>

#include "src/datalog/instance.h"
#include "src/graph/graph.h"
#include "src/graph/workloads.h"
#include "src/relation/domain.h"

namespace datalogo {

/// Interns vertices 0..n-1 as symbols `prefix0`, `prefix1`, …
inline std::vector<ConstId> InternVertices(int n, Domain* dom,
                                           const std::string& prefix = "v") {
  std::vector<ConstId> ids;
  ids.reserve(n);
  for (int i = 0; i < n; ++i) {
    ids.push_back(dom->InternSymbol(prefix + std::to_string(i)));
  }
  return ids;
}

/// Loads graph edges into a binary POPS relation; `value_of` maps an Edge
/// to its P-value (e.g. TropS: the weight; BoolS: true).
template <Pops P, typename F>
void LoadEdges(const Graph& g, const std::vector<ConstId>& ids, F&& value_of,
               Relation<P>* rel) {
  for (const Edge& e : g.edges()) {
    rel->Merge({ids[e.src], ids[e.dst]}, value_of(e));
  }
}

/// Loads graph edges into a Boolean EDB relation.
inline void LoadEdgesBool(const Graph& g, const std::vector<ConstId>& ids,
                          Relation<BoolS>* rel) {
  for (const Edge& e : g.edges()) {
    rel->Set({ids[e.src], ids[e.dst]}, true);
  }
}

/// Interns the vertex names of a paper figure.
inline std::vector<ConstId> InternNamed(const NamedGraph& g, Domain* dom) {
  std::vector<ConstId> ids;
  ids.reserve(g.names.size());
  for (const std::string& n : g.names) ids.push_back(dom->InternSymbol(n));
  return ids;
}

/// Loads a paper figure's edges into a Boolean EDB relation.
inline void LoadNamedEdgesBool(const NamedGraph& g, Domain* dom,
                               Relation<BoolS>* rel) {
  for (const auto& [s, t] : g.edges) {
    rel->Set({dom->InternSymbol(s), dom->InternSymbol(t)}, true);
  }
}

/// Loads a paper figure's weighted edges into a POPS relation.
template <Pops P, typename F>
void LoadNamedEdges(const NamedGraph& g, Domain* dom, F&& value_of_weight,
                    Relation<P>* rel) {
  for (const auto& [s, t] : g.edges) {
    auto it = g.edge_weights.find({s, t});
    double w = it == g.edge_weights.end() ? 1.0 : it->second;
    rel->Merge({dom->InternSymbol(s), dom->InternSymbol(t)},
               value_of_weight(w));
  }
}

}  // namespace datalogo

#endif  // DATALOGO_DATALOG_LOADER_H_
