// Rule-level reliance analysis for triggered-rule scheduling: which rules
// feed which, condensed into topologically ordered SCC groups.
//
// The reliance graph has one node per rule and an edge r → s whenever the
// head predicate of r occurs as a body (POPS) atom of s — r's output can
// trigger s. Condensing it with the shared Tarjan utility (src/core/scc.h)
// yields *rule groups*: maximal sets of mutually recursive rules, ordered
// so every producer group precedes its consumers. The ordered engine
// scheduler (EngineOptions::scheduler = Scheduler::kOrdered) runs one
// LOCAL fixpoint per group in this order; inside a group only rules whose
// body predicates actually received a delta are re-evaluated.
//
// This is the classical refinement of predicate-level stratification
// (stratify.h): two rules with the same head predicate may land in
// different groups (e.g. a non-recursive base rule and a recursive step
// rule for the same IDB), which is exactly what lets the scheduler stop
// re-sweeping base rules once their one-shot contribution is in. The
// design follows VLog's SemiNaiverOrdered/PositiveGroup reliance model,
// restricted to positive reliances (this engine has no existential rules,
// so there are no restraint edges).
#ifndef DATALOGO_DATALOG_RELIANCE_H_
#define DATALOGO_DATALOG_RELIANCE_H_

#include <algorithm>
#include <vector>

#include "src/core/scc.h"
#include "src/datalog/ast.h"

namespace datalogo {

/// The condensed rule-reliance structure of one program. All vectors are
/// deterministic functions of the program (no iteration-order hazards):
/// groups are listed in execution (producers-first topological) order,
/// rules within a group and predicates within a list ascend by id.
struct RelianceGroups {
  /// Reliance adjacency over rules: rule_adj[r] = rules s with an edge
  /// r → s (head(r) occurs in a body of s), ascending, deduplicated.
  std::vector<std::vector<int>> rule_adj;
  /// rule → index into `groups`.
  std::vector<int> group_of_rule;
  /// Rule ids per group, in execution order (group 0 runs first); every
  /// reliance edge r → s satisfies group_of_rule[r] <= group_of_rule[s].
  std::vector<std::vector<int>> groups;
  /// Distinct head predicates per group, ascending. These are the only
  /// predicates that can receive deltas while the group's local fixpoint
  /// runs; every other predicate a group reads is already converged.
  std::vector<std::vector<int>> group_heads;
  /// True iff the group has an internal reliance edge (a self-recursive
  /// rule or a mutual-recursion cycle). Non-recursive groups are always
  /// singletons and converge in one application.
  std::vector<bool> group_recursive;
  /// Per rule: distinct body IDB predicates across all disjuncts,
  /// ascending — the predicates whose deltas can trigger the rule.
  std::vector<std::vector<int>> rule_body_idb;

  int num_groups() const { return static_cast<int>(groups.size()); }
};

/// Builds the reliance graph of `prog` and condenses it into ordered
/// rule groups. O(rules × atoms + edges); rule counts are tiny relative
/// to data, so this runs once per Engine construction.
inline RelianceGroups BuildRelianceGroups(const Program& prog) {
  const int num_rules = static_cast<int>(prog.rules().size());
  RelianceGroups out;
  out.rule_adj.assign(num_rules, {});
  out.rule_body_idb.assign(num_rules, {});

  // head pred → defining rules (a predicate may be defined by several
  // rules, possibly ending up in different groups).
  std::vector<std::vector<int>> defs(prog.num_predicates());
  for (int r = 0; r < num_rules; ++r) {
    defs[prog.rules()[r].head.pred].push_back(r);
  }

  for (int s = 0; s < num_rules; ++s) {
    std::vector<int>& body = out.rule_body_idb[s];
    for (const SumProduct& sp : prog.rules()[s].disjuncts) {
      for (const Atom& a : sp.atoms) {
        if (prog.predicate(a.pred).kind == PredKind::kIdb) {
          body.push_back(a.pred);
        }
      }
    }
    std::sort(body.begin(), body.end());
    body.erase(std::unique(body.begin(), body.end()), body.end());
    for (int pred : body) {
      for (int r : defs[pred]) out.rule_adj[r].push_back(s);
    }
  }
  for (std::vector<int>& succ : out.rule_adj) {
    std::sort(succ.begin(), succ.end());
    succ.erase(std::unique(succ.begin(), succ.end()), succ.end());
  }

  Tarjan tarjan(out.rule_adj);
  tarjan.Run();
  const std::vector<int>& comp = tarjan.components();
  const int num_comps = tarjan.num_components();

  // Tarjan numbers components in reverse topological order (scc.h), so
  // execution order — producers first — is decreasing component id.
  out.group_of_rule.assign(num_rules, -1);
  out.groups.assign(num_comps, {});
  for (int r = 0; r < num_rules; ++r) {
    const int g = num_comps - 1 - comp[r];
    out.group_of_rule[r] = g;
    out.groups[g].push_back(r);
  }
  for (std::vector<int>& rules : out.groups) {
    std::sort(rules.begin(), rules.end());
  }

  out.group_heads.assign(num_comps, {});
  out.group_recursive.assign(num_comps, false);
  for (int g = 0; g < num_comps; ++g) {
    std::vector<int>& heads = out.group_heads[g];
    for (int r : out.groups[g]) {
      heads.push_back(prog.rules()[r].head.pred);
      for (int s : out.rule_adj[r]) {
        if (out.group_of_rule[s] == g) out.group_recursive[g] = true;
      }
    }
    std::sort(heads.begin(), heads.end());
    heads.erase(std::unique(heads.begin(), heads.end()), heads.end());
  }
  return out;
}

}  // namespace datalogo

#endif  // DATALOGO_DATALOG_RELIANCE_H_
