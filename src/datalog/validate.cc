#include "src/datalog/validate.h"

#include <set>
#include <string>
#include <vector>

namespace datalogo {
namespace {

std::string Where(const Program& prog, const Rule& rule) {
  return "in rule '" + RuleToString(prog, rule) + "'";
}

void CollectVars(const Atom& a, std::set<int>* vars) {
  for (const Term& t : a.args) {
    if (t.IsVar()) vars->insert(t.var);
  }
}

}  // namespace

Status ValidateProgram(const Program& prog) {
  for (const Rule& rule : prog.rules()) {
    // Head discipline.
    if (prog.predicate(rule.head.pred).kind != PredKind::kIdb) {
      return InvalidArgument("head predicate '" +
                             prog.predicate(rule.head.pred).name +
                             "' is not an IDB " + Where(prog, rule));
    }
    std::set<int> head_vars;
    CollectVars(rule.head, &head_vars);

    for (const SumProduct& sp : rule.disjuncts) {
      // Vocabulary discipline.
      for (const Atom& a : sp.atoms) {
        if (prog.predicate(a.pred).kind == PredKind::kBoolEdb) {
          return InvalidArgument(
              "Boolean EDB '" + prog.predicate(a.pred).name +
              "' used as a product atom; move it into a condition " +
              Where(prog, rule));
        }
      }
      for (const Condition& c : sp.conditions) {
        if (c.kind == Condition::Kind::kCompare) continue;
        if (prog.predicate(c.atom.pred).kind != PredKind::kBoolEdb) {
          return InvalidArgument(
              "condition atom '" + prog.predicate(c.atom.pred).name +
              "' is not a Boolean EDB " + Where(prog, rule));
        }
      }

      // Range restriction: compute the bound variable set to fixpoint.
      std::set<int> bound;
      for (const Atom& a : sp.atoms) CollectVars(a, &bound);
      for (const Condition& c : sp.conditions) {
        if (c.kind == Condition::Kind::kBoolAtom) {
          CollectVars(c.atom, &bound);
        }
      }
      bool changed = true;
      while (changed) {
        changed = false;
        for (const Condition& c : sp.conditions) {
          if (c.kind != Condition::Kind::kCompare || c.op != CmpOp::kEq) {
            continue;
          }
          auto bind = [&](const Term& a, const Term& b) {
            // a = b with b grounded (constant or bound) binds a.
            if (!a.IsVar() || bound.count(a.var)) return;
            if (!b.IsVar() || bound.count(b.var)) {
              bound.insert(a.var);
              changed = true;
            }
          };
          bind(c.lhs, c.rhs);
          bind(c.rhs, c.lhs);
        }
      }

      // Every variable used in this disjunct plus every head variable must
      // be bound.
      std::set<int> used = head_vars;
      for (const Atom& a : sp.atoms) CollectVars(a, &used);
      for (const Condition& c : sp.conditions) {
        if (c.kind == Condition::Kind::kCompare) {
          if (c.lhs.IsVar()) used.insert(c.lhs.var);
          if (c.rhs.IsVar()) used.insert(c.rhs.var);
        } else {
          CollectVars(c.atom, &used);
        }
      }
      for (int v : used) {
        if (!bound.count(v)) {
          return InvalidArgument("variable '" + rule.var_names[v] +
                                 "' is not range-restricted " +
                                 Where(prog, rule));
        }
      }
    }
  }
  return Status::Ok();
}

}  // namespace datalogo
