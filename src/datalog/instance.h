// EDB and IDB instances: per-predicate K-relations for one program.
#ifndef DATALOGO_DATALOG_INSTANCE_H_
#define DATALOGO_DATALOG_INSTANCE_H_

#include <algorithm>
#include <utility>
#include <vector>

#include "src/core/check.h"
#include "src/datalog/ast.h"
#include "src/relation/relation.h"
#include "src/semiring/boolean.h"

namespace datalogo {

/// One batch of EDB mutations for Engine::Update: POPS fact insertions
/// (⊕-merged into the stored value, like repeated LoadTsv lines) and
/// deletions (the whole fact leaves the support), plus Boolean-EDB
/// insertions/deletions. Within one Update, deletes are applied before
/// adds — a fact both deleted and re-added ends up present with exactly
/// the added value.
template <Pops P>
struct EdbDelta {
  struct PopsAdd {
    int pred;
    Tuple tuple;
    typename P::Value value;
  };
  struct FactRef {
    int pred;
    Tuple tuple;
  };
  std::vector<PopsAdd> pops_adds;
  std::vector<FactRef> pops_deletes;
  std::vector<FactRef> bool_adds;
  std::vector<FactRef> bool_deletes;

  bool empty() const {
    return pops_adds.empty() && pops_deletes.empty() && bool_adds.empty() &&
           bool_deletes.empty();
  }

  void Add(int pred, Tuple t, typename P::Value v) {
    pops_adds.push_back(PopsAdd{pred, std::move(t), std::move(v)});
  }
  void Delete(int pred, Tuple t) {
    pops_deletes.push_back(FactRef{pred, std::move(t)});
  }
  void AddBool(int pred, Tuple t) {
    bool_adds.push_back(FactRef{pred, std::move(t)});
  }
  void DeleteBool(int pred, Tuple t) {
    bool_deletes.push_back(FactRef{pred, std::move(t)});
  }
};

/// Input instance (I, I_B): POPS relations for σ, Boolean relations for σ_B.
///
/// Concurrency: neither instance class has mutable members, so the const
/// accessors are plain reads — any number of threads may read an instance
/// concurrently as long as no thread mutates it. The engine's parallel
/// ICO step relies on exactly this: input instances are frozen for the
/// duration of one application while worker tasks probe them through
/// RowView/RelationIndex, and all mutation (merge of partials, content
/// moves) happens in its sequential phases.
template <Pops P>
class EdbInstance {
 public:
  explicit EdbInstance(const Program& prog) : prog_(&prog) {
    pops_.reserve(prog.num_predicates());
    bools_.reserve(prog.num_predicates());
    for (int i = 0; i < prog.num_predicates(); ++i) {
      pops_.emplace_back(prog.predicate(i).arity);
      bools_.emplace_back(prog.predicate(i).arity);
    }
  }

  const Program& program() const { return *prog_; }

  Relation<P>& pops(int pred) {
    DLO_CHECK(prog_->predicate(pred).kind == PredKind::kEdb);
    return pops_[pred];
  }
  const Relation<P>& pops(int pred) const {
    DLO_CHECK(prog_->predicate(pred).kind == PredKind::kEdb);
    return pops_[pred];
  }

  Relation<BoolS>& boolean(int pred) {
    DLO_CHECK(prog_->predicate(pred).kind == PredKind::kBoolEdb);
    return bools_[pred];
  }
  const Relation<BoolS>& boolean(int pred) const {
    DLO_CHECK(prog_->predicate(pred).kind == PredKind::kBoolEdb);
    return bools_[pred];
  }

  /// Active domain: all constants in EDB supports plus program constants.
  std::vector<ConstId> ActiveDomain() const {
    std::vector<ConstId> out;
    for (int i = 0; i < prog_->num_predicates(); ++i) {
      PredKind k = prog_->predicate(i).kind;
      if (k == PredKind::kEdb) pops_[i].CollectConstants(out);
      if (k == PredKind::kBoolEdb) bools_[i].CollectConstants(out);
    }
    for (const Rule& rule : prog_->rules()) {
      auto add_atom = [&](const Atom& a) {
        for (const Term& t : a.args) {
          if (!t.IsVar()) out.push_back(t.constant);
        }
      };
      add_atom(rule.head);
      for (const SumProduct& sp : rule.disjuncts) {
        for (const Atom& a : sp.atoms) add_atom(a);
        for (const Condition& c : sp.conditions) {
          if (c.kind == Condition::Kind::kCompare) {
            if (!c.lhs.IsVar()) out.push_back(c.lhs.constant);
            if (!c.rhs.IsVar()) out.push_back(c.rhs.constant);
          } else {
            add_atom(c.atom);
          }
        }
      }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  }

 private:
  const Program* prog_;
  std::vector<Relation<P>> pops_;
  std::vector<Relation<BoolS>> bools_;
};

/// Output instance J: one POPS relation per IDB predicate.
template <Pops P>
class IdbInstance {
 public:
  explicit IdbInstance(const Program& prog) : prog_(&prog) {
    rels_.reserve(prog.num_predicates());
    for (int i = 0; i < prog.num_predicates(); ++i) {
      rels_.emplace_back(prog.predicate(i).arity);
    }
  }

  Relation<P>& idb(int pred) {
    DLO_CHECK(prog_->predicate(pred).kind == PredKind::kIdb);
    return rels_[pred];
  }
  const Relation<P>& idb(int pred) const {
    DLO_CHECK(prog_->predicate(pred).kind == PredKind::kIdb);
    return rels_[pred];
  }

  bool Equals(const IdbInstance& other) const {
    for (int pred : prog_->IdbPredicates()) {
      if (!rels_[pred].Equals(other.rels_[pred])) return false;
    }
    return true;
  }

  /// True iff `pred`'s relation currently has support — the delta-drain
  /// signal the ordered scheduler's triggered-rule sets key on.
  bool HasSupport(int pred) const { return !rels_[pred].empty(); }

  /// Clears every IDB relation in place. Column and slot capacity — and
  /// the Relation uids the index cache is keyed by — are retained, so a
  /// Clear + refill cycle reuses storage instead of churning objects.
  /// Clear is also a *soft* mutation in the relation's hard/clear-version
  /// model: cached indexes of a cleared-then-refilled relation are
  /// refreshed by reset-and-reappend (no per-row hash-map teardown, no
  /// tier re-detection) rather than rebuilt — which is why the engine
  /// routes every per-round delta through Clear + Set/Merge instead of
  /// whole-object moves.
  void ClearAll() {
    for (int pred : prog_->IdbPredicates()) rels_[pred].Clear();
  }

  /// ClearAll restricted to a predicate subset — the ordered scheduler
  /// recycles one candidate/delta instance across group-local fixpoints
  /// and only ever touches the running group's head predicates.
  void ClearPreds(const std::vector<int>& preds) {
    for (int pred : preds) rels_[pred].Clear();
  }

  /// Compacts tombstoned rows out of every IDB relation. Per relation a
  /// no-op (version and cached indexes untouched) when it has none.
  void CompactAll() {
    for (int pred : prog_->IdbPredicates()) rels_[pred].Compact();
  }

  /// CompactAll restricted to a predicate subset.
  void CompactPreds(const std::vector<int>& preds) {
    for (int pred : preds) rels_[pred].Compact();
  }

  /// Element-wise copy assignment into this instance's existing Relation
  /// objects: unlike `*this = other`, the objects (and their uids) stay
  /// alive, so index-cache entries keyed by them remain attached.
  void CopyContentsFrom(const IdbInstance& other) {
    DLO_CHECK(rels_.size() == other.rels_.size());
    for (int pred : prog_->IdbPredicates()) rels_[pred] = other.rels_[pred];
  }

  /// CopyContentsFrom restricted to a predicate subset.
  void CopyPredsFrom(const IdbInstance& other, const std::vector<int>& preds) {
    DLO_CHECK(rels_.size() == other.rels_.size());
    for (int pred : preds) rels_[pred] = other.rels_[pred];
  }

  /// Element-wise move assignment with the same uid-stability guarantee;
  /// `other`'s relations are left empty (and usable). Note this is a
  /// *hard* mutation on both sides (row ids mean something new), so any
  /// cached index of either relation fully rebuilds on next use — prefer
  /// Clear + refill (see ClearAll) for relations that are re-indexed
  /// every round.
  void TakeContentsFrom(IdbInstance* other) {
    DLO_CHECK(rels_.size() == other->rels_.size());
    for (int pred : prog_->IdbPredicates()) {
      rels_[pred] = std::move(other->rels_[pred]);
    }
  }

  /// TakeContentsFrom restricted to a predicate subset.
  void TakePredsFrom(IdbInstance* other, const std::vector<int>& preds) {
    DLO_CHECK(rels_.size() == other->rels_.size());
    for (int pred : preds) rels_[pred] = std::move(other->rels_[pred]);
  }

  /// Total support size across IDB relations.
  std::size_t TotalSupport() const {
    std::size_t n = 0;
    for (int pred : prog_->IdbPredicates()) n += rels_[pred].support_size();
    return n;
  }

 private:
  const Program* prog_;
  std::vector<Relation<P>> rels_;
};

}  // namespace datalogo

#endif  // DATALOGO_DATALOG_INSTANCE_H_
