// Abstract syntax of datalog° (Sec. 4): programs of conditional
// sum-sum-product rules (Definitions 2.5 and 2.7) over a vocabulary of
// POPS EDBs (σ), Boolean EDBs (σ_B) and IDBs (τ).
//
// The condition language Φ implemented here is the fragment every example
// in the paper uses: conjunctions of (possibly negated) Boolean-EDB atoms
// and key comparisons. Indicator functions [C] (Sec. 4.4) desugar into
// conditions at parse time; `!R(..)` in a product applies the POPS's `Not`
// (Sec. 7, THREE/FOUR).
#ifndef DATALOGO_DATALOG_AST_H_
#define DATALOGO_DATALOG_AST_H_

#include <string>
#include <vector>

#include "src/relation/domain.h"

namespace datalogo {

/// Role of a predicate in the program vocabulary.
enum class PredKind {
  kEdb,      ///< POPS-valued input relation (σ)
  kBoolEdb,  ///< Boolean input relation (σ_B), usable in conditions
  kIdb,      ///< computed relation (τ)
};

/// A predicate declaration.
struct Predicate {
  std::string name;
  int arity = 0;
  PredKind kind = PredKind::kEdb;
};

/// A key term: rule variable or interned constant.
struct Term {
  enum class Kind { kVar, kConst } kind = Kind::kVar;
  int var = -1;           ///< valid when kind == kVar (rule-local index)
  ConstId constant = 0;   ///< valid when kind == kConst

  static Term Var(int v) { return Term{Kind::kVar, v, 0}; }
  static Term Const(ConstId c) { return Term{Kind::kConst, -1, c}; }
  bool IsVar() const { return kind == Kind::kVar; }
};

/// A (POPS or Boolean) atom R(t₁, …, t_k). `negated` applies the POPS's
/// Not function to the atom's value (THREE/FOUR/B only).
struct Atom {
  int pred = -1;
  std::vector<Term> args;
  bool negated = false;
};

/// Comparison operators usable in conditions.
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// One conjunct of the condition Φ.
struct Condition {
  enum class Kind {
    kBoolAtom,     ///< B(t…) must hold
    kNegBoolAtom,  ///< ¬B(t…) must hold
    kCompare,      ///< t₁ op t₂ on keys (order comparisons need integers)
  } kind = Kind::kBoolAtom;
  Atom atom;            ///< for (Neg)BoolAtom
  CmpOp op = CmpOp::kEq;
  Term lhs, rhs;        ///< for Compare
};

/// One sum-product { R₁(X₁) ⊗ … ⊗ R_m(X_m) | Φ } (Def. 2.5). The bound
/// variables (those not in the head) are ⊕-aggregated over.
struct SumProduct {
  std::vector<Atom> atoms;            ///< may be empty (pure indicator)
  std::vector<Condition> conditions;  ///< the conjuncts of Φ
};

/// A rule T(X…) :- E₁ ⊕ … ⊕ E_q (Def. 2.7).
struct Rule {
  Atom head;
  std::vector<SumProduct> disjuncts;
  int num_vars = 0;                     ///< rule-local variable count
  std::vector<std::string> var_names;   ///< index → source name
};

/// A datalog° program: vocabulary + rules. The same Program object can be
/// evaluated over any POPS; the values live in the EDB instances.
class Program {
 public:
  explicit Program(Domain* domain) : domain_(domain) {}

  Domain* domain() const { return domain_; }

  /// Declares (or finds) a predicate; re-declaration with conflicting
  /// arity/kind is a caller bug (checked). `auto_declared` marks
  /// predicates invented by the parser from usage (their kind is a guess
  /// and may be upgraded, see UpgradeToIdb).
  int AddPredicate(const std::string& name, int arity, PredKind kind,
                   bool auto_declared = false);

  /// Upgrades an auto-declared POPS EDB to an IDB — used when a predicate
  /// first seen in a rule body later appears as a rule head (mutual
  /// recursion written top-down).
  void UpgradeToIdb(int pred);

  /// Finds a predicate id by name (-1 if absent).
  int FindPredicate(const std::string& name) const;

  const Predicate& predicate(int id) const;
  int num_predicates() const { return static_cast<int>(preds_.size()); }

  void AddRule(Rule rule) { rules_.push_back(std::move(rule)); }
  const std::vector<Rule>& rules() const { return rules_; }
  std::vector<Rule>& mutable_rules() { return rules_; }

  /// All IDB predicate ids, in declaration order.
  std::vector<int> IdbPredicates() const;

  /// True if every rule body has ≤ 1 IDB occurrence per sum-product
  /// (the paper's "linear program", Sec. 4).
  bool IsLinear() const;

  /// Pretty-prints the program in the parser's syntax.
  std::string ToString() const;

 private:
  Domain* domain_;
  std::vector<Predicate> preds_;
  std::vector<bool> auto_declared_;
  std::vector<Rule> rules_;
};

/// Renders one rule in the parser's concrete syntax.
std::string RuleToString(const Program& prog, const Rule& rule);

}  // namespace datalogo

#endif  // DATALOGO_DATALOG_AST_H_
