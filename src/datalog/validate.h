// Static checks on datalog° programs: vocabulary discipline (heads are
// IDBs, condition atoms are Boolean EDBs, products contain POPS atoms)
// and range restriction / safety, which is what keeps grounded semantics
// domain-independent (Sec. 2.4 discussion of the conditional Φ).
#ifndef DATALOGO_DATALOG_VALIDATE_H_
#define DATALOGO_DATALOG_VALIDATE_H_

#include "src/core/status.h"
#include "src/datalog/ast.h"

namespace datalogo {

/// Validates the program; returns the first violation found.
///
/// Enforced rules:
///  * every rule head is an IDB atom;
///  * condition atoms refer to Boolean EDB predicates;
///  * product atoms refer to POPS EDB or IDB predicates;
///  * per disjunct, every variable occurring in the disjunct or the head
///    is *bound*: it appears in a product atom, in a positive Boolean
///    condition atom, or is chained by `=` conditions to a constant or a
///    bound variable.
Status ValidateProgram(const Program& prog);

}  // namespace datalogo

#endif  // DATALOGO_DATALOG_VALIDATE_H_
