#include "src/datalog/stratify.h"

#include <algorithm>

#include "src/core/check.h"
#include "src/core/scc.h"

namespace datalogo {

Stratification StratifyProgram(const Program& prog) {
  const int np = prog.num_predicates();
  std::vector<std::vector<int>> adj(np);  // body pred → head pred
  for (const Rule& rule : prog.rules()) {
    for (const SumProduct& sp : rule.disjuncts) {
      for (const Atom& a : sp.atoms) {
        if (prog.predicate(a.pred).kind == PredKind::kIdb) {
          adj[a.pred].push_back(rule.head.pred);
        }
      }
    }
  }

  Tarjan tarjan(adj);
  tarjan.Run();
  const std::vector<int>& comp = tarjan.components();
  const int nc = tarjan.num_components();

  // Longest-path layering of the condensation: stratum(c) = 1 + max over
  // predecessors in a different component. Tarjan numbers components in
  // reverse topological order, so processing components in DECREASING
  // order visits sources first.
  std::vector<int> comp_level(nc, 0);
  std::vector<int> order(np);
  for (int i = 0; i < np; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return comp[a] > comp[b]; });
  for (int v : order) {
    for (int w : adj[v]) {
      if (comp[w] != comp[v]) {
        comp_level[comp[w]] =
            std::max(comp_level[comp[w]], comp_level[comp[v]] + 1);
      }
    }
  }

  Stratification out;
  out.pred_stratum.assign(np, -1);
  int max_level = 0;
  for (int p = 0; p < np; ++p) {
    if (prog.predicate(p).kind != PredKind::kIdb) continue;
    out.pred_stratum[p] = comp_level[comp[p]];
    max_level = std::max(max_level, out.pred_stratum[p]);
  }
  out.num_strata = max_level + 1;
  out.strata_rules.assign(out.num_strata, {});
  for (std::size_t r = 0; r < prog.rules().size(); ++r) {
    int head = prog.rules()[r].head.pred;
    DLO_CHECK(out.pred_stratum[head] >= 0);
    out.strata_rules[out.pred_stratum[head]].push_back(static_cast<int>(r));
  }
  return out;
}

}  // namespace datalogo
