// Predicate dependency analysis and stratification (Sec. 4.5 "Multiple
// Value Spaces" and Sec. 6.4): Tarjan SCC condensation of the IDB
// dependency graph, yielding strata that can be evaluated bottom-up with
// lower strata frozen as extra EDBs.
#ifndef DATALOGO_DATALOG_STRATIFY_H_
#define DATALOGO_DATALOG_STRATIFY_H_

#include <vector>

#include "src/core/status.h"
#include "src/datalog/ast.h"

namespace datalogo {

/// Result of stratifying a program.
struct Stratification {
  /// stratum index per predicate (-1 for EDBs).
  std::vector<int> pred_stratum;
  /// rule indexes per stratum, bottom-up.
  std::vector<std::vector<int>> strata_rules;
  int num_strata = 0;
};

/// Computes strata from the IDB dependency graph (edge: body IDB → head).
/// Mutually recursive predicates share a stratum; a rule lives in the
/// stratum of its head.
Stratification StratifyProgram(const Program& prog);

}  // namespace datalogo

#endif  // DATALOGO_DATALOG_STRATIFY_H_
