// Stratified evaluation (Sec. 4.5 / 6.4): evaluate the program bottom-up
// by strata, freezing lower-stratum IDB relations as additional inputs.
// For programs whose rules are all monotone this computes the same least
// fixpoint as whole-program iteration, usually in fewer total steps.
#ifndef DATALOGO_DATALOG_STRATIFIED_H_
#define DATALOGO_DATALOG_STRATIFIED_H_

#include "src/datalog/engine.h"
#include "src/datalog/stratify.h"

namespace datalogo {

/// Evaluates stratum by stratum with the naive algorithm; `steps` in the
/// result is the SUM of per-stratum stability indexes.
template <NaturallyOrderedSemiring P>
EvalResult<P> EvaluateStratified(const Program& prog,
                                 const EdbInstance<P>& edb,
                                 int max_steps_per_stratum) {
  Engine<P> engine(prog, edb);
  Stratification strat = StratifyProgram(prog);
  IdbInstance<P> j(prog);
  int total_steps = 0;
  uint64_t work = 0;
  for (int s = 0; s < strat.num_strata; ++s) {
    EvalResult<P> r = engine.NaiveWithRules(strat.strata_rules[s], j,
                                            max_steps_per_stratum);
    total_steps += r.steps;
    work += r.work;
    if (!r.converged) {
      return {std::move(r.idb), total_steps, false, work};
    }
    j = std::move(r.idb);
  }
  return {std::move(j), total_steps, true, work};
}

}  // namespace datalogo

#endif  // DATALOGO_DATALOG_STRATIFIED_H_
