#include "src/datalog/ast.h"

#include <sstream>

#include "src/core/check.h"

namespace datalogo {

int Program::AddPredicate(const std::string& name, int arity, PredKind kind,
                          bool auto_declared) {
  int existing = FindPredicate(name);
  if (existing >= 0) {
    DLO_CHECK_MSG(preds_[existing].arity == arity,
                  "predicate re-declared with different arity");
    return existing;
  }
  preds_.push_back(Predicate{name, arity, kind});
  auto_declared_.push_back(auto_declared);
  return static_cast<int>(preds_.size()) - 1;
}

void Program::UpgradeToIdb(int pred) {
  DLO_CHECK(pred >= 0 && pred < static_cast<int>(preds_.size()));
  if (preds_[pred].kind == PredKind::kEdb && auto_declared_[pred]) {
    preds_[pred].kind = PredKind::kIdb;
  }
}

int Program::FindPredicate(const std::string& name) const {
  for (std::size_t i = 0; i < preds_.size(); ++i) {
    if (preds_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

const Predicate& Program::predicate(int id) const {
  DLO_CHECK(id >= 0 && id < static_cast<int>(preds_.size()));
  return preds_[id];
}

std::vector<int> Program::IdbPredicates() const {
  std::vector<int> out;
  for (std::size_t i = 0; i < preds_.size(); ++i) {
    if (preds_[i].kind == PredKind::kIdb) out.push_back(static_cast<int>(i));
  }
  return out;
}

bool Program::IsLinear() const {
  for (const Rule& rule : rules_) {
    for (const SumProduct& sp : rule.disjuncts) {
      int idb_count = 0;
      for (const Atom& a : sp.atoms) {
        if (predicate(a.pred).kind == PredKind::kIdb) ++idb_count;
      }
      if (idb_count > 1) return false;
    }
  }
  return true;
}

namespace {

std::string TermToString(const Program& prog, const Rule& rule,
                         const Term& t) {
  if (t.IsVar()) {
    if (t.var >= 0 && t.var < static_cast<int>(rule.var_names.size())) {
      return rule.var_names[t.var];
    }
    return "V" + std::to_string(t.var);
  }
  return prog.domain()->ToString(t.constant);
}

std::string AtomToString(const Program& prog, const Rule& rule,
                         const Atom& a) {
  std::ostringstream os;
  if (a.negated) os << "!";
  os << prog.predicate(a.pred).name << "(";
  for (std::size_t i = 0; i < a.args.size(); ++i) {
    if (i) os << ",";
    os << TermToString(prog, rule, a.args[i]);
  }
  os << ")";
  return os.str();
}

const char* CmpToString(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

std::string ConditionToString(const Program& prog, const Rule& rule,
                              const Condition& c) {
  switch (c.kind) {
    case Condition::Kind::kBoolAtom:
      return AtomToString(prog, rule, c.atom);
    case Condition::Kind::kNegBoolAtom:
      return "!" + AtomToString(prog, rule, c.atom);
    case Condition::Kind::kCompare:
      return TermToString(prog, rule, c.lhs) + " " + CmpToString(c.op) + " " +
             TermToString(prog, rule, c.rhs);
  }
  return "?";
}

}  // namespace

std::string RuleToString(const Program& prog, const Rule& rule) {
  std::ostringstream os;
  os << AtomToString(prog, rule, rule.head) << " :- ";
  for (std::size_t d = 0; d < rule.disjuncts.size(); ++d) {
    if (d) os << " ; ";
    const SumProduct& sp = rule.disjuncts[d];
    bool braces = !sp.conditions.empty();
    if (braces) os << "{ ";
    if (sp.atoms.empty()) {
      os << "1";
    } else {
      for (std::size_t i = 0; i < sp.atoms.size(); ++i) {
        if (i) os << " * ";
        os << AtomToString(prog, rule, sp.atoms[i]);
      }
    }
    if (braces) {
      os << " | ";
      for (std::size_t i = 0; i < sp.conditions.size(); ++i) {
        if (i) os << ", ";
        os << ConditionToString(prog, rule, sp.conditions[i]);
      }
      os << " }";
    }
  }
  os << ".";
  return os.str();
}

std::string Program::ToString() const {
  std::ostringstream os;
  for (const Predicate& p : preds_) {
    const char* kw = p.kind == PredKind::kEdb
                         ? "edb"
                         : (p.kind == PredKind::kBoolEdb ? "bedb" : "idb");
    os << kw << " " << p.name << "/" << p.arity << ".\n";
  }
  for (const Rule& r : rules_) {
    os << RuleToString(*this, r) << "\n";
  }
  return os.str();
}

}  // namespace datalogo
