// The convergence advisor: Theorem 1.2 as an API. Given a grounded
// program over a classified POPS, predicts which of the paper's cases
// (iii)-(v) applies and produces the step bound the theorem guarantees.
#ifndef DATALOGO_DATALOG_ADVISOR_H_
#define DATALOGO_DATALOG_ADVISOR_H_

#include <string>

#include "src/datalog/grounder.h"
#include "src/fixpoint/fixpoint.h"
#include "src/semiring/classification.h"

namespace datalogo {

/// Theorem 1.2 verdict for a (program, POPS) pair.
enum class ConvergenceVerdict {
  /// Case (v): 0-stable core — converges within N steps, PTIME.
  kPolynomialTime,
  /// Case (iv): p-stable core — converges within Σ(p+2)^i (or Σ(p+1)^i if
  /// linear) steps, independent of the EDB values.
  kBoundedSteps,
  /// Case (iii): stable core — converges, steps may depend on the values.
  kConverges,
  /// The core semiring has unstable elements: recursive programs may
  /// diverge (only non-recursive groundings are safe).
  kMayDiverge,
};

/// A convergence prediction with the Theorem 1.2 bound (when applicable).
struct ConvergenceReport {
  ConvergenceVerdict verdict = ConvergenceVerdict::kMayDiverge;
  bool linear = false;
  bool recursive = false;
  int num_vars = 0;
  /// Theorem 5.12 step bound; kBoundInf when no uniform bound exists.
  uint64_t bound = kBoundInf;
  std::string explanation;
};

/// Applies Theorem 1.2 / Corollaries 5.17-5.19 to a grounded program.
template <Pops P>
ConvergenceReport Advise(const GroundedProgram<P>& grounded) {
  using C = CoreStability<P>;
  ConvergenceReport r;
  r.linear = grounded.system().IsLinear();
  r.num_vars = grounded.num_vars();
  const auto recursive = grounded.system().RecursiveVars();
  for (bool rec : recursive) {
    if (rec) r.recursive = true;
  }

  if (!r.recursive) {
    // An acyclic grounding converges within N steps over ANY POPS
    // (Sec. 5.4 discussion: the dependency graph is a DAG).
    r.verdict = ConvergenceVerdict::kPolynomialTime;
    r.bound = static_cast<uint64_t>(r.num_vars);
    r.explanation = "grounded dependency graph is acyclic";
    return r;
  }
  switch (C::kClass) {
    case StabilityClass::kUniformlyStable:
      if (C::kP == 0) {
        r.verdict = ConvergenceVerdict::kPolynomialTime;
        r.bound = static_cast<uint64_t>(r.num_vars);
        r.explanation =
            "core semiring is 0-stable: N-step bound (Thm 5.12(2))";
      } else {
        r.verdict = ConvergenceVerdict::kBoundedSteps;
        r.bound = grounded.system().ConvergenceBound(C::kP);
        r.explanation = "core semiring is p-stable with p = " +
                        std::to_string(C::kP) + " (Thm 5.12(1))";
      }
      break;
    case StabilityClass::kStable:
      r.verdict = ConvergenceVerdict::kConverges;
      r.bound = kBoundInf;
      r.explanation =
          "core semiring stable but not uniformly: converges, steps "
          "depend on the EDB values (Thm 5.10)";
      break;
    case StabilityClass::kUnstable:
      r.verdict = ConvergenceVerdict::kMayDiverge;
      r.bound = kBoundInf;
      r.explanation =
          "core semiring has non-stable elements: recursion may diverge "
          "(Thm 1.2, necessity direction)";
      break;
  }
  return r;
}

/// Printable verdict name.
inline const char* VerdictName(ConvergenceVerdict v) {
  switch (v) {
    case ConvergenceVerdict::kPolynomialTime:
      return "POLYNOMIAL_TIME";
    case ConvergenceVerdict::kBoundedSteps:
      return "BOUNDED_STEPS";
    case ConvergenceVerdict::kConverges:
      return "CONVERGES";
    case ConvergenceVerdict::kMayDiverge:
      return "MAY_DIVERGE";
  }
  return "?";
}

}  // namespace datalogo

#endif  // DATALOGO_DATALOG_ADVISOR_H_
