// Grounding (Sec. 4.3): instantiates a datalog° program over the active
// domain into a vector-valued polynomial system — one POPS variable per
// IDB ground atom, one provenance-polynomial (Sec. 2.4) per variable. The
// grounded view is sound for EVERY POPS (including non-absorptive ones
// like R⊥ and THREE) and is the object the convergence theorems analyze.
#ifndef DATALOGO_DATALOG_GROUNDER_H_
#define DATALOGO_DATALOG_GROUNDER_H_

#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/core/check.h"
#include "src/datalog/ast.h"
#include "src/datalog/instance.h"
#include "src/poly/poly_system.h"
#include "src/relation/tuple.h"

namespace datalogo {

/// A grounded datalog° program: the polynomial system plus the ground-atom
/// ↔ variable correspondence.
template <Pops P>
class GroundedProgram {
 public:
  GroundedProgram(const Program& prog, PolySystem<P> system,
                  std::vector<std::pair<int, Tuple>> atom_of_var,
                  std::unordered_map<Tuple, int, TupleHash> var_lookup)
      : prog_(&prog),
        system_(std::move(system)),
        atom_of_var_(std::move(atom_of_var)),
        var_lookup_(std::move(var_lookup)) {}

  const PolySystem<P>& system() const { return system_; }
  int num_vars() const { return system_.num_vars(); }

  /// The (pred, tuple) of a grounded variable.
  const std::pair<int, Tuple>& AtomOf(int var) const {
    DLO_CHECK(var >= 0 && var < num_vars());
    return atom_of_var_[var];
  }

  /// Variable index of an IDB ground atom, or -1 if outside the grounding.
  int VarOf(int pred, const Tuple& t) const {
    Tuple key;
    key.reserve(t.size() + 1);
    key.push_back(static_cast<ConstId>(pred));
    key.append(t.begin(), t.end());
    auto it = var_lookup_.find(key);
    return it == var_lookup_.end() ? -1 : it->second;
  }

  /// Runs Algorithm 1 on the grounded system.
  PolyIterationResult<P> NaiveIterate(int max_steps) const {
    return system_.NaiveIterate(max_steps);
  }

  /// Decodes a value vector into an IDB instance (support = non-⊥).
  IdbInstance<P> Decode(const std::vector<typename P::Value>& x) const {
    IdbInstance<P> out(*prog_);
    DLO_CHECK(static_cast<int>(x.size()) == num_vars());
    for (int v = 0; v < num_vars(); ++v) {
      const auto& [pred, tuple] = atom_of_var_[v];
      out.idb(pred).Set(tuple, x[v]);
    }
    return out;
  }

 private:
  const Program* prog_;
  PolySystem<P> system_;
  std::vector<std::pair<int, Tuple>> atom_of_var_;
  std::unordered_map<Tuple, int, TupleHash> var_lookup_;
};

/// Grounds `prog` against the EDB instance over its active domain.
///
/// For each rule and each valuation θ of the rule variables into ADom that
/// satisfies the conditions Φ, emits the monomial θ(body) (Eq. 12) into
/// the provenance polynomial of the head ground atom (Eq. 13): POPS-EDB
/// atom values multiply into the coefficient, IDB atoms become variable
/// factors (negated ones become Not-factors). Over a semiring, monomials
/// whose coefficient is 0 are dropped (absorption makes them inert); over
/// a general POPS they are kept, preserving ⊥-propagation.
template <Pops P>
GroundedProgram<P> GroundProgram(const Program& prog,
                                 const EdbInstance<P>& edb) {
  std::vector<ConstId> adom = edb.ActiveDomain();

  // Enumerate IDB ground atoms: one variable per tuple in ADom^arity.
  std::vector<std::pair<int, Tuple>> atom_of_var;
  std::unordered_map<Tuple, int, TupleHash> var_lookup;
  for (int pred : prog.IdbPredicates()) {
    int arity = prog.predicate(pred).arity;
    Tuple t(arity, 0);
    std::function<void(int)> enumerate = [&](int pos) {
      if (pos == arity) {
        Tuple key;
        key.reserve(arity + 1);
        key.push_back(static_cast<ConstId>(pred));
        key.append(t.begin(), t.end());
        var_lookup.emplace(key, static_cast<int>(atom_of_var.size()));
        atom_of_var.emplace_back(pred, t);
        return;
      }
      for (ConstId c : adom) {
        t[pos] = c;
        enumerate(pos + 1);
      }
    };
    enumerate(0);
  }

  PolySystem<P> system(static_cast<int>(atom_of_var.size()));

  auto var_of = [&](int pred, const Tuple& t) {
    Tuple key;
    key.reserve(t.size() + 1);
    key.push_back(static_cast<ConstId>(pred));
    key.append(t.begin(), t.end());
    auto it = var_lookup.find(key);
    DLO_CHECK(it != var_lookup.end());
    return it->second;
  };

  constexpr ConstId kUnbound = static_cast<ConstId>(-1);

  for (const Rule& rule : prog.rules()) {
    for (const SumProduct& sp : rule.disjuncts) {
      std::vector<ConstId> binding(rule.num_vars, kUnbound);

      // Only the variables of THIS sum-product (plus the head variables)
      // are quantified (Def. 2.5); enumerating unused rule variables would
      // add spurious duplicate monomials (the domain-dependence pitfall of
      // Sec. 2.4).
      std::vector<bool> used(rule.num_vars, false);
      auto mark = [&](const Term& t) {
        if (t.IsVar()) used[t.var] = true;
      };
      for (const Term& t : rule.head.args) mark(t);
      for (const Atom& a : sp.atoms) {
        for (const Term& t : a.args) mark(t);
      }
      for (const Condition& c : sp.conditions) {
        if (c.kind == Condition::Kind::kCompare) {
          mark(c.lhs);
          mark(c.rhs);
        } else {
          for (const Term& t : c.atom.args) mark(t);
        }
      }
      std::vector<int> quantified;
      for (int v = 0; v < rule.num_vars; ++v) {
        if (used[v]) quantified.push_back(v);
      }

      auto ground_term = [&](const Term& t) -> ConstId {
        return t.IsVar() ? binding[t.var] : t.constant;
      };
      auto condition_ready = [&](const Condition& c) {
        auto term_ready = [&](const Term& t) {
          return !t.IsVar() || binding[t.var] != kUnbound;
        };
        if (c.kind == Condition::Kind::kCompare) {
          return term_ready(c.lhs) && term_ready(c.rhs);
        }
        for (const Term& t : c.atom.args) {
          if (!term_ready(t)) return false;
        }
        return true;
      };
      auto check_condition = [&](const Condition& c) {
        switch (c.kind) {
          case Condition::Kind::kBoolAtom:
          case Condition::Kind::kNegBoolAtom: {
            Tuple t;
            for (const Term& term : c.atom.args) {
              t.push_back(ground_term(term));
            }
            bool holds = edb.boolean(c.atom.pred).Get(t);
            return c.kind == Condition::Kind::kBoolAtom ? holds : !holds;
          }
          case Condition::Kind::kCompare: {
            ConstId l = ground_term(c.lhs), r = ground_term(c.rhs);
            if (c.op == CmpOp::kEq) return l == r;
            if (c.op == CmpOp::kNe) return l != r;
            auto li = prog.domain()->AsInt(l);
            auto ri = prog.domain()->AsInt(r);
            DLO_CHECK_MSG(li.has_value() && ri.has_value(),
                          "order comparison requires integer constants");
            switch (c.op) {
              case CmpOp::kLt:
                return *li < *ri;
              case CmpOp::kLe:
                return *li <= *ri;
              case CmpOp::kGt:
                return *li > *ri;
              case CmpOp::kGe:
                return *li >= *ri;
              default:
                return false;
            }
          }
        }
        return false;
      };

      // Checked[i]: condition i already verified during enumeration.
      std::vector<bool> checked(sp.conditions.size(), false);

      std::function<void(std::size_t)> enumerate = [&](std::size_t qi) {
        // Check any condition that just became ready (prunes early).
        std::vector<int> newly;
        for (std::size_t i = 0; i < sp.conditions.size(); ++i) {
          if (!checked[i] && condition_ready(sp.conditions[i])) {
            if (!check_condition(sp.conditions[i])) {
              for (int k : newly) checked[k] = false;
              return;
            }
            checked[i] = true;
            newly.push_back(static_cast<int>(i));
          }
        }
        if (qi == quantified.size()) {
          // Build the monomial θ(body).
          Monomial<P> m;
          m.coeff = P::One();
          bool drop = false;
          for (const Atom& a : sp.atoms) {
            Tuple t;
            t.reserve(a.args.size());
            for (const Term& term : a.args) t.push_back(ground_term(term));
            if (prog.predicate(a.pred).kind == PredKind::kIdb) {
              int var = var_of(a.pred, t);
              if (a.negated) {
                m.negations.push_back(var);
              } else {
                m.powers.emplace_back(var, 1);
              }
            } else {
              DLO_CHECK_MSG(!a.negated, "negated EDB atom");
              m.coeff = P::Times(m.coeff, edb.pops(a.pred).Get(t));
            }
          }
          if constexpr (P::kIsSemiring) {
            // Absorption makes 0-coefficient monomials inert.
            if (P::Eq(m.coeff, P::Zero())) drop = true;
          }
          if (!drop) {
            m.Normalize();
            Tuple head;
            head.reserve(rule.head.args.size());
            for (const Term& term : rule.head.args) {
              ConstId id = ground_term(term);
              DLO_CHECK_MSG(id != kUnbound, "unbound head variable");
              head.push_back(id);
            }
            system.poly(var_of(rule.head.pred, head)).Add(std::move(m));
          }
        } else {
          int v = quantified[qi];
          for (ConstId c : adom) {
            binding[v] = c;
            enumerate(qi + 1);
            binding[v] = kUnbound;
          }
        }
        for (int k : newly) checked[k] = false;
      };
      enumerate(0);
    }
  }

  return GroundedProgram<P>(prog, std::move(system), std::move(atom_of_var),
                            std::move(var_lookup));
}

}  // namespace datalogo

#endif  // DATALOGO_DATALOG_GROUNDER_H_
