// Example 4.2: bill-of-material — recursion interleaved with SUM
// aggregation. On the cyclic Fig. 2(b) the program diverges over N but
// converges in 3 steps over the lifted reals R⊥, leaving the on-cycle
// parts undefined (⊥).
#include <cstdio>

#include "src/datalogo.h"

namespace {

constexpr const char* kBom = R"(
  bedb E/2.
  edb C/1.
  idb T/1.
  T(X) :- C(X) ; { T(Y) | E(X, Y) }.
)";

using namespace datalogo;
using LReal = Lifted<RealS>;

void RunLiftedReals() {
  Domain dom;
  auto prog = ParseProgram(kBom, &dom).value();
  NamedGraph fig = PaperFig2b();
  EdbInstance<LReal> edb(prog);
  LoadNamedEdgesBool(fig, &dom, &edb.boolean(prog.FindPredicate("E")));
  for (const auto& [v, c] : fig.vertex_costs) {
    edb.pops(prog.FindPredicate("C"))
        .Set({dom.InternSymbol(v)}, LReal::Lift(c));
  }
  auto grounded = GroundProgram<LReal>(prog, edb);
  int t = prog.FindPredicate("T");
  const char* nodes[] = {"a", "b", "c", "d"};

  std::printf("over R_bot (lifted reals):\n       a      b      c      d\n");
  std::vector<LReal::Value> x(grounded.num_vars(), LReal::Bottom());
  for (int step = 0;; ++step) {
    std::printf("T%d:  ", step);
    for (const char* n : nodes) {
      int var = grounded.VarOf(t, {*dom.FindSymbol(n)});
      std::printf("%6s ", LReal::ToString(x[var]).c_str());
    }
    std::printf("\n");
    auto next = grounded.system().Evaluate(x);
    bool fixed = true;
    for (int i = 0; i < grounded.num_vars(); ++i) {
      if (!LReal::Eq(next[i], x[i])) fixed = false;
    }
    if (fixed || step > 10) break;
    x = std::move(next);
  }
  std::printf(
      "\na and b sit on a cost cycle: their total cost is undefined (bot);\n"
      "c = 1 + cost(d) = 11, d = 10 — exactly the paper's table.\n\n");
}

void RunNaturalsDiverges() {
  Domain dom;
  auto prog = ParseProgram(kBom, &dom).value();
  NamedGraph fig = PaperFig2b();
  EdbInstance<NatS> edb(prog);
  LoadNamedEdgesBool(fig, &dom, &edb.boolean(prog.FindPredicate("E")));
  for (const auto& [v, c] : fig.vertex_costs) {
    edb.pops(prog.FindPredicate("C"))
        .Set({dom.InternSymbol(v)}, static_cast<uint64_t>(c));
  }
  auto grounded = GroundProgram<NatS>(prog, edb);
  auto iter = grounded.NaiveIterate(25);
  std::printf("over N: converged after 25 iterations? %s\n",
              iter.converged ? "yes (unexpected!)" : "no — diverges");
  int t = prog.FindPredicate("T");
  int ta = grounded.VarOf(t, {*dom.FindSymbol("a")});
  std::printf("T(a) after 25 naive steps: %s (and still climbing)\n\n",
              NatS::ToString(iter.values[ta]).c_str());
}

void RunAcyclicAssembly() {
  // A realistic acyclic assembly: N works fine and counts shared subparts
  // with multiplicity (bag semantics).
  Domain dom;
  auto prog = ParseProgram(kBom, &dom).value();
  Graph g = TreeWithCrossEdges(12, 6, /*seed=*/1);
  std::vector<ConstId> ids = InternVertices(12, &dom, "part");
  EdbInstance<NatS> edb(prog);
  for (const Edge& e : g.edges()) {
    edb.boolean(prog.FindPredicate("E")).Set({ids[e.src], ids[e.dst]}, true);
  }
  for (int v = 0; v < 12; ++v) {
    edb.pops(prog.FindPredicate("C")).Set({ids[v]}, uint64_t(v + 1));
  }
  auto grounded = GroundProgram<NatS>(prog, edb);
  auto iter = grounded.NaiveIterate(100);
  std::printf("acyclic 12-part assembly over N: converged=%d steps=%d\n",
              iter.converged, iter.steps);
  IdbInstance<NatS> idb = grounded.Decode(iter.values);
  std::printf("%s\n", idb.idb(prog.FindPredicate("T")).ToString(dom).c_str());
}

}  // namespace

int main() {
  std::printf("Example 4.2 bill-of-material:\n%s\n", kBom);
  RunLiftedReals();
  RunNaturalsDiverges();
  RunAcyclicAssembly();
  return 0;
}
