// Section 4.5 "Case Statements": the prefix-sum program
//   W(i) :- case i = 0 : V(0);  i < n : W(i-1) + V(i)
// desugared into a sum-sum-product with conditions, evaluated over the
// min-plus naturals so ⊗ = + performs the running sum.
#include <cstdio>

#include "src/datalogo.h"

namespace {

constexpr const char* kPrefix = R"(
  edb V/1.
  bedb Succ/2.
  idb W/1.
  W(I) :- { V(I) | I = 0 } ; { W(J) * V(I) | Succ(J, I) }.
)";

}  // namespace

int main() {
  using namespace datalogo;
  std::printf("prefix-sum via desugared case statement:\n%s\n", kPrefix);

  Domain dom;
  auto prog = ParseProgram(kPrefix, &dom).value();
  Status valid = ValidateProgram(prog);
  if (!valid.ok()) {
    std::printf("invalid: %s\n", valid.ToString().c_str());
    return 1;
  }

  const int n = 12;
  EdbInstance<TropNatS> edb(prog);
  std::printf("V = ");
  for (int i = 0; i < n; ++i) {
    uint64_t v = (i * 7 + 3) % 10;
    std::printf("%lu ", static_cast<unsigned long>(v));
    edb.pops(prog.FindPredicate("V")).Set({dom.InternInt(i)}, v);
    if (i > 0) {
      edb.boolean(prog.FindPredicate("Succ"))
          .Set({dom.InternInt(i - 1), dom.InternInt(i)}, true);
    }
  }
  std::printf("\n");

  Engine<TropNatS> engine(prog, edb);
  auto semi = engine.SemiNaive(1000);
  std::printf("semi-naive converged in %d iterations\nW = ", semi.steps);
  int w = prog.FindPredicate("W");
  for (int i = 0; i < n; ++i) {
    std::printf("%s ",
                TropNatS::ToString(semi.idb.idb(w).Get({dom.InternInt(i)}))
                    .c_str());
  }
  std::printf("\n");
  return 0;
}
