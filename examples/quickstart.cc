// Quickstart: one datalog° program, four semantics.
//
// The same transitive-closure rule text is evaluated over four POPS:
//   B      — reachability (classic datalog)
//   Trop+  — all-pairs shortest paths (Example 1.1)
//   N      — path counting (bag semantics)
//   Fuzzy  — widest-bottleneck ("maximum capacity") paths
#include <cstdio>

#include "src/datalogo.h"

namespace {

constexpr const char* kProgram = R"(
  edb E/2.
  idb T/2.
  T(X,Y) :- E(X,Y) ; T(X,Z) * E(Z,Y).
)";

template <datalogo::NaturallyOrderedSemiring P, typename F>
void Run(const char* title, const datalogo::Graph& g, F&& lift) {
  using namespace datalogo;
  Domain dom;
  auto prog = ParseProgram(kProgram, &dom);
  if (!prog.ok()) {
    std::printf("parse error: %s\n", prog.status().ToString().c_str());
    return;
  }
  Status valid = ValidateProgram(prog.value());
  if (!valid.ok()) {
    std::printf("invalid program: %s\n", valid.ToString().c_str());
    return;
  }
  std::vector<ConstId> ids = InternVertices(g.num_vertices(), &dom);
  EdbInstance<P> edb(prog.value());
  LoadEdges<P>(g, ids, lift, &edb.pops(prog.value().FindPredicate("E")));

  Engine<P> engine(prog.value(), edb);
  // Semi-naive needs a dioid (for ⊖); N falls back to naive evaluation.
  EvalResult<P> result = [&] {
    if constexpr (CompleteDistributiveDioid<P>) {
      return engine.SemiNaive(1000);
    } else {
      return engine.Naive(1000);
    }
  }();
  std::printf("=== %s (POPS %s) — converged=%d, %d iterations, %zu facts\n",
              title, P::kName, result.converged, result.steps,
              result.idb.TotalSupport());
  int t = prog.value().FindPredicate("T");
  std::printf("%s", result.idb.idb(t).ToString(dom).c_str());
}

}  // namespace

int main() {
  using namespace datalogo;
  // A small weighted graph: 0 → 1 → 2, 0 → 2, 2 → 3.
  Graph g(4);
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(1, 2, 2.0);
  g.AddEdge(0, 2, 5.0);
  g.AddEdge(2, 3, 1.0);

  std::printf("program:\n%s\n", kProgram);
  Run<BoolS>("reachability", g, [](const Edge&) { return true; });
  Run<TropS>("shortest paths", g, [](const Edge& e) { return e.weight; });
  Run<NatS>("path counting", g,
            [](const Edge&) { return static_cast<uint64_t>(1); });
  Run<FuzzyS>("bottleneck capacity", g, [](const Edge& e) {
    return 1.0 / (1.0 + e.weight);  // capacities in (0, 1]
  });
  return 0;
}
