// Section 7: the win-move game. datalog° over the POPS THREE computes
// Fitting's three-valued semantics, which on this program coincides with
// the well-founded model — compare both side by side on Fig. 4 and on a
// random game board.
#include <cstdio>

#include "src/datalogo.h"

namespace {

using namespace datalogo;

constexpr const char* kWinMove = R"(
  bedb E/2.
  idb W/1.
  W(X) :- { !W(Y) | E(X, Y) }.
)";

const char* Show(Kleene v) {
  switch (v) {
    case Kleene::kTrue:
      return "win";
    case Kleene::kFalse:
      return "lose";
    default:
      return "draw";
  }
}

void Compare(const Graph& g, const std::vector<std::string>& names) {
  // datalog° over THREE.
  Domain dom;
  auto prog = ParseProgram(kWinMove, &dom).value();
  std::vector<ConstId> ids;
  for (const std::string& n : names) ids.push_back(dom.InternSymbol(n));
  EdbInstance<ThreeS> edb(prog);
  LoadEdgesBool(g, ids, &edb.boolean(prog.FindPredicate("E")));
  auto grounded = GroundProgram<ThreeS>(prog, edb);
  auto iter = grounded.NaiveIterate(1000);

  // Well-founded baseline.
  WellFoundedModel wf = AlternatingFixpoint(WinMoveProgram(g));

  std::printf("%-8s %-14s %-14s\n", "node", "THREE lfp", "well-founded");
  bool agree = true;
  for (int v = 0; v < g.num_vertices(); ++v) {
    int var = grounded.VarOf(prog.FindPredicate("W"), {ids[v]});
    Kleene three = var >= 0 ? iter.values[var] : Kleene::kFalse;
    std::printf("%-8s %-14s %-14s\n", names[v].c_str(), Show(three),
                Show(wf.values[v]));
    if (three != wf.values[v]) agree = false;
  }
  std::printf("THREE converged in %d steps; models %s\n\n", iter.steps,
              agree ? "AGREE" : "DIFFER (unexpected!)");
}

}  // namespace

int main() {
  std::printf("win-move (Eq. 67):\n%s\n", kWinMove);

  std::printf("=== Fig. 4 ===\n");
  NamedGraph named = PaperFig4();
  Graph fig(6);
  auto index = [&](const std::string& n) {
    for (std::size_t i = 0; i < named.names.size(); ++i) {
      if (named.names[i] == n) return static_cast<int>(i);
    }
    return -1;
  };
  for (const auto& [s, t] : named.edges) fig.AddEdge(index(s), index(t));
  Compare(fig, named.names);

  std::printf("=== random 10-node board ===\n");
  Graph rnd = RandomGraph(10, 16, /*seed=*/4);
  std::vector<std::string> names;
  for (int i = 0; i < 10; ++i) names.push_back("n" + std::to_string(i));
  Compare(rnd, names);
  return 0;
}
