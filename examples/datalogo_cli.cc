// datalogo_cli: run a datalog° program from files.
//
//   datalogo_cli PROGRAM.dl --semiring=trop
//       --edb E=edges.tsv --bedb G=flags.tsv [--seminaive] [--advise]
//       [--threads=N] [--scheduler=sweep|ordered]
//       [--index=hash|direct|auto] [--scan=scalar|simd]
//       [--values=scalar|simd] [--update=BATCH]
//
// Semirings: bool, nat, trop, tropnat, fuzzy, viterbi.
// POPS EDB TSVs carry the value in the last column; Boolean EDB TSVs are
// key-only. Results are printed as sorted TSV per IDB predicate.
//
// --update=BATCH runs the fixpoint silently, applies the batch through
// Engine::Update (incremental maintenance — no full re-run), and prints
// the maintained tables. Batch grammar, one mutation per line:
//   + PRED key... value     insert/⊕-merge a POPS fact
//   + PRED key...           insert a Boolean-EDB fact
//   - PRED key...           delete a fact (either kind)
// '#' comments and blank lines are skipped.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/datalogo.h"
#include "src/relation/io.h"

namespace {

using namespace datalogo;

struct CliOptions {
  std::string program_path;
  std::string semiring = "trop";
  std::vector<std::pair<std::string, std::string>> edbs;   // pred=path
  std::vector<std::pair<std::string, std::string>> bedbs;  // pred=path
  bool seminaive = false;
  bool advise = false;
  int max_steps = 100000;
  int threads = 1;  // 0 = one per hardware core; results are identical
  // sweep = global rule sweeps; ordered = reliance-group local fixpoints
  // with triggered rules. Same fixpoint either way; the stability index
  // comment line can differ on multi-group programs.
  Scheduler scheduler = Scheduler::kSweep;
  // Index tier and scan kernel (engine.h / simd.h). --scan selects both
  // the index-build column scans and the join kernel (scalar
  // row-at-a-time vs SIMD batched bind/check). Output is identical for
  // every combination — these exist for benchmarking and the
  // byte-identity smoke test.
  IndexKind index_kind = IndexKind::kAuto;
  ScanKernel scan_kernel = DefaultScanKernel();
  // --values selects the value-plane kernel (⊗ products / head emission
  // inside the batched join); only active when --scan=simd and the
  // semiring opted into SemiringSimdTraits. Output is identical either
  // way.
  ScanKernel value_kernel = DefaultValueKernel();
  // --update=FILE: mutation batch serviced by Engine::Update after the
  // initial fixpoint; the printed tables are the maintained result.
  std::string update_path;
};

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

bool ParseArgs(int argc, char** argv, CliOptions* opt) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value_of = [&](const std::string& prefix) {
      return arg.substr(prefix.size());
    };
    if (arg.rfind("--semiring=", 0) == 0) {
      opt->semiring = value_of("--semiring=");
    } else if (arg.rfind("--edb", 0) == 0 && i + 1 <= argc) {
      std::string spec =
          arg.rfind("--edb=", 0) == 0 ? value_of("--edb=") : argv[++i];
      auto eq = spec.find('=');
      if (eq == std::string::npos) return false;
      opt->edbs.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    } else if (arg.rfind("--bedb", 0) == 0 && i + 1 <= argc) {
      std::string spec =
          arg.rfind("--bedb=", 0) == 0 ? value_of("--bedb=") : argv[++i];
      auto eq = spec.find('=');
      if (eq == std::string::npos) return false;
      opt->bedbs.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    } else if (arg == "--seminaive") {
      opt->seminaive = true;
    } else if (arg == "--advise") {
      opt->advise = true;
    } else if (arg.rfind("--max-steps=", 0) == 0) {
      opt->max_steps = std::stoi(value_of("--max-steps="));
    } else if (arg.rfind("--threads=", 0) == 0) {
      opt->threads = std::stoi(value_of("--threads="));
    } else if (arg.rfind("--scheduler=", 0) == 0) {
      std::string name = value_of("--scheduler=");
      if (name == "sweep") {
        opt->scheduler = Scheduler::kSweep;
      } else if (name == "ordered") {
        opt->scheduler = Scheduler::kOrdered;
      } else {
        std::fprintf(stderr, "unknown scheduler: %s\n", name.c_str());
        return false;
      }
    } else if (arg.rfind("--index=", 0) == 0) {
      std::string name = value_of("--index=");
      if (name == "hash") {
        opt->index_kind = IndexKind::kHash;
      } else if (name == "direct") {
        opt->index_kind = IndexKind::kDirect;
      } else if (name == "auto") {
        opt->index_kind = IndexKind::kAuto;
      } else {
        std::fprintf(stderr, "unknown index kind: %s\n", name.c_str());
        return false;
      }
    } else if (arg.rfind("--scan=", 0) == 0) {
      std::string name = value_of("--scan=");
      if (name == "scalar") {
        opt->scan_kernel = ScanKernel::kScalar;
      } else if (name == "simd") {
        opt->scan_kernel = ScanKernel::kSimd;
      } else {
        std::fprintf(stderr, "unknown scan kernel: %s\n", name.c_str());
        return false;
      }
    } else if (arg.rfind("--values=", 0) == 0) {
      std::string name = value_of("--values=");
      if (name == "scalar") {
        opt->value_kernel = ScanKernel::kScalar;
      } else if (name == "simd") {
        opt->value_kernel = ScanKernel::kSimd;
      } else {
        std::fprintf(stderr, "unknown value kernel: %s\n", name.c_str());
        return false;
      }
    } else if (arg.rfind("--update=", 0) == 0) {
      opt->update_path = value_of("--update=");
    } else if (arg.rfind("--", 0) != 0) {
      opt->program_path = arg;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  return !opt->program_path.empty();
}

/// Parses one --update batch file into an EdbDelta. Lines:
///   + PRED tok... value   (POPS pred)  |  + PRED tok...   (Boolean pred)
///   - PRED tok...
template <Pops P, typename ParseFn>
bool ParseUpdateBatch(const std::string& text, const Program& prog,
                      Domain* dom, ParseFn&& parse_value,
                      EdbDelta<P>* batch) {
  std::istringstream is(text);
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> toks = io_internal::SplitLine(line);
    if (toks.empty()) continue;
    auto fail = [&](const char* msg) {
      std::fprintf(stderr, "update batch line %d: %s\n", lineno, msg);
      return false;
    };
    if (toks[0] != "+" && toks[0] != "-") {
      return fail("expected '+' or '-'");
    }
    const bool is_add = toks[0] == "+";
    if (toks.size() < 2) return fail("missing predicate");
    const int pred = prog.FindPredicate(toks[1]);
    if (pred < 0) return fail("unknown predicate");
    const PredKind kind = prog.predicate(pred).kind;
    if (kind == PredKind::kIdb) return fail("IDB predicates are derived");
    const int arity = prog.predicate(pred).arity;
    const bool is_bool = kind == PredKind::kBoolEdb;
    const int want = 2 + arity + (is_add && !is_bool ? 1 : 0);
    if (static_cast<int>(toks.size()) != want) {
      return fail("wrong column count for predicate arity");
    }
    Tuple t;
    for (int i = 0; i < arity; ++i) {
      ConstId id = 0;
      if (!io_internal::TryInternToken(toks[2 + i], dom, &id)) {
        return fail("integer key out of 64-bit range");
      }
      t.push_back(id);
    }
    if (is_bool) {
      if (is_add) {
        batch->AddBool(pred, std::move(t));
      } else {
        batch->DeleteBool(pred, std::move(t));
      }
    } else if (is_add) {
      typename P::Value v;
      if (!parse_value(toks.back(), &v)) return fail("cannot parse value");
      batch->Add(pred, std::move(t), std::move(v));
    } else {
      batch->Delete(pred, std::move(t));
    }
  }
  return true;
}

template <NaturallyOrderedSemiring P, typename ParseFn>
int RunAs(const CliOptions& opt, const std::string& text,
          ParseFn&& parse_value) {
  Domain dom;
  auto prog = ParseProgram(text, &dom);
  if (!prog.ok()) {
    std::fprintf(stderr, "%s\n", prog.status().ToString().c_str());
    return 1;
  }
  Status valid = ValidateProgram(prog.value());
  if (!valid.ok()) {
    std::fprintf(stderr, "%s\n", valid.ToString().c_str());
    return 1;
  }
  EdbInstance<P> edb(prog.value());
  for (const auto& [pred, path] : opt.edbs) {
    int id = prog.value().FindPredicate(pred);
    if (id < 0 || prog.value().predicate(id).kind != PredKind::kEdb) {
      std::fprintf(stderr, "unknown POPS EDB predicate '%s'\n",
                   pred.c_str());
      return 1;
    }
    std::string tsv;
    if (!ReadFile(path, &tsv)) {
      std::fprintf(stderr, "cannot read %s\n", path.c_str());
      return 1;
    }
    Status s = LoadTsv<P>(tsv, &dom, &edb.pops(id), parse_value);
    if (!s.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), s.ToString().c_str());
      return 1;
    }
  }
  for (const auto& [pred, path] : opt.bedbs) {
    int id = prog.value().FindPredicate(pred);
    if (id < 0 || prog.value().predicate(id).kind != PredKind::kBoolEdb) {
      std::fprintf(stderr, "unknown Boolean EDB predicate '%s'\n",
                   pred.c_str());
      return 1;
    }
    std::string tsv;
    if (!ReadFile(path, &tsv)) {
      std::fprintf(stderr, "cannot read %s\n", path.c_str());
      return 1;
    }
    Status s = LoadTsvBool(tsv, &dom, &edb.boolean(id));
    if (!s.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), s.ToString().c_str());
      return 1;
    }
  }

  if (opt.advise) {
    auto grounded = GroundProgram<P>(prog.value(), edb);
    ConvergenceReport report = Advise(grounded);
    std::printf("# advisor: %s (%s); linear=%d recursive=%d N=%d\n",
                VerdictName(report.verdict), report.explanation.c_str(),
                report.linear, report.recursive, report.num_vars);
  }

  Engine<P> engine(prog.value(), edb,
                   EngineOptions{.num_threads = opt.threads,
                                 .scheduler = opt.scheduler,
                                 .index_kind = opt.index_kind,
                                 .scan_kernel = opt.scan_kernel,
                                 .value_kernel = opt.value_kernel});
  EvalResult<P> result = [&] {
    if constexpr (CompleteDistributiveDioid<P>) {
      if (opt.seminaive) return engine.SemiNaive(opt.max_steps);
      return engine.Naive(opt.max_steps);
    } else {
      return engine.Naive(opt.max_steps);
    }
  }();
  if (!result.converged) {
    std::fprintf(stderr,
                 "did not converge within %d steps (diverging program?)\n",
                 opt.max_steps);
    return 2;
  }
  const IdbInstance<P>* tables = &result.idb;
  IdbInstance<P> maintained(prog.value());
  if (!opt.update_path.empty()) {
    std::string batch_text;
    if (!ReadFile(opt.update_path, &batch_text)) {
      std::fprintf(stderr, "cannot read %s\n", opt.update_path.c_str());
      return 1;
    }
    EdbDelta<P> batch;
    if (!ParseUpdateBatch<P>(batch_text, prog.value(), &dom, parse_value,
                             &batch)) {
      return 1;
    }
    maintained.CopyContentsFrom(result.idb);
    UpdateResult ur = engine.Update(batch, &edb, &maintained, opt.max_steps);
    if (!ur.converged) {
      std::fprintf(stderr, "update did not converge within %d rounds\n",
                   opt.max_steps);
      return 2;
    }
    const char* strategy =
        ur.strategy == UpdateStrategy::kNoop            ? "noop"
        : ur.strategy == UpdateStrategy::kInsertOnly    ? "insert-cascade"
        : ur.strategy == UpdateStrategy::kExactDeletion ? "exact-deletion"
        : ur.strategy == UpdateStrategy::kDred          ? "dred"
                                                        : "recompute";
    std::printf("# update applied via %s, %d rounds, %llu rederived\n",
                strategy, ur.rounds,
                static_cast<unsigned long long>(ur.deleted_rederived));
    tables = &maintained;
  } else {
    std::printf("# converged, stability index %d\n", result.steps);
  }
  for (int pred : prog.value().IdbPredicates()) {
    std::printf("## %s\n%s", prog.value().predicate(pred).name.c_str(),
                DumpTsv(tables->idb(pred), dom).c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opt;
  if (!ParseArgs(argc, argv, &opt)) {
    std::fprintf(stderr,
                 "usage: datalogo_cli PROGRAM.dl [--semiring=NAME] "
                 "[--edb P=FILE]... [--bedb P=FILE]... [--seminaive] "
                 "[--advise] [--max-steps=N] [--threads=N] "
                 "[--scheduler=sweep|ordered] [--index=hash|direct|auto] "
                 "[--scan=scalar|simd] [--values=scalar|simd] "
                 "[--update=BATCH]\n"
                 "semirings: bool nat trop tropnat fuzzy viterbi\n");
    return 1;
  }
  std::string text;
  if (!ReadFile(opt.program_path, &text)) {
    std::fprintf(stderr, "cannot read %s\n", opt.program_path.c_str());
    return 1;
  }
  const std::string& s = opt.semiring;
  if (s == "trop") {
    return RunAs<TropS>(opt, text, ParseDoubleValue);
  } else if (s == "bool") {
    return RunAs<BoolS>(opt, text, ParseBoolValue);
  } else if (s == "nat") {
    return RunAs<NatS>(opt, text, ParseUintValue);
  } else if (s == "tropnat") {
    return RunAs<TropNatS>(opt, text, ParseUintValue);
  } else if (s == "fuzzy") {
    return RunAs<FuzzyS>(opt, text, ParseDoubleValue);
  } else if (s == "viterbi") {
    return RunAs<ViterbiS>(opt, text, ParseDoubleValue);
  }
  std::fprintf(stderr, "unknown semiring '%s'\n", s.c_str());
  return 1;
}
