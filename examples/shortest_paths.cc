// Example 4.1: the single-source shortest-path program on the paper's
// Fig. 2(a), interpreted over B, Trop+, Trop+_1, and Trop+_{≤η} — printing
// the naive-iteration table exactly as the paper does.
#include <cstdio>

#include "src/datalogo.h"

namespace {

constexpr const char* kSssp = R"(
  edb E/2.
  idb L/1.
  L(X) :- [X = a] ; L(Z) * E(Z, X).
)";

using namespace datalogo;

/// Runs the program over P, printing every naive iterate (grounded view).
template <Pops P, typename F>
void RunWithTable(const char* title, F&& lift) {
  Domain dom;
  auto prog = ParseProgram(kSssp, &dom).value();
  EdbInstance<P> edb(prog);
  LoadNamedEdges<P>(PaperFig2a(), &dom, lift,
                    &edb.pops(prog.FindPredicate("E")));
  auto grounded = GroundProgram<P>(prog, edb);
  int l = prog.FindPredicate("L");
  const char* nodes[] = {"a", "b", "c", "d"};

  std::printf("--- %s ---\n        ", title);
  for (const char* n : nodes) std::printf("%-14s", n);
  std::printf("\n");
  std::vector<typename P::Value> x(grounded.num_vars(), P::Bottom());
  for (int t = 0;; ++t) {
    std::printf("L(%d):  ", t);
    for (const char* n : nodes) {
      int var = grounded.VarOf(l, {*dom.FindSymbol(n)});
      std::printf("%-14s", P::ToString(x[var]).c_str());
    }
    std::printf("\n");
    auto next = grounded.system().Evaluate(x);
    bool fixed = true;
    for (int i = 0; i < grounded.num_vars(); ++i) {
      if (!P::Eq(next[i], x[i])) fixed = false;
    }
    if (fixed || t > 20) break;
    x = std::move(next);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Example 4.1 on Fig. 2(a):\n%s\n", kSssp);
  RunWithTable<TropS>("Trop+ : single-source shortest paths",
                      [](double w) { return w; });
  RunWithTable<BoolS>("B : reachability from a",
                      [](double) { return true; });
  RunWithTable<TropPS<1>>("Trop+_1 : two shortest paths", [](double w) {
    return TropPS<1>::FromScalar(w);
  });
  TropEtaS::ScopedEta eta(6.5);
  RunWithTable<TropEtaS>("Trop+_{<=6.5} : near-optimal path lengths",
                         [](double w) { return TropEtaS::FromScalar(w); });
  return 0;
}
