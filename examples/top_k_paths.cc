// Top-k routing: the APSP rule over Trop+_p computes, per vertex pair,
// the p+1 cheapest route lengths (Example 1.1's "top p+1 shortest paths"
// interpretation) — here on a small road network with alternate routes,
// plus the convergence advisor's Theorem 1.2 prediction.
#include <cstdio>

#include "src/datalogo.h"

int main() {
  using namespace datalogo;
  using T = TropPS<2>;  // 3 cheapest routes per pair

  constexpr const char* kProgram = R"(
    edb Road/2.
    idb Route/2.
    Route(X,Y) :- Road(X,Y) ; Route(X,Z) * Road(Z,Y).
  )";
  std::printf("top-3 route lengths over Trop+_2:\n%s\n", kProgram);

  Domain dom;
  auto prog = ParseProgram(kProgram, &dom).value();

  // A small road network: two towns connected by a fast highway, a slow
  // scenic road, and a detour through a village.
  struct RoadSpec {
    const char *from, *to;
    double km;
  };
  const RoadSpec roads[] = {
      {"depot", "junction", 4},   {"junction", "city", 6},
      {"depot", "city", 14},      {"depot", "village", 7},
      {"village", "city", 5},     {"junction", "village", 2},
      {"city", "depot", 12},
  };
  EdbInstance<T> edb(prog);
  for (const RoadSpec& r : roads) {
    edb.pops(prog.FindPredicate("Road"))
        .Merge({dom.InternSymbol(r.from), dom.InternSymbol(r.to)},
               T::FromScalar(r.km));
  }

  auto grounded = GroundProgram<T>(prog, edb);
  ConvergenceReport report = Advise(grounded);
  std::printf("advisor: %s — %s (bound %llu, N = %d)\n\n",
              VerdictName(report.verdict), report.explanation.c_str(),
              static_cast<unsigned long long>(report.bound),
              report.num_vars);

  auto iter = grounded.NaiveIterate(100000);
  std::printf("converged after stability index %d\n\n", iter.steps);
  IdbInstance<T> idb = grounded.Decode(iter.values);
  int route = prog.FindPredicate("Route");
  for (const char* from : {"depot", "junction", "village"}) {
    for (const char* to : {"city", "depot"}) {
      auto v = idb.idb(route).Get(
          {*dom.FindSymbol(from), *dom.FindSymbol(to)});
      std::printf("%-9s -> %-6s  %s km\n", from, to,
                  T::ToString(v).c_str());
    }
  }
  std::printf(
      "\ndepot -> city offers 10 (junction highway), 11 (junction +\n"
      "village detour) and 12 (via village) before the direct 14 km road.\n");
  return 0;
}
