// Example 4.3: company control — a datalog° program over TWO value spaces
// (R+ for accumulated share fractions, B for the control predicate),
// connected by monotone maps (the indicator [T(x,y) > 0.5]). Sec. 4.5
// "Multiple Value Spaces": the least-fixpoint semantics still applies
// because every map is monotone; we implement the ICO directly with the
// library's relation primitives.
#include <cstdio>

#include "src/datalogo.h"

namespace {

using namespace datalogo;

struct CompanyControl {
  Domain dom;
  std::vector<ConstId> companies;
  Relation<RealPlusS> shares{2};  // S(x, y) = fraction of y owned by x

  // IDBs: T(x,y) = total shares of y that x commands; C(x,y) = control.
  Relation<RealPlusS> total{2};
  Relation<BoolS> control{2};

  /// One application of the (monotone) immediate consequence operator:
  ///   CV(x,z,y) = [x = z]·S(x,y) + [C(x,z)]·S(z,y)
  ///   T(x,y)    = Σ_z CV(x,z,y)
  ///   C(x,y)    = [T(x,y) > 0.5]
  bool Step() {
    Relation<RealPlusS> next_total(2);
    shares.ForEachRow([&](uint32_t r) {
      ConstId z = shares.Cell(r, 0), y = shares.Cell(r, 1);
      double frac = shares.ValueAt(r);
      // x = z branch: x owns S(x,y) directly.
      next_total.Merge({z, y}, frac);
      // Controlled branch: every x with C(x,z) commands S(z,y).
      for (ConstId x : companies) {
        if (control.Get({x, z})) next_total.Merge({x, y}, frac);
      }
    });
    Relation<BoolS> next_control(2);
    next_total.ForEachRow([&](uint32_t r) {
      if (next_total.ValueAt(r) > 0.5) next_control.Set(next_total.View(r), true);
    });
    bool changed =
        !next_total.Equals(total) || !next_control.Equals(control);
    total = std::move(next_total);
    control = std::move(next_control);
    return changed;
  }

  int Solve(int max_steps) {
    for (int t = 0; t < max_steps; ++t) {
      if (!Step()) return t;
    }
    return max_steps;
  }
};

}  // namespace

int main() {
  CompanyControl cc;
  const char* names[] = {"apex", "bolt", "core", "dune", "echo"};
  for (const char* n : names) {
    cc.companies.push_back(cc.dom.InternSymbol(n));
  }
  auto id = [&](const char* n) { return *cc.dom.FindSymbol(n); };
  // apex owns 60% of bolt directly; apex+bolt together control core
  // (30% + 30%); core owns 55% of dune; nobody controls echo.
  cc.shares.Set({id("apex"), id("bolt")}, 0.6);
  cc.shares.Set({id("apex"), id("core")}, 0.3);
  cc.shares.Set({id("bolt"), id("core")}, 0.3);
  cc.shares.Set({id("core"), id("dune")}, 0.55);
  cc.shares.Set({id("dune"), id("echo")}, 0.2);
  cc.shares.Set({id("bolt"), id("echo")}, 0.25);

  int steps = cc.Solve(100);
  std::printf("company-control fixpoint reached after %d steps\n\n", steps);
  std::printf("T (total commanded share):\n%s\n",
              cc.total.ToString(cc.dom).c_str());
  std::printf("C (control):\n%s\n", cc.control.ToString(cc.dom).c_str());
  std::printf(
      "apex controls bolt directly (0.6), hence commands bolt's 30%% of\n"
      "core on top of its own 30%% -> controls core -> commands core's\n"
      "55%% of dune -> controls dune. echo stays uncontrolled (0.45).\n");
  return 0;
}
